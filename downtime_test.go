package dvm_test

import (
	"testing"
	"time"

	"dvm/internal/core"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

// TestPolicy1DowntimeBeatsNaiveRecompute is the paper's Section 5.3
// claim as an executable assertion: over a simulated retail day, the
// measured view downtime (the view_downtime_ns histogram — time the
// MV's exclusive lock is held) of Policy 1 — hourly propagate_C plus
// one refresh_C — is strictly lower than recomputing the view from
// scratch under the lock. The base table is large (5000 initial sales,
// DefaultRetailConfig) while the day's delta is small, so refresh_C
// applies precomputed differentials where the naive baseline re-joins
// the whole database. Each variant takes the best of three trials to
// keep scheduler noise from inverting the ordering.
func TestPolicy1DowntimeBeatsNaiveRecompute(t *testing.T) {
	const (
		trials       = 3
		hoursPerDay  = 24
		salesPerHour = 40
	)

	runDay := func(naive bool) time.Duration {
		mgr, w := setupRetailDay(t)
		for hour := 0; hour < hoursPerDay; hour++ {
			if err := mgr.Execute(w.SalesBatch(salesPerHour)); err != nil {
				t.Fatal(err)
			}
			if !naive {
				if err := mgr.Propagate("hv"); err != nil {
					t.Fatal(err)
				}
			}
		}
		var err error
		if naive {
			err = mgr.RefreshRecompute("hv")
		} else {
			err = mgr.Refresh("hv")
		}
		if err != nil {
			t.Fatal(err)
		}
		m, ok := mgr.Obs().Snapshot().Get("view_downtime_ns", "hv")
		if !ok || m.Count == 0 {
			t.Fatal("view_downtime_ns{hv} not recorded")
		}
		return time.Duration(m.Max)
	}

	best := func(naive bool) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			if d := runDay(naive); d < min {
				min = d
			}
		}
		return min
	}

	policy1 := best(false)
	naive := best(true)
	t.Logf("max downtime: Policy 1 %v, naive recompute %v", policy1, naive)
	if policy1 >= naive {
		t.Fatalf("Policy 1 downtime %v is not strictly lower than naive recompute %v", policy1, naive)
	}
}

// setupRetailDay builds a fresh retail database with a Combined-scenario
// view over it, ready for one simulated day of transactions.
func setupRetailDay(t *testing.T) (*core.Manager, *workload.Retail) {
	t.Helper()
	db := storage.NewDatabase()
	w := workload.NewRetail(workload.DefaultRetailConfig())
	if err := w.Setup(db); err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(db)
	def, err := w.ViewDef()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.DefineView("hv", def, core.Combined); err != nil {
		t.Fatal(err)
	}
	return mgr, w
}
