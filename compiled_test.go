package dvm_test

import (
	"testing"

	"dvm/internal/core"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

// compiledPair builds two managers over independently set-up copies of
// the same retail state: one evaluating maintenance with compiled delta
// programs (the default) and one forced onto the tree-walking
// interpreter. Both receive identical transaction streams from
// same-seed generators, so any divergence is a compiler bug.
func compiledPair(t *testing.T, scenario core.Scenario, seed int64, extra ...core.ManagerOption) (compiled, interp *core.Manager, wc, wi *workload.Retail) {
	t.Helper()
	cfg := workload.RetailConfig{
		Customers:    120,
		HighFraction: 0.25,
		InitialSales: 600,
		Items:        60,
		ZipfS:        1.2,
		Seed:         seed,
	}
	build := func(opts ...core.ManagerOption) (*core.Manager, *workload.Retail) {
		db := storage.NewDatabase()
		w := workload.NewRetail(cfg)
		if err := w.Setup(db); err != nil {
			t.Fatal(err)
		}
		m := core.NewManager(db, opts...)
		def, err := w.ViewDef()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.DefineView("hv", def, scenario); err != nil {
			t.Fatal(err)
		}
		return m, w
	}
	compiled, wc = build(extra...)
	interp, wi = build(append([]core.ManagerOption{core.WithInterpretedDeltas()}, extra...)...)
	return compiled, interp, wc, wi
}

// TestCompiledMatchesInterpretedScenarios drives the same retail stream
// through a compiled and an interpreted manager under every maintenance
// scenario and requires identical stale answers, fresh answers, and
// post-refresh MVs, plus a clean INV_C-style invariant where one is
// defined.
func TestCompiledMatchesInterpretedScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		s    core.Scenario
	}{
		{"immediate", core.Immediate},
		{"baselogs", core.BaseLogs},
		{"difftables", core.DiffTables},
		{"combined", core.Combined},
	}
	for si, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			compiled, interp, wc, wi := compiledPair(t, sc.s, int64(40+si))
			for tick := 1; tick <= 20; tick++ {
				if err := compiled.Execute(wc.Basket(2, 6, 0.2)); err != nil {
					t.Fatal(err)
				}
				if err := interp.Execute(wi.Basket(2, 6, 0.2)); err != nil {
					t.Fatal(err)
				}
				if tick%7 == 0 {
					fc, err := wc.ScoreFlip()
					if err != nil {
						t.Fatal(err)
					}
					fi, err := wi.ScoreFlip()
					if err != nil {
						t.Fatal(err)
					}
					if err := compiled.Execute(fc); err != nil {
						t.Fatal(err)
					}
					if err := interp.Execute(fi); err != nil {
						t.Fatal(err)
					}
				}
				if sc.s == core.Combined && tick%5 == 0 {
					if err := compiled.Propagate("hv"); err != nil {
						t.Fatal(err)
					}
					if err := interp.Propagate("hv"); err != nil {
						t.Fatal(err)
					}
				}
				qc, err := compiled.Query("hv")
				if err != nil {
					t.Fatal(err)
				}
				qi, err := interp.Query("hv")
				if err != nil {
					t.Fatal(err)
				}
				if !qc.Equal(qi) {
					t.Fatalf("tick %d: stale answers differ: compiled %v, interpreted %v", tick, qc, qi)
				}
			}
			fc, err := compiled.QueryFresh("hv", nil)
			if err != nil {
				t.Fatal(err)
			}
			fi, err := interp.QueryFresh("hv", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !fc.Equal(fi) {
				t.Fatal("fresh answers differ")
			}
			if sc.s != core.Immediate {
				if err := compiled.Refresh("hv"); err != nil {
					t.Fatal(err)
				}
				if err := interp.Refresh("hv"); err != nil {
					t.Fatal(err)
				}
			}
			qc, err := compiled.Query("hv")
			if err != nil {
				t.Fatal(err)
			}
			qi, err := interp.Query("hv")
			if err != nil {
				t.Fatal(err)
			}
			if !qc.Equal(qi) {
				t.Fatalf("refreshed MVs differ: compiled %v, interpreted %v", qc, qi)
			}
			if err := compiled.CheckInvariant("hv"); err != nil {
				t.Fatal(err)
			}
			if err := interp.CheckInvariant("hv"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompiledPoliciesMatchInterpreted runs the mixed retail day under
// each deferred-maintenance policy (1: propagate + refresh_C, 2:
// propagate + partial_refresh_C, 3: on-demand) against compiled and
// interpreted Combined managers and requires identical stale and fresh
// answers throughout, ending with clean invariants.
func TestCompiledPoliciesMatchInterpreted(t *testing.T) {
	policies := []struct {
		name string
		p    core.Policy
	}{
		{"policy1", core.Policy{PropagateEvery: 2, RefreshEvery: 10}},
		{"policy2", core.Policy{PropagateEvery: 2, RefreshEvery: 10, Partial: true}},
		{"policy3-ondemand", core.Policy{PropagateEvery: 2, OnDemand: true}},
	}
	for pi, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			compiled, interp, wc, wi := compiledPair(t, core.Combined, int64(70+pi))
			rc, err := compiled.NewRunner("hv", pol.p)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := interp.NewRunner("hv", pol.p)
			if err != nil {
				t.Fatal(err)
			}
			for tick := 1; tick <= 40; tick++ {
				if err := compiled.Execute(wc.Basket(2, 6, 0.2)); err != nil {
					t.Fatal(err)
				}
				if err := interp.Execute(wi.Basket(2, 6, 0.2)); err != nil {
					t.Fatal(err)
				}
				if tick%13 == 0 {
					fc, err := wc.ScoreFlip()
					if err != nil {
						t.Fatal(err)
					}
					fi, err := wi.ScoreFlip()
					if err != nil {
						t.Fatal(err)
					}
					if err := compiled.Execute(fc); err != nil {
						t.Fatal(err)
					}
					if err := interp.Execute(fi); err != nil {
						t.Fatal(err)
					}
				}
				if err := rc.Tick(); err != nil {
					t.Fatal(err)
				}
				if err := ri.Tick(); err != nil {
					t.Fatal(err)
				}
				if tick%10 == 0 {
					fc, err := compiled.QueryFresh("hv", nil)
					if err != nil {
						t.Fatal(err)
					}
					fi, err := interp.QueryFresh("hv", nil)
					if err != nil {
						t.Fatal(err)
					}
					if !fc.Equal(fi) {
						t.Fatalf("tick %d: fresh answers differ", tick)
					}
				}
				qc, err := compiled.Query("hv")
				if err != nil {
					t.Fatal(err)
				}
				qi, err := interp.Query("hv")
				if err != nil {
					t.Fatal(err)
				}
				if !qc.Equal(qi) {
					t.Fatalf("tick %d: stale answers differ", tick)
				}
			}
			if pol.p.OnDemand {
				if err := rc.RefreshNow(); err != nil {
					t.Fatal(err)
				}
				if err := ri.RefreshNow(); err != nil {
					t.Fatal(err)
				}
			}
			if err := compiled.CheckInvariant("hv"); err != nil {
				t.Fatal(err)
			}
			if err := interp.CheckInvariant("hv"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompiledShardedMatchesInterpretedSerial pits the most-optimized
// configuration (compiled programs over 4 hash shards) against the
// least (serial interpreter): every logical log and differential table
// must Σ-match, and the MVs must agree after propagate + refresh.
func TestCompiledShardedMatchesInterpretedSerial(t *testing.T) {
	cfg := workload.RetailConfig{
		Customers:    120,
		HighFraction: 0.25,
		InitialSales: 600,
		Items:        60,
		ZipfS:        1.2,
		Seed:         83,
	}
	build := func(opts ...core.ManagerOption) (*core.Manager, *workload.Retail) {
		db := storage.NewDatabase()
		w := workload.NewRetail(cfg)
		if err := w.Setup(db); err != nil {
			t.Fatal(err)
		}
		m := core.NewManager(db, opts...)
		def, err := w.ViewDef()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.DefineView("hv", def, core.Combined); err != nil {
			t.Fatal(err)
		}
		return m, w
	}
	sharded, wc := build(core.WithShards(4))
	serial, wi := build(core.WithInterpretedDeltas())

	for tick := 1; tick <= 24; tick++ {
		if err := sharded.Execute(wc.Basket(2, 6, 0.2)); err != nil {
			t.Fatal(err)
		}
		if err := serial.Execute(wi.Basket(2, 6, 0.2)); err != nil {
			t.Fatal(err)
		}
		if tick%9 == 0 {
			fc, err := wc.ScoreFlip()
			if err != nil {
				t.Fatal(err)
			}
			fi, err := wi.ScoreFlip()
			if err != nil {
				t.Fatal(err)
			}
			if err := sharded.Execute(fc); err != nil {
				t.Fatal(err)
			}
			if err := serial.Execute(fi); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sharded.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	if err := serial.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"__dmv_del_hv", "__dmv_add_hv"} {
		got := mergedBag(t, sharded.DB(), name)
		want := mergedBag(t, serial.DB(), name)
		if !got.Equal(want) {
			t.Fatalf("after propagate: Σ shard %s = %v, interpreted serial has %v", name, got, want)
		}
	}
	if err := sharded.CheckShardInvariant("hv"); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := serial.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	qc, err := sharded.Query("hv")
	if err != nil {
		t.Fatal(err)
	}
	qi, err := serial.Query("hv")
	if err != nil {
		t.Fatal(err)
	}
	if !qc.Equal(qi) {
		t.Fatalf("refreshed MVs differ: compiled sharded %v, interpreted serial %v", qc, qi)
	}
}

// TestCompiledRecomputeAndPartial covers the remaining compiled entry
// points one by one: RefreshRecompute (full recompute via the compiled
// definition program) and PartialRefresh must each land both managers
// on identical MVs.
func TestCompiledRecomputeAndPartial(t *testing.T) {
	compiled, interp, wc, wi := compiledPair(t, core.Combined, 59)
	step := func() {
		t.Helper()
		if err := compiled.Execute(wc.Basket(2, 6, 0.2)); err != nil {
			t.Fatal(err)
		}
		if err := interp.Execute(wi.Basket(2, 6, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	same := func(when string) {
		t.Helper()
		qc, err := compiled.Query("hv")
		if err != nil {
			t.Fatal(err)
		}
		qi, err := interp.Query("hv")
		if err != nil {
			t.Fatal(err)
		}
		if !qc.Equal(qi) {
			t.Fatalf("%s: MVs differ", when)
		}
	}
	for i := 0; i < 8; i++ {
		step()
	}
	if err := compiled.RefreshRecompute("hv"); err != nil {
		t.Fatal(err)
	}
	if err := interp.RefreshRecompute("hv"); err != nil {
		t.Fatal(err)
	}
	same("after recompute")
	for i := 0; i < 8; i++ {
		step()
	}
	if err := compiled.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	if err := interp.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	if err := compiled.PartialRefresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := interp.PartialRefresh("hv"); err != nil {
		t.Fatal(err)
	}
	same("after partial refresh")
	if err := compiled.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
	if err := interp.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
}
