package dvm_test

import (
	"testing"

	"dvm/internal/obs/trace"
)

// TestTracePolicy1RetailDay is the tracing subsystem's end-to-end
// acceptance: a Policy 1 retail day (hourly Execute + Propagate, one
// closing Refresh) run with sampling on must yield
//
//  1. exactly one trace tree per maintenance transaction, with the
//     makesafe/propagate/refresh spans parented the way
//     docs/observability.md's taxonomy says;
//  2. per-trace exclusive time that reconciles *exactly* with the
//     view_downtime_ns histogram — both read the same clock sample
//     (internal/core/refresh.go, startDowntimeSpan), so the sums are
//     equal, not merely close;
//  3. a Chrome trace-event export that round-trips through the
//     in-repo parser.
func TestTracePolicy1RetailDay(t *testing.T) {
	const (
		hoursPerDay  = 24
		salesPerHour = 40
	)
	mgr, w := setupRetailDay(t)
	mgr.Tracer().SampleAll()

	for hour := 0; hour < hoursPerDay; hour++ {
		if err := mgr.Execute(w.SalesBatch(salesPerHour)); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Propagate("hv"); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Refresh("hv"); err != nil {
		t.Fatal(err)
	}

	// (1) One trace per maintenance transaction.
	const wantTraces = 2*hoursPerDay + 1
	traces := mgr.Tracer().Last(wantTraces + 1)
	if len(traces) != wantTraces {
		t.Fatalf("captured %d traces, want %d (one per Execute/Propagate/Refresh)", len(traces), wantTraces)
	}
	byRoot := map[string]int{}
	for _, tr := range traces {
		byRoot[tr.Root.Name]++
	}
	if byRoot[trace.SpanExecute] != hoursPerDay ||
		byRoot[trace.SpanPropagate] != hoursPerDay ||
		byRoot[trace.SpanRefresh] != 1 {
		t.Fatalf("root span census %v, want %d %s, %d %s, 1 %s",
			byRoot, hoursPerDay, trace.SpanExecute, hoursPerDay, trace.SpanPropagate, trace.SpanRefresh)
	}

	// Parenting: every execute tree holds the view's makesafe span and
	// the apply span as direct children.
	for _, tr := range traces {
		if tr.Root.Name != trace.SpanExecute {
			continue
		}
		if childNamed(tr.Root, trace.SpanMakesafe) == nil {
			t.Fatalf("execute trace #%d has no %s child", tr.ID, trace.SpanMakesafe)
		}
		if childNamed(tr.Root, trace.SpanApply) == nil {
			t.Fatalf("execute trace #%d has no %s child", tr.ID, trace.SpanApply)
		}
	}
	// Parenting: the refresh tree nests lock wait/hold under the root
	// and the exclusive apply section under the hold.
	refresh := traceWithRoot(t, traces, trace.SpanRefresh)
	if childNamed(refresh.Root, trace.SpanLockWait) == nil {
		t.Fatalf("refresh trace has no %s child", trace.SpanLockWait)
	}
	hold := childNamed(refresh.Root, trace.SpanLockHold)
	if hold == nil {
		t.Fatalf("refresh trace has no %s child", trace.SpanLockHold)
	}
	apply := childNamed(hold, trace.SpanRefreshApply)
	if apply == nil {
		t.Fatalf("%s has no %s child — the downtime section is not nested under the lock hold", trace.SpanLockHold, trace.SpanRefreshApply)
	}
	if !apply.Exclusive {
		t.Fatalf("%s span is not marked exclusive", trace.SpanRefreshApply)
	}

	// (2) The traces' exclusive sections ARE the downtime histogram.
	var exclusive int64
	for _, tr := range traces {
		exclusive += tr.ExclusiveNs
	}
	m, ok := mgr.Obs().Snapshot().Get("view_downtime_ns", "hv")
	if !ok {
		t.Fatal("view_downtime_ns{hv} not recorded")
	}
	if exclusive != m.Sum {
		t.Fatalf("sum of exclusive spans %dns != view_downtime_ns sum %dns — trace and histogram disagree about downtime", exclusive, m.Sum)
	}
	if exclusive == 0 {
		t.Fatal("refresh recorded zero exclusive time; the downtime span never fired")
	}

	// (3) Chrome export round-trips through the in-repo parser.
	data, err := trace.ChromeJSON(traces)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ParseChrome(data)
	if err != nil {
		t.Fatalf("exported Chrome trace fails validation: %v", err)
	}
	lanes := map[int64]bool{}
	for _, ev := range events {
		lanes[ev.Tid] = true
	}
	if len(lanes) != wantTraces {
		t.Fatalf("Chrome export has %d tid lanes, want %d (one per transaction)", len(lanes), wantTraces)
	}
}

// childNamed returns the first direct child of s with the given span
// name, or nil.
func childNamed(s *trace.Span, name string) *trace.Span {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// traceWithRoot returns the first trace whose root span has the given
// name, failing the test if none exists.
func traceWithRoot(t *testing.T, traces []*trace.Trace, name string) *trace.Trace {
	t.Helper()
	for _, tr := range traces {
		if tr.Root.Name == name {
			return tr
		}
	}
	t.Fatalf("no trace with root %s", name)
	return nil
}
