package dvm_test

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"dvm"
	"dvm/internal/obs"
)

// docFamilyRe extracts the metric family from one table row of the
// families table in docs/observability.md: "| `family_name` | ...".
var docFamilyRe = regexp.MustCompile("(?m)^\\| `([a-z0-9_]+)` \\|")

// documentedFamilies parses the family names out of the marked table
// in docs/observability.md.
func documentedFamilies(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("docs/observability.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	begin := strings.Index(text, "<!-- families:begin -->")
	end := strings.Index(text, "<!-- families:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("docs/observability.md: families:begin/end markers missing or out of order")
	}
	out := map[string]bool{}
	for _, m := range docFamilyRe.FindAllStringSubmatch(text[begin:end], -1) {
		out[m[1]] = true
	}
	if len(out) == 0 {
		t.Fatal("docs/observability.md: no family rows found between markers")
	}
	return out
}

// TestObservabilityDocsMatchRegistry runs a workload that touches every
// instrumented subsystem (transactions, maintenance, SQL, locks,
// snapshots), then asserts the metric families the registry emits and
// the families docs/observability.md documents are the same set — in
// both directions. Adding a metric without documenting it, or
// documenting one that no longer exists, fails here.
func TestObservabilityDocsMatchRegistry(t *testing.T) {
	// Two shards so the workload also exercises the sharded maintenance
	// path and its per-shard metric families; the runtime bridge (long
	// interval — its synchronous first poll is all we need) adds the
	// go_* families.
	eng := dvm.NewEngine(dvm.WithShards(2), dvm.WithRuntimeBridge(time.Hour))
	defer func() {
		if err := eng.Close(); err != nil {
			t.Error(err)
		}
	}()
	script := `
CREATE TABLE sales (custId INT, itemNo INT, quantity INT, salesPrice FLOAT);
CREATE MATERIALIZED VIEW hv REFRESH DEFERRED COMBINED AS
SELECT s.custId, s.itemNo FROM sales s WHERE s.quantity != 0;
INSERT INTO sales VALUES (1, 10, 2, 9.99);
INSERT INTO sales VALUES (2, 11, 0, 5.00);
PROPAGATE hv;
PARTIAL REFRESH hv;
INSERT INTO sales VALUES (3, 12, 1, 7.50);
REFRESH hv;
SELECT * FROM hv;
`
	if _, err := eng.ExecScript(script); err != nil {
		t.Fatal(err)
	}

	// Snapshot save/load bytes live on the saving engine's registry and
	// the restored engine's registry respectively; union them.
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := dvm.LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	emitted := map[string]bool{}
	for _, fam := range eng.Manager().Obs().Snapshot().Families() {
		emitted[fam] = true
	}
	for _, fam := range restored.Manager().Obs().Snapshot().Families() {
		emitted[fam] = true
	}

	documented := documentedFamilies(t)
	for fam := range emitted {
		if !documented[fam] {
			t.Errorf("registry emits %q but docs/observability.md does not document it", fam)
		}
	}
	for fam := range documented {
		if !emitted[fam] {
			t.Errorf("docs/observability.md documents %q but the workload never emitted it", fam)
		}
	}

	// The Prometheus exposition of the same registry must pass the
	// strict format validator — this is the golden check for /metrics.
	var prom bytes.Buffer
	if err := obs.WriteProm(&prom, eng.Manager().Obs().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(prom.Bytes()); err != nil {
		t.Errorf("exposition of the workload registry invalid: %v\n%s", err, prom.Bytes())
	}
}

// TestPromHelpMatchesDocs pins the HELP text map (internal/obs/help.go)
// to the documented families table, both directions: every documented
// family has exposition HELP text and every HELP entry documents a
// family that exists in the table. This keeps /metrics HELP lines and
// docs/observability.md from drifting apart.
func TestPromHelpMatchesDocs(t *testing.T) {
	documented := documentedFamilies(t)
	helped := map[string]bool{}
	for _, fam := range obs.HelpFamilies() {
		helped[fam] = true
		if !documented[fam] {
			t.Errorf("help.go has HELP text for %q but docs/observability.md does not document it", fam)
		}
	}
	for fam := range documented {
		if !helped[fam] {
			t.Errorf("docs/observability.md documents %q but help.go has no HELP text for it", fam)
		}
	}
}
