#!/usr/bin/env bash
# benchshards.sh — the sharded-propagate scaling comparison
# (see docs/architecture.md "Sharding" and ISSUE acceptance: the
# 4-shard retail day must beat the serial day's propagate phase).
#
# Prints the multi-shard retail day at 1, 2, and 4 shards, then — when
# a BENCH_*.json baseline exists — re-runs the E15 sweep and the E16
# compiled-vs-interpreted day, failing if any of their guarded phases
# (view_downtime_ns max and txn_exec_ns p99, the single-shard serial
# config included) regressed more than 2x against the baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

for n in 1 2 4; do
    echo "== dvmbench -shards $n"
    go run ./cmd/dvmbench -shards "$n"
done

latest=""
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    latest="$f"
done
if [ -z "$latest" ]; then
    echo "bench-shards: no BENCH_*.json baseline found; skipping downtime guard"
    exit 0
fi
echo "== downtime guard (e15 vs $latest)"
go run ./cmd/dvmbench -exp e15 -json -diff "$latest" > /dev/null
echo "== compiled-programs guard (e16 vs $latest)"
go run ./cmd/dvmbench -exp e16 -json -diff "$latest" > /dev/null
