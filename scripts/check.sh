#!/usr/bin/env bash
# check.sh — the expanded tier-1 gate (see ROADMAP.md).
#
# Runs the full static + dynamic battery: build, vet, the repo's own
# dvmlint analyzers, the docs link-and-anchor checker, the
# unit/property suite under the race detector, and a bounded run of
# each fuzz target. Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== dvmlint"
# Timed: the interprocedural passes (lock-order, locked-contract,
# state-bug) run a whole-module fixpoint; TestDvmlintWallClock bounds
# this, and the wall clock here makes creep visible in CI logs.
dvmlint_start=$(date +%s)
go run ./cmd/dvmlint ./...
echo "   dvmlint wall clock: $(( $(date +%s) - dvmlint_start ))s"

echo "== doccheck (README.md docs/*.md)"
go run ./cmd/doccheck

echo "== runtime bridge families"
# The bridge's family list is part of the documented metrics contract;
# echo the gauge count so a drifting bridge is visible in gate logs.
bridge_fams=$(go run ./cmd/dvmstatsd -bridge-families)
echo "$bridge_fams" | sed 's/^/   /'
echo "   runtime-bridge gauges: $(echo "$bridge_fams" | grep -c ' gauge$')"

echo "== go test -race"
go test -race ./...

# Optional: downtime-regression guard against the newest BENCH_*.json
# baseline. Off by default because a full dvmbench run takes minutes;
# opt in with BENCHDIFF=1 make check.
if [ "${BENCHDIFF:-0}" = "1" ]; then
    echo "== benchdiff"
    ./scripts/benchdiff.sh
    echo "== bench-shards"
    ./scripts/benchshards.sh
fi

echo "== fuzz (bounded)"
go test ./internal/algebra -run '^$' -fuzz '^FuzzExprParseEval$' -fuzztime=10s
go test ./internal/algebra -run '^$' -fuzz '^FuzzCompiledEval$' -fuzztime=10s
go test ./internal/bag -run '^$' -fuzz '^FuzzBagOps$' -fuzztime=10s

echo "check.sh: all gates passed"
