#!/usr/bin/env bash
# profile.sh — capture labeled CPU + heap profiles of the sharded
# retail day (also `make profile`).
#
# Runs `dvmbench -shards N` under -cpuprofile/-memprofile and leaves
# the profiles in profiles/ (untracked). The bench prints a
# dvm_view/dvm_shard/dvm_phase attribution summary; drill down with
#   go tool pprof -tags profiles/cpu.pprof
# or by phase:
#   go tool pprof -focus-tags dvm_phase=propagate profiles/cpu.pprof
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS="${SHARDS:-4}"
OUT="${OUT:-profiles}"
mkdir -p "$OUT"

echo "== dvmbench -shards $SHARDS (profiling to $OUT/)"
go run ./cmd/dvmbench -shards "$SHARDS" \
    -cpuprofile "$OUT/cpu.pprof" \
    -memprofile "$OUT/heap.pprof"

echo "profile.sh: wrote $OUT/cpu.pprof and $OUT/heap.pprof"
