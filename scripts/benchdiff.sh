#!/usr/bin/env bash
# benchdiff.sh — downtime-regression guard (see docs/observability.md).
#
# Runs a fresh `dvmbench -json` and compares every view-downtime phase
# against the newest BENCH_*.json baseline in the repo root. Fails
# (exit 1) when any downtime phase's max regressed more than 2x; both
# sides under the noise floor are ignored. With no baseline captured
# yet there is nothing to compare against, so the script exits 0.
set -euo pipefail
cd "$(dirname "$0")/.."

latest=""
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    latest="$f"
done
if [ -z "$latest" ]; then
    echo "benchdiff: no BENCH_*.json baseline found; skipping"
    exit 0
fi

echo "benchdiff: comparing fresh run against $latest"
go run ./cmd/dvmbench -json -diff "$latest" > /dev/null
