GO ?= go

.PHONY: build test lint check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dvmlint ./...

# The expanded tier-1 gate: build + vet + dvmlint + race tests + bounded
# fuzzing. Same battery as scripts/check.sh.
check:
	./scripts/check.sh

fuzz:
	$(GO) test ./internal/algebra -run '^$$' -fuzz '^FuzzExprParseEval$$' -fuzztime=30s
	$(GO) test ./internal/bag -run '^$$' -fuzz '^FuzzBagOps$$' -fuzztime=30s
