GO ?= go

.PHONY: build test lint doccheck check fuzz benchdiff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dvmlint ./...

# Resolve every file:line anchor and relative link in the docs.
doccheck:
	$(GO) run ./cmd/doccheck

# The expanded tier-1 gate: build + vet + dvmlint + doccheck + race
# tests + bounded fuzzing. Same battery as scripts/check.sh. Set
# BENCHDIFF=1 to also guard against downtime regressions vs the
# newest BENCH_*.json baseline.
check:
	./scripts/check.sh

# Compare a fresh dvmbench run's downtime phases against the newest
# BENCH_*.json baseline; fails on any >2x regression.
benchdiff:
	./scripts/benchdiff.sh

fuzz:
	$(GO) test ./internal/algebra -run '^$$' -fuzz '^FuzzExprParseEval$$' -fuzztime=30s
	$(GO) test ./internal/bag -run '^$$' -fuzz '^FuzzBagOps$$' -fuzztime=30s
