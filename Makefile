GO ?= go

.PHONY: build test lint lint-json doccheck check fuzz benchdiff bench-shards profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dvmlint ./...

# Machine-readable findings for CI artifacts and editor integrations.
# Exit 1 (findings) still writes the array, so only a broken build
# (exit 2) fails the target; dvmlint.json is untracked output.
lint-json:
	$(GO) run ./cmd/dvmlint -json ./... > dvmlint.json; \
	status=$$?; \
	if [ $$status -eq 2 ]; then cat dvmlint.json; exit 2; fi; \
	echo "dvmlint.json written ($$status findings-exit)"

# Resolve every file:line anchor and relative link in the docs.
doccheck:
	$(GO) run ./cmd/doccheck

# The expanded tier-1 gate: build + vet + dvmlint + doccheck + race
# tests + bounded fuzzing. Same battery as scripts/check.sh. Set
# BENCHDIFF=1 to also guard against downtime regressions vs the
# newest BENCH_*.json baseline.
check:
	./scripts/check.sh

# Compare a fresh dvmbench run's downtime phases against the newest
# BENCH_*.json baseline; fails on any >2x regression.
benchdiff:
	./scripts/benchdiff.sh

# The sharded-propagate scaling comparison: the multi-shard retail day
# at 1/2/4 shards, plus the E15 downtime and E16 compiled-programs
# guards against the newest BENCH_*.json baseline (single-shard serial
# config included; guarded phases are view_downtime_ns + txn_exec_ns).
bench-shards:
	./scripts/benchshards.sh

# Capture labeled CPU + heap profiles of the sharded retail day into
# profiles/ (untracked) and print the dvm_phase attribution summary.
# SHARDS=8 make profile changes the shard count.
profile:
	./scripts/profile.sh

fuzz:
	$(GO) test ./internal/algebra -run '^$$' -fuzz '^FuzzExprParseEval$$' -fuzztime=30s
	$(GO) test ./internal/algebra -run '^$$' -fuzz '^FuzzCompiledEval$$' -fuzztime=30s
	$(GO) test ./internal/bag -run '^$$' -fuzz '^FuzzBagOps$$' -fuzztime=30s
