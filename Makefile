GO ?= go

.PHONY: build test lint doccheck check fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dvmlint ./...

# Resolve every file:line anchor and relative link in the docs.
doccheck:
	$(GO) run ./cmd/doccheck

# The expanded tier-1 gate: build + vet + dvmlint + doccheck + race
# tests + bounded fuzzing. Same battery as scripts/check.sh.
check:
	./scripts/check.sh

fuzz:
	$(GO) test ./internal/algebra -run '^$$' -fuzz '^FuzzExprParseEval$$' -fuzztime=30s
	$(GO) test ./internal/bag -run '^$$' -fuzz '^FuzzBagOps$$' -fuzztime=30s
