package dvm_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"dvm/internal/lint"
)

// docAnalyzerRe extracts the analyzer name from one table row of the
// catalogue in docs/static-analysis.md: "| `check-name` | ...".
var docAnalyzerRe = regexp.MustCompile("(?m)^\\| `([a-z0-9-]+)` \\|")

// docHeadingRe matches a per-analyzer section heading: "### `name`".
var docHeadingRe = regexp.MustCompile("(?m)^### `([a-z0-9-]+)`")

// TestLintDocsMatchRegistry keeps docs/static-analysis.md 1:1 with the
// analyzer registry, in both directions and at both granularities: the
// catalogue table between the analyzers:begin/end markers, and a
// "### `name`" section per analyzer. Registering an analyzer without
// documenting it, or documenting one that no longer runs, fails here —
// the same contract obsdocs_test.go enforces for metric families.
func TestLintDocsMatchRegistry(t *testing.T) {
	data, err := os.ReadFile("docs/static-analysis.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)

	begin := strings.Index(text, "<!-- analyzers:begin -->")
	end := strings.Index(text, "<!-- analyzers:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("docs/static-analysis.md: analyzers:begin/end markers missing or out of order")
	}
	tabled := map[string]bool{}
	for _, m := range docAnalyzerRe.FindAllStringSubmatch(text[begin:end], -1) {
		tabled[m[1]] = true
	}
	if len(tabled) == 0 {
		t.Fatal("docs/static-analysis.md: no analyzer rows found between markers")
	}

	sectioned := map[string]bool{}
	for _, m := range docHeadingRe.FindAllStringSubmatch(text, -1) {
		sectioned[m[1]] = true
	}

	registered := map[string]bool{}
	for _, a := range lint.All() {
		registered[a.Name] = true
		if !tabled[a.Name] {
			t.Errorf("analyzer %q is registered but missing from the catalogue table", a.Name)
		}
		if !sectioned[a.Name] {
			t.Errorf("analyzer %q is registered but has no \"### `%s`\" section", a.Name, a.Name)
		}
	}
	for name := range tabled {
		if !registered[name] {
			t.Errorf("catalogue table documents %q but no such analyzer is registered", name)
		}
	}
	for name := range sectioned {
		if !registered[name] {
			t.Errorf("docs/static-analysis.md has a section for %q but no such analyzer is registered", name)
		}
	}
}
