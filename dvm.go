// Package dvm is the public API of the deferred view maintenance
// library — an implementation of Colby, Griffin, Libkin, Mumick, and
// Trickey, "Algorithms for Deferred View Maintenance" (SIGMOD 1996),
// together with the substrate it assumes: a bag-algebra query engine, an
// in-memory relational store, and an embedded SQL dialect.
//
// The package re-exports the library's layers through type aliases, so
// downstream users program against dvm.* while the implementation lives
// in internal packages:
//
//	eng := dvm.NewEngine()
//	eng.Exec(`CREATE TABLE sales (custId INT, itemNo INT, quantity INT, salesPrice FLOAT)`)
//	eng.Exec(`CREATE MATERIALIZED VIEW hv REFRESH DEFERRED COMBINED AS
//	          SELECT s.custId, s.itemNo FROM sales s WHERE s.quantity != 0`)
//	eng.Exec(`INSERT INTO sales VALUES (1, 10, 2, 9.99)`)
//	eng.Exec(`PROPAGATE hv`)         // fold logs into ∇MV/△MV — no downtime
//	eng.Exec(`PARTIAL REFRESH hv`)   // Policy 2: apply precomputed deltas
//	res, _ := eng.Exec(`SELECT * FROM hv`)
//
// or, at the algebra level:
//
//	db := dvm.NewDatabase()
//	mgr := dvm.NewManager(db)
//	mgr.DefineView("v", def, dvm.Combined)
//	mgr.Execute(dvm.Insert("sales", rows))
//	mgr.Refresh("v")
//
// The four maintenance scenarios correspond to the paper's Figure 1
// invariants: Immediate (Q ≡ MV), BaseLogs (PAST(L,Q) ≡ MV), DiffTables
// (Q ≡ (MV ∸ ∇MV) ⊎ △MV), and Combined (both). See README.md for the
// full tour and DESIGN.md for the paper-to-code map.
package dvm

import (
	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/core"
	"dvm/internal/delta"
	"dvm/internal/schema"
	"dvm/internal/sql"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// --- Storage layer ---

// Database is a mutable database state: named tables holding bags of
// tuples.
type Database = storage.Database

// Table is one named relation.
type Table = storage.Table

// NewDatabase creates an empty database.
func NewDatabase() *Database { return storage.NewDatabase() }

// Table kinds: user tables vs maintenance-owned tables.
const (
	External = storage.External
	Internal = storage.Internal
)

// --- Value / tuple / schema layer ---

// Value is a scalar database value; Tuple is one row; Schema describes a
// relation's columns.
type (
	Value  = schema.Value
	Tuple  = schema.Tuple
	Schema = schema.Schema
	Column = schema.Column
)

// Scalar constructors.
var (
	Null  = schema.Null
	Int   = schema.Int
	Float = schema.Float
	Str   = schema.Str
	Bool  = schema.Bool
	Row   = schema.Row
	Col   = schema.Col
)

// NewSchema builds a relation schema from columns.
func NewSchema(cols ...Column) *Schema { return schema.NewSchema(cols...) }

// Column types.
const (
	TInt    = schema.TInt
	TFloat  = schema.TFloat
	TString = schema.TString
	TBool   = schema.TBool
)

// --- Bags ---

// Bag is a finite multiset of tuples with the paper's operations.
type Bag = bag.Bag

// NewBag returns an empty bag; BagOf builds one from tuples.
var (
	NewBag = bag.New
	BagOf  = bag.Of
)

// --- Algebra ---

// Expr is a bag-algebra query; Predicate a quantifier-free selection
// predicate.
type (
	Expr      = algebra.Expr
	Predicate = algebra.Predicate
)

// Expression constructors (see internal/algebra for the full set).
var (
	NewBase    = algebra.NewBase
	NewSelect  = algebra.NewSelect
	NewProject = algebra.NewProject
	NewDupElim = algebra.NewDupElim
	NewUnion   = algebra.NewUnionAll
	NewMonus   = algebra.NewMonus
	NewProduct = algebra.NewProduct
	JoinOn     = algebra.JoinOn
	ExceptOf   = algebra.ExceptOf
	MinOf      = algebra.MinOf
	MaxOf      = algebra.MaxOf
	Eval       = algebra.Eval
	A          = algebra.A
	C          = algebra.C
	Eq         = algebra.Eq
	Neq        = algebra.Neq
	Lt         = algebra.Lt
	Gt         = algebra.Gt
	AndOf      = algebra.AndOf
	OrOf       = algebra.OrOf
	NotOf      = algebra.NotOf
)

// --- Transactions ---

// Txn is a simple transaction: per-table delete/insert bags applied
// simultaneously.
type (
	Txn    = txn.Txn
	Update = txn.Update
)

// Transaction constructors.
var (
	Insert = txn.Insert
	Delete = txn.Delete
)

// --- Maintenance (the paper's contribution) ---

// Manager maintains materialized views over a database; View is one
// registered view; Scenario selects the Figure 1 invariant; Policy is a
// tick-driven refresh policy (Section 5.3).
type (
	Manager = core.Manager
	View    = core.View
	Policy  = core.Policy
	Runner  = core.Runner
)

// Scenario is one of the paper's four maintenance scenarios.
type Scenario = core.Scenario

// The four scenarios of Figure 1.
const (
	Immediate  = core.Immediate
	BaseLogs   = core.BaseLogs
	DiffTables = core.DiffTables
	Combined   = core.Combined
)

// NewManager wraps a database in a maintenance manager.
func NewManager(db *Database, opts ...core.ManagerOption) *Manager {
	return core.NewManager(db, opts...)
}

// Manager and view options.
var (
	WithSharedLogs       = core.WithSharedLogs
	WithStrongMinimality = core.WithStrongMinimality
	WithLogFilter        = core.WithLogFilter
)

// Serialized makes a Manager safe for concurrent writers; readers go
// through the per-view locks.
type Serialized = core.Serialized

// NewSerialized wraps a manager for concurrent use.
func NewSerialized(m *Manager) *Serialized { return core.NewSerialized(m) }

// SelfMaintainable reports whether a view definition can be maintained
// without reading its base tables (select-project-union class, §1.2 /
// [GJM96]).
var SelfMaintainable = delta.SelfMaintainable

// --- SQL ---

// Engine is a SQL session over a database and manager; Result is one
// statement's outcome.
type (
	Engine = sql.Engine
	Result = sql.Result
)

// EngineOption configures a new or restored Engine.
type EngineOption = sql.EngineOption

// WithTraceSpec enables per-transaction structured tracing on the
// engine's manager: "off", "all", "rate=N", or "threshold=DUR" (see
// docs/observability.md, Tracing).
var WithTraceSpec = sql.WithTraceSpec

// WithShards partitions every Combined view the engine defines into n
// hash shards: makesafe appends shard-locally and propagate evaluates
// the Figure 2 DEL/ADD queries per shard (docs/architecture.md
// "Sharding").
var WithShards = sql.WithShards

// WithRuntimeBridge starts the engine's runtime/metrics bridge: Go
// runtime health (goroutines, heap, GC pauses, scheduler latency)
// polled into the obs registry on a ticker, exposed alongside the
// maintenance families on dvmstatsd's /metrics. Stop with
// Engine.Close.
var WithRuntimeBridge = sql.WithRuntimeBridge

// WithInterpretedDeltas disables the delta-program compiler: every
// maintenance expression is evaluated by the tree-walking interpreter.
// Useful for differential testing and for measuring the compiler's win
// (docs/architecture.md "Compiled delta programs").
var WithInterpretedDeltas = sql.WithInterpretedDeltas

// NewEngine creates a SQL engine over a fresh database.
func NewEngine(opts ...EngineOption) *Engine { return sql.NewEngine(opts...) }

// NewEngineOver wraps an existing database and manager.
func NewEngineOver(db *Database, mgr *Manager) *Engine {
	return sql.NewEngineOver(db, mgr)
}

// LoadEngine restores an engine snapshot written with Engine.SaveTo:
// the external tables are reloaded and every view's DDL is replayed,
// re-materializing the views from the restored state.
var LoadEngine = sql.LoadEngine
