package dvm_test

import (
	"testing"

	"dvm"
)

// TestPublicAPISQL exercises the library purely through the public
// package: the surface a downstream user sees.
func TestPublicAPISQL(t *testing.T) {
	e := dvm.NewEngine()
	script := `
		CREATE TABLE users (id INT, name STRING);
		CREATE TABLE orders (userId INT, amount FLOAT);
		INSERT INTO users VALUES (1, 'ann'), (2, 'bob');
		INSERT INTO orders VALUES (1, 10.0), (2, 3.0);
		CREATE MATERIALIZED VIEW big REFRESH DEFERRED COMBINED AS
			SELECT u.name, o.amount FROM users u, orders o
			WHERE u.id = o.userId AND o.amount > 5.0;
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`INSERT INTO orders VALUES (2, 99.0)`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Len() != 1 {
		t.Fatalf("stale view should have 1 row, got %d", r.Rows.Len())
	}
	if _, err := e.Exec(`REFRESH big`); err != nil {
		t.Fatal(err)
	}
	r, _ = e.Exec(`SELECT * FROM big`)
	if r.Rows.Len() != 2 {
		t.Fatalf("refreshed view should have 2 rows, got %d", r.Rows.Len())
	}
	if _, err := e.Exec(`CHECK INVARIANT big`); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIAlgebra exercises the Go-level API: database, algebra,
// transactions, scenarios, policies.
func TestPublicAPIAlgebra(t *testing.T) {
	db := dvm.NewDatabase()
	sch := dvm.NewSchema(dvm.Col("x", dvm.TInt), dvm.Col("tag", dvm.TString))
	tb, err := db.Create("events", sch, dvm.External)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(dvm.Row(1, "a"), 1); err != nil {
		t.Fatal(err)
	}

	sel, err := dvm.NewSelect(dvm.Gt(dvm.A("x"), dvm.C(0)), dvm.NewBase("events", sch))
	if err != nil {
		t.Fatal(err)
	}
	mgr := dvm.NewManager(db, dvm.WithSharedLogs())
	if _, err := mgr.DefineView("pos", sel, dvm.Combined, dvm.WithStrongMinimality()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Execute(dvm.Insert("events", dvm.BagOf(dvm.Row(5, "b"), dvm.Row(-1, "c")))); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CheckInvariant("pos"); err != nil {
		t.Fatal(err)
	}

	runner, err := mgr.NewRunner("pos", dvm.Policy{PropagateEvery: 1, RefreshEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := mgr.Execute(dvm.Insert("events", dvm.BagOf(dvm.Row(i+10, "t")))); err != nil {
			t.Fatal(err)
		}
		if err := runner.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Refresh("pos"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CheckConsistent("pos"); err != nil {
		t.Fatal(err)
	}
	view, err := mgr.Query("pos")
	if err != nil {
		t.Fatal(err)
	}
	// 1,5,10..13 are positive: 6 rows.
	if view.Len() != 6 {
		t.Fatalf("view = %v", view)
	}

	// Values, tuples, bags round-trip through the public aliases.
	if dvm.Int(3).Compare(dvm.Float(3)) != 0 {
		t.Fatal("cross-type numeric equality lost")
	}
	got, err := dvm.Eval(sel, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Fatalf("Eval via public API = %v", got)
	}
	if err := mgr.Execute(dvm.Delete("events", dvm.BagOf(dvm.Row(1, "a")))); err != nil {
		t.Fatal(err)
	}
	if err := mgr.CheckInvariant("pos"); err != nil {
		t.Fatal(err)
	}
}
