module dvm

go 1.22
