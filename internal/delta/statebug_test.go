package delta

import (
	"math/rand"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
)

// example12 sets up the paper's Example 1.2. Pre-update state:
//
//	R(A,B) = {[a1,b1]}            S(B,C) = {[b1,c1],[b2,c2]}
//	MU = Π_A(σ_{R.B=S.B}(R × S)) = {[a1]}
//
// The transaction inserts [a1,b2] into R and (another) [b2,c2] into S.
// Correct △MU = {[a1],[a1]}; the pre-update algorithm evaluated in the
// post-update state yields {[a1],[a1],[a1],[a1]} — the state bug.
func example12() (pre, post algebra.MapSource, q algebra.Expr, log ChangeSet) {
	rsch := schema.NewSchema(schema.Col("R.A", schema.TString), schema.Col("R.B", schema.TString))
	ssch := schema.NewSchema(schema.Col("S.B", schema.TString), schema.Col("S.C", schema.TString))

	pre = algebra.MapSource{
		"R": bag.Of(schema.Row("a1", "b1")),
		"S": bag.Of(schema.Row("b1", "c1"), schema.Row("b2", "c2")),
	}
	insR := bag.Of(schema.Row("a1", "b2"))
	insS := bag.Of(schema.Row("b2", "c2"))
	post = algebra.MapSource{
		"R": bag.UnionAll(pre["R"], insR),
		"S": bag.UnionAll(pre["S"], insS),
	}

	r := algebra.NewBase("R", rsch)
	s := algebra.NewBase("S", ssch)
	join, err := algebra.JoinOn(r, s, algebra.Eq(algebra.A("R.B"), algebra.A("S.B")))
	if err != nil {
		panic(err)
	}
	q, err = algebra.NewProject([]string{"R.A"}, []string{"A"}, join)
	if err != nil {
		panic(err)
	}

	log = ChangeSet{
		"R": {Deleted: algebra.NewLiteral(rsch, bag.New()), Inserted: algebra.NewLiteral(rsch, insR)},
		"S": {Deleted: algebra.NewLiteral(ssch, bag.New()), Inserted: algebra.NewLiteral(ssch, insS)},
	}
	return pre, post, q, log
}

func TestExample12StateBug(t *testing.T) {
	pre, post, q, log := example12()
	a1 := schema.Row("a1")

	muPre, _ := algebra.Eval(q, pre)
	muPost, _ := algebra.Eval(q, post)
	if muPre.Count(a1) != 1 || muPost.Count(a1) != 3 {
		t.Fatalf("scenario setup wrong: pre=%v post=%v", muPre, muPost)
	}

	// Pre-update algorithm in the PRE state: correct, △MU = 2 copies.
	_, addPre, err := PreUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	av, _ := algebra.Eval(addPre, pre)
	if av.Count(a1) != 2 || av.Len() != 2 {
		t.Fatalf("pre-update in pre state: △MU = %v, want {[a1],[a1]}", av)
	}

	// The same equations in the POST state: the state bug — 4 copies.
	_, addNaive, err := NaivePostUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	nv, _ := algebra.Eval(addNaive, post)
	if nv.Count(a1) != 4 {
		t.Fatalf("state bug not reproduced: naive △MU = %v, want 4 copies of [a1]", nv)
	}

	// Our post-update algorithm in the POST state: correct.
	mvDel, mvAdd, err := PostUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	dv, _ := algebra.Eval(mvDel, post)
	av2, _ := algebra.Eval(mvAdd, post)
	refreshed := bag.UnionAll(bag.Monus(muPre, dv), av2)
	if !refreshed.Equal(muPost) {
		t.Fatalf("post-update refresh wrong: got %v want %v", refreshed, muPost)
	}
	if av2.Count(a1) != 2 {
		t.Fatalf("▲(L,Q) = %v, want net 2 copies", av2)
	}
}

// example13 sets up Example 1.3: U = R − S (monus), R = {a,b,c},
// S = {c,d}, MU = {a,b}. Transaction t deletes b from R and inserts it
// into S. Correct new U = {a}. The pre-update ∇MU evaluated post-state
// is ∅, leaving the stale b in MU.
func example13() (pre, post algebra.MapSource, q algebra.Expr, log ChangeSet) {
	sch := schema.NewSchema(schema.Col("x", schema.TString))
	pre = algebra.MapSource{
		"R": bag.Of(schema.Row("a"), schema.Row("b"), schema.Row("c")),
		"S": bag.Of(schema.Row("c"), schema.Row("d")),
	}
	delR := bag.Of(schema.Row("b"))
	insS := bag.Of(schema.Row("b"))
	post = algebra.MapSource{
		"R": bag.Monus(pre["R"], delR),
		"S": bag.UnionAll(pre["S"], insS),
	}
	r := algebra.NewBase("R", sch)
	s := algebra.NewBase("S", sch)
	m, err := algebra.NewMonus(r, s)
	if err != nil {
		panic(err)
	}
	q = m
	log = ChangeSet{
		"R": {Deleted: algebra.NewLiteral(sch, delR), Inserted: algebra.NewLiteral(sch, bag.New())},
		"S": {Deleted: algebra.NewLiteral(sch, bag.New()), Inserted: algebra.NewLiteral(sch, insS)},
	}
	return pre, post, q, log
}

func TestExample13StateBug(t *testing.T) {
	pre, post, q, log := example13()
	b := schema.Row("b")

	muPre, _ := algebra.Eval(q, pre)   // {a,b}
	muPost, _ := algebra.Eval(q, post) // {a}
	if muPre.Len() != 2 || muPost.Len() != 1 || muPost.Contains(b) {
		t.Fatalf("scenario setup wrong: pre=%v post=%v", muPre, muPost)
	}

	// Pre-update ∇MU in the PRE state: {b} — correct.
	delPre, _, err := PreUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	dv, _ := algebra.Eval(delPre, pre)
	if !dv.Equal(bag.Of(b)) {
		t.Fatalf("pre-update ∇MU in pre state = %v, want {[b]}", dv)
	}

	// Same equations in the POST state: ∇MU = ∅ — the stale tuple stays.
	delNaive, addNaive, err := NaivePostUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	ndv, _ := algebra.Eval(delNaive, post)
	nav, _ := algebra.Eval(addNaive, post)
	if !ndv.Empty() {
		t.Fatalf("state bug not reproduced: naive ∇MU = %v, want ∅", ndv)
	}
	stale := bag.UnionAll(bag.Monus(muPre, ndv), nav)
	if !stale.Contains(b) {
		t.Fatalf("expected the naive refresh to keep the incorrect tuple [b], got %v", stale)
	}

	// Our post-update algorithm removes b.
	mvDel, mvAdd, err := PostUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	pdv, _ := algebra.Eval(mvDel, post)
	pav, _ := algebra.Eval(mvAdd, post)
	refreshed := bag.UnionAll(bag.Monus(muPre, pdv), pav)
	if !refreshed.Equal(muPost) {
		t.Fatalf("post-update refresh wrong: got %v want %v", refreshed, muPost)
	}
}

func TestRemark1RestrictedClassAgreement(t *testing.T) {
	// Remark 1: for SPJ queries without self-joins updated in a SINGLE
	// table, pre-update and post-update equations agree when evaluated in
	// the post-update state. Randomized check over SPJ joins with
	// single-table inserts/deletes.
	r := rand.New(rand.NewSource(23))
	rsch := schema.NewSchema(schema.Col("R.k", schema.TInt), schema.Col("R.v", schema.TInt))
	ssch := schema.NewSchema(schema.Col("S.k", schema.TInt), schema.Col("S.w", schema.TInt))
	for i := 0; i < 100; i++ {
		pre := algebra.MapSource{"R": bag.New(), "S": bag.New()}
		for j, n := 0, r.Intn(8); j < n; j++ {
			pre["R"].Add(schema.Row(r.Intn(4), r.Intn(4)), 1)
		}
		for j, n := 0, r.Intn(8); j < n; j++ {
			pre["S"].Add(schema.Row(r.Intn(4), r.Intn(4)), 1)
		}
		rE := algebra.NewBase("R", rsch)
		sE := algebra.NewBase("S", ssch)
		join, err := algebra.JoinOn(rE, sE, algebra.Eq(algebra.A("R.k"), algebra.A("S.k")))
		if err != nil {
			t.Fatal(err)
		}
		q, err := algebra.NewProject([]string{"R.v", "S.w"}, nil, join)
		if err != nil {
			t.Fatal(err)
		}

		// Single-table update: touch only R.
		del := bag.New()
		ins := bag.New()
		for j, n := 0, r.Intn(3); j < n; j++ {
			del.Add(schema.Row(r.Intn(4), r.Intn(4)), 1)
		}
		for j, n := 0, r.Intn(3); j < n; j++ {
			ins.Add(schema.Row(r.Intn(4), r.Intn(4)), 1)
		}
		del = bag.Min(del, pre["R"])
		post := algebra.MapSource{
			"R": bag.UnionAll(bag.Monus(pre["R"], del), ins),
			"S": pre["S"],
		}
		log := ChangeSet{"R": {
			Deleted:  algebra.NewLiteral(rsch, del),
			Inserted: algebra.NewLiteral(rsch, ins),
		}}

		nd, na, err := NaivePostUpdate(log, q)
		if err != nil {
			t.Fatal(err)
		}
		pd, pa, err := PostUpdate(log, q)
		if err != nil {
			t.Fatal(err)
		}
		ndv, _ := algebra.Eval(nd, post)
		nav, _ := algebra.Eval(na, post)
		pdv, _ := algebra.Eval(pd, post)
		pav, _ := algebra.Eval(pa, post)
		if !ndv.Equal(pdv) || !nav.Equal(pav) {
			t.Fatalf("Remark 1 violated on iteration %d: naive (▼=%v ▲=%v) vs post (▼=%v ▲=%v)",
				i, ndv, nav, pdv, pav)
		}
	}
}

func TestRemark1BreaksWithMultiTableUpdate(t *testing.T) {
	// Example 1.2 is exactly the violation: SPJ, no self-join, but TWO
	// tables updated — the naive equations disagree with ours there.
	_, post, q, log := example12()
	_, na, err := NaivePostUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	_, pa, err := PostUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	nav, _ := algebra.Eval(na, post)
	pav, _ := algebra.Eval(pa, post)
	if nav.Equal(pav) {
		t.Fatal("expected disagreement once two tables are updated")
	}
}
