package delta

import (
	"math/rand"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
)

// randSubst builds a random weakly minimal factored substitution over the
// universe: per-table literal delete/insert bags with deletes capped to
// the table's current contents (D_i ⊑ R_i).
func randSubst(r *rand.Rand, u *algebra.RandomUniverse, st algebra.MapSource) Subst {
	s := Subst{}
	for _, name := range u.Tables {
		del, ins := u.RandomDelta(r)
		del = bag.Min(del, st[name]) // weak minimality
		s[name] = Factored{
			Del: algebra.NewLiteral(u.Sch, del),
			Add: algebra.NewLiteral(u.Sch, ins),
		}
	}
	return s
}

func TestTheorem2Correctness(t *testing.T) {
	// Theorem 2: η(Q) ≡ (Q ∸ DEL(η,Q)) ⊎ ADD(η,Q) and DEL(η,Q) ⊑ Q,
	// for random queries, states, and weakly minimal substitutions.
	r := rand.New(rand.NewSource(42))
	u := algebra.NewRandomUniverse(3)
	for i := 0; i < 400; i++ {
		q := u.RandomQuery(r, 3)
		st := u.RandomState(r)
		eta := randSubst(r, u, st)

		applied, err := eta.Apply(q)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		want, err := algebra.Eval(applied, st)
		if err != nil {
			t.Fatalf("eval η(Q): %v", err)
		}

		delE, addE, err := Differentiate(eta, q)
		if err != nil {
			t.Fatalf("differentiate: %v", err)
		}
		qv, err := algebra.Eval(q, st)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := algebra.Eval(delE, st)
		if err != nil {
			t.Fatalf("eval DEL: %v", err)
		}
		av, err := algebra.Eval(addE, st)
		if err != nil {
			t.Fatalf("eval ADD: %v", err)
		}
		got := bag.UnionAll(bag.Monus(qv, dv), av)
		if !got.Equal(want) {
			t.Fatalf("iteration %d: Theorem 2(a) violated for\nQ = %s\nQ(s)=%v DEL=%v ADD=%v\nwant η(Q)(s)=%v got %v",
				i, q, qv, dv, av, want, got)
		}
		if !dv.SubBagOf(qv) {
			t.Fatalf("iteration %d: Theorem 2(b) violated: DEL=%v ⋢ Q=%v for %s", i, dv, qv, q)
		}
	}
}

// applyChanges installs per-table (delete, insert) bags into a copy of
// the state with simple-transaction semantics, normalizing deletes to the
// effective (weakly minimal) bag. It returns the new state and the
// effective change set.
func applyChanges(st algebra.MapSource, deltas map[string][2]*bag.Bag) (algebra.MapSource, map[string][2]*bag.Bag) {
	out := algebra.MapSource{}
	eff := map[string][2]*bag.Bag{}
	for name, b := range st {
		d := deltas[name]
		del, ins := d[0], d[1]
		if del == nil {
			del = bag.New()
		}
		if ins == nil {
			ins = bag.New()
		}
		del = bag.Min(del, b) // effective deletes
		out[name] = bag.UnionAll(bag.Monus(b, del), ins)
		eff[name] = [2]*bag.Bag{del, ins}
	}
	return out, eff
}

func randDeltas(r *rand.Rand, u *algebra.RandomUniverse) map[string][2]*bag.Bag {
	d := map[string][2]*bag.Bag{}
	for _, name := range u.Tables {
		del, ins := u.RandomDelta(r)
		d[name] = [2]*bag.Bag{del, ins}
	}
	return d
}

func literalChangeSet(u *algebra.RandomUniverse, deltas map[string][2]*bag.Bag) ChangeSet {
	c := ChangeSet{}
	for name, d := range deltas {
		c[name] = struct {
			Deleted  algebra.Expr
			Inserted algebra.Expr
		}{
			Deleted:  algebra.NewLiteral(u.Sch, d[0]),
			Inserted: algebra.NewLiteral(u.Sch, d[1]),
		}
	}
	return c
}

func TestPreUpdateFutureCorrectness(t *testing.T) {
	// FUTURE(T,Q)(s) = Q(T(s)): applying ∇(T,Q)/△(T,Q) computed in the
	// PRE state to Q's pre value yields Q's post value.
	r := rand.New(rand.NewSource(7))
	u := algebra.NewRandomUniverse(2)
	for i := 0; i < 300; i++ {
		q := u.RandomQuery(r, 3)
		pre := u.RandomState(r)
		post, eff := applyChanges(pre, randDeltas(r, u))
		cs := literalChangeSet(u, eff)

		delE, addE, err := PreUpdate(cs, q)
		if err != nil {
			t.Fatal(err)
		}
		qPre, _ := algebra.Eval(q, pre)
		qPost, _ := algebra.Eval(q, post)
		dv, err := algebra.Eval(delE, pre)
		if err != nil {
			t.Fatal(err)
		}
		av, err := algebra.Eval(addE, pre)
		if err != nil {
			t.Fatal(err)
		}
		got := bag.UnionAll(bag.Monus(qPre, dv), av)
		if !got.Equal(qPost) {
			t.Fatalf("iteration %d: pre-update maintenance wrong for %s:\npre=%v post=%v got=%v (∇=%v △=%v)",
				i, q, qPre, qPost, got, dv, av)
		}
		if !dv.SubBagOf(qPre) {
			t.Fatalf("iteration %d: ∇(T,Q) ⋢ Q in pre state", i)
		}
	}
}

func TestPostUpdatePastAndRefreshCorrectness(t *testing.T) {
	// For a weakly minimal log L from s_p to s_c:
	//  (1) PAST(L,Q)(s_c) = Q(s_p)
	//  (2) (Q(s_p) ∸ ▼(L,Q)(s_c)) ⊎ ▲(L,Q)(s_c) = Q(s_c)
	r := rand.New(rand.NewSource(11))
	u := algebra.NewRandomUniverse(2)
	for i := 0; i < 300; i++ {
		q := u.RandomQuery(r, 3)
		sp := u.RandomState(r)
		sc, eff := applyChanges(sp, randDeltas(r, u))
		log := literalChangeSet(u, eff)

		past, err := LogSubst(log).Apply(q)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := algebra.Eval(past, sc)
		if err != nil {
			t.Fatal(err)
		}
		qPast, _ := algebra.Eval(q, sp)
		if !pv.Equal(qPast) {
			t.Fatalf("iteration %d: PAST(L,Q)(s_c)=%v != Q(s_p)=%v for %s", i, pv, qPast, q)
		}

		mvDel, mvAdd, err := PostUpdate(log, q)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := algebra.Eval(mvDel, sc)
		if err != nil {
			t.Fatal(err)
		}
		av, err := algebra.Eval(mvAdd, sc)
		if err != nil {
			t.Fatal(err)
		}
		qNow, _ := algebra.Eval(q, sc)
		got := bag.UnionAll(bag.Monus(qPast, dv), av)
		if !got.Equal(qNow) {
			t.Fatalf("iteration %d: post-update refresh wrong for %s:\npast=%v now=%v got=%v (▼=%v ▲=%v)",
				i, q, qPast, qNow, got, dv, av)
		}
	}
}

func TestPostUpdateCancelledAgreesWhenMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	u := algebra.NewRandomUniverse(2)
	for i := 0; i < 150; i++ {
		q := u.RandomQuery(r, 3)
		sp := u.RandomState(r)
		sc, eff := applyChanges(sp, randDeltas(r, u))
		log := literalChangeSet(u, eff)
		qPast, _ := algebra.Eval(q, sp)
		qNow, _ := algebra.Eval(q, sc)

		mvDel, mvAdd, err := PostUpdateCancelled(log, q)
		if err != nil {
			t.Fatal(err)
		}
		dv, _ := algebra.Eval(mvDel, sc)
		av, _ := algebra.Eval(mvAdd, sc)
		got := bag.UnionAll(bag.Monus(qPast, dv), av)
		if !got.Equal(qNow) {
			t.Fatalf("cancelled refresh wrong for %s: past=%v now=%v got=%v", q, qPast, qNow, got)
		}
	}
}

func TestPostUpdateCancelledHandlesNonMinimalLog(t *testing.T) {
	// A log that is NOT weakly minimal: R is empty now, but the log
	// claims ▲R = {x} and ▼R = {x} (insert-then-delete recorded without
	// merging). PAST(L,R)(s_c) = (∅ ∸ {x}) ⊎ {x} = {x}.
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	st := algebra.MapSource{"R": bag.New()}
	q := algebra.NewBase("R", sch)
	x := bag.Of(schema.Row(1))
	log := ChangeSet{"R": {
		Deleted:  algebra.NewLiteral(sch, x),
		Inserted: algebra.NewLiteral(sch, x),
	}}

	// MV holds the past value {x}; current value is ∅.
	mv := x.Clone()

	// The weakly-minimal shortcut gives the wrong answer here...
	d1, a1, err := PostUpdate(log, q)
	if err != nil {
		t.Fatal(err)
	}
	dv1, _ := algebra.Eval(d1, st)
	av1, _ := algebra.Eval(a1, st)
	got1 := bag.UnionAll(bag.Monus(mv, dv1), av1)
	if got1.Empty() {
		t.Fatal("expected the shortcut to fail on a non-minimal log (it is only specified for minimal logs)")
	}

	// ...while the cancelled form is correct for any log.
	d2, a2, err := PostUpdateCancelled(log, q)
	if err != nil {
		t.Fatal(err)
	}
	dv2, _ := algebra.Eval(d2, st)
	av2, _ := algebra.Eval(a2, st)
	got2 := bag.UnionAll(bag.Monus(mv, dv2), av2)
	if !got2.Empty() {
		t.Fatalf("cancelled refresh wrong: got %v, want ∅", got2)
	}
}

func TestStrengthenMinimality(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	u := algebra.NewRandomUniverse(2)
	for i := 0; i < 200; i++ {
		q := u.RandomQuery(r, 3)
		st := u.RandomState(r)
		eta := randSubst(r, u, st)
		delE, addE, err := Differentiate(eta, q)
		if err != nil {
			t.Fatal(err)
		}
		sd, sa, err := StrengthenMinimality(delE, addE)
		if err != nil {
			t.Fatal(err)
		}
		qv, _ := algebra.Eval(q, st)
		dv, _ := algebra.Eval(sd, st)
		av, _ := algebra.Eval(sa, st)
		// Condition (b): no tuple both deleted and reinserted.
		if !bag.Min(dv, av).Empty() {
			t.Fatalf("strong minimality violated: DEL=%v ADD=%v share tuples", dv, av)
		}
		// Condition (a) still holds.
		if !dv.SubBagOf(qv) {
			t.Fatalf("weak minimality lost after strengthening")
		}
		// Equivalence preserved.
		applied, _ := eta.Apply(q)
		want, _ := algebra.Eval(applied, st)
		got := bag.UnionAll(bag.Monus(qv, dv), av)
		if !got.Equal(want) {
			t.Fatalf("strengthening changed the result: want %v got %v", want, got)
		}
	}
}

func TestFromBags(t *testing.T) {
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	deltas := map[string][2]*bag.Bag{"R": {bag.Of(schema.Row(1)), bag.Of(schema.Row(2))}}
	s, err := FromBags(deltas, map[string]*schema.Schema{"R": sch})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s["R"]
	if !ok {
		t.Fatal("R missing from substitution")
	}
	st := algebra.MapSource{"R": bag.Of(schema.Row(1), schema.Row(3))}
	dv, _ := algebra.Eval(f.Del, st)
	av, _ := algebra.Eval(f.Add, st)
	if !dv.Equal(bag.Of(schema.Row(1))) || !av.Equal(bag.Of(schema.Row(2))) {
		t.Fatal("FromBags literals wrong")
	}
	if _, err := FromBags(deltas, map[string]*schema.Schema{}); err == nil {
		t.Fatal("missing schema should error")
	}
}

func TestApplySubstitution(t *testing.T) {
	// η(R) with D={1}, A={2} over R={1,3} evaluates to {2,3}.
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	st := algebra.MapSource{"R": bag.Of(schema.Row(1), schema.Row(3))}
	eta := Subst{"R": {
		Del: algebra.NewLiteral(sch, bag.Of(schema.Row(1))),
		Add: algebra.NewLiteral(sch, bag.Of(schema.Row(2))),
	}}
	q := algebra.NewBase("R", sch)
	ap, err := eta.Apply(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := algebra.Eval(ap, st)
	if !got.Equal(bag.Of(schema.Row(2), schema.Row(3))) {
		t.Fatalf("apply wrong: %v", got)
	}
	// Tables not in η pass through untouched.
	q2 := algebra.NewBase("S", sch)
	ap2, err := eta.Apply(q2)
	if err != nil {
		t.Fatal(err)
	}
	if ap2 != q2 {
		t.Fatal("untouched table should be returned as-is")
	}
}

func TestDelAddConvenienceWrappers(t *testing.T) {
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	eta := Subst{"R": {
		Del: algebra.NewLiteral(sch, bag.Of(schema.Row(1))),
		Add: algebra.NewLiteral(sch, bag.Of(schema.Row(2))),
	}}
	q := algebra.NewBase("R", sch)
	d, err := Del(eta, q)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Add(eta, q)
	if err != nil {
		t.Fatal(err)
	}
	st := algebra.MapSource{"R": bag.Of(schema.Row(1), schema.Row(3))}
	dv, _ := algebra.Eval(d, st)
	av, _ := algebra.Eval(a, st)
	if !dv.Equal(bag.Of(schema.Row(1))) || !av.Equal(bag.Of(schema.Row(2))) {
		t.Fatalf("Del/Add wrappers wrong: %v / %v", dv, av)
	}
}
