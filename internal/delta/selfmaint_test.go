package delta

import (
	"math/rand"
	"strings"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/schema"
)

func spSchema() *schema.Schema {
	return schema.NewSchema(schema.Col("a", schema.TInt), schema.Col("b", schema.TInt))
}

func TestSelfMaintainableClassification(t *testing.T) {
	sch := spSchema()
	r := algebra.NewBase("R", sch)
	s := algebra.NewBase("S", sch)
	sel, err := algebra.NewSelect(algebra.Gt(algebra.A("a"), algebra.C(0)), r)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := algebra.NewProject([]string{"a"}, nil, sel)
	if err != nil {
		t.Fatal(err)
	}
	un, err := algebra.NewUnionAll(sel, s)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := algebra.NewMonus(r, s)
	if err != nil {
		t.Fatal(err)
	}

	yes := []algebra.Expr{r, sel, proj, un, algebra.Empty(sch)}
	for _, q := range yes {
		if !SelfMaintainable(q) {
			t.Errorf("%s should be self-maintainable", q)
		}
	}
	no := []algebra.Expr{
		algebra.NewDupElim(r),
		mon,
		algebra.NewProduct(algebra.Qualified(r, "l"), algebra.Qualified(s, "r")),
	}
	for _, q := range no {
		if SelfMaintainable(q) {
			t.Errorf("%s should NOT be self-maintainable", q)
		}
	}
}

// TestSelfMaintainableMeansNoBaseAccess verifies the semantic
// definition: for queries classified self-maintainable, the Figure 2
// differentials reference only the substitution's delta tables; for the
// others they reference at least one base table.
func TestSelfMaintainableMeansNoBaseAccess(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	u := algebra.NewRandomUniverse(2)
	cs := ChangeSet{}
	for _, name := range u.Tables {
		cs[name] = struct {
			Deleted  algebra.Expr
			Inserted algebra.Expr
		}{
			Deleted:  algebra.NewBase("__d_"+name, u.Sch),
			Inserted: algebra.NewBase("__i_"+name, u.Sch),
		}
	}
	isDelta := func(name string) bool { return strings.HasPrefix(name, "__d_") || strings.HasPrefix(name, "__i_") }

	checked := 0
	for i := 0; i < 300 && checked < 100; i++ {
		q := u.RandomQuery(r, 3)
		d, a, err := Differentiate(TransactionSubst(cs), q)
		if err != nil {
			t.Fatal(err)
		}
		touchesBase := false
		for _, e := range []algebra.Expr{d, a} {
			for _, name := range algebra.BaseNames(e) {
				if !isDelta(name) {
					touchesBase = true
				}
			}
		}
		if SelfMaintainable(q) {
			checked++
			if touchesBase {
				t.Fatalf("self-maintainable query's differentials read base tables:\nQ = %s\nDEL = %s", q, d)
			}
		}
	}
	if checked == 0 {
		t.Fatal("random generator produced no self-maintainable queries to check")
	}
}
