// Package delta implements the paper's differential algorithms
// (Section 4, Figure 2): the mutually recursive queries DEL(η,Q) and
// ADD(η,Q) for weakly minimal factored substitutions η, satisfying
//
//	η(Q) ≡ (Q ∸ DEL(η,Q)) ⊎ ADD(η,Q)   and   DEL(η,Q) ⊑ Q     (Theorem 2)
//
// together with the derived incremental queries for both maintenance
// directions:
//
//   - pre-update (immediate maintenance): for a simple transaction T,
//     ∇(T,Q) = DEL(T̂,Q) and △(T,Q) = ADD(T̂,Q), evaluated in the state
//     BEFORE T runs;
//   - post-update (deferred maintenance): for a log L, by the duality and
//     cancellation argument of Section 4, ▼(L,Q) = ADD(L̂,Q) and
//     ▲(L,Q) = DEL(L̂,Q), evaluated in the CURRENT state, after the
//     logged changes have been applied.
//
// The package also provides the naive baseline that evaluates the
// pre-update incremental queries in the post-update state — the "state
// bug" of Section 1.2 — and a strong-minimality post-pass (Section 4.1).
package delta

import (
	"fmt"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
)

// Factored is one table's entry in a factored substitution: the table R
// is replaced by (R ∸ Del) ⊎ Add. Del and Add are arbitrary expressions
// (typically base references to auxiliary tables, or literal bags) and
// must be union-compatible with R; their column names should match R's so
// predicates over R still bind.
type Factored struct {
	Del algebra.Expr
	Add algebra.Expr
}

// Subst is a factored substitution η = [(R_i ∸ D_i) ⊎ A_i / R_i]
// (Section 2.4). Tables absent from the map are unchanged, i.e. D = A = ∅.
type Subst map[string]Factored

// FromBags builds a substitution from concrete per-table delete/insert
// bags (the white-triangle form a user transaction supplies). schemas
// gives each table's schema.
func FromBags(deltas map[string][2]*bag.Bag, schemas map[string]*schema.Schema) (Subst, error) {
	s := Subst{}
	for name, d := range deltas {
		sch, ok := schemas[name]
		if !ok {
			return nil, fmt.Errorf("delta: no schema for table %q", name)
		}
		s[name] = Factored{
			Del: algebra.NewLiteral(sch, d[0]),
			Add: algebra.NewLiteral(sch, d[1]),
		}
	}
	return s, nil
}

// Apply builds the substituted query η(Q).
func (s Subst) Apply(q algebra.Expr) (algebra.Expr, error) {
	repl := map[string]algebra.Expr{}
	for name, f := range s {
		base := algebra.NewBase(name, f.Del.Schema())
		m, err := algebra.NewMonus(base, f.Del)
		if err != nil {
			return nil, fmt.Errorf("delta: apply %s: %w", name, err)
		}
		u, err := algebra.NewUnionAll(m, f.Add)
		if err != nil {
			return nil, fmt.Errorf("delta: apply %s: %w", name, err)
		}
		repl[name] = u
	}
	return algebra.Substitute(q, repl)
}

// Del computes DEL(η,Q) per Figure 2. The result is a query over the
// current state (base tables plus whatever auxiliary tables η's entries
// reference).
func Del(eta Subst, q algebra.Expr) (algebra.Expr, error) {
	d, _, err := differentiate(eta, q)
	return d, err
}

// Add computes ADD(η,Q) per Figure 2.
func Add(eta Subst, q algebra.Expr) (algebra.Expr, error) {
	_, a, err := differentiate(eta, q)
	return a, err
}

// Differentiate computes both DEL(η,Q) and ADD(η,Q) in one pass.
func Differentiate(eta Subst, q algebra.Expr) (del, add algebra.Expr, err error) {
	return differentiate(eta, q)
}

// differentiate is the mutually recursive core of Figure 2. Each case
// returns (DEL, ADD) for the node, built from the children's pairs.
func differentiate(eta Subst, q algebra.Expr) (algebra.Expr, algebra.Expr, error) {
	empty := func() algebra.Expr { return algebra.Empty(q.Schema()) }
	switch n := q.(type) {
	case *algebra.Literal:
		// Q is ∅ or a constant bag {x}: DEL ≡ ADD ≡ ∅.
		return empty(), empty(), nil

	case *algebra.Base:
		f, ok := eta[n.Name]
		if !ok {
			return empty(), empty(), nil
		}
		return f.Del, f.Add, nil

	case *algebra.Select:
		d, a, err := differentiate(eta, n.Child)
		if err != nil {
			return nil, nil, err
		}
		ds, err := algebra.NewSelect(n.Pred, d)
		if err != nil {
			return nil, nil, err
		}
		as, err := algebra.NewSelect(n.Pred, a)
		if err != nil {
			return nil, nil, err
		}
		return ds, as, nil

	case *algebra.Project:
		d, a, err := differentiate(eta, n.Child)
		if err != nil {
			return nil, nil, err
		}
		dp, err := algebra.NewProject(n.Cols, n.OutNames, d)
		if err != nil {
			return nil, nil, err
		}
		ap, err := algebra.NewProject(n.Cols, n.OutNames, a)
		if err != nil {
			return nil, nil, err
		}
		return dp, ap, nil

	case *algebra.DupElim:
		// DEL(ε E) = ε(DEL E) ∸ (E ∸ DEL E)
		// ADD(ε E) = ε(ADD E) ∸ (E ∸ DEL E)
		d, a, err := differentiate(eta, n.Child)
		if err != nil {
			return nil, nil, err
		}
		rest, err := algebra.NewMonus(n.Child, d) // E ∸ DEL(E)
		if err != nil {
			return nil, nil, err
		}
		dd, err := algebra.NewMonus(algebra.NewDupElim(d), rest)
		if err != nil {
			return nil, nil, err
		}
		aa, err := algebra.NewMonus(algebra.NewDupElim(a), rest)
		if err != nil {
			return nil, nil, err
		}
		return dd, aa, nil

	case *algebra.UnionAll:
		ld, la, err := differentiate(eta, n.L)
		if err != nil {
			return nil, nil, err
		}
		rd, ra, err := differentiate(eta, n.R)
		if err != nil {
			return nil, nil, err
		}
		du, err := algebra.NewUnionAll(ld, rd)
		if err != nil {
			return nil, nil, err
		}
		au, err := algebra.NewUnionAll(la, ra)
		if err != nil {
			return nil, nil, err
		}
		return du, au, nil

	case *algebra.Monus:
		// DEL(E ∸ F) = (DEL E ⊎ ADD F) min (E ∸ F)
		// ADD(E ∸ F) = ((ADD E ⊎ DEL F) ∸ (F ∸ E)) ∸ ((DEL E ⊎ ADD F) ∸ (E ∸ F))
		ed, ea, err := differentiate(eta, n.L)
		if err != nil {
			return nil, nil, err
		}
		fd, fa, err := differentiate(eta, n.R)
		if err != nil {
			return nil, nil, err
		}
		ef, err := algebra.NewMonus(n.L, n.R) // E ∸ F
		if err != nil {
			return nil, nil, err
		}
		fe, err := algebra.NewMonus(n.R, n.L) // F ∸ E
		if err != nil {
			return nil, nil, err
		}
		delUnion, err := algebra.NewUnionAll(ed, fa) // DEL E ⊎ ADD F
		if err != nil {
			return nil, nil, err
		}
		dm, err := algebra.MinOf(delUnion, ef)
		if err != nil {
			return nil, nil, err
		}
		addUnion, err := algebra.NewUnionAll(ea, fd) // ADD E ⊎ DEL F
		if err != nil {
			return nil, nil, err
		}
		addLHS, err := algebra.NewMonus(addUnion, fe)
		if err != nil {
			return nil, nil, err
		}
		addRHS, err := algebra.NewMonus(delUnion, ef)
		if err != nil {
			return nil, nil, err
		}
		am, err := algebra.NewMonus(addLHS, addRHS)
		if err != nil {
			return nil, nil, err
		}
		return dm, am, nil

	case *algebra.Product:
		// DEL(E × F) = (DEL E × DEL F) ⊎ (DEL E × (F ∸ DEL F)) ⊎ ((E ∸ DEL E) × DEL F)
		// ADD(E × F) = (ADD E × ADD F) ⊎ (ADD E × (F ∸ DEL F)) ⊎ ((E ∸ DEL E) × ADD F)
		ed, ea, err := differentiate(eta, n.L)
		if err != nil {
			return nil, nil, err
		}
		fd, fa, err := differentiate(eta, n.R)
		if err != nil {
			return nil, nil, err
		}
		eRest, err := algebra.NewMonus(n.L, ed) // E ∸ DEL E
		if err != nil {
			return nil, nil, err
		}
		fRest, err := algebra.NewMonus(n.R, fd) // F ∸ DEL F
		if err != nil {
			return nil, nil, err
		}
		d, err := union3(
			algebra.NewProduct(ed, fd),
			algebra.NewProduct(ed, fRest),
			algebra.NewProduct(eRest, fd),
		)
		if err != nil {
			return nil, nil, err
		}
		a, err := union3(
			algebra.NewProduct(ea, fa),
			algebra.NewProduct(ea, fRest),
			algebra.NewProduct(eRest, fa),
		)
		if err != nil {
			return nil, nil, err
		}
		return d, a, nil
	}
	return nil, nil, fmt.Errorf("delta: differentiate: unknown node %T", q)
}

func union3(a, b, c algebra.Expr) (algebra.Expr, error) {
	u, err := algebra.NewUnionAll(a, b)
	if err != nil {
		return nil, err
	}
	return algebra.NewUnionAll(u, c)
}
