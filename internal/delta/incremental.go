package delta

import (
	"dvm/internal/algebra"
)

// ChangeSet names the per-table auxiliary expressions of either a
// transaction (white triangles ∇R/△R) or a log (black triangles ▼R/▲R):
// Deleted is the bag of tuples removed from R and Inserted the bag added.
type ChangeSet map[string]struct {
	Deleted  algebra.Expr // ∇R or ▼R
	Inserted algebra.Expr // △R or ▲R
}

// TransactionSubst builds T̂, the substitution of a simple transaction
// T = {R := (R ∸ ∇R) ⊎ △R}: D_i = ∇R_i, A_i = △R_i (Section 2.4). The
// resulting incremental queries must be evaluated in the PRE-update state.
func TransactionSubst(c ChangeSet) Subst {
	s := Subst{}
	for name, ch := range c {
		s[name] = Factored{Del: ch.Deleted, Add: ch.Inserted}
	}
	return s
}

// LogSubst builds L̂, the substitution of a log recording the transition
// into the current state: past values are recovered by REMOVING what the
// log inserted and RE-ADDING what it deleted, so D_i = ▲R_i and
// A_i = ▼R_i (Section 2.4 — note the deliberate role reversal).
func LogSubst(c ChangeSet) Subst {
	s := Subst{}
	for name, ch := range c {
		s[name] = Factored{Del: ch.Inserted, Add: ch.Deleted}
	}
	return s
}

// PreUpdate computes the immediate-maintenance incremental queries
// ∇(T,Q) = DEL(T̂,Q) and △(T,Q) = ADD(T̂,Q). Both must be evaluated in
// the state BEFORE T executes; then
//
//	MV := (MV ∸ ∇(T,Q)) ⊎ △(T,Q)
//
// maintains INV_IM, provided T is weakly minimal (∇R ⊑ R).
func PreUpdate(t ChangeSet, q algebra.Expr) (del, add algebra.Expr, err error) {
	return Differentiate(TransactionSubst(t), q)
}

// PostUpdate computes the deferred-maintenance incremental queries
// ▼(L,Q) and ▲(L,Q) of Section 4, to be evaluated in the CURRENT
// (post-update) state:
//
//	▼(L,Q) = ADD(L̂,Q)       ▲(L,Q) = DEL(L̂,Q)
//
// so that MV := (MV ∸ ▼(L,Q)) ⊎ ▲(L,Q) refreshes the view. The log must
// be weakly minimal (▲R ⊑ R in the current state); makesafe_BL maintains
// that invariant (Lemma 4).
func PostUpdate(l ChangeSet, q algebra.Expr) (mvDel, mvAdd algebra.Expr, err error) {
	d, a, err := Differentiate(LogSubst(l), q)
	if err != nil {
		return nil, nil, err
	}
	// Duality + cancellation: the log's ADD is what the view must DELETE
	// and vice versa; weak minimality lets ▲(L,Q) be DEL(L̂,Q) directly
	// rather than Q min DEL(L̂,Q) (Section 4.1).
	return a, d, nil
}

// PostUpdateCancelled is the fully general form that does not rely on
// the weak-minimality simplification: ▲(L,Q) = Q min DEL(L̂,Q)
// (Section 4, before 4.1). Correct for any log; more expensive.
func PostUpdateCancelled(l ChangeSet, q algebra.Expr) (mvDel, mvAdd algebra.Expr, err error) {
	d, a, err := Differentiate(LogSubst(l), q)
	if err != nil {
		return nil, nil, err
	}
	am, err := algebra.MinOf(q, d)
	if err != nil {
		return nil, nil, err
	}
	return a, am, nil
}

// NaivePostUpdate is the STATE-BUGGY baseline of Section 1.2: it applies
// the pre-update incremental queries, oriented as if the log were a
// pending transaction (D_i = ▼R_i, A_i = ▲R_i), but evaluates them in
// the post-update state. It reproduces the wrong answers of Examples 1.2
// and 1.3 on general views; Remark 1 identifies the restricted class
// where it coincidentally agrees with PostUpdate.
func NaivePostUpdate(l ChangeSet, q algebra.Expr) (mvDel, mvAdd algebra.Expr, err error) {
	return Differentiate(TransactionSubst(ChangeSet(l)), q)
}

// StrengthenMinimality applies the strong-minimality post-pass of
// Section 4.1: given weakly minimal (del, add) for Q, it removes the
// common part M = del min add from both sides, yielding a pair that
// additionally satisfies DEL min ADD ≡ ∅ ("no tuple is deleted and then
// reinserted") while preserving (Q ∸ DEL) ⊎ ADD.
func StrengthenMinimality(del, add algebra.Expr) (algebra.Expr, algebra.Expr, error) {
	m, err := algebra.MinOf(del, add)
	if err != nil {
		return nil, nil, err
	}
	d, err := algebra.NewMonus(del, m)
	if err != nil {
		return nil, nil, err
	}
	a, err := algebra.NewMonus(add, m)
	if err != nil {
		return nil, nil, err
	}
	return d, a, nil
}
