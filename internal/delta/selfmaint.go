package delta

import "dvm/internal/algebra"

// SelfMaintainable reports whether a view defined by q can be maintained
// without reading its base tables — the property of select-project views
// that Section 1.2 (citing [GJM96]) uses to explain why earlier deferred
// schemes never met the state bug: "the issue of pre-update state vs.
// post-update state of base tables is irrelevant for maintaining
// select-project views."
//
// Operationally, a query is self-maintainable here exactly when its
// Figure 2 differentials DEL(η,Q)/ADD(η,Q) reference only the
// substitution's delta expressions and never a base table: true for any
// composition of σ, Π, literals, and base references (by induction over
// Figure 2, whose σ/Π cases mention only child deltas), and false as
// soon as ε, ⊎, ∸, or × appears above a base table (their rules mention
// E and F themselves). ⊎ of self-maintainable branches is also
// self-maintainable (its rule mentions only child deltas), so unions are
// allowed.
func SelfMaintainable(q algebra.Expr) bool {
	switch n := q.(type) {
	case *algebra.Literal, *algebra.Base:
		return true
	case *algebra.Select:
		return SelfMaintainable(n.Child)
	case *algebra.Project:
		return SelfMaintainable(n.Child)
	case *algebra.UnionAll:
		return SelfMaintainable(n.L) && SelfMaintainable(n.R)
	default:
		// ε, ∸, × (and anything unknown) require base-table access.
		return false
	}
}
