package schema

import "strings"

// Tuple is one row: a fixed-width sequence of values. Tuples are treated
// as immutable once placed in a bag; callers that mutate must Clone first.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Row is a convenience constructor converting Go scalars to a Tuple.
// Supported kinds: int, int64, float64, string, bool, nil.
func Row(vs ...any) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case nil:
			t[i] = Null()
		case int:
			t[i] = Int(int64(x))
		case int64:
			t[i] = Int(x)
		case float64:
			t[i] = Float(x)
		case string:
			t[i] = Str(x)
		case bool:
			t[i] = Bool(x)
		case Value:
			t[i] = x
		default:
			panic("schema: Row: unsupported value kind")
		}
	}
	return t
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports component-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; shorter tuples sort first on a
// shared prefix.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Key returns a canonical string encoding of the tuple, used as the bag
// map key. Equal tuples produce equal keys and vice versa.
func (t Tuple) Key() string {
	var dst []byte
	for _, v := range t {
		dst = v.appendKey(dst)
		dst = append(dst, '|')
	}
	return string(dst)
}

// AppendKey appends the tuple's canonical key encoding (the same bytes
// Key returns) to dst and returns the extended slice. It lets hot paths
// reuse one buffer across rows instead of allocating a string per call.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.appendKey(dst)
		dst = append(dst, '|')
	}
	return dst
}

// AppendKeyAt appends the canonical key of the tuple restricted to the
// given positions — byte-for-byte what t.Project(positions).Key() would
// produce, without materialising the projected tuple.
func (t Tuple) AppendKeyAt(dst []byte, positions []int) []byte {
	for _, p := range positions {
		dst = t[p].appendKey(dst)
		dst = append(dst, '|')
	}
	return dst
}

// Concat returns the concatenation t ++ o as a fresh tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(o))
	c = append(c, t...)
	return append(c, o...)
}

// Project returns the tuple restricted to the given positions.
func (t Tuple) Project(positions []int) Tuple {
	c := make(Tuple, len(positions))
	for i, p := range positions {
		c[i] = t[p]
	}
	return c
}

// String renders the tuple as [v1, v2, ...].
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}
