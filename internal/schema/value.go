// Package schema defines the typed values, tuples, and relation schemas
// shared by every layer of the engine: the bag store, the algebra
// evaluator, the differential algorithms, and the SQL front end.
//
// The data model is deliberately the one the paper assumes: flat bags of
// tuples ("no bag-valued attributes", Section 2.1) over a small scalar
// type system with SQL duplicate (multiset) semantics.
package schema

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the scalar types a column may have.
type Type uint8

// The supported scalar types.
const (
	TNull Type = iota // the type of the SQL NULL literal before coercion
	TInt
	TFloat
	TString
	TBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TBool:
		return "BOOL"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Value is a single scalar database value. The zero Value is NULL.
//
// Value is a small immutable struct passed by value; tuples are slices of
// Values. Comparisons follow SQL two-valued semantics for ordering with
// NULL sorting first (the quantifier-free predicate language of the paper
// does not require three-valued logic, and deterministic total order keeps
// bags canonical).
type Value struct {
	typ Type
	i   int64   // TInt, TBool (0/1)
	f   float64 // TFloat
	s   string  // TString
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{typ: TInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{typ: TFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore to
// avoid colliding with the fmt.Stringer method on Value.)
func String_(v string) Value { return Value{typ: TString, s: v} }

// Str is a short alias for String_.
func Str(v string) Value { return String_(v) }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{typ: TBool, i: i}
}

// Type reports the value's type. NULL values report TNull.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == TNull }

// AsInt returns the integer payload. It panics unless Type is TInt.
func (v Value) AsInt() int64 {
	if v.typ != TInt {
		panic(fmt.Sprintf("schema: AsInt on %s value", v.typ))
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64. It panics
// unless the value is numeric.
func (v Value) AsFloat() float64 {
	switch v.typ {
	case TInt:
		return float64(v.i)
	case TFloat:
		return v.f
	}
	panic(fmt.Sprintf("schema: AsFloat on %s value", v.typ))
}

// AsString returns the string payload. It panics unless Type is TString.
func (v Value) AsString() string {
	if v.typ != TString {
		panic(fmt.Sprintf("schema: AsString on %s value", v.typ))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics unless Type is TBool.
func (v Value) AsBool() bool {
	if v.typ != TBool {
		panic(fmt.Sprintf("schema: AsBool on %s value", v.typ))
	}
	return v.i != 0
}

// Numeric reports whether the value is TInt or TFloat.
func (v Value) Numeric() bool { return v.typ == TInt || v.typ == TFloat }

// Compare totally orders values: NULL < BOOL < numbers < strings, with
// numbers compared cross-type (INT vs FLOAT) by numeric value. It returns
// -1, 0, or +1.
func (v Value) Compare(o Value) int {
	vr, or := rank(v.typ), rank(o.typ)
	if vr != or {
		if vr < or {
			return -1
		}
		return 1
	}
	switch v.typ {
	case TNull:
		return 0
	case TBool:
		return cmpInt(v.i, o.i)
	case TInt:
		if o.typ == TInt {
			return cmpInt(v.i, o.i)
		}
		return cmpFloat(float64(v.i), o.f)
	case TFloat:
		if o.typ == TInt {
			return cmpFloat(v.f, float64(o.i))
		}
		return cmpFloat(v.f, o.f)
	case TString:
		return strings.Compare(v.s, o.s)
	}
	panic("schema: unreachable compare")
}

// rank groups comparable types: numerics share a rank so INT 1 == FLOAT 1.0.
func rank(t Type) int {
	switch t {
	case TNull:
		return 0
	case TBool:
		return 1
	case TInt, TFloat:
		return 2
	case TString:
		return 3
	}
	return 4
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

// Equal reports whether two values are equal under Compare semantics.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.typ {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return strconv.Quote(v.s)
	case TBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// appendKey appends a canonical, self-delimiting encoding of the value to
// dst. Two values encode identically iff Compare reports them equal
// (INT 1 and FLOAT 1.0 share an encoding on purpose).
func (v Value) appendKey(dst []byte) []byte {
	switch v.typ {
	case TNull:
		return append(dst, 'n')
	case TBool:
		if v.i != 0 {
			return append(dst, 'b', '1')
		}
		return append(dst, 'b', '0')
	case TInt:
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, v.i, 10)
	case TFloat:
		f := v.f
		if f == 0 {
			f = 0 // canonicalize -0.0 so it keys like +0.0 (Compare treats them equal)
		}
		if f == math.Trunc(f) && f >= math.MinInt64 && f < math.MaxInt64 {
			// Encode integer-valued floats through int64 so that INT k and
			// FLOAT k collide, matching Compare — and so that integer keys
			// (the common case) pay AppendInt, not shortest-float ryu.
			dst = append(dst, 'i')
			return strconv.AppendInt(dst, int64(f), 10)
		}
		dst = append(dst, 'f')
		return strconv.AppendFloat(dst, f, 'g', -1, 64)
	case TString:
		dst = append(dst, 's')
		dst = strconv.AppendInt(dst, int64(len(v.s)), 10)
		dst = append(dst, ':')
		return append(dst, v.s...)
	}
	panic("schema: unreachable appendKey")
}
