package schema

import (
	"fmt"
	"strings"
)

// Column is a named, typed attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Col is a convenience constructor.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Schema is an ordered list of columns describing a relation's tuples.
// Attribute names are case-sensitive and should be unique within a schema;
// the algebra compiler qualifies names (e.g. "s.custId") when joining.
type Schema struct {
	cols []Column
	pos  map[string]int
}

// NewSchema builds a schema from columns. Duplicate names are allowed at
// construction (products create them), but positional lookup of a
// duplicated name reports an error.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), pos: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.pos[c.Name]; dup {
			s.pos[c.Name] = -1 // ambiguous
		} else {
			s.pos[c.Name] = i
		}
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Column returns the i'th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Lookup resolves an attribute name to its position.
func (s *Schema) Lookup(name string) (int, error) {
	p, ok := s.pos[name]
	if !ok {
		// Allow unqualified lookup of a qualified column ("custId" finding
		// "c.custId") when unambiguous.
		found := -1
		for i, c := range s.cols {
			if suffixMatch(c.Name, name) {
				if found >= 0 {
					return 0, fmt.Errorf("schema: ambiguous attribute %q", name)
				}
				found = i
			}
		}
		if found >= 0 {
			return found, nil
		}
		return 0, fmt.Errorf("schema: no attribute %q in %s", name, s)
	}
	if p < 0 {
		return 0, fmt.Errorf("schema: ambiguous attribute %q", name)
	}
	return p, nil
}

// suffixMatch reports whether qualified equals name after stripping a
// "table." qualifier.
func suffixMatch(qualified, name string) bool {
	if i := strings.IndexByte(qualified, '.'); i >= 0 {
		return qualified[i+1:] == name
	}
	return false
}

// MustLookup is Lookup that panics on error; for statically known names.
func (s *Schema) MustLookup(name string) int {
	p, err := s.Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Concat returns the schema of a product: s's columns followed by o's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.cols)+len(o.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, o.cols...)
	return NewSchema(cols...)
}

// Project returns the schema restricted to the given positions.
func (s *Schema) Project(positions []int) *Schema {
	cols := make([]Column, len(positions))
	for i, p := range positions {
		cols[i] = s.cols[p]
	}
	return NewSchema(cols...)
}

// Rename returns a schema with the same types but new names.
func (s *Schema) Rename(names []string) (*Schema, error) {
	if len(names) != len(s.cols) {
		return nil, fmt.Errorf("schema: rename arity %d != %d", len(names), len(s.cols))
	}
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		cols[i] = Column{Name: names[i], Type: c.Type}
	}
	return NewSchema(cols...), nil
}

// Qualify returns a schema with every unqualified column name prefixed by
// "alias.".
func (s *Schema) Qualify(alias string) *Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		name := c.Name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		cols[i] = Column{Name: alias + "." + name, Type: c.Type}
	}
	return NewSchema(cols...)
}

// Compatible reports whether two schemas are union-compatible: same arity
// and the same column types position-by-position (names may differ; the
// left side's names win in union results, following SQL).
func (s *Schema) Compatible(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		a, b := s.cols[i].Type, o.cols[i].Type
		if a == b || a == TNull || b == TNull {
			continue
		}
		if (a == TInt || a == TFloat) && (b == TInt || b == TFloat) {
			continue
		}
		return false
	}
	return true
}

// Equal reports whether two schemas have identical columns.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Validate reports an error when t does not conform to the schema.
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.cols) {
		return fmt.Errorf("schema: tuple arity %d != schema arity %d", len(t), len(s.cols))
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := s.cols[i].Type
		got := v.Type()
		if want == got {
			continue
		}
		if want == TFloat && got == TInt {
			continue
		}
		return fmt.Errorf("schema: column %q wants %s, tuple has %s", s.cols[i].Name, want, got)
	}
	return nil
}

// String renders the schema as (name TYPE, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}
