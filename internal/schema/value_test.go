package schema

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null should be null")
	}
	if got := Int(42).AsInt(); got != 42 {
		t.Fatalf("AsInt = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Fatalf("AsFloat = %g", got)
	}
	if got := Int(7).AsFloat(); got != 7 {
		t.Fatalf("int AsFloat = %g", got)
	}
	if got := Str("hi").AsString(); got != "hi" {
		t.Fatalf("AsString = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("AsBool wrong")
	}
	if !Int(1).Numeric() || !Float(1).Numeric() || Str("x").Numeric() {
		t.Fatal("Numeric wrong")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Str("x").AsInt() },
		func() { Int(1).AsString() },
		func() { Str("x").AsFloat() },
		func() { Int(1).AsBool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null(),
		Bool(false),
		Bool(true),
		Int(-10),
		Float(-1.5),
		Int(0),
		Float(0.5),
		Int(1),
		Int(2),
		Float(2.5),
		Str(""),
		Str("a"),
		Str("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueCrossTypeNumericEquality(t *testing.T) {
	if Int(3).Compare(Float(3.0)) != 0 {
		t.Fatal("INT 3 should equal FLOAT 3.0")
	}
	if !Int(3).Equal(Float(3)) {
		t.Fatal("Equal should agree with Compare")
	}
	// Their keys must collide too, or bags would double-count.
	a := NewTuple(Int(3)).Key()
	b := NewTuple(Float(3)).Key()
	if a != b {
		t.Fatalf("keys differ: %q vs %q", a, b)
	}
}

func TestValueKeyInjective(t *testing.T) {
	vals := []Value{
		Null(), Bool(false), Bool(true),
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0.5), Float(-0.5), Float(1e100),
		Str(""), Str("a"), Str("ab"), Str("a|b"), Str("n"),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := NewTuple(v).Key()
		if prev, ok := seen[k]; ok && !prev.Equal(v) {
			t.Errorf("key collision: %v and %v -> %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"42":    Int(42),
		"2.5":   Float(2.5),
		`"hi"`:  Str("hi"),
		"TRUE":  Bool(true),
		"FALSE": Bool(false),
		"-7":    Int(-7),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TNull: "NULL", TInt: "INT", TFloat: "FLOAT", TString: "STRING", TBool: "BOOL",
	} {
		if got := typ.String(); got != want {
			t.Errorf("Type.String(%d) = %q, want %q", typ, got, want)
		}
	}
}

// randomValue generates an arbitrary value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(int64(r.Intn(21) - 10))
	case 2:
		return Float(float64(r.Intn(21)-10) / 2)
	case 3:
		return Str(string(rune('a' + r.Intn(5))))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// Generate implements quick.Generator for Value.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(r))
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(a, b Value) bool { return a.Compare(b) == -b.Compare(a) }
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	// Reflexivity.
	refl := func(a Value) bool { return a.Compare(a) == 0 }
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	// Transitivity on a sampled triple.
	trans := func(a, b, c Value) bool {
		vs := []Value{a, b, c}
		// sort the 3 by Compare and check consistency
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if vs[i].Compare(vs[j]) > 0 {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
		}
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 && vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
	// Key agreement: equal iff same key.
	key := func(a, b Value) bool {
		ka := NewTuple(a).Key()
		kb := NewTuple(b).Key()
		return (a.Compare(b) == 0) == (ka == kb)
	}
	if err := quick.Check(key, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeZeroKeysLikeZero(t *testing.T) {
	pos := NewTuple(Float(0)).Key()
	neg := NewTuple(Float(math.Copysign(0, -1))).Key()
	if pos != neg {
		t.Fatalf("-0.0 keys differently from +0.0: %q vs %q", neg, pos)
	}
	if Float(0).Compare(Float(math.Copysign(0, -1))) != 0 {
		t.Fatal("-0.0 should compare equal to +0.0")
	}
}
