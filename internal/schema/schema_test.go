package schema

import (
	"strings"
	"testing"
)

func custSchema() *Schema {
	return NewSchema(
		Col("custId", TInt),
		Col("name", TString),
		Col("score", TString),
	)
}

func TestSchemaBasics(t *testing.T) {
	s := custSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Column(1).Name != "name" {
		t.Fatalf("Column(1) = %v", s.Column(1))
	}
	if got := len(s.Columns()); got != 3 {
		t.Fatalf("Columns len = %d", got)
	}
	p, err := s.Lookup("score")
	if err != nil || p != 2 {
		t.Fatalf("Lookup(score) = %d, %v", p, err)
	}
	if _, err := s.Lookup("missing"); err == nil {
		t.Fatal("Lookup(missing) should fail")
	}
	if got := s.MustLookup("custId"); got != 0 {
		t.Fatalf("MustLookup = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustLookup(missing) should panic")
			}
		}()
		s.MustLookup("missing")
	}()
}

func TestSchemaQualifiedLookup(t *testing.T) {
	s := NewSchema(Col("c.custId", TInt), Col("c.name", TString), Col("s.itemNo", TInt))
	if p, err := s.Lookup("itemNo"); err != nil || p != 2 {
		t.Fatalf("unqualified suffix lookup = %d, %v", p, err)
	}
	if p, err := s.Lookup("c.name"); err != nil || p != 1 {
		t.Fatalf("qualified lookup = %d, %v", p, err)
	}
	dup := NewSchema(Col("c.id", TInt), Col("s.id", TInt))
	if _, err := dup.Lookup("id"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguous error, got %v", err)
	}
}

func TestSchemaDuplicateNameAmbiguity(t *testing.T) {
	s := NewSchema(Col("x", TInt), Col("x", TInt))
	if _, err := s.Lookup("x"); err == nil {
		t.Fatal("duplicate name should be ambiguous")
	}
}

func TestSchemaConcatProjectRename(t *testing.T) {
	a := NewSchema(Col("a", TInt), Col("b", TString))
	b := NewSchema(Col("c", TFloat))
	cat := a.Concat(b)
	if cat.Len() != 3 || cat.Column(2).Name != "c" {
		t.Fatalf("Concat wrong: %v", cat)
	}
	proj := cat.Project([]int{2, 0})
	if proj.Len() != 2 || proj.Column(0).Name != "c" || proj.Column(1).Name != "a" {
		t.Fatalf("Project wrong: %v", proj)
	}
	ren, err := a.Rename([]string{"x", "y"})
	if err != nil || ren.Column(0).Name != "x" {
		t.Fatalf("Rename wrong: %v, %v", ren, err)
	}
	if _, err := a.Rename([]string{"only-one"}); err == nil {
		t.Fatal("arity-mismatched rename should fail")
	}
}

func TestSchemaQualify(t *testing.T) {
	s := NewSchema(Col("custId", TInt), Col("t.name", TString))
	q := s.Qualify("c")
	if q.Column(0).Name != "c.custId" {
		t.Fatalf("Qualify = %v", q)
	}
	// Re-qualification replaces the old qualifier.
	if q.Column(1).Name != "c.name" {
		t.Fatalf("Qualify requalify = %v", q)
	}
}

func TestSchemaCompatible(t *testing.T) {
	a := NewSchema(Col("a", TInt), Col("b", TString))
	b := NewSchema(Col("x", TFloat), Col("y", TString))
	if !a.Compatible(b) {
		t.Fatal("int/float columns should be union-compatible")
	}
	c := NewSchema(Col("x", TString), Col("y", TString))
	if a.Compatible(c) {
		t.Fatal("int vs string should not be compatible")
	}
	d := NewSchema(Col("x", TInt))
	if a.Compatible(d) {
		t.Fatal("different arity should not be compatible")
	}
	n := NewSchema(Col("x", TNull), Col("y", TNull))
	if !a.Compatible(n) {
		t.Fatal("NULL columns are wildcard-compatible")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := custSchema()
	if !a.Equal(custSchema()) {
		t.Fatal("identical schemas should be Equal")
	}
	if a.Equal(NewSchema(Col("custId", TInt))) {
		t.Fatal("different arity should not be Equal")
	}
	if a.Equal(NewSchema(Col("custId", TFloat), Col("name", TString), Col("score", TString))) {
		t.Fatal("different type should not be Equal")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := custSchema()
	if err := s.Validate(Row(1, "alice", "High")); err != nil {
		t.Fatalf("valid tuple rejected: %v", err)
	}
	if err := s.Validate(Row(1, "alice")); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := s.Validate(Row("x", "alice", "High")); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if err := s.Validate(Row(nil, nil, nil)); err != nil {
		t.Fatalf("NULLs should validate: %v", err)
	}
	f := NewSchema(Col("price", TFloat))
	if err := f.Validate(Row(3)); err != nil {
		t.Fatalf("int into float column should validate: %v", err)
	}
}

func TestSchemaString(t *testing.T) {
	got := custSchema().String()
	want := "(custId INT, name STRING, score STRING)"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestTupleOps(t *testing.T) {
	a := Row(1, "x")
	b := a.Clone()
	b[0] = Int(2)
	if a[0].AsInt() != 1 {
		t.Fatal("Clone aliases storage")
	}
	if !a.Equal(Row(1, "x")) || a.Equal(Row(1, "y")) || a.Equal(Row(1)) {
		t.Fatal("Tuple.Equal wrong")
	}
	if a.Compare(Row(1, "y")) >= 0 || a.Compare(Row(0, "x")) <= 0 || a.Compare(a) != 0 {
		t.Fatal("Tuple.Compare wrong")
	}
	if Row(1).Compare(Row(1, "x")) >= 0 {
		t.Fatal("shorter tuple should sort first")
	}
	cat := a.Concat(Row(true))
	if len(cat) != 3 || !cat[2].AsBool() {
		t.Fatal("Concat wrong")
	}
	proj := cat.Project([]int{2, 0})
	if !proj.Equal(Row(true, 1)) {
		t.Fatal("Project wrong")
	}
	if got := a.String(); got != `[1, "x"]` {
		t.Fatalf("Tuple.String = %q", got)
	}
}

func TestRowPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Row should panic on unsupported kind")
		}
	}()
	Row(struct{}{})
}

func TestTupleKeySelfDelimiting(t *testing.T) {
	// ["a","b"] vs ["ab"] must not collide; nor ["a|","b"] vs ["a","|b"].
	pairs := [][2]Tuple{
		{Row("a", "b"), Row("ab")},
		{Row("a|", "b"), Row("a", "|b")},
		{Row(1, 2), Row(12)},
		{Row(""), Row()},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision between %v and %v", p[0], p[1])
		}
	}
}
