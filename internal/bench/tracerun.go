package bench

import (
	"fmt"

	"dvm/internal/core"
	"dvm/internal/obs/trace"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

// TracedRetailRun executes one Policy-1 retail day (hourly batches
// with a propagate each, one refresh at close) with full trace
// capture, and returns the captured traces exported as Chrome
// trace-event JSON — the payload behind dvmbench -trace. Load the
// file in Perfetto or chrome://tracing; each maintenance transaction
// is one lane.
func TracedRetailRun(hours, salesPerHour int) ([]byte, error) {
	db := storage.NewDatabase()
	w := workload.NewRetail(workload.DefaultRetailConfig())
	if err := w.Setup(db); err != nil {
		return nil, err
	}
	mgr := core.NewManager(db)
	def, err := w.ViewDef()
	if err != nil {
		return nil, err
	}
	if _, err := mgr.DefineView("hv", def, core.Combined); err != nil {
		return nil, err
	}
	// One trace per maintenance transaction: the manager's ring must
	// hold the whole day (execute+propagate per hour, plus the final
	// refresh).
	if want := 2*hours + 1; want > trace.DefaultCapacity {
		return nil, fmt.Errorf("bench: %d hours needs %d trace slots, ring holds %d", hours, want, trace.DefaultCapacity)
	}
	mgr.Tracer().SampleAll()
	for hour := 0; hour < hours; hour++ {
		if err := mgr.Execute(w.SalesBatch(salesPerHour)); err != nil {
			return nil, err
		}
		if err := mgr.Propagate("hv"); err != nil {
			return nil, err
		}
	}
	if err := mgr.Refresh("hv"); err != nil {
		return nil, err
	}
	traces := mgr.Tracer().Last(0)
	if want := 2*hours + 1; len(traces) != want {
		return nil, fmt.Errorf("bench: traced run captured %d traces, want %d", len(traces), want)
	}
	return trace.ChromeJSON(traces)
}
