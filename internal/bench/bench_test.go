package bench

import (
	"fmt"
	"strings"
	"testing"
)

func run(t *testing.T, f func() (*Report, error)) *Report {
	t.Helper()
	r, err := f()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Header) == 0 {
		t.Fatalf("report %s is empty", r.ID)
	}
	return r
}

func TestE1Shape(t *testing.T) {
	r := run(t, E1StateBugJoin)
	// Row 0: pre-state correct; row 1: naive wrong; row 2: ours correct.
	if r.Rows[0][3] != "yes" || r.Rows[2][3] != "yes" {
		t.Fatalf("correct methods flagged wrong:\n%s", r)
	}
	if r.Rows[1][3] != "NO" {
		t.Fatalf("state bug not reproduced:\n%s", r)
	}
	if r.Rows[1][2] != "4" || r.Rows[2][2] != "2" {
		t.Fatalf("multiplicities do not match the paper (naive=4, correct=2):\n%s", r)
	}
}

func TestE2Shape(t *testing.T) {
	r := run(t, E2StateBugDiff)
	if r.Rows[0][3] != "yes" || r.Rows[2][3] != "yes" || r.Rows[1][3] != "NO" {
		t.Fatalf("E2 shape wrong:\n%s", r)
	}
	if !strings.Contains(r.Rows[1][2], `"b"`) {
		t.Fatalf("naive refresh should retain the stale [b]:\n%s", r)
	}
}

func TestE6Shape(t *testing.T) {
	r := run(t, E6RestrictedClass)
	// Restricted class: 100% agreement.
	if r.Rows[0][3] != "0" {
		t.Fatalf("restricted class disagreed:\n%s", r)
	}
	// Relaxations: at least one disagreement each.
	if r.Rows[1][3] == "0" || r.Rows[2][3] == "0" {
		t.Fatalf("relaxed classes never disagreed — Remark 1 shape missing:\n%s", r)
	}
}

func TestE3Runs(t *testing.T) {
	r := run(t, E3Overhead)
	if len(r.Rows) != 4 || len(r.Rows[0]) != 6 {
		t.Fatalf("E3 shape wrong:\n%s", r)
	}
}

func TestE4Runs(t *testing.T) {
	r := run(t, E4Downtime)
	if len(r.Rows) != 3 {
		t.Fatalf("E4 shape wrong:\n%s", r)
	}
}

func TestE5Runs(t *testing.T) {
	r := run(t, E5PropagationSweep)
	if len(r.Rows) != 5 {
		t.Fatalf("E5 shape wrong:\n%s", r)
	}
}

func TestE7ChurnShape(t *testing.T) {
	r := run(t, E7Minimality)
	if len(r.Rows) != 2 {
		t.Fatalf("E7 shape wrong:\n%s", r)
	}
	// Strong minimality must shrink the differential tables under churn.
	weak, strong := r.Rows[0][1], r.Rows[1][1]
	if weak == strong {
		t.Fatalf("strong minimality had no effect:\n%s", r)
	}
}

func TestE8Runs(t *testing.T) {
	r := run(t, E8IncrVsRecompute)
	if len(r.Rows) != 4 {
		t.Fatalf("E8 shape wrong:\n%s", r)
	}
	// At the smallest fraction, incremental must win.
	if r.Rows[0][4] != "incremental" {
		t.Logf("WARNING: incremental did not win at 0.1%% updates:\n%s", r)
	}
}

func TestE9Runs(t *testing.T) {
	r := run(t, E9Batching)
	if len(r.Rows) != 3 {
		t.Fatalf("E9 shape wrong:\n%s", r)
	}
}

func TestE10Runs(t *testing.T) {
	r := run(t, E10SharedLog)
	if len(r.Rows) != 2 {
		t.Fatalf("E10 shape wrong:\n%s", r)
	}
}

func TestE11Runs(t *testing.T) {
	r := run(t, E11ReaderBlocking)
	if len(r.Rows) != 2 {
		t.Fatalf("E11 shape wrong:\n%s", r)
	}
}

func TestE12Shape(t *testing.T) {
	r := run(t, E12SelfMaintainability)
	// SP views: 100% agreement and 100% base-free differentials.
	if r.Rows[0][2] != r.Rows[0][1] || r.Rows[0][3] != r.Rows[0][1] {
		t.Fatalf("self-maintainable class not clean:\n%s", r)
	}
	// General views: strictly less agreement and zero base-free.
	if r.Rows[1][2] == r.Rows[1][1] {
		t.Fatalf("general views never disagreed:\n%s", r)
	}
	// A handful of general views can be coincidentally base-free (e.g.
	// literal-heavy shapes); the overwhelming majority must not be.
	if r.Rows[1][3] == r.Rows[1][1] {
		t.Fatalf("general views all base-free — class separation lost:\n%s", r)
	}
}

func TestE13Shape(t *testing.T) {
	r := run(t, E13RelevantUpdates)
	if len(r.Rows) != 2 {
		t.Fatalf("E13 shape wrong:\n%s", r)
	}
	// Filtered logs must be strictly smaller.
	var unf, fil int
	fmt.Sscan(r.Rows[0][1], &unf)
	fmt.Sscan(r.Rows[1][1], &fil)
	if fil >= unf {
		t.Fatalf("filtering did not shrink the log (%d vs %d):\n%s", fil, unf, r)
	}
}

func TestE14Runs(t *testing.T) {
	r := run(t, E14FreshQueries)
	if len(r.Rows) != 4 {
		t.Fatalf("E14 shape wrong:\n%s", r)
	}
}

func TestE15Runs(t *testing.T) {
	r := run(t, E15ShardScaling)
	if len(r.Rows) != 4 {
		t.Fatalf("E15 shape wrong:\n%s", r)
	}
	// The serial row is the baseline: its speedup column is exactly 1.00x.
	if r.Rows[0][2] != "1.00x" {
		t.Fatalf("E15 serial row should have speedup 1.00x:\n%s", r)
	}
}

func TestE16Runs(t *testing.T) {
	r := run(t, E16CompiledPrograms)
	if len(r.Rows) != 3 || len(r.Rows[0]) != 7 {
		t.Fatalf("E16 shape wrong:\n%s", r)
	}
	// Timing ratios are environment-dependent, but the compiled day must
	// never be slower than the interpreter at the largest scale — the
	// hash-indexed joins replace |delta|x|base| pair enumeration.
	last := r.Rows[len(r.Rows)-1]
	var ratio float64
	if _, err := fmt.Sscanf(last[4], "%fx", &ratio); err != nil {
		t.Fatalf("E16 speedup column unparseable (%q):\n%s", last[4], r)
	}
	if ratio < 1.0 {
		t.Fatalf("compiled slower than interpreted at largest scale (%s):\n%s", last[4], r)
	}
	if last[6] == "0" {
		t.Fatalf("compiled day probed no indexes:\n%s", r)
	}
}

func TestAllRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("experiment %s has no runner", e.ID)
		}
	}
}

func TestReportString(t *testing.T) {
	r := &Report{
		ID: "X", Title: "demo", Notes: "n",
		Header: []string{"col", "c2"},
		Rows:   [][]string{{"a", "bbbb"}},
	}
	s := r.String()
	for _, want := range []string{"X — demo", "col", "bbbb", "note: n", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
}
