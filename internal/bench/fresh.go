package bench

import (
	"fmt"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/core"
)

// E14FreshQueries measures the Section 7 "refresh only what a query
// needs" extension: with a large pending log, an analyst who needs a
// fresh answer can (a) read the stale view (fast, wrong), (b) force a
// full refresh and then read (fresh, downtime for everyone), or
// (c) QueryFresh — compose the current value on the fly, optionally
// restricted to the slice the query touches (fresh, no downtime, cost
// proportional to the question).
func E14FreshQueries() (*Report, error) {
	const pending = 2000
	rep := &Report{
		ID:     "E14",
		Title:  fmt.Sprintf("Fresh reads over a stale view (%d pending updates, Combined scenario)", pending),
		Notes:  "QueryFresh answers as-of-now without refreshing; slice predicates push into the incremental plan",
		Header: []string{"access path", "latency µs", "fresh?", "view downtime?"},
	}

	m, w, err := setupViews(1, core.Combined, 77)
	if err != nil {
		return nil, err
	}
	if err := m.Execute(w.SalesBatch(pending)); err != nil {
		return nil, err
	}

	// (a) stale read.
	start := time.Now()
	if _, err := m.Query("v0"); err != nil {
		return nil, err
	}
	stale := time.Since(start)

	// (c1) fresh read of the whole view.
	start = time.Now()
	if _, err := m.QueryFresh("v0", nil); err != nil {
		return nil, err
	}
	freshAll := time.Since(start)

	// (c2) fresh read of one customer's slice.
	start = time.Now()
	if _, err := m.QueryFresh("v0", algebra.Eq(algebra.A("custId"), algebra.C(1))); err != nil {
		return nil, err
	}
	freshSlice := time.Since(start)

	// (b) full refresh + read (downtime for every other reader).
	start = time.Now()
	if err := m.Refresh("v0"); err != nil {
		return nil, err
	}
	if _, err := m.Query("v0"); err != nil {
		return nil, err
	}
	refreshRead := time.Since(start)
	if err := m.CheckConsistent("v0"); err != nil {
		return nil, err
	}

	rep.Rows = append(rep.Rows,
		[]string{"stale Query", fmt.Sprint(stale.Microseconds()), "no", "no"},
		[]string{"QueryFresh (whole view)", fmt.Sprint(freshAll.Microseconds()), "yes", "no"},
		[]string{"QueryFresh (one-customer slice)", fmt.Sprint(freshSlice.Microseconds()), "yes", "no"},
		[]string{"Refresh + Query", fmt.Sprint(refreshRead.Microseconds()), "yes", "YES"},
	)
	return rep, nil
}
