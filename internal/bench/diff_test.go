package bench

import (
	"encoding/json"
	"testing"
	"time"

	"dvm/internal/obs/trace"
)

func mkReport(id string, phases ...PhaseStat) *Report {
	return &Report{ID: id, Title: id, Header: []string{"x"}, Phases: phases}
}

func TestCompareDowntimeFlagsRegression(t *testing.T) {
	base := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Millisecond},
		PhaseStat{Name: "propagate_ns{hv}", Count: 1, Max: time.Millisecond},
	)}
	fresh := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 3 * time.Millisecond},
		// Non-downtime phases may regress arbitrarily without tripping.
		PhaseStat{Name: "propagate_ns{hv}", Count: 1, Max: time.Second},
	)}
	problems := CompareDowntime(base, fresh, 2.0)
	if len(problems) != 1 {
		t.Fatalf("got %d problems (%v), want 1", len(problems), problems)
	}
}

func TestCompareDowntimeCleanRun(t *testing.T) {
	base := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Millisecond})}
	fresh := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 1900 * time.Microsecond})}
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 0 {
		t.Fatalf("clean run flagged: %v", problems)
	}
}

func TestCompareDowntimeIgnoresNoiseAndNewPhases(t *testing.T) {
	base := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 10 * time.Microsecond})}
	fresh := []*Report{
		mkReport("e4",
			// 5x "regression" but both sides are under the noise floor.
			PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 50 * time.Microsecond},
			// Phase absent from the baseline: skipped, not flagged.
			PhaseStat{Name: "view_downtime_ns{other}", Count: 1, Max: time.Second}),
		// Report absent from the baseline: skipped.
		mkReport("e99",
			PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Second}),
	}
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 0 {
		t.Fatalf("noise/new phases flagged: %v", problems)
	}
}

func TestParseReportsRoundTrip(t *testing.T) {
	in := []*Report{mkReport("e1", PhaseStat{Name: "view_downtime_ns{hv}", Count: 2, Max: time.Millisecond})}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseReports(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != "e1" || out[0].Phases[0].Max != time.Millisecond {
		t.Fatalf("round trip mangled: %+v", out[0])
	}
	if _, err := ParseReports([]byte("{")); err == nil {
		t.Fatal("ParseReports accepted malformed JSON")
	}
}

func TestTracedRetailRunProducesValidChrome(t *testing.T) {
	data, err := TracedRetailRun(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The exporter's own validity is asserted through the in-repo
	// parser (the dvmbench -trace round trip).
	events, err := trace.ParseChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("traced run exported no events")
	}
}
