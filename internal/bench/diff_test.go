package bench

import (
	"encoding/json"
	"testing"
	"time"

	"dvm/internal/obs/trace"
)

func mkReport(id string, phases ...PhaseStat) *Report {
	return &Report{ID: id, Title: id, Header: []string{"x"}, Phases: phases}
}

func TestCompareDowntimeFlagsRegression(t *testing.T) {
	base := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Millisecond},
		PhaseStat{Name: "propagate_ns{hv}", Count: 1, Max: time.Millisecond},
	)}
	fresh := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 3 * time.Millisecond},
		// Non-downtime phases may regress arbitrarily without tripping.
		PhaseStat{Name: "propagate_ns{hv}", Count: 1, Max: time.Second},
	)}
	problems := CompareDowntime(base, fresh, 2.0)
	if len(problems) != 1 {
		t.Fatalf("got %d problems (%v), want 1", len(problems), problems)
	}
}

func TestCompareDowntimeGuardsTxnExec(t *testing.T) {
	base := []*Report{mkReport("e16",
		PhaseStat{Name: "compiled x4: txn_exec_ns", Count: 1, P99: time.Millisecond, Max: time.Millisecond})}
	fresh := []*Report{mkReport("e16",
		PhaseStat{Name: "compiled x4: txn_exec_ns", Count: 1, P99: 3 * time.Millisecond, Max: 3 * time.Millisecond})}
	problems := CompareDowntime(base, fresh, 2.0)
	if len(problems) != 1 {
		t.Fatalf("txn_exec_ns regression not flagged: %v", problems)
	}
}

func TestCompareTxnExecGuardsP99NotMax(t *testing.T) {
	// A single-transaction outlier (GC pause) blows up Max but not P99;
	// the per-txn guard must read P99 so one pause can't fail the gate.
	base := []*Report{mkReport("e16",
		PhaseStat{Name: "compiled x4: txn_exec_ns", Count: 1000, P99: time.Millisecond, Max: time.Millisecond})}
	fresh := []*Report{mkReport("e16",
		PhaseStat{Name: "compiled x4: txn_exec_ns", Count: 1000, P99: 1500 * time.Microsecond, Max: 20 * time.Millisecond})}
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 0 {
		t.Fatalf("txn_exec_ns max outlier flagged despite stable p99: %v", problems)
	}
	// But a genuine p99 regression still trips.
	fresh[0].Phases[0].P99 = 3 * time.Millisecond
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 1 {
		t.Fatalf("txn_exec_ns p99 regression not flagged: %v", problems)
	}
}

func TestCompareClampsSubFloorBaselines(t *testing.T) {
	// A lucky 131µs baseline run must not flag ordinary 300µs jitter:
	// the trip level is clamped to factor·200µs.
	base := []*Report{mkReport("e16",
		PhaseStat{Name: "compiled x1: txn_exec_ns", Count: 100, P99: 131 * time.Microsecond})}
	fresh := []*Report{mkReport("e16",
		PhaseStat{Name: "compiled x1: txn_exec_ns", Count: 100, P99: 350 * time.Microsecond})}
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 0 {
		t.Fatalf("sub-floor baseline jitter flagged: %v", problems)
	}
	fresh[0].Phases[0].P99 = 900 * time.Microsecond
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 1 {
		t.Fatalf("real regression over clamped floor not flagged: %v", problems)
	}
}

func TestCompareDowntimeCleanRun(t *testing.T) {
	base := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Millisecond})}
	fresh := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 1900 * time.Microsecond})}
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 0 {
		t.Fatalf("clean run flagged: %v", problems)
	}
}

func TestCompareDowntimeIgnoresNoiseAndNewPhases(t *testing.T) {
	base := []*Report{mkReport("e4",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 10 * time.Microsecond})}
	fresh := []*Report{
		mkReport("e4",
			// 5x "regression" but the clamped trip level is 2x·200µs.
			PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 50 * time.Microsecond},
			// Phase absent from the baseline: skipped, not flagged.
			PhaseStat{Name: "view_downtime_ns{other}", Count: 1, Max: time.Second}),
		// Report absent from the baseline: skipped.
		mkReport("e99",
			PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Second}),
	}
	if problems := CompareDowntime(base, fresh, 2.0); len(problems) != 0 {
		t.Fatalf("noise/new phases flagged: %v", problems)
	}
}

func TestCompareWithRetry(t *testing.T) {
	base := []*Report{mkReport("e16",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Millisecond})}
	bad := func() []*Report {
		return []*Report{mkReport("e16",
			PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: 5 * time.Millisecond})}
	}
	good := mkReport("e16",
		PhaseStat{Name: "view_downtime_ns{hv}", Count: 1, Max: time.Millisecond})

	// Regression clears when the re-run measures clean: noise, not code.
	var reran []string
	clear := func(id string) (*Report, error) { reran = append(reran, id); return good, nil }
	if problems := CompareWithRetry(base, bad(), 2.0, clear); len(problems) != 0 {
		t.Fatalf("cleared regression still flagged: %v", problems)
	}
	if len(reran) != 1 || reran[0] != "e16" {
		t.Fatalf("rerun calls = %v, want [e16]", reran)
	}

	// Regression that reproduces fails the gate.
	repro := func(string) (*Report, error) { return bad()[0], nil }
	if problems := CompareWithRetry(base, bad(), 2.0, repro); len(problems) != 1 {
		t.Fatalf("reproduced regression not flagged: %v", problems)
	}

	// A failed or unavailable re-run keeps the original finding.
	broken := func(string) (*Report, error) { return nil, nil }
	if problems := CompareWithRetry(base, bad(), 2.0, broken); len(problems) != 1 {
		t.Fatalf("nil re-run dropped the finding: %v", problems)
	}

	// Clean runs never invoke the runner.
	calls := 0
	counting := func(string) (*Report, error) { calls++; return nil, nil }
	if problems := CompareWithRetry(base, []*Report{good}, 2.0, counting); len(problems) != 0 || calls != 0 {
		t.Fatalf("clean run: problems=%v rerun calls=%d", problems, calls)
	}
}

func TestParseReportsRoundTrip(t *testing.T) {
	in := []*Report{mkReport("e1", PhaseStat{Name: "view_downtime_ns{hv}", Count: 2, Max: time.Millisecond})}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseReports(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != "e1" || out[0].Phases[0].Max != time.Millisecond {
		t.Fatalf("round trip mangled: %+v", out[0])
	}
	if _, err := ParseReports([]byte("{")); err == nil {
		t.Fatal("ParseReports accepted malformed JSON")
	}
}

func TestTracedRetailRunProducesValidChrome(t *testing.T) {
	data, err := TracedRetailRun(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The exporter's own validity is asserted through the in-repo
	// parser (the dvmbench -trace round trip).
	events, err := trace.ParseChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("traced run exported no events")
	}
}
