package bench

import (
	"fmt"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/core"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
	"dvm/internal/workload"
)

// benchConfig returns a retail configuration sized to finish each
// experiment in seconds.
func benchConfig(seed int64) workload.RetailConfig {
	return workload.RetailConfig{
		Customers:    300,
		HighFraction: 0.2,
		InitialSales: 1500,
		Items:        200,
		ZipfS:        1.2,
		Seed:         seed,
	}
}

// setupViews builds a manager with n filtered retail views under one
// scenario.
func setupViews(n int, sc core.Scenario, seed int64, opts ...core.ManagerOption) (*core.Manager, *workload.Retail, error) {
	db := storage.NewDatabase()
	w := workload.NewRetail(benchConfig(seed))
	if err := w.Setup(db); err != nil {
		return nil, nil, err
	}
	m := core.NewManager(db, opts...)
	for i := 0; i < n; i++ {
		lo := i * 200 / n
		hi := (i + 1) * 200 / n
		def, err := w.FilteredViewDef(algebra.AndOf(
			algebra.Cmp{Op: algebra.GE, L: algebra.A("s.itemNo"), R: algebra.C(lo)},
			algebra.Lt(algebra.A("s.itemNo"), algebra.C(hi)),
		))
		if err != nil {
			return nil, nil, err
		}
		if _, err := m.DefineView(fmt.Sprintf("v%d", i), def, sc); err != nil {
			return nil, nil, err
		}
	}
	return m, w, nil
}

// E3Overhead measures per-transaction latency as the number of views
// grows, for each scenario. Expected shape: IM and DT grow with view
// count (each transaction evaluates incremental queries per view); BL
// and C stay near-flat (log appends only).
func E3Overhead() (*Report, error) {
	scenarios := []core.Scenario{Immediate, BaseLogs, DiffTables, Combined}
	viewCounts := []int{1, 2, 4, 8, 16}
	const txns = 40

	rep := &Report{
		ID:     "E3",
		Title:  "Per-transaction overhead (µs/txn, mean of txn_exec_ns) vs number of views",
		Notes:  "expect IM/DT to grow with views; BL/C near-flat (makesafe only appends to logs)",
		Header: append([]string{"scenario"}, colsFor(viewCounts)...),
	}
	for _, sc := range scenarios {
		row := []string{sc.String()}
		for _, n := range viewCounts {
			m, w, err := setupViews(n, sc, 42)
			if err != nil {
				return nil, err
			}
			for i := 0; i < txns; i++ {
				if err := m.Execute(w.SalesBatch(1)); err != nil {
					return nil, err
				}
			}
			// Per-txn cost straight from the engine's own instrumentation:
			// the txn_exec_ns histogram every Execute records into.
			exec, _ := m.Obs().Snapshot().Get("txn_exec_ns", "")
			per := time.Duration(0)
			if exec.Count > 0 {
				per = time.Duration(exec.Sum / exec.Count)
			}
			row = append(row, fmt.Sprint(per.Microseconds()))
			if sc == Combined && n == viewCounts[len(viewCounts)-1] {
				rep.Phases = append(rep.Phases, PhasesFrom(m.Obs(),
					fmt.Sprintf("C/%d views:", n), "txn_exec_ns", "makesafe_ns")...)
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

const (
	// scenario aliases for readability inside this package
	Immediate  = core.Immediate
	BaseLogs   = core.BaseLogs
	DiffTables = core.DiffTables
	Combined   = core.Combined
)

func colsFor(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("%d views", n)
	}
	return out
}

// E4Downtime reproduces Example 5.4: m=24 ticks of updates; BL refreshes
// once at the end (a full day's log), C under Policy 1 propagates every
// k=1 tick and runs refresh_C at the end, C under Policy 2 propagates
// every tick and applies only partial_refresh_C. Downtime is the
// exclusive-lock hold on the MV table during the final refresh.
func E4Downtime() (*Report, error) {
	const (
		m       = 24
		k       = 1
		perTick = 50
		deletes = 10
	)

	type variant struct {
		name   string
		sc     core.Scenario
		policy core.Policy
	}
	variants := []variant{
		{"BL refresh (whole-period log)", core.BaseLogs, core.Policy{RefreshEvery: m}},
		{"C Policy 1 (propagate k=1, refresh_C)", core.Combined, core.Policy{PropagateEvery: k, RefreshEvery: m}},
		{"C Policy 2 (propagate k=1, partial_refresh)", core.Combined, core.Policy{PropagateEvery: k, RefreshEvery: m, Partial: true}},
	}

	rep := &Report{
		ID:     "E4",
		Title:  fmt.Sprintf("View downtime (µs) over m=%d ticks, %d inserts + %d deletes per tick", m, perTick, deletes),
		Notes:  "expect downtime(BL) > downtime(C Policy 1) > downtime(C Policy 2); numbers from the view_downtime_ns / propagate_ns / makesafe_ns histograms",
		Header: []string{"variant", "refresh downtime µs", "total propagate µs", "per-txn makesafe µs"},
	}
	for vi, v := range variants {
		mgr, w, err := setupViews(1, v.sc, 7)
		if err != nil {
			return nil, err
		}
		runner, err := mgr.NewRunner("v0", v.policy)
		if err != nil {
			return nil, err
		}
		for tick := 0; tick < m; tick++ {
			if err := mgr.Execute(w.MixedBatch(perTick, deletes)); err != nil {
				return nil, err
			}
			if err := runner.Tick(); err != nil {
				return nil, err
			}
		}
		// All three quantities come from the obs histograms the engine
		// records into (downtime = exclusive MV-lock hold of refresh).
		snap := mgr.Obs().Snapshot()
		down, _ := snap.Get("view_downtime_ns", "v0")
		prop, _ := snap.Get("propagate_ns", "v0")
		mk, _ := snap.Get("makesafe_ns", "v0")
		perTxn := int64(0)
		if mk.Count > 0 {
			perTxn = mk.Sum / mk.Count
		}
		rep.Rows = append(rep.Rows, []string{
			v.name,
			fmt.Sprint(time.Duration(down.Max).Microseconds()),
			fmt.Sprint(time.Duration(prop.Sum).Microseconds()),
			fmt.Sprint(time.Duration(perTxn).Microseconds()),
		})
		rep.Phases = append(rep.Phases, PhasesFrom(mgr.Obs(),
			fmt.Sprintf("v%d %s:", vi+1, v.sc),
			"makesafe_ns", "propagate_ns", "refresh_ns", "partial_refresh_ns", "view_downtime_ns")...)
	}
	return rep, nil
}

// E5PropagationSweep sweeps the propagation interval k for the Combined
// scenario with m=24: small k means tiny logs at refresh (low downtime)
// but more propagate invocations.
func E5PropagationSweep() (*Report, error) {
	const m = 24
	rep := &Report{
		ID:     "E5",
		Title:  "Propagation interval sweep (Combined, m=24 ticks, Policy 1)",
		Notes:  "downtime grows with k (more un-propagated log at refresh); propagate count shrinks",
		Header: []string{"k", "refresh downtime µs", "propagates", "total propagate µs"},
	}
	for _, k := range []int{1, 2, 4, 8, 24} {
		mgr, w, err := setupViews(1, core.Combined, 11)
		if err != nil {
			return nil, err
		}
		runner, err := mgr.NewRunner("v0", core.Policy{PropagateEvery: k, RefreshEvery: m})
		if err != nil {
			return nil, err
		}
		for tick := 0; tick < m; tick++ {
			if err := mgr.Execute(w.MixedBatch(50, 10)); err != nil {
				return nil, err
			}
			if err := runner.Tick(); err != nil {
				return nil, err
			}
		}
		view, _ := mgr.View("v0")
		snap := mgr.Obs().Snapshot()
		down, _ := snap.Get("view_downtime_ns", "v0")
		prop, _ := snap.Get("propagate_ns", "v0")
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(time.Duration(down.Max).Microseconds()),
			fmt.Sprint(view.Stats.Propagates),
			fmt.Sprint(time.Duration(prop.Sum).Microseconds()),
		})
	}
	return rep, nil
}

// E7Minimality compares weak vs strong minimality under a churn workload
// in which existing rows are deleted and later reinserted verbatim
// (corrections being rolled back). Weak minimality accumulates the churn
// on BOTH sides of the differential tables; the strong fold cancels
// delete+reinsert pairs, shrinking the tables and the downtime of
// applying them.
func E7Minimality() (*Report, error) {
	rep := &Report{
		ID:     "E7",
		Title:  "Weak vs strong minimality under delete+reinsert churn (Combined)",
		Notes:  "strong minimality cancels delete+reinsert pairs in ∇MV/△MV",
		Header: []string{"variant", "|∇MV|+|△MV| before refresh", "partial refresh µs"},
	}
	for _, strong := range []bool{false, true} {
		db := storage.NewDatabase()
		w := workload.NewRetail(benchConfig(3))
		if err := w.Setup(db); err != nil {
			return nil, err
		}
		m := core.NewManager(db)
		def, err := w.ViewDef()
		if err != nil {
			return nil, err
		}
		var opts []core.Option
		name := "weak minimality (paper's default)"
		if strong {
			opts = append(opts, core.WithStrongMinimality())
			name = "strong minimality (§4.1 + strong Lemma 3 analog)"
		}
		if _, err := m.DefineView("v", def, core.Combined, opts...); err != nil {
			return nil, err
		}

		// Victims: a slice of existing sales rows, deleted and reinserted
		// verbatim each round, with a propagate between the two halves so
		// the churn lands in the differential tables.
		sales, err := db.Bag("sales")
		if err != nil {
			return nil, err
		}
		victims := bag.New()
		i := 0
		sales.Each(func(tu schema.Tuple, n int) {
			if i < 200 {
				victims.Add(tu, n)
			}
			i++
		})
		for round := 0; round < 4; round++ {
			if err := m.Execute(txn.Delete("sales", victims.Clone())); err != nil {
				return nil, err
			}
			if err := m.Propagate("v"); err != nil {
				return nil, err
			}
			if err := m.Execute(txn.Insert("sales", victims.Clone())); err != nil {
				return nil, err
			}
			if err := m.Propagate("v"); err != nil {
				return nil, err
			}
		}
		dd, _ := db.Bag("__dmv_del_v")
		da, _ := db.Bag("__dmv_add_v")
		size := dd.Len() + da.Len()
		start := time.Now()
		if err := m.PartialRefresh("v"); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if err := m.CheckInvariant("v"); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{name, fmt.Sprint(size), fmt.Sprint(elapsed.Microseconds())})
	}
	return rep, nil
}

// E8IncrVsRecompute sweeps the update fraction between refreshes:
// incremental refresh (BL) wins when the log is small relative to the
// base tables, with a crossover as the fraction grows.
func E8IncrVsRecompute() (*Report, error) {
	rep := &Report{
		ID:     "E8",
		Title:  "Incremental refresh vs full recomputation (BaseLogs scenario)",
		Notes:  "incremental should win at small update fractions; recompute is flat",
		Header: []string{"updates since refresh", "fraction of base", "incremental µs", "recompute µs", "winner"},
	}
	base := benchConfig(5)
	for _, frac := range []float64{0.001, 0.01, 0.1, 0.5} {
		n := int(frac * float64(base.InitialSales))
		if n < 1 {
			n = 1
		}
		incr, err := refreshCost(n, false)
		if err != nil {
			return nil, err
		}
		rec, err := refreshCost(n, true)
		if err != nil {
			return nil, err
		}
		winner := "incremental"
		if rec < incr {
			winner = "recompute"
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f%%", frac*100),
			fmt.Sprint(incr.Microseconds()),
			fmt.Sprint(rec.Microseconds()),
			winner,
		})
	}
	return rep, nil
}

// refreshCost loads the retail workload, applies n single-row updates,
// and times either the incremental BL refresh or a full recompute.
func refreshCost(n int, recompute bool) (time.Duration, error) {
	m, w, err := setupViews(1, core.BaseLogs, 5)
	if err != nil {
		return 0, err
	}
	if err := m.Execute(w.SalesBatch(n)); err != nil {
		return 0, err
	}
	start := time.Now()
	if recompute {
		err = m.RefreshRecompute("v0")
	} else {
		err = m.Refresh("v0")
	}
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if err := m.CheckConsistent("v0"); err != nil {
		return 0, err
	}
	return elapsed, nil
}

// E10SharedLog answers the paper's Section 7 question as an ablation:
// with per-view log tables, makesafe pays one log append per view; with
// a shared per-table log plus per-view cursors, it pays one append per
// TABLE — flat in the number of views. Both configurations keep INV_C.
func E10SharedLog() (*Report, error) {
	viewCounts := []int{1, 2, 4, 8, 16, 32}
	const txns = 40
	rep := &Report{
		ID:     "E10",
		Title:  "Section 7 extension: per-transaction cost (µs) vs views, per-view vs shared logs",
		Notes:  "per-view logs pay one append per view; shared logs one append per table (flat)",
		Header: append([]string{"log layout"}, colsFor(viewCounts)...),
	}
	variants := []struct {
		name string
		opts []core.ManagerOption
	}{
		{"per-view log tables (paper §3.3)", nil},
		{"shared log + cursors (§7 extension)", []core.ManagerOption{core.WithSharedLogs()}},
	}
	for _, variant := range variants {
		row := []string{variant.name}
		for _, n := range viewCounts {
			m, w, err := setupViews(n, core.Combined, 21, variant.opts...)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for i := 0; i < txns; i++ {
				if err := m.Execute(w.SalesBatch(20)); err != nil {
					return nil, err
				}
			}
			per := time.Since(start) / txns
			row = append(row, fmt.Sprint(per.Microseconds()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// E9Batching quantifies the paper's batching claim: n single-row
// transactions under immediate maintenance pay the incremental queries n
// times; deferred maintenance pays one log append per transaction plus
// one batched refresh.
func E9Batching() (*Report, error) {
	const n = 200
	rep := &Report{
		ID:     "E9",
		Title:  fmt.Sprintf("Batching: %d single-row transactions, immediate vs deferred", n),
		Notes:  "deferred total = cheap per-txn log appends + one batched refresh",
		Header: []string{"scenario", "txn total µs", "refresh µs", "overall µs"},
	}
	for _, sc := range []core.Scenario{core.Immediate, core.BaseLogs, core.Combined} {
		m, w, err := setupViews(1, sc, 13)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := m.Execute(w.SalesBatch(1)); err != nil {
				return nil, err
			}
		}
		txnTotal := time.Since(start)
		start = time.Now()
		if err := m.Refresh("v0"); err != nil {
			return nil, err
		}
		refresh := time.Since(start)
		if err := m.CheckConsistent("v0"); err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			sc.String(),
			fmt.Sprint(txnTotal.Microseconds()),
			fmt.Sprint(refresh.Microseconds()),
			fmt.Sprint((txnTotal + refresh).Microseconds()),
		})
	}
	return rep, nil
}
