package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// regressionFloor is the absolute downtime below which comparisons are
// skipped: sub-200µs phases are dominated by scheduler noise, and a 2x
// blowup of nothing is still nothing.
const regressionFloor = 200 * time.Microsecond

// ParseReports decodes a dvmbench -json report array (the BENCH_*.json
// baseline format).
func ParseReports(data []byte) ([]*Report, error) {
	var reports []*Report
	if err := json.Unmarshal(data, &reports); err != nil {
		return nil, fmt.Errorf("bench: invalid report JSON: %w", err)
	}
	return reports, nil
}

// CompareDowntime flags downtime regressions between a baseline and a
// fresh run: for every downtime phase present in both (matched by
// report ID and phase name), the new Max must not exceed factor times
// the old Max, unless both are under the noise floor. Returned
// messages are empty when the run is clean. This is the check behind
// scripts/benchdiff.sh and dvmbench -diff.
func CompareDowntime(baseline, fresh []*Report, factor float64) []string {
	oldPhases := indexDowntime(baseline)
	var problems []string
	for _, r := range fresh {
		for _, p := range r.Phases {
			if !isDowntimePhase(p.Name) {
				continue
			}
			old, ok := oldPhases[r.ID+"\x00"+p.Name]
			if !ok {
				continue
			}
			if p.Max <= regressionFloor && old.Max <= regressionFloor {
				continue
			}
			if float64(p.Max) > factor*float64(old.Max) {
				problems = append(problems, fmt.Sprintf(
					"%s %s: max downtime %v exceeds %.1fx baseline %v",
					r.ID, p.Name, p.Max, factor, old.Max))
			}
		}
	}
	return problems
}

// indexDowntime maps (report ID, phase name) to the baseline's
// downtime phases.
func indexDowntime(reports []*Report) map[string]PhaseStat {
	out := make(map[string]PhaseStat)
	for _, r := range reports {
		for _, p := range r.Phases {
			if isDowntimePhase(p.Name) {
				out[r.ID+"\x00"+p.Name] = p
			}
		}
	}
	return out
}

// isDowntimePhase matches view_downtime_ns phases, with or without a
// {label} suffix or a report-local prefix.
func isDowntimePhase(name string) bool {
	return strings.Contains(name, "view_downtime_ns")
}
