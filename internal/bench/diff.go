package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// regressionFloor is the minimum baseline value a guarded phase is
// compared against: sub-200µs phases are dominated by scheduler noise,
// and a 2x blowup of nothing is still nothing, so the effective trip
// level is never below factor times this floor.
const regressionFloor = 200 * time.Microsecond

// ParseReports decodes a dvmbench -json report array (the BENCH_*.json
// baseline format).
func ParseReports(data []byte) ([]*Report, error) {
	var reports []*Report
	if err := json.Unmarshal(data, &reports); err != nil {
		return nil, fmt.Errorf("bench: invalid report JSON: %w", err)
	}
	return reports, nil
}

// CompareDowntime flags regressions of the guarded phases — view
// downtime (view_downtime_ns) and per-transaction maintenance overhead
// (txn_exec_ns), the two quantities deferred maintenance exists to
// keep small — between a baseline and a fresh run: for every guarded
// phase present in both (matched by report ID and phase name), the new
// guarded statistic must not exceed factor times the old one (clamped
// up to the noise floor). Downtime phases guard on Max;
// per-transaction latency guards on P99, because the max of a
// tens-of-microseconds distribution is set by a single GC pause.
// Returned messages are empty when the run is clean. This is the
// check behind scripts/benchdiff.sh and dvmbench -diff.
func CompareDowntime(baseline, fresh []*Report, factor float64) []string {
	oldPhases := indexGuarded(baseline)
	var problems []string
	for _, r := range fresh {
		for _, p := range r.Phases {
			if !isGuardedPhase(p.Name) {
				continue
			}
			old, ok := oldPhases[r.ID+"\x00"+p.Name]
			if !ok {
				continue
			}
			stat, newV := guardStat(p)
			_, oldV := guardStat(old)
			// Clamp the baseline to the noise floor: a lucky sub-200µs
			// baseline run must not turn ordinary scheduler jitter into
			// a "regression" — the trip level is at least factor·floor.
			ref := oldV
			if ref < regressionFloor {
				ref = regressionFloor
			}
			if float64(newV) > factor*float64(ref) {
				problems = append(problems, fmt.Sprintf(
					"%s %s: %s %v exceeds %.1fx baseline %v",
					r.ID, p.Name, stat, newV, factor, oldV))
			}
		}
	}
	return problems
}

// CompareWithRetry is CompareDowntime with a reproduction pass: when a
// fresh report regresses, rerun is invoked with that report's ID to
// produce a second measurement, and only regressions that survive the
// re-run are returned. One scheduler hiccup or GC storm during a
// benchmark day can inflate every phase 3–4x at once; a genuine code
// regression reproduces, noise doesn't. A nil rerun result or error
// keeps the original finding (fail closed).
func CompareWithRetry(baseline, fresh []*Report, factor float64, rerun func(id string) (*Report, error)) []string {
	problems := CompareDowntime(baseline, fresh, factor)
	if len(problems) == 0 || rerun == nil {
		return problems
	}
	var out []string
	for _, r := range fresh {
		ps := CompareDowntime(baseline, []*Report{r}, factor)
		if len(ps) == 0 {
			continue
		}
		r2, err := rerun(r.ID)
		if err != nil || r2 == nil {
			out = append(out, ps...)
			continue
		}
		out = append(out, CompareDowntime(baseline, []*Report{r2}, factor)...)
	}
	return out
}

// guardStat picks the statistic a guarded phase is compared on: Max
// for downtime phases, P99 for per-transaction latency.
func guardStat(p PhaseStat) (string, time.Duration) {
	if strings.Contains(p.Name, "txn_exec_ns") {
		return "p99", p.P99
	}
	return "max", p.Max
}

// indexGuarded maps (report ID, phase name) to the baseline's guarded
// phases.
func indexGuarded(reports []*Report) map[string]PhaseStat {
	out := make(map[string]PhaseStat)
	for _, r := range reports {
		for _, p := range r.Phases {
			if isGuardedPhase(p.Name) {
				out[r.ID+"\x00"+p.Name] = p
			}
		}
	}
	return out
}

// isGuardedPhase matches view_downtime_ns and txn_exec_ns phases, with
// or without a {label} suffix or a report-local prefix.
func isGuardedPhase(name string) bool {
	return strings.Contains(name, "view_downtime_ns") || strings.Contains(name, "txn_exec_ns")
}
