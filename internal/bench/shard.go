package bench

import (
	"fmt"
	"time"

	"dvm/internal/core"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

// The multi-shard retail day: basket-grained point-of-sale traffic
// against the Example 1.1 join view, maintained under Policy 2
// (propagate every tick, partial refresh). Each basket is one
// Zipf-picked customer, so with the customer id as shard key a tick's
// log entries land in one shard and the sharded propagate evaluates
// the Figure 2 queries against that shard's 1/N-sized base mirrors
// only. -shards=1 is the plain serial manager (no shard machinery at
// all), which makes E15's speedup column an honest apples-to-apples
// comparison.
const (
	shardDayTicks        = 240 // baskets in the day
	shardDayRefreshEvery = 60  // partial refresh cadence (ticks)
	shardDayFlipEvery    = 40  // customer score flips (ticks)
	shardDaySeed         = 21
)

func shardDayConfig(seed int64) workload.RetailConfig {
	return workload.RetailConfig{
		Customers:    1200,
		HighFraction: 0.2,
		InitialSales: 9000,
		Items:        300,
		ZipfS:        1.2,
		Seed:         seed,
	}
}

// runShardDay drives the retail day into one manager built with n
// shards and returns the manager for metric extraction. The workload
// stream is a deterministic function of the seed, so every shard
// count replays the identical day.
func runShardDay(n int, seed int64) (*core.Manager, error) {
	db := storage.NewDatabase()
	w := workload.NewRetail(shardDayConfig(seed))
	if err := w.Setup(db); err != nil {
		return nil, err
	}
	m := core.NewManager(db, core.WithShards(n))
	def, err := w.ViewDef()
	if err != nil {
		return nil, err
	}
	if _, err := m.DefineView("hv", def, core.Combined); err != nil {
		return nil, err
	}
	runner, err := m.NewRunner("hv", core.Policy{
		PropagateEvery: 1,
		RefreshEvery:   shardDayRefreshEvery,
		Partial:        true,
	})
	if err != nil {
		return nil, err
	}
	for tick := 1; tick <= shardDayTicks; tick++ {
		if err := m.Execute(w.Basket(3, 8, 0.15)); err != nil {
			return nil, err
		}
		if tick%shardDayFlipEvery == 0 {
			flip, err := w.ScoreFlip()
			if err != nil {
				return nil, err
			}
			if err := m.Execute(flip); err != nil {
				return nil, err
			}
		}
		if err := runner.Tick(); err != nil {
			return nil, err
		}
	}
	if err := m.Refresh("hv"); err != nil {
		return nil, err
	}
	if err := m.CheckInvariant("hv"); err != nil {
		return nil, err
	}
	if n > 1 {
		if err := m.CheckShardInvariant("hv"); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// E15ShardScaling runs the multi-shard retail day at 1, 2, 4, and 8
// shards and reports the propagate-phase scaling. The speedup column
// is total propagate time at 1 shard divided by total propagate time
// at n shards; on one core it comes from dirty-shard pruning (clean
// shards are provably delta-free, so they are never evaluated) and
// from the 1/N-sized co-partitioned base mirrors each dirty shard's
// Figure 2 evaluation scans.
func E15ShardScaling() (*Report, error) {
	rep := &Report{
		ID: "E15",
		Title: fmt.Sprintf("Sharded propagate scaling (Combined, Policy 2, %d baskets, refresh every %d)",
			shardDayTicks, shardDayRefreshEvery),
		Notes: "speedup = propagate_ns sum at 1 shard / at n shards; single-core, so gains are algorithmic (dirty-shard pruning + 1/N base mirrors), not parallelism",
		Header: []string{"shards", "total propagate µs", "speedup", "max refresh downtime µs",
			"total partial refresh µs", "shard evals"},
	}
	var base time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		m, err := runShardDay(n, shardDaySeed)
		if err != nil {
			return nil, err
		}
		snap := m.Obs().Snapshot()
		prop, _ := snap.Get("propagate_ns", "hv")
		down, _ := snap.Get("view_downtime_ns", "hv")
		part, _ := snap.Get("partial_refresh_ns", "hv")
		total := time.Duration(prop.Sum)
		if n == 1 {
			base = total
		}
		speedup := "1.00x"
		if n > 1 && total > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(total))
		}
		// Shard evals = how many per-shard DEL/ADD evaluations actually
		// ran; with clean-shard pruning this stays near one per tick
		// regardless of n.
		evals := int64(0)
		for _, met := range snap.Family("propagate_shard_ns") {
			evals += met.Count
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(total.Microseconds()),
			speedup,
			fmt.Sprint(time.Duration(down.Max).Microseconds()),
			fmt.Sprint(time.Duration(part.Sum).Microseconds()),
			fmt.Sprint(evals),
		})
		rep.Phases = append(rep.Phases, PhasesFrom(m.Obs(),
			fmt.Sprintf("%d shards:", n),
			"propagate_ns", "propagate_shard_ns", "partial_refresh_ns", "view_downtime_ns")...)
	}
	return rep, nil
}

// ShardDayReport runs the multi-shard retail day once at the given
// shard count and reports its phase timings — the body behind
// dvmbench -shards=N.
func ShardDayReport(n int) (*Report, error) {
	if n < 1 {
		return nil, fmt.Errorf("bench: shard count must be >= 1, got %d", n)
	}
	m, err := runShardDay(n, shardDaySeed)
	if err != nil {
		return nil, err
	}
	snap := m.Obs().Snapshot()
	prop, _ := snap.Get("propagate_ns", "hv")
	down, _ := snap.Get("view_downtime_ns", "hv")
	rep := &Report{
		ID:     fmt.Sprintf("shards-%d", n),
		Title:  fmt.Sprintf("Multi-shard retail day at %d shard(s)", n),
		Notes:  "compare total propagate µs across -shards=N runs; E15 runs the full sweep",
		Header: []string{"shards", "total propagate µs", "max refresh downtime µs"},
		Rows: [][]string{{
			fmt.Sprint(n),
			fmt.Sprint(time.Duration(prop.Sum).Microseconds()),
			fmt.Sprint(time.Duration(down.Max).Microseconds()),
		}},
		Phases: PhasesFrom(m.Obs(), "",
			"makesafe_ns", "propagate_ns", "propagate_shard_ns", "partial_refresh_ns", "refresh_ns", "view_downtime_ns"),
	}
	return rep, nil
}
