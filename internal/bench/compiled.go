package bench

import (
	"fmt"
	"time"

	"dvm/internal/core"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

// The compiled-vs-interpreted retail day: the serial Combined manager
// under Policy 2 (propagate every tick, partial refresh), run twice
// over identical same-seed streams — once with compiled delta programs
// (the default) and once forced onto the tree-walking interpreter
// (core.WithInterpretedDeltas). The day is replayed at growing base
// sizes because the compiler's win is asymptotic: interpreted joins
// enumerate |delta|·|base| candidate pairs, compiled joins hash-probe
// the base-side index with the delta only.
const (
	compiledDayTicks        = 120
	compiledDayRefreshEvery = 30
	compiledDayFlipEvery    = 40
	compiledDaySeed         = 33
)

func compiledDayConfig(scale int, seed int64) workload.RetailConfig {
	return workload.RetailConfig{
		Customers:    300 * scale,
		HighFraction: 0.2,
		InitialSales: 3000 * scale,
		Items:        100 * scale,
		ZipfS:        1.2,
		Seed:         seed,
	}
}

// runCompiledDay drives the retail day into one serial manager at the
// given base-size scale, interpreted or compiled, and returns the
// manager for metric extraction. The workload stream is a
// deterministic function of the seed, so both evaluation modes replay
// the identical day.
func runCompiledDay(scale int, interpreted bool, seed int64) (*core.Manager, error) {
	db := storage.NewDatabase()
	w := workload.NewRetail(compiledDayConfig(scale, seed))
	if err := w.Setup(db); err != nil {
		return nil, err
	}
	var opts []core.ManagerOption
	if interpreted {
		opts = append(opts, core.WithInterpretedDeltas())
	}
	m := core.NewManager(db, opts...)
	def, err := w.ViewDef()
	if err != nil {
		return nil, err
	}
	if _, err := m.DefineView("hv", def, core.Combined); err != nil {
		return nil, err
	}
	runner, err := m.NewRunner("hv", core.Policy{
		PropagateEvery: 1,
		RefreshEvery:   compiledDayRefreshEvery,
		Partial:        true,
	})
	if err != nil {
		return nil, err
	}
	for tick := 1; tick <= compiledDayTicks; tick++ {
		if err := m.Execute(w.Basket(3, 8, 0.15)); err != nil {
			return nil, err
		}
		if tick%compiledDayFlipEvery == 0 {
			flip, err := w.ScoreFlip()
			if err != nil {
				return nil, err
			}
			if err := m.Execute(flip); err != nil {
				return nil, err
			}
		}
		if err := runner.Tick(); err != nil {
			return nil, err
		}
	}
	if err := m.Refresh("hv"); err != nil {
		return nil, err
	}
	if err := m.CheckInvariant("hv"); err != nil {
		return nil, err
	}
	return m, nil
}

// E16CompiledPrograms runs the compiled-vs-interpreted retail day at
// base-size scales 1, 2, and 4 and reports the propagate-phase win.
// The speedup column is the interpreted day's total propagate time
// divided by the compiled day's at the same scale; it should grow with
// scale, since the interpreter's join cost tracks |delta|·|base| while
// the compiled programs' tracks |delta| probes plus index upkeep.
func E16CompiledPrograms() (*Report, error) {
	rep := &Report{
		ID: "E16",
		Title: fmt.Sprintf("Compiled delta programs vs interpreter (Combined, Policy 2, %d baskets, refresh every %d)",
			compiledDayTicks, compiledDayRefreshEvery),
		Notes: "speedup = interpreted propagate_ns sum / compiled, same seed and stream; compiled joins hash-probe base-side indexes instead of enumerating |delta|x|base| pairs",
		Header: []string{"scale", "sales rows", "interp propagate µs", "compiled propagate µs", "speedup",
			"compiled txn p99 µs", "index probe tuples"},
	}
	for _, scale := range []int{1, 2, 4} {
		interp, err := runCompiledDay(scale, true, compiledDaySeed)
		if err != nil {
			return nil, err
		}
		comp, err := runCompiledDay(scale, false, compiledDaySeed)
		if err != nil {
			return nil, err
		}
		// Same stream, same final state: the comparison is honest only
		// if both days ended on the identical materialization.
		mvI, err := interp.Query("hv")
		if err != nil {
			return nil, err
		}
		mvC, err := comp.Query("hv")
		if err != nil {
			return nil, err
		}
		if !mvI.Equal(mvC) {
			return nil, fmt.Errorf("bench: scale %d: compiled and interpreted MVs diverged", scale)
		}
		snapI := interp.Obs().Snapshot()
		snapC := comp.Obs().Snapshot()
		propI, _ := snapI.Get("propagate_ns", "hv")
		propC, _ := snapC.Get("propagate_ns", "hv")
		txnC, _ := snapC.Get("txn_exec_ns", "")
		probes, _ := snapC.Get("index_probe_tuples", "hv")
		speedup := "n/a"
		if propC.Sum > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(propI.Sum)/float64(propC.Sum))
		}
		sales, err := comp.DB().Bag("sales")
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(scale),
			fmt.Sprint(sales.Len()),
			fmt.Sprint(time.Duration(propI.Sum).Microseconds()),
			fmt.Sprint(time.Duration(propC.Sum).Microseconds()),
			speedup,
			fmt.Sprint(time.Duration(txnC.P99).Microseconds()),
			fmt.Sprint(probes.Value),
		})
		rep.Phases = append(rep.Phases, PhasesFrom(interp.Obs(),
			fmt.Sprintf("interp x%d:", scale),
			"txn_exec_ns", "propagate_ns", "partial_refresh_ns", "view_downtime_ns")...)
		rep.Phases = append(rep.Phases, PhasesFrom(comp.Obs(),
			fmt.Sprintf("compiled x%d:", scale),
			"txn_exec_ns", "propagate_ns", "compiled_eval_ns", "partial_refresh_ns", "view_downtime_ns")...)
	}
	return rep, nil
}
