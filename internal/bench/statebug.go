package bench

import (
	"fmt"
	"math/rand"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/delta"
	"dvm/internal/schema"
)

// E1StateBugJoin reproduces Example 1.2: the pre-update incremental
// queries evaluated in the post-update state over-count the join view's
// insert bag (4 copies of [a1] instead of the correct 2), while the
// post-update algorithm is exact.
func E1StateBugJoin() (*Report, error) {
	rsch := schema.NewSchema(schema.Col("R.A", schema.TString), schema.Col("R.B", schema.TString))
	ssch := schema.NewSchema(schema.Col("S.B", schema.TString), schema.Col("S.C", schema.TString))
	pre := algebra.MapSource{
		"R": bag.Of(schema.Row("a1", "b1")),
		"S": bag.Of(schema.Row("b1", "c1"), schema.Row("b2", "c2")),
	}
	insR := bag.Of(schema.Row("a1", "b2"))
	insS := bag.Of(schema.Row("b2", "c2"))
	post := algebra.MapSource{
		"R": bag.UnionAll(pre["R"], insR),
		"S": bag.UnionAll(pre["S"], insS),
	}
	join, err := algebra.JoinOn(algebra.NewBase("R", rsch), algebra.NewBase("S", ssch),
		algebra.Eq(algebra.A("R.B"), algebra.A("S.B")))
	if err != nil {
		return nil, err
	}
	q, err := algebra.NewProject([]string{"R.A"}, []string{"A"}, join)
	if err != nil {
		return nil, err
	}
	log := delta.ChangeSet{
		"R": {Deleted: algebra.NewLiteral(rsch, bag.New()), Inserted: algebra.NewLiteral(rsch, insR)},
		"S": {Deleted: algebra.NewLiteral(ssch, bag.New()), Inserted: algebra.NewLiteral(ssch, insS)},
	}

	muPre, err := algebra.Eval(q, pre)
	if err != nil {
		return nil, err
	}
	muPost, err := algebra.Eval(q, post)
	if err != nil {
		return nil, err
	}
	correct := muPost.Len() - muPre.Len()

	_, preAdd, err := delta.PreUpdate(log, q)
	if err != nil {
		return nil, err
	}
	inPre, err := algebra.Eval(preAdd, pre)
	if err != nil {
		return nil, err
	}
	_, naiveAdd, err := delta.NaivePostUpdate(log, q)
	if err != nil {
		return nil, err
	}
	inPost, err := algebra.Eval(naiveAdd, post)
	if err != nil {
		return nil, err
	}
	_, ourAdd, err := delta.PostUpdate(log, q)
	if err != nil {
		return nil, err
	}
	ours, err := algebra.Eval(ourAdd, post)
	if err != nil {
		return nil, err
	}

	return &Report{
		ID:     "E1",
		Title:  "State bug on a join view (Example 1.2): △MU multiplicity of [a1]",
		Notes:  fmt.Sprintf("paper: pre-state evaluation gives 2, post-state naive gives 4; correct net insert is %d", correct),
		Header: []string{"method", "state evaluated in", "|△MU|", "correct?"},
		Rows: [][]string{
			{"pre-update alg [BLT86]", "pre-update", fmt.Sprint(inPre.Len()), yes(inPre.Len() == correct)},
			{"pre-update alg (naive)", "post-update", fmt.Sprint(inPost.Len()), yes(inPost.Len() == correct)},
			{"post-update alg (ours)", "post-update", fmt.Sprint(ours.Len()), yes(ours.Len() == correct)},
		},
	}, nil
}

// E2StateBugDiff reproduces Example 1.3: U = R − S; moving [b] from R to
// S. The naive post-state evaluation computes ∇MU = ∅ and leaves the
// stale [b] in the view.
func E2StateBugDiff() (*Report, error) {
	sch := schema.NewSchema(schema.Col("x", schema.TString))
	pre := algebra.MapSource{
		"R": bag.Of(schema.Row("a"), schema.Row("b"), schema.Row("c")),
		"S": bag.Of(schema.Row("c"), schema.Row("d")),
	}
	delR := bag.Of(schema.Row("b"))
	insS := bag.Of(schema.Row("b"))
	post := algebra.MapSource{
		"R": bag.Monus(pre["R"], delR),
		"S": bag.UnionAll(pre["S"], insS),
	}
	q, err := algebra.NewMonus(algebra.NewBase("R", sch), algebra.NewBase("S", sch))
	if err != nil {
		return nil, err
	}
	log := delta.ChangeSet{
		"R": {Deleted: algebra.NewLiteral(sch, delR), Inserted: algebra.NewLiteral(sch, bag.New())},
		"S": {Deleted: algebra.NewLiteral(sch, bag.New()), Inserted: algebra.NewLiteral(sch, insS)},
	}

	muPre, _ := algebra.Eval(q, pre)   // {a,b}
	muPost, _ := algebra.Eval(q, post) // {a}

	apply := func(del, add algebra.Expr, st algebra.MapSource) (*bag.Bag, error) {
		dv, err := algebra.Eval(del, st)
		if err != nil {
			return nil, err
		}
		av, err := algebra.Eval(add, st)
		if err != nil {
			return nil, err
		}
		return bag.UnionAll(bag.Monus(muPre, dv), av), nil
	}

	preDel, preAdd, err := delta.PreUpdate(log, q)
	if err != nil {
		return nil, err
	}
	fromPre, err := apply(preDel, preAdd, pre)
	if err != nil {
		return nil, err
	}
	nDel, nAdd, err := delta.NaivePostUpdate(log, q)
	if err != nil {
		return nil, err
	}
	fromNaive, err := apply(nDel, nAdd, post)
	if err != nil {
		return nil, err
	}
	oDel, oAdd, err := delta.PostUpdate(log, q)
	if err != nil {
		return nil, err
	}
	fromOurs, err := apply(oDel, oAdd, post)
	if err != nil {
		return nil, err
	}

	row := func(name, state string, got *bag.Bag) []string {
		return []string{name, state, got.String(), yes(got.Equal(muPost))}
	}
	return &Report{
		ID:     "E2",
		Title:  "State bug on a difference view (Example 1.3): refreshed MU",
		Notes:  fmt.Sprintf("correct refreshed view is %s; the naive method keeps the deleted tuple [b]", muPost),
		Header: []string{"method", "state evaluated in", "refreshed MU", "correct?"},
		Rows: [][]string{
			row("pre-update alg [QW91/GL95]", "pre-update", fromPre),
			row("pre-update alg (naive)", "post-update", fromNaive),
			row("post-update alg (ours)", "post-update", fromOurs),
		},
	}, nil
}

// E6RestrictedClass quantifies Remark 1: within the restricted class
// (SPJ, no self-joins, single-table updates) the naive and post-update
// equations agree; each relaxation manufactures disagreements.
func E6RestrictedClass() (*Report, error) {
	r := rand.New(rand.NewSource(99))
	trials := 200

	spjAgree, spjTotal, err := remark1Trials(r, trials, false, false)
	if err != nil {
		return nil, err
	}
	multiAgree, multiTotal, err := remark1Trials(r, trials, true, false)
	if err != nil {
		return nil, err
	}
	selfAgree, selfTotal, err := remark1Trials(r, trials, false, true)
	if err != nil {
		return nil, err
	}

	return &Report{
		ID:     "E6",
		Title:  "Remark 1: when does the pre-update algorithm survive post-state evaluation?",
		Notes:  "restricted class must agree 100%; relaxations must show disagreements",
		Header: []string{"class", "trials", "agree", "disagree"},
		Rows: [][]string{
			{"SPJ, no self-join, single-table update", fmt.Sprint(spjTotal), fmt.Sprint(spjAgree), fmt.Sprint(spjTotal - spjAgree)},
			{"SPJ, no self-join, TWO-table update", fmt.Sprint(multiTotal), fmt.Sprint(multiAgree), fmt.Sprint(multiTotal - multiAgree)},
			{"SPJ with SELF-JOIN, single-table update", fmt.Sprint(selfTotal), fmt.Sprint(selfAgree), fmt.Sprint(selfTotal - selfAgree)},
		},
	}, nil
}

// remark1Trials runs randomized naive-vs-post comparisons over SPJ joins.
// multiTable updates both join inputs; selfJoin joins R with itself.
func remark1Trials(r *rand.Rand, trials int, multiTable, selfJoin bool) (agree, total int, err error) {
	rsch := schema.NewSchema(schema.Col("R.k", schema.TInt), schema.Col("R.v", schema.TInt))
	ssch := schema.NewSchema(schema.Col("S.k", schema.TInt), schema.Col("S.w", schema.TInt))
	for i := 0; i < trials; i++ {
		pre := algebra.MapSource{"R": bag.New(), "S": bag.New()}
		for j, n := 0, 2+r.Intn(6); j < n; j++ {
			pre["R"].Add(schema.Row(r.Intn(3), r.Intn(3)), 1)
		}
		for j, n := 0, 2+r.Intn(6); j < n; j++ {
			pre["S"].Add(schema.Row(r.Intn(3), r.Intn(3)), 1)
		}

		var q algebra.Expr
		if selfJoin {
			l := algebra.Qualified(algebra.NewBase("R", rsch), "l")
			rr := algebra.Qualified(algebra.NewBase("R", rsch), "r")
			j, jerr := algebra.JoinOn(l, rr, algebra.Eq(algebra.A("l.k"), algebra.A("r.k")))
			if jerr != nil {
				return 0, 0, jerr
			}
			q, err = algebra.NewProject([]string{"l.v", "r.v"}, []string{"v1", "v2"}, j)
		} else {
			j, jerr := algebra.JoinOn(algebra.NewBase("R", rsch), algebra.NewBase("S", ssch),
				algebra.Eq(algebra.A("R.k"), algebra.A("S.k")))
			if jerr != nil {
				return 0, 0, jerr
			}
			q, err = algebra.NewProject([]string{"R.v", "S.w"}, nil, j)
		}
		if err != nil {
			return 0, 0, err
		}

		randBag := func(n int) *bag.Bag {
			b := bag.New()
			for j := 0; j < n; j++ {
				b.Add(schema.Row(r.Intn(3), r.Intn(3)), 1)
			}
			return b
		}
		delR := bag.Min(randBag(1+r.Intn(2)), pre["R"])
		insR := randBag(1 + r.Intn(2))
		post := algebra.MapSource{
			"R": bag.UnionAll(bag.Monus(pre["R"], delR), insR),
			"S": pre["S"],
		}
		log := delta.ChangeSet{"R": {
			Deleted:  algebra.NewLiteral(rsch, delR),
			Inserted: algebra.NewLiteral(rsch, insR),
		}}
		if multiTable {
			delS := bag.Min(randBag(1+r.Intn(2)), pre["S"])
			insS := randBag(1 + r.Intn(2))
			post["S"] = bag.UnionAll(bag.Monus(pre["S"], delS), insS)
			log["S"] = struct {
				Deleted  algebra.Expr
				Inserted algebra.Expr
			}{algebra.NewLiteral(ssch, delS), algebra.NewLiteral(ssch, insS)}
		}

		nd, na, err := delta.NaivePostUpdate(log, q)
		if err != nil {
			return 0, 0, err
		}
		pd, pa, err := delta.PostUpdate(log, q)
		if err != nil {
			return 0, 0, err
		}
		ndv, err := algebra.Eval(nd, post)
		if err != nil {
			return 0, 0, err
		}
		nav, _ := algebra.Eval(na, post)
		pdv, _ := algebra.Eval(pd, post)
		pav, _ := algebra.Eval(pa, post)
		total++
		if ndv.Equal(pdv) && nav.Equal(pav) {
			agree++
		}
	}
	return agree, total, nil
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
