// Package bench implements the experiment harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E9), each returning
// a Report that cmd/dvmbench prints. The experiments reproduce the
// paper's worked examples (state bug), its qualitative claims
// (per-transaction overhead, view downtime, Policies 1/2), and the
// ablations DESIGN.md calls out (weak vs strong minimality, incremental
// vs recompute).
package bench

import (
	"fmt"
	"strings"
)

// Report is one experiment's output table.
type Report struct {
	ID     string
	Title  string
	Notes  string   // expected shape, caveats
	Header []string // column names
	Rows   [][]string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Notes)
	}
	return sb.String()
}

// Experiment names one runnable experiment.
type Experiment struct {
	ID  string
	Run func() (*Report, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "e1", Run: E1StateBugJoin},
		{ID: "e2", Run: E2StateBugDiff},
		{ID: "e3", Run: E3Overhead},
		{ID: "e4", Run: E4Downtime},
		{ID: "e5", Run: E5PropagationSweep},
		{ID: "e6", Run: E6RestrictedClass},
		{ID: "e7", Run: E7Minimality},
		{ID: "e8", Run: E8IncrVsRecompute},
		{ID: "e9", Run: E9Batching},
		{ID: "e10", Run: E10SharedLog},
		{ID: "e11", Run: E11ReaderBlocking},
		{ID: "e12", Run: E12SelfMaintainability},
		{ID: "e13", Run: E13RelevantUpdates},
		{ID: "e14", Run: E14FreshQueries},
	}
}
