// Package bench implements the experiment harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E9), each returning
// a Report that cmd/dvmbench prints. The experiments reproduce the
// paper's worked examples (state bug), its qualitative claims
// (per-transaction overhead, view downtime, Policies 1/2), and the
// ablations DESIGN.md calls out (weak vs strong minimality, incremental
// vs recompute).
package bench

import (
	"fmt"
	"strings"
	"time"

	"dvm/internal/obs"
)

// Report is one experiment's output table.
type Report struct {
	ID     string
	Title  string
	Notes  string   // expected shape, caveats
	Header []string // column names
	Rows   [][]string
	// Phases carries per-phase timing distributions pulled from the obs
	// histograms of the experiment's manager(s) — makesafe, propagate,
	// refresh, downtime — rendered after the table.
	Phases []PhaseStat `json:",omitempty"`
}

// PhaseStat is one maintenance phase's timing distribution, extracted
// from an obs histogram (durations in nanoseconds when JSON-encoded).
type PhaseStat struct {
	Name  string
	Count int64
	Sum   time.Duration
	Max   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// PhasesFrom extracts the named histogram families from a registry as
// PhaseStats, skipping empty histograms. A non-empty prefix labels each
// entry (useful when one report spans several managers).
func PhasesFrom(r *obs.Registry, prefix string, families ...string) []PhaseStat {
	snap := r.Snapshot()
	var out []PhaseStat
	for _, fam := range families {
		for _, m := range snap.Family(fam) {
			if m.Kind != "histogram" || m.Count == 0 {
				continue
			}
			name := m.Name
			if m.Label != "" {
				name = fmt.Sprintf("%s{%s}", m.Name, m.Label)
			}
			if prefix != "" {
				name = prefix + " " + name
			}
			out = append(out, PhaseStat{
				Name:  name,
				Count: m.Count,
				Sum:   time.Duration(m.Sum),
				Max:   time.Duration(m.Max),
				P50:   time.Duration(m.P50),
				P90:   time.Duration(m.P90),
				P99:   time.Duration(m.P99),
			})
		}
	}
	return out
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	if len(r.Phases) > 0 {
		sb.WriteString("phase timings (obs spans):\n")
		nameW := len("phase")
		for _, p := range r.Phases {
			if len(p.Name) > nameW {
				nameW = len(p.Name)
			}
		}
		rd := func(d time.Duration) string { return d.Round(time.Microsecond).String() }
		for _, p := range r.Phases {
			fmt.Fprintf(&sb, "  %-*s  n=%-4d  p50=%-8s  p90=%-8s  p99=%-8s  max=%-8s  total=%s\n",
				nameW, p.Name, p.Count, rd(p.P50), rd(p.P90), rd(p.P99), rd(p.Max), rd(p.Sum))
		}
	}
	if r.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Notes)
	}
	return sb.String()
}

// Experiment names one runnable experiment.
type Experiment struct {
	ID  string
	Run func() (*Report, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "e1", Run: E1StateBugJoin},
		{ID: "e2", Run: E2StateBugDiff},
		{ID: "e3", Run: E3Overhead},
		{ID: "e4", Run: E4Downtime},
		{ID: "e5", Run: E5PropagationSweep},
		{ID: "e6", Run: E6RestrictedClass},
		{ID: "e7", Run: E7Minimality},
		{ID: "e8", Run: E8IncrVsRecompute},
		{ID: "e9", Run: E9Batching},
		{ID: "e10", Run: E10SharedLog},
		{ID: "e11", Run: E11ReaderBlocking},
		{ID: "e12", Run: E12SelfMaintainability},
		{ID: "e13", Run: E13RelevantUpdates},
		{ID: "e14", Run: E14FreshQueries},
		{ID: "e15", Run: E15ShardScaling},
		{ID: "e16", Run: E16CompiledPrograms},
	}
}
