package bench

import (
	"fmt"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/core"
	"dvm/internal/storage"
	"dvm/internal/workload"
)

// E13RelevantUpdates measures relevant-update detection ([KR87]/[SP89],
// the snapshot-literature thread the paper's related work surveys):
// per-view log filters keep irrelevant changes out of the log entirely,
// so log volume and refresh work scale with the view's selectivity
// instead of the raw update rate.
//
// The sales filter exploits the workload's integrity constraint that
// high-value customers occupy the low id range (the [KR87] key-range
// trick); the customer filter is the view's own score conjunct.
func E13RelevantUpdates() (*Report, error) {
	const (
		ticks   = 24
		perTick = 100
	)
	rep := &Report{
		ID:     "E13",
		Title:  "Relevant-update detection: log volume and refresh cost, filtered vs unfiltered logs",
		Notes:  "filters keep only changes that can affect the view; volume tracks selectivity",
		Header: []string{"variant", "log rows at refresh", "refresh µs", "µs/txn"},
	}

	cfg := benchConfig(61)
	cfg.ZipfS = 0 // uniform customers: selectivity = HighFraction
	highCutoff := int(cfg.HighFraction * float64(cfg.Customers))

	for _, filtered := range []bool{false, true} {
		db := storage.NewDatabase()
		w := workload.NewRetail(cfg)
		if err := w.Setup(db); err != nil {
			return nil, err
		}
		m := core.NewManager(db)
		def, err := w.ViewDef()
		if err != nil {
			return nil, err
		}
		var opts []core.Option
		name := "unfiltered logs (paper's makesafe_BL)"
		if filtered {
			name = "relevant-update filters ([KR87]-style)"
			opts = append(opts,
				core.WithLogFilter("sales", algebra.AndOf(
					algebra.Lt(algebra.A("s.custId"), algebra.C(highCutoff)),
					algebra.Neq(algebra.A("s.quantity"), algebra.C(0)),
				)),
				core.WithLogFilter("customer",
					algebra.Eq(algebra.A("c.score"), algebra.C("High"))),
			)
		}
		if _, err := m.DefineView("v", def, core.BaseLogs, opts...); err != nil {
			return nil, err
		}

		start := time.Now()
		for tick := 0; tick < ticks; tick++ {
			if err := m.Execute(w.MixedBatch(perTick, 10)); err != nil {
				return nil, err
			}
		}
		perTxn := time.Since(start) / ticks

		v, _ := m.View("v")
		volume := 0
		for _, b := range v.BaseTables() {
			for _, ln := range []string{
				fmt.Sprintf("__log_del_%s__v", b),
				fmt.Sprintf("__log_ins_%s__v", b),
			} {
				lb, err := db.Bag(ln)
				if err != nil {
					return nil, err
				}
				volume += lb.Len()
			}
		}

		rStart := time.Now()
		if err := m.Refresh("v"); err != nil {
			return nil, err
		}
		refresh := time.Since(rStart)
		if err := m.CheckConsistent("v"); err != nil {
			return nil, fmt.Errorf("E13 %s: %w", name, err)
		}

		rep.Rows = append(rep.Rows, []string{
			name,
			fmt.Sprint(volume),
			fmt.Sprint(refresh.Microseconds()),
			fmt.Sprint(perTxn.Microseconds()),
		})
	}
	return rep, nil
}
