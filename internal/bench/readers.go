package bench

import (
	"fmt"
	"time"

	"dvm/internal/core"
)

// E11ReaderBlocking measures the downtime claim from the readers' side.
// Phase 1 measures each refresh variant's true exclusive-lock hold over
// the same pending-update volume. Phase 2 deterministically replays that
// hold under the view's write lock and measures the latency of a Query
// that provably arrives at the start of the hold (channel handshake
// inside the critical section) — the stall a worst-case analyst
// experiences. The deterministic replay keeps the experiment meaningful
// on single-CPU machines, where racing reader goroutines mostly measure
// the scheduler.
func E11ReaderBlocking() (*Report, error) {
	const pending = 2000
	rep := &Report{
		ID:     "E11",
		Title:  "Reader blocking during refresh (worst-case analyst arriving at lock acquisition)",
		Notes:  "stall ≈ hold + one view copy; Policy 2 shrinks the hold to the precomputed-delta apply",
		Header: []string{"variant", "refresh hold µs", "baseline query µs", "worst-case reader stall µs"},
	}

	type variant struct {
		name    string
		sc      core.Scenario
		prepare func(m *core.Manager) error
		refresh func(m *core.Manager) error
	}
	variants := []variant{
		{
			name:    "BL refresh (incremental under lock)",
			sc:      core.BaseLogs,
			prepare: func(*core.Manager) error { return nil },
			refresh: func(m *core.Manager) error { return m.Refresh("v0") },
		},
		{
			name:    "C Policy 2 (propagate first, partial refresh)",
			sc:      core.Combined,
			prepare: func(m *core.Manager) error { return m.Propagate("v0") },
			refresh: func(m *core.Manager) error { return m.PartialRefresh("v0") },
		},
	}

	for _, v := range variants {
		m, w, err := setupViews(1, v.sc, 31)
		if err != nil {
			return nil, err
		}
		if err := m.Execute(w.SalesBatch(pending)); err != nil {
			return nil, err
		}
		if err := v.prepare(m); err != nil {
			return nil, err
		}
		view, _ := m.View("v0")

		// Phase 1: the variant's true hold time.
		m.Locks().Reset()
		if err := v.refresh(m); err != nil {
			return nil, err
		}
		hold := m.Locks().Stats(view.MVTable()).MaxWriteHold

		// Baseline query latency with no contention.
		qStart := time.Now()
		if _, err := m.Query("v0"); err != nil {
			return nil, err
		}
		baseline := time.Since(qStart)

		// Phase 2: replay the hold; the reader arrives exactly as the
		// exclusive section begins.
		inside := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- m.Locks().WithWrite([]string{view.MVTable()}, func() error {
				close(inside)
				time.Sleep(hold)
				return nil
			})
		}()
		<-inside
		rStart := time.Now()
		if _, err := m.Query("v0"); err != nil {
			return nil, err
		}
		stall := time.Since(rStart)
		if err := <-done; err != nil {
			return nil, err
		}

		rep.Rows = append(rep.Rows, []string{
			v.name,
			fmt.Sprint(hold.Microseconds()),
			fmt.Sprint(baseline.Microseconds()),
			fmt.Sprint(stall.Microseconds()),
		})
	}
	return rep, nil
}
