package bench

import (
	"fmt"
	"math/rand"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/delta"
)

// E12SelfMaintainability quantifies the Section 1.2 observation that
// select-project views are self-maintainable [GJM96] and therefore never
// see the state bug: for such views the naive post-state evaluation of
// the pre-update equations agrees with the post-update algorithm under
// ARBITRARY multi-table updates, and the differentials never read a base
// table. Non-self-maintainable views of similar size disagree readily.
func E12SelfMaintainability() (*Report, error) {
	r := rand.New(rand.NewSource(121))
	const trials = 200

	spAgree, spBaseFree, err := selfMaintTrials(r, trials, true)
	if err != nil {
		return nil, err
	}
	genAgree, genBaseFree, err := selfMaintTrials(r, trials, false)
	if err != nil {
		return nil, err
	}

	return &Report{
		ID:     "E12",
		Title:  "Self-maintainable (select-project) views never see the state bug (§1.2, [GJM96])",
		Notes:  "SP views: naive ≡ post under arbitrary multi-table updates; differentials read no base tables",
		Header: []string{"view class", "trials", "naive = post", "differentials base-free"},
		Rows: [][]string{
			{"select-project (self-maintainable)", fmt.Sprint(trials), fmt.Sprint(spAgree), fmt.Sprint(spBaseFree)},
			{"general BA views", fmt.Sprint(trials), fmt.Sprint(genAgree), fmt.Sprint(genBaseFree)},
		},
	}, nil
}

// selfMaintTrials compares naive vs post-update on random views,
// restricted to the self-maintainable class when spOnly is set; it
// counts agreement and whether the differentials avoid base tables.
func selfMaintTrials(r *rand.Rand, trials int, spOnly bool) (agree, baseFree int, err error) {
	u := algebra.NewRandomUniverse(2)
	done := 0
	for done < trials {
		var q algebra.Expr
		if spOnly {
			q = randomSPQuery(r, u)
		} else {
			q = u.RandomQuery(r, 3)
			if delta.SelfMaintainable(q) {
				continue // only genuinely general views in this arm
			}
		}
		done++

		sp := u.RandomState(r)
		deltas := map[string][2]*bag.Bag{}
		sc := algebra.MapSource{}
		log := delta.ChangeSet{}
		for _, name := range u.Tables {
			del, ins := u.RandomDelta(r)
			del = bag.Min(del, sp[name])
			deltas[name] = [2]*bag.Bag{del, ins}
			sc[name] = bag.UnionAll(bag.Monus(sp[name], del), ins)
			log[name] = struct {
				Deleted  algebra.Expr
				Inserted algebra.Expr
			}{algebra.NewLiteral(u.Sch, del), algebra.NewLiteral(u.Sch, ins)}
		}

		nd, na, err := delta.NaivePostUpdate(log, q)
		if err != nil {
			return 0, 0, err
		}
		pd, pa, err := delta.PostUpdate(log, q)
		if err != nil {
			return 0, 0, err
		}
		ndv, err := algebra.Eval(nd, sc)
		if err != nil {
			return 0, 0, err
		}
		nav, _ := algebra.Eval(na, sc)
		pdv, _ := algebra.Eval(pd, sc)
		pav, _ := algebra.Eval(pa, sc)
		// Agreement on the net effect (applied to the past value), which
		// is what a maintainer observes.
		qPast, _ := algebra.Eval(q, sp)
		naive := bag.UnionAll(bag.Monus(qPast, ndv), nav)
		post := bag.UnionAll(bag.Monus(qPast, pdv), pav)
		if naive.Equal(post) {
			agree++
		}
		if !touchesBases(pd, u) && !touchesBases(pa, u) {
			baseFree++
		}
	}
	return agree, baseFree, nil
}

// randomSPQuery draws from the self-maintainable class: σ/Π/⊎ over base
// tables.
func randomSPQuery(r *rand.Rand, u *algebra.RandomUniverse) algebra.Expr {
	base := func() algebra.Expr {
		return algebra.NewBase(u.Tables[r.Intn(len(u.Tables))], u.Sch)
	}
	q := base()
	for i, n := 0, r.Intn(3); i < n; i++ {
		switch r.Intn(3) {
		case 0:
			s, err := algebra.NewSelect(algebra.Gt(algebra.A("a"), algebra.C(r.Intn(4))), q)
			if err != nil {
				panic(err)
			}
			q = s
		case 1:
			p, err := algebra.NewProject([]string{"b", "a"}, []string{"a", "b"}, q)
			if err != nil {
				panic(err)
			}
			q = p
		default:
			un, err := algebra.NewUnionAll(q, base())
			if err != nil {
				panic(err)
			}
			q = un
		}
	}
	return q
}

// touchesBases reports whether e references any of the universe's base
// tables (as opposed to log/delta tables).
func touchesBases(e algebra.Expr, u *algebra.RandomUniverse) bool {
	baseSet := map[string]bool{}
	for _, t := range u.Tables {
		baseSet[t] = true
	}
	for _, name := range algebra.BaseNames(e) {
		if baseSet[name] {
			return true
		}
	}
	return false
}
