package sql

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSQLPrinterRoundTrip(t *testing.T) {
	stmts := []string{
		"CREATE TABLE t (a INT, b STRING, c FLOAT, d BOOL)",
		"CREATE MATERIALIZED VIEW v REFRESH DEFERRED COMBINED AS SELECT a.x, b.y AS z FROM t1 a, t2 b WHERE (a.x = b.y AND a.x > 3)",
		"CREATE MATERIALIZED VIEW v REFRESH IMMEDIATE AS SELECT * FROM t",
		"CREATE MATERIALIZED VIEW v REFRESH DEFERRED LOGGED AS SELECT DISTINCT x FROM t",
		"CREATE MATERIALIZED VIEW v REFRESH DEFERRED COMBINED MIN AS SELECT * FROM t MONUS SELECT * FROM u",
		"SELECT * FROM a UNION ALL SELECT * FROM b EXCEPT SELECT * FROM c",
		"INSERT INTO t VALUES (1, 'it''s', 2.5, TRUE), (-3, NULL, -0.5, FALSE)",
		"DELETE FROM t WHERE ((x + 1) * 2) >= y",
		"DELETE FROM t",
		"REFRESH v",
		"PROPAGATE v",
		"PARTIAL REFRESH v",
		"RECOMPUTE v",
		"CHECK INVARIANT v",
		"SHOW TABLES",
		"SHOW VIEWS",
		"DROP TABLE t",
		"DROP VIEW v",
	}
	for _, src := range stmts {
		first, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := SQL(first)
		second, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", src, printed, err)
		}
		// The printer normalizes parentheses; compare the third
		// generation against the second for a fixed point.
		if again := SQL(second); again != printed {
			t.Fatalf("printer not a fixed point:\n1st: %s\n2nd: %s", printed, again)
		}
		if !reflect.DeepEqual(first, second) {
			// ASTs may differ only in redundant grouping; the fixed-point
			// check above is the real guarantee. Accept structural
			// differences only for expressions, not for top-level shape.
			if reflect.TypeOf(first) != reflect.TypeOf(second) {
				t.Fatalf("round trip changed statement kind for %q", src)
			}
		}
	}
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED COMBINED")
	if _, err := e.Exec("INSERT INTO sales VALUES (3, 99, 7, 2.00)"); err != nil {
		t.Fatal(err)
	}
	// Also a second view with strong minimality.
	if _, err := e.Exec(`CREATE MATERIALIZED VIEW diff REFRESH DEFERRED COMBINED MIN AS
		SELECT s.custId, s.itemNo FROM sales s MONUS SELECT c.custId, c.custId FROM customer c`); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Base data survived.
	r1, _ := e.Exec("SELECT * FROM sales")
	r2, err := restored.Exec("SELECT * FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Rows.Equal(r2.Rows) {
		t.Fatalf("sales mismatch after restore:\n%v\nvs\n%v", r1.Rows, r2.Rows)
	}

	// Views exist, are consistent (re-materialized), and keep their
	// scenarios.
	show, _ := restored.Exec("SHOW VIEWS")
	if !strings.Contains(show.Message, "hv (C)") || !strings.Contains(show.Message, "diff (C)") {
		t.Fatalf("views missing after restore: %q", show.Message)
	}
	for _, v := range []string{"hv", "diff"} {
		if _, err := restored.Exec("CHECK INVARIANT " + v); err != nil {
			t.Fatal(err)
		}
	}
	// The restored hv reflects the pre-snapshot insert (re-materialized).
	r, _ := restored.Exec("SELECT * FROM hv WHERE itemNo = 99")
	if r.Rows.Len() != 1 {
		t.Fatalf("restored view missing data: %v", r.Rows)
	}
	// And maintenance continues to work.
	if _, err := restored.Exec("INSERT INTO sales VALUES (1, 55, 1, 1.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Exec("REFRESH hv"); err != nil {
		t.Fatal(err)
	}
	r, _ = restored.Exec("SELECT * FROM hv WHERE itemNo = 55")
	if r.Rows.Len() != 1 {
		t.Fatal("restored engine cannot maintain views")
	}
}

func TestEngineSnapshotExcludesInternalTables(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED LOGGED")
	var buf bytes.Buffer
	if err := e.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The MV table exists (recreated by DDL replay) but came from the
	// replay, not the snapshot: exactly one per view.
	names := restored.DB().Names()
	mvs := 0
	for _, n := range names {
		if strings.HasPrefix(n, "__mv_") {
			mvs++
		}
	}
	if mvs != 1 {
		t.Fatalf("expected exactly 1 MV table, got %d in %v", mvs, names)
	}
}

func TestLoadEngineErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXX\x00\x00\x00\x00"),
		"truncated": []byte("DVME\x02\x00\x00\x00"),
	}
	for name, data := range cases {
		if _, err := LoadEngine(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// DDL that no longer parses (corrupted) must fail on replay.
	bad := append([]byte("DVME"), 1, 0, 0, 0, 3, 0, 0, 0)
	bad = append(bad, []byte("???")...)
	if _, err := LoadEngine(bytes.NewReader(bad)); err == nil {
		t.Error("garbage DDL accepted")
	}
}

func TestSaveRejectsNonSQLViews(t *testing.T) {
	// A view defined directly through the manager has no DDL to persist.
	e := newRetailEngine(t, "DEFERRED")
	v, err := e.Manager().View("hv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Manager().DefineView("raw", v.Def, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveTo(&buf); err == nil || !strings.Contains(err.Error(), "not created through SQL") {
		t.Fatalf("expected a not-created-through-SQL error, got %v", err)
	}
}
