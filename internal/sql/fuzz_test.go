package sql

import (
	"strings"
	"testing"
)

// FuzzParse guards the parser against panics: any input must either
// parse or return an error, never crash. The seed corpus covers every
// statement kind plus known-tricky shapes.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"SELECT * FROM t",
		"SELECT DISTINCT a.x AS y FROM t a, u b WHERE a.x = b.y AND NOT (b.y < 3 OR TRUE)",
		"SELECT * FROM a UNION ALL SELECT * FROM b EXCEPT SELECT * FROM c MONUS SELECT * FROM d",
		"SELECT x FROM t ORDER BY x DESC LIMIT 3",
		"SELECT cust, COUNT(*), SUM(amount) FROM o GROUP BY cust",
		"SELECT MIN(x), MAX(x) FROM t",
		"CREATE TABLE t (a INT, b STRING, c FLOAT, d BOOL)",
		"CREATE MATERIALIZED VIEW v REFRESH DEFERRED COMBINED MIN AS SELECT * FROM t",
		"INSERT INTO t VALUES (1, 'it''s', -2.5, TRUE, NULL)",
		"DELETE FROM t WHERE (x + 1) * 2 >= y / 3",
		"REFRESH VIEW v", "PROPAGATE v", "PARTIAL REFRESH v",
		"RECOMPUTE v", "CHECK INVARIANT v", "SHOW TABLES", "SHOW VIEWS",
		"DROP TABLE t", "DROP VIEW v",
		"EXPLAIN VIEW v", "EXPLAIN SELECT * FROM t",
		"SELECT 'unterminated",
		"SELECT (((((x FROM t",
		"INSERT INTO t VALUES (((",
		"-- just a comment",
		"SELECT * FROM t WHERE x = 9999999999999999999999999",
		"SELECT \x00 FROM t",
		"CREATE MATERIALIZED VIEW ü REFRESH DEFERRED AS SELECT * FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Both single-statement and script parsing must be total.
		st, err := Parse(input)
		if err == nil && st != nil {
			// Printing a parsed statement must also be total, and its
			// output must re-parse (printer fixed-point property).
			printed := SQL(st)
			if _, err := Parse(printed); err != nil {
				// Statements containing aggregate expressions in odd
				// positions may normalize; only structural statements
				// must round-trip. Re-parse failures on printable output
				// are still bugs.
				t.Fatalf("printed form does not re-parse: %q -> %q: %v", input, printed, err)
			}
		}
		_, _ = ParseScript(input)
	})
}

// FuzzEngineExec runs fuzzed statements against a live engine: no input
// may panic or corrupt the maintenance invariants.
func FuzzEngineExec(f *testing.F) {
	seeds := []string{
		"INSERT INTO sales VALUES (1, 2, 3, 4.0)",
		"DELETE FROM sales WHERE custId = 1",
		"SELECT * FROM hv",
		"REFRESH hv",
		"PROPAGATE hv",
		"DROP VIEW hv",
		"INSERT INTO sales VALUES ('wrong', 'types', 1, 2)",
		"SELECT SUM(quantity) FROM sales s GROUP BY itemNo",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e := NewEngine()
		setup := `
			CREATE TABLE customer (custId INT, name STRING, address STRING, score STRING);
			CREATE TABLE sales (custId INT, itemNo INT, quantity INT, salesPrice FLOAT);
			INSERT INTO customer VALUES (1, 'a', 'x', 'High');
			INSERT INTO sales VALUES (1, 1, 1, 1.0);
			CREATE MATERIALIZED VIEW hv REFRESH DEFERRED COMBINED AS
				SELECT c.custId, s.itemNo FROM customer c, sales s
				WHERE c.custId = s.custId;
		`
		if _, err := e.ExecScript(setup); err != nil {
			t.Fatal(err)
		}
		_, _ = e.Exec(input) // errors fine; panics are not
		// Whatever happened, the view invariant must survive (unless the
		// statement legitimately dropped the view).
		if _, err := e.Manager().View("hv"); err == nil {
			if err := e.Manager().CheckInvariant("hv"); err != nil {
				t.Fatalf("statement %q broke INV_C: %v", input, err)
			}
		}
		if strings.Contains(input, "\x00") {
			return // nothing more to assert for binary junk
		}
	})
}
