package sql

import (
	"strings"
	"testing"

	"dvm/internal/schema"
)

func TestOrderByAndLimit(t *testing.T) {
	e := aggEngine(t)
	r, err := e.Exec("SELECT cust, amount FROM orders o ORDER BY amount DESC, cust LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ordered) != 3 {
		t.Fatalf("LIMIT ignored: %d rows", len(r.Ordered))
	}
	if r.Ordered[0][1].AsFloat() != 30.0 || r.Ordered[2][1].AsFloat() != 7.5 {
		t.Fatalf("ordering wrong: %v", r.Ordered)
	}
	// String() renders the ordered rows and the limited count.
	out := r.String()
	if !strings.Contains(out, "(3 rows)") {
		t.Fatalf("String = %q", out)
	}
	if strings.Index(out, "30") > strings.Index(out, "7.5") {
		t.Fatalf("ordered rendering wrong:\n%s", out)
	}

	// Ascending default.
	r, err = e.Exec("SELECT amount FROM orders o ORDER BY amount ASC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Ordered[0][0].AsFloat() != 5.0 {
		t.Fatalf("ASC wrong: %v", r.Ordered)
	}

	// LIMIT without ORDER BY: deterministic canonical order.
	r, err = e.Exec("SELECT cust FROM orders o LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ordered) != 2 {
		t.Fatalf("bare LIMIT wrong: %v", r.Ordered)
	}

	// ORDER BY over aggregates.
	r, err = e.Exec("SELECT cust, SUM(amount) AS total FROM orders o GROUP BY cust ORDER BY total DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ordered) != 1 || !r.Ordered[0].Equal(schema.Row("ann", 40.0)) {
		t.Fatalf("top group wrong: %v", r.Ordered)
	}

	// Errors.
	if _, err := e.Exec("SELECT cust FROM orders o ORDER BY nothere"); err == nil {
		t.Fatal("unknown ORDER BY column accepted")
	}
	if _, err := e.Exec("SELECT cust FROM orders o LIMIT -1"); err == nil {
		t.Fatal("negative LIMIT accepted")
	}
	if _, err := e.Exec("SELECT cust FROM orders o LIMIT x"); err == nil {
		t.Fatal("non-numeric LIMIT accepted")
	}
}

func TestExplainQuery(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED COMBINED")
	r, err := e.Exec(`EXPLAIN SELECT c.name FROM customer c, sales s WHERE c.custId = s.custId`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"algebra:", "σ[", "×", "schema:", "name STRING"} {
		if !strings.Contains(r.Message, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, r.Message)
		}
	}
	if _, err := e.Exec("EXPLAIN SELECT COUNT(*) FROM sales s"); err == nil {
		t.Fatal("EXPLAIN of aggregates should be rejected")
	}
}

func TestExplainView(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED COMBINED")
	r, err := e.Exec("EXPLAIN VIEW hv")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"scenario:   C", "PAST(L,Q)", "bases:      customer, sales",
		"▼(L,Q)/▲(L,Q)", "__log_", "delete:", "insert:",
	} {
		if !strings.Contains(r.Message, want) {
			t.Fatalf("EXPLAIN VIEW missing %q:\n%s", want, r.Message)
		}
	}
	if _, err := e.Exec("EXPLAIN VIEW nope"); err == nil {
		t.Fatal("EXPLAIN of missing view accepted")
	}
}

func TestExplainImmediateAndSelfMaintainable(t *testing.T) {
	e := NewEngine()
	if _, err := e.ExecScript(`
		CREATE TABLE t (x INT);
		CREATE MATERIALIZED VIEW pos REFRESH DEFERRED LOGGED AS SELECT x FROM t WHERE x > 0;
		CREATE MATERIALIZED VIEW im REFRESH IMMEDIATE AS SELECT x FROM t WHERE x > 0;
	`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec("EXPLAIN VIEW pos")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "self-maintainable: yes") {
		t.Fatalf("SP view not flagged self-maintainable:\n%s", r.Message)
	}
	r, err = e.Exec("EXPLAIN VIEW im")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "∇(T,Q)/△(T,Q)") || !strings.Contains(r.Message, "__tx_") {
		t.Fatalf("immediate view EXPLAIN wrong:\n%s", r.Message)
	}
}
