package sql

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"dvm/internal/core"
	"dvm/internal/obs/trace"
	"dvm/internal/storage"
)

// Engine snapshots persist the external tables plus the SQL of every
// materialized view. Loading restores the base data and replays the
// view DDL, re-materializing each view from the restored state — so a
// loaded engine starts with every view consistent and empty logs.
//
// Format: magic "DVME" | u32 viewCount | per view: u32 len + SQL bytes |
// a storage snapshot of the external tables.

var engineMagic = [4]byte{'D', 'V', 'M', 'E'}

// SaveTo writes an engine snapshot.
func (e *Engine) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(engineMagic[:]); err != nil {
		return err
	}
	views := e.mgr.Views()
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(views)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, v := range views {
		cv, ok := e.viewDDL[v.Name]
		if !ok {
			return fmt.Errorf("sql: view %q was not created through SQL; snapshot cannot persist it", v.Name)
		}
		stmt := SQL(cv)
		binary.LittleEndian.PutUint32(buf[:], uint32(len(stmt)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(stmt); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// External tables only: internal state is re-derived on load.
	ext := e.db.Snapshot()
	for _, name := range ext.Names() {
		tb, err := ext.Table(name)
		if err != nil {
			return err
		}
		if tb.Kind() != storage.External {
			if err := ext.Drop(name); err != nil {
				return err
			}
		}
	}
	return ext.Save(w)
}

// countingReader tallies bytes consumed so LoadEngine can report the
// snapshot_load_bytes metric on the freshly built engine.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// LoadEngine restores an engine snapshot written by SaveTo. The bytes
// consumed are recorded as snapshot_load_bytes in the new engine's
// registry, and — when an option enables tracing — the whole load is
// recorded as a storage.snapshot.load trace.
func LoadEngine(r io.Reader, opts ...EngineOption) (*Engine, error) {
	loadStart := time.Now()
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sql: load: %w", err)
	}
	if magic != engineMagic {
		return nil, fmt.Errorf("sql: load: bad magic %q", magic[:])
	}
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(buf[:])
	if count > 1<<20 {
		return nil, fmt.Errorf("sql: load: implausible view count %d", count)
	}
	ddl := make([]string, count)
	for i := range ddl {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(buf[:])
		if n > 1<<24 {
			return nil, fmt.Errorf("sql: load: implausible DDL length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		ddl[i] = string(b)
	}
	db, err := storage.Load(br)
	if err != nil {
		return nil, err
	}
	e := NewEngineOver(db, core.NewManager(db))
	e.applyOptions(opts)
	if err := e.Err(); err != nil {
		return nil, err
	}
	for _, stmt := range ddl {
		if _, err := e.Exec(stmt); err != nil {
			return nil, fmt.Errorf("sql: load: replaying %q: %w", stmt, err)
		}
	}
	// Only the bytes actually consumed count (the bufio reader may have
	// read ahead into its buffer).
	loaded := cr.n - int64(br.Buffered())
	e.mgr.Obs().Counter("snapshot_load_bytes", "").Add(loaded)
	// The tracer is born mid-load, so the load span is opened
	// retroactively at the recorded start (covering parse + DDL replay).
	lsp := e.mgr.Tracer().StartTraceAt(trace.SpanSnapshotLoad, loadStart,
		trace.Int("bytes", loaded), trace.Int("views", int64(len(ddl))))
	lsp.EndExplicit(time.Since(loadStart))
	return e, nil
}
