package sql

import (
	"fmt"

	"dvm/internal/algebra"
	"dvm/internal/schema"
)

// Resolver maps a FROM-clause name to the storage table that backs it
// (for views, the MV table) and its schema, or reports an error.
type Resolver func(name string) (algebra.Expr, error)

// CompileSelect compiles a (possibly compound) SELECT into a bag-algebra
// expression using the resolver for FROM names.
func CompileSelect(st *SelectStmt, resolve Resolver) (algebra.Expr, error) {
	head, err := compileSimple(st.Head, resolve)
	if err != nil {
		return nil, err
	}
	out := head
	for _, op := range st.Ops {
		right, err := compileSimple(op.Right, resolve)
		if err != nil {
			return nil, err
		}
		switch op.Op {
		case "UNION ALL":
			out, err = algebra.NewUnionAll(out, right)
		case "EXCEPT":
			out, err = algebra.ExceptOf(out, right)
		case "MONUS":
			out, err = algebra.NewMonus(out, right)
		case "MIN":
			out, err = algebra.MinOf(out, right)
		case "MAX":
			out, err = algebra.MaxOf(out, right)
		default:
			return nil, fmt.Errorf("sql: unknown compound operator %q", op.Op)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func compileSimple(s *SimpleSelect, resolve Resolver) (algebra.Expr, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("sql: empty FROM clause")
	}
	// FROM: product of all sources, each qualified by its alias.
	var src algebra.Expr
	for _, ref := range s.From {
		base, err := resolve(ref.Name)
		if err != nil {
			return nil, err
		}
		alias := ref.Alias
		if alias == "" {
			alias = ref.Name
		}
		q := algebra.Qualified(base, alias)
		if src == nil {
			src = q
		} else {
			src = algebra.NewProduct(src, q)
		}
	}

	// WHERE.
	if s.Where != nil {
		pred, err := toPredicate(s.Where)
		if err != nil {
			return nil, err
		}
		sel, err := algebra.NewSelect(pred, src)
		if err != nil {
			return nil, err
		}
		src = sel
	}

	// Projection. Items must be column references (the bag algebra's Π_A
	// projects attributes; computed columns are outside the paper's
	// grammar and therefore outside this dialect).
	out := src
	if !s.Star {
		cols := make([]string, len(s.Items))
		outs := make([]string, len(s.Items))
		for i, item := range s.Items {
			cr, ok := item.Expr.(*ColRef)
			if !ok {
				return nil, fmt.Errorf("sql: SELECT item %d is not a column reference (Π_A projects attributes only)", i+1)
			}
			cols[i] = cr.Name
			outs[i] = item.Alias
			if outs[i] == "" {
				outs[i] = stripQualifier(cr.Name)
			}
		}
		p, err := algebra.NewProject(cols, outs, src)
		if err != nil {
			return nil, err
		}
		out = p
	}

	if s.Distinct {
		out = algebra.NewDupElim(out)
	}
	return out, nil
}

func stripQualifier(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// toPredicate converts a boolean SQL expression to an algebra predicate.
func toPredicate(e Expr) (algebra.Predicate, error) {
	switch x := e.(type) {
	case *BinExpr:
		switch x.Op {
		case "AND":
			l, err := toPredicate(x.L)
			if err != nil {
				return nil, err
			}
			r, err := toPredicate(x.R)
			if err != nil {
				return nil, err
			}
			return algebra.AndOf(l, r), nil
		case "OR":
			l, err := toPredicate(x.L)
			if err != nil {
				return nil, err
			}
			r, err := toPredicate(x.R)
			if err != nil {
				return nil, err
			}
			return algebra.OrOf(l, r), nil
		case "=", "!=", "<", "<=", ">", ">=":
			l, err := toScalar(x.L)
			if err != nil {
				return nil, err
			}
			r, err := toScalar(x.R)
			if err != nil {
				return nil, err
			}
			var op algebra.CmpOp
			switch x.Op {
			case "=":
				op = algebra.EQ
			case "!=":
				op = algebra.NE
			case "<":
				op = algebra.LT
			case "<=":
				op = algebra.LE
			case ">":
				op = algebra.GT
			case ">=":
				op = algebra.GE
			}
			return algebra.Cmp{Op: op, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("sql: %q is not a boolean operator", x.Op)
		}
	case *NotExpr:
		inner, err := toPredicate(x.E)
		if err != nil {
			return nil, err
		}
		return algebra.NotOf(inner), nil
	case Lit:
		if x.Value.Type() == schema.TBool {
			return algebra.BoolLit{Value: x.Value.AsBool()}, nil
		}
		return nil, fmt.Errorf("sql: literal %s is not boolean", x.Value)
	case *ColRef:
		return nil, fmt.Errorf("sql: bare column %q is not a boolean expression", x.Name)
	}
	return nil, fmt.Errorf("sql: cannot use %T as a predicate", e)
}

// toScalar converts a scalar SQL expression to an algebra scalar.
func toScalar(e Expr) (algebra.Scalar, error) {
	switch x := e.(type) {
	case *ColRef:
		return algebra.A(x.Name), nil
	case Lit:
		return algebra.Const{Value: x.Value}, nil
	case *BinExpr:
		var op algebra.ArithOp
		switch x.Op {
		case "+":
			op = algebra.OpAdd
		case "-":
			op = algebra.OpSub
		case "*":
			op = algebra.OpMul
		case "/":
			op = algebra.OpDiv
		default:
			return nil, fmt.Errorf("sql: %q is not a scalar operator", x.Op)
		}
		l, err := toScalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := toScalar(x.R)
		if err != nil {
			return nil, err
		}
		return algebra.Arith{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("sql: cannot use %T as a scalar", e)
}
