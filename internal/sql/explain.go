package sql

import (
	"fmt"
	"sort"
	"strings"

	"dvm/internal/core"
	"dvm/internal/delta"
)

// applyOrderLimit post-processes a SELECT result per the statement's
// ORDER BY and LIMIT clauses. Without ORDER BY, LIMIT applies to the
// canonical (sorted) tuple order so results stay deterministic.
func applyOrderLimit(res *Result, st *SelectStmt) (*Result, error) {
	if len(st.OrderBy) == 0 && st.Limit < 0 {
		return res, nil
	}
	rows := res.Rows.Tuples()
	if len(st.OrderBy) > 0 {
		positions := make([]int, len(st.OrderBy))
		for i, k := range st.OrderBy {
			p, err := res.Schema.Lookup(k.Col)
			if err != nil {
				return nil, fmt.Errorf("sql: ORDER BY: %w", err)
			}
			positions[i] = p
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, p := range positions {
				c := rows[a][p].Compare(rows[b][p])
				if c == 0 {
					continue
				}
				if st.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if st.Limit >= 0 && st.Limit < len(rows) {
		rows = rows[:st.Limit]
	}
	res.Ordered = rows
	return res, nil
}

// execExplain renders the compiled algebra behind a query or a view.
func (e *Engine) execExplain(s *ExplainStmt) (*Result, error) {
	var sb strings.Builder
	if s.View != "" {
		v, err := e.mgr.View(s.View)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "view:       %s\n", v.Name)
		fmt.Fprintf(&sb, "scenario:   %v (INV_%v)\n", v.Scenario, v.Scenario)
		fmt.Fprintf(&sb, "invariant:  %s\n", v.InvariantString())
		fmt.Fprintf(&sb, "bases:      %s\n", strings.Join(v.BaseTables(), ", "))
		fmt.Fprintf(&sb, "definition: %s\n", v.Def)
		del, add := v.IncrementalQueries()
		if del != nil {
			label := "∇(T,Q)/△(T,Q) over txn scratch tables (pre-update state)"
			if v.Scenario == core.BaseLogs || v.Scenario == core.Combined {
				label = "▼(L,Q)/▲(L,Q) over log tables (post-update state)"
			}
			fmt.Fprintf(&sb, "incremental (%s):\n", label)
			fmt.Fprintf(&sb, "  delete: %s\n", del)
			fmt.Fprintf(&sb, "  insert: %s\n", add)
		}
		if delta.SelfMaintainable(v.Def) {
			sb.WriteString("self-maintainable: yes (differentials never read base tables)\n")
		}
		return &Result{Message: strings.TrimRight(sb.String(), "\n")}, nil
	}
	if containsAggregates(s.Query) || len(s.Query.Head.GroupBy) > 0 {
		return nil, fmt.Errorf("sql: EXPLAIN of aggregate queries is not supported (aggregation runs outside the algebra)")
	}
	expr, err := CompileSelect(s.Query, e.queryResolver())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "algebra: %s\n", expr)
	fmt.Fprintf(&sb, "schema:  %s", expr.Schema())
	return &Result{Message: sb.String()}, nil
}
