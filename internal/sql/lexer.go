// Package sql implements a small embedded SQL dialect compiled to the bag
// algebra: CREATE TABLE, CREATE MATERIALIZED VIEW ... REFRESH
// IMMEDIATE/DEFERRED, SELECT (joins, WHERE, DISTINCT, UNION ALL, EXCEPT,
// MONUS), INSERT, DELETE, and the maintenance statements REFRESH,
// PROPAGATE, and PARTIAL REFRESH. Bag (SQL duplicate) semantics
// throughout, matching the paper.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "MATERIALIZED": true, "VIEW": true,
	"AS": true, "SELECT": true, "DISTINCT": true, "FROM": true,
	"WHERE": true, "AND": true, "OR": true, "NOT": true, "UNION": true,
	"ALL": true, "EXCEPT": true, "MONUS": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DELETE": true, "REFRESH": true,
	"PROPAGATE": true, "PARTIAL": true, "IMMEDIATE": true, "DEFERRED": true,
	"LOGGED": true, "DIFFERENTIAL": true, "COMBINED": true, "NULL": true,
	"TRUE": true, "FALSE": true, "INT": true, "FLOAT": true, "STRING": true,
	"BOOL": true, "DROP": true, "SHOW": true, "TABLES": true, "VIEWS": true,
	"MIN": true, "MAX": true, "GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true, "EXPLAIN": true, "RECOMPUTE": true, "INVARIANT": true, "CHECK": true,
}

// lex tokenizes the input. It returns a descriptive error with a byte
// position on malformed input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // comment to EOL
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at byte %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
		case strings.ContainsRune("(),*.=<>!+-/;", rune(c)):
			start := i
			// two-char operators
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at byte %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
