package sql

import (
	"fmt"
	"strconv"
	"strings"

	"dvm/internal/schema"
)

// Parse parses one statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input starting at %s", p.peek())
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for !p.atEOF() {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.acceptSymbol(";") && !p.atEOF() {
			return nil, fmt.Errorf("sql: expected ';' between statements, got %s", p.peek())
		}
	}
	return out, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sql: expected %q, got %s", s, p.peek())
	}
	return nil
}

// ident parses a possibly qualified identifier (a or a.b).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %s", t)
	}
	p.i++
	name := t.text
	if p.acceptSymbol(".") {
		t2 := p.peek()
		if t2.kind != tokIdent {
			return "", fmt.Errorf("sql: expected identifier after '.', got %s", t2)
		}
		p.i++
		name += "." + t2.text
	}
	return name, nil
}

// bareIdent parses an unqualified identifier.
func (p *parser) bareIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %s", t)
	}
	p.i++
	return t.text, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.acceptKeyword("CREATE"):
		return p.create()
	case p.acceptKeyword("DROP"):
		return p.drop()
	case p.peek().kind == tokKeyword && p.peek().text == "SELECT":
		return p.selectStmt()
	case p.acceptKeyword("INSERT"):
		return p.insert()
	case p.acceptKeyword("DELETE"):
		return p.delete()
	case p.acceptKeyword("REFRESH"):
		name, err := p.maintTarget()
		if err != nil {
			return nil, err
		}
		return &MaintStmt{Op: "REFRESH", View: name}, nil
	case p.acceptKeyword("PROPAGATE"):
		name, err := p.maintTarget()
		if err != nil {
			return nil, err
		}
		return &MaintStmt{Op: "PROPAGATE", View: name}, nil
	case p.acceptKeyword("PARTIAL"):
		if err := p.expectKeyword("REFRESH"); err != nil {
			return nil, err
		}
		name, err := p.maintTarget()
		if err != nil {
			return nil, err
		}
		return &MaintStmt{Op: "PARTIAL", View: name}, nil
	case p.acceptKeyword("RECOMPUTE"):
		name, err := p.maintTarget()
		if err != nil {
			return nil, err
		}
		return &MaintStmt{Op: "RECOMPUTE", View: name}, nil
	case p.acceptKeyword("CHECK"):
		if err := p.expectKeyword("INVARIANT"); err != nil {
			return nil, err
		}
		name, err := p.bareIdent()
		if err != nil {
			return nil, err
		}
		return &MaintStmt{Op: "CHECK", View: name}, nil
	case p.acceptKeyword("EXPLAIN"):
		if p.acceptKeyword("VIEW") {
			name, err := p.bareIdent()
			if err != nil {
				return nil, err
			}
			return &ExplainStmt{View: name}, nil
		}
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: q}, nil
	case p.acceptKeyword("SHOW"):
		if p.acceptKeyword("TABLES") {
			return &ShowStmt{}, nil
		}
		if p.acceptKeyword("VIEWS") {
			return &ShowStmt{Views: true}, nil
		}
		return nil, fmt.Errorf("sql: expected TABLES or VIEWS after SHOW, got %s", p.peek())
	}
	return nil, fmt.Errorf("sql: unexpected %s at start of statement", p.peek())
}

// maintTarget parses [VIEW] name.
func (p *parser) maintTarget() (string, error) {
	p.acceptKeyword("VIEW")
	return p.bareIdent()
}

func (p *parser) create() (Stmt, error) {
	switch {
	case p.acceptKeyword("TABLE"):
		return p.createTable()
	case p.acceptKeyword("MATERIALIZED"):
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		return p.createView()
	}
	return nil, fmt.Errorf("sql: expected TABLE or MATERIALIZED VIEW after CREATE, got %s", p.peek())
}

func (p *parser) createTable() (Stmt, error) {
	name, err := p.bareIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []schema.Column
	for {
		cn, err := p.bareIdent()
		if err != nil {
			return nil, err
		}
		tt := p.peek()
		if tt.kind != tokKeyword {
			return nil, fmt.Errorf("sql: expected column type, got %s", tt)
		}
		var ct schema.Type
		switch tt.text {
		case "INT":
			ct = schema.TInt
		case "FLOAT":
			ct = schema.TFloat
		case "STRING":
			ct = schema.TString
		case "BOOL":
			ct = schema.TBool
		default:
			return nil, fmt.Errorf("sql: unknown column type %s", tt)
		}
		p.i++
		cols = append(cols, schema.Col(cn, ct))
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Cols: cols}, nil
}

func (p *parser) createView() (Stmt, error) {
	name, err := p.bareIdent()
	if err != nil {
		return nil, err
	}
	mode := "COMBINED"
	strong := false
	if p.acceptKeyword("REFRESH") {
		switch {
		case p.acceptKeyword("IMMEDIATE"):
			mode = "IMMEDIATE"
		case p.acceptKeyword("DEFERRED"):
			switch {
			case p.acceptKeyword("LOGGED"):
				mode = "LOGGED"
			case p.acceptKeyword("DIFFERENTIAL"):
				mode = "DIFFERENTIAL"
			case p.acceptKeyword("COMBINED"):
				mode = "COMBINED"
			default:
				mode = "COMBINED"
			}
			if p.acceptKeyword("MIN") {
				strong = true
			}
		default:
			return nil, fmt.Errorf("sql: expected IMMEDIATE or DEFERRED after REFRESH, got %s", p.peek())
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	q, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &CreateView{Name: name, Mode: mode, Strong: strong, Query: q}, nil
}

func (p *parser) drop() (Stmt, error) {
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.bareIdent()
		if err != nil {
			return nil, err
		}
		return &DropStmt{Name: name}, nil
	case p.acceptKeyword("VIEW"):
		name, err := p.bareIdent()
		if err != nil {
			return nil, err
		}
		return &DropStmt{View: true, Name: name}, nil
	}
	return nil, fmt.Errorf("sql: expected TABLE or VIEW after DROP, got %s", p.peek())
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	head, err := p.simpleSelect()
	if err != nil {
		return nil, err
	}
	out := &SelectStmt{Head: head, Limit: -1}
loop:
	for {
		var op string
		switch {
		case p.acceptKeyword("UNION"):
			if err := p.expectKeyword("ALL"); err != nil {
				return nil, fmt.Errorf("%w (only UNION ALL is supported; bag semantics)", err)
			}
			op = "UNION ALL"
		case p.acceptKeyword("EXCEPT"):
			op = "EXCEPT"
		case p.acceptKeyword("MONUS"):
			op = "MONUS"
		case p.acceptKeyword("MIN"):
			op = "MIN"
		case p.acceptKeyword("MAX"):
			op = "MAX"
		default:
			break loop
		}
		right, err := p.simpleSelect()
		if err != nil {
			return nil, err
		}
		out.Ops = append(out.Ops, CompoundOp{Op: op, Right: right})
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			out.OrderBy = append(out.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected a number after LIMIT, got %s", t)
		}
		l, err := numberLit(t.text)
		if err != nil {
			return nil, err
		}
		if l.Value.Type() != schema.TInt || l.Value.AsInt() < 0 {
			return nil, fmt.Errorf("sql: LIMIT must be a non-negative integer")
		}
		p.i++
		out.Limit = int(l.Value.AsInt())
	}
	return out, nil
}

func (p *parser) simpleSelect() (*SimpleSelect, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SimpleSelect{}
	if p.acceptKeyword("DISTINCT") {
		s.Distinct = true
	}
	if p.acceptSymbol("*") {
		s.Star = true
	} else {
		for {
			e, err := p.scalarExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.bareIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			s.Items = append(s.Items, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.bareIdent()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name}
		p.acceptKeyword("AS")
		if p.peek().kind == tokIdent {
			ref.Alias = p.next().text
		}
		s.From = append(s.From, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.boolExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) insert() (Stmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.bareIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Lit
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Lit
		for {
			l, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, l)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return &InsertStmt{Table: name, Rows: rows}, nil
}

func (p *parser) delete() (Stmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.bareIdent()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.boolExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

// literal parses a (possibly negated) literal value.
func (p *parser) literal() (Lit, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.i++
		return numberLit(t.text)
	case t.kind == tokSymbol && t.text == "-":
		p.i++
		t2 := p.peek()
		if t2.kind != tokNumber {
			return Lit{}, fmt.Errorf("sql: expected number after '-', got %s", t2)
		}
		p.i++
		l, err := numberLit(t2.text)
		if err != nil {
			return Lit{}, err
		}
		if l.Value.Type() == schema.TInt {
			return Lit{Value: schema.Int(-l.Value.AsInt())}, nil
		}
		return Lit{Value: schema.Float(-l.Value.AsFloat())}, nil
	case t.kind == tokString:
		p.i++
		return Lit{Value: schema.Str(t.text)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.i++
		return Lit{Value: schema.Null()}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.i++
		return Lit{Value: schema.Bool(true)}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.i++
		return Lit{Value: schema.Bool(false)}, nil
	}
	return Lit{}, fmt.Errorf("sql: expected literal, got %s", t)
}

func numberLit(text string) (Lit, error) {
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Lit{}, fmt.Errorf("sql: bad number %q: %v", text, err)
		}
		return Lit{Value: schema.Float(f)}, nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Lit{}, fmt.Errorf("sql: bad number %q: %v", text, err)
	}
	return Lit{Value: schema.Int(n)}, nil
}

// boolExpr parses OR-level boolean expressions.
func (p *parser) boolExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	// Parenthesized boolean sub-expression: lookahead required since '('
	// also begins a scalar group. Try boolean first by checkpointing.
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		save := p.i
		p.i++
		if e, err := p.boolExpr(); err == nil {
			if p.acceptSymbol(")") {
				// Only treat as boolean group if not followed by an
				// arithmetic/comparison continuation that expects a scalar.
				if isBool(e) {
					return e, nil
				}
			}
		}
		p.i = save
	}
	l, err := p.scalarExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.i++
			r, err := p.scalarExpr()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	// A bare TRUE/FALSE literal is a valid boolean expression.
	if lit, ok := l.(Lit); ok && lit.Value.Type() == schema.TBool {
		return l, nil
	}
	return nil, fmt.Errorf("sql: expected comparison operator, got %s", t)
}

// isBool reports whether e is a boolean-shaped expression.
func isBool(e Expr) bool {
	switch x := e.(type) {
	case *BinExpr:
		switch x.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=":
			return true
		}
		return false
	case *NotExpr:
		return true
	case Lit:
		return x.Value.Type() == schema.TBool
	}
	return false
}

// scalarExpr parses additive scalar expressions.
func (p *parser) scalarExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.i++
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.i++
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && (t.text == "MIN" || t.text == "MAX"):
		// MIN(...)/MAX(...) aggregate; the bare keywords also serve as
		// compound operators, so only treat them as calls before '('.
		if p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.i++
			return p.aggregateCall(t.text)
		}
		return nil, fmt.Errorf("sql: unexpected %s", t)
	case t.kind == tokIdent:
		upper := strings.ToUpper(t.text)
		if (upper == "COUNT" || upper == "SUM" || upper == "AVG") &&
			p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.i++
			return p.aggregateCall(upper)
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ColRef{Name: name}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.i++
		e, err := p.scalarExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		l, err := p.literal()
		if err != nil {
			return nil, err
		}
		return l, nil
	}
}

// aggregateCall parses the parenthesized argument of an aggregate whose
// function name has just been consumed.
func (p *parser) aggregateCall(fn string) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if p.acceptSymbol("*") {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &AggExpr{Func: fn, Star: true}, nil
	}
	arg, err := p.scalarExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &AggExpr{Func: fn, Arg: arg}, nil
}
