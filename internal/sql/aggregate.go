package sql

import (
	"fmt"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
)

// Aggregation is supported in top-level queries (analysts aggregating
// over base tables and view contents). Materialized view definitions
// deliberately exclude it, exactly as the paper does ("we omit
// aggregation since it is orthogonal to the problems that we discuss",
// Example 1.1).

// AggExpr is an aggregate call in a SELECT item: COUNT(*)/COUNT(e)/
// SUM(e)/AVG(e)/MIN(e)/MAX(e).
type AggExpr struct {
	Func string // COUNT | SUM | AVG | MIN | MAX
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

func (*AggExpr) expr() {}

// hasAggregates reports whether any select item is an aggregate.
func hasAggregates(s *SimpleSelect) bool {
	for _, item := range s.Items {
		if _, ok := item.Expr.(*AggExpr); ok {
			return true
		}
	}
	return false
}

// containsAggregates reports whether the whole (possibly compound)
// statement uses aggregation anywhere.
func containsAggregates(st *SelectStmt) bool {
	if hasAggregates(st.Head) {
		return true
	}
	for _, op := range st.Ops {
		if hasAggregates(op.Right) {
			return true
		}
	}
	return false
}

// execAggregate evaluates an aggregating SELECT: the FROM/WHERE part is
// compiled to the algebra, evaluated, and the rows are grouped by the
// GROUP BY columns (every non-aggregate item must be one of them).
func (e *Engine) execAggregate(s *SimpleSelect, st *SelectStmt) (*Result, error) {
	if len(st.Ops) > 0 {
		return nil, fmt.Errorf("sql: aggregates cannot be combined with UNION/EXCEPT/MONUS")
	}
	if s.Distinct {
		return nil, fmt.Errorf("sql: DISTINCT with aggregates is not supported")
	}
	if s.Star {
		return nil, fmt.Errorf("sql: SELECT * cannot be aggregated")
	}

	// Source rows: FROM + WHERE, all columns.
	src := &SimpleSelect{Star: true, From: s.From, Where: s.Where}
	expr, err := CompileSelect(&SelectStmt{Head: src}, e.queryResolver())
	if err != nil {
		return nil, err
	}
	rows, err := e.evalUnderViewLocks(expr)
	if err != nil {
		return nil, err
	}
	inSchema := expr.Schema()

	// Classify items: group keys (column refs, must be in GROUP BY) and
	// aggregates.
	type aggSpec struct {
		fn   string
		eval func(schema.Tuple) schema.Value // nil for COUNT(*)
		typ  schema.Type
	}
	type keySpec struct {
		pos int
	}
	groupSet := map[string]bool{}
	for _, g := range s.GroupBy {
		groupSet[g] = true
	}
	var keys []keySpec
	var aggs []aggSpec
	kind := make([]int, len(s.Items)) // index into keys (>=0) or ^index into aggs
	outCols := make([]schema.Column, len(s.Items))
	for i, item := range s.Items {
		switch x := item.Expr.(type) {
		case *ColRef:
			if len(s.GroupBy) == 0 {
				return nil, fmt.Errorf("sql: bare column %q with aggregates needs GROUP BY", x.Name)
			}
			if !groupSet[x.Name] {
				return nil, fmt.Errorf("sql: column %q is not in GROUP BY", x.Name)
			}
			pos, err := inSchema.Lookup(x.Name)
			if err != nil {
				return nil, err
			}
			kind[i] = len(keys)
			keys = append(keys, keySpec{pos: pos})
			name := item.Alias
			if name == "" {
				name = stripQualifier(x.Name)
			}
			outCols[i] = schema.Col(name, inSchema.Column(pos).Type)
		case *AggExpr:
			spec := aggSpec{fn: x.Func}
			if x.Star {
				if x.Func != "COUNT" {
					return nil, fmt.Errorf("sql: %s(*) is not valid", x.Func)
				}
				spec.typ = schema.TInt
			} else {
				sc, err := toScalar(x.Arg)
				if err != nil {
					return nil, err
				}
				fn, typ, err := algebra.BindScalar(sc, inSchema)
				if err != nil {
					return nil, err
				}
				spec.eval = fn
				switch x.Func {
				case "COUNT":
					spec.typ = schema.TInt
				case "AVG":
					spec.typ = schema.TFloat
				case "SUM":
					if typ == schema.TInt {
						spec.typ = schema.TInt
					} else if typ == schema.TFloat {
						spec.typ = schema.TFloat
					} else {
						return nil, fmt.Errorf("sql: SUM over non-numeric type %s", typ)
					}
				case "MIN", "MAX":
					spec.typ = typ
				default:
					return nil, fmt.Errorf("sql: unknown aggregate %q", x.Func)
				}
			}
			kind[i] = ^len(aggs)
			aggs = append(aggs, spec)
			name := item.Alias
			if name == "" {
				name = aggName(x)
			}
			outCols[i] = schema.Col(name, spec.typ)
		default:
			return nil, fmt.Errorf("sql: select item %d must be a column or an aggregate", i+1)
		}
	}
	// GROUP BY columns not projected are still legal; resolve them all
	// for the grouping key.
	groupPos := make([]int, len(s.GroupBy))
	for i, g := range s.GroupBy {
		p, err := inSchema.Lookup(g)
		if err != nil {
			return nil, err
		}
		groupPos[i] = p
	}

	// Accumulate per group.
	type acc struct {
		rep    schema.Tuple // representative source tuple (group keys)
		count  int64        // COUNT(*) incl. duplicates
		counts []int64      // per-agg non-null counts
		sums   []float64
		isum   []int64
		mins   []schema.Value
		maxs   []schema.Value
	}
	groups := map[string]*acc{}
	order := []string{}
	// Ordered iteration makes float SUM/AVG accumulation deterministic:
	// under Each, the addition order (and so the rounding) of a group's
	// float sums would vary run to run with map iteration order.
	rows.EachOrdered(func(t schema.Tuple, n int) {
		k := t.Project(groupPos).Key()
		a, ok := groups[k]
		if !ok {
			a = &acc{
				rep:    t,
				counts: make([]int64, len(aggs)),
				sums:   make([]float64, len(aggs)),
				isum:   make([]int64, len(aggs)),
				mins:   make([]schema.Value, len(aggs)),
				maxs:   make([]schema.Value, len(aggs)),
			}
			groups[k] = a
			order = append(order, k)
		}
		a.count += int64(n)
		for i, sp := range aggs {
			if sp.eval == nil {
				continue // COUNT(*): handled by a.count
			}
			v := sp.eval(t)
			if v.IsNull() {
				continue
			}
			a.counts[i] += int64(n)
			if v.Numeric() {
				a.sums[i] += v.AsFloat() * float64(n)
				if v.Type() == schema.TInt {
					a.isum[i] += v.AsInt() * int64(n)
				}
			}
			if a.mins[i].IsNull() && a.counts[i] == int64(n) {
				a.mins[i], a.maxs[i] = v, v
				continue
			}
			if v.Compare(a.mins[i]) < 0 {
				a.mins[i] = v
			}
			if v.Compare(a.maxs[i]) > 0 {
				a.maxs[i] = v
			}
		}
	})

	out := bag.New()
	outSchema := schema.NewSchema(outCols...)
	emit := func(a *acc) error {
		tu := make(schema.Tuple, len(s.Items))
		for i := range s.Items {
			if kind[i] >= 0 {
				tu[i] = a.rep[keys[kind[i]].pos]
				continue
			}
			j := ^kind[i]
			sp := aggs[j]
			switch sp.fn {
			case "COUNT":
				if sp.eval == nil {
					tu[i] = schema.Int(a.count)
				} else {
					tu[i] = schema.Int(a.counts[j])
				}
			case "SUM":
				if a.counts[j] == 0 {
					tu[i] = schema.Null()
				} else if sp.typ == schema.TInt {
					tu[i] = schema.Int(a.isum[j])
				} else {
					tu[i] = schema.Float(a.sums[j])
				}
			case "AVG":
				if a.counts[j] == 0 {
					tu[i] = schema.Null()
				} else {
					tu[i] = schema.Float(a.sums[j] / float64(a.counts[j]))
				}
			case "MIN":
				tu[i] = a.mins[j]
			case "MAX":
				tu[i] = a.maxs[j]
			}
		}
		out.Add(tu, 1)
		return nil
	}
	for _, k := range order {
		if err := emit(groups[k]); err != nil {
			return nil, err
		}
	}
	// No groups and no GROUP BY: SQL returns one row of empty aggregates.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		empty := &acc{
			rep:    make(schema.Tuple, inSchema.Len()),
			counts: make([]int64, len(aggs)),
			sums:   make([]float64, len(aggs)),
			isum:   make([]int64, len(aggs)),
			mins:   make([]schema.Value, len(aggs)),
			maxs:   make([]schema.Value, len(aggs)),
		}
		if err := emit(empty); err != nil {
			return nil, err
		}
	}
	return &Result{Rows: out, Schema: outSchema}, nil
}

func aggName(x *AggExpr) string {
	if x.Star {
		return "count"
	}
	base := "expr"
	if c, ok := x.Arg.(*ColRef); ok {
		base = stripQualifier(c.Name)
	}
	switch x.Func {
	case "COUNT":
		return "count_" + base
	case "SUM":
		return "sum_" + base
	case "AVG":
		return "avg_" + base
	case "MIN":
		return "min_" + base
	case "MAX":
		return "max_" + base
	}
	return base
}
