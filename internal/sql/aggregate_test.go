package sql

import (
	"strings"
	"testing"

	"dvm/internal/schema"
)

func aggEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	if _, err := e.ExecScript(`
		CREATE TABLE orders (cust STRING, amount FLOAT, qty INT);
		INSERT INTO orders VALUES
			('ann', 10.0, 2),
			('ann', 30.0, 1),
			('bob', 5.0,  4),
			('bob', 5.0,  4),
			('cat', 7.5,  NULL);
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func one(t *testing.T, e *Engine, q string) schema.Tuple {
	t.Helper()
	r, err := e.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	ts := r.Rows.Tuples()
	if len(ts) != 1 {
		t.Fatalf("%s: %d rows, want 1: %v", q, len(ts), r.Rows)
	}
	return ts[0]
}

func TestAggregatesWholeTable(t *testing.T) {
	e := aggEngine(t)
	tu := one(t, e, "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM orders o")
	if tu[0].AsInt() != 5 {
		t.Fatalf("COUNT(*) = %v", tu[0])
	}
	if tu[1].AsFloat() != 57.5 {
		t.Fatalf("SUM = %v", tu[1])
	}
	if tu[2].AsFloat() != 11.5 {
		t.Fatalf("AVG = %v", tu[2])
	}
	if tu[3].AsFloat() != 5.0 || tu[4].AsFloat() != 30.0 {
		t.Fatalf("MIN/MAX = %v / %v", tu[3], tu[4])
	}
	// COUNT(col) skips NULLs; SUM of INT column stays INT.
	tu = one(t, e, "SELECT COUNT(qty), SUM(qty) FROM orders o")
	if tu[0].AsInt() != 4 {
		t.Fatalf("COUNT(qty) = %v, want 4 (one NULL)", tu[0])
	}
	if tu[1].Type() != schema.TInt || tu[1].AsInt() != 11 {
		t.Fatalf("SUM(qty) = %v, want INT 11", tu[1])
	}
}

func TestAggregatesGroupBy(t *testing.T) {
	e := aggEngine(t)
	r, err := e.Exec("SELECT o.cust, COUNT(*) AS n, SUM(o.amount) AS total FROM orders o GROUP BY o.cust")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Len() != 3 {
		t.Fatalf("groups = %v", r.Rows)
	}
	if !r.Rows.Contains(schema.Row("ann", 2, 40.0)) {
		t.Fatalf("ann group wrong: %v", r.Rows)
	}
	// bob has duplicate rows: multiplicities must count.
	if !r.Rows.Contains(schema.Row("bob", 2, 10.0)) {
		t.Fatalf("bob group wrong: %v", r.Rows)
	}
	if r.Schema.Column(1).Name != "n" || r.Schema.Column(2).Name != "total" {
		t.Fatalf("output schema = %s", r.Schema)
	}
}

func TestAggregatesWithWhereAndJoin(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED COMBINED")
	if _, err := e.Exec("REFRESH hv"); err != nil {
		t.Fatal(err)
	}
	// Aggregate over the VIEW — the warehouse use case.
	r, err := e.Exec("SELECT v.custId, SUM(v.quantity) AS q FROM hv v GROUP BY v.custId")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Len() != 2 {
		t.Fatalf("view groups = %v", r.Rows)
	}
	tu := one(t, e, "SELECT COUNT(*) FROM sales s WHERE s.quantity > 0")
	if tu[0].AsInt() != 3 {
		t.Fatalf("filtered count = %v", tu[0])
	}
	// Aggregate over a join.
	tu = one(t, e, `SELECT SUM(s.quantity) FROM customer c, sales s
		WHERE c.custId = s.custId AND c.score = 'High'`)
	if tu[0].AsInt() != 6 {
		t.Fatalf("join sum = %v", tu[0])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := aggEngine(t)
	tu := one(t, e, "SELECT COUNT(*), SUM(amount), MIN(amount) FROM orders o WHERE amount > 1000.0")
	if tu[0].AsInt() != 0 {
		t.Fatalf("COUNT over empty = %v", tu[0])
	}
	if !tu[1].IsNull() || !tu[2].IsNull() {
		t.Fatalf("SUM/MIN over empty should be NULL: %v %v", tu[1], tu[2])
	}
	// Empty input WITH GROUP BY: zero rows.
	r, err := e.Exec("SELECT cust, COUNT(*) FROM orders o WHERE amount > 1000.0 GROUP BY cust")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Len() != 0 {
		t.Fatalf("grouped empty input = %v", r.Rows)
	}
}

func TestAggregateMinMaxKeywords(t *testing.T) {
	e := aggEngine(t)
	tu := one(t, e, "SELECT MIN(qty), MAX(qty) FROM orders o")
	if tu[0].AsInt() != 1 || tu[1].AsInt() != 4 {
		t.Fatalf("MIN/MAX = %v / %v", tu[0], tu[1])
	}
	// The bare MIN compound operator still works.
	r, err := e.Exec("SELECT cust FROM orders o MIN SELECT cust FROM orders o")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Len() != 5 {
		t.Fatalf("compound MIN broken: %v", r.Rows)
	}
}

func TestAggregateErrors(t *testing.T) {
	e := aggEngine(t)
	for _, bad := range []string{
		"SELECT cust, COUNT(*) FROM orders o",                                   // bare column without GROUP BY
		"SELECT amount, COUNT(*) FROM orders o GROUP BY cust",                   // column not in GROUP BY
		"SELECT SUM(cust) FROM orders o",                                        // non-numeric SUM
		"SELECT SUM(*) FROM orders o",                                           // star on non-COUNT
		"SELECT DISTINCT COUNT(*) FROM orders o",                                // DISTINCT + agg
		"SELECT COUNT(*) FROM orders o UNION ALL SELECT COUNT(*) FROM orders o", // compound + agg
		"SELECT COUNT(nothere) FROM orders o",                                   // unknown column
		"SELECT cust, COUNT(*) FROM orders o GROUP BY nothere",                  // unknown group col
	} {
		if _, err := e.Exec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Materialized views must reject aggregation.
	_, err := e.Exec("CREATE MATERIALIZED VIEW agg AS SELECT cust, COUNT(*) FROM orders o GROUP BY cust")
	if err == nil || !strings.Contains(err.Error(), "aggregate") {
		t.Fatalf("aggregating view accepted: %v", err)
	}
	_, err = e.Exec("CREATE MATERIALIZED VIEW agg AS SELECT cust FROM orders o GROUP BY cust")
	if err == nil {
		t.Fatal("GROUP BY view accepted")
	}
}

func TestAggregateSQLPrinting(t *testing.T) {
	st := mustParse(t, "SELECT o.cust, COUNT(*) AS n, SUM(o.amount) FROM orders o WHERE o.qty > 0 GROUP BY o.cust")
	printed := SQL(st)
	for _, want := range []string{"COUNT(*)", "SUM(o.amount)", "GROUP BY o.cust", "AS n"} {
		if !strings.Contains(printed, want) {
			t.Fatalf("printed SQL %q missing %q", printed, want)
		}
	}
	if _, err := Parse(printed); err != nil {
		t.Fatalf("printed aggregate SQL does not re-parse: %v", err)
	}
}
