package sql

import (
	"strings"
	"testing"

	"dvm/internal/schema"
)

func mustParse(t *testing.T, in string) Stmt {
	t.Helper()
	st, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return st
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, 'it''s', 3.5 -- comment\nFROM t;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.5", "FROM", "t", ";"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("lex = %v, want %v", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("a @ b"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE sales (custId INT, name STRING, price FLOAT, ok BOOL)")
	ct, isCT := st.(*CreateTable)
	if !isCT || ct.Name != "sales" || len(ct.Cols) != 4 {
		t.Fatalf("parse = %#v", st)
	}
	if ct.Cols[0] != schema.Col("custId", schema.TInt) ||
		ct.Cols[2] != schema.Col("price", schema.TFloat) {
		t.Fatalf("cols = %v", ct.Cols)
	}
	for _, bad := range []string{
		"CREATE TABLE t", "CREATE TABLE t ()", "CREATE TABLE t (x BLOB)",
		"CREATE TABLE t (x INT", "CREATE SOMETHING t",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseCreateView(t *testing.T) {
	st := mustParse(t, `CREATE MATERIALIZED VIEW hv REFRESH DEFERRED COMBINED AS
		SELECT c.custId, s.itemNo FROM customer c, sales s WHERE c.custId = s.custId`)
	cv := st.(*CreateView)
	if cv.Name != "hv" || cv.Mode != "COMBINED" || cv.Strong {
		t.Fatalf("view = %+v", cv)
	}
	if len(cv.Query.Head.From) != 2 || cv.Query.Head.From[1].Alias != "s" {
		t.Fatalf("from = %+v", cv.Query.Head.From)
	}

	modes := map[string]string{
		"REFRESH IMMEDIATE":             "IMMEDIATE",
		"REFRESH DEFERRED LOGGED":       "LOGGED",
		"REFRESH DEFERRED DIFFERENTIAL": "DIFFERENTIAL",
		"REFRESH DEFERRED":              "COMBINED",
		"":                              "COMBINED",
	}
	for clause, want := range modes {
		src := "CREATE MATERIALIZED VIEW v " + clause + " AS SELECT * FROM t"
		cv := mustParse(t, src).(*CreateView)
		if cv.Mode != want {
			t.Errorf("%q → mode %q, want %q", clause, cv.Mode, want)
		}
	}
	sm := mustParse(t, "CREATE MATERIALIZED VIEW v REFRESH DEFERRED COMBINED MIN AS SELECT * FROM t").(*CreateView)
	if !sm.Strong {
		t.Fatal("MIN suffix did not set Strong")
	}
}

func TestParseSelect(t *testing.T) {
	st := mustParse(t, `SELECT DISTINCT a.x AS col, b.y FROM t1 a, t2 AS b WHERE a.x = b.y AND NOT b.y < 3 OR a.x != 0`)
	ss := st.(*SelectStmt)
	h := ss.Head
	if !h.Distinct || h.Star || len(h.Items) != 2 || h.Items[0].Alias != "col" {
		t.Fatalf("head = %+v", h)
	}
	or, ok := h.Where.(*BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("where = %#v (precedence wrong)", h.Where)
	}
	and := or.L.(*BinExpr)
	if and.Op != "AND" {
		t.Fatalf("AND below OR expected, got %#v", or.L)
	}
	if _, ok := and.R.(*NotExpr); !ok {
		t.Fatalf("NOT expected, got %#v", and.R)
	}
}

func TestParseCompound(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a UNION ALL SELECT * FROM b EXCEPT SELECT * FROM c MONUS SELECT * FROM d")
	ss := st.(*SelectStmt)
	if len(ss.Ops) != 3 || ss.Ops[0].Op != "UNION ALL" || ss.Ops[1].Op != "EXCEPT" || ss.Ops[2].Op != "MONUS" {
		t.Fatalf("ops = %+v", ss.Ops)
	}
	if _, err := Parse("SELECT * FROM a UNION SELECT * FROM b"); err == nil {
		t.Fatal("bare UNION (set semantics) should be rejected")
	}
	st = mustParse(t, "SELECT * FROM a MIN SELECT * FROM b MAX SELECT * FROM c")
	ss = st.(*SelectStmt)
	if len(ss.Ops) != 2 || ss.Ops[0].Op != "MIN" || ss.Ops[1].Op != "MAX" {
		t.Fatalf("ops = %+v", ss.Ops)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (1, 'x', 2.5, TRUE, NULL), (-2, 'y', -0.5, FALSE, 3)")
	ins := st.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 5 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Rows[1][0].Value.AsInt() != -2 || ins.Rows[1][2].Value.AsFloat() != -0.5 {
		t.Fatal("negative literals wrong")
	}
	if !ins.Rows[0][4].Value.IsNull() {
		t.Fatal("NULL literal wrong")
	}
	for _, bad := range []string{
		"INSERT t VALUES (1)", "INSERT INTO t (1)", "INSERT INTO t VALUES 1",
		"INSERT INTO t VALUES (1", "INSERT INTO t VALUES (-)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM t WHERE x > 3 + 1 * 2")
	d := st.(*DeleteStmt)
	if d.Table != "t" || d.Where == nil {
		t.Fatalf("delete = %+v", d)
	}
	cmp := d.Where.(*BinExpr)
	add := cmp.R.(*BinExpr)
	if add.Op != "+" {
		t.Fatalf("rhs = %#v", cmp.R)
	}
	if mul := add.R.(*BinExpr); mul.Op != "*" {
		t.Fatal("arithmetic precedence wrong")
	}
	st = mustParse(t, "DELETE FROM t")
	if st.(*DeleteStmt).Where != nil {
		t.Fatal("missing WHERE should be nil")
	}
}

func TestParseMaintenance(t *testing.T) {
	cases := map[string]MaintStmt{
		"REFRESH VIEW hv":    {Op: "REFRESH", View: "hv"},
		"REFRESH hv":         {Op: "REFRESH", View: "hv"},
		"PROPAGATE VIEW hv":  {Op: "PROPAGATE", View: "hv"},
		"PARTIAL REFRESH hv": {Op: "PARTIAL", View: "hv"},
		"RECOMPUTE hv":       {Op: "RECOMPUTE", View: "hv"},
		"CHECK INVARIANT hv": {Op: "CHECK", View: "hv"},
	}
	for in, want := range cases {
		got := mustParse(t, in).(*MaintStmt)
		if *got != want {
			t.Errorf("%q = %+v, want %+v", in, got, want)
		}
	}
}

func TestParseShowAndDrop(t *testing.T) {
	if !mustParse(t, "SHOW VIEWS").(*ShowStmt).Views {
		t.Fatal("SHOW VIEWS wrong")
	}
	if mustParse(t, "SHOW TABLES").(*ShowStmt).Views {
		t.Fatal("SHOW TABLES wrong")
	}
	d := mustParse(t, "DROP VIEW v").(*DropStmt)
	if !d.View || d.Name != "v" {
		t.Fatal("DROP VIEW wrong")
	}
	d = mustParse(t, "DROP TABLE t").(*DropStmt)
	if d.View {
		t.Fatal("DROP TABLE wrong")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (x INT);
		INSERT INTO t VALUES (1);
		SELECT * FROM t
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseScript("SELECT * FROM t SELECT * FROM u"); err == nil {
		t.Fatal("missing semicolon accepted")
	}
}

func TestParseTrailingInput(t *testing.T) {
	// "FROM t garbage" parses as an alias; a trailing symbol does not.
	if _, err := Parse("SELECT * FROM t )"); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := Parse("SELECT * FROM t WHERE x = 1 2"); err == nil {
		t.Fatal("trailing literal accepted")
	}
}

func TestParseParenthesizedBool(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE (x = 1 OR y = 2) AND z = 3")
	w := st.(*SelectStmt).Head.Where.(*BinExpr)
	if w.Op != "AND" {
		t.Fatalf("top = %+v", w)
	}
	if inner := w.L.(*BinExpr); inner.Op != "OR" {
		t.Fatalf("grouping lost: %+v", w.L)
	}
	// Parenthesized scalar must still work.
	st = mustParse(t, "SELECT * FROM t WHERE (x + 1) * 2 = 4")
	if st.(*SelectStmt).Head.Where == nil {
		t.Fatal("scalar parens broken")
	}
}
