package sql

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/core"
	"dvm/internal/obs"
	"dvm/internal/obs/trace"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// Engine binds the SQL dialect to a database and a maintenance manager.
// One Engine is one session; it is not safe for concurrent use.
type Engine struct {
	db  *storage.Database
	mgr *core.Manager
	// viewDDL remembers each SQL-created view's statement so snapshots
	// (SaveTo) can persist and replay the definitions.
	viewDDL map[string]*CreateView
	// optErr records the first EngineOption failure (see Err).
	optErr error
}

// EngineOption configures a freshly constructed engine. LoadEngine
// applies options before replaying the snapshot, so even the load
// itself is observable (the tracer otherwise could not be enabled
// until after the work it should have captured).
type EngineOption func(*Engine)

// WithTraceSpec applies a trace sampling spec ("off", "all",
// "rate=N", "threshold=DUR"; see trace.Configure) to the engine's
// tracer at construction time. An invalid spec is reported by Err.
func WithTraceSpec(spec string) EngineOption {
	return func(e *Engine) { e.optErr = trace.Configure(e.mgr.Tracer(), spec) }
}

// WithShards partitions every Combined view the engine defines into n
// hash shards (logs, differential tables, and base mirrors; see
// core.WithShards and docs/architecture.md "Sharding"). LoadEngine
// applies options before replaying view DDL, so a snapshot restored
// with WithShards(n) comes back sharded.
func WithShards(n int) EngineOption {
	return func(e *Engine) {
		if err := e.mgr.SetShards(n); err != nil && e.optErr == nil {
			e.optErr = err
		}
	}
}

// WithInterpretedDeltas makes the engine's manager evaluate every
// maintenance expression with the tree-walking interpreter instead of
// compiled delta programs (see core.WithInterpretedDeltas). Intended
// for differential testing and for benchmarking the compiler's win.
func WithInterpretedDeltas() EngineOption {
	return func(e *Engine) {
		if err := e.mgr.SetInterpretedDeltas(true); err != nil && e.optErr == nil {
			e.optErr = err
		}
	}
}

// WithRuntimeBridge starts the engine manager's runtime/metrics
// bridge: Go runtime health (goroutines, heap, GC, scheduler latency)
// polled into the obs registry every interval, alongside the
// maintenance families (see core.Manager.StartRuntimeBridge). Stop it
// with Close.
func WithRuntimeBridge(interval time.Duration) EngineOption {
	return func(e *Engine) { e.mgr.StartRuntimeBridge(interval) }
}

// NewEngine creates an engine over a fresh database.
func NewEngine(opts ...EngineOption) *Engine {
	db := storage.NewDatabase()
	e := NewEngineOver(db, core.NewManager(db))
	e.applyOptions(opts)
	return e
}

func (e *Engine) applyOptions(opts []EngineOption) {
	for _, o := range opts {
		o(e)
	}
}

// Err returns the first error an EngineOption recorded (e.g. a bad
// trace spec), or nil.
func (e *Engine) Err() error { return e.optErr }

// NewEngineOver wraps an existing database and manager.
func NewEngineOver(db *storage.Database, mgr *core.Manager) *Engine {
	return &Engine{db: db, mgr: mgr, viewDDL: make(map[string]*CreateView)}
}

// DB exposes the underlying database.
func (e *Engine) DB() *storage.Database { return e.db }

// Manager exposes the maintenance manager.
func (e *Engine) Manager() *core.Manager { return e.mgr }

// Close stops the engine's background pollers (the runtime bridge,
// when started) by closing the manager. Idempotent; the engine stays
// usable for statements afterwards.
func (e *Engine) Close() error { return e.mgr.Close() }

// Result is the outcome of one statement.
type Result struct {
	// Rows and Schema are set for SELECT results.
	Rows   *bag.Bag
	Schema *schema.Schema
	// Ordered carries the rows in ORDER BY order (after LIMIT) when the
	// query requested one; Rows still holds the same multiset.
	Ordered []schema.Tuple
	// Message describes DDL/DML/maintenance outcomes.
	Message string
	// Count is rows inserted/deleted for DML.
	Count int
}

// String renders a result for interactive display.
func (r *Result) String() string {
	if r.Rows == nil {
		return r.Message
	}
	var sb strings.Builder
	cols := r.Schema.Columns()
	for i, c := range cols {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString(c.Name)
	}
	sb.WriteByte('\n')
	rows := r.Ordered
	if rows == nil {
		rows = r.Rows.Tuples()
	}
	for _, t := range rows {
		for i, v := range t {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(fmt.Sprintf("(%d rows)", len(rows)))
	return sb.String()
}

// Exec parses and executes one statement.
func (e *Engine) Exec(input string) (*Result, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(st)
}

// ExecScript executes a semicolon-separated script, stopping at the
// first error and returning the results so far.
func (e *Engine) ExecScript(input string) ([]*Result, error) {
	stmts, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, st := range stmts {
		r, err := e.ExecStmt(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// stmtKind labels a statement for the sql_stmt_ns metric family.
func stmtKind(st Stmt) string {
	switch st.(type) {
	case *CreateTable:
		return "create_table"
	case *CreateView:
		return "create_view"
	case *DropStmt:
		return "drop"
	case *SelectStmt:
		return "select"
	case *ExplainStmt:
		return "explain"
	case *InsertStmt:
		return "insert"
	case *DeleteStmt:
		return "delete"
	case *MaintStmt:
		return "maint"
	case *ShowStmt:
		return "show"
	}
	return "other"
}

// ExecStmt executes a parsed statement, recording its latency as
// sql_stmt_ns{kind} and opening a root sql.stmt trace span that the
// maintenance work the statement triggers parents under.
func (e *Engine) ExecStmt(st Stmt) (*Result, error) {
	defer obs.StartSpan(e.mgr.Obs().Histogram("sql_stmt_ns", stmtKind(st))).End()
	defer e.mgr.TraceStatement(stmtKind(st))()
	return e.execStmt(st)
}

func (e *Engine) execStmt(st Stmt) (*Result, error) {
	switch s := st.(type) {
	case *CreateTable:
		if _, err := e.db.Create(s.Name, schema.NewSchema(s.Cols...), storage.External); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s created", s.Name)}, nil

	case *CreateView:
		if len(s.Query.OrderBy) > 0 || s.Query.Limit >= 0 {
			return nil, fmt.Errorf("sql: materialized views are bags; ORDER BY/LIMIT belong on queries")
		}
		if containsAggregates(s.Query) || len(s.Query.Head.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: materialized views cannot aggregate (the paper's algorithms cover the bag algebra; aggregation is orthogonal — aggregate when QUERYING the view instead)")
		}
		def, err := CompileSelect(s.Query, e.baseResolver())
		if err != nil {
			return nil, err
		}
		sc, err := scenarioFor(s.Mode)
		if err != nil {
			return nil, err
		}
		var opts []core.Option
		if s.Strong {
			opts = append(opts, core.WithStrongMinimality())
		}
		if _, err := e.mgr.DefineView(s.Name, def, sc, opts...); err != nil {
			return nil, err
		}
		e.viewDDL[s.Name] = s
		return &Result{Message: fmt.Sprintf("materialized view %s created (%s)", s.Name, sc)}, nil

	case *DropStmt:
		if s.View {
			if err := e.mgr.DropView(s.Name); err != nil {
				return nil, err
			}
			delete(e.viewDDL, s.Name)
			return &Result{Message: fmt.Sprintf("view %s dropped", s.Name)}, nil
		}
		tb, err := e.db.Table(s.Name)
		if err != nil {
			return nil, err
		}
		if tb.Kind() != storage.External {
			return nil, fmt.Errorf("sql: cannot drop internal table %q", s.Name)
		}
		for _, v := range e.mgr.Views() {
			for _, b := range v.BaseTables() {
				if b == s.Name {
					return nil, fmt.Errorf("sql: table %q is referenced by view %q", s.Name, v.Name)
				}
			}
		}
		if err := e.db.Drop(s.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s dropped", s.Name)}, nil

	case *SelectStmt:
		var res *Result
		if containsAggregates(s) || len(s.Head.GroupBy) > 0 {
			r, err := e.execAggregate(s.Head, s)
			if err != nil {
				return nil, err
			}
			res = r
		} else {
			expr, err := CompileSelect(s, e.queryResolver())
			if err != nil {
				return nil, err
			}
			rows, err := e.evalUnderViewLocks(expr)
			if err != nil {
				return nil, err
			}
			res = &Result{Rows: rows, Schema: expr.Schema()}
		}
		return applyOrderLimit(res, s)

	case *ExplainStmt:
		return e.execExplain(s)

	case *InsertStmt:
		return e.execInsert(s)

	case *DeleteStmt:
		return e.execDelete(s)

	case *MaintStmt:
		return e.execMaint(s)

	case *ShowStmt:
		return e.execShow(s)
	}
	return nil, fmt.Errorf("sql: unhandled statement %T", st)
}

func scenarioFor(mode string) (core.Scenario, error) {
	switch mode {
	case "IMMEDIATE":
		return core.Immediate, nil
	case "LOGGED":
		return core.BaseLogs, nil
	case "DIFFERENTIAL":
		return core.DiffTables, nil
	case "COMBINED":
		return core.Combined, nil
	}
	return 0, fmt.Errorf("sql: unknown refresh mode %q", mode)
}

// baseResolver resolves only external tables — view definitions must be
// over base tables.
func (e *Engine) baseResolver() Resolver {
	return func(name string) (algebra.Expr, error) {
		tb, err := e.db.Table(name)
		if err != nil {
			if _, verr := e.mgr.View(name); verr == nil {
				return nil, fmt.Errorf("sql: view definitions must reference base tables, not view %q", name)
			}
			return nil, err
		}
		if tb.Kind() != storage.External {
			return nil, fmt.Errorf("sql: cannot reference internal table %q", name)
		}
		return algebra.NewBase(name, tb.Schema()), nil
	}
}

// evalUnderViewLocks evaluates a compiled query; when it reads any
// view's MV table, the evaluation runs under those tables' shared
// locks, so reads block behind refreshes (and the blocked time lands in
// lock_read_wait_ns — the user-observed view downtime).
func (e *Engine) evalUnderViewLocks(expr algebra.Expr) (*bag.Bag, error) {
	var mvs []string
	for _, n := range algebra.BaseNames(expr) {
		for _, v := range e.mgr.Views() {
			if v.MVTable() == n {
				mvs = append(mvs, n)
			}
		}
	}
	if len(mvs) == 0 {
		return algebra.Eval(expr, e.db)
	}
	var rows *bag.Bag
	err := e.mgr.Locks().WithReadSpan(mvs, e.mgr.CurrentSpan(), func(*trace.Span) error {
		var err error
		rows, err = algebra.Eval(expr, e.db)
		return err
	})
	return rows, err
}

// queryResolver resolves external tables and views (a view reads its MV
// table — the possibly-stale materialization, which is the point of
// deferred maintenance).
func (e *Engine) queryResolver() Resolver {
	return func(name string) (algebra.Expr, error) {
		if v, err := e.mgr.View(name); err == nil {
			tb, err := e.db.Table(v.MVTable())
			if err != nil {
				return nil, err
			}
			return algebra.NewBase(v.MVTable(), tb.Schema()), nil
		}
		tb, err := e.db.Table(name)
		if err != nil {
			return nil, err
		}
		if tb.Kind() != storage.External {
			return nil, fmt.Errorf("sql: cannot reference internal table %q", name)
		}
		return algebra.NewBase(name, tb.Schema()), nil
	}
}

func (e *Engine) execInsert(s *InsertStmt) (*Result, error) {
	tb, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if tb.Kind() != storage.External {
		return nil, fmt.Errorf("sql: cannot insert into internal table %q", s.Table)
	}
	rows := bag.New()
	for i, r := range s.Rows {
		if len(r) != tb.Schema().Len() {
			return nil, fmt.Errorf("sql: row %d has %d values, table %s has %d columns",
				i+1, len(r), s.Table, tb.Schema().Len())
		}
		tu := make(schema.Tuple, len(r))
		for j, l := range r {
			tu[j] = l.Value
		}
		if err := tb.Schema().Validate(tu); err != nil {
			return nil, fmt.Errorf("sql: row %d: %w", i+1, err)
		}
		rows.Add(tu, 1)
	}
	if err := e.mgr.Execute(txn.Insert(s.Table, rows)); err != nil {
		return nil, err
	}
	n := len(s.Rows)
	return &Result{Message: fmt.Sprintf("%d rows inserted", n), Count: n}, nil
}

func (e *Engine) execDelete(s *DeleteStmt) (*Result, error) {
	tb, err := e.db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if tb.Kind() != storage.External {
		return nil, fmt.Errorf("sql: cannot delete from internal table %q", s.Table)
	}
	// Compute the delete bag: all copies of every matching tuple.
	var matching *bag.Bag
	if s.Where == nil {
		matching = tb.Data().Clone()
	} else {
		pred, err := toPredicate(s.Where)
		if err != nil {
			return nil, err
		}
		sel, err := algebra.NewSelect(pred, algebra.NewBase(s.Table, tb.Schema()))
		if err != nil {
			return nil, err
		}
		matching, err = algebra.Eval(sel, e.db)
		if err != nil {
			return nil, err
		}
	}
	n := matching.Len()
	if err := e.mgr.Execute(txn.Delete(s.Table, matching)); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("%d rows deleted", n), Count: n}, nil
}

func (e *Engine) execMaint(s *MaintStmt) (*Result, error) {
	var err error
	switch s.Op {
	case "REFRESH":
		err = e.mgr.Refresh(s.View)
	case "PROPAGATE":
		err = e.mgr.Propagate(s.View)
	case "PARTIAL":
		err = e.mgr.PartialRefresh(s.View)
	case "RECOMPUTE":
		err = e.mgr.RefreshRecompute(s.View)
	case "CHECK":
		if err := e.mgr.CheckInvariant(s.View); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("invariant holds for %s", s.View)}, nil
	default:
		err = fmt.Errorf("sql: unknown maintenance op %q", s.Op)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("%s %s done", strings.ToLower(s.Op), s.View)}, nil
}

func (e *Engine) execShow(s *ShowStmt) (*Result, error) {
	var names []string
	if s.Views {
		for _, v := range e.mgr.Views() {
			names = append(names, fmt.Sprintf("%s (%s)", v.Name, v.Scenario))
		}
	} else {
		for _, n := range e.db.Names() {
			tb, _ := e.db.Table(n)
			if tb.Kind() == storage.External {
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return &Result{Message: strings.Join(names, "\n")}, nil
}
