package sql

import "dvm/internal/schema"

// Stmt is any parsed statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name (col TYPE, ...).
type CreateTable struct {
	Name string
	Cols []schema.Column
}

// CreateView is CREATE MATERIALIZED VIEW name REFRESH <mode> AS <select>.
type CreateView struct {
	Name   string
	Mode   string // IMMEDIATE | LOGGED | DIFFERENTIAL | COMBINED
	Strong bool   // ... REFRESH DEFERRED COMBINED MIN (strong minimality)
	Query  *SelectStmt
}

// DropStmt is DROP TABLE name / DROP VIEW name.
type DropStmt struct {
	View bool
	Name string
}

// SelectStmt is a (possibly compound) query: the head select combined
// with further selects by UNION ALL / EXCEPT / MONUS / MIN / MAX,
// left-associatively, with optional ordering and limiting of the final
// result.
type SelectStmt struct {
	Head    *SimpleSelect
	Ops     []CompoundOp
	OrderBy []OrderKey
	Limit   int // -1 when absent
}

// OrderKey is one ORDER BY column.
type OrderKey struct {
	Col  string
	Desc bool
}

// ExplainStmt is EXPLAIN VIEW name / EXPLAIN <select>: it renders the
// compiled bag-algebra (and, for views, the scenario invariant and the
// precompiled incremental queries of Figure 3).
type ExplainStmt struct {
	View  string // set for EXPLAIN VIEW
	Query *SelectStmt
}

// CompoundOp pairs a set operation with its right operand.
type CompoundOp struct {
	Op    string // "UNION ALL" | "EXCEPT" | "MONUS" | "MIN" | "MAX"
	Right *SimpleSelect
}

// SimpleSelect is SELECT [DISTINCT] items FROM tables [WHERE pred]
// [GROUP BY cols].
type SimpleSelect struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr     // nil when absent
	GroupBy  []string // nil when absent
}

// SelectItem is one projection item: a scalar expression with an
// optional output alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is one FROM entry: a table or view name with an optional
// alias.
type TableRef struct {
	Name  string
	Alias string
}

// InsertStmt is INSERT INTO table VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Lit
}

// DeleteStmt is DELETE FROM table [WHERE pred].
type DeleteStmt struct {
	Table string
	Where Expr
}

// MaintStmt covers REFRESH/PROPAGATE/PARTIAL REFRESH/RECOMPUTE/CHECK
// INVARIANT <view>.
type MaintStmt struct {
	Op   string // REFRESH | PROPAGATE | PARTIAL | RECOMPUTE | CHECK
	View string
}

// ShowStmt is SHOW TABLES / SHOW VIEWS.
type ShowStmt struct{ Views bool }

func (*CreateTable) stmt() {}
func (*CreateView) stmt()  {}
func (*DropStmt) stmt()    {}
func (*SelectStmt) stmt()  {}
func (*ExplainStmt) stmt() {}
func (*InsertStmt) stmt()  {}
func (*DeleteStmt) stmt()  {}
func (*MaintStmt) stmt()   {}
func (*ShowStmt) stmt()    {}

// Expr is a scalar or boolean SQL expression.
type Expr interface{ expr() }

// ColRef references a column, optionally qualified ("c.custId").
type ColRef struct{ Name string }

// Lit is a literal value.
type Lit struct{ Value schema.Value }

// BinExpr is a binary operation: comparison, AND/OR, or arithmetic.
type BinExpr struct {
	Op   string // = != < <= > >= AND OR + - * /
	L, R Expr
}

// NotExpr negates a boolean expression.
type NotExpr struct{ E Expr }

func (*ColRef) expr()  {}
func (Lit) expr()      {}
func (*BinExpr) expr() {}
func (*NotExpr) expr() {}
