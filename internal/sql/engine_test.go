package sql

import (
	"strings"
	"testing"

	"dvm/internal/schema"
)

func newRetailEngine(t *testing.T, mode string) *Engine {
	t.Helper()
	e := NewEngine()
	script := `
		CREATE TABLE customer (custId INT, name STRING, address STRING, score STRING);
		CREATE TABLE sales (custId INT, itemNo INT, quantity INT, salesPrice FLOAT);
		INSERT INTO customer VALUES
			(1, 'ann', 'a st', 'High'),
			(2, 'bob', 'b st', 'Low'),
			(3, 'cat', 'c st', 'High');
		INSERT INTO sales VALUES
			(1, 10, 2, 9.99),
			(1, 11, 0, 5.00),
			(2, 10, 1, 9.99),
			(3, 12, 4, 1.50);
	`
	if _, err := e.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	view := `CREATE MATERIALIZED VIEW hv REFRESH ` + mode + ` AS
		SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
		FROM customer c, sales s
		WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'`
	if _, err := e.Exec(view); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineEndToEndCombined(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED COMBINED")

	r, err := e.Exec("SELECT * FROM hv")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows.Len() != 2 {
		t.Fatalf("initial view = %d rows: %v", r.Rows.Len(), r.Rows)
	}

	// New sale for a High customer: view is stale until refresh.
	if _, err := e.Exec("INSERT INTO sales VALUES (3, 99, 7, 2.00)"); err != nil {
		t.Fatal(err)
	}
	r, _ = e.Exec("SELECT * FROM hv")
	if r.Rows.Len() != 2 {
		t.Fatal("deferred view should be stale before refresh")
	}
	if _, err := e.Exec("CHECK INVARIANT hv"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("PROPAGATE hv"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("PARTIAL REFRESH hv"); err != nil {
		t.Fatal(err)
	}
	r, _ = e.Exec("SELECT * FROM hv")
	if r.Rows.Len() != 3 {
		t.Fatalf("after partial refresh: %d rows", r.Rows.Len())
	}
	if _, err := e.Exec("REFRESH hv"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("CHECK INVARIANT hv"); err != nil {
		t.Fatal(err)
	}

	// Delete all of customer 1's sales; refresh must drop them.
	if _, err := e.Exec("DELETE FROM sales WHERE custId = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("REFRESH hv"); err != nil {
		t.Fatal(err)
	}
	r, _ = e.Exec("SELECT * FROM hv WHERE custId = 1")
	if r.Rows.Len() != 0 {
		t.Fatalf("customer 1 rows survived: %v", r.Rows)
	}
}

func TestEngineImmediateMode(t *testing.T) {
	e := newRetailEngine(t, "IMMEDIATE")
	if _, err := e.Exec("INSERT INTO sales VALUES (1, 50, 3, 1.00)"); err != nil {
		t.Fatal(err)
	}
	// Immediate: view is current without any refresh.
	r, _ := e.Exec("SELECT * FROM hv WHERE itemNo = 50")
	if r.Rows.Len() != 1 {
		t.Fatalf("immediate view stale: %v", r.Rows)
	}
}

func TestEngineDuplicateSemantics(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED LOGGED")
	// The same sale twice: bag semantics keeps both.
	if _, err := e.Exec("INSERT INTO sales VALUES (1, 77, 1, 1.00), (1, 77, 1, 1.00)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("REFRESH hv"); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Exec("SELECT * FROM hv WHERE itemNo = 77")
	if r.Rows.Len() != 2 {
		t.Fatalf("duplicates = %d, want 2", r.Rows.Len())
	}
	// DISTINCT collapses them.
	r, _ = e.Exec("SELECT DISTINCT custId, itemNo FROM hv WHERE itemNo = 77")
	if r.Rows.Len() != 1 {
		t.Fatalf("distinct = %d, want 1", r.Rows.Len())
	}
}

func TestEngineCompoundQueries(t *testing.T) {
	e := NewEngine()
	if _, err := e.ExecScript(`
		CREATE TABLE a (x INT);
		CREATE TABLE b (x INT);
		INSERT INTO a VALUES (1), (1), (2);
		INSERT INTO b VALUES (1), (3);
	`); err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{
		"SELECT * FROM a UNION ALL SELECT * FROM b": 5,
		"SELECT * FROM a EXCEPT SELECT * FROM b":    1, // EXCEPT kills all 1s
		"SELECT * FROM a MONUS SELECT * FROM b":     2, // monus leaves one 1
		"SELECT * FROM a MIN SELECT * FROM b":       1,
		"SELECT * FROM a MAX SELECT * FROM b":       4,
	}
	for q, want := range cases {
		r, err := e.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if r.Rows.Len() != want {
			t.Errorf("%s = %d rows, want %d", q, r.Rows.Len(), want)
		}
	}
}

func TestEngineViewOverViewRejected(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED")
	_, err := e.Exec("CREATE MATERIALIZED VIEW vv AS SELECT * FROM hv")
	if err == nil || !strings.Contains(err.Error(), "base tables") {
		t.Fatalf("view over view accepted: %v", err)
	}
}

func TestEngineErrors(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED")
	for _, bad := range []string{
		"SELECT * FROM nothere",
		"INSERT INTO nothere VALUES (1)",
		"INSERT INTO sales VALUES (1)",                      // arity
		"INSERT INTO sales VALUES ('x', 1, 1, 1.0)",         // type
		"INSERT INTO __mv_hv VALUES (1, 'x', 'High', 1, 1)", // internal
		"DELETE FROM __mv_hv",                               // internal
		"SELECT quantity + name FROM sales",                 // type error in projection? (non-colref)
		"SELECT * FROM sales WHERE name = 1 AND",            // parse error
		"REFRESH nothere",
		"PROPAGATE hv2",
		"DROP TABLE sales", // referenced by view
		"DROP TABLE __mv_hv",
		"CREATE TABLE sales (x INT)", // duplicate
	} {
		if _, err := e.Exec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestEngineDropViewThenTable(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED")
	if _, err := e.Exec("DROP VIEW hv"); err != nil {
		t.Fatal(err)
	}
	if e.DB().Has("__mv_hv") || e.DB().Has("__log_ins_sales__hv") {
		t.Fatal("aux tables survived drop")
	}
	if _, err := e.Exec("DROP TABLE sales"); err != nil {
		t.Fatalf("drop after view removal should work: %v", err)
	}
}

func TestEngineShow(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED")
	r, err := e.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "sales") || strings.Contains(r.Message, "__mv_hv") {
		t.Fatalf("SHOW TABLES = %q", r.Message)
	}
	r, _ = e.Exec("SHOW VIEWS")
	if !strings.Contains(r.Message, "hv (C)") {
		t.Fatalf("SHOW VIEWS = %q", r.Message)
	}
}

func TestEngineArithmeticInWhere(t *testing.T) {
	e := NewEngine()
	if _, err := e.ExecScript(`
		CREATE TABLE t (x INT, y FLOAT);
		INSERT INTO t VALUES (1, 2.0), (2, 8.0), (3, 3.0);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec("SELECT x FROM t WHERE y / 2 >= x")
	if err != nil {
		t.Fatal(err)
	}
	// (1,2.0): 1 >= 1 ✓; (2,8.0): 4 >= 2 ✓; (3,3.0): 1.5 >= 3 ✗
	if r.Rows.Len() != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestEngineRecomputeStatement(t *testing.T) {
	e := newRetailEngine(t, "DEFERRED LOGGED")
	if _, err := e.Exec("INSERT INTO sales VALUES (1, 60, 2, 1.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("RECOMPUTE hv"); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Exec("SELECT * FROM hv WHERE itemNo = 60")
	if r.Rows.Len() != 1 {
		t.Fatal("recompute did not update the view")
	}
	if _, err := e.Exec("CHECK INVARIANT hv"); err != nil {
		t.Fatal(err)
	}
}

func TestResultString(t *testing.T) {
	e := NewEngine()
	if _, err := e.ExecScript("CREATE TABLE t (x INT, s STRING); INSERT INTO t VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	r, err := e.Exec("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	if !strings.Contains(out, "t.x | t.s") || !strings.Contains(out, `1 | "a"`) || !strings.Contains(out, "(1 rows)") {
		t.Fatalf("Result.String = %q", out)
	}
	msg := &Result{Message: "done"}
	if msg.String() != "done" {
		t.Fatal("message result string wrong")
	}
}

func TestEngineInsertNullValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.ExecScript("CREATE TABLE t (x INT, s STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("INSERT INTO t VALUES (NULL, NULL)"); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Exec("SELECT * FROM t")
	if r.Rows.Len() != 1 {
		t.Fatal("NULL row lost")
	}
	tu := r.Rows.Tuples()[0]
	if !tu[0].IsNull() {
		t.Fatal("NULL not preserved")
	}
	_ = schema.TNull
}
