package sql

import (
	"fmt"
	"strings"

	"dvm/internal/schema"
)

// SQL renders a parsed statement back to executable SQL. Round-tripping
// is exact up to whitespace: Parse(stmt.SQL()) yields an equivalent AST
// (property-tested), which is what engine snapshots rely on to persist
// view definitions.
func SQL(st Stmt) string {
	switch s := st.(type) {
	case *CreateTable:
		var cols []string
		for _, c := range s.Cols {
			cols = append(cols, c.Name+" "+typeSQL(c.Type))
		}
		return fmt.Sprintf("CREATE TABLE %s (%s)", s.Name, strings.Join(cols, ", "))
	case *CreateView:
		mode := ""
		switch s.Mode {
		case "IMMEDIATE":
			mode = " REFRESH IMMEDIATE"
		case "LOGGED":
			mode = " REFRESH DEFERRED LOGGED"
		case "DIFFERENTIAL":
			mode = " REFRESH DEFERRED DIFFERENTIAL"
		case "COMBINED":
			mode = " REFRESH DEFERRED COMBINED"
		}
		if s.Strong {
			mode += " MIN"
		}
		return fmt.Sprintf("CREATE MATERIALIZED VIEW %s%s AS %s", s.Name, mode, selectSQL(s.Query))
	case *DropStmt:
		if s.View {
			return "DROP VIEW " + s.Name
		}
		return "DROP TABLE " + s.Name
	case *SelectStmt:
		return selectSQL(s)
	case *InsertStmt:
		var rows []string
		for _, r := range s.Rows {
			var vals []string
			for _, l := range r {
				vals = append(vals, litSQL(l))
			}
			rows = append(rows, "("+strings.Join(vals, ", ")+")")
		}
		return fmt.Sprintf("INSERT INTO %s VALUES %s", s.Table, strings.Join(rows, ", "))
	case *DeleteStmt:
		out := "DELETE FROM " + s.Table
		if s.Where != nil {
			out += " WHERE " + exprSQL(s.Where)
		}
		return out
	case *MaintStmt:
		switch s.Op {
		case "PARTIAL":
			return "PARTIAL REFRESH " + s.View
		case "CHECK":
			return "CHECK INVARIANT " + s.View
		default:
			return s.Op + " " + s.View
		}
	case *ShowStmt:
		if s.Views {
			return "SHOW VIEWS"
		}
		return "SHOW TABLES"
	case *ExplainStmt:
		if s.View != "" {
			return "EXPLAIN VIEW " + s.View
		}
		return "EXPLAIN " + selectSQL(s.Query)
	}
	return fmt.Sprintf("-- unprintable statement %T", st)
}

func typeSQL(t schema.Type) string {
	switch t {
	case schema.TInt:
		return "INT"
	case schema.TFloat:
		return "FLOAT"
	case schema.TString:
		return "STRING"
	case schema.TBool:
		return "BOOL"
	}
	return t.String()
}

func selectSQL(st *SelectStmt) string {
	out := simpleSQL(st.Head)
	for _, op := range st.Ops {
		out += " " + op.Op + " " + simpleSQL(op.Right)
	}
	if len(st.OrderBy) > 0 {
		var keys []string
		for _, k := range st.OrderBy {
			if k.Desc {
				keys = append(keys, k.Col+" DESC")
			} else {
				keys = append(keys, k.Col)
			}
		}
		out += " ORDER BY " + strings.Join(keys, ", ")
	}
	if st.Limit >= 0 {
		out += fmt.Sprintf(" LIMIT %d", st.Limit)
	}
	return out
}

func simpleSQL(s *SimpleSelect) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, item := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(exprSQL(item.Expr))
			if item.Alias != "" {
				b.WriteString(" AS " + item.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, ref := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ref.Name)
		if ref.Alias != "" {
			b.WriteString(" " + ref.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + exprSQL(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(s.GroupBy, ", "))
	}
	return b.String()
}

func exprSQL(e Expr) string {
	switch x := e.(type) {
	case *ColRef:
		return x.Name
	case Lit:
		return litSQL(x)
	case *BinExpr:
		return "(" + exprSQL(x.L) + " " + x.Op + " " + exprSQL(x.R) + ")"
	case *NotExpr:
		return "NOT " + exprSQL(x.E)
	case *AggExpr:
		if x.Star {
			return x.Func + "(*)"
		}
		return x.Func + "(" + exprSQL(x.Arg) + ")"
	}
	return fmt.Sprintf("/*?%T*/", e)
}

func litSQL(l Lit) string {
	v := l.Value
	switch v.Type() {
	case schema.TNull:
		return "NULL"
	case schema.TString:
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	case schema.TBool:
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}
