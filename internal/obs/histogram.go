package obs

import (
	"math/bits"
	"sync/atomic"
)

// numBuckets is the fixed bucket count: bucket 0 holds the value 0 and
// bucket k (1 ≤ k ≤ 64) holds values in [2^(k-1), 2^k). 64 buckets
// cover the whole non-negative int64 range, so Observe never needs a
// bounds check beyond clamping negatives.
const numBuckets = 65

// Histogram is a lock-free histogram over non-negative int64 values
// (nanoseconds, tuple counts, bytes) with fixed log2-scale buckets.
// Observe is a single atomic add per field, so it is safe on hot paths
// under concurrent readers (Query) and the race detector. Reads
// (Snapshot) are not atomic across fields — a snapshot taken during
// concurrent observation may be off by in-flight observations, which is
// fine for monitoring.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a value to its bucket index: 0 → 0, v → bits.Len64(v).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLo returns the inclusive lower bound of bucket i.
func BucketLo(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// BucketHi returns the exclusive upper bound of bucket i.
func BucketHi(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return int64(1)<<62 + (int64(1)<<62 - 1) // avoid overflowing int64
	}
	return int64(1) << i
}

// Observe records one value. Negative values are clamped to zero (they
// cannot occur for durations or sizes; clamping keeps the bucket math
// total).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveN records n observations of the same value in one shot (the
// runtime bridge folds runtime/metrics bucket-count deltas in with
// this). Negative values clamp to zero like Observe; n == 0 is a no-op.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(n)
	h.count.Add(int64(n))
	h.sum.Add(v * int64(n))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Merge folds another histogram's observations into h (used when
// aggregating per-label histograms into one family view).
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// from the bucket boundaries: the exclusive upper bound of the bucket
// containing the q-th observation, clamped to the observed maximum. The
// estimate is within one power of two of the true value.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += int64(h.buckets[i].Load())
		if seen > rank {
			hi := BucketHi(i)
			if m := h.max.Load(); m < hi {
				return m
			}
			return hi
		}
	}
	return h.max.Load()
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, Bucket{Lo: BucketLo(i), Hi: BucketHi(i), N: n})
		}
	}
	return out
}

// Bucket is one non-empty histogram bucket: values in [Lo, Hi) were
// observed N times.
type Bucket struct {
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	N  uint64 `json:"n"`
}
