package obs

import (
	"context"
	"runtime/metrics"
	"runtime/pprof"
	"time"
)

// Profiler label keys. Every maintenance execution region installs
// these as runtime/pprof goroutine labels, so CPU (and labeled heap)
// profiles slice by view, shard, and Figure-2/3 phase — `go tool pprof
// -tags` on a dvmbench capture answers "which view/phase is burning
// the cycles" directly. docs/observability.md ("Profiling &
// attribution") documents the vocabulary.
const (
	// LabelView carries the view name a region maintains.
	LabelView = "dvm_view"
	// LabelShard carries the zero-padded shard ("s03") a worker owns.
	LabelShard = "dvm_shard"
	// LabelPhase carries the Figure-2/3 phase name (one of Phases).
	LabelPhase = "dvm_phase"
)

// Maintenance phase names used as the LabelPhase value and as the
// phase half of the "view/phase" label on the phase_* families.
const (
	// PhaseMakesafe is the per-transaction bookkeeping of Execute.
	PhaseMakesafe = "makesafe"
	// PhasePropagate is propagate_C (fold logs into diff tables).
	PhasePropagate = "propagate"
	// PhaseRefresh is refresh_* (bring MV up to date).
	PhaseRefresh = "refresh"
	// PhasePartialRefresh is partial_refresh_C (apply diff tables).
	PhasePartialRefresh = "partial_refresh"
	// PhaseRecompute is the naive recompute-from-scratch baseline.
	PhaseRecompute = "recompute"
)

// Phases returns every maintenance phase name, in Figure-3 order.
// Per-(view,phase) accounting families are created eagerly for each of
// these at view definition, so the families exist (at zero) before any
// maintenance runs.
func Phases() []string {
	return []string{PhaseMakesafe, PhasePropagate, PhaseRefresh, PhasePartialRefresh, PhaseRecompute}
}

// SetPhaseLabels installs the dvm_view/dvm_shard/dvm_phase pprof
// labels on the calling goroutine (empty values are omitted) and
// returns a func that restores the unlabeled state. Maintenance entry
// points own their goroutine and never nest regions, so restoring to
// the background label set is exact; goroutines spawned while the
// labels are installed (shard workers) inherit them.
func SetPhaseLabels(view, shard, phase string) func() {
	kv := make([]string, 0, 6)
	if view != "" {
		kv = append(kv, LabelView, view)
	}
	if shard != "" {
		kv = append(kv, LabelShard, shard)
	}
	if phase != "" {
		kv = append(kv, LabelPhase, phase)
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels(kv...)))
	return func() { pprof.SetGoroutineLabels(context.Background()) }
}

// heapAllocsMetric is the runtime/metrics cumulative allocation
// counter Region deltas for phase_alloc_bytes.
const heapAllocsMetric = "/gc/heap/allocs:bytes"

// HeapAllocBytes returns the process's cumulative heap allocation in
// bytes (monotone; from runtime/metrics). Regions delta it around a
// phase to attribute allocation — exact under the manager's
// single-writer discipline, an upper bound when concurrent readers
// allocate.
func HeapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: heapAllocsMetric}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// PhaseAcct accumulates one (view, phase) pair's resource attribution:
// on-goroutine wall time into phase_cpu_ns and heap allocation deltas
// into phase_alloc_bytes, both labeled "view/phase". A nil PhaseAcct
// is inert.
type PhaseAcct struct {
	// CPU is the phase_cpu_ns counter (on-goroutine wall nanoseconds).
	CPU *Counter
	// Alloc is the phase_alloc_bytes counter (heap bytes allocated).
	Alloc *Counter
}

// NewPhaseAcct returns the accounting pair for (view, phase), creating
// the counters in r under the label "view/phase".
func NewPhaseAcct(r *Registry, view, phase string) *PhaseAcct {
	l := view + "/" + phase
	return &PhaseAcct{
		CPU:   r.Counter("phase_cpu_ns", l),
		Alloc: r.Counter("phase_alloc_bytes", l),
	}
}

// Add folds an externally measured cost into the pair (Execute uses
// this to distribute one region's cost across the affected views).
// Non-positive increments are dropped.
func (a *PhaseAcct) Add(cpuNs, allocBytes int64) {
	if a == nil {
		return
	}
	if cpuNs > 0 {
		a.CPU.Add(cpuNs)
	}
	if allocBytes > 0 {
		a.Alloc.Add(allocBytes)
	}
}

// Region is one open attribution region: pprof labels installed on the
// goroutine plus baseline wall-clock and allocation readings. End
// restores the labels and folds the deltas into the PhaseAcct. The
// zero Region is inert.
type Region struct {
	acct    *PhaseAcct
	start   time.Time
	alloc0  uint64
	restore func()
}

// StartRegion installs the (view, shard, phase) pprof labels and opens
// accounting into acct (nil acct labels without accounting — shard
// workers use that form, since their allocation would double-count
// against the coordinator's region). The idiomatic use is
//
//	defer obs.StartRegion(acct, view, "", obs.PhasePropagate).End()
func StartRegion(acct *PhaseAcct, view, shard, phase string) Region {
	rg := Region{acct: acct, restore: SetPhaseLabels(view, shard, phase)}
	if acct != nil {
		rg.start = time.Now()
		rg.alloc0 = HeapAllocBytes()
	}
	return rg
}

// End restores the goroutine's labels and records the region's wall
// time and allocation delta into its PhaseAcct.
func (rg Region) End() {
	if rg.restore != nil {
		rg.restore()
	}
	if rg.acct == nil {
		return
	}
	var alloc int64
	if a := HeapAllocBytes(); a > rg.alloc0 {
		alloc = int64(a - rg.alloc0)
	}
	rg.acct.Add(int64(time.Since(rg.start)), alloc)
}
