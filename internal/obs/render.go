package obs

import (
	"fmt"
	"strings"
	"time"
)

// fmtValue renders a metric value with its family's unit: *_ns values
// print as durations, everything else as plain integers.
func fmtValue(family string, v int64) string {
	if strings.HasSuffix(family, "_ns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprint(v)
}

// String renders the snapshot as an aligned text table — the format the
// dvmsh \stats command prints. Counters and gauges show their value;
// histograms show count, sum, max, and approximate p50/p90/p99.
// Duration families (*_ns) render human-readable.
func (s Snapshot) String() string {
	rows := make([][]string, 0, len(s.Metrics)+1)
	rows = append(rows, []string{"metric", "kind", "count", "sum/value", "max", "p50", "p90", "p99"})
	for _, m := range s.Metrics {
		name := m.Name
		if m.Label != "" {
			name = fmt.Sprintf("%s{%s}", m.Name, m.Label)
		}
		switch m.Kind {
		case "histogram":
			rows = append(rows, []string{
				name, m.Kind, fmt.Sprint(m.Count),
				fmtValue(m.Name, m.Sum), fmtValue(m.Name, m.Max),
				fmtValue(m.Name, m.P50), fmtValue(m.Name, m.P90), fmtValue(m.Name, m.P99),
			})
		default:
			rows = append(rows, []string{name, m.Kind, "", fmtValue(m.Name, m.Value), "", "", "", ""})
		}
	}

	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	return renderAligned(rows)
}

// renderAligned renders rows as an aligned table with a rule under the
// header row (rows[0]).
func renderAligned(rows [][]string) string {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for r, row := range rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
		if r == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// fmtRate renders a per-second rate with its family's unit: for *_ns
// families the rate is time-per-second (shown as a duration per
// second), everything else as a scalar per second.
func fmtRate(family string, delta int64, dt time.Duration) string {
	if dt <= 0 {
		return "-"
	}
	perSec := float64(delta) / dt.Seconds()
	if strings.HasSuffix(family, "_ns") {
		return time.Duration(perSec).Round(time.Microsecond).String() + "/s"
	}
	return fmt.Sprintf("%.1f/s", perSec)
}

// RateString renders the change between two snapshots of the same
// registry over dt as an aligned table — the dvmsh \stats rate view.
// Counters and histograms show per-second rates of their value/count/
// sum since prev; gauges show the current value and its delta. Metrics
// absent from prev rate from zero; metrics with no change are skipped
// so the hot families stand out.
func RateString(prev, cur Snapshot, dt time.Duration) string {
	if dt <= 0 {
		dt = time.Second
	}
	prevBy := make(map[string]Metric, len(prev.Metrics))
	for _, m := range prev.Metrics {
		prevBy[m.Name+"\x00"+m.Label] = m
	}
	rows := [][]string{{"metric", "kind", "rate", "sum rate", "value"}}
	for _, m := range cur.Metrics {
		p := prevBy[m.Name+"\x00"+m.Label] // zero Metric when absent
		name := m.Name
		if m.Label != "" {
			name = fmt.Sprintf("%s{%s}", m.Name, m.Label)
		}
		switch m.Kind {
		case "histogram":
			if m.Count == p.Count && m.Sum == p.Sum {
				continue
			}
			rows = append(rows, []string{
				name, m.Kind,
				fmt.Sprintf("%.1f/s", float64(m.Count-p.Count)/dt.Seconds()),
				fmtRate(m.Name, m.Sum-p.Sum, dt),
				"",
			})
		case "gauge":
			if m.Value == p.Value {
				continue
			}
			rows = append(rows, []string{
				name, m.Kind, "", "",
				fmt.Sprintf("%s (%+d)", fmtValue(m.Name, m.Value), m.Value-p.Value),
			})
		default:
			if m.Value == p.Value {
				continue
			}
			rows = append(rows, []string{
				name, m.Kind, fmtRate(m.Name, m.Value-p.Value, dt), "", fmt.Sprint(m.Value),
			})
		}
	}
	if len(rows) == 1 {
		return "(no metric changed in the interval)\n"
	}
	return renderAligned(rows)
}
