package obs

import (
	"fmt"
	"strings"
	"time"
)

// fmtValue renders a metric value with its family's unit: *_ns values
// print as durations, everything else as plain integers.
func fmtValue(family string, v int64) string {
	if strings.HasSuffix(family, "_ns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprint(v)
}

// String renders the snapshot as an aligned text table — the format the
// dvmsh \stats command prints. Counters and gauges show their value;
// histograms show count, sum, max, and approximate p50/p90/p99.
// Duration families (*_ns) render human-readable.
func (s Snapshot) String() string {
	rows := make([][]string, 0, len(s.Metrics)+1)
	rows = append(rows, []string{"metric", "kind", "count", "sum/value", "max", "p50", "p90", "p99"})
	for _, m := range s.Metrics {
		name := m.Name
		if m.Label != "" {
			name = fmt.Sprintf("%s{%s}", m.Name, m.Label)
		}
		switch m.Kind {
		case "histogram":
			rows = append(rows, []string{
				name, m.Kind, fmt.Sprint(m.Count),
				fmtValue(m.Name, m.Sum), fmtValue(m.Name, m.Max),
				fmtValue(m.Name, m.P50), fmtValue(m.Name, m.P90), fmtValue(m.Name, m.P99),
			})
		default:
			rows = append(rows, []string{name, m.Kind, "", fmtValue(m.Name, m.Value), "", "", "", ""})
		}
	}

	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for r, row := range rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
		if r == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
