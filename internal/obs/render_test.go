package obs

import (
	"strings"
	"testing"
)

// populate registers metrics in a scrambled order; Snapshot must sort
// them regardless.
func populate(r *Registry) {
	r.Histogram("view_downtime_ns", "hv").Observe(1500)
	r.Counter("log_append_tuples", "zeta").Add(7)
	r.Counter("log_append_tuples", "alpha").Add(3)
	r.Gauge("log_size_tuples", "hv").Set(42)
	r.Histogram("view_downtime_ns", "av").Observe(900)
	r.Counter("snapshot_save_bytes", "").Add(10)
	// Shard-labelled families ("view/sNN"), registered out of shard
	// order: the zero-padded label must make lexicographic order equal
	// shard-index order, double digits included.
	r.Histogram("propagate_shard_ns", "hv/s10").Observe(100)
	r.Histogram("propagate_shard_ns", "hv/s02").Observe(200)
	r.Histogram("propagate_shard_ns", "hv/s00").Observe(300)
	r.Counter("shard_fold_tuples", "hv/s01").Add(5)
	r.Counter("shard_fold_tuples", "hv/s00").Add(4)
}

func TestRenderStableOrdering(t *testing.T) {
	r := NewRegistry()
	populate(r)
	out := r.Snapshot().String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+11 {
		t.Fatalf("got %d lines, want header+rule+11 rows:\n%s", len(lines), out)
	}
	// Rows must be sorted by (family, label) — the registry's map order
	// and the registration order must not leak through. For the
	// shard-labelled families that also means shard-index order.
	wantOrder := []string{
		"log_append_tuples{alpha}",
		"log_append_tuples{zeta}",
		"log_size_tuples{hv}",
		"propagate_shard_ns{hv/s00}",
		"propagate_shard_ns{hv/s02}",
		"propagate_shard_ns{hv/s10}",
		"shard_fold_tuples{hv/s00}",
		"shard_fold_tuples{hv/s01}",
		"snapshot_save_bytes",
		"view_downtime_ns{av}",
		"view_downtime_ns{hv}",
	}
	for i, want := range wantOrder {
		row := lines[2+i]
		if !strings.HasPrefix(row, want) {
			t.Errorf("row %d = %q, want prefix %q", i, row, want)
		}
	}

	// Stability: a registry populated the same way renders byte-for-byte
	// identically, and re-rendering the same registry does too.
	r2 := NewRegistry()
	populate(r2)
	if out2 := r2.Snapshot().String(); out2 != out {
		t.Errorf("renders differ across identically populated registries:\n%s\nvs:\n%s", out, out2)
	}
	if again := r.Snapshot().String(); again != out {
		t.Errorf("re-render differs:\n%s\nvs:\n%s", out, again)
	}
}

func TestSnapshotFilter(t *testing.T) {
	r := NewRegistry()
	populate(r)
	snap := r.Snapshot()

	got := snap.Filter("log_")
	if len(got.Metrics) != 3 {
		t.Fatalf("Filter(log_) kept %d metrics, want 3", len(got.Metrics))
	}
	for _, m := range got.Metrics {
		if !strings.HasPrefix(m.Name, "log_") {
			t.Errorf("Filter(log_) kept %q", m.Name)
		}
	}
	if got := snap.Filter("nope"); len(got.Metrics) != 0 {
		t.Errorf("Filter(nope) kept %d metrics, want 0", len(got.Metrics))
	}
	if got := snap.Filter(""); len(got.Metrics) != len(snap.Metrics) {
		t.Errorf("Filter(\"\") dropped metrics: %d vs %d", len(got.Metrics), len(snap.Metrics))
	}
}
