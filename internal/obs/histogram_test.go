package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBounds(t *testing.T) {
	// Every value must fall inside [BucketLo(i), BucketHi(i)) of its own
	// bucket.
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 8, 100, 1 << 20, 1 << 50} {
		i := bucketOf(v)
		if v < BucketLo(i) || v >= BucketHi(i) {
			t.Errorf("value %d not in bucket %d bounds [%d,%d)", v, i, BucketLo(i), BucketHi(i))
		}
	}
	if BucketHi(0) != 1 || BucketLo(0) != 0 {
		t.Errorf("bucket 0 bounds [%d,%d), want [0,1)", BucketLo(0), BucketHi(0))
	}
}

func TestHistogramObserve(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1, 2, 3, 100, 1000, -7} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 1106 { // -7 clamps to 0
		t.Errorf("Sum = %d, want 1106", h.Sum())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d, want 1000", h.Max())
	}
	if h.Mean() != 1106/6 {
		t.Errorf("Mean = %d, want %d", h.Mean(), 1106/6)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// The estimate is an upper bound within one power of two, clamped
	// to the observed max.
	for _, c := range []struct {
		q        float64
		lo, hi   int64
		describe string
	}{
		{0.5, 500, 1000, "p50"},
		{0.9, 900, 1000, "p90"},
		{1.0, 1000, 1000, "p100 clamps to max"},
		{0.0, 1, 2, "p0 is the smallest bucket's bound"},
	} {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: Quantile(%v) = %d, want in [%d,%d]", c.describe, c.q, got, c.lo, c.hi)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := int64(0); i < 100; i++ {
		a.Observe(i)
	}
	for i := int64(100); i < 200; i++ {
		b.Observe(i)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("merged Count = %d, want 200", a.Count())
	}
	if a.Sum() != 199*200/2 {
		t.Errorf("merged Sum = %d, want %d", a.Sum(), 199*200/2)
	}
	if a.Max() != 199 {
		t.Errorf("merged Max = %d, want 199", a.Max())
	}
	var n uint64
	for _, bk := range a.Buckets() {
		n += bk.N
	}
	if n != 200 {
		t.Errorf("merged bucket total = %d, want 200", n)
	}
}

// TestConcurrentObserve hammers a histogram and counters from many
// goroutines; run under -race this is the data-race proof, and the
// totals prove no increment is lost.
func TestConcurrentObserve(t *testing.T) {
	const goroutines = 8
	const perG = 10000
	h := &Histogram{}
	c := &Counter{}
	g := &Gauge{}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := int64(0); j < perG; j++ {
				h.Observe(seed + j)
				c.Add(1)
				g.Set(j)
			}
		}(int64(i))
	}
	done := make(chan struct{})
	go func() { // concurrent reader: snapshots must not race with writers
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Buckets()
			_ = h.Quantile(0.9)
			_ = c.Load()
			_ = g.Load()
			time.Sleep(time.Microsecond)
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != goroutines*perG {
		t.Errorf("histogram Count = %d, want %d", h.Count(), goroutines*perG)
	}
	if c.Load() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Load(), goroutines*perG)
	}
}

func TestSpan(t *testing.T) {
	h := &Histogram{}
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Errorf("span measured %v, want >= 1ms", d)
	}
	if h.Count() != 1 || h.Max() < int64(time.Millisecond) {
		t.Errorf("histogram after span: count=%d max=%d", h.Count(), h.Max())
	}
	// Nil-histogram spans are inert.
	if StartSpan(nil).End() != 0 {
		t.Error("nil span should measure 0")
	}
}
