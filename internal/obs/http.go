package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an expvar-style HTTP handler that serves a JSON
// snapshot of the registry on every request, so long-running workloads
// (cmd/dvmstatsd, or any embedder) can be scraped. With ?format=text
// it serves the same aligned table the dvmsh \stats command prints.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if _, err := w.Write([]byte(snap.String())); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
