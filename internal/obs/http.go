package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// snapshotFor takes the registry snapshot, restricted by the request's
// ?filter= family-name prefix when present — the same prefix filter
// dvmsh \stats applies via Snapshot.Filter.
func snapshotFor(r *Registry, req *http.Request) Snapshot {
	snap := r.Snapshot()
	if p := req.URL.Query().Get("filter"); p != "" {
		snap = snap.Filter(p)
	}
	return snap
}

// Handler returns an expvar-style HTTP handler that serves a JSON
// snapshot of the registry on every request, so long-running workloads
// (cmd/dvmstatsd, or any embedder) can be scraped. With ?format=text
// it serves the same aligned table the dvmsh \stats command prints;
// ?filter=PREFIX restricts either form to families with that name
// prefix. The Content-Type header is set before any byte is written.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := snapshotFor(r, req)
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if _, err := w.Write([]byte(snap.String())); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromHandler returns the /metrics handler: the registry snapshot in
// Prometheus text exposition format (WriteProm), honouring the same
// ?filter= prefix as Handler. Rendering happens into a buffer first so
// an error never corrupts a half-written scrape.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := snapshotFor(r, req)
		var buf bytes.Buffer
		if err := WriteProm(&buf, snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", promContentType)
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	})
}
