package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a", "x") != r.Counter("a", "x") {
		t.Error("Counter not stable per (name,label)")
	}
	if r.Counter("a", "x") == r.Counter("a", "y") {
		t.Error("labels must be distinct instances")
	}
	if r.Histogram("h", "") != r.Histogram("h", "") {
		t.Error("Histogram not stable per (name,label)")
	}
	if r.Gauge("g", "") != r.Gauge("g", "") {
		t.Error("Gauge not stable per (name,label)")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "").Add(3)
	r.Counter("a_total", "v1").Add(1)
	r.Counter("a_total", "v0").Add(2)
	r.Gauge("m_size", "").Set(7)
	r.Histogram("b_ns", "").Observe(1500)

	s := r.Snapshot()
	if len(s.Metrics) != 5 {
		t.Fatalf("snapshot has %d metrics, want 5", len(s.Metrics))
	}
	for i := 1; i < len(s.Metrics); i++ {
		a, b := s.Metrics[i-1], s.Metrics[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Label > b.Label) {
			t.Errorf("snapshot not sorted: %s{%s} before %s{%s}", a.Name, a.Label, b.Name, b.Label)
		}
	}
	if m, ok := s.Get("a_total", "v0"); !ok || m.Value != 2 {
		t.Errorf("Get(a_total,v0) = %+v, %v", m, ok)
	}
	if m, ok := s.Get("m_size", ""); !ok || m.Value != 7 || m.Kind != "gauge" {
		t.Errorf("Get(m_size) = %+v, %v", m, ok)
	}
	if fam := s.Families(); strings.Join(fam, ",") != "a_total,b_ns,m_size,z_total" {
		t.Errorf("Families = %v", fam)
	}
	if got := len(s.Family("a_total")); got != 2 {
		t.Errorf("Family(a_total) has %d entries, want 2", got)
	}
	if m, _ := s.Get("b_ns", ""); m.Count != 1 || m.Sum != 1500 || m.Max != 1500 {
		t.Errorf("histogram metric = %+v", m)
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Histogram("refresh_ns", "v0").Observe(int64(2_500_000)) // 2.5ms
	r.Counter("propagate_tuples", "v0").Add(42)
	out := r.Snapshot().String()
	if !strings.Contains(out, "refresh_ns{v0}") {
		t.Errorf("rendering lacks labeled histogram:\n%s", out)
	}
	if !strings.Contains(out, "2.5ms") {
		t.Errorf("_ns families should render as durations:\n%s", out)
	}
	if !strings.Contains(out, "propagate_tuples{v0}") || !strings.Contains(out, "42") {
		t.Errorf("rendering lacks counter:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("txn_total", "").Add(5)
	r.Histogram("txn_exec_ns", "").Observe(1000)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := res.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	if ct := res.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if m, ok := snap.Get("txn_total", ""); !ok || m.Value != 5 {
		t.Errorf("scraped txn_total = %+v, %v", m, ok)
	}
	if m, ok := snap.Get("txn_exec_ns", ""); !ok || m.Count != 1 {
		t.Errorf("scraped txn_exec_ns = %+v, %v", m, ok)
	}

	res2, err := srv.Client().Get(srv.URL + "/stats?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := res2.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	buf := new(strings.Builder)
	if _, err := json.NewDecoder(res2.Body).Token(); err == nil {
		t.Error("text format should not be JSON")
	}
	_ = buf
}
