package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a Snapshot.
// Family names gain the PromPrefix; the repo's single "label" string
// is split into proper Prometheus labels by family shape (view, table,
// kind, view+shard, view+phase). Histograms render their log2 buckets
// as cumulative `_bucket{le=...}` series ending in +Inf, plus `_sum`
// and `_count`. `# HELP` text comes from the doc-contract-backed help
// map (help.go); ValidateExposition is the strict parser the golden
// test and dvmstatsd test run over the output.

// PromPrefix namespaces every exposed family name ("view_downtime_ns"
// is exposed as "dvm_view_downtime_ns").
const PromPrefix = "dvm_"

// labelPair is one exposition label (name="value").
type labelPair struct{ name, value string }

// promLabels splits the registry's single label string into the
// family's Prometheus labels: "view/sNN" labels become view+shard,
// phase-accounting labels become view+phase, lock families label the
// table, sql_stmt_ns labels the statement kind, and everything else
// with a non-empty label is view-scoped.
func promLabels(family, label string) []labelPair {
	if label == "" {
		return nil
	}
	switch family {
	case "lock_write_hold_ns", "lock_read_wait_ns":
		return []labelPair{{"table", label}}
	case "sql_stmt_ns":
		return []labelPair{{"kind", label}}
	case "propagate_shard_ns", "shard_fold_tuples", "shard_log_tuples":
		if i := strings.LastIndexByte(label, '/'); i >= 0 {
			return []labelPair{{"view", label[:i]}, {"shard", label[i+1:]}}
		}
	case "phase_cpu_ns", "phase_alloc_bytes":
		if i := strings.LastIndexByte(label, '/'); i >= 0 {
			return []labelPair{{"view", label[:i]}, {"phase", label[i+1:]}}
		}
	}
	return []labelPair{{"view", label}}
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels renders a label set as `{a="x",b="y"}` ("" when empty).
func renderLabels(ls []labelPair) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.name, escapeLabelValue(l.value))
	}
	b.WriteByte('}')
	return b.String()
}

// promType maps the registry kind string to the exposition TYPE.
func promType(kind string) string {
	switch kind {
	case "counter", "gauge", "histogram":
		return kind
	}
	return "untyped"
}

// WriteProm renders the snapshot in Prometheus text exposition format.
// Output is deterministic: the snapshot is already sorted by
// (family, label), and families are emitted as contiguous blocks in
// that order with HELP and TYPE ahead of the samples.
func WriteProm(w io.Writer, s Snapshot) error {
	for i := 0; i < len(s.Metrics); {
		j := i
		for j < len(s.Metrics) && s.Metrics[j].Name == s.Metrics[i].Name {
			j++
		}
		if err := writePromFamily(w, s.Metrics[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// writePromFamily emits one family block (metrics share a Name).
func writePromFamily(w io.Writer, ms []Metric) error {
	fam := ms[0].Name
	name := PromPrefix + fam
	help := HelpFor(fam)
	if help == "" {
		help = "Metric family " + fam + " (no registered help)."
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(ms[0].Kind)); err != nil {
		return err
	}
	for _, m := range ms {
		ls := promLabels(fam, m.Label)
		if m.Kind != KindHistogram.String() {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(ls), m.Value); err != nil {
				return err
			}
			continue
		}
		// Histogram: cumulative buckets over the non-empty log2 buckets
		// (le = the bucket's exclusive upper bound), closed by +Inf.
		var cum uint64
		for _, b := range m.Buckets {
			cum += b.N
			bls := append(append([]labelPair{}, ls...), labelPair{"le", strconv.FormatInt(b.Hi, 10)})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(bls), cum); err != nil {
				return err
			}
		}
		inf := append(append([]labelPair{}, ls...), labelPair{"le", "+Inf"})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(inf), m.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, renderLabels(ls), m.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(ls), m.Count); err != nil {
			return err
		}
	}
	return nil
}

// --- strict exposition validator -----------------------------------

// expoFamily tracks one family's validation state.
type expoFamily struct {
	help    bool
	typ     string
	samples int
	closed  bool
	// hist tracks per-series histogram state keyed by the label set
	// minus le; histSeries keeps insertion order for the final checks.
	hist       map[string]*expoHist
	histSeries []string
}

// expoHist is the bucket-monotonicity state of one histogram series.
type expoHist struct {
	lastLe  float64
	lastCum float64
	seenInf bool
	infCum  float64
	count   float64
	hasCnt  bool
}

// ValidateExposition parses Prometheus text exposition strictly,
// checking metric/label name grammar, HELP/TYPE presence and ordering
// ahead of samples, family-block contiguity, numeric sample values,
// and histogram discipline (strictly increasing le, non-decreasing
// cumulative counts, a closing +Inf bucket that matches _count). It
// returns the first violation found.
func ValidateExposition(data []byte) error {
	fams := map[string]*expoFamily{}
	var open string // family whose block is currently being read
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, fam, rest, err := parseExpoComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			f, err := expoOpen(fams, &open, fam)
			if err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if f.samples > 0 {
				return fmt.Errorf("line %d: # %s %s after samples of the family", lineNo, kind, fam)
			}
			switch kind {
			case "HELP":
				if f.help {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, fam)
				}
				f.help = true
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fam)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = rest
				default:
					return fmt.Errorf("line %d: invalid TYPE %q for %s", lineNo, rest, fam)
				}
			}
			continue
		}
		name, labels, value, err := parseExpoSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam, suffix := sampleFamily(fams, name)
		f, err := expoOpen(fams, &open, fam)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !f.help || f.typ == "" {
			return fmt.Errorf("line %d: sample %s before HELP and TYPE of %s", lineNo, name, fam)
		}
		f.samples++
		if f.typ == "histogram" {
			if err := checkHistSample(f, suffix, labels, value); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		} else if suffix != "" {
			return fmt.Errorf("line %d: suffix %q on non-histogram family %s", lineNo, suffix, fam)
		}
	}
	// Final per-family checks: histograms must have closed every series.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.typ == "histogram" {
			for _, key := range f.histSeries {
				h := f.hist[key]
				if !h.seenInf {
					return fmt.Errorf("family %s series {%s}: no +Inf bucket", n, key)
				}
				if h.hasCnt && h.count != h.infCum {
					return fmt.Errorf("family %s series {%s}: _count %v != +Inf bucket %v", n, key, h.count, h.infCum)
				}
			}
		}
	}
	return nil
}

// expoOpen returns the family record, enforcing block contiguity: once
// a family's block has been left, it may not reopen.
func expoOpen(fams map[string]*expoFamily, open *string, fam string) (*expoFamily, error) {
	if err := checkMetricName(fam); err != nil {
		return nil, err
	}
	f, ok := fams[fam]
	if !ok {
		f = &expoFamily{hist: map[string]*expoHist{}}
		fams[fam] = f
	}
	if *open != fam {
		if prev, ok := fams[*open]; ok {
			prev.closed = true
		}
		if f.closed {
			return nil, fmt.Errorf("family %s reopened after its block ended", fam)
		}
		*open = fam
	}
	return f, nil
}

// parseExpoComment parses a # line, returning ("", ...) for free-form
// comments and (HELP|TYPE, family, rest) for the structured forms.
func parseExpoComment(line string) (kind, fam, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", "", nil
	}
	if len(fields) < 4 {
		return "", "", "", fmt.Errorf("malformed # %s line", fields[1])
	}
	return fields[1], fields[2], fields[3], nil
}

// sampleFamily maps a sample name to its family: for known histogram
// families the _bucket/_sum/_count suffix is stripped.
func sampleFamily(fams map[string]*expoFamily, name string) (fam, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && f.typ == "histogram" {
			return base, s
		}
	}
	return name, ""
}

// checkMetricName enforces the metric name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkLabelName enforces the label name grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}

// parseExpoSample parses `name{labels} value` (labels optional) into
// its parts, validating the grammar of every name.
func parseExpoSample(line string) (name string, labels []labelPair, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		rest = rest[brace+1:]
		labels, rest, err = parseExpoLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
	} else {
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if err := checkMetricName(name); err != nil {
		return "", nil, 0, err
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; the repo never emits one but
	// the validator tolerates it.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("invalid sample value %q", rest)
	}
	return name, labels, v, nil
}

// parseExpoLabels parses the inside of a {...} label set, returning
// the remainder after the closing brace.
func parseExpoLabels(rest string) ([]labelPair, string, error) {
	var out []labelPair
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return out, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label set")
		}
		lname := strings.TrimSpace(rest[:eq])
		if err := checkLabelName(lname); err != nil {
			return nil, "", err
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", lname)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", lname)
			}
			c := rest[0]
			if c == '\\' {
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: invalid escape \\%c", lname, rest[1])
				}
				rest = rest[2:]
				continue
			}
			if c == '"' {
				rest = rest[1:]
				break
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		out = append(out, labelPair{lname, val.String()})
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// checkHistSample folds one histogram-family sample into the series
// state, enforcing bucket discipline as it goes.
func checkHistSample(f *expoFamily, suffix string, labels []labelPair, value float64) error {
	var le string
	var kept []string
	for _, l := range labels {
		if l.name == "le" {
			le = l.value
			continue
		}
		kept = append(kept, l.name+"="+l.value)
	}
	key := strings.Join(kept, ",")
	h, ok := f.hist[key]
	if !ok {
		h = &expoHist{lastLe: math.Inf(-1)}
		f.hist[key] = h
		f.histSeries = append(f.histSeries, key)
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("histogram bucket without le label")
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("invalid le value %q", le)
		}
		if h.seenInf {
			return fmt.Errorf("bucket after +Inf in series {%s}", key)
		}
		if bound <= h.lastLe {
			return fmt.Errorf("le %v not increasing after %v in series {%s}", bound, h.lastLe, key)
		}
		if value < h.lastCum {
			return fmt.Errorf("cumulative count %v decreased from %v in series {%s}", value, h.lastCum, key)
		}
		h.lastLe, h.lastCum = bound, value
		if math.IsInf(bound, 1) {
			h.seenInf = true
			h.infCum = value
		}
	case "_sum":
		// No constraint: sums of negative observations may be negative.
	case "_count":
		h.count = value
		h.hasCnt = true
		if h.seenInf && value != h.infCum {
			return fmt.Errorf("_count %v != +Inf bucket %v in series {%s}", value, h.infCum, key)
		}
	default:
		return fmt.Errorf("bare sample of histogram family (missing _bucket/_sum/_count)")
	}
	return nil
}
