package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind distinguishes the metric types a Registry holds.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind for rendering.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// metricKey identifies one metric instance: a family name plus an
// optional label (the view, table, or statement kind it is about).
type metricKey struct {
	name  string
	label string
}

// Registry is a named collection of metrics. Metrics are created lazily
// and exactly once per (name, label) pair; the returned pointers are
// stable, so hot paths cache them and never touch the registry lock
// again. One Registry belongs to one core.Manager.
type Registry struct {
	mu        sync.Mutex
	counters  map[metricKey]*Counter
	gauges    map[metricKey]*Gauge
	histIndex map[metricKey]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[metricKey]*Counter),
		gauges:    make(map[metricKey]*Gauge),
		histIndex: make(map[metricKey]*Histogram),
	}
}

// Counter returns the counter for (name, label), creating it on first
// use. label may be empty for unlabeled families.
func (r *Registry) Counter(name, label string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, label}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (name, label), creating it on first use.
func (r *Registry) Gauge(name, label string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, label}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for (name, label), creating it on
// first use.
func (r *Registry) Histogram(name, label string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, label}
	h, ok := r.histIndex[k]
	if !ok {
		h = &Histogram{}
		r.histIndex[k] = h
	}
	return h
}

// Metric is one metric's state inside a Snapshot.
type Metric struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Kind  string `json:"kind"`

	// Value is the counter or gauge value.
	Value int64 `json:"value,omitempty"`

	// Histogram summary fields.
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Max     int64    `json:"max,omitempty"`
	P50     int64    `json:"p50,omitempty"`
	P90     int64    `json:"p90,omitempty"`
	P99     int64    `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// sorted by (Name, Label) for deterministic rendering and diffing.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures the current state of every metric. It is safe
// against concurrent observation; per-histogram fields may be off by
// observations in flight.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histIndex))
	for k, c := range r.counters {
		out = append(out, Metric{Name: k.name, Label: k.label, Kind: KindCounter.String(), Value: c.Load()})
	}
	for k, g := range r.gauges {
		out = append(out, Metric{Name: k.name, Label: k.label, Kind: KindGauge.String(), Value: g.Load()})
	}
	for k, h := range r.histIndex {
		out = append(out, Metric{
			Name: k.name, Label: k.label, Kind: KindHistogram.String(),
			Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			Buckets: h.Buckets(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return Snapshot{Metrics: out}
}

// Get returns the metric for (name, label), if present.
func (s Snapshot) Get(name, label string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name && m.Label == label {
			return m, true
		}
	}
	return Metric{}, false
}

// Filter returns the snapshot restricted to metrics whose family name
// starts with prefix (the dvmsh \stats [prefix] filter). Order is
// preserved.
func (s Snapshot) Filter(prefix string) Snapshot {
	var kept []Metric
	for _, m := range s.Metrics {
		if strings.HasPrefix(m.Name, prefix) {
			kept = append(kept, m)
		}
	}
	return Snapshot{Metrics: kept}
}

// Family returns every metric of one family (all labels), in label
// order.
func (s Snapshot) Family(name string) []Metric {
	var out []Metric
	for _, m := range s.Metrics {
		if m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// Families returns the distinct metric family names, sorted. This is
// the set docs/observability.md must document 1:1 (enforced by test).
func (s Snapshot) Families() []string {
	var out []string
	for _, m := range s.Metrics {
		if len(out) == 0 || out[len(out)-1] != m.Name {
			out = append(out, m.Name)
		}
	}
	return out
}
