package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
)

func TestHandlerFilterParam(t *testing.T) {
	r := NewRegistry()
	r.Counter("lock_x", "a").Add(1)
	r.Counter("txn_total", "").Add(2)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/stats?filter=lock_")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := res.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Name != "lock_x" {
		t.Fatalf("?filter=lock_ returned %+v", snap.Metrics)
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("propagate_tuples", "hv").Add(3)
	r.Histogram("txn_exec_ns", "").Observe(1500)

	srv := httptest.NewServer(PromHandler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := res.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	if ct := res.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}

	res2, err := srv.Client().Get(srv.URL + "/metrics?filter=propagate_")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := res2.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	body2, err := io.ReadAll(res2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body2) == string(body) {
		t.Fatal("?filter= had no effect on /metrics")
	}
	if err := ValidateExposition(body2); err != nil {
		t.Fatalf("filtered exposition invalid: %v\n%s", err, body2)
	}
}
