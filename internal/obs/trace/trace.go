// Package trace is the engine's structured-tracing layer: one trace
// tree per maintenance transaction, built from hierarchical spans with
// typed attributes, collected into a fixed-size lock-free ring buffer.
//
// Where internal/obs answers "how much downtime in aggregate" with
// histograms, this package answers the per-transaction question of
// Section 5.3: which single propagate_C or makesafe_C blew the
// downtime budget, and where inside it the time went (lock wait vs
// hold, log scan vs diff install). Every entry point of Figure 3 —
// execute, makesafe, propagate, refresh, partial refresh, recompute —
// opens a span; internal/txn contributes lock wait/hold child spans;
// internal/sql and internal/storage contribute statement and snapshot
// spans. Span names are registered in names.go and documented in
// docs/observability.md; a root test enforces the 1:1 mapping.
//
// The hot-path contract mirrors obs: a disabled tracer costs one
// atomic load per transaction, and every Span method is safe on a nil
// receiver, so call sites never branch on "is tracing on".
package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Attr is one typed key/value attribute on a span: either a string or
// an int64, never both.
type Attr struct {
	// Key names the attribute (e.g. "view", "tuples").
	Key string `json:"key"`
	// S is the string value when the attribute is a string.
	S string `json:"s,omitempty"`
	// I is the integer value when the attribute is an integer.
	I int64 `json:"i,omitempty"`
	// IsInt reports which of S and I is meaningful.
	IsInt bool `json:"is_int,omitempty"`
}

// Str returns a string-valued attribute.
func Str(key, value string) Attr { return Attr{Key: key, S: value} }

// Int returns an integer-valued attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, I: value, IsInt: true} }

// Value renders the attribute's value as a string.
func (a Attr) Value() string {
	if a.IsInt {
		return fmt.Sprintf("%d", a.I)
	}
	return a.S
}

// Span is one timed node in a trace tree. Spans are produced by
// Tracer.StartTrace (roots) and Span.StartChild, and finished by End
// or EndExplicit. All methods are safe on a nil receiver — a nil span
// is how a disabled tracer propagates "off" through call sites — and
// a span's subtree is owned by one goroutine at a time (the engine's
// single-writer discipline), so no locking is needed.
type Span struct {
	// Name is the registered span name (see names.go).
	Name string `json:"name"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// Dur is the span's duration, set by End or EndExplicit.
	Dur time.Duration `json:"dur_ns"`
	// Exclusive marks a span whose whole duration is MV-exclusive
	// time: readers of the view were blocked for all of it. The sum
	// of a trace's exclusive spans is its contribution to the
	// view_downtime_ns histogram.
	Exclusive bool `json:"exclusive,omitempty"`
	// Attrs are the span's typed attributes.
	Attrs []Attr `json:"attrs,omitempty"`
	// Children are the span's child spans in start order.
	Children []*Span `json:"children,omitempty"`

	parent *Span
	tr     *Trace
	ended  bool
}

// StartChild opens a child span under s. Returns nil when s is nil.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now(), Attrs: attrs, parent: s, tr: s.tr}
	s.Children = append(s.Children, c)
	return c
}

// SetAttrs appends attributes to the span (no-op on nil).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// SetExclusive marks the span as MV-exclusive time (no-op on nil).
func (s *Span) SetExclusive() {
	if s == nil {
		return
	}
	s.Exclusive = true
}

// End finishes the span with the elapsed wall-clock duration and
// returns it. Ending a root span completes its trace and offers it to
// the tracer's ring buffer. End is idempotent; on a nil span it
// returns 0.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.Start)
	s.finish(d)
	return d
}

// EndExplicit finishes the span with an externally measured duration.
// Call sites that already time a section for a histogram (e.g. the
// exclusive refresh apply) use this so the span and the histogram
// record the identical value.
func (s *Span) EndExplicit(d time.Duration) {
	if s == nil {
		return
	}
	s.finish(d)
}

func (s *Span) finish(d time.Duration) {
	if s.ended {
		return
	}
	s.ended = true
	s.Dur = d
	if s.parent == nil && s.tr != nil {
		s.tr.finish()
	}
}

// Trace is one completed (or in-flight) span tree with a process-wide
// unique ID.
type Trace struct {
	// ID is the tracer-assigned sequence number; higher is newer.
	ID uint64 `json:"id"`
	// Root is the tree's root span.
	Root *Span `json:"root"`
	// Spans is the total span count, computed when the trace completes.
	Spans int `json:"spans"`
	// ExclusiveNs is the summed duration of exclusive spans in the
	// tree, computed when the trace completes — this trace's view
	// downtime contribution.
	ExclusiveNs int64 `json:"exclusive_ns"`

	tracer *Tracer
}

func (tr *Trace) finish() {
	tr.Spans, tr.ExclusiveNs = tally(tr.Root)
	t := tr.tracer
	if t == nil {
		return
	}
	if Mode(t.mode.Load()) == ModeThreshold && tr.ExclusiveNs < t.thresholdNs.Load() {
		return
	}
	i := t.head.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(tr)
}

func tally(s *Span) (spans int, exclusiveNs int64) {
	if s == nil {
		return 0, 0
	}
	spans = 1
	if s.Exclusive {
		exclusiveNs = int64(s.Dur)
	}
	for _, c := range s.Children {
		n, e := tally(c)
		spans += n
		exclusiveNs += e
	}
	return spans, exclusiveNs
}

// Mode selects which traces a Tracer keeps.
type Mode uint32

// Sampling modes.
const (
	// ModeOff captures nothing; StartTrace returns nil.
	ModeOff Mode = iota
	// ModeAll captures every trace.
	ModeAll
	// ModeRate captures every Nth trace.
	ModeRate
	// ModeThreshold captures every trace but keeps only those whose
	// MV-exclusive total meets the configured threshold.
	ModeThreshold
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAll:
		return "all"
	case ModeRate:
		return "rate"
	case ModeThreshold:
		return "threshold"
	}
	return fmt.Sprintf("Mode(%d)", uint32(m))
}

// Tracer assigns trace IDs, applies the sampling policy, and retains
// the most recent completed traces in a fixed-size lock-free ring.
// The zero-value-like disabled state (ModeOff) costs one atomic load
// per StartTrace; a nil *Tracer is also fully inert.
type Tracer struct {
	mode        atomic.Uint32
	rateN       atomic.Int64
	thresholdNs atomic.Int64
	seq         atomic.Uint64
	rateSeq     atomic.Uint64
	head        atomic.Uint64
	ring        []atomic.Pointer[Trace]
}

// DefaultCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultCapacity = 256

// NewTracer returns a tracer retaining up to capacity completed
// traces, initially in ModeOff.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]atomic.Pointer[Trace], capacity)}
}

// Disable stops capture: subsequent StartTrace calls return nil.
func (t *Tracer) Disable() {
	if t == nil {
		return
	}
	t.mode.Store(uint32(ModeOff))
}

// SampleAll captures every trace.
func (t *Tracer) SampleAll() {
	if t == nil {
		return
	}
	t.mode.Store(uint32(ModeAll))
}

// SampleRate captures one trace in every n (n <= 1 means all).
func (t *Tracer) SampleRate(n int64) {
	if t == nil {
		return
	}
	t.rateN.Store(n)
	t.mode.Store(uint32(ModeRate))
}

// SampleThreshold captures every trace but keeps only those whose
// summed MV-exclusive span time is at least d — "keep any trace whose
// exclusive section exceeds 1ms".
func (t *Tracer) SampleThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.thresholdNs.Store(int64(d))
	t.mode.Store(uint32(ModeThreshold))
}

// Mode returns the current sampling mode.
func (t *Tracer) Mode() Mode {
	if t == nil {
		return ModeOff
	}
	return Mode(t.mode.Load())
}

// StartTrace begins a new trace and returns its root span, or nil
// when the sampling policy skips this transaction. The returned span
// must be finished with End (enforced by the dvmlint span-discipline
// analyzer).
func (t *Tracer) StartTrace(name string, attrs ...Attr) *Span {
	return t.StartTraceAt(name, time.Now(), attrs...)
}

// StartTraceAt is StartTrace with an explicit start time, for call
// sites that can only open the span after the work began (e.g. the
// snapshot load span, whose tracer does not exist until the snapshot
// is parsed).
func (t *Tracer) StartTraceAt(name string, start time.Time, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	switch Mode(t.mode.Load()) {
	case ModeOff:
		return nil
	case ModeRate:
		if n := t.rateN.Load(); n > 1 && t.rateSeq.Add(1)%uint64(n) != 0 {
			return nil
		}
	}
	tr := &Trace{ID: t.seq.Add(1), tracer: t}
	sp := &Span{Name: name, Start: start, Attrs: attrs, tr: tr}
	tr.Root = sp
	return sp
}

// Last returns up to n completed traces, newest first.
func (t *Tracer) Last(n int) []*Trace {
	all := t.captured()
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// Get returns the completed trace with the given ID, if retained.
func (t *Tracer) Get(id uint64) *Trace {
	for _, tr := range t.captured() {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// Len returns the number of traces currently retained.
func (t *Tracer) Len() int { return len(t.captured()) }

// captured snapshots the ring, newest first (by ID, descending).
func (t *Tracer) captured() []*Trace {
	if t == nil {
		return nil
	}
	out := make([]*Trace, 0, len(t.ring))
	for i := range t.ring {
		if tr := t.ring[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	// Insertion sort by ID descending: the ring is small and nearly
	// ordered, and this keeps the package free of non-stdlib deps.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID > out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Configure applies a textual sampling spec to the tracer: "off",
// "all", "rate=N", or "threshold=DUR" (DUR in time.ParseDuration
// syntax, e.g. "1ms"). Used by the cmd flag parsing.
func Configure(t *Tracer, spec string) error {
	switch {
	case spec == "off":
		t.Disable()
	case spec == "all":
		t.SampleAll()
	case len(spec) > 5 && spec[:5] == "rate=":
		var n int64
		if _, err := fmt.Sscanf(spec[5:], "%d", &n); err != nil || n < 1 {
			return fmt.Errorf("trace: bad rate %q", spec)
		}
		t.SampleRate(n)
	case len(spec) > 10 && spec[:10] == "threshold=":
		d, err := time.ParseDuration(spec[10:])
		if err != nil {
			return fmt.Errorf("trace: bad threshold %q: %v", spec, err)
		}
		t.SampleThreshold(d)
	default:
		return fmt.Errorf("trace: unknown sampling spec %q (want off|all|rate=N|threshold=DUR)", spec)
	}
	return nil
}
