package trace

import (
	"fmt"
	"strings"
	"time"
)

// Render returns an indented text rendering of one trace tree, the
// format the dvmsh \trace command prints:
//
//	#12 spans=5 exclusive=412µs
//	  core.refresh view=hv scenario=C [1.1ms]
//	    txn.lock.wait mode=write tables=__mv_hv [2µs]
//	    txn.lock.hold mode=write tables=__mv_hv [612µs]
//	      core.refresh.apply view=hv [412µs] (exclusive)
//
// Attributes render in the order they were attached, so output is
// deterministic for a given trace.
func Render(tr *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d spans=%d exclusive=%s\n", tr.ID, tr.Spans, time.Duration(tr.ExclusiveNs))
	renderSpan(&b, tr.Root, 1)
	return b.String()
}

// RenderAll renders traces in the order given, separated by blank
// lines.
func RenderAll(traces []*Trace) string {
	parts := make([]string, 0, len(traces))
	for _, tr := range traces {
		if tr != nil {
			parts = append(parts, Render(tr))
		}
	}
	return strings.Join(parts, "\n")
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	if s == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value())
	}
	fmt.Fprintf(b, " [%s]", s.Dur)
	if s.Exclusive {
		b.WriteString(" (exclusive)")
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}
