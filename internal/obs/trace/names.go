package trace

// Registered span names. Every span the engine emits uses one of
// these constants; docs/observability.md documents each, and the root
// tracedocs test enforces a 1:1 mapping between this table, the names
// observed at runtime in an E2E retail run, and the docs.
const (
	// SpanSQLStmt is the root span for one SQL statement; maintenance
	// entry points run by the statement nest under it.
	SpanSQLStmt = "sql.stmt"
	// SpanExecute covers core.Manager.Execute: one update transaction
	// including makesafe work and assignment install.
	SpanExecute = "core.execute"
	// SpanMakesafe covers computing one view's safe assignments (the
	// makesafe transactions of Figure 3).
	SpanMakesafe = "core.makesafe"
	// SpanApply covers installing a transaction's assignments and
	// base-table updates.
	SpanApply = "core.apply"
	// SpanRefresh covers core.Manager.Refresh for one view.
	SpanRefresh = "core.refresh"
	// SpanRefreshApply is the MV-exclusive section of a refresh,
	// partial refresh, or recompute: the span's duration is exactly
	// the value recorded into view_downtime_ns.
	SpanRefreshApply = "core.refresh.apply"
	// SpanPropagate covers core.Manager.Propagate (fold log into
	// diff tables; no MV lock).
	SpanPropagate = "core.propagate"
	// SpanPropagateShard covers one shard's DEL/ADD evaluation inside a
	// sharded propagate (child of core.propagate or core.refresh; its
	// explicit duration is the worker's wall time and is the value
	// recorded into propagate_shard_ns).
	SpanPropagateShard = "core.propagate.shard"
	// SpanEvalCompiled covers one compiled delta-program evaluation
	// (child of the maintenance span that ran it; emitted post-hoc with
	// an explicit duration, which for shard workers the coordinator
	// records on their behalf).
	SpanEvalCompiled = "core.eval.compiled"
	// SpanPartialRefresh covers core.Manager.PartialRefresh.
	SpanPartialRefresh = "core.partial_refresh"
	// SpanRecompute covers core.Manager.RefreshRecompute.
	SpanRecompute = "core.recompute"
	// SpanQuery covers core.Manager.Query (reader path; its own root
	// trace, since readers run concurrently with the writer).
	SpanQuery = "core.query"
	// SpanLockWait covers blocking in lock acquisition.
	SpanLockWait = "txn.lock.wait"
	// SpanLockHold covers the critical section run under the locks.
	SpanLockHold = "txn.lock.hold"
	// SpanSnapshotSave covers storage.Database.Save.
	SpanSnapshotSave = "storage.snapshot.save"
	// SpanSnapshotLoad covers sql.LoadEngine replaying a snapshot.
	SpanSnapshotLoad = "storage.snapshot.load"
)

// Names returns every registered span name, sorted.
func Names() []string {
	return []string{
		SpanApply,
		SpanEvalCompiled,
		SpanExecute,
		SpanMakesafe,
		SpanPartialRefresh,
		SpanPropagate,
		SpanPropagateShard,
		SpanQuery,
		SpanRecompute,
		SpanRefresh,
		SpanRefreshApply,
		SpanSQLStmt,
		SpanSnapshotLoad,
		SpanSnapshotSave,
		SpanLockHold,
		SpanLockWait,
	}
}
