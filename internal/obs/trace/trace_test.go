package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartTrace("x")
	if sp != nil {
		t.Fatalf("nil tracer StartTrace = %v, want nil", sp)
	}
	// Every span method must be a no-op on nil.
	c := sp.StartChild("y", Str("k", "v"))
	if c != nil {
		t.Fatalf("nil span StartChild = %v, want nil", c)
	}
	sp.SetAttrs(Int("n", 1))
	sp.SetExclusive()
	sp.EndExplicit(time.Second)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	tr.Disable()
	tr.SampleAll()
	if got := tr.Last(5); got != nil {
		t.Fatalf("nil tracer Last = %v, want nil", got)
	}
	if tr.Mode() != ModeOff {
		t.Fatalf("nil tracer mode = %v, want off", tr.Mode())
	}
}

func TestOffByDefault(t *testing.T) {
	tr := NewTracer(4)
	if sp := tr.StartTrace("x"); sp != nil {
		t.Fatalf("ModeOff StartTrace = %v, want nil", sp)
	}
}

func TestTreeAndTally(t *testing.T) {
	tr := NewTracer(4)
	tr.SampleAll()
	root := tr.StartTrace("root", Str("view", "hv"))
	if root == nil {
		t.Fatal("SampleAll StartTrace returned nil")
	}
	a := root.StartChild("a")
	a1 := a.StartChild("a1")
	a1.SetExclusive()
	a1.EndExplicit(3 * time.Millisecond)
	a.End()
	b := root.StartChild("b")
	b.SetExclusive()
	b.EndExplicit(2 * time.Millisecond)
	root.End()

	got := tr.Last(10)
	if len(got) != 1 {
		t.Fatalf("Last = %d traces, want 1", len(got))
	}
	trc := got[0]
	if trc.Spans != 4 {
		t.Errorf("Spans = %d, want 4", trc.Spans)
	}
	if want := int64(5 * time.Millisecond); trc.ExclusiveNs != want {
		t.Errorf("ExclusiveNs = %d, want %d", trc.ExclusiveNs, want)
	}
	if len(trc.Root.Children) != 2 || trc.Root.Children[0].Name != "a" || trc.Root.Children[1].Name != "b" {
		t.Errorf("children = %+v, want [a b]", trc.Root.Children)
	}
	if trc.Root.Children[0].Children[0].Name != "a1" {
		t.Errorf("grandchild = %q, want a1", trc.Root.Children[0].Children[0].Name)
	}
	if got := tr.Get(trc.ID); got != trc {
		t.Errorf("Get(%d) = %v, want the trace", trc.ID, got)
	}
	if got := tr.Get(trc.ID + 99); got != nil {
		t.Errorf("Get(unknown) = %v, want nil", got)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	tr.SampleAll()
	sp := tr.StartTrace("x")
	sp.EndExplicit(time.Millisecond)
	sp.EndExplicit(time.Hour) // ignored
	sp.End()                  // ignored
	if sp.Dur != time.Millisecond {
		t.Fatalf("Dur = %v, want 1ms", sp.Dur)
	}
	if n := tr.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (double End must not re-push)", n)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(3)
	tr.SampleAll()
	for i := 0; i < 5; i++ {
		tr.StartTrace("x").End()
	}
	got := tr.Last(0)
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	// Newest first: IDs 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if got[i].ID != want {
			t.Errorf("Last[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if got := tr.Last(2); len(got) != 2 || got[0].ID != 5 {
		t.Errorf("Last(2) = %d traces starting %d, want 2 starting 5", len(got), got[0].ID)
	}
}

func TestSampleRate(t *testing.T) {
	tr := NewTracer(16)
	tr.SampleRate(3)
	kept := 0
	for i := 0; i < 9; i++ {
		if sp := tr.StartTrace("x"); sp != nil {
			kept++
			sp.End()
		}
	}
	if kept != 3 {
		t.Fatalf("rate=3 kept %d of 9, want 3", kept)
	}
}

func TestSampleThreshold(t *testing.T) {
	tr := NewTracer(16)
	tr.SampleThreshold(time.Millisecond)
	slow := tr.StartTrace("slow")
	c := slow.StartChild("apply")
	c.SetExclusive()
	c.EndExplicit(2 * time.Millisecond)
	slow.End()
	fast := tr.StartTrace("fast")
	c = fast.StartChild("apply")
	c.SetExclusive()
	c.EndExplicit(10 * time.Microsecond)
	fast.End()
	got := tr.Last(0)
	if len(got) != 1 || got[0].Root.Name != "slow" {
		t.Fatalf("threshold kept %d traces (%v), want just the slow one", len(got), got)
	}
}

func TestConfigure(t *testing.T) {
	tr := NewTracer(4)
	cases := []struct {
		spec string
		mode Mode
	}{
		{"all", ModeAll},
		{"off", ModeOff},
		{"rate=4", ModeRate},
		{"threshold=1ms", ModeThreshold},
	}
	for _, c := range cases {
		if err := Configure(tr, c.spec); err != nil {
			t.Fatalf("Configure(%q): %v", c.spec, err)
		}
		if tr.Mode() != c.mode {
			t.Errorf("Configure(%q) mode = %v, want %v", c.spec, tr.Mode(), c.mode)
		}
	}
	for _, bad := range []string{"", "sometimes", "rate=0", "rate=x", "threshold=", "threshold=fast"} {
		if err := Configure(tr, bad); err == nil {
			t.Errorf("Configure(%q) succeeded, want error", bad)
		}
	}
}

func TestConcurrentRoots(t *testing.T) {
	// Concurrent readers (core.query) each own their root; only the
	// ring push is shared. Run a writer and several readers under the
	// race detector.
	tr := NewTracer(64)
	tr.SampleAll()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartTrace("core.query")
				sp.StartChild("txn.lock.wait").End()
				sp.End()
				tr.Last(5)
			}
		}()
	}
	wg.Wait()
	if n := tr.Len(); n != 64 {
		t.Fatalf("Len = %d, want full ring of 64", n)
	}
}

func TestRenderDeterministic(t *testing.T) {
	tr := NewTracer(4)
	tr.SampleAll()
	root := tr.StartTrace("core.refresh", Str("view", "hv"), Str("scenario", "C"))
	hold := root.StartChild("txn.lock.hold", Str("mode", "write"))
	ap := hold.StartChild("core.refresh.apply", Int("tuples", 40))
	ap.SetExclusive()
	ap.EndExplicit(3 * time.Millisecond)
	hold.EndExplicit(4 * time.Millisecond)
	root.EndExplicit(5 * time.Millisecond)

	got := Render(tr.Last(1)[0])
	want := "#1 spans=3 exclusive=3ms\n" +
		"  core.refresh view=hv scenario=C [5ms]\n" +
		"    txn.lock.hold mode=write [4ms]\n" +
		"      core.refresh.apply tuples=40 [3ms] (exclusive)\n"
	if got != want {
		t.Errorf("Render:\n%s\nwant:\n%s", got, want)
	}
	if got2 := Render(tr.Last(1)[0]); got2 != got {
		t.Errorf("Render not deterministic across calls")
	}
	all := RenderAll(tr.Last(0))
	if !strings.Contains(all, "core.refresh.apply") {
		t.Errorf("RenderAll missing span: %s", all)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	tr.SampleAll()
	for i := 0; i < 3; i++ {
		root := tr.StartTrace("core.execute", Int("tables", 2))
		ms := root.StartChild("core.makesafe", Str("view", "hv"))
		ms.EndExplicit(200 * time.Microsecond)
		ap := root.StartChild("core.apply")
		ap.SetExclusive()
		ap.EndExplicit(100 * time.Microsecond)
		root.End()
	}
	data, err := ChromeJSON(tr.Last(0))
	if err != nil {
		t.Fatalf("ChromeJSON: %v", err)
	}
	events, err := ParseChrome(data)
	if err != nil {
		t.Fatalf("ParseChrome: %v", err)
	}
	// 3 traces x 3 spans x (B+E) = 18 events.
	if len(events) != 18 {
		t.Fatalf("got %d events, want 18", len(events))
	}
	lanes := map[int64]bool{}
	for _, ev := range events {
		lanes[ev.Tid] = true
		if ev.Pid != 1 || ev.Cat != "dvm" {
			t.Errorf("event %+v: want pid=1 cat=dvm", ev)
		}
	}
	if len(lanes) != 3 {
		t.Errorf("got %d lanes, want 3 (one per trace)", len(lanes))
	}
}

func TestParseChromeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", `{`},
		{"unmatched B", `{"traceEvents":[{"name":"a","cat":"dvm","ph":"B","ts":0,"pid":1,"tid":1}]}`},
		{"E without B", `{"traceEvents":[{"name":"a","cat":"dvm","ph":"E","ts":0,"pid":1,"tid":1}]}`},
		{"mismatched E", `{"traceEvents":[
			{"name":"a","cat":"dvm","ph":"B","ts":0,"pid":1,"tid":1},
			{"name":"b","cat":"dvm","ph":"E","ts":1,"pid":1,"tid":1}]}`},
		{"ts regression", `{"traceEvents":[
			{"name":"a","cat":"dvm","ph":"B","ts":5,"pid":1,"tid":1},
			{"name":"a","cat":"dvm","ph":"E","ts":1,"pid":1,"tid":1}]}`},
		{"bad phase", `{"traceEvents":[{"name":"a","cat":"dvm","ph":"X","ts":0,"pid":1,"tid":1}]}`},
		{"unnamed", `{"traceEvents":[{"name":"","cat":"dvm","ph":"B","ts":0,"pid":1,"tid":1}]}`},
	}
	for _, c := range cases {
		if _, err := ParseChrome([]byte(c.data)); err == nil {
			t.Errorf("%s: ParseChrome succeeded, want error", c.name)
		}
	}
}

func TestNamesSortedUnique(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("Names() empty")
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("Names() not sorted/unique at %d: %q then %q", i, names[i-1], names[i])
		}
	}
}
