package trace

import (
	"encoding/json"
	"fmt"
)

// ChromeEvent is one entry of a Chrome trace-event file's
// traceEvents array (the subset this engine emits: duration events,
// phases "B" and "E").
type ChromeEvent struct {
	// Name is the span name.
	Name string `json:"name"`
	// Cat is the event category ("dvm").
	Cat string `json:"cat"`
	// Ph is the phase: "B" (begin) or "E" (end).
	Ph string `json:"ph"`
	// Ts is the timestamp in microseconds (fractional for sub-µs).
	Ts float64 `json:"ts"`
	// Pid is the process ID (always 1).
	Pid int64 `json:"pid"`
	// Tid is the thread lane; each trace gets its own (its trace ID),
	// so trees render as separate rows in Perfetto.
	Tid int64 `json:"tid"`
	// Args carries the span attributes on "B" events.
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object of a trace-event file.
type chromeFile struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// ChromeJSON renders completed traces as a Chrome trace-event JSON
// file, loadable in Perfetto or chrome://tracing. Each trace becomes
// a lane (tid = trace ID); timestamps are microseconds relative to
// the earliest root start and are clamped non-decreasing per lane so
// the file is always valid even when child durations were measured
// by a different clock than the wall.
func ChromeJSON(traces []*Trace) ([]byte, error) {
	// Oldest first so lanes appear in causal order.
	ordered := make([]*Trace, 0, len(traces))
	for i := len(traces) - 1; i >= 0; i-- {
		if traces[i] != nil && traces[i].Root != nil {
			ordered = append(ordered, traces[i])
		}
	}
	var events []ChromeEvent
	var base int64
	for i, tr := range ordered {
		if i == 0 || tr.Root.Start.UnixNano() < base {
			base = tr.Root.Start.UnixNano()
		}
	}
	for _, tr := range ordered {
		cur := float64(0)
		events = emitChrome(events, tr.Root, int64(tr.ID), base, &cur)
	}
	return json.MarshalIndent(chromeFile{TraceEvents: events}, "", " ")
}

// emitChrome appends B/E events for s and its subtree, advancing cur
// (the lane's monotonic clock in µs).
func emitChrome(events []ChromeEvent, s *Span, tid, base int64, cur *float64) []ChromeEvent {
	ts := float64(s.Start.UnixNano()-base) / 1e3
	if ts < *cur {
		ts = *cur
	}
	*cur = ts
	args := make(map[string]any, len(s.Attrs)+1)
	for _, a := range s.Attrs {
		if a.IsInt {
			args[a.Key] = a.I
		} else {
			args[a.Key] = a.S
		}
	}
	if s.Exclusive {
		args["exclusive"] = true
	}
	events = append(events, ChromeEvent{Name: s.Name, Cat: "dvm", Ph: "B", Ts: ts, Pid: 1, Tid: tid, Args: args})
	for _, c := range s.Children {
		events = emitChrome(events, c, tid, base, cur)
	}
	end := ts + float64(s.Dur)/1e3
	if end < *cur {
		end = *cur
	}
	*cur = end
	return append(events, ChromeEvent{Name: s.Name, Cat: "dvm", Ph: "E", Ts: end, Pid: 1, Tid: tid})
}

// ParseChrome parses and validates a Chrome trace-event JSON file
// produced by ChromeJSON: the traceEvents array must be well-formed,
// timestamps must be non-decreasing within each lane, and every "B"
// must be closed by a matching "E" (properly nested per lane). It
// returns the parsed events. This is the round-trip check the E2E
// trace test runs on dvmbench -trace output.
func ParseChrome(data []byte) ([]ChromeEvent, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trace: invalid chrome JSON: %v", err)
	}
	lastTs := make(map[int64]float64)
	stacks := make(map[int64][]string)
	for i, ev := range f.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("trace: event %d has no name", i)
		}
		if prev, ok := lastTs[ev.Tid]; ok && ev.Ts < prev {
			return nil, fmt.Errorf("trace: event %d (%s) ts %v precedes %v on tid %d", i, ev.Name, ev.Ts, prev, ev.Tid)
		}
		lastTs[ev.Tid] = ev.Ts
		switch ev.Ph {
		case "B":
			stacks[ev.Tid] = append(stacks[ev.Tid], ev.Name)
		case "E":
			st := stacks[ev.Tid]
			if len(st) == 0 {
				return nil, fmt.Errorf("trace: event %d: E %q with no open B on tid %d", i, ev.Name, ev.Tid)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return nil, fmt.Errorf("trace: event %d: E %q does not match open B %q on tid %d", i, ev.Name, top, ev.Tid)
			}
			stacks[ev.Tid] = st[:len(st)-1]
		default:
			return nil, fmt.Errorf("trace: event %d has unsupported phase %q", i, ev.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			return nil, fmt.Errorf("trace: tid %d has %d unclosed B events (first %q)", tid, len(st), st[0])
		}
	}
	return f.TraceEvents, nil
}
