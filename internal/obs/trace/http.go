package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Summary is the list-view shape the HTTP handler serves for one
// completed trace.
type Summary struct {
	// ID is the trace ID (fetch the full tree with ?id=).
	ID uint64 `json:"id"`
	// Name is the root span's name.
	Name string `json:"name"`
	// DurNs is the root span's duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Spans is the tree's span count.
	Spans int `json:"spans"`
	// ExclusiveNs is the tree's summed MV-exclusive time.
	ExclusiveNs int64 `json:"exclusive_ns"`
}

// Handler serves the tracer's ring over HTTP (the cmd/dvmstatsd
// /trace endpoint):
//
//	GET /trace            JSON list of trace summaries, newest first
//	GET /trace?n=10       at most 10 summaries
//	GET /trace?id=42      the full span tree of trace 42 (JSON)
//	GET /trace?id=42&format=text  the dvmsh \trace rendering
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if idStr := q.Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			tr := t.Get(id)
			if tr == nil {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			if q.Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				if _, err := w.Write([]byte(Render(tr))); err != nil {
					return // client went away; nothing useful left to send
				}
				return
			}
			writeJSON(w, tr)
			return
		}
		n := 0
		if ns := q.Get("n"); ns != "" {
			v, err := strconv.Atoi(ns)
			if err != nil || v < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		traces := t.Last(n)
		out := make([]Summary, 0, len(traces))
		for _, tr := range traces {
			out = append(out, Summary{
				ID: tr.ID, Name: tr.Root.Name, DurNs: int64(tr.Root.Dur),
				Spans: tr.Spans, ExclusiveNs: tr.ExclusiveNs,
			})
		}
		writeJSON(w, out)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
