package runtimebridge

import (
	"runtime"
	"testing"
	"time"

	"dvm/internal/obs"
)

func TestPollOncePopulatesFamilies(t *testing.T) {
	r := obs.NewRegistry()
	b := New(r)
	b.PollOnce()
	snap := r.Snapshot()
	for _, fi := range Families() {
		m, ok := snap.Get(fi.Name, "")
		if !ok {
			t.Fatalf("family %s not registered", fi.Name)
		}
		if m.Kind != fi.Kind {
			t.Fatalf("family %s: kind %s, want %s", fi.Name, m.Kind, fi.Kind)
		}
	}
	if m, _ := snap.Get(FamGoroutines, ""); m.Value < 1 {
		t.Fatalf("go_goroutines = %d, want >= 1", m.Value)
	}
	if m, _ := snap.Get(FamHeapLive, ""); m.Value <= 0 {
		t.Fatalf("go_heap_live_bytes = %d, want > 0", m.Value)
	}
}

func TestDeltaFolding(t *testing.T) {
	r := obs.NewRegistry()
	b := New(r)
	b.PollOnce() // baseline
	// Force at least one GC cycle between polls.
	runtime.GC()
	runtime.GC()
	b.PollOnce()
	snap := r.Snapshot()
	if m, _ := snap.Get(FamGCCycles, ""); m.Value < 1 {
		t.Fatalf("go_gc_cycles = %d after two forced GCs, want >= 1", m.Value)
	}
	if m, _ := snap.Get(FamGCPause, ""); m.Count < 1 {
		t.Fatalf("go_gc_pause_ns count = %d after forced GCs, want >= 1", m.Count)
	}
}

func TestStartCloseDoesNotLeak(t *testing.T) {
	r := obs.NewRegistry()
	before := runtime.NumGoroutine()
	b := New(r)
	b.Start(time.Millisecond)
	// The poller must be running now.
	if n := runtime.NumGoroutine(); n <= before-1 {
		t.Fatalf("goroutines after Start = %d, want > %d", n, before-1)
	}
	time.Sleep(5 * time.Millisecond) // let a few ticks land
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Close waits for the goroutine, so the count must be back at (or
	// below) the baseline; poll briefly to absorb unrelated runtime
	// goroutines settling.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak: %d after Close, %d before Start", n, before)
	}
}

func TestCloseBeforeStart(t *testing.T) {
	b := New(obs.NewRegistry())
	if err := b.Close(); err != nil {
		t.Fatalf("Close on never-started bridge: %v", err)
	}
}
