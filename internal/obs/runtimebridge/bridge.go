// Package runtimebridge polls the Go runtime's runtime/metrics
// (goroutine count, live heap, GC cycles and pause latencies,
// scheduler latencies) into an obs.Registry on a ticker, so the
// engine's own maintenance families and the runtime health that
// explains them land in one /metrics scrape. A Bridge is started and
// stopped with its core.Manager (Manager.StartRuntimeBridge /
// Manager.Close); PollOnce exists so tests and the synchronous
// first-poll stay deterministic.
package runtimebridge

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"dvm/internal/obs"
)

// Family names the bridge registers. Kinds: go_goroutines and
// go_heap_live_bytes are gauges, go_gc_cycles is a counter,
// go_gc_pause_ns and go_sched_latency_ns are histograms.
const (
	// FamGoroutines is the live-goroutine-count gauge.
	FamGoroutines = "go_goroutines"
	// FamHeapLive is the live-heap-bytes gauge.
	FamHeapLive = "go_heap_live_bytes"
	// FamGCCycles is the completed-GC-cycles counter.
	FamGCCycles = "go_gc_cycles"
	// FamGCPause is the GC stop-the-world pause histogram.
	FamGCPause = "go_gc_pause_ns"
	// FamSchedLatency is the goroutine scheduling-latency histogram.
	FamSchedLatency = "go_sched_latency_ns"
)

// runtime/metrics sample names the bridge reads.
const (
	srcGoroutines = "/sched/goroutines:goroutines"
	srcHeapLive   = "/memory/classes/heap/objects:bytes"
	srcGCCycles   = "/gc/cycles/total:gc-cycles"
	srcGCPause    = "/sched/pauses/total/gc:seconds"
	srcSchedLat   = "/sched/latencies:seconds"
)

// FamilyInfo describes one family the bridge exports (for the
// `dvmstatsd -bridge-families` drift check).
type FamilyInfo struct {
	// Name is the obs family name.
	Name string
	// Kind is the obs metric kind ("gauge", "counter", "histogram").
	Kind string
}

// Families lists every family the bridge registers, in registration
// order. scripts/check.sh echoes the gauge count from this list so a
// drifting bridge is visible in the gate output.
func Families() []FamilyInfo {
	return []FamilyInfo{
		{FamGoroutines, "gauge"},
		{FamHeapLive, "gauge"},
		{FamGCCycles, "counter"},
		{FamGCPause, "histogram"},
		{FamSchedLatency, "histogram"},
	}
}

// Bridge owns the polling goroutine and the delta state between
// polls. Create with New, start the ticker with Start, stop it with
// Close (idempotent). All instruments are registered at New, so the
// families exist (at zero) before the first poll.
type Bridge struct {
	goroutines *obs.Gauge
	heapLive   *obs.Gauge
	gcCycles   *obs.Counter
	gcPause    *obs.Histogram
	schedLat   *obs.Histogram

	// samples is the reusable runtime/metrics read buffer; prev* hold
	// the last poll's cumulative readings for delta folding. All are
	// touched only under mu (PollOnce may race with Close).
	mu          sync.Mutex
	samples     []metrics.Sample
	prevCycles  uint64
	prevPause   *metrics.Float64Histogram
	prevSched   *metrics.Float64Histogram
	havePrev    bool
	stop        chan struct{}
	done        chan struct{}
	startedOnce bool
	closedOnce  bool
}

// New registers the bridge's families in r and returns an unstarted
// Bridge.
func New(r *obs.Registry) *Bridge {
	return &Bridge{
		goroutines: r.Gauge(FamGoroutines, ""),
		heapLive:   r.Gauge(FamHeapLive, ""),
		gcCycles:   r.Counter(FamGCCycles, ""),
		gcPause:    r.Histogram(FamGCPause, ""),
		schedLat:   r.Histogram(FamSchedLatency, ""),
		samples: []metrics.Sample{
			{Name: srcGoroutines},
			{Name: srcHeapLive},
			{Name: srcGCCycles},
			{Name: srcGCPause},
			{Name: srcSchedLat},
		},
	}
}

// Start polls once synchronously (so every family carries a real
// reading immediately) and then launches the ticker goroutine. Start
// is one-shot: subsequent calls, including after Close, are no-ops.
func (b *Bridge) Start(interval time.Duration) {
	b.mu.Lock()
	if b.startedOnce {
		b.mu.Unlock()
		return
	}
	b.startedOnce = true
	b.stop = make(chan struct{})
	b.done = make(chan struct{})
	b.mu.Unlock()

	if interval <= 0 {
		interval = time.Second
	}
	b.PollOnce()
	go b.loop(interval)
}

// loop is the ticker body; it exits when Close fires stop.
func (b *Bridge) loop(interval time.Duration) {
	defer close(b.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.PollOnce()
		}
	}
}

// Close stops the ticker goroutine and waits for it to exit. Safe to
// call multiple times and on a never-started bridge.
func (b *Bridge) Close() error {
	b.mu.Lock()
	// b.stop must stay non-nil once started: loop re-reads it in its
	// select, and a receive from a nil channel blocks forever.
	if b.stop == nil || b.closedOnce {
		b.mu.Unlock()
		return nil
	}
	b.closedOnce = true
	stop, done := b.stop, b.done
	b.mu.Unlock()
	close(stop)
	<-done
	return nil
}

// PollOnce reads runtime/metrics and folds the readings into the
// registered instruments: gauges are set, the GC-cycle counter and the
// two latency histograms advance by the delta since the previous poll.
// The first poll establishes the baseline, so cumulative pre-bridge
// history is not misattributed to the bridge's lifetime.
func (b *Bridge) PollOnce() {
	b.mu.Lock()
	defer b.mu.Unlock()
	metrics.Read(b.samples)
	for i := range b.samples {
		s := &b.samples[i]
		switch s.Name {
		case srcGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				b.goroutines.Set(int64(s.Value.Uint64()))
			}
		case srcHeapLive:
			if s.Value.Kind() == metrics.KindUint64 {
				b.heapLive.Set(int64(s.Value.Uint64()))
			}
		case srcGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				cur := s.Value.Uint64()
				if b.havePrev && cur > b.prevCycles {
					b.gcCycles.Add(int64(cur - b.prevCycles))
				}
				b.prevCycles = cur
			}
		case srcGCPause:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				b.prevPause = foldHistDelta(b.gcPause, b.prevPause, s.Value.Float64Histogram(), b.havePrev)
			}
		case srcSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				b.prevSched = foldHistDelta(b.schedLat, b.prevSched, s.Value.Float64Histogram(), b.havePrev)
			}
		}
	}
	b.havePrev = true
}

// foldHistDelta adds the per-bucket count growth between prev and cur
// (both cumulative runtime/metrics histograms over seconds) into dst
// as nanosecond observations at the bucket midpoint, and returns a
// copy of cur to keep as the next baseline. When baseline is false the
// poll only establishes the baseline.
func foldHistDelta(dst *obs.Histogram, prev, cur *metrics.Float64Histogram, baseline bool) *metrics.Float64Histogram {
	if baseline && prev != nil && len(prev.Counts) == len(cur.Counts) {
		for i, n := range cur.Counts {
			d := n - prev.Counts[i]
			if d == 0 || d > n { // d > n means the counter went backwards
				continue
			}
			dst.ObserveN(bucketMidNs(cur.Buckets, i), d)
		}
	}
	// Copy: runtime/metrics may reuse the backing arrays across reads.
	keep := &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), cur.Counts...),
		Buckets: append([]float64(nil), cur.Buckets...),
	}
	return keep
}

// bucketMidNs returns a representative nanosecond value for bucket i
// of a runtime/metrics histogram (Buckets has len(Counts)+1 bounds;
// the first/last may be infinite).
func bucketMidNs(bounds []float64, i int) int64 {
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		lo = 0
	case math.IsInf(hi, 1):
		hi = lo * 2
	}
	mid := (lo + hi) / 2
	if mid < 0 {
		mid = 0
	}
	return int64(mid * float64(time.Second))
}
