package obs

import "sort"

// familyHelp is the one-line help string per metric family, emitted as
// the `# HELP` line of the Prometheus exposition (prom.go). The root
// obsdocs test enforces that this map and the families table in
// docs/observability.md cover exactly the same set, both ways — the
// 1:1 doc contract is what powers `# HELP`.
var familyHelp = map[string]string{
	"txn_exec_ns":         "Latency of one user transaction through Execute, including makesafe bookkeeping (ns).",
	"makesafe_ns":         "Per-view share of Execute: the Figure-3 makesafe bookkeeping added to each transaction (ns).",
	"log_append_tuples":   "Raw tuples appended to the view's base-table logs by makesafe.",
	"log_size_tuples":     "Current unconsumed log volume for the view - the staleness backlog a refresh must process.",
	"diff_size_tuples":    "Current size of the view's differential tables (del MV + add MV).",
	"propagate_ns":        "Duration of propagate_C: folding logs into the differential tables, without the MV lock (ns).",
	"propagate_tuples":    "Log tuples consumed by each propagate_C.",
	"refresh_ns":          "End-to-end duration of Refresh (refresh_BL/refresh_DT/refresh_C) (ns).",
	"refresh_tuples":      "Tuples consumed by refresh: log tuples for BL/C, differential tuples for DT/partial.",
	"partial_refresh_ns":  "Duration of partial_refresh_C, Policy 2's minimal-downtime refresh (ns).",
	"recompute_ns":        "Duration of the naive baseline: recompute the view from scratch and swap (ns).",
	"view_downtime_ns":    "Time the view's exclusive MV lock is held per maintenance operation - the paper's view downtime (ns).",
	"lock_write_hold_ns":  "Exclusive-lock hold time per table - the writer-side view of downtime (ns).",
	"lock_read_wait_ns":   "Time readers waited to acquire a shared lock - the reader-observed cost of downtime (ns).",
	"snapshot_save_bytes": "Bytes written by database snapshots.",
	"snapshot_load_bytes": "Bytes read restoring an engine snapshot.",
	"sql_stmt_ns":         "SQL statement latency by statement class (ns).",
	"delta_compile_ns":    "One-time cost of compiling the view's maintenance expressions into delta programs (ns).",
	"compiled_eval_ns":    "Wall time of one compiled delta-program evaluation (ns).",
	"index_probe_tuples":  "Candidate pairs examined by indexed hash joins in compiled evaluations.",
	"propagate_shard_ns":  "One shard's DEL/ADD evaluation inside a sharded propagate_C - the worker's wall time (ns).",
	"shard_fold_tuples":   "Delta tuples folded into the destination diff shard by a sharded propagate's install phase.",
	"shard_log_tuples":    "Current unconsumed log volume routed to the shard - the per-shard staleness backlog.",
	"phase_cpu_ns":        "On-goroutine wall time attributed to the (view, phase) maintenance region (ns).",
	"phase_alloc_bytes":   "Heap bytes allocated during the (view, phase) maintenance region.",
	"go_goroutines":       "Current number of live goroutines (runtime/metrics).",
	"go_heap_live_bytes":  "Bytes of live heap objects after the last GC mark phase (runtime/metrics).",
	"go_gc_cycles":        "Completed GC cycles since the bridge started polling (runtime/metrics).",
	"go_gc_pause_ns":      "Distribution of GC stop-the-world pause latencies (runtime/metrics, ns).",
	"go_sched_latency_ns": "Distribution of goroutine scheduling latencies: time runnable before running (runtime/metrics, ns).",
}

// HelpFor returns the one-line exposition help for a family ("" when
// the family is unknown — the exposition writer falls back to a
// generic line so output stays valid even for undocumented families).
func HelpFor(family string) string { return familyHelp[family] }

// HelpFamilies returns every family with a registered help string,
// sorted. The obsdocs contract test compares this against the
// documented table.
func HelpFamilies() []string {
	out := make([]string, 0, len(familyHelp))
	for f := range familyHelp {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
