// Package obs is the engine's observability layer: dependency-light
// metrics (atomic counters, gauges, and lock-free histograms with fixed
// log-scale buckets) plus a span API for timing the maintenance phases
// of Figure 3 (makesafe, propagate, refresh, partial refresh).
//
// The paper's central trade-off — minimize view downtime while bounding
// per-transaction overhead (Policies 1 and 2, Example 5.4) — is only a
// trade-off if both quantities are measurable at runtime. Every
// maintenance entry point in internal/core records its duration and
// tuple volume here; internal/txn records lock wait and hold time (the
// reader-observed "view downtime" of Section 1.1); internal/storage
// records snapshot bytes; internal/sql records statement latency.
//
// A Registry is the unit of collection: one per core.Manager. It is
// safe for concurrent use — all hot-path mutation is a single atomic
// add — and is read by taking a Snapshot, which the dvmsh \stats
// command, the cmd/dvmstatsd HTTP endpoint, and the benchmark harness
// all render from. docs/observability.md documents every metric family,
// its unit, and the paper quantity it measures; a test enforces that
// the documentation and the registry agree 1:1.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter (e.g. tuples
// appended to a view's log).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (e.g. the current log size in
// tuples). Unlike a Counter it may go down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Span times one phase (a propagate, a refresh, one exclusive-lock
// section) and records the elapsed nanoseconds into a histogram when
// ended. The zero Span is inert: End on it records nothing, so metrics
// can be compiled out by leaving the histogram nil.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan opens a span recording into h (h may be nil for a no-op
// span). The idiomatic use is:
//
//	defer obs.StartSpan(h).End()
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End closes the span, records the elapsed time into the histogram, and
// returns it.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(int64(d))
	return d
}
