package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// promSnapshot builds a registry exercising every label shape the
// exposition splitter handles.
func promSnapshot() Snapshot {
	r := NewRegistry()
	r.Counter("log_append_tuples", "hv").Add(42)
	r.Counter("phase_cpu_ns", "hv/propagate").Add(1000)
	r.Counter("snapshot_save_bytes", "").Add(7)
	r.Gauge("shard_log_tuples", "hv/s03").Set(5)
	r.Histogram("lock_write_hold_ns", "mv_hv").Observe(100)
	r.Histogram("sql_stmt_ns", "select").Observe(2500)
	h := r.Histogram("view_downtime_ns", "hv")
	h.Observe(3)
	h.Observe(900)
	h.Observe(70000)
	return r.Snapshot()
}

func TestWritePromRendersAndValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, promSnapshot()); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP dvm_log_append_tuples ",
		"# TYPE dvm_log_append_tuples counter",
		`dvm_log_append_tuples{view="hv"} 42`,
		`dvm_phase_cpu_ns{view="hv",phase="propagate"} 1000`,
		"dvm_snapshot_save_bytes 7",
		`dvm_shard_log_tuples{view="hv",shard="s03"} 5`,
		`dvm_lock_write_hold_ns_bucket{table="mv_hv",le="128"} 1`,
		`dvm_sql_stmt_ns_count{kind="select"} 1`,
		`dvm_view_downtime_ns_bucket{view="hv",le="+Inf"} 3`,
		`dvm_view_downtime_ns_sum{view="hv"} 70903`,
		`dvm_view_downtime_ns_count{view="hv"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, out)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	s := promSnapshot()
	if err := WriteProm(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, s); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteProm output is not deterministic")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before HELP/TYPE": "dvm_x 1\n",
		"bad metric name":         "# HELP dvm-x h\n# TYPE dvm-x counter\ndvm-x 1\n",
		"bad TYPE":                "# HELP dvm_x h\n# TYPE dvm_x countr\ndvm_x 1\n",
		"bad label name":          "# HELP dvm_x h\n# TYPE dvm_x counter\ndvm_x{0bad=\"v\"} 1\n",
		"bad value":               "# HELP dvm_x h\n# TYPE dvm_x counter\ndvm_x one\n",
		"help after samples":      "# HELP dvm_x h\n# TYPE dvm_x counter\ndvm_x 1\n# HELP dvm_x again\n",
		"split family block":      "# HELP dvm_x h\n# TYPE dvm_x counter\ndvm_x 1\n# HELP dvm_y h\n# TYPE dvm_y counter\ndvm_y 1\n# HELP dvm_x h\n",
		"le not increasing": "# HELP dvm_h h\n# TYPE dvm_h histogram\n" +
			"dvm_h_bucket{le=\"2\"} 1\ndvm_h_bucket{le=\"1\"} 2\ndvm_h_bucket{le=\"+Inf\"} 2\ndvm_h_sum 3\ndvm_h_count 2\n",
		"cumulative count decreases": "# HELP dvm_h h\n# TYPE dvm_h histogram\n" +
			"dvm_h_bucket{le=\"1\"} 2\ndvm_h_bucket{le=\"2\"} 1\ndvm_h_bucket{le=\"+Inf\"} 2\ndvm_h_sum 3\ndvm_h_count 2\n",
		"missing +Inf": "# HELP dvm_h h\n# TYPE dvm_h histogram\n" +
			"dvm_h_bucket{le=\"1\"} 2\ndvm_h_sum 3\ndvm_h_count 2\n",
		"count != +Inf": "# HELP dvm_h h\n# TYPE dvm_h histogram\n" +
			"dvm_h_bucket{le=\"+Inf\"} 2\ndvm_h_sum 3\ndvm_h_count 5\n",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: validator accepted invalid exposition:\n%s", name, in)
		}
	}
}

func TestValidateExpositionAcceptsEscapes(t *testing.T) {
	in := "# HELP dvm_x a help with \\\\ and \\n escapes\n# TYPE dvm_x gauge\n" +
		"dvm_x{view=\"a\\\"b\\\\c\\nd\"} 3\n"
	if err := ValidateExposition([]byte(in)); err != nil {
		t.Fatalf("validator rejected valid escapes: %v", err)
	}
}

func TestObserveN(t *testing.T) {
	var h Histogram
	h.ObserveN(100, 3)
	h.ObserveN(-5, 2) // clamps to zero
	h.ObserveN(7, 0)  // no-op
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 300 {
		t.Fatalf("Sum = %d, want 300", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max = %d, want 100", got)
	}
}

func TestRateString(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("propagate_tuples", "hv")
	g := r.Gauge("log_size_tuples", "hv")
	h := r.Histogram("propagate_ns", "hv")
	c.Add(10)
	g.Set(4)
	h.Observe(1000)
	prev := r.Snapshot()
	c.Add(30)
	g.Set(9)
	h.Observe(3000)
	cur := r.Snapshot()
	out := RateString(prev, cur, 2*time.Second)
	for _, want := range []string{
		"propagate_tuples{hv}", "15.0/s", // (40-10)/2s
		"log_size_tuples{hv}", "(+5)",
		"propagate_ns{hv}", "0.5/s", // one new observation over 2s
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rate view missing %q:\n%s", want, out)
		}
	}
	if out := RateString(cur, cur, time.Second); !strings.Contains(out, "no metric changed") {
		t.Errorf("identical snapshots should render the empty note, got:\n%s", out)
	}
}
