// Package profparse is a minimal, stdlib-only reader for pprof
// protobuf profiles (the gzipped profile.proto format runtime/pprof
// writes). It decodes just enough — samples, their values, and their
// string labels — to answer attribution questions about the
// dvm_view/dvm_shard/dvm_phase labels: the labeled-profile smoke test
// and dvmbench's -cpuprofile summary both read profiles through it,
// with no dependency on google.golang.org/protobuf.
package profparse

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Profile is the decoded subset of a pprof profile: every sample with
// its measured values and resolved string labels.
type Profile struct {
	// Samples holds every sample record in file order.
	Samples []Sample
}

// Sample is one pprof sample: the value vector (e.g. [count, nanos]
// for CPU profiles) plus its string labels.
type Sample struct {
	// Values is the sample's value per sample_type dimension.
	Values []int64
	// Labels maps label keys to string label values (numeric labels
	// are ignored — the dvm labels are all strings).
	Labels map[string]string
}

// rawLabel is a Label message before string-table resolution.
type rawLabel struct{ key, str int64 }

// rawSample is a Sample message before string-table resolution.
type rawSample struct {
	values []int64
	labels []rawLabel
}

// Parse decodes a pprof profile (gzipped or raw protobuf bytes).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profparse: gzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("profparse: gunzip: %w", err)
		}
		data = raw
	}
	var samples []rawSample
	var strtab []string
	err := eachField(data, func(field uint64, wire int, val uint64, chunk []byte) error {
		switch field {
		case 2: // repeated Sample sample
			s, err := parseSample(chunk)
			if err != nil {
				return err
			}
			samples = append(samples, s)
		case 6: // repeated string string_table
			strtab = append(strtab, string(chunk))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	p := &Profile{Samples: make([]Sample, 0, len(samples))}
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, l := range rs.labels {
			k, kOK := tabString(strtab, l.key)
			v, vOK := tabString(strtab, l.str)
			if !kOK || !vOK || k == "" || v == "" {
				continue
			}
			if s.Labels == nil {
				s.Labels = make(map[string]string, len(rs.labels))
			}
			s.Labels[k] = v
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// tabString resolves a string-table index, tolerating out-of-range
// indexes from truncated tables.
func tabString(tab []string, i int64) (string, bool) {
	if i < 0 || i >= int64(len(tab)) {
		return "", false
	}
	return tab[i], true
}

// parseSample decodes one Sample message: value = field 2 (repeated
// int64, possibly packed), label = field 3.
func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	err := eachField(data, func(field uint64, wire int, val uint64, chunk []byte) error {
		switch field {
		case 2:
			if wire == 0 {
				s.values = append(s.values, int64(val))
				return nil
			}
			// Packed encoding: a length-delimited run of varints.
			return eachVarint(chunk, func(v uint64) {
				s.values = append(s.values, int64(v))
			})
		case 3:
			l, err := parseLabel(chunk)
			if err != nil {
				return err
			}
			s.labels = append(s.labels, l)
		}
		return nil
	})
	return s, err
}

// parseLabel decodes one Label message: key = field 1, str = field 2
// (both string-table indexes).
func parseLabel(data []byte) (rawLabel, error) {
	var l rawLabel
	err := eachField(data, func(field uint64, wire int, val uint64, chunk []byte) error {
		switch field {
		case 1:
			l.key = int64(val)
		case 2:
			l.str = int64(val)
		}
		return nil
	})
	return l, err
}

// eachField walks a protobuf message, invoking fn per field with the
// varint value (wire type 0) or the byte chunk (wire type 2). Fixed
// 64/32-bit fields are skipped.
func eachField(data []byte, fn func(field uint64, wire int, val uint64, chunk []byte) error) error {
	for len(data) > 0 {
		tag, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("profparse: bad field tag")
		}
		data = data[n:]
		field, wire := tag>>3, int(tag&7)
		switch wire {
		case 0: // varint
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("profparse: bad varint in field %d", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("profparse: truncated fixed64 in field %d", field)
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("profparse: truncated chunk in field %d", field)
			}
			chunk := data[n : uint64(n)+l]
			data = data[uint64(n)+l:]
			if err := fn(field, wire, 0, chunk); err != nil {
				return err
			}
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("profparse: truncated fixed32 in field %d", field)
			}
			data = data[4:]
		default:
			return fmt.Errorf("profparse: unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// eachVarint walks a packed varint run.
func eachVarint(data []byte, fn func(uint64)) error {
	for len(data) > 0 {
		v, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("profparse: bad packed varint")
		}
		fn(v)
		data = data[n:]
	}
	return nil
}

// uvarint decodes an unsigned varint, returning the value and the
// number of bytes consumed (0 when truncated).
func uvarint(data []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		b := data[i]
		v |= uint64(b&0x7f) << (7 * uint(i))
		if b < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// LabelStats summarizes one profile's label attribution for a set of
// label keys: how many samples (by the value at index valueIdx, e.g. 1
// = CPU nanos) carry every key, and the per-value breakdown of one key.
type LabelStats struct {
	// Total is the summed sample value across the whole profile.
	Total int64
	// Labeled is the summed value of samples carrying all requested keys.
	Labeled int64
	// ByValue sums sample values per value of the breakdown key.
	ByValue map[string]int64
}

// Attribution sums the profile's samples at value index valueIdx,
// counting a sample as labeled when it carries every key in keys, and
// breaking totals down by the value of breakdownKey (samples without
// it land under ""). valueIdx clamps to the sample's last value.
func (p *Profile) Attribution(valueIdx int, breakdownKey string, keys ...string) LabelStats {
	st := LabelStats{ByValue: make(map[string]int64)}
	for _, s := range p.Samples {
		if len(s.Values) == 0 {
			continue
		}
		idx := valueIdx
		if idx >= len(s.Values) {
			idx = len(s.Values) - 1
		}
		v := s.Values[idx]
		st.Total += v
		all := true
		for _, k := range keys {
			if s.Labels[k] == "" {
				all = false
				break
			}
		}
		if all {
			st.Labeled += v
		}
		st.ByValue[s.Labels[breakdownKey]] += v
	}
	return st
}
