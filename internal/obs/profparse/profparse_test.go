package profparse

import (
	"bytes"
	"compress/gzip"
	"runtime/pprof"
	"testing"
)

// pb is a tiny protobuf writer for building test profiles.
type pb struct{ buf bytes.Buffer }

func (p *pb) varint(v uint64) {
	for v >= 0x80 {
		p.buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	p.buf.WriteByte(byte(v))
}

func (p *pb) field(num uint64, wire uint64) { p.varint(num<<3 | wire) }

func (p *pb) intField(num uint64, v uint64) {
	p.field(num, 0)
	p.varint(v)
}

func (p *pb) bytesField(num uint64, b []byte) {
	p.field(num, 2)
	p.varint(uint64(len(b)))
	p.buf.Write(b)
}

// testProfile encodes a profile with a known string table and samples.
func testProfile(t *testing.T) []byte {
	t.Helper()
	// string_table: index 0 must be "" per the format.
	strs := []string{"", "dvm_phase", "propagate", "dvm_view", "hv"}

	label := func(key, str uint64) []byte {
		var l pb
		l.intField(1, key)
		l.intField(2, str)
		return l.buf.Bytes()
	}
	sample := func(values []uint64, labels ...[]byte) []byte {
		var s pb
		// Packed values (what runtime/pprof emits).
		var packed pb
		for _, v := range values {
			packed.varint(v)
		}
		s.bytesField(2, packed.buf.Bytes())
		for _, l := range labels {
			s.bytesField(3, l)
		}
		return s.buf.Bytes()
	}

	var prof pb
	// Fully labeled sample: 10 count, 1000 ns.
	prof.bytesField(2, sample([]uint64{10, 1000}, label(1, 2), label(3, 4)))
	// Unlabeled sample: 3 count, 300 ns.
	prof.bytesField(2, sample([]uint64{3, 300}))
	for _, s := range strs {
		prof.bytesField(6, []byte(s))
	}
	return prof.buf.Bytes()
}

func TestParseSynthetic(t *testing.T) {
	p, err := Parse(testProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(p.Samples))
	}
	s0 := p.Samples[0]
	if len(s0.Values) != 2 || s0.Values[1] != 1000 {
		t.Errorf("sample 0 values = %v, want [10 1000]", s0.Values)
	}
	if s0.Labels["dvm_phase"] != "propagate" || s0.Labels["dvm_view"] != "hv" {
		t.Errorf("sample 0 labels = %v", s0.Labels)
	}
	if p.Samples[1].Labels != nil {
		t.Errorf("sample 1 labels = %v, want none", p.Samples[1].Labels)
	}
}

func TestParseGzipped(t *testing.T) {
	raw := testProfile(t)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(gz.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(p.Samples))
	}
}

func TestAttribution(t *testing.T) {
	p, err := Parse(testProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	st := p.Attribution(1, "dvm_phase", "dvm_phase")
	if st.Total != 1300 {
		t.Errorf("Total = %d, want 1300", st.Total)
	}
	if st.Labeled != 1000 {
		t.Errorf("Labeled = %d, want 1000", st.Labeled)
	}
	if st.ByValue["propagate"] != 1000 || st.ByValue[""] != 300 {
		t.Errorf("ByValue = %v", st.ByValue)
	}
}

func TestParseTruncated(t *testing.T) {
	raw := testProfile(t)
	if _, err := Parse(raw[:len(raw)-3]); err == nil {
		t.Error("truncated profile parsed without error")
	}
}

// TestParseRealHeapProfile feeds an actual runtime/pprof output through
// the parser: the format assumptions (gzip, packed values, string
// table) must hold against the real writer, not just our encoder.
func TestParseRealHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) == 0 {
		t.Skip("heap profile had no samples")
	}
	for i, s := range p.Samples {
		if len(s.Values) == 0 {
			t.Fatalf("sample %d has no values", i)
		}
	}
}
