package obs

import (
	"testing"
	"time"
)

func TestRegionAccounting(t *testing.T) {
	r := NewRegistry()
	acct := NewPhaseAcct(r, "hv", PhasePropagate)
	rg := StartRegion(acct, "hv", "", PhasePropagate)
	// Burn a little time and allocation inside the region.
	time.Sleep(time.Millisecond)
	sink := make([]byte, 1<<16)
	_ = sink
	rg.End()

	snap := r.Snapshot()
	cpu, ok := snap.Get("phase_cpu_ns", "hv/propagate")
	if !ok {
		t.Fatal("phase_cpu_ns{hv/propagate} not registered")
	}
	if cpu.Value < int64(time.Millisecond) {
		t.Fatalf("phase_cpu_ns = %d, want >= 1ms", cpu.Value)
	}
	alloc, ok := snap.Get("phase_alloc_bytes", "hv/propagate")
	if !ok {
		t.Fatal("phase_alloc_bytes{hv/propagate} not registered")
	}
	if alloc.Value < 0 {
		t.Fatalf("phase_alloc_bytes = %d, want >= 0", alloc.Value)
	}
}

func TestPhaseAcctNilAndNegative(t *testing.T) {
	var nilAcct *PhaseAcct
	nilAcct.Add(100, 100) // must not panic
	StartRegion(nil, "hv", "s01", PhasePropagate).End()

	r := NewRegistry()
	acct := NewPhaseAcct(r, "hv", PhaseMakesafe)
	acct.Add(-5, -5)
	if v := acct.CPU.Load(); v != 0 {
		t.Fatalf("negative cpu recorded: %d", v)
	}
	acct.Add(7, 9)
	if v, a := acct.CPU.Load(), acct.Alloc.Load(); v != 7 || a != 9 {
		t.Fatalf("Add(7,9) -> cpu=%d alloc=%d", v, a)
	}
}

func TestHeapAllocBytesMonotone(t *testing.T) {
	a := HeapAllocBytes()
	buf := make([]byte, 1<<20)
	_ = buf
	b := HeapAllocBytes()
	if b < a {
		t.Fatalf("cumulative allocation went backwards: %d -> %d", a, b)
	}
}

func TestPhasesStable(t *testing.T) {
	want := []string{"makesafe", "propagate", "refresh", "partial_refresh", "recompute"}
	got := Phases()
	if len(got) != len(want) {
		t.Fatalf("Phases() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Phases()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
