package core

import (
	"fmt"
	"time"

	"dvm/internal/bag"
	"dvm/internal/obs"
	"dvm/internal/obs/trace"
	"dvm/internal/schema"
	"dvm/internal/txn"
)

// Execute runs a user transaction through makesafe: the transaction is
// normalized to weak minimality, extended with every view's Figure 3
// bookkeeping, and the whole bundle is applied with simultaneous (T1+T2)
// semantics so that no auxiliary update sees another's effect.
//
// Immediate views have their MV table updated inside the transaction (and
// write-locked while it installs); BaseLogs/Combined views only append to
// their logs; DiffTables views fold the pre-update incremental queries
// into their differential tables.
func (m *Manager) Execute(t txn.Txn) error {
	if name, bad := t.TouchesInternal(m.db); bad {
		return fmt.Errorf("core: user transaction writes internal table %q", name)
	}
	nt, err := t.Normalize(m.db)
	if err != nil {
		return err
	}
	// Validate every inserted tuple before any bookkeeping mutates state,
	// so a rejected transaction leaves logs and scratch tables untouched.
	for name, u := range nt {
		tb, err := m.db.Table(name)
		if err != nil {
			return err
		}
		var verr error
		u.Insert.Each(func(tu schema.Tuple, _ int) {
			if verr == nil {
				verr = tb.Schema().Validate(tu)
			}
		})
		if verr != nil {
			return fmt.Errorf("core: transaction inserts into %s: %w", name, verr)
		}
	}

	start := time.Now()
	// The whole Execute body is one makesafe-phase profiling region. It
	// spans several views, so the pprof label carries no dvm_view; the
	// cost is distributed across the affected views' phase accounting
	// below, mirroring the makesafe_ns share.
	restoreLabels := obs.SetPhaseLabels("", "", obs.PhaseMakesafe)
	defer restoreLabels()
	alloc0 := obs.HeapAllocBytes()
	xsp := m.startEntrySpan(trace.SpanExecute, trace.Int("tables", int64(len(nt))))
	defer xsp.End()

	// Publish the transaction's ∇R/△R into the shared scratch tables so
	// precompiled incremental queries can read them.
	for base, dn := range m.scratchDel {
		sd, _ := m.db.Table(dn)
		si, _ := m.db.Table(m.scratchIns[base])
		if u, ok := nt[base]; ok {
			sd.Replace(u.Delete.Clone())
			si.Replace(u.Insert.Clone())
		} else {
			sd.Clear()
			si.Clear()
		}
	}

	// Assemble the auxiliary assignments (every view's makesafe
	// bookkeeping). The user's own base-table updates are applied in
	// place AFTER these evaluate: every auxiliary right-hand side reads
	// the pre-update state, so evaluating them first and mutating the
	// base tables last realizes the simultaneous (T1+T2) semantics while
	// keeping the base update O(|change|) instead of O(|table|).
	assigns := make([]txn.Assignment, 0, 4*len(m.order))
	var compiledViews []*View
	var lockMVs []string
	affected := make([]*View, 0, len(m.order))
	for _, vn := range m.order {
		v := m.views[vn]
		if !m.viewAffected(v, nt) {
			continue
		}
		affected = append(affected, v)
		msp := xsp.StartChild(trace.SpanMakesafe,
			trace.Str("view", v.Name), trace.Str("scenario", v.Scenario.String()))
		if (v.Scenario == BaseLogs || v.Scenario == Combined) && m.shared != nil {
			// Shared-log mode: the batch is appended once per TABLE
			// below, not once per view.
			msp.End()
			continue
		}
		if v.sh != nil {
			// Sharded Combined view: route ∇R/△R by shard key and merge
			// shard-locally under per-shard locks (makesafe_C with a
			// partitioned log; see shard.go). The in-place merge is the
			// only form — slowLogAppend has no algebraic twin here.
			err := m.appendToLogsSharded(v, nt)
			msp.End()
			if err != nil {
				return err
			}
			continue
		}
		if (v.Scenario == BaseLogs || v.Scenario == Combined) && !m.slowLogAppend {
			// Fast path: the weakly minimal log merge
			//   ▼R := ▼R ⊎ (∇R ∸ ▲R);  ▲R := (▲R ∸ ∇R) ⊎ △R
			// reads only the transaction's own deltas and touches only
			// the delta's tuples, so it can run in place in
			// O(|∇R|+|△R|) rather than rebuilding the log tables.
			err := m.appendToLogs(v, nt)
			msp.End()
			if err != nil {
				return err
			}
			continue
		}
		if v.cd != nil && v.cd.safe != nil {
			// Compiled makesafe: the program evaluates and installs
			// inside the apply closure, alongside the assignment bundle.
			compiledViews = append(compiledViews, v)
		} else {
			assigns = append(assigns, v.safeAssigns...)
		}
		if v.Scenario == Immediate {
			lockMVs = append(lockMVs, v.mvName)
		}
		msp.End()
	}

	if m.shared != nil {
		// One append per logged table, O(|change|), independent of the
		// number of views — the Section 7 property.
		m.appendShared(nt)
	}

	// Immediate views hold their MV write locks while the transaction
	// installs — that blocking is exactly the per-transaction overhead
	// immediate maintenance imposes.
	apply := func(parent *trace.Span) error {
		asp := parent.StartChild(trace.SpanApply,
			trace.Int("assigns", int64(len(assigns)+len(compiledViews))))
		defer asp.End()
		if err := txn.ApplyAssignments(m.db, assigns); err != nil {
			return err
		}
		// Compiled makesafe programs run here, before the base-table
		// updates below, so their right-hand sides read the pre-update
		// state exactly like the assignment bundle.
		for _, cv := range compiledViews {
			if err := m.applyCompiledSafe(cv, asp); err != nil {
				return err
			}
		}
		// Base-table updates, in place: R := (R ∸ ∇R) ⊎ △R with the
		// effective (weakly minimal) deltas.
		for name, u := range nt {
			tb, err := m.db.Table(name)
			if err != nil {
				return err
			}
			if u.Delete != nil {
				u.Delete.Each(func(t schema.Tuple, n int) {
					tb.Data().Remove(t, n)
				})
			}
			if u.Insert != nil {
				tb.Data().AddBag(u.Insert)
			}
		}
		// Co-partitioned base mirrors (sharded views) receive the same
		// effective deltas, routed per shard, so each mirror group stays
		// exactly its base's hash slice.
		m.updateMirrors(nt)
		return nil
	}
	if len(lockMVs) > 0 {
		// The locked install is the Immediate views' downtime: readers of
		// those MVs block for exactly this long, every transaction.
		lockStart := time.Now()
		err = m.locks.WithWriteSpan(lockMVs, xsp, apply)
		held := int64(time.Since(lockStart))
		for _, v := range affected {
			if v.Scenario == Immediate && v.met != nil {
				v.met.downtimeNs.Observe(held)
			}
		}
	} else {
		err = apply(xsp)
	}
	if err != nil {
		return err
	}

	// Attribute the transaction's maintenance cost evenly across the
	// affected views; exact per-view separation is not observable since
	// the bundle applies as one transaction.
	elapsed := time.Since(start)
	m.txnExecNs.Observe(int64(elapsed))
	share := elapsed
	var allocShare int64
	if a := obs.HeapAllocBytes(); a > alloc0 {
		allocShare = int64(a - alloc0)
	}
	if len(affected) > 1 {
		share = elapsed / time.Duration(len(affected))
		allocShare /= int64(len(affected))
	}
	for _, v := range affected {
		v.Stats.MakeSafeOps++
		v.Stats.MakeSafeTime += share
		if v.met != nil {
			v.met.makesafeNs.Observe(int64(share))
			v.met.phaseAcct(obs.PhaseMakesafe).Add(int64(share), allocShare)
		}
		switch v.Scenario {
		case BaseLogs, Combined:
			for _, b := range v.bases {
				if u, ok := nt[b]; ok {
					n := u.Delete.Len() + u.Insert.Len()
					v.Stats.LogTuples += n
					if v.met != nil {
						v.met.logAppendTuples.Add(int64(n))
					}
				}
			}
		case DiffTables:
			dt, _ := m.db.Bag(v.dtDel)
			at, _ := m.db.Bag(v.dtAdd)
			v.Stats.DiffTuples = dt.Len() + at.Len()
		}
		m.updateSizeGauges(v)
	}
	return nil
}

// appendToLogs performs the Figure 3 log extension in place. It is
// observationally identical to the algebraic assignments of
// View.safeAssigns (see TestFastLogAppendMatchesAlgebraic): for each
// table, the bag x = ∇R ∸ ▲R is computed against the PRE-state ▲R
// before ▲R is mutated, matching simultaneous-assignment semantics.
func (m *Manager) appendToLogs(v *View, nt txn.Txn) error {
	for _, b := range v.bases {
		u, ok := nt[b]
		if !ok {
			continue
		}
		delLog, err := m.db.Table(v.logDel[b])
		if err != nil {
			return err
		}
		insLog, err := m.db.Table(v.logIns[b])
		if err != nil {
			return err
		}
		del := u.Delete
		if del == nil {
			del = bag.New()
		}
		ins := u.Insert
		if ins == nil {
			ins = bag.New()
		}
		if fn, ok := v.logFilterFn[b]; ok {
			// Relevant-update detection (WithLogFilter): only σ_p of the
			// change reaches this view's log.
			del = bag.Select(del, fn)
			ins = bag.Select(ins, fn)
		}
		x := bag.Monus(del, insLog.Data()) // ∇R ∸ ▲R, against pre-state ▲R
		del.Each(func(t schema.Tuple, n int) {
			insLog.Data().Remove(t, n) // ▲R ∸= ∇R (clamped at zero)
		})
		insLog.Data().AddBag(ins) // ⊎ △R
		delLog.Data().AddBag(x)   // ▼R ⊎= x
	}
	return nil
}

// viewAffected reports whether the transaction touches any base table of
// the view; unaffected views need no bookkeeping (their ∇R/△R are ∅ and
// every Figure 3 assignment is the identity).
func (m *Manager) viewAffected(v *View, t txn.Txn) bool {
	for _, b := range v.bases {
		if u, ok := t[b]; ok {
			if (u.Delete != nil && !u.Delete.Empty()) || (u.Insert != nil && !u.Insert.Empty()) {
				return true
			}
		}
	}
	return false
}
