package core

import (
	"strings"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// retailDB builds the Example 1.1 schema: sales and customer tables plus
// the high-value-customer join view definition.
func retailDB(t testing.TB) (*storage.Database, algebra.Expr) {
	t.Helper()
	db := storage.NewDatabase()
	salesSch := schema.NewSchema(
		schema.Col("s.custId", schema.TInt),
		schema.Col("s.itemNo", schema.TInt),
		schema.Col("s.quantity", schema.TInt),
		schema.Col("s.salesPrice", schema.TFloat),
	)
	custSch := schema.NewSchema(
		schema.Col("c.custId", schema.TInt),
		schema.Col("c.name", schema.TString),
		schema.Col("c.address", schema.TString),
		schema.Col("c.score", schema.TString),
	)
	if _, err := db.Create("sales", salesSch, storage.External); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("customer", custSch, storage.External); err != nil {
		t.Fatal(err)
	}

	cust, _ := db.Table("customer")
	for i := 0; i < 10; i++ {
		score := "Low"
		if i%2 == 0 {
			score = "High"
		}
		if err := cust.Insert(schema.Row(i, "cust", "addr", score), 1); err != nil {
			t.Fatal(err)
		}
	}
	sales, _ := db.Table("sales")
	for i := 0; i < 30; i++ {
		if err := sales.Insert(schema.Row(i%10, i%7, i%3, float64(i)), 1); err != nil {
			t.Fatal(err)
		}
	}

	c := algebra.NewBase("customer", custSch)
	s := algebra.NewBase("sales", salesSch)
	join, err := algebra.JoinOn(c, s, algebra.AndOf(
		algebra.Eq(algebra.A("c.custId"), algebra.A("s.custId")),
		algebra.Neq(algebra.A("s.quantity"), algebra.C(0)),
		algebra.Eq(algebra.A("c.score"), algebra.C("High")),
	))
	if err != nil {
		t.Fatal(err)
	}
	def, err := algebra.NewProject(
		[]string{"c.custId", "c.name", "c.score", "s.itemNo", "s.quantity"},
		[]string{"custId", "name", "score", "itemNo", "quantity"},
		join,
	)
	if err != nil {
		t.Fatal(err)
	}
	return db, def
}

func saleRow(cust, item, qty int) schema.Tuple {
	return schema.Row(cust, item, qty, 9.99)
}

func TestDefineViewBasics(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	v, err := m.DefineView("hv", def, Combined)
	if err != nil {
		t.Fatal(err)
	}
	if v.MVTable() != "__mv_hv" || !db.Has("__mv_hv") {
		t.Fatal("MV table missing")
	}
	// MV initialized to the current value of Q.
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
	// Aux tables for Combined: logs per base + diff tables.
	for _, name := range []string{
		"__log_del_customer__hv", "__log_ins_customer__hv",
		"__log_del_sales__hv", "__log_ins_sales__hv",
		"__dmv_del_hv", "__dmv_add_hv",
	} {
		if !db.Has(name) {
			t.Fatalf("aux table %s missing", name)
		}
		tb, _ := db.Table(name)
		if tb.Kind() != storage.Internal {
			t.Fatalf("aux table %s is not internal", name)
		}
	}
	bases := v.BaseTables()
	if len(bases) != 2 || bases[0] != "customer" || bases[1] != "sales" {
		t.Fatalf("BaseTables = %v", bases)
	}
	if _, err := m.DefineView("hv", def, Immediate); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if got := m.Views(); len(got) != 1 || got[0] != v {
		t.Fatal("Views() wrong")
	}
	if _, err := m.View("ghost"); err == nil {
		t.Fatal("missing view lookup should fail")
	}
}

func TestDefineViewErrors(t *testing.T) {
	db, _ := retailDB(t)
	m := NewManager(db)
	ghost := algebra.NewBase("ghost", schema.NewSchema(schema.Col("x", schema.TInt)))
	if _, err := m.DefineView("bad", ghost, BaseLogs); err == nil {
		t.Fatal("view over missing table accepted")
	}
	// Views over internal tables are rejected.
	if _, err := db.Create("__secret", schema.NewSchema(schema.Col("x", schema.TInt)), storage.Internal); err != nil {
		t.Fatal(err)
	}
	evil := algebra.NewBase("__secret", schema.NewSchema(schema.Col("x", schema.TInt)))
	if _, err := m.DefineView("bad", evil, BaseLogs); err == nil {
		t.Fatal("view over internal table accepted")
	}
}

func TestScenarioStrings(t *testing.T) {
	for sc, want := range map[Scenario]string{Immediate: "IM", BaseLogs: "BL", DiffTables: "DT", Combined: "C"} {
		if sc.String() != want {
			t.Errorf("Scenario = %q, want %q", sc.String(), want)
		}
	}
	if !strings.HasPrefix(Scenario(99).String(), "Scenario(") {
		t.Error("unknown scenario string wrong")
	}
}

// runScenarioLifecycle drives a sequence of transactions through one
// scenario, checking the invariant after every step and consistency
// after refresh.
func runScenarioLifecycle(t *testing.T, sc Scenario, opts ...Option) {
	t.Helper()
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, sc, opts...); err != nil {
		t.Fatal(err)
	}

	steps := []txn.Txn{
		txn.Insert("sales", bag.Of(saleRow(0, 99, 5), saleRow(2, 99, 1))),
		txn.Delete("sales", bag.Of(saleRow(0, 99, 5))),
		// Multi-table transaction: demote customer 2, insert a sale for 4.
		{
			"customer": {
				Delete: bag.Of(schema.Row(2, "cust", "addr", "High")),
				Insert: bag.Of(schema.Row(2, "cust", "addr", "Low")),
			},
			"sales": {Insert: bag.Of(saleRow(4, 50, 2))},
		},
		// Insert a zero-quantity sale: filtered out by the predicate.
		txn.Insert("sales", bag.Of(saleRow(4, 51, 0))),
		// Duplicate insert: bag semantics must count it twice.
		txn.Insert("sales", bag.Of(saleRow(4, 50, 2))),
	}

	for i, tx := range steps {
		if err := m.Execute(tx); err != nil {
			t.Fatalf("step %d: execute: %v", i, err)
		}
		if err := m.CheckInvariant("hv"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// Mid-stream propagate for Combined must preserve the invariant.
		if sc == Combined && i == 2 {
			if err := m.Propagate("hv"); err != nil {
				t.Fatal(err)
			}
			if err := m.CheckInvariant("hv"); err != nil {
				t.Fatalf("after propagate: %v", err)
			}
		}
	}

	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariant("hv"); err != nil {
		t.Fatalf("invariant after refresh: %v", err)
	}

	// Another round after refresh (logs must have restarted cleanly).
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(6, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariant("hv"); err != nil {
		t.Fatalf("invariant after post-refresh txn: %v", err)
	}
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleImmediate(t *testing.T)  { runScenarioLifecycle(t, Immediate) }
func TestLifecycleBaseLogs(t *testing.T)   { runScenarioLifecycle(t, BaseLogs) }
func TestLifecycleDiffTables(t *testing.T) { runScenarioLifecycle(t, DiffTables) }
func TestLifecycleCombined(t *testing.T)   { runScenarioLifecycle(t, Combined) }

func TestLifecycleStrongMinimal(t *testing.T) {
	runScenarioLifecycle(t, DiffTables, WithStrongMinimality())
	runScenarioLifecycle(t, Combined, WithStrongMinimality())
}

func TestImmediateAlwaysConsistent(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, Immediate); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
		// INV_IM means consistency holds after EVERY transaction.
		if err := m.CheckConsistent("hv"); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	// Refresh is a no-op for Immediate.
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteRejectsInternalWrites(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
	evil := txn.Insert("__mv_hv", bag.Of(schema.Row(1, "x", "High", 1, 1)))
	if err := m.Execute(evil); err == nil {
		t.Fatal("write to MV table accepted")
	}
	evil2 := txn.Insert("__log_ins_sales__hv", bag.Of(saleRow(1, 1, 1)))
	if err := m.Execute(evil2); err == nil {
		t.Fatal("write to log table accepted")
	}
}

func TestUnaffectedViewSkipsBookkeeping(t *testing.T) {
	db, def := retailDB(t)
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	if _, err := db.Create("other", sch, storage.External); err != nil {
		t.Fatal(err)
	}
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("other", bag.Of(schema.Row(1)))); err != nil {
		t.Fatal(err)
	}
	v, _ := m.View("hv")
	if v.Stats.MakeSafeOps != 0 {
		t.Fatal("unaffected view was charged bookkeeping")
	}
	// Logs stayed empty.
	b, _ := db.Bag("__log_ins_sales__hv")
	if !b.Empty() {
		t.Fatal("log written for unaffected view")
	}
	if err := m.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestPropagateAndPartialRefreshErrors(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("bl", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	if err := m.Propagate("bl"); err == nil {
		t.Fatal("propagate on BL view should fail")
	}
	if err := m.PartialRefresh("bl"); err == nil {
		t.Fatal("partial refresh on BL view should fail")
	}
	if err := m.Propagate("ghost"); err == nil {
		t.Fatal("propagate on missing view should fail")
	}
	if err := m.Refresh("ghost"); err == nil {
		t.Fatal("refresh on missing view should fail")
	}
	if err := m.RefreshRecompute("ghost"); err == nil {
		t.Fatal("recompute on missing view should fail")
	}
	if _, err := m.Query("ghost"); err == nil {
		t.Fatal("query on missing view should fail")
	}
}

func TestPartialRefreshSemantics(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
	// Two batches: propagate after the first, not the second.
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 2, 1)))); err != nil {
		t.Fatal(err)
	}
	// Partial refresh applies only the propagated changes: the view
	// reflects batch 1 but not batch 2 — PAST(L,Q) ≡ MV afterwards.
	if err := m.PartialRefresh("hv"); err != nil {
		t.Fatal(err)
	}
	v, _ := m.View("hv")
	past, err := m.PastExpr(v)
	if err != nil {
		t.Fatal(err)
	}
	p, err := algebra.Eval(past, db)
	if err != nil {
		t.Fatal(err)
	}
	mv, _ := db.Bag(v.MVTable())
	if !p.Equal(mv) {
		t.Fatalf("partial refresh postcondition violated: PAST=%v MV=%v", p, mv)
	}
	// The unpropagated sale is NOT in the view yet.
	q, _ := algebra.Eval(def, db)
	if q.Equal(mv) {
		t.Fatal("partial refresh unexpectedly caught up fully (nothing pending?)")
	}
	// Full refresh catches up.
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshRecompute(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshRecompute("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
	// Logs were reset, so the invariant holds too.
	if err := m.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
	v, _ := m.View("hv")
	if v.Stats.Recomputes != 1 {
		t.Fatal("recompute not counted")
	}
}

func TestQueryReturnsCopyAndRecordsLocks(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	b, err := m.Query("hv")
	if err != nil {
		t.Fatal(err)
	}
	before := b.Len()
	b.Add(schema.Row(1, "x", "High", 1, 1), 1)
	b2, _ := m.Query("hv")
	if b2.Len() != before {
		t.Fatal("Query result aliases MV storage")
	}
	v, _ := m.View("hv")
	if m.Locks().Stats(v.MVTable()).ReadWaits != 2 {
		t.Fatal("query read locks not recorded")
	}
	// Refresh records a write hold.
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if m.Locks().Stats(v.MVTable()).WriteHolds != 1 {
		t.Fatal("refresh write hold not recorded")
	}
}

func TestViewStatsAccumulate(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.Propagate("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.PartialRefresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	v, _ := m.View("hv")
	s := v.Stats
	if s.MakeSafeOps != 1 || s.Propagates != 1 || s.PartialCount != 1 || s.Refreshes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LogTuples != 1 {
		t.Fatalf("LogTuples = %d, want 1", s.LogTuples)
	}
}
