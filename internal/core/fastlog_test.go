package core

import (
	"math/rand"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// TestFastLogAppendMatchesAlgebraic drives identical random transaction
// streams through two managers — one using the in-place log fast path,
// one using the algebraic Figure 3 assignments — and asserts the log
// tables stay byte-for-byte identical, step by step.
func TestFastLogAppendMatchesAlgebraic(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	u := algebra.NewRandomUniverse(2)
	for trial := 0; trial < 25; trial++ {
		def := u.RandomQuery(r, 3)

		// Same initial rows in both databases, loaded BEFORE the view is
		// defined so MV starts consistent.
		seed := bag.New()
		for i, n := 0, r.Intn(8); i < n; i++ {
			seed.Add(schema.Row(r.Intn(4), r.Intn(4)), 1+r.Intn(2))
		}
		build := func() (*Manager, *View, error) {
			db := storage.NewDatabase()
			for _, name := range u.Tables {
				tb, err := db.Create(name, u.Sch, storage.External)
				if err != nil {
					return nil, nil, err
				}
				tb.Replace(seed.Clone())
			}
			m := NewManager(db)
			v, err := m.DefineView("v", def, Combined)
			return m, v, err
		}
		fast, fv, err := build()
		if err != nil {
			t.Fatal(err)
		}
		slow, sv, err := build()
		if err != nil {
			t.Fatal(err)
		}
		slow.SetSlowLogAppend(true)

		for step := 0; step < 8; step++ {
			tx := txn.Txn{}
			for _, name := range u.Tables {
				del, ins := u.RandomDelta(r)
				tx[name] = txn.Update{Delete: del, Insert: ins}
			}
			if err := fast.Execute(tx); err != nil {
				t.Fatal(err)
			}
			if err := slow.Execute(tx); err != nil {
				t.Fatal(err)
			}
			for _, b := range fv.BaseTables() {
				for _, pair := range [][2]string{
					{fv.logDel[b], sv.logDel[b]},
					{fv.logIns[b], sv.logIns[b]},
				} {
					fb, _ := fast.DB().Bag(pair[0])
					sb, _ := slow.DB().Bag(pair[1])
					if !fb.Equal(sb) {
						t.Fatalf("trial %d step %d: log %s diverged:\nfast: %v\nslow: %v\ndef=%s",
							trial, step, pair[0], fb, sb, def)
					}
				}
			}
			if err := fast.CheckInvariant("v"); err != nil {
				t.Fatalf("trial %d step %d: fast path broke INV_C: %v", trial, step, err)
			}
		}

		// Both converge to the same consistent view.
		for _, m := range []*Manager{fast, slow} {
			if err := m.Refresh("v"); err != nil {
				t.Fatal(err)
			}
			if err := m.CheckConsistent("v"); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestExecuteValidatesBeforeBookkeeping(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	v, err := m.DefineView("hv", def, Combined)
	if err != nil {
		t.Fatal(err)
	}
	// A mixed transaction with a type-violating insert must fail without
	// touching any log table.
	bad := txn.Txn{"sales": txn.Update{
		Delete: bag.Of(saleRow(0, 0, 1)),
		Insert: bag.Of(schema.Row("not-an-int", 1, 1, 1.0)),
	}}
	if err := m.Execute(bad); err == nil {
		t.Fatal("ill-typed insert accepted")
	}
	for _, b := range v.BaseTables() {
		lb, _ := db.Bag(v.logIns[b])
		if !lb.Empty() {
			t.Fatalf("log %s mutated by rejected transaction", v.logIns[b])
		}
		lb, _ = db.Bag(v.logDel[b])
		if !lb.Empty() {
			t.Fatalf("log %s mutated by rejected transaction", v.logDel[b])
		}
	}
	if err := m.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestSlowLogAppendFlagLifecycle(t *testing.T) {
	// The whole scenario lifecycle must also pass with the fast path off.
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	m.SetSlowLogAppend(true)
	for i := 0; i < 4; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariant("hv"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}

// Quantify the fast path: its per-transaction cost must not grow with
// the accumulated log size, unlike the algebraic assignments.
func TestFastLogAppendIndependentOfLogSize(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	// Grow the log to ~20k rows.
	big := bag.New()
	for i := 0; i < 20000; i++ {
		big.Add(saleRow(i%10, i, 1+i%3), 1)
	}
	if err := m.Execute(txn.Insert("sales", big)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.View("hv")
	before, _ := db.Bag(v.logIns["sales"])
	sizeBefore := before.Len()

	// Appends must stay cheap: run a batch of tiny transactions and
	// check they finish quickly relative to the log size (smoke check,
	// not a strict timing assertion).
	for i := 0; i < 50; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := db.Bag(v.logIns["sales"])
	if after.Len() != sizeBefore+50 {
		t.Fatalf("log grew from %d to %d, want +50", sizeBefore, after.Len())
	}
	if err := m.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
}
