package core

import (
	"fmt"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/delta"
)

// PastExpr builds PAST(L, Q) for a BaseLogs/Combined view: the view
// definition with every base table R replaced by (R ∸ ▲R) ⊎ ▼R
// (Section 2.5). Evaluating it in the current state yields Q's value in
// the state recorded by the log's start.
func (m *Manager) PastExpr(v *View) (algebra.Expr, error) {
	if v.Scenario != BaseLogs && v.Scenario != Combined {
		return nil, fmt.Errorf("core: view %q has no log", v.Name)
	}
	// In shared-log mode the private log tables the expression reads are
	// materialized on demand; refresh them (without consuming) so the
	// expression evaluates against the true log window.
	if m.shared != nil {
		if err := m.materializeWindow(v); err != nil {
			return nil, err
		}
	}
	return delta.LogSubst(m.logChangeSet(v)).Apply(v.Def)
}

// CheckInvariant verifies the scenario's database invariant (Figure 1)
// plus the minimality invariants of Section 5.2 for one view, returning
// a descriptive error on the first violation. Intended for tests and
// debugging; it evaluates the view definition from scratch.
func (m *Manager) CheckInvariant(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	// In shared-log mode the view's private log tables are only
	// materialized on demand; refresh the window (without consuming it)
	// so PAST(L,Q) and the minimality checks see the true log state.
	if m.shared != nil && (v.Scenario == BaseLogs || v.Scenario == Combined) {
		if err := m.materializeWindow(v); err != nil {
			return err
		}
	}
	mv, err := m.db.Bag(v.mvName)
	if err != nil {
		return err
	}

	switch v.Scenario {
	case Immediate:
		// INV_IM: Q ≡ MV.
		q, err := algebra.Eval(v.Def, m.db)
		if err != nil {
			return err
		}
		if !q.Equal(mv) {
			return fmt.Errorf("core: INV_IM violated for %q: Q=%v MV=%v", name, q, mv)
		}

	case BaseLogs:
		// INV_BL: PAST(L,Q) ≡ MV.
		past, err := m.PastExpr(v)
		if err != nil {
			return err
		}
		p, err := algebra.Eval(past, m.db)
		if err != nil {
			return err
		}
		if !p.Equal(mv) {
			return fmt.Errorf("core: INV_BL violated for %q: PAST(L,Q)=%v MV=%v", name, p, mv)
		}

	case DiffTables:
		// INV_DT: Q ≡ (MV ∸ ∇MV) ⊎ △MV.
		q, err := algebra.Eval(v.Def, m.db)
		if err != nil {
			return err
		}
		if got, err := m.diffApplied(v, mv); err != nil {
			return err
		} else if !q.Equal(got) {
			return fmt.Errorf("core: INV_DT violated for %q: Q=%v (MV∸∇MV)⊎△MV=%v", name, q, got)
		}

	case Combined:
		// INV_C: PAST(L,Q) ≡ (MV ∸ ∇MV) ⊎ △MV.
		past, err := m.PastExpr(v)
		if err != nil {
			return err
		}
		p, err := algebra.Eval(past, m.db)
		if err != nil {
			return err
		}
		if got, err := m.diffApplied(v, mv); err != nil {
			return err
		} else if !p.Equal(got) {
			return fmt.Errorf("core: INV_C violated for %q: PAST(L,Q)=%v (MV∸∇MV)⊎△MV=%v", name, p, got)
		}
	}

	return m.checkMinimality(v, mv)
}

// diffApplied evaluates (MV ∸ ∇MV) ⊎ △MV.
func (m *Manager) diffApplied(v *View, mv *bag.Bag) (*bag.Bag, error) {
	dd, da, err := m.diffBags(v)
	if err != nil {
		return nil, err
	}
	return bag.UnionAll(bag.Monus(mv, dd), da), nil
}

// diffBags returns the view's current ∇MV/△MV contents, merging shard
// slices when the view is sharded.
func (m *Manager) diffBags(v *View) (*bag.Bag, *bag.Bag, error) {
	if v.sh != nil {
		return mergeTables(v.sh.dtDel), mergeTables(v.sh.dtAdd), nil
	}
	dd, err := m.db.Bag(v.dtDel)
	if err != nil {
		return nil, nil, err
	}
	da, err := m.db.Bag(v.dtAdd)
	if err != nil {
		return nil, nil, err
	}
	return dd, da, nil
}

// checkMinimality verifies the Section 5.2 minimality invariants:
// ▲R ⊑ R for every logged table, and ∇MV ⊑ MV for differential tables.
// With StrongMinimal set, additionally ∇MV min △MV ≡ ∅.
func (m *Manager) checkMinimality(v *View, mv *bag.Bag) error {
	for _, b := range v.bases {
		insName, ok := v.logIns[b]
		if !ok {
			continue
		}
		var ins *bag.Bag
		if v.sh != nil {
			ins = mergeTables(v.sh.logIns[b])
		} else {
			var err error
			ins, err = m.db.Bag(insName)
			if err != nil {
				return err
			}
		}
		base, err := m.db.Bag(b)
		if err != nil {
			return err
		}
		if !ins.SubBagOf(base) {
			return fmt.Errorf("core: minimality violated for %q: ▲%s ⋢ %s", v.Name, b, b)
		}
	}
	if v.dtDel != "" {
		dd, da, err := m.diffBags(v)
		if err != nil {
			return err
		}
		if !dd.SubBagOf(mv) {
			return fmt.Errorf("core: minimality violated for %q: ∇MV ⋢ MV", v.Name)
		}
		if v.StrongMinimal && !bag.Min(dd, da).Empty() {
			return fmt.Errorf("core: strong minimality violated for %q: ∇MV min △MV ≠ ∅", v.Name)
		}
	}
	return nil
}

// CheckConsistent verifies Q ≡ MV — the postcondition of every refresh_*.
func (m *Manager) CheckConsistent(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	q, err := algebra.Eval(v.Def, m.db)
	if err != nil {
		return err
	}
	mv, err := m.db.Bag(v.mvName)
	if err != nil {
		return err
	}
	if !q.Equal(mv) {
		return fmt.Errorf("core: view %q inconsistent after refresh: Q=%v MV=%v", name, q, mv)
	}
	return nil
}
