package core

import (
	"fmt"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/obs/trace"
	"dvm/internal/txn"
)

// Compiled delta programs: every maintenance expression a view needs is
// fixed at DefineView time, so instead of re-interpreting the algebra
// DAG per transaction, the manager lowers each one ONCE through
// algebra.Compile into fused closures with pre-resolved columns,
// slot-cached DAG nodes, and version-validated join indexes that
// persist across evaluations (see internal/algebra/compile.go). The
// tree-walking interpreter stays available — WithInterpretedDeltas
// switches every path back to it — and serves as the differential-
// testing oracle the compiled engine is checked against.

// compiledAssign is one compiled simultaneous-assignment bundle: the
// program's roots are the assignment right-hand sides, tables the
// install targets in root order, and state the reusable evaluation
// scratch (slot cache + join indexes). A state is reused only under the
// manager's single-writer discipline, never concurrently.
type compiledAssign struct {
	prog   *algebra.Program
	state  *algebra.State
	tables []string
}

// compiledDelta holds every program compiled for one view. Fields are
// nil when the scenario has no such path.
type compiledDelta struct {
	// safe is the makesafe program Execute installs per transaction:
	// the compiled twin of View.safeAssigns (IM's MV update, DT's
	// differential fold, BL/C's algebraic log merge for the
	// slow-append mode).
	safe *compiledAssign
	// fold is propagate_C's fold of ▼(L,Q)/▲(L,Q) into ∇MV/△MV
	// (non-sharded Combined views).
	fold *compiledAssign
	// refresh is refresh_BL's MV update from the log queries.
	refresh *compiledAssign
	// apply is refresh_DT / partial_refresh_C's MV update from the
	// differential tables (non-sharded views).
	apply *compiledAssign
	// def recomputes Q from scratch (RefreshRecompute).
	def *compiledAssign
	// shard is the per-shard [DEL, ADD] pair of a sharded Combined
	// view, with one persistent state per shard (each shard is
	// evaluated by at most one worker at a time, and pinning states to
	// shards keeps a shard's join indexes valid across propagates) plus
	// one for the merged-fallback plan.
	shard    *algebra.Program
	shardSt  []*algebra.State
	mergedSt *algebra.State
}

// WithInterpretedDeltas makes the manager evaluate every maintenance
// expression with the tree-walking interpreter instead of compiled
// delta programs. The two engines are differentially tested to agree;
// the flag exists for that cross-check, for ablation benchmarks (E16),
// and as an escape hatch.
func WithInterpretedDeltas() ManagerOption {
	return func(m *Manager) { m.interpretDeltas = true }
}

// SetInterpretedDeltas reconfigures the evaluation engine; it fails
// once views exist (their programs are compiled at definition time).
// The sql engine's WithInterpretedDeltas option routes through here.
func (m *Manager) SetInterpretedDeltas(on bool) error {
	if len(m.views) > 0 {
		return fmt.Errorf("core: cannot change delta engine with %d views defined", len(m.views))
	}
	m.interpretDeltas = on
	return nil
}

// compilePrograms lowers the view's precompiled incremental queries
// into compiled delta programs (no-op under WithInterpretedDeltas).
// Must run after compile(v) and the auxiliary tables exist; the time
// spent is recorded in delta_compile_ns.
func (m *Manager) compilePrograms(v *View) error {
	if m.interpretDeltas {
		return nil
	}
	start := time.Now()
	cd := &compiledDelta{}

	if len(v.safeAssigns) > 0 {
		ca, err := m.compileAssigns(v.safeAssigns)
		if err != nil {
			return err
		}
		cd.safe = ca
	}

	switch v.Scenario {
	case BaseLogs:
		upd, err := applyDelta(m.baseExpr(v.mvName), v.blDel, v.blAdd)
		if err != nil {
			return err
		}
		if cd.refresh, err = m.compileExprs([]string{v.mvName}, upd); err != nil {
			return err
		}
	case DiffTables:
		upd, err := applyDelta(m.baseExpr(v.mvName), m.baseExpr(v.dtDel), m.baseExpr(v.dtAdd))
		if err != nil {
			return err
		}
		if cd.apply, err = m.compileExprs([]string{v.mvName}, upd); err != nil {
			return err
		}
	case Combined:
		if v.sh == nil {
			fold, err := m.foldAssigns(v, v.blDel, v.blAdd)
			if err != nil {
				return err
			}
			if cd.fold, err = m.compileAssigns(fold); err != nil {
				return err
			}
			upd, err := applyDelta(m.baseExpr(v.mvName), m.baseExpr(v.dtDel), m.baseExpr(v.dtAdd))
			if err != nil {
				return err
			}
			if cd.apply, err = m.compileExprs([]string{v.mvName}, upd); err != nil {
				return err
			}
		} else {
			prog, err := algebra.Compile(v.shDel, v.shAdd)
			if err != nil {
				return err
			}
			cd.shard = prog
			cd.shardSt = make([]*algebra.State, v.sh.n)
			for i := range cd.shardSt {
				cd.shardSt[i] = prog.NewState()
			}
			cd.mergedSt = prog.NewState()
		}
	}

	def, err := m.compileExprs([]string{v.mvName}, v.Def)
	if err != nil {
		return err
	}
	cd.def = def

	v.cd = cd
	if v.met != nil {
		v.met.deltaCompileNs.Observe(int64(time.Since(start)))
	}
	return nil
}

// compileAssigns compiles the right-hand sides of a simultaneous
// assignment bundle as one DAG (they share subexpressions the same way
// the interpreter's shared memo exploits).
func (m *Manager) compileAssigns(assigns []txn.Assignment) (*compiledAssign, error) {
	tables := make([]string, len(assigns))
	exprs := make([]algebra.Expr, len(assigns))
	for i, a := range assigns {
		tables[i] = a.Table
		exprs[i] = a.Expr
	}
	return m.compileExprs(tables, exprs...)
}

// compileExprs compiles roots into a program whose i-th root installs
// into tables[i].
func (m *Manager) compileExprs(tables []string, roots ...algebra.Expr) (*compiledAssign, error) {
	prog, err := algebra.Compile(roots...)
	if err != nil {
		return nil, err
	}
	return &compiledAssign{prog: prog, state: prog.NewState(), tables: tables}, nil
}

// evalCompiled runs one compiled program against the live database,
// recording compiled_eval_ns / index_probe_tuples and emitting the
// core.eval.compiled span under parent with its explicit duration.
func (m *Manager) evalCompiled(v *View, ca *compiledAssign, parent *trace.Span) ([]*bag.Bag, error) {
	start := time.Now()
	outs, stats, err := ca.prog.Eval(ca.state, m.db)
	dur := time.Since(start)
	if err != nil {
		return nil, err
	}
	m.observeCompiled(v, parent, dur, stats.IndexProbeTuples)
	return outs, nil
}

// observeCompiled records one compiled evaluation's metrics and span.
// Shard workers do not call this; their coordinator does, post-hoc,
// with the worker-measured duration (obs writes stay single-threaded
// per family and workers never touch the tracer).
func (m *Manager) observeCompiled(v *View, parent *trace.Span, dur time.Duration, probed int64) {
	if v.met != nil {
		v.met.compiledEvalNs.Observe(int64(dur))
		v.met.indexProbeTuples.Add(probed)
	}
	sp := parent.StartChild(trace.SpanEvalCompiled,
		trace.Str("view", v.Name), trace.Int("index_probe_tuples", probed))
	sp.EndExplicit(dur)
}

// runCompiledAssigns evaluates a compiled assignment bundle and
// installs each root into its target table. Simultaneous semantics
// hold because Program.Eval computes every root against the pre-state
// before anything is installed.
func (m *Manager) runCompiledAssigns(v *View, ca *compiledAssign, parent *trace.Span) error {
	outs, err := m.evalCompiled(v, ca, parent)
	if err != nil {
		return err
	}
	for i, name := range ca.tables {
		tb, err := m.db.Table(name)
		if err != nil {
			return err
		}
		tb.Replace(outs[i])
	}
	return nil
}

// applyCompiledSafe is Execute's compiled makesafe step for one view:
// the compiled twin of appending View.safeAssigns to the transaction's
// assignment bundle. Cross-view staging is unnecessary — no view's
// right-hand sides read another view's targets (auxiliary tables are
// internal, and views may only reference external tables) — so the
// per-view evaluate-then-install preserves the simultaneous (T1+T2)
// semantics.
func (m *Manager) applyCompiledSafe(v *View, parent *trace.Span) error {
	return m.runCompiledAssigns(v, v.cd.safe, parent)
}
