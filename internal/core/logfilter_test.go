package core

import (
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// filteredRetail registers the Example 1.1 view with relevant-update
// filters matching its single-table conjuncts: only nonzero-quantity
// sales and High customers ever enter the logs.
func filteredRetail(t *testing.T, sc Scenario) *Manager {
	t.Helper()
	db, def := retailDB(t)
	m := NewManager(db)
	_, err := m.DefineView("hv", def, sc,
		WithLogFilter("sales", algebra.Neq(algebra.A("s.quantity"), algebra.C(0))),
		WithLogFilter("customer", algebra.Eq(algebra.A("c.score"), algebra.C("High"))),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLogFilterLifecycle(t *testing.T) {
	for _, sc := range []Scenario{BaseLogs, Combined} {
		m := filteredRetail(t, sc)
		steps := []txn.Txn{
			txn.Insert("sales", bag.Of(saleRow(0, 1, 2), saleRow(0, 2, 0))), // one relevant, one irrelevant
			txn.Insert("sales", bag.Of(saleRow(1, 3, 0))),                   // all irrelevant (Low cust is still logged — filter is per-table)
			{
				"customer": {
					Delete: bag.Of(schema.Row(1, "cust", "addr", "Low")),
					Insert: bag.Of(schema.Row(1, "cust", "addr", "High")),
				},
			},
			txn.Delete("sales", bag.Of(saleRow(0, 1, 2))),
		}
		for i, tx := range steps {
			if err := m.Execute(tx); err != nil {
				t.Fatalf("%v step %d: %v", sc, i, err)
			}
			if err := m.CheckInvariant("hv"); err != nil {
				t.Fatalf("%v step %d: %v", sc, i, err)
			}
		}
		if sc == Combined {
			if err := m.Propagate("hv"); err != nil {
				t.Fatal(err)
			}
			if err := m.CheckInvariant("hv"); err != nil {
				t.Fatalf("%v after propagate: %v", sc, err)
			}
		}
		if err := m.Refresh("hv"); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckConsistent("hv"); err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
	}
}

func TestLogFilterDropsIrrelevantRows(t *testing.T) {
	m := filteredRetail(t, BaseLogs)
	v, _ := m.View("hv")
	// Insert 10 zero-quantity (irrelevant) and 3 relevant sales.
	rel := bag.New()
	irr := bag.New()
	for i := 0; i < 10; i++ {
		irr.Add(saleRow(i%10, 90+i, 0), 1)
	}
	for i := 0; i < 3; i++ {
		rel.Add(saleRow(i, 80+i, 1), 1)
	}
	if err := m.Execute(txn.Insert("sales", bag.UnionAll(rel, irr))); err != nil {
		t.Fatal(err)
	}
	logIns, _ := m.DB().Bag(v.logIns["sales"])
	if logIns.Len() != 3 {
		t.Fatalf("log has %d rows, want only the 3 relevant ones: %v", logIns.Len(), logIns)
	}
	if err := m.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestLogFilterSlowPathAgrees(t *testing.T) {
	fast := filteredRetail(t, Combined)
	slow := filteredRetail(t, Combined)
	slow.SetSlowLogAppend(true)
	fv, _ := fast.View("hv")
	sv, _ := slow.View("hv")
	tx := txn.Insert("sales", bag.Of(saleRow(0, 1, 2), saleRow(0, 2, 0), saleRow(2, 3, 1)))
	if err := fast.Execute(tx); err != nil {
		t.Fatal(err)
	}
	if err := slow.Execute(tx); err != nil {
		t.Fatal(err)
	}
	for _, b := range fv.BaseTables() {
		fb, _ := fast.DB().Bag(fv.logIns[b])
		sb, _ := slow.DB().Bag(sv.logIns[b])
		if !fb.Equal(sb) {
			t.Fatalf("filtered logs diverge between fast and slow paths for %s:\n%v\nvs\n%v", b, fb, sb)
		}
	}
}

func TestLogFilterValidation(t *testing.T) {
	db, def := retailDB(t)

	// Filter on a table the view does not reference.
	m := NewManager(db)
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	if _, err := db.Create("other", sch, storage.External); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DefineView("v1", def, BaseLogs,
		WithLogFilter("other", algebra.Gt(algebra.A("x"), algebra.C(0)))); err == nil {
		t.Fatal("filter on unreferenced table accepted")
	}

	// Predicate that does not bind against the table schema.
	if _, err := m.DefineView("v2", def, BaseLogs,
		WithLogFilter("sales", algebra.Gt(algebra.A("nope"), algebra.C(0)))); err == nil {
		t.Fatal("unbindable filter accepted")
	}

	// Non-logging scenario.
	if _, err := m.DefineView("v3", def, Immediate,
		WithLogFilter("sales", algebra.Neq(algebra.A("s.quantity"), algebra.C(0)))); err == nil {
		t.Fatal("filter on Immediate view accepted")
	}

	// Shared logs.
	db2, def2 := retailDB(t)
	ms := NewManager(db2, WithSharedLogs())
	if _, err := ms.DefineView("v4", def2, Combined,
		WithLogFilter("sales", algebra.Neq(algebra.A("s.quantity"), algebra.C(0)))); err == nil {
		t.Fatal("filter with shared logs accepted")
	}

	// A filter that visibly changes the view on the current state:
	// filtering sales to quantity = 0 removes every view row.
	db3, def3 := retailDB(t)
	m3 := NewManager(db3)
	if _, err := m3.DefineView("v5", def3, BaseLogs,
		WithLogFilter("sales", algebra.Eq(algebra.A("s.quantity"), algebra.C(0)))); err == nil {
		t.Fatal("view-changing filter accepted")
	}
}
