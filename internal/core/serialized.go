package core

import (
	"sync"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/txn"
)

// Serialized makes a Manager safe for concurrent use — a first answer to
// the paper's Section 7 question about concurrency control with
// materialized views. Writers (transactions and every maintenance
// operation) serialize behind one mutex, which is exactly the paper's
// model: transactions are functions from states to states, applied one
// at a time. Readers (Query) bypass the mutex entirely and synchronize
// only through the per-view reader/writer locks, so analyst queries run
// concurrently with each other and block only while a refresh holds a
// view's exclusive lock.
type Serialized struct {
	mu sync.Mutex
	m  *Manager
}

// NewSerialized wraps a manager. The wrapped manager must not be used
// directly afterwards.
func NewSerialized(m *Manager) *Serialized { return &Serialized{m: m} }

// Execute runs a user transaction through makesafe, serialized.
func (s *Serialized) Execute(t txn.Txn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Execute(t)
}

// Refresh brings a view up to date, serialized against other writers.
func (s *Serialized) Refresh(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Refresh(name)
}

// Propagate folds a Combined view's log into its differential tables.
func (s *Serialized) Propagate(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Propagate(name)
}

// PartialRefresh applies a view's precomputed differential tables.
func (s *Serialized) PartialRefresh(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.PartialRefresh(name)
}

// RefreshRecompute recomputes a view from scratch.
func (s *Serialized) RefreshRecompute(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.RefreshRecompute(name)
}

// CheckInvariant verifies a view's scenario invariant, serialized (it
// reads auxiliary state a concurrent writer could be mid-update on).
func (s *Serialized) CheckInvariant(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.CheckInvariant(name)
}

// CheckConsistent verifies Q ≡ MV, serialized.
func (s *Serialized) CheckConsistent(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.CheckConsistent(name)
}

// Query reads the view's materialized table under its shared lock.
// Concurrent with other readers; blocks only during a refresh's
// exclusive section.
func (s *Serialized) Query(name string) (*bag.Bag, error) {
	return s.m.Query(name)
}

// QueryFresh answers at the view's CURRENT value (see Manager.QueryFresh).
// Unlike Query it reads auxiliary tables a concurrent writer could be
// mid-update on, so it serializes with the writers.
func (s *Serialized) QueryFresh(name string, pred algebra.Predicate) (*bag.Bag, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.QueryFresh(name, pred)
}

// Manager exposes the wrapped manager for setup (DefineView etc.) BEFORE
// concurrent operation starts.
func (s *Serialized) Manager() *Manager { return s.m }
