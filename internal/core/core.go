// Package core implements the paper's contribution: deferred view
// maintenance as invariant maintenance (Section 3) with the algorithms of
// Figure 3. It manages materialized views under four scenarios:
//
//	Immediate  — INV_IM:  Q ≡ MV
//	BaseLogs   — INV_BL:  PAST(L,Q) ≡ MV
//	DiffTables — INV_DT:  Q ≡ (MV ∸ ∇MV) ⊎ △MV
//	Combined   — INV_C:   PAST(L,Q) ≡ (MV ∸ ∇MV) ⊎ △MV
//
// User transactions are routed through Execute, which augments them with
// the makesafe_* bookkeeping for every registered view and applies the
// whole thing with simultaneous (T1 + T2) semantics. Refresh, Propagate,
// and PartialRefresh implement the corresponding Figure 3 transactions.
// View downtime (exclusive-lock hold during refresh) is measured through
// a txn.LockManager.
package core

import (
	"fmt"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/delta"
	"dvm/internal/obs"
	"dvm/internal/obs/runtimebridge"
	"dvm/internal/obs/trace"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// Scenario selects a maintenance scenario (Figure 1).
type Scenario uint8

// The four scenarios of the paper.
const (
	Immediate  Scenario = iota // INV_IM
	BaseLogs                   // INV_BL
	DiffTables                 // INV_DT
	Combined                   // INV_C
)

// String names the scenario after its invariant.
func (s Scenario) String() string {
	switch s {
	case Immediate:
		return "IM"
	case BaseLogs:
		return "BL"
	case DiffTables:
		return "DT"
	case Combined:
		return "C"
	}
	return fmt.Sprintf("Scenario(%d)", uint8(s))
}

// View is a materialized view registered with a Manager.
type View struct {
	Name     string
	Def      algebra.Expr
	Scenario Scenario

	// StrongMinimal applies the Section 4.1 strong-minimality post-pass
	// to incremental queries, keeping ∇MV/△MV disjoint.
	StrongMinimal bool

	mvName string   // the MV table
	bases  []string // base tables referenced by Def

	// BaseLogs / Combined: per-base log tables (▼R, ▲R).
	logDel map[string]string
	logIns map[string]string

	// logFilter restricts what makesafe records per base table
	// (relevant-update detection, see WithLogFilter). logFilterFn holds
	// the predicates bound against each table's schema.
	logFilter   map[string]algebra.Predicate
	logFilterFn map[string]func(schema.Tuple) bool

	// DiffTables / Combined: view differential tables (∇MV, △MV).
	dtDel string
	dtAdd string

	// Precompiled incremental queries. Transaction-relative queries read
	// the shared per-base scratch tables (∇R/△R of the current txn);
	// log-relative queries read this view's log tables.
	imDel, imAdd algebra.Expr // ∇(T,Q), △(T,Q): pre-update state
	blDel, blAdd algebra.Expr // ▼(L,Q), ▲(L,Q): post-update state

	// Sharded Combined views additionally carry the per-shard DEL/ADD
	// pair (evaluated against one shard's slice through a shardSource;
	// see shard.go) and the physical shard layout. In sharded mode the
	// logDel/logIns/dtDel/dtAdd names above are LOGICAL shard-group
	// names, and blDel/blAdd read the ⊎-of-shards union expressions.
	shDel, shAdd algebra.Expr
	sh           *viewShards

	// Precompiled makesafe assignments (Figure 3), reused every Execute.
	safeAssigns []txn.Assignment

	// cd holds the view's compiled delta programs (nil under
	// WithInterpretedDeltas; see compiled.go).
	cd *compiledDelta

	// met caches this view's obs instruments (see metrics.go).
	met *viewMetrics

	Stats ViewStats
}

// MVTable returns the name of the view's materialized table.
func (v *View) MVTable() string { return v.mvName }

// IncrementalQueries exposes the view's precompiled incremental queries
// for inspection (EXPLAIN): for Immediate/DiffTables views the
// pre-update pair (∇(T,Q), △(T,Q)) over the transaction scratch tables;
// for BaseLogs/Combined views the post-update pair (▼(L,Q), ▲(L,Q))
// over the view's log tables. Nil for kinds the scenario does not use.
func (v *View) IncrementalQueries() (del, add algebra.Expr) {
	switch v.Scenario {
	case Immediate, DiffTables:
		return v.imDel, v.imAdd
	default:
		return v.blDel, v.blAdd
	}
}

// InvariantString renders the scenario's Figure 1 invariant with the
// view's own table names.
func (v *View) InvariantString() string {
	switch v.Scenario {
	case Immediate:
		return fmt.Sprintf("Q ≡ %s", v.mvName)
	case BaseLogs:
		return fmt.Sprintf("PAST(L,Q) ≡ %s", v.mvName)
	case DiffTables:
		return fmt.Sprintf("Q ≡ (%s ∸ %s) ⊎ %s", v.mvName, v.dtDel, v.dtAdd)
	case Combined:
		return fmt.Sprintf("PAST(L,Q) ≡ (%s ∸ %s) ⊎ %s", v.mvName, v.dtDel, v.dtAdd)
	}
	return "?"
}

// BaseTables returns the base tables the view definition references.
func (v *View) BaseTables() []string { return append([]string(nil), v.bases...) }

// ViewStats accumulates per-view maintenance costs.
type ViewStats struct {
	MakeSafeTime  time.Duration // time spent in makesafe bookkeeping
	MakeSafeOps   int
	RefreshTime   time.Duration // wall time of refresh transactions
	Refreshes     int
	PropagateTime time.Duration
	Propagates    int
	PartialTime   time.Duration
	PartialCount  int
	RecomputeTime time.Duration
	Recomputes    int
	LogTuples     int // tuples appended to logs by makesafe
	DiffTuples    int // tuples folded into differential tables
}

// Manager owns a database plus the registered views and performs all
// maintenance. It is not safe for concurrent writers; concurrent readers
// (Query) are safe against refreshes through per-view locks.
type Manager struct {
	db    *storage.Database
	locks *txn.LockManager
	views map[string]*View
	order []string // registration order for deterministic iteration

	scratchDel map[string]string // base table -> scratch ∇R table
	scratchIns map[string]string // base table -> scratch △R table

	// interpretDeltas disables the delta-program compiler: every
	// maintenance expression is evaluated by the tree-walking
	// interpreter instead of compiled programs (see compiled.go).
	interpretDeltas bool

	// slowLogAppend disables the O(|∇R|+|△R|) in-place log fast path,
	// forcing the algebraic makesafe_BL assignments instead. The two are
	// equivalent (property-tested); the flag exists for that cross-check
	// and for ablation benchmarks.
	slowLogAppend bool

	// shared, when non-nil, replaces per-view log upkeep with shared
	// per-table logs (see WithSharedLogs).
	shared *sharedState

	// shards > 1 partitions every Combined view's logs, diff tables,
	// and base mirrors into that many hash shards (see shard.go);
	// mirrors holds the co-partitioned base copies, refcounted across
	// views.
	shards  int
	mirrors map[string]*mirrorGroup

	// obs is the manager's metrics registry; every maintenance entry
	// point records into it (see metrics.go and docs/observability.md).
	obs       *obs.Registry
	txnExecNs *obs.Histogram

	// tracer captures per-transaction span trees (see trace.go and
	// docs/observability.md "Tracing"); cur is the active statement
	// span maintenance entry points parent under. cur follows the
	// manager's single-writer discipline.
	tracer *trace.Tracer
	cur    *trace.Span

	// bridge, when started, polls runtime/metrics into obs (see
	// internal/obs/runtimebridge); Close stops it.
	bridge *runtimebridge.Bridge
}

// NewManager wraps a database.
func NewManager(db *storage.Database, opts ...ManagerOption) *Manager {
	reg := obs.NewRegistry()
	m := &Manager{
		db:         db,
		locks:      txn.NewLockManager(),
		views:      make(map[string]*View),
		scratchDel: make(map[string]string),
		scratchIns: make(map[string]string),
		obs:        reg,
		txnExecNs:  reg.Histogram("txn_exec_ns", ""),
		tracer:     trace.NewTracer(0),
	}
	m.locks.SetRegistry(reg)
	db.SetMetrics(reg)
	db.SetTracer(m.tracer)
	for _, o := range opts {
		o(m)
	}
	return m
}

// SetSlowLogAppend forces Execute to maintain logs through the
// algebraic Figure 3 assignments (O(|log|) per transaction) instead of
// the equivalent in-place appends (O(|change|)). For tests and
// ablations.
func (m *Manager) SetSlowLogAppend(on bool) { m.slowLogAppend = on }

// DB exposes the underlying database (for queries and tests).
func (m *Manager) DB() *storage.Database { return m.db }

// Locks exposes the lock manager (for downtime statistics).
func (m *Manager) Locks() *txn.LockManager { return m.locks }

// Obs exposes the manager's metrics registry: counters, gauges, and
// histograms for every maintenance operation, documented in
// docs/observability.md. Snapshot it for reporting, or serve it over
// HTTP with obs.Handler.
func (m *Manager) Obs() *obs.Registry { return m.obs }

// StartRuntimeBridge starts (once) the runtime/metrics bridge: a
// background poller folding Go runtime health — goroutines, live heap,
// GC cycles/pauses, scheduler latency — into this manager's registry
// every interval (interval <= 0 defaults to one second). The first
// poll runs synchronously, so the go_* families carry real readings on
// return. Stop it with Close.
func (m *Manager) StartRuntimeBridge(interval time.Duration) {
	if m.bridge == nil {
		m.bridge = runtimebridge.New(m.obs)
	}
	m.bridge.Start(interval)
}

// WithRuntimeBridge starts the runtime/metrics bridge at construction;
// the caller owns stopping it via Close.
func WithRuntimeBridge(interval time.Duration) ManagerOption {
	return func(m *Manager) { m.StartRuntimeBridge(interval) }
}

// Close stops the manager's background pollers (today: the runtime
// bridge). Idempotent and safe on a manager that never started one;
// the manager remains usable for maintenance afterwards.
func (m *Manager) Close() error {
	if m.bridge == nil {
		return nil
	}
	return m.bridge.Close()
}

// View returns a registered view.
func (m *Manager) View(name string) (*View, error) {
	v, ok := m.views[name]
	if !ok {
		return nil, fmt.Errorf("core: no view %q", name)
	}
	return v, nil
}

// Views returns all registered views in registration order.
func (m *Manager) Views() []*View {
	out := make([]*View, len(m.order))
	for i, n := range m.order {
		out[i] = m.views[n]
	}
	return out
}

// Option configures a view at definition time.
type Option func(*View)

// WithStrongMinimality turns on the strong-minimality post-pass for the
// view's incremental queries (Section 4.1).
func WithStrongMinimality() Option {
	return func(v *View) { v.StrongMinimal = true }
}

// WithLogFilter records only the RELEVANT changes of one base table in
// the view's log: tuples satisfying pred. This is the classic
// relevant-update detection of the snapshot literature the paper cites
// ([KR87], [SP89]) lifted into the Figure 3 framework.
//
// Correctness requires that the filter not change the view:
// Q ≡ Q[σ_pred(R)/R] must hold (e.g. pred is a conjunct of Q's selection
// that mentions only R's columns). DefineView enforces a necessary
// condition by checking the equivalence on the current state; the
// maintenance invariants then keep verifying it on every state the
// tests visit. Irrelevant rows never enter the log, so both log volume
// and refresh work scale with the view's selectivity.
//
// Not supported together with shared logs (different views want
// different filters over one shared stream).
func WithLogFilter(table string, pred algebra.Predicate) Option {
	return func(v *View) {
		if v.logFilter == nil {
			v.logFilter = map[string]algebra.Predicate{}
		}
		v.logFilter[table] = pred
	}
}

// DefineView registers a materialized view, creates its MV table and the
// scenario's auxiliary tables, initializes MV to the current value of the
// definition, and precompiles the incremental queries.
func (m *Manager) DefineView(name string, def algebra.Expr, sc Scenario, opts ...Option) (*View, error) {
	if _, dup := m.views[name]; dup {
		return nil, fmt.Errorf("core: view %q already defined", name)
	}
	bases := algebra.BaseNames(def)
	for _, b := range bases {
		tb, err := m.db.Table(b)
		if err != nil {
			return nil, fmt.Errorf("core: view %q: %w", name, err)
		}
		if tb.Kind() != storage.External {
			return nil, fmt.Errorf("core: view %q references internal table %q", name, b)
		}
	}

	v := &View{
		Name:     name,
		Def:      def,
		Scenario: sc,
		mvName:   "__mv_" + name,
		bases:    bases,
		logDel:   map[string]string{},
		logIns:   map[string]string{},
	}
	for _, o := range opts {
		o(v)
	}
	if err := m.validateLogFilters(v); err != nil {
		return nil, err
	}

	if _, err := m.db.Create(v.mvName, def.Schema(), storage.Internal); err != nil {
		return nil, err
	}
	cleanup := func(err error) (*View, error) {
		m.dropShards(v) // no-op unless a sharded layout was set up
		_ = m.db.Drop(v.mvName)
		return nil, err
	}

	// Materialize the initial contents.
	init, err := algebra.Eval(def, m.db)
	if err != nil {
		return cleanup(err)
	}
	mv, _ := m.db.Table(v.mvName)
	mv.Replace(init)

	// Shared scratch tables holding the current transaction's ∇R/△R.
	for _, b := range bases {
		if _, ok := m.scratchDel[b]; ok {
			continue
		}
		tb, _ := m.db.Table(b)
		dn, in := "__tx_del_"+b, "__tx_ins_"+b
		if _, err := m.db.Create(dn, tb.Schema(), storage.Internal); err != nil {
			return cleanup(err)
		}
		if _, err := m.db.Create(in, tb.Schema(), storage.Internal); err != nil {
			return cleanup(err)
		}
		m.scratchDel[b] = dn
		m.scratchIns[b] = in
	}

	// A Combined view under WithShards gets a sharded physical layout
	// (shard groups for logs and diffs, co-partitioned base mirrors)
	// instead of the plain auxiliary tables. Other scenarios are
	// unaffected: sharding targets the propagate/partial-refresh
	// pipeline, which only the Combined scenario has.
	sharded := m.Shards() > 1 && sc == Combined
	if sharded {
		if err := m.setupShards(v); err != nil {
			return cleanup(err)
		}
	}
	switch sc {
	case BaseLogs, Combined:
		if sharded {
			break
		}
		for _, b := range bases {
			tb, _ := m.db.Table(b)
			dn := fmt.Sprintf("__log_del_%s__%s", b, name)
			in := fmt.Sprintf("__log_ins_%s__%s", b, name)
			if _, err := m.db.Create(dn, tb.Schema(), storage.Internal); err != nil {
				return cleanup(err)
			}
			if _, err := m.db.Create(in, tb.Schema(), storage.Internal); err != nil {
				return cleanup(err)
			}
			v.logDel[b] = dn
			v.logIns[b] = in
		}
		if m.shared != nil {
			if err := m.registerSharedView(v); err != nil {
				return cleanup(err)
			}
		}
	}
	switch sc {
	case DiffTables, Combined:
		if sharded {
			break
		}
		v.dtDel = "__dmv_del_" + name
		v.dtAdd = "__dmv_add_" + name
		if _, err := m.db.Create(v.dtDel, def.Schema(), storage.Internal); err != nil {
			return cleanup(err)
		}
		if _, err := m.db.Create(v.dtAdd, def.Schema(), storage.Internal); err != nil {
			return cleanup(err)
		}
	}

	// Instruments exist before compilation so delta_compile_ns can be
	// observed (families from a failed define linger at zero; harmless).
	v.met = newViewMetrics(m.obs, name)
	if err := m.compile(v); err != nil {
		return cleanup(err)
	}
	if err := m.compilePrograms(v); err != nil {
		return cleanup(err)
	}

	m.views[name] = v
	m.order = append(m.order, name)
	return v, nil
}

// DropView unregisters a view and drops its MV and auxiliary tables.
// Shared scratch tables stay (other views may use them).
func (m *Manager) DropView(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	_ = m.db.Drop(v.mvName)
	if v.sh != nil {
		m.dropShards(v)
	} else {
		for _, b := range v.bases {
			if n, ok := v.logDel[b]; ok {
				_ = m.db.Drop(n)
			}
			if n, ok := v.logIns[b]; ok {
				_ = m.db.Drop(n)
			}
		}
		if v.dtDel != "" {
			_ = m.db.Drop(v.dtDel)
			_ = m.db.Drop(v.dtAdd)
		}
	}
	m.unregisterSharedView(v)
	delete(m.views, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// validateLogFilters checks the preconditions of WithLogFilter: the
// scenario logs, shared logs are off, each filtered table is a base of
// the view, the predicate binds against the table's schema, and the
// equivalence Q ≡ Q[σ_p(R)/R] holds on the current state (a necessary
// condition; the caller warrants it for all states). It also binds the
// predicates for the append fast path.
func (m *Manager) validateLogFilters(v *View) error {
	if len(v.logFilter) == 0 {
		return nil
	}
	if v.Scenario != BaseLogs && v.Scenario != Combined {
		return fmt.Errorf("core: view %q: log filters need a logging scenario, not %v", v.Name, v.Scenario)
	}
	if m.shared != nil {
		return fmt.Errorf("core: view %q: log filters are not supported with shared logs", v.Name)
	}
	v.logFilterFn = map[string]func(schema.Tuple) bool{}
	repl := map[string]algebra.Expr{}
	for table, pred := range v.logFilter {
		found := false
		for _, b := range v.bases {
			if b == table {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("core: view %q: log filter on %q, which the view does not reference", v.Name, table)
		}
		tb, err := m.db.Table(table)
		if err != nil {
			return err
		}
		fn, err := pred.Bind(tb.Schema())
		if err != nil {
			return fmt.Errorf("core: view %q: log filter on %q: %w", v.Name, table, err)
		}
		v.logFilterFn[table] = fn
		sel, err := algebra.NewSelect(pred, algebra.NewBase(table, tb.Schema()))
		if err != nil {
			return err
		}
		repl[table] = sel
	}
	filtered, err := algebra.Substitute(v.Def, repl)
	if err != nil {
		return err
	}
	want, err := algebra.Eval(v.Def, m.db)
	if err != nil {
		return err
	}
	got, err := algebra.Eval(filtered, m.db)
	if err != nil {
		return err
	}
	if !got.Equal(want) {
		return fmt.Errorf("core: view %q: log filter changes the view on the current state (Q ≢ Q[σ_p(R)/R])", v.Name)
	}
	return nil
}

// txnChangeSet builds the transaction-relative change set: each base
// table's ∇R/△R come from the shared scratch tables.
func (m *Manager) txnChangeSet(v *View) delta.ChangeSet {
	cs := delta.ChangeSet{}
	for _, b := range v.bases {
		tb, _ := m.db.Table(b)
		cs[b] = struct {
			Deleted  algebra.Expr
			Inserted algebra.Expr
		}{
			Deleted:  algebra.NewBase(m.scratchDel[b], tb.Schema()),
			Inserted: algebra.NewBase(m.scratchIns[b], tb.Schema()),
		}
	}
	return cs
}

// logChangeSet builds the log-relative change set over the view's own
// log tables. For a sharded view each log is the ⊎ of its shard
// slices, so everything compiled from this set (blDel/blAdd, PastExpr)
// keeps working against the live database unchanged.
func (m *Manager) logChangeSet(v *View) delta.ChangeSet {
	cs := delta.ChangeSet{}
	for _, b := range v.bases {
		tb, _ := m.db.Table(b)
		var dE, iE algebra.Expr
		if v.sh != nil {
			dE = shardUnionExpr(v.sh.logDel[b])
			iE = shardUnionExpr(v.sh.logIns[b])
		} else {
			dE = algebra.NewBase(v.logDel[b], tb.Schema())
			iE = algebra.NewBase(v.logIns[b], tb.Schema())
		}
		cs[b] = struct {
			Deleted  algebra.Expr
			Inserted algebra.Expr
		}{Deleted: dE, Inserted: iE}
	}
	return cs
}

// compile precompiles the view's incremental queries and makesafe
// assignments for its scenario.
func (m *Manager) compile(v *View) error {
	switch v.Scenario {
	case Immediate, DiffTables:
		d, a, err := delta.PreUpdate(m.txnChangeSet(v), v.Def)
		if err != nil {
			return err
		}
		if v.StrongMinimal {
			if d, a, err = delta.StrengthenMinimality(d, a); err != nil {
				return err
			}
		}
		v.imDel, v.imAdd = algebra.OptimizePair(d, a)
	}
	switch v.Scenario {
	case BaseLogs, Combined:
		d, a, err := delta.PostUpdate(m.logChangeSet(v), v.Def)
		if err != nil {
			return err
		}
		if v.StrongMinimal {
			if d, a, err = delta.StrengthenMinimality(d, a); err != nil {
				return err
			}
		}
		v.blDel, v.blAdd = algebra.OptimizePair(d, a)
		if v.sh != nil {
			// The per-shard DEL/ADD pair workers evaluate (see shard.go).
			if err := m.compileShardQueries(v); err != nil {
				return err
			}
		}
	}

	switch v.Scenario {
	case Immediate:
		// makesafe_IM: MV := (MV ∸ ∇(T,Q)) ⊎ △(T,Q).
		mvE := m.baseExpr(v.mvName)
		upd, err := applyDelta(mvE, v.imDel, v.imAdd)
		if err != nil {
			return err
		}
		v.safeAssigns = []txn.Assignment{{Table: v.mvName, Expr: upd}}

	case BaseLogs, Combined:
		if v.sh != nil {
			// Sharded views always append through the shard-local fast
			// path (appendToLogsSharded): the algebraic reference form
			// would need one assignment per shard against tables the
			// planner cannot name statically.
			break
		}
		// makesafe_BL (= makesafe_C): extend the log, weakly minimally:
		//   ▼R := ▼R ⊎ (∇R ∸ ▲R)
		//   ▲R := (▲R ∸ ∇R) ⊎ △R
		// Execute normally runs these via the O(|∇R|+|△R|) in-place fast
		// path (appendToLogs); the algebraic assignments built here are
		// the reference form, used by tests to cross-check the fast path
		// and by callers that disable it.
		for _, b := range v.bases {
			tb, _ := m.db.Table(b)
			sch := tb.Schema()
			delLog := algebra.NewBase(v.logDel[b], sch)
			insLog := algebra.NewBase(v.logIns[b], sch)
			var txDel, txIns algebra.Expr = algebra.NewBase(m.scratchDel[b], sch), algebra.NewBase(m.scratchIns[b], sch)
			if pred, ok := v.logFilter[b]; ok {
				// Relevant-update detection: only σ_p of the change
				// reaches the log (WithLogFilter).
				sd, err := algebra.NewSelect(pred, txDel)
				if err != nil {
					return err
				}
				si, err := algebra.NewSelect(pred, txIns)
				if err != nil {
					return err
				}
				txDel, txIns = sd, si
			}

			newOld, err := algebra.NewMonus(txDel, insLog) // ∇R ∸ ▲R
			if err != nil {
				return err
			}
			delRHS, err := algebra.NewUnionAll(delLog, newOld)
			if err != nil {
				return err
			}
			insKeep, err := algebra.NewMonus(insLog, txDel) // ▲R ∸ ∇R
			if err != nil {
				return err
			}
			insRHS, err := algebra.NewUnionAll(insKeep, txIns)
			if err != nil {
				return err
			}
			v.safeAssigns = append(v.safeAssigns,
				txn.Assignment{Table: v.logDel[b], Expr: delRHS},
				txn.Assignment{Table: v.logIns[b], Expr: insRHS},
			)
		}

	case DiffTables:
		// makesafe_DT: fold ∇(T,Q)/△(T,Q) into the differential tables:
		//   ∇MV := ∇MV ⊎ (∇(T,Q) ∸ △MV)
		//   △MV := (△MV ∸ ∇(T,Q)) ⊎ △(T,Q)
		assigns, err := m.foldAssigns(v, v.imDel, v.imAdd)
		if err != nil {
			return err
		}
		v.safeAssigns = assigns
	}
	return nil
}

// foldAssigns builds the composition-lemma fold of (del, add) into the
// view's differential tables (used by makesafe_DT and propagate_C). When
// the view uses strong minimality, the folded tables are additionally
// kept disjoint — the "strongly minimal analog of Lemma 3" the paper
// sketches in Section 5.3: tuples present in both ∇MV and △MV cancel,
// which preserves (MV ∸ ∇MV) ⊎ △MV because ∇MV ⊑ MV.
func (m *Manager) foldAssigns(v *View, del, add algebra.Expr) ([]txn.Assignment, error) {
	dtDel := m.baseExpr(v.dtDel)
	dtAdd := m.baseExpr(v.dtAdd)
	newDel, err := algebra.NewMonus(del, dtAdd) // del ∸ △MV
	if err != nil {
		return nil, err
	}
	delRHS, err := algebra.NewUnionAll(dtDel, newDel)
	if err != nil {
		return nil, err
	}
	addKeep, err := algebra.NewMonus(dtAdd, del) // △MV ∸ del
	if err != nil {
		return nil, err
	}
	addRHS, err := algebra.NewUnionAll(addKeep, add)
	if err != nil {
		return nil, err
	}
	var delOut, addOut algebra.Expr = delRHS, addRHS
	if v.StrongMinimal {
		if delOut, addOut, err = delta.StrengthenMinimality(delOut, addOut); err != nil {
			return nil, err
		}
	}
	return []txn.Assignment{
		{Table: v.dtDel, Expr: delOut},
		{Table: v.dtAdd, Expr: addOut},
	}, nil
}

// baseExpr builds a Base reference for an existing table.
func (m *Manager) baseExpr(name string) algebra.Expr {
	tb, err := m.db.Table(name)
	if err != nil {
		panic(fmt.Sprintf("core: baseExpr(%s): %v", name, err))
	}
	return algebra.NewBase(name, tb.Schema())
}

// applyDelta builds (target ∸ del) ⊎ add.
func applyDelta(target, del, add algebra.Expr) (algebra.Expr, error) {
	mo, err := algebra.NewMonus(target, del)
	if err != nil {
		return nil, err
	}
	return algebra.NewUnionAll(mo, add)
}

// emptyAssign builds Table := ∅.
func (m *Manager) emptyAssign(name string) txn.Assignment {
	tb, err := m.db.Table(name)
	if err != nil {
		panic(fmt.Sprintf("core: emptyAssign(%s): %v", name, err))
	}
	return txn.Assignment{Table: name, Expr: algebra.Empty(tb.Schema())}
}
