package core

import (
	"fmt"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/obs"
	"dvm/internal/obs/trace"
	"dvm/internal/txn"
)

// Refresh brings the view table up to date ({INV_*} refresh_* {Q ≡ MV},
// Figure 3):
//
//	IM — no-op (INV_IM already implies Q ≡ MV);
//	BL — MV := (MV ∸ ▼(L,Q)) ⊎ ▲(L,Q); L := ∅, holding the MV write
//	     lock for the whole incremental computation (that is the BL
//	     scenario's downtime);
//	DT — apply the differential tables (refresh_DT);
//	C  — propagate_C followed by partial_refresh_C, holding the MV lock
//	     across both (Policy 1's downtime covers the final propagate).
func (m *Manager) Refresh(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	start := time.Now()
	rsp := m.startEntrySpan(trace.SpanRefresh,
		trace.Str("view", v.Name), trace.Str("scenario", v.Scenario.String()))
	sp := obs.StartSpan(v.met.refreshNs)
	rg := obs.StartRegion(v.met.phaseAcct(obs.PhaseRefresh), v.Name, "", obs.PhaseRefresh)
	defer func() {
		rg.End()
		v.Stats.Refreshes++
		v.Stats.RefreshTime += time.Since(start)
		sp.End()
		rsp.End()
		m.updateSizeGauges(v)
	}()

	switch v.Scenario {
	case Immediate:
		return nil
	case BaseLogs:
		return m.locks.WithWriteSpan([]string{v.mvName}, rsp, func(hold *trace.Span) error {
			asp, dsp := m.startDowntimeSpan(v, hold)
			defer func() { asp.EndExplicit(dsp.End()) }()
			if err := m.materializeIfShared(v); err != nil {
				return err
			}
			asp.SetAttrs(trace.Int("log_tuples", int64(m.logVolume(v))))
			if err := m.refreshFromLogLocked(v, asp); err != nil {
				return err
			}
			m.consumeWindowIfShared(v)
			return nil
		})
	case DiffTables:
		return m.locks.WithWriteSpan([]string{v.mvName}, rsp, func(hold *trace.Span) error {
			asp, dsp := m.startDowntimeSpan(v, hold)
			asp.SetAttrs(trace.Int("diff_tuples", int64(m.diffVolume(v))))
			defer func() { asp.EndExplicit(dsp.End()) }()
			return m.applyDiffTablesLocked(v, asp)
		})
	case Combined:
		return m.locks.WithWriteSpan([]string{v.mvName}, rsp, func(hold *trace.Span) error {
			asp, dsp := m.startDowntimeSpan(v, hold)
			defer func() { asp.EndExplicit(dsp.End()) }()
			if err := m.materializeIfShared(v); err != nil {
				return err
			}
			asp.SetAttrs(trace.Int("log_tuples", int64(m.logVolume(v))))
			if err := m.foldLog(v, hold); err != nil {
				return err
			}
			m.consumeWindowIfShared(v)
			asp.SetAttrs(trace.Int("diff_tuples", int64(m.diffVolume(v))))
			return m.applyDiffTablesLocked(v, asp)
		})
	}
	return fmt.Errorf("core: refresh: unknown scenario %v", v.Scenario)
}

// startDowntimeSpan opens the MV-exclusive core.refresh.apply span
// under the lock-hold span together with the view_downtime_ns obs
// span. The caller must finish both with
//
//	defer func() { asp.EndExplicit(dsp.End()) }()
//
// so the trace span and the histogram record the IDENTICAL duration —
// that equality is what lets the E2E trace test reconcile a trace's
// exclusive spans against the downtime histogram exactly.
func (m *Manager) startDowntimeSpan(v *View, hold *trace.Span) (*trace.Span, obs.Span) {
	asp := hold.StartChild(trace.SpanRefreshApply, trace.Str("view", v.Name))
	asp.SetExclusive()
	return asp, obs.StartSpan(v.met.downtimeNs)
}

// refreshFromLogLocked implements refresh_BL: one simultaneous transaction
// updating MV from the post-update incremental queries and emptying the
// log. The Locked suffix is a contract dvmlint enforces: the caller
// must hold the MV write lock.
func (m *Manager) refreshFromLogLocked(v *View, parent *trace.Span) error {
	if v.met != nil {
		v.met.refreshTuples.Add(int64(m.logVolume(v)))
	}
	if v.cd != nil && v.cd.refresh != nil {
		if err := m.runCompiledAssigns(v, v.cd.refresh, parent); err != nil {
			return err
		}
		return m.clearLogs(v)
	}
	upd, err := applyDelta(m.baseExpr(v.mvName), v.blDel, v.blAdd)
	if err != nil {
		return err
	}
	assigns := []txn.Assignment{{Table: v.mvName, Expr: upd}}
	for _, b := range v.bases {
		assigns = append(assigns, m.emptyAssign(v.logDel[b]), m.emptyAssign(v.logIns[b]))
	}
	return txn.ApplyAssignments(m.db, assigns)
}

// clearLogs empties the view's (non-sharded) log tables in place — the
// L := ∅ half of refresh_BL / propagate_C on the compiled path, run
// after the compiled update has installed. Equivalent to the
// emptyAssign form: clearing carries no right-hand side to stage.
func (m *Manager) clearLogs(v *View) error {
	for _, b := range v.bases {
		dl, err := m.db.Table(v.logDel[b])
		if err != nil {
			return err
		}
		il, err := m.db.Table(v.logIns[b])
		if err != nil {
			return err
		}
		dl.Clear()
		il.Clear()
	}
	return nil
}

// applyDiffTablesLocked implements refresh_DT / partial_refresh_C:
// MV := (MV ∸ ∇MV) ⊎ △MV; ∇MV := ∅; △MV := ∅. The Locked suffix is a
// contract dvmlint enforces: the caller must hold the MV write lock.
func (m *Manager) applyDiffTablesLocked(v *View, parent *trace.Span) error {
	if v.sh != nil {
		return m.applyDiffShardsLocked(v)
	}
	if v.met != nil {
		v.met.refreshTuples.Add(int64(m.diffVolume(v)))
	}
	if v.cd != nil && v.cd.apply != nil {
		if err := m.runCompiledAssigns(v, v.cd.apply, parent); err != nil {
			return err
		}
		dd, err := m.db.Table(v.dtDel)
		if err != nil {
			return err
		}
		da, err := m.db.Table(v.dtAdd)
		if err != nil {
			return err
		}
		dd.Clear()
		da.Clear()
		return nil
	}
	upd, err := applyDelta(m.baseExpr(v.mvName), m.baseExpr(v.dtDel), m.baseExpr(v.dtAdd))
	if err != nil {
		return err
	}
	return txn.ApplyAssignments(m.db, []txn.Assignment{
		{Table: v.mvName, Expr: upd},
		m.emptyAssign(v.dtDel),
		m.emptyAssign(v.dtAdd),
	})
}

// Propagate implements propagate_C: fold the log's post-update
// incremental queries into the differential tables and empty the log,
// without touching MV (so no view downtime):
//
//	∇MV := ∇MV ⊎ (▼(L,Q) ∸ △MV)
//	△MV := (△MV ∸ ▼(L,Q)) ⊎ ▲(L,Q)
//	L := ∅
func (m *Manager) Propagate(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	if v.Scenario != Combined {
		return fmt.Errorf("core: propagate is only defined for the Combined scenario (view %q is %v)", name, v.Scenario)
	}
	start := time.Now()
	psp := m.startEntrySpan(trace.SpanPropagate, trace.Str("view", v.Name))
	sp := obs.StartSpan(v.met.propagateNs)
	rg := obs.StartRegion(v.met.phaseAcct(obs.PhasePropagate), v.Name, "", obs.PhasePropagate)
	defer func() {
		rg.End()
		v.Stats.Propagates++
		v.Stats.PropagateTime += time.Since(start)
		sp.End()
		psp.End()
		m.updateSizeGauges(v)
	}()
	if err := m.materializeIfShared(v); err != nil {
		return err
	}
	psp.SetAttrs(trace.Int("log_tuples", int64(m.logVolume(v))))
	if err := m.foldLog(v, psp); err != nil {
		return err
	}
	m.consumeWindowIfShared(v)
	return nil
}

// materializeIfShared loads the view's shared-log window into its
// private log tables; no-op in per-view-log mode.
func (m *Manager) materializeIfShared(v *View) error {
	if m.shared == nil {
		return nil
	}
	return m.materializeWindow(v)
}

// consumeWindowIfShared advances the view's shared-log cursors after a
// successful propagate/refresh and truncates consumed entries.
func (m *Manager) consumeWindowIfShared(v *View) {
	if m.shared == nil {
		return
	}
	m.advanceCursors(v)
}

// foldLog folds the log's post-update incremental queries into the
// differential tables and empties the log (the body of propagate_C).
// It touches only logs and differential tables — never MV — so it
// needs no MV lock, only the manager's single-writer discipline.
// (It was once named propagateLocked; dvmlint's lock-discipline check
// flagged the unlocked call from Propagate, and the fix was renaming:
// the lock was never required.) parent anchors the per-shard spans of
// the sharded path.
func (m *Manager) foldLog(v *View, parent *trace.Span) error {
	if v.sh != nil {
		return m.foldLogSharded(v, parent)
	}
	if v.met != nil {
		v.met.propagateTuples.Add(int64(m.logVolume(v)))
	}
	if v.cd != nil && v.cd.fold != nil {
		if err := m.runCompiledAssigns(v, v.cd.fold, parent); err != nil {
			return err
		}
		return m.clearLogs(v)
	}
	fold, err := m.foldAssigns(v, v.blDel, v.blAdd)
	if err != nil {
		return err
	}
	assigns := fold
	for _, b := range v.bases {
		assigns = append(assigns, m.emptyAssign(v.logDel[b]), m.emptyAssign(v.logIns[b]))
	}
	return txn.ApplyAssignments(m.db, assigns)
}

// PartialRefresh implements partial_refresh_C: apply the precomputed
// differential tables to MV ({INV_C} partial_refresh_C {PAST(L,Q) ≡ MV}).
// This is Policy 2's refresh step and has the minimal possible downtime.
func (m *Manager) PartialRefresh(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	if v.Scenario != Combined && v.Scenario != DiffTables {
		return fmt.Errorf("core: partial refresh needs differential tables (view %q is %v)", name, v.Scenario)
	}
	start := time.Now()
	prsp := m.startEntrySpan(trace.SpanPartialRefresh, trace.Str("view", v.Name))
	sp := obs.StartSpan(v.met.partialNs)
	rg := obs.StartRegion(v.met.phaseAcct(obs.PhasePartialRefresh), v.Name, "", obs.PhasePartialRefresh)
	defer func() {
		rg.End()
		v.Stats.PartialCount++
		v.Stats.PartialTime += time.Since(start)
		sp.End()
		prsp.End()
		m.updateSizeGauges(v)
	}()
	return m.locks.WithWriteSpan([]string{v.mvName}, prsp, func(hold *trace.Span) error {
		asp, dsp := m.startDowntimeSpan(v, hold)
		asp.SetAttrs(trace.Int("diff_tuples", int64(m.diffVolume(v))))
		defer func() { asp.EndExplicit(dsp.End()) }()
		return m.applyDiffTablesLocked(v, asp)
	})
}

// RefreshRecompute is the non-incremental baseline: recompute Q from
// scratch under the MV write lock and discard all auxiliary state. Used
// by the incremental-vs-recompute experiment.
func (m *Manager) RefreshRecompute(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	start := time.Now()
	rcsp := m.startEntrySpan(trace.SpanRecompute, trace.Str("view", v.Name))
	sp := obs.StartSpan(v.met.recomputeNs)
	rg := obs.StartRegion(v.met.phaseAcct(obs.PhaseRecompute), v.Name, "", obs.PhaseRecompute)
	defer func() {
		rg.End()
		v.Stats.Recomputes++
		v.Stats.RecomputeTime += time.Since(start)
		sp.End()
		rcsp.End()
		m.updateSizeGauges(v)
	}()
	return m.locks.WithWriteSpan([]string{v.mvName}, rcsp, func(hold *trace.Span) error {
		asp, dsp := m.startDowntimeSpan(v, hold)
		defer func() { asp.EndExplicit(dsp.End()) }()
		var fresh *bag.Bag
		if v.cd != nil && v.cd.def != nil {
			outs, err := m.evalCompiled(v, v.cd.def, asp)
			if err != nil {
				return err
			}
			fresh = outs[0]
		} else {
			var err error
			fresh, err = algebra.Eval(v.Def, m.db)
			if err != nil {
				return err
			}
		}
		mv, _ := m.db.Table(v.mvName)
		mv.Replace(fresh)
		// A recompute reflects the current state, so any pending shared
		// window is consumed too.
		if m.shared != nil && (v.Scenario == BaseLogs || v.Scenario == Combined) {
			m.advanceCursors(v)
		}
		if v.sh != nil {
			m.clearShardStateLocked(v)
			return nil
		}
		for _, b := range v.bases {
			if n, ok := v.logDel[b]; ok {
				tb, _ := m.db.Table(n)
				tb.Clear()
			}
			if n, ok := v.logIns[b]; ok {
				tb, _ := m.db.Table(n)
				tb.Clear()
			}
		}
		if v.dtDel != "" {
			tb, _ := m.db.Table(v.dtDel)
			tb.Clear()
			tb, _ = m.db.Table(v.dtAdd)
			tb.Clear()
		}
		return nil
	})
}

// Query reads the view's materialized table under a shared lock,
// returning a copy. Reads block while a refresh holds the exclusive
// lock — the downtime a user experiences.
func (m *Manager) Query(name string) (*bag.Bag, error) {
	v, err := m.View(name)
	if err != nil {
		return nil, err
	}
	// Readers run concurrently with the writer, so Query starts its own
	// root trace directly rather than parenting under the writer-owned
	// statement span (startEntrySpan reads m.cur, which is
	// single-writer state).
	qsp := m.tracer.StartTrace(trace.SpanQuery, trace.Str("view", v.Name))
	defer qsp.End()
	var out *bag.Bag
	err = m.locks.WithReadSpan([]string{v.mvName}, qsp, func(*trace.Span) error {
		b, err := m.db.Bag(v.mvName)
		if err != nil {
			return err
		}
		out = b.Clone()
		return nil
	})
	return out, err
}
