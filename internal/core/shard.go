package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/delta"
	"dvm/internal/obs"
	"dvm/internal/obs/trace"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// Sharded deferred maintenance: a Combined view's logs (▲R/▼R), its
// differential tables (∇MV/△MV), and co-partitioned mirrors of its base
// tables are split into N hash shards, so makesafe appends shard-locally
// under per-shard locks and propagate_C runs the Figure 2 DEL/ADD
// expressions per shard, merging only at the view boundary.
//
// Correctness rests on two partitioning facts:
//
//  1. Every bag operation except × is pointwise in tuple values, so any
//     deterministic value-hash partition distributes it shard by shard.
//     The per-shard fold into ∇MV/△MV and the sequential per-shard MV
//     apply are therefore exactly equal to their merged forms for ANY
//     view.
//  2. Per-shard EVALUATION of the DEL/ADD expressions is exact when the
//     partition cannot lose cross-shard join pairs: either the view has
//     no × at all (full-tuple hashing, everything pointwise), or every
//     base is hashed on a join-key column connected by the view's
//     equality predicates (a surviving pair has equal keys, hence equal
//     hashes, hence lives inside one shard). planShards decides which
//     case applies; views fitting neither evaluate their deltas over the
//     merged window (still sharded state, serial evaluation).
//
// The win on top of parallel fan-out is algorithmic: a shard whose log
// slice is empty provably contributes ∅ (every DEL/ADD term carries a
// log factor), so propagate touches only DIRTY shards — and each dirty
// shard's evaluation scans 1/N-sized mirrors instead of whole base
// tables. Under the paper's point-of-sale workload (one customer per
// transaction) most propagates touch a single shard.

// WithShards configures every Combined view the manager defines to use
// n hash shards (n <= 1 keeps the serial single-shard engine). Not
// supported together with WithSharedLogs.
func WithShards(n int) ManagerOption {
	return func(m *Manager) {
		if n < 1 {
			n = 1
		}
		m.shards = n
	}
}

// SetShards reconfigures the shard count; it fails once views exist
// (their physical layout is fixed at definition time). The sql engine's
// WithShards option routes through here.
func (m *Manager) SetShards(n int) error {
	if len(m.views) > 0 {
		return fmt.Errorf("core: cannot change shard count with %d views defined", len(m.views))
	}
	if n < 1 {
		n = 1
	}
	m.shards = n
	return nil
}

// Shards returns the configured shard count (1 = serial engine).
func (m *Manager) Shards() int {
	if m.shards < 1 {
		return 1
	}
	return m.shards
}

// viewShards is the physical layout of one sharded Combined view.
type viewShards struct {
	n int
	// keyCol maps each base table to the hashed column index (-1 =
	// full tuple); only meaningful when merged is false.
	keyCol map[string]int
	// viewKey is the output column diff routing hashes (-1 = full
	// tuple).
	viewKey int
	// merged marks the fallback plan: per-shard evaluation would be
	// unsound for this view shape, so deltas evaluate over the merged
	// log window (state stays sharded; evaluation is serial).
	merged bool
	// logDel/logIns/dtDel/dtAdd hold the member tables of the shard
	// groups, in shard order.
	logDel map[string][]*storage.Table
	logIns map[string][]*storage.Table
	dtDel  []*storage.Table
	dtAdd  []*storage.Table
	// mirrors maps each base to its co-partitioned mirror group (nil
	// in merged mode).
	mirrors map[string]*mirrorGroup
	// met holds the per-shard instruments.
	met []*shardMetrics
}

// mirrorGroup is a co-partitioned copy of one base table, shared by
// every view that hashes the base on the same column. Execute keeps it
// in sync with the base (same weakly-minimal deltas, routed per
// shard); propagate workers read it instead of scanning the full base.
type mirrorGroup struct {
	base    string
	keyCol  int
	logical string
	tables  []*storage.Table
	refs    int
}

// mirrorLogical names a mirror shard group.
func mirrorLogical(base string, keyCol int) string {
	if keyCol < 0 {
		return fmt.Sprintf("__shard_%s__kt", base)
	}
	return fmt.Sprintf("__shard_%s__k%d", base, keyCol)
}

// shardID renders one shard's zero-padded identifier ("s03") — the
// dvm_shard pprof label value and the shard half of the obs label.
func shardID(i int) string { return fmt.Sprintf("s%02d", i) }

// shardLabel renders the obs label of one view shard ("v0/s03").
func shardLabel(view string, i int) string { return view + "/" + shardID(i) }

// setupShards creates the sharded physical layout of a Combined view:
// log shard groups, diff shard groups, per-shard instruments, and (for
// shard-local plans) the base mirrors. Called by DefineView after the
// plan options are applied; the caller cleans up via dropShards on
// error.
func (m *Manager) setupShards(v *View) error {
	if m.shared != nil {
		return fmt.Errorf("core: view %q: sharding is not supported with shared logs", v.Name)
	}
	n := m.Shards()
	keyCols, viewKey, local := planShards(v.Def)
	sh := &viewShards{
		n:       n,
		keyCol:  keyCols,
		viewKey: viewKey,
		merged:  !local,
		logDel:  map[string][]*storage.Table{},
		logIns:  map[string][]*storage.Table{},
		mirrors: map[string]*mirrorGroup{},
	}
	v.sh = sh
	for _, b := range v.bases {
		tb, _ := m.db.Table(b)
		kc := -1
		if local {
			kc = keyCols[b]
		}
		dn := fmt.Sprintf("__log_del_%s__%s", b, v.Name)
		in := fmt.Sprintf("__log_ins_%s__%s", b, v.Name)
		dt, err := m.db.CreateSharded(dn, tb.Schema(), storage.Internal, n, kc)
		if err != nil {
			return err
		}
		it, err := m.db.CreateSharded(in, tb.Schema(), storage.Internal, n, kc)
		if err != nil {
			return err
		}
		v.logDel[b], v.logIns[b] = dn, in
		sh.logDel[b], sh.logIns[b] = dt, it
	}
	v.dtDel = "__dmv_del_" + v.Name
	v.dtAdd = "__dmv_add_" + v.Name
	dd, err := m.db.CreateSharded(v.dtDel, v.Def.Schema(), storage.Internal, n, viewKey)
	if err != nil {
		return err
	}
	da, err := m.db.CreateSharded(v.dtAdd, v.Def.Schema(), storage.Internal, n, viewKey)
	if err != nil {
		return err
	}
	sh.dtDel, sh.dtAdd = dd, da
	if local {
		for _, b := range v.bases {
			g, err := m.ensureMirror(b, keyCols[b], n)
			if err != nil {
				return err
			}
			sh.mirrors[b] = g
		}
	}
	sh.met = make([]*shardMetrics, n)
	for i := range sh.met {
		sh.met[i] = newShardMetrics(m.obs, shardLabel(v.Name, i))
	}
	return nil
}

// ensureMirror returns (creating on first use) the co-partitioned
// mirror group of one base table, populated from its current contents.
func (m *Manager) ensureMirror(base string, keyCol, n int) (*mirrorGroup, error) {
	key := mirrorLogical(base, keyCol)
	if g, ok := m.mirrors[key]; ok {
		g.refs++
		return g, nil
	}
	tb, err := m.db.Table(base)
	if err != nil {
		return nil, err
	}
	tables, err := m.db.CreateSharded(key, tb.Schema(), storage.Internal, n, keyCol)
	if err != nil {
		return nil, err
	}
	tb.Data().Each(func(tu schema.Tuple, c int) {
		tables[bag.ShardOf(tu, keyCol, n)].Data().Add(tu, c)
	})
	g := &mirrorGroup{base: base, keyCol: keyCol, logical: key, tables: tables, refs: 1}
	if m.mirrors == nil {
		m.mirrors = map[string]*mirrorGroup{}
	}
	m.mirrors[key] = g
	return g, nil
}

// dropShards tears down a sharded view's physical layout (DropView and
// DefineView error cleanup).
func (m *Manager) dropShards(v *View) {
	if v.sh == nil {
		return
	}
	for _, b := range v.bases {
		if n, ok := v.logDel[b]; ok {
			_ = m.db.DropSharded(n)
		}
		if n, ok := v.logIns[b]; ok {
			_ = m.db.DropSharded(n)
		}
	}
	if v.dtDel != "" {
		_ = m.db.DropSharded(v.dtDel)
		_ = m.db.DropSharded(v.dtAdd)
	}
	for _, g := range v.sh.mirrors {
		g.refs--
		if g.refs <= 0 {
			_ = m.db.DropSharded(g.logical)
			delete(m.mirrors, g.logical)
		}
	}
	v.sh = nil
}

// planShards analyzes a view definition and picks the shard-local
// evaluation plan:
//
//   - no × anywhere (an optional top-level Π over {base, σ, ⊎, ∸, ε}):
//     full-tuple hashing — every operator is additive or pointwise, so
//     per-shard evaluation is exact (keyCol = -1 everywhere);
//   - an SPJ tree Π?(σ/× over bases) whose equality predicates connect
//     one column of EVERY base into a single equivalence class:
//     key-hash co-partitioning on that class — any join pair surviving
//     the predicates has equal keys and therefore never spans shards.
//
// ok=false means neither applies; the caller falls back to merged
// evaluation over sharded state.
func planShards(def algebra.Expr) (keyCols map[string]int, viewKey int, ok bool) {
	if !hasProduct(def) {
		if !pointwiseSafe(def, true) {
			return nil, -1, false
		}
		keyCols = map[string]int{}
		for _, b := range algebra.BaseNames(def) {
			keyCols[b] = -1
		}
		return keyCols, -1, true
	}
	return planJoinShards(def)
}

func hasProduct(e algebra.Expr) bool {
	switch n := e.(type) {
	case *algebra.Product:
		return true
	case *algebra.Select:
		return hasProduct(n.Child)
	case *algebra.Project:
		return hasProduct(n.Child)
	case *algebra.DupElim:
		return hasProduct(n.Child)
	case *algebra.UnionAll:
		return hasProduct(n.L) || hasProduct(n.R)
	case *algebra.Monus:
		return hasProduct(n.L) || hasProduct(n.R)
	}
	return false
}

// pointwiseSafe reports whether a ×-free tree keeps full-tuple
// partitions aligned: σ and ⊎ preserve the leaf value space, ∸ and ε
// operate pointwise in it, and a single Π is allowed only at the top
// (a Π below a pointwise operator would re-key the values). Non-empty
// literals are rejected (a constant would be counted once per shard).
func pointwiseSafe(e algebra.Expr, top bool) bool {
	switch n := e.(type) {
	case *algebra.Base:
		return true
	case *algebra.Literal:
		return n.Bag.Empty()
	case *algebra.Select:
		return pointwiseSafe(n.Child, false)
	case *algebra.Project:
		return top && pointwiseSafe(n.Child, false)
	case *algebra.DupElim:
		return pointwiseSafe(n.Child, false)
	case *algebra.UnionAll:
		return pointwiseSafe(n.L, false) && pointwiseSafe(n.R, false)
	case *algebra.Monus:
		return pointwiseSafe(n.L, false) && pointwiseSafe(n.R, false)
	}
	return false
}

// planJoinShards handles the SPJ case: peel an optional top Π, require
// a σ/×/base tree below it, union-find the equality predicates, and
// look for one class covering every base.
func planJoinShards(def algebra.Expr) (map[string]int, int, bool) {
	body := def
	var proj *algebra.Project
	if p, isP := body.(*algebra.Project); isP {
		proj = p
		body = p.Child
	}
	var bases []*algebra.Base
	var pairs [][2]string
	okShape := collectSPJ(body, &bases, &pairs)
	if !okShape || len(bases) == 0 {
		return nil, -1, false
	}
	// Column name -> owning base (unique names only; join trees qualify
	// columns per side, so collisions are rare and simply unusable as
	// shard keys).
	owner := map[string]*algebra.Base{}
	dup := map[string]bool{}
	for _, b := range bases {
		sch := b.Schema()
		for i := 0; i < sch.Len(); i++ {
			name := sch.Column(i).Name
			if _, seen := owner[name]; seen {
				dup[name] = true
				continue
			}
			owner[name] = b
		}
	}
	// Union-find over column names joined by equality predicates.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra // deterministic representative: least name
		}
	}
	for _, pr := range pairs {
		union(pr[0], pr[1])
	}
	// Classes, by sorted representative, searched in order for one that
	// covers every base.
	classes := map[string][]string{}
	var reps []string
	for col := range parent {
		r := find(col)
		if len(classes[r]) == 0 {
			reps = append(reps, r)
		}
		classes[r] = append(classes[r], col)
	}
	sort.Strings(reps)
	for _, r := range reps {
		cols := classes[r]
		sort.Strings(cols)
		keyCols := map[string]int{}
		for _, col := range cols {
			b, okOwn := owner[col]
			if !okOwn || dup[col] {
				continue
			}
			if _, have := keyCols[b.Name]; have {
				continue
			}
			idx, err := b.Schema().Lookup(col)
			if err != nil {
				continue
			}
			keyCols[b.Name] = idx
		}
		covered := true
		for _, b := range bases {
			if _, okb := keyCols[b.Name]; !okb {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		viewKey := -1
		if proj != nil {
			for i, src := range proj.Cols {
				if find(src) == r && parent[src] != "" {
					viewKey = i
					break
				}
			}
		} else {
			sch := body.Schema()
			for i := 0; i < sch.Len(); i++ {
				name := sch.Column(i).Name
				if parent[name] != "" && find(name) == r {
					viewKey = i
					break
				}
			}
		}
		return keyCols, viewKey, true
	}
	return nil, -1, false
}

// collectSPJ walks a σ/×/base tree, gathering base leaves and the
// attribute-equality conjuncts of every σ. Any other node kind fails
// the shape check.
func collectSPJ(e algebra.Expr, bases *[]*algebra.Base, pairs *[][2]string) bool {
	switch n := e.(type) {
	case *algebra.Base:
		*bases = append(*bases, n)
		return true
	case *algebra.Select:
		ps, _ := algebra.EquiPairs(n.Pred)
		*pairs = append(*pairs, ps...)
		return collectSPJ(n.Child, bases, pairs)
	case *algebra.Product:
		return collectSPJ(n.L, bases, pairs) && collectSPJ(n.R, bases, pairs)
	}
	return false
}

// --- makesafe: shard-local log appends -------------------------------

// appendToLogsSharded is appendToLogs for a sharded view: the
// transaction's ∇R/△R are routed by shard key and merged into each
// dirty shard's slice of the log under that shard's write lock, with
// the same weakly minimal in-place merge as the serial path:
//
//	▼R_i := ▼R_i ⊎ (∇R_i ∸ ▲R_i);  ▲R_i := (▲R_i ∸ ∇R_i) ⊎ △R_i
//
// Shards are visited in ascending index order and one lock is held at
// a time (no nesting), so acquisition order is canonical.
func (m *Manager) appendToLogsSharded(v *View, nt txn.Txn) error {
	sh := v.sh
	for _, b := range v.bases {
		u, ok := nt[b]
		if !ok {
			continue
		}
		del, ins := u.Delete, u.Insert
		if del == nil {
			del = bag.New()
		}
		if ins == nil {
			ins = bag.New()
		}
		if fn, okf := v.logFilterFn[b]; okf {
			del = bag.Select(del, fn)
			ins = bag.Select(ins, fn)
		}
		kc := sh.shardKey(b)
		delParts := bag.Partition(del, kc, sh.n)
		insParts := bag.Partition(ins, kc, sh.n)
		for i := 0; i < sh.n; i++ {
			if delParts[i].Empty() && insParts[i].Empty() {
				continue
			}
			delLog, insLog := sh.logDel[b][i], sh.logIns[b][i]
			di, ii := delParts[i], insParts[i]
			err := m.locks.WithWrite([]string{delLog.Name(), insLog.Name()}, func() error {
				x := bag.Monus(di, insLog.Data()) // ∇R_i ∸ ▲R_i, pre-state
				di.Each(func(t schema.Tuple, n int) {
					insLog.Data().Remove(t, n)
				})
				insLog.Data().AddBag(ii)
				delLog.Data().AddBag(x)
				return nil
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// shardKey returns the routing column for one base (-1 in merged mode:
// full-tuple hashing keeps Σ shards == log without a key).
func (sh *viewShards) shardKey(b string) int {
	if sh.merged {
		return -1
	}
	return sh.keyCol[b]
}

// updateMirrors applies a transaction's effective base-table deltas to
// every registered mirror group, routed per shard under the shard's
// write lock. Runs inside Execute's apply step, right after the base
// tables themselves change, so mirrors always equal their hash slice
// of the base.
func (m *Manager) updateMirrors(nt txn.Txn) {
	if len(m.mirrors) == 0 {
		return
	}
	keys := make([]string, 0, len(m.mirrors))
	for k := range m.mirrors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := m.mirrors[k]
		u, ok := nt[g.base]
		if !ok {
			continue
		}
		n := len(g.tables)
		for i := 0; i < n; i++ {
			tb := g.tables[i]
			idx := i
			_ = m.locks.WithWrite([]string{tb.Name()}, func() error {
				if u.Delete != nil {
					u.Delete.Each(func(t schema.Tuple, c int) {
						if bag.ShardOf(t, g.keyCol, n) == idx {
							tb.Data().Remove(t, c)
						}
					})
				}
				if u.Insert != nil {
					u.Insert.Each(func(t schema.Tuple, c int) {
						if bag.ShardOf(t, g.keyCol, n) == idx {
							tb.Data().Add(t, c)
						}
					})
				}
				return nil
			})
		}
	}
}

// --- propagate: per-shard DEL/ADD with a bounded worker pool ---------

// shardDelta is one shard's staged evaluation result. compiled marks a
// compiled-program evaluation; evalDur is the eval-only wall time
// (excluding lock wait) and probed its index-probe count, both observed
// post-hoc by the coordinator.
type shardDelta struct {
	shard    int
	del      *bag.Bag
	add      *bag.Bag
	dur      time.Duration
	err      error
	compiled bool
	evalDur  time.Duration
	probed   int64
}

// dirtyShards lists the shard indices with a non-empty log slice. An
// empty slice provably contributes ∅ (every Figure 2 DEL/ADD term
// carries at least one log factor), so clean shards are skipped
// entirely — the algorithmic half of the sharding win.
func (m *Manager) dirtyShards(v *View) []int {
	sh := v.sh
	var out []int
	for i := 0; i < sh.n; i++ {
		dirty := false
		for _, b := range v.bases {
			if sh.logDel[b][i].Len() > 0 || sh.logIns[b][i].Len() > 0 {
				dirty = true
				break
			}
		}
		if dirty {
			out = append(out, i)
		}
	}
	return out
}

// shardSource is the algebra.Source a propagate worker evaluates
// against: base tables resolve to the shard's mirror slice and the
// view's canonical log names to the shard's log slice. Everything is
// pre-resolved by the coordinator, so workers share no map lookups
// with anyone.
type shardSource map[string]*bag.Bag

func (s shardSource) Bag(name string) (*bag.Bag, error) {
	b, ok := s[name]
	if !ok {
		return nil, fmt.Errorf("core: shard evaluation reached unexpected table %q", name)
	}
	return b, nil
}

// shardSourceFor builds the evaluation source of one shard. Must be
// called with the shard's tables quiescent (single-writer discipline).
func (m *Manager) shardSourceFor(v *View, i int) shardSource {
	sh := v.sh
	src := shardSource{}
	for _, b := range v.bases {
		src[v.logDel[b]] = sh.logDel[b][i].Data()
		src[v.logIns[b]] = sh.logIns[b][i].Data()
		if g, ok := sh.mirrors[b]; ok {
			src[b] = g.tables[i].Data()
		}
	}
	return src
}

// mergedSource resolves the view's canonical log names to freshly
// merged windows and base tables to the live database — the fallback
// evaluation state for views without a shard-local plan.
func (m *Manager) mergedSource(v *View) shardSource {
	sh := v.sh
	src := shardSource{}
	for _, b := range v.bases {
		src[v.logDel[b]] = mergeTables(sh.logDel[b])
		src[v.logIns[b]] = mergeTables(sh.logIns[b])
		tb, _ := m.db.Table(b)
		src[b] = tb.Data()
	}
	return src
}

func mergeTables(ts []*storage.Table) *bag.Bag {
	out := bag.New()
	for _, t := range ts {
		out.AddBag(t.Data())
	}
	return out
}

// shardLockNames returns the lock set a worker holds while evaluating
// shard i: the shard's log slices plus its mirror slices.
func (m *Manager) shardLockNames(v *View, i int) []string {
	sh := v.sh
	var names []string
	for _, b := range v.bases {
		names = append(names, sh.logDel[b][i].Name(), sh.logIns[b][i].Name())
		if g, ok := sh.mirrors[b]; ok {
			names = append(names, g.tables[i].Name())
		}
	}
	return names
}

// propagateWorkers bounds the pool. On a single-core box the pool
// still runs with two workers so the concurrent path is exercised (and
// race-tested); the speedup there comes from dirty-shard pruning and
// 1/N-sized mirror scans, not parallelism.
func propagateWorkers(dirty int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if w > dirty {
		w = dirty
	}
	if w < 1 {
		w = 1
	}
	return w
}

// foldLogSharded is the sharded body of propagate_C: stage per-shard
// DEL/ADD evaluation across a bounded worker pool, then install —
// clear the consumed log slices, route the deltas by view-value hash,
// and fold each destination diff shard in place. Nothing is mutated
// until every shard's evaluation has succeeded, so a failed propagate
// leaves logs and diffs untouched.
func (m *Manager) foldLogSharded(v *View, parent *trace.Span) error {
	sh := v.sh
	if v.met != nil {
		v.met.propagateTuples.Add(int64(m.logVolume(v)))
	}

	var results []shardDelta
	if sh.merged {
		// Fallback plan: one serial evaluation over the merged window.
		sp := parent.StartChild(trace.SpanPropagateShard,
			trace.Str("view", v.Name), trace.Str("mode", "merged"))
		start := time.Now()
		var err error
		if cd := v.cd; cd != nil && cd.shard != nil {
			var outs []*bag.Bag
			var stats algebra.Stats
			outs, stats, err = cd.shard.Eval(cd.mergedSt, m.mergedSource(v))
			if err == nil {
				dur := time.Since(start)
				m.observeCompiled(v, sp, dur, stats.IndexProbeTuples)
				results = append(results, shardDelta{shard: -1, del: outs[0], add: outs[1], dur: dur})
			}
		} else {
			ev := algebra.NewEvaluator(m.mergedSource(v))
			var d *bag.Bag
			d, err = ev.Eval(v.shDel)
			if err == nil {
				var a *bag.Bag
				a, err = ev.Eval(v.shAdd)
				if err == nil {
					results = append(results, shardDelta{shard: -1, del: d, add: a, dur: time.Since(start)})
				}
			}
		}
		sp.EndExplicit(time.Since(start))
		if err != nil {
			return err
		}
	} else {
		dirty := m.dirtyShards(v)
		parent.SetAttrs(trace.Int("shards", int64(sh.n)), trace.Int("dirty_shards", int64(len(dirty))))
		if len(dirty) == 0 {
			return nil
		}
		results = make([]shardDelta, len(dirty))
		// The coordinator owns every span and every table lookup; a
		// worker sees only its pre-resolved source, its lock set, and
		// its result slot.
		spans := make([]*trace.Span, len(dirty))
		srcs := make([]shardSource, len(dirty))
		lockSets := make([][]string, len(dirty))
		for j, i := range dirty {
			spans[j] = parent.StartChild(trace.SpanPropagateShard,
				trace.Str("view", v.Name), trace.Int("shard", int64(i)))
			srcs[j] = m.shardSourceFor(v, i)
			lockSets[j] = m.shardLockNames(v, i)
		}
		workers := propagateWorkers(len(dirty))
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					results[j] = m.evalShard(v, dirty[j], srcs[j], lockSets[j])
				}
			}()
		}
		for j := range dirty {
			jobs <- j
		}
		close(jobs)
		wg.Wait()
		for j := range results {
			spans[j].SetAttrs(trace.Int("del_tuples", tupleLen(results[j].del)),
				trace.Int("add_tuples", tupleLen(results[j].add)))
			if results[j].compiled && results[j].err == nil {
				// Post-hoc, coordinator-side emission of the worker's
				// compiled-eval metrics and span (workers never touch
				// the tracer or obs families).
				m.observeCompiled(v, spans[j], results[j].evalDur, results[j].probed)
			}
			spans[j].EndExplicit(results[j].dur)
			if results[j].err != nil {
				return fmt.Errorf("core: propagate shard %d of %q: %w", dirty[j], v.Name, results[j].err)
			}
		}
	}

	// Install phase. First consume the evaluated log slices...
	for _, r := range results {
		if r.shard < 0 {
			for _, b := range v.bases {
				for i := 0; i < sh.n; i++ {
					m.clearLogShard(v, b, i)
				}
			}
			continue
		}
		for _, b := range v.bases {
			m.clearLogShard(v, b, r.shard)
		}
	}
	// ...then route the staged deltas to their destination diff shards
	// (view-value hash: the only cross-shard exchange in the pipeline)...
	destDel := make([]*bag.Bag, sh.n)
	destAdd := make([]*bag.Bag, sh.n)
	for i := range destDel {
		destDel[i], destAdd[i] = bag.New(), bag.New()
	}
	for _, r := range results {
		r.del.Each(func(t schema.Tuple, c int) {
			destDel[bag.ShardOf(t, sh.viewKey, sh.n)].Add(t, c)
		})
		r.add.Each(func(t schema.Tuple, c int) {
			destAdd[bag.ShardOf(t, sh.viewKey, sh.n)].Add(t, c)
		})
	}
	// ...and fold, shard by shard, under each diff shard's write lock:
	//   ∇MV_i := ∇MV_i ⊎ (D_i ∸ △MV_i);  △MV_i := (△MV_i ∸ D_i) ⊎ A_i
	// (plus the strong-minimality cancellation when enabled — applied
	// after the fold, which per tuple equals the serial engine's
	// strengthen-then-fold-then-cancel pipeline).
	for i := 0; i < sh.n; i++ {
		if destDel[i].Empty() && destAdd[i].Empty() {
			continue
		}
		dd, da := sh.dtDel[i], sh.dtAdd[i]
		di, ai := destDel[i], destAdd[i]
		folded := di.Len() + ai.Len()
		err := m.locks.WithWrite([]string{dd.Name(), da.Name()}, func() error {
			x := bag.Monus(di, da.Data()) // D_i ∸ △MV_i, pre-state
			di.Each(func(t schema.Tuple, c int) {
				da.Data().Remove(t, c)
			})
			da.Data().AddBag(ai)
			dd.Data().AddBag(x)
			if v.StrongMinimal {
				cancel := bag.Min(dd.Data(), da.Data())
				cancel.Each(func(t schema.Tuple, c int) {
					dd.Data().Remove(t, c)
					da.Data().Remove(t, c)
				})
			}
			return nil
		})
		if err != nil {
			return err
		}
		if sm := sh.met[i]; sm != nil {
			sm.foldTuples.Add(int64(folded))
		}
	}
	// Worker durations land in the per-shard histogram from the
	// coordinator, keeping the obs write single-threaded per family.
	for _, r := range results {
		if r.shard >= 0 {
			sh.met[r.shard].propagateShardNs.Observe(int64(r.dur))
		}
	}
	return nil
}

func tupleLen(b *bag.Bag) int64 {
	if b == nil {
		return 0
	}
	return int64(b.Len())
}

// evalShard runs one worker's unit: evaluate the view's per-shard
// DEL/ADD pair against the shard's slice of logs and mirrors, under
// the shard's read locks. It only reads shared state and writes only
// its own result.
func (m *Manager) evalShard(v *View, shard int, src shardSource, lockNames []string) shardDelta {
	// Label the worker's whole unit so CPU profiles attribute per-shard
	// propagate work to (view, shard, phase). Accounting is nil here:
	// workers run concurrently, so the process-global allocation delta
	// belongs to the coordinator's propagate region, not to any one
	// worker.
	defer obs.StartRegion(nil, v.Name, shardID(shard), obs.PhasePropagate).End()
	start := time.Now()
	var d, a *bag.Bag
	var evalDur time.Duration
	var probed int64
	compiled := false
	err := m.locks.WithRead(lockNames, func() error {
		if cd := v.cd; cd != nil && cd.shard != nil {
			// Compiled path: the shard's pinned state keeps its join
			// indexes valid across propagates (each shard is evaluated
			// by at most one worker at a time).
			evalStart := time.Now()
			outs, stats, err := cd.shard.Eval(cd.shardSt[shard], src)
			evalDur = time.Since(evalStart)
			if err != nil {
				return err
			}
			d, a = outs[0], outs[1]
			probed = stats.IndexProbeTuples
			compiled = true
			return nil
		}
		ev := algebra.NewEvaluator(src)
		var evErr error
		if d, evErr = ev.Eval(v.shDel); evErr != nil {
			return evErr
		}
		a, evErr = ev.Eval(v.shAdd)
		return evErr
	})
	return shardDelta{shard: shard, del: d, add: a, dur: time.Since(start), err: err,
		compiled: compiled, evalDur: evalDur, probed: probed}
}

// clearLogShard empties both log slices of (base, shard) under the
// shard's write lock.
func (m *Manager) clearLogShard(v *View, b string, i int) {
	sh := v.sh
	dl, il := sh.logDel[b][i], sh.logIns[b][i]
	_ = m.locks.WithWrite([]string{dl.Name(), il.Name()}, func() error {
		dl.Clear()
		il.Clear()
		return nil
	})
}

// applyDiffShardsLocked is partial_refresh_C over sharded differential
// tables: each diff shard is applied to MV in turn and cleared. Diff
// shards are value-disjoint (routed by view-value hash), so the
// sequential per-shard apply equals the merged apply exactly. The
// Locked suffix is a contract dvmlint enforces: the caller must hold
// the MV write lock.
func (m *Manager) applyDiffShardsLocked(v *View) error {
	sh := v.sh
	if v.met != nil {
		v.met.refreshTuples.Add(int64(m.diffVolume(v)))
	}
	mv, err := m.db.Table(v.mvName)
	if err != nil {
		return err
	}
	for i := 0; i < sh.n; i++ {
		dd, da := sh.dtDel[i], sh.dtAdd[i]
		if dd.Len() == 0 && da.Len() == 0 {
			continue
		}
		err := m.locks.WithWrite([]string{dd.Name(), da.Name()}, func() error {
			dd.Data().Each(func(t schema.Tuple, c int) {
				mv.Data().Remove(t, c)
			})
			mv.Data().AddBag(da.Data())
			dd.Clear()
			da.Clear()
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// clearShardStateLocked wipes all shard log and diff slices (the
// recompute path discards auxiliary state). The Locked suffix is a
// contract dvmlint enforces: the caller must hold the MV write lock.
func (m *Manager) clearShardStateLocked(v *View) {
	sh := v.sh
	for _, b := range v.bases {
		for i := 0; i < sh.n; i++ {
			m.clearLogShard(v, b, i)
		}
	}
	for i := 0; i < sh.n; i++ {
		dd, da := sh.dtDel[i], sh.dtAdd[i]
		_ = m.locks.WithWrite([]string{dd.Name(), da.Name()}, func() error {
			dd.Clear()
			da.Clear()
			return nil
		})
	}
}

// canonicalLogChangeSet builds a change set over the view's CANONICAL
// log names. The resulting expressions have no backing tables: they are
// only ever evaluated through a shardSource, which resolves each
// canonical name to one shard's slice (or to the merged window in
// fallback mode).
func (m *Manager) canonicalLogChangeSet(v *View) delta.ChangeSet {
	cs := delta.ChangeSet{}
	for _, b := range v.bases {
		tb, _ := m.db.Table(b)
		cs[b] = struct {
			Deleted  algebra.Expr
			Inserted algebra.Expr
		}{
			Deleted:  algebra.NewBase(v.logDel[b], tb.Schema()),
			Inserted: algebra.NewBase(v.logIns[b], tb.Schema()),
		}
	}
	return cs
}

// compileShardQueries builds the per-shard DEL/ADD pair evaluated by
// propagate workers. Unlike blDel/blAdd it is NEVER strengthened: the
// strong-minimality cancellation must see the whole fold, so it runs
// per destination diff shard after routing (per tuple that equals the
// serial strengthen-then-fold-then-cancel pipeline; see
// foldLogSharded).
func (m *Manager) compileShardQueries(v *View) error {
	d, a, err := delta.PostUpdate(m.canonicalLogChangeSet(v), v.Def)
	if err != nil {
		return err
	}
	v.shDel, v.shAdd = algebra.OptimizePair(d, a)
	return nil
}

// shardUnionExpr builds the merged view of a shard group as a ⊎ chain
// over its member tables.
func shardUnionExpr(ts []*storage.Table) algebra.Expr {
	var out algebra.Expr
	for _, t := range ts {
		e := algebra.NewBase(t.Name(), t.Schema())
		if out == nil {
			out = e
			continue
		}
		u, err := algebra.NewUnionAll(out, e)
		if err != nil {
			panic(fmt.Sprintf("core: shard union: %v", err))
		}
		out = u
	}
	return out
}

// diffExprs returns expressions for the view's differential tables:
// direct Base references in serial mode, ⊎-of-shards in sharded mode.
func (m *Manager) diffExprs(v *View) (del, add algebra.Expr) {
	if v.sh != nil {
		return shardUnionExpr(v.sh.dtDel), shardUnionExpr(v.sh.dtAdd)
	}
	return m.baseExpr(v.dtDel), m.baseExpr(v.dtAdd)
}

// CheckShardInvariant verifies the sharded representation invariants
// for one view: every log/diff/mirror slice holds exactly the tuples
// its hash owns, and each mirror group sums to its base table. Tests
// call it alongside CheckInvariant.
func (m *Manager) CheckShardInvariant(name string) error {
	v, err := m.View(name)
	if err != nil {
		return err
	}
	if v.sh == nil {
		return nil
	}
	sh := v.sh
	checkRouted := func(what string, ts []*storage.Table, keyCol int) error {
		for i, t := range ts {
			var bad error
			t.Data().Each(func(tu schema.Tuple, _ int) {
				if bad == nil && bag.ShardOf(tu, keyCol, sh.n) != i {
					bad = fmt.Errorf("core: view %q: %s shard %d holds a tuple owned by shard %d",
						name, what, i, bag.ShardOf(tu, keyCol, sh.n))
				}
			})
			if bad != nil {
				return bad
			}
		}
		return nil
	}
	for _, b := range v.bases {
		kc := sh.shardKey(b)
		if err := checkRouted("▼"+b, sh.logDel[b], kc); err != nil {
			return err
		}
		if err := checkRouted("▲"+b, sh.logIns[b], kc); err != nil {
			return err
		}
		if g, ok := sh.mirrors[b]; ok {
			if err := checkRouted("mirror "+b, g.tables, g.keyCol); err != nil {
				return err
			}
			base, err := m.db.Bag(b)
			if err != nil {
				return err
			}
			if !mergeTables(g.tables).Equal(base) {
				return fmt.Errorf("core: view %q: Σ mirror shards ≠ %s", name, b)
			}
		}
	}
	if err := checkRouted("∇MV", sh.dtDel, sh.viewKey); err != nil {
		return err
	}
	return checkRouted("△MV", sh.dtAdd, sh.viewKey)
}
