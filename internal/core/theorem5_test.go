package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// TestTheorem5RandomStreams is the paper's Theorem 5 as a property test:
// for random view definitions over the full bag algebra and random
// multi-table transaction streams, every makesafe_* is safe for INV_*,
// every refresh_* establishes Q ≡ MV, and propagate_C /
// partial_refresh_C meet their Hoare specifications — with the
// minimality invariants of Section 5.2 holding throughout.
func TestTheorem5RandomStreams(t *testing.T) {
	scenarios := []Scenario{Immediate, BaseLogs, DiffTables, Combined}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(sc) + 100))
			u := algebra.NewRandomUniverse(2)
			for trial := 0; trial < 40; trial++ {
				db := storage.NewDatabase()
				for _, name := range u.Tables {
					tb, err := db.Create(name, u.Sch, storage.External)
					if err != nil {
						t.Fatal(err)
					}
					for i, n := 0, r.Intn(8); i < n; i++ {
						if err := tb.Insert(schema.Row(r.Intn(4), r.Intn(4)), 1+r.Intn(2)); err != nil {
							t.Fatal(err)
						}
					}
				}
				def := u.RandomQuery(r, 3)
				m := NewManager(db)
				var opts []Option
				if trial%2 == 1 {
					opts = append(opts, WithStrongMinimality())
				}
				if _, err := m.DefineView("v", def, sc, opts...); err != nil {
					t.Fatalf("trial %d: define: %v\ndef=%s", trial, err, def)
				}

				for step := 0; step < 8; step++ {
					op := r.Intn(10)
					switch {
					case op < 6: // user transaction
						tx := txn.Txn{}
						for _, name := range u.Tables {
							if r.Intn(2) == 0 {
								continue
							}
							del, ins := u.RandomDelta(r)
							tx[name] = txn.Update{Delete: del, Insert: ins}
						}
						if len(tx) == 0 {
							tx = txn.Insert(u.Tables[0], bag.Of(schema.Row(r.Intn(4), r.Intn(4))))
						}
						if err := m.Execute(tx); err != nil {
							t.Fatalf("trial %d step %d: execute: %v\ndef=%s", trial, step, err, def)
						}
					case op < 7 && sc == Combined: // propagate
						if err := m.Propagate("v"); err != nil {
							t.Fatalf("trial %d step %d: propagate: %v", trial, step, err)
						}
					case op < 8 && (sc == Combined || sc == DiffTables): // partial refresh
						if err := m.PartialRefresh("v"); err != nil {
							t.Fatalf("trial %d step %d: partial: %v", trial, step, err)
						}
					default: // full refresh
						if err := m.Refresh("v"); err != nil {
							t.Fatalf("trial %d step %d: refresh: %v", trial, step, err)
						}
						if err := m.CheckConsistent("v"); err != nil {
							t.Fatalf("trial %d step %d (after refresh): %v\ndef=%s", trial, step, err, def)
						}
					}
					if err := m.CheckInvariant("v"); err != nil {
						t.Fatalf("trial %d step %d (op=%d): %v\ndef=%s", trial, step, op, err, def)
					}
				}

				// Final refresh must always converge to consistency.
				if err := m.Refresh("v"); err != nil {
					t.Fatalf("trial %d: final refresh: %v", trial, err)
				}
				if err := m.CheckConsistent("v"); err != nil {
					t.Fatalf("trial %d: final: %v\ndef=%s", trial, err, def)
				}
			}
		})
	}
}

// TestTheorem5MultiView runs several views with different scenarios over
// one shared transaction stream: makesafe must compose across views.
func TestTheorem5MultiView(t *testing.T) {
	r := rand.New(rand.NewSource(555))
	u := algebra.NewRandomUniverse(2)
	for trial := 0; trial < 15; trial++ {
		db := storage.NewDatabase()
		for _, name := range u.Tables {
			tb, err := db.Create(name, u.Sch, storage.External)
			if err != nil {
				t.Fatal(err)
			}
			for i, n := 0, r.Intn(6); i < n; i++ {
				if err := tb.Insert(schema.Row(r.Intn(4), r.Intn(4)), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		m := NewManager(db)
		scenarios := []Scenario{Immediate, BaseLogs, DiffTables, Combined}
		names := make([]string, len(scenarios))
		for i, sc := range scenarios {
			names[i] = fmt.Sprintf("v%d", i)
			if _, err := m.DefineView(names[i], u.RandomQuery(r, 2), sc); err != nil {
				t.Fatalf("trial %d: define v%d: %v", trial, i, err)
			}
		}
		for step := 0; step < 6; step++ {
			del, ins := u.RandomDelta(r)
			tx := txn.Txn{u.Tables[r.Intn(len(u.Tables))]: txn.Update{Delete: del, Insert: ins}}
			if err := m.Execute(tx); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for _, n := range names {
				if err := m.CheckInvariant(n); err != nil {
					t.Fatalf("trial %d step %d view %s: %v", trial, step, n, err)
				}
			}
		}
		for _, n := range names {
			if err := m.Refresh(n); err != nil {
				t.Fatal(err)
			}
			if err := m.CheckConsistent(n); err != nil {
				t.Fatalf("trial %d view %s: %v", trial, n, err)
			}
		}
	}
}

// TestLemma4LogRelation checks the heart of Lemma 4 directly: after any
// sequence of makesafe_BL-extended transactions, evaluating PAST(L,Q) in
// the current state reproduces Q's value in the snapshot taken at log
// start, and ▲R ⊑ R holds.
func TestLemma4LogRelation(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	u := algebra.NewRandomUniverse(2)
	for trial := 0; trial < 30; trial++ {
		db := storage.NewDatabase()
		for _, name := range u.Tables {
			tb, _ := db.Create(name, u.Sch, storage.External)
			for i, n := 0, r.Intn(6); i < n; i++ {
				if err := tb.Insert(schema.Row(r.Intn(4), r.Intn(4)), 1+r.Intn(2)); err != nil {
					t.Fatal(err)
				}
			}
		}
		def := u.RandomQuery(r, 3)
		m := NewManager(db)
		v, err := m.DefineView("v", def, BaseLogs)
		if err != nil {
			t.Fatal(err)
		}
		snap := db.Snapshot()
		qAtStart, err := algebra.Eval(def, snap)
		if err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 5; step++ {
			tx := txn.Txn{}
			for _, name := range u.Tables {
				del, ins := u.RandomDelta(r)
				tx[name] = txn.Update{Delete: del, Insert: ins}
			}
			if err := m.Execute(tx); err != nil {
				t.Fatal(err)
			}

			past, err := m.PastExpr(v)
			if err != nil {
				t.Fatal(err)
			}
			p, err := algebra.Eval(past, db)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Equal(qAtStart) {
				t.Fatalf("trial %d step %d: log does not reconstruct the past: PAST=%v want %v\ndef=%s",
					trial, step, p, qAtStart, def)
			}
			for _, b := range v.BaseTables() {
				ins, err := db.Bag(v.logIns[b])
				if err != nil {
					t.Fatal(err)
				}
				base, err := db.Bag(b)
				if err != nil {
					t.Fatal(err)
				}
				if !ins.SubBagOf(base) {
					t.Fatalf("trial %d step %d: ▲%s ⋢ %s (Lemma 4 violated)", trial, step, b, b)
				}
			}
		}
	}
}
