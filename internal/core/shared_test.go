package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// buildUniverseManager creates a manager over the random universe with
// seeded tables.
func buildUniverseManager(t *testing.T, u *algebra.RandomUniverse, seed *bag.Bag, opts ...ManagerOption) *Manager {
	t.Helper()
	db := storage.NewDatabase()
	for _, name := range u.Tables {
		tb, err := db.Create(name, u.Sch, storage.External)
		if err != nil {
			t.Fatal(err)
		}
		tb.Replace(seed.Clone())
	}
	return NewManager(db, opts...)
}

// TestSharedLogEquivalence drives identical streams through a per-view
// manager and a shared-log manager with several views: after every step
// the invariants hold in both, and after refreshes both views agree.
func TestSharedLogEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(909))
	u := algebra.NewRandomUniverse(2)
	for trial := 0; trial < 20; trial++ {
		seed := bag.New()
		for i, n := 0, r.Intn(8); i < n; i++ {
			seed.Add(schema.Row(r.Intn(4), r.Intn(4)), 1+r.Intn(2))
		}
		perView := buildUniverseManager(t, u, seed)
		shared := buildUniverseManager(t, u, seed, WithSharedLogs())
		if !shared.SharedLogsEnabled() || perView.SharedLogsEnabled() {
			t.Fatal("shared-log flag wrong")
		}

		defs := []algebra.Expr{u.RandomQuery(r, 3), u.RandomQuery(r, 2)}
		scs := []Scenario{Combined, BaseLogs}
		for i, def := range defs {
			for _, m := range []*Manager{perView, shared} {
				if _, err := m.DefineView(fmt.Sprintf("v%d", i), def, scs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}

		for step := 0; step < 8; step++ {
			tx := txn.Txn{}
			for _, name := range u.Tables {
				del, ins := u.RandomDelta(r)
				tx[name] = txn.Update{Delete: del, Insert: ins}
			}
			for _, m := range []*Manager{perView, shared} {
				if err := m.Execute(tx); err != nil {
					t.Fatal(err)
				}
			}
			for i := range defs {
				name := fmt.Sprintf("v%d", i)
				if err := shared.CheckInvariant(name); err != nil {
					t.Fatalf("trial %d step %d: shared-mode invariant: %v", trial, step, err)
				}
				if err := perView.CheckInvariant(name); err != nil {
					t.Fatalf("trial %d step %d: per-view invariant: %v", trial, step, err)
				}
			}
			// Occasionally propagate only one view: cursors diverge, the
			// other view's window must stay intact.
			if step == 3 {
				if err := shared.Propagate("v0"); err != nil {
					t.Fatal(err)
				}
				if err := perView.Propagate("v0"); err != nil {
					t.Fatal(err)
				}
				if err := shared.CheckInvariant("v1"); err != nil {
					t.Fatalf("trial %d: v1 window damaged by v0 propagate: %v", trial, err)
				}
			}
		}

		for i := range defs {
			name := fmt.Sprintf("v%d", i)
			for _, m := range []*Manager{perView, shared} {
				if err := m.Refresh(name); err != nil {
					t.Fatal(err)
				}
				if err := m.CheckConsistent(name); err != nil {
					t.Fatalf("trial %d view %s: %v", trial, name, err)
				}
			}
			pv, _ := perView.Query(name)
			sv, _ := shared.Query(name)
			if !pv.Equal(sv) {
				t.Fatalf("trial %d: refreshed views disagree:\nper-view: %v\nshared:   %v", trial, pv, sv)
			}
		}
	}
}

func TestSharedLogTruncation(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db, WithSharedLogs())
	if _, err := m.DefineView("a", def, Combined); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DefineView("b", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
	}
	if m.SharedLogVolume("sales") != 5 {
		t.Fatalf("volume = %d, want 5", m.SharedLogVolume("sales"))
	}
	// One view consumes: nothing can be truncated yet (b still needs it).
	if err := m.Refresh("a"); err != nil {
		t.Fatal(err)
	}
	if m.SharedLogVolume("sales") != 5 {
		t.Fatalf("volume after one consumer = %d, want 5", m.SharedLogVolume("sales"))
	}
	// Second view consumes: the log empties.
	if err := m.Refresh("b"); err != nil {
		t.Fatal(err)
	}
	if m.SharedLogVolume("sales") != 0 {
		t.Fatalf("volume after all consumers = %d, want 0", m.SharedLogVolume("sales"))
	}
	// Dropping a lagging view also unblocks truncation.
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(1, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("a"); err != nil {
		t.Fatal(err)
	}
	if m.SharedLogVolume("sales") != 1 {
		t.Fatalf("volume = %d, want 1 (b lags)", m.SharedLogVolume("sales"))
	}
	if err := m.DropView("b"); err != nil {
		t.Fatal(err)
	}
	if m.SharedLogVolume("sales") != 0 {
		t.Fatalf("volume after dropping laggard = %d, want 0", m.SharedLogVolume("sales"))
	}
	// SharedLogVolume of unlogged tables is 0.
	if m.SharedLogVolume("customer") != 0 {
		// customer is still logged by view a — volume 0 because a is
		// caught up; an unknown table reports 0 too.
		t.Fatalf("customer volume = %d", m.SharedLogVolume("customer"))
	}
	if m.SharedLogVolume("ghost") != 0 {
		t.Fatal("unknown table should report 0")
	}
}

func TestSharedLogRecomputeConsumesWindow(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db, WithSharedLogs())
	if _, err := m.DefineView("a", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshRecompute("a"); err != nil {
		t.Fatal(err)
	}
	if m.SharedLogVolume("sales") != 0 {
		t.Fatal("recompute did not consume the window")
	}
	if err := m.CheckInvariant("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("a"); err != nil {
		t.Fatal(err)
	}
}

func TestSharedLogLateViewStartsAtHead(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db, WithSharedLogs())
	if _, err := m.DefineView("a", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	// A view defined now must NOT see the earlier batch in its window
	// (it was initialized from the current state).
	if _, err := m.DefineView("late", def, Combined); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariant("late"); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("late"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("late"); err != nil {
		t.Fatal(err)
	}
	// And "a" still catches up correctly.
	if err := m.Refresh("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("a"); err != nil {
		t.Fatal(err)
	}
}

func TestSharedLogPoliciesRun(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db, WithSharedLogs())
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
	runner, err := m.NewRunner("hv", Policy{PropagateEvery: 2, RefreshEvery: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
		if err := runner.Tick(); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariant("hv"); err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
	}
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}
