package core

import (
	"fmt"

	"dvm/internal/algebra"
	"dvm/internal/bag"
)

// QueryFresh answers a (optionally σ_pred-restricted) query over the
// view's CURRENT value without refreshing it — one answer to the
// paper's Section 7 question "are there algorithms to refresh only
// those parts of a view needed by a given query?". Instead of paying a
// refresh (and its downtime), the current value is composed on the fly
// from the stale MV and the pending auxiliary state, using the same
// Figure 3 equations the refresh would apply:
//
//	IM:  Q = MV
//	BL:  Q = (MV ∸ ▼(L,Q)) ⊎ ▲(L,Q)
//	DT:  Q = (MV ∸ ∇MV) ⊎ △MV
//	C:   Q = (((MV ∸ ∇MV) ⊎ △MV) ∸ ▼(L,Q)) ⊎ ▲(L,Q)
//
// pred (which must bind against the view's output schema) restricts the
// answer; pass nil for the whole view. MV stays untouched — stale
// readers keep their frozen analysis view (the [AL80] use case) while
// fresh readers pay incremental evaluation per query.
func (m *Manager) QueryFresh(name string, pred algebra.Predicate) (*bag.Bag, error) {
	v, err := m.View(name)
	if err != nil {
		return nil, err
	}
	if m.shared != nil && (v.Scenario == BaseLogs || v.Scenario == Combined) {
		if err := m.materializeWindow(v); err != nil {
			return nil, err
		}
	}

	cur, err := m.currentExpr(v)
	if err != nil {
		return nil, err
	}
	if pred != nil {
		sel, err := algebra.NewSelect(pred, cur)
		if err != nil {
			return nil, fmt.Errorf("core: fresh query on %q: %w", name, err)
		}
		cur = sel
	}
	// Push the slice predicate as deep as it goes (through projections
	// and into join inputs): the point of a slice query is paying only
	// for the rows it touches.
	cur = algebra.Optimize(cur)

	var out *bag.Bag
	err = m.locks.WithRead([]string{v.mvName}, func() error {
		b, err := algebra.Eval(cur, m.db)
		if err != nil {
			return err
		}
		out = b
		return nil
	})
	return out, err
}

// currentExpr builds the expression whose value is Q's CURRENT value,
// from MV plus the pending auxiliary state.
func (m *Manager) currentExpr(v *View) (algebra.Expr, error) {
	cur := m.baseExpr(v.mvName)
	var err error
	switch v.Scenario {
	case Immediate:
		return cur, nil
	case DiffTables, Combined:
		dd, da := m.diffExprs(v) // ⊎-of-shards when the view is sharded
		cur, err = applyDelta(cur, dd, da)
		if err != nil {
			return nil, err
		}
	}
	switch v.Scenario {
	case BaseLogs, Combined:
		cur, err = applyDelta(cur, v.blDel, v.blAdd)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}
