package core

import (
	"math/rand"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// TestQueryFreshMatchesDirectEvaluation: for every scenario and random
// transaction streams, QueryFresh must return Q's CURRENT value even
// though MV is stale — and must leave MV untouched.
func TestQueryFreshMatchesDirectEvaluation(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	u := algebra.NewRandomUniverse(2)
	for _, sc := range []Scenario{Immediate, BaseLogs, DiffTables, Combined} {
		for trial := 0; trial < 10; trial++ {
			db := storage.NewDatabase()
			for _, name := range u.Tables {
				tb, _ := db.Create(name, u.Sch, storage.External)
				for i, n := 0, r.Intn(6); i < n; i++ {
					if err := tb.Insert(schema.Row(r.Intn(4), r.Intn(4)), 1); err != nil {
						t.Fatal(err)
					}
				}
			}
			def := u.RandomQuery(r, 3)
			m := NewManager(db)
			v, err := m.DefineView("v", def, sc)
			if err != nil {
				t.Fatal(err)
			}

			for step := 0; step < 5; step++ {
				del, ins := u.RandomDelta(r)
				tx := txn.Txn{u.Tables[r.Intn(len(u.Tables))]: txn.Update{Delete: del, Insert: ins}}
				if err := m.Execute(tx); err != nil {
					t.Fatal(err)
				}
				if sc == Combined && step == 2 {
					if err := m.Propagate("v"); err != nil {
						t.Fatal(err)
					}
				}

				fresh, err := m.QueryFresh("v", nil)
				if err != nil {
					t.Fatalf("%v trial %d step %d: %v", sc, trial, step, err)
				}
				want, err := algebra.Eval(def, db)
				if err != nil {
					t.Fatal(err)
				}
				if !fresh.Equal(want) {
					t.Fatalf("%v trial %d step %d: fresh=%v want=%v\ndef=%s", sc, trial, step, fresh, want, def)
				}
				// MV untouched: the invariant still holds.
				if err := m.CheckInvariant("v"); err != nil {
					t.Fatalf("%v trial %d step %d: QueryFresh disturbed state: %v", sc, trial, step, err)
				}
			}
			_ = v
		}
	}
}

func TestQueryFreshWithPredicate(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 77, 9)))); err != nil {
		t.Fatal(err)
	}
	// The stale MV does not have item 77; the fresh slice does.
	stale, _ := m.Query("hv")
	found := false
	stale.Each(func(tu schema.Tuple, _ int) {
		if tu[3].AsInt() == 77 {
			found = true
		}
	})
	if found {
		t.Fatal("MV unexpectedly fresh")
	}
	slice, err := m.QueryFresh("hv", algebra.Eq(algebra.A("itemNo"), algebra.C(77)))
	if err != nil {
		t.Fatal(err)
	}
	if slice.Len() != 1 {
		t.Fatalf("fresh slice = %v", slice)
	}
	// Bad predicate fails cleanly.
	if _, err := m.QueryFresh("hv", algebra.Eq(algebra.A("nothere"), algebra.C(1))); err == nil {
		t.Fatal("unbindable predicate accepted")
	}
	if _, err := m.QueryFresh("ghost", nil); err == nil {
		t.Fatal("missing view accepted")
	}
}

func TestQueryFreshSharedLogs(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db, WithSharedLogs())
	if _, err := m.DefineView("hv", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(0, 88, 2)))); err != nil {
		t.Fatal(err)
	}
	fresh, err := m.QueryFresh("hv", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := algebra.Eval(def, db)
	if !fresh.Equal(want) {
		t.Fatalf("shared-log fresh query wrong: %v vs %v", fresh, want)
	}
	// The window was not consumed.
	if m.SharedLogVolume("sales") != 1 {
		t.Fatal("QueryFresh consumed the shared-log window")
	}
}
