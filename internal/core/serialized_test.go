package core

import (
	"sync"
	"testing"

	"dvm/internal/bag"
	"dvm/internal/txn"
)

// TestSerializedConcurrentStress hammers a Serialized manager with
// concurrent writers (transactions + maintenance) and readers, then
// checks the invariant and final consistency. Run with -race to verify
// synchronization.
func TestSerializedConcurrentStress(t *testing.T) {
	db, def := retailDB(t)
	s := NewSerialized(NewManager(db))
	if _, err := s.Manager().DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}

	const (
		writers   = 3
		readers   = 3
		perWorker = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := txn.Insert("sales", bag.Of(saleRow((id*7+i)%10, 100*id+i, 1+i%3)))
				if err := s.Execute(tx); err != nil {
					errs <- err
					return
				}
				switch i % 10 {
				case 3:
					if err := s.Propagate("hv"); err != nil {
						errs <- err
						return
					}
				case 6:
					if err := s.PartialRefresh("hv"); err != nil {
						errs <- err
						return
					}
				case 9:
					if err := s.Refresh("hv"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Query("hv"); err != nil {
					errs <- err
					return
				}
				if i%5 == 0 {
					if _, err := s.QueryFresh("hv", nil); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := s.CheckInvariant("hv"); err != nil {
		t.Fatal(err)
	}
	if err := s.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Manager().View("hv")
	if v.Stats.MakeSafeOps != writers*perWorker {
		t.Fatalf("lost transactions: %d ops, want %d", v.Stats.MakeSafeOps, writers*perWorker)
	}
}

func TestSerializedRecompute(t *testing.T) {
	db, def := retailDB(t)
	s := NewSerialized(NewManager(db))
	if _, err := s.Manager().DefineView("hv", def, BaseLogs); err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(txn.Insert("sales", bag.Of(saleRow(0, 1, 1)))); err != nil {
		t.Fatal(err)
	}
	if err := s.RefreshRecompute("hv"); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}
