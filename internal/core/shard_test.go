package core

import (
	"math/rand"
	"strings"
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/txn"
)

// randomRetailTxn builds a small random transaction against the
// retailDB schema, deterministic in rng.
func randomRetailTxn(rng *rand.Rand) txn.Txn {
	t := txn.Txn{}
	cust := rng.Intn(10)
	items := 1 + rng.Intn(4)
	ins := bag.New()
	for i := 0; i < items; i++ {
		qty := rng.Intn(4) // includes zero-quantity rows
		ins.Add(saleRow(cust, rng.Intn(7), qty), 1)
	}
	t["sales"] = txn.Update{Insert: ins}
	if rng.Intn(4) == 0 {
		// Delete a (possibly absent) earlier sale; Normalize clamps.
		t["sales"] = txn.Update{
			Insert: ins,
			Delete: bag.Of(saleRow(cust, rng.Intn(7), rng.Intn(4))),
		}
	}
	if rng.Intn(6) == 0 {
		// Score flip for one customer: delete+insert both score rows so
		// exactly one of the pair is effective.
		c := rng.Intn(10)
		t["customer"] = txn.Update{
			Delete: bag.Of(schema.Row(c, "cust", "addr", "High"), schema.Row(c, "cust", "addr", "Low")),
			Insert: bag.Of(schema.Row(c, "cust", "addr", []string{"High", "Low"}[rng.Intn(2)])),
		}
	}
	return t
}

// runShardedVsSerial drives identical random streams through a serial
// manager and a sharded one, interleaving the Figure 3 transactions,
// and checks at every step that the two agree and all invariants hold.
func runShardedVsSerial(t *testing.T, shards int, opts ...Option) {
	t.Helper()
	dbS, defS := retailDB(t)
	dbP, defP := retailDB(t)
	serial := NewManager(dbS)
	parted := NewManager(dbP, WithShards(shards))
	if parted.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", parted.Shards(), shards)
	}
	if _, err := serial.DefineView("hv", defS, Combined, opts...); err != nil {
		t.Fatal(err)
	}
	vp, err := parted.DefineView("hv", defP, Combined, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if vp.sh == nil {
		t.Fatal("Combined view under WithShards must be sharded")
	}

	check := func(step string) {
		t.Helper()
		for _, m := range []*Manager{serial, parted} {
			if err := m.CheckInvariant("hv"); err != nil {
				t.Fatalf("%s: %v", step, err)
			}
		}
		if err := parted.CheckShardInvariant("hv"); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		qs, err := serial.Query("hv")
		if err != nil {
			t.Fatal(err)
		}
		qp, err := parted.Query("hv")
		if err != nil {
			t.Fatal(err)
		}
		if !qs.Equal(qp) {
			t.Fatalf("%s: sharded MV diverged from serial MV", step)
		}
		fs, err := serial.QueryFresh("hv", nil)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := parted.QueryFresh("hv", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !fs.Equal(fp) {
			t.Fatalf("%s: sharded QueryFresh diverged from serial", step)
		}
	}

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		tx := randomRetailTxn(rng)
		if err := serial.Execute(tx); err != nil {
			t.Fatalf("step %d serial: %v", i, err)
		}
		if err := parted.Execute(tx); err != nil {
			t.Fatalf("step %d sharded: %v", i, err)
		}
		switch {
		case i%7 == 3:
			for _, m := range []*Manager{serial, parted} {
				if err := m.Propagate("hv"); err != nil {
					t.Fatalf("step %d propagate: %v", i, err)
				}
			}
			check("after propagate")
		case i%11 == 5:
			for _, m := range []*Manager{serial, parted} {
				if err := m.PartialRefresh("hv"); err != nil {
					t.Fatalf("step %d partial refresh: %v", i, err)
				}
			}
			check("after partial refresh")
		case i%17 == 9:
			for _, m := range []*Manager{serial, parted} {
				if err := m.Refresh("hv"); err != nil {
					t.Fatalf("step %d refresh: %v", i, err)
				}
				if err := m.CheckConsistent("hv"); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			check("after refresh")
		default:
			check("after execute")
		}
	}
	for _, m := range []*Manager{serial, parted} {
		if err := m.RefreshRecompute("hv"); err != nil {
			t.Fatal(err)
		}
	}
	check("after recompute")
}

// TestShardedJoinViewMatchesSerial: the Example 1.1 join view under
// key co-partitioning, at 2 and 4 shards, weak and strong minimality.
func TestShardedJoinViewMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 4} {
		runShardedVsSerial(t, n)
	}
	runShardedVsSerial(t, 4, WithStrongMinimality())
}

// TestShardedJoinPlanIsKeyPartitioned verifies planShards picks the
// custId equivalence class for the retail join and traces it through
// the projection.
func TestShardedJoinPlanIsKeyPartitioned(t *testing.T) {
	_, def := retailDB(t)
	keyCols, viewKey, ok := planShards(def)
	if !ok {
		t.Fatal("retail join view must get a shard-local plan")
	}
	// custId is column 0 in both schemas, and the projection's first
	// output column.
	if keyCols["customer"] != 0 || keyCols["sales"] != 0 {
		t.Fatalf("keyCols = %v, want custId (0) for both bases", keyCols)
	}
	if viewKey != 0 {
		t.Fatalf("viewKey = %d, want 0 (custId)", viewKey)
	}
}

// productFreeDef builds ε(σ_{s.quantity≠0}(sales)): a ×-free view with
// a duplicate-eliminating top, exercising the full-tuple pointwise
// plan.
func productFreeDef(t testing.TB) algebra.Expr {
	t.Helper()
	salesSch := schema.NewSchema(
		schema.Col("s.custId", schema.TInt),
		schema.Col("s.itemNo", schema.TInt),
		schema.Col("s.quantity", schema.TInt),
		schema.Col("s.salesPrice", schema.TFloat),
	)
	sel, err := algebra.NewSelect(
		algebra.Neq(algebra.A("s.quantity"), algebra.C(0)),
		algebra.NewBase("sales", salesSch),
	)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.NewDupElim(sel)
}

// TestShardedProductFreeView drives the pointwise (full-tuple hash)
// plan: ε and σ over one base, no join.
func TestShardedProductFreeView(t *testing.T) {
	dbS, _ := retailDB(t)
	dbP, _ := retailDB(t)
	serial := NewManager(dbS)
	parted := NewManager(dbP, WithShards(3))
	defS := productFreeDef(t)
	defP := productFreeDef(t)

	keyCols, viewKey, ok := planShards(defS)
	if !ok || keyCols["sales"] != -1 || viewKey != -1 {
		t.Fatalf("×-free view must get the full-tuple plan, got %v/%d/%v", keyCols, viewKey, ok)
	}

	if _, err := serial.DefineView("dv", defS, Combined); err != nil {
		t.Fatal(err)
	}
	vp, err := parted.DefineView("dv", defP, Combined)
	if err != nil {
		t.Fatal(err)
	}
	if vp.sh == nil || vp.sh.merged {
		t.Fatal("×-free view must shard with a local plan")
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		tx := randomRetailTxn(rng)
		delete(tx, "customer") // view only reads sales
		if err := serial.Execute(tx); err != nil {
			t.Fatal(err)
		}
		if err := parted.Execute(tx); err != nil {
			t.Fatal(err)
		}
		if i%5 == 2 {
			if err := serial.Propagate("dv"); err != nil {
				t.Fatal(err)
			}
			if err := parted.Propagate("dv"); err != nil {
				t.Fatal(err)
			}
		}
		if err := parted.CheckInvariant("dv"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := parted.CheckShardInvariant("dv"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	for _, m := range []*Manager{serial, parted} {
		if err := m.Refresh("dv"); err != nil {
			t.Fatal(err)
		}
	}
	qs, _ := serial.Query("dv")
	qp, _ := parted.Query("dv")
	if !qs.Equal(qp) {
		t.Fatal("sharded ×-free view diverged from serial")
	}
}

// TestShardedMergedFallback: a cross join without a covering equality
// class must fall back to merged evaluation and still maintain the
// invariant exactly.
func TestShardedMergedFallback(t *testing.T) {
	dbP, _ := retailDB(t)
	custSch := schema.NewSchema(
		schema.Col("c.custId", schema.TInt),
		schema.Col("c.name", schema.TString),
		schema.Col("c.address", schema.TString),
		schema.Col("c.score", schema.TString),
	)
	salesSch := schema.NewSchema(
		schema.Col("s.custId", schema.TInt),
		schema.Col("s.itemNo", schema.TInt),
		schema.Col("s.quantity", schema.TInt),
		schema.Col("s.salesPrice", schema.TFloat),
	)
	// σ_{score='High'}(customer × sales): no cross-base equality.
	def, err := algebra.NewSelect(
		algebra.Eq(algebra.A("c.score"), algebra.C("High")),
		algebra.NewProduct(algebra.NewBase("customer", custSch), algebra.NewBase("sales", salesSch)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := planShards(def); ok {
		t.Fatal("equality-free cross join must not get a shard-local plan")
	}
	parted := NewManager(dbP, WithShards(2))
	v, err := parted.DefineView("xv", def, Combined)
	if err != nil {
		t.Fatal(err)
	}
	if v.sh == nil || !v.sh.merged {
		t.Fatal("cross join must shard in merged-fallback mode")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		if err := parted.Execute(randomRetailTxn(rng)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 1 {
			if err := parted.Propagate("xv"); err != nil {
				t.Fatal(err)
			}
		}
		if err := parted.CheckInvariant("xv"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if err := parted.CheckShardInvariant("xv"); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := parted.Refresh("xv"); err != nil {
		t.Fatal(err)
	}
	if err := parted.CheckConsistent("xv"); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRejections: shared logs are incompatible, and SetShards
// refuses once views exist.
func TestShardedRejections(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db, WithSharedLogs(), WithShards(2))
	if _, err := m.DefineView("hv", def, Combined); err == nil || !strings.Contains(err.Error(), "shared logs") {
		t.Fatalf("sharding + shared logs must be rejected, got %v", err)
	}

	db2, def2 := retailDB(t)
	m2 := NewManager(db2)
	if err := m2.SetShards(4); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.DefineView("hv", def2, Combined); err != nil {
		t.Fatal(err)
	}
	if err := m2.SetShards(2); err == nil {
		t.Fatal("SetShards must fail once views exist")
	}
}

// TestShardedDropViewCleansUp: dropping the only sharded view removes
// its shard groups and the mirror tables.
func TestShardedDropViewCleansUp(t *testing.T) {
	db, def := retailDB(t)
	m := NewManager(db, WithShards(2))
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
	if len(m.mirrors) == 0 {
		t.Fatal("join view must register base mirrors")
	}
	if err := m.DropView("hv"); err != nil {
		t.Fatal(err)
	}
	if len(m.mirrors) != 0 {
		t.Fatalf("mirrors leaked after DropView: %d", len(m.mirrors))
	}
	for _, n := range db.Names() {
		if strings.HasPrefix(n, "__log_") || strings.HasPrefix(n, "__dmv_") || strings.HasPrefix(n, "__shard_") {
			t.Fatalf("table %s leaked after DropView", n)
		}
	}
	// Redefinition after drop works (fresh groups, fresh mirrors).
	if _, err := m.DefineView("hv", def, Combined); err != nil {
		t.Fatal(err)
	}
}

// TestPlanShardsRejectsUnsafeShapes: a Π below a pointwise operator
// breaks value alignment and must fall back to merged mode.
func TestPlanShardsRejectsUnsafeShapes(t *testing.T) {
	sch := schema.NewSchema(schema.Col("a", schema.TInt), schema.Col("b", schema.TInt))
	base := algebra.NewBase("r", sch)
	proj, err := algebra.NewProject([]string{"a"}, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := algebra.NewProject([]string{"b"}, []string{"a"}, base)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := algebra.NewMonus(proj, base2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := planShards(mon); ok {
		t.Fatal("Monus over projections must not get a shard-local plan")
	}
	// But a top-level Π over a pointwise body is fine.
	sel, err := algebra.NewSelect(algebra.Neq(algebra.A("a"), algebra.C(0)), base)
	if err != nil {
		t.Fatal(err)
	}
	top, err := algebra.NewProject([]string{"a"}, nil, sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := planShards(top); !ok {
		t.Fatal("top-level Π over σ(base) must get the pointwise plan")
	}
}
