package core

import "dvm/internal/obs"

// viewMetrics caches one view's obs instruments so hot paths never take
// the registry lock. Families and their paper quantities are documented
// in docs/observability.md (a test enforces the docs stay complete).
type viewMetrics struct {
	makesafeNs       *obs.Histogram // per-transaction overhead of makesafe_*
	logAppendTuples  *obs.Counter   // raw tuples appended to logs
	logSizeTuples    *obs.Gauge     // current log size (▼R ⊎ ▲R over bases)
	diffSizeTuples   *obs.Gauge     // current differential size (∇MV ⊎ △MV)
	propagateNs      *obs.Histogram // propagate_C wall time
	propagateTuples  *obs.Counter   // log tuples folded by propagate_C
	refreshNs        *obs.Histogram // refresh_* wall time
	refreshTuples    *obs.Counter   // tuples consumed by refresh_*
	partialNs        *obs.Histogram // partial_refresh_C wall time
	recomputeNs      *obs.Histogram // full recompute wall time
	downtimeNs       *obs.Histogram // exclusive MV-lock hold (view downtime)
	deltaCompileNs   *obs.Histogram // one-time delta-program compile cost
	compiledEvalNs   *obs.Histogram // per-evaluation compiled-program wall time
	indexProbeTuples *obs.Counter   // candidate pairs probed by indexed joins
	// phase maps each Figure-3 phase name to its resource-attribution
	// pair (phase_cpu_ns / phase_alloc_bytes, label "view/phase"),
	// created eagerly so the families exist before any maintenance runs.
	phase map[string]*obs.PhaseAcct
}

// phaseAcct returns the view's accounting pair for one phase; nil-safe
// so entry points can attribute unconditionally.
func (vm *viewMetrics) phaseAcct(phase string) *obs.PhaseAcct {
	if vm == nil {
		return nil
	}
	return vm.phase[phase]
}

func newViewMetrics(r *obs.Registry, view string) *viewMetrics {
	phase := make(map[string]*obs.PhaseAcct, 5)
	for _, p := range obs.Phases() {
		phase[p] = obs.NewPhaseAcct(r, view, p)
	}
	return &viewMetrics{
		phase:            phase,
		makesafeNs:       r.Histogram("makesafe_ns", view),
		logAppendTuples:  r.Counter("log_append_tuples", view),
		logSizeTuples:    r.Gauge("log_size_tuples", view),
		diffSizeTuples:   r.Gauge("diff_size_tuples", view),
		propagateNs:      r.Histogram("propagate_ns", view),
		propagateTuples:  r.Counter("propagate_tuples", view),
		refreshNs:        r.Histogram("refresh_ns", view),
		refreshTuples:    r.Counter("refresh_tuples", view),
		partialNs:        r.Histogram("partial_refresh_ns", view),
		recomputeNs:      r.Histogram("recompute_ns", view),
		downtimeNs:       r.Histogram("view_downtime_ns", view),
		deltaCompileNs:   r.Histogram("delta_compile_ns", view),
		compiledEvalNs:   r.Histogram("compiled_eval_ns", view),
		indexProbeTuples: r.Counter("index_probe_tuples", view),
	}
}

// shardMetrics caches one shard's obs instruments, labelled
// "view/sNN". Created eagerly at DefineView so the shard families are
// present (at zero) from the moment a sharded view exists.
type shardMetrics struct {
	propagateShardNs *obs.Histogram // one worker's DEL/ADD evaluation wall time
	foldTuples       *obs.Counter   // delta tuples folded into this diff shard
	logSizeTuples    *obs.Gauge     // current log volume routed to this shard
}

func newShardMetrics(r *obs.Registry, label string) *shardMetrics {
	return &shardMetrics{
		propagateShardNs: r.Histogram("propagate_shard_ns", label),
		foldTuples:       r.Counter("shard_fold_tuples", label),
		logSizeTuples:    r.Gauge("shard_log_tuples", label),
	}
}

// logVolume returns the tuple volume of the view's private log tables.
// In shared-log mode these hold the materialized window during a
// propagate/refresh and are empty otherwise (the pending shared window
// is counted separately by updateSizeGauges, never both at once).
func (m *Manager) logVolume(v *View) int {
	if v.sh != nil {
		n := 0
		for _, b := range v.bases {
			for i := 0; i < v.sh.n; i++ {
				n += v.sh.logDel[b][i].Len() + v.sh.logIns[b][i].Len()
			}
		}
		return n
	}
	n := 0
	for _, b := range v.bases {
		if t, err := m.db.Bag(v.logDel[b]); err == nil {
			n += t.Len()
		}
		if t, err := m.db.Bag(v.logIns[b]); err == nil {
			n += t.Len()
		}
	}
	return n
}

// shardLogVolume returns the log volume routed to one shard.
func shardLogVolume(v *View, i int) int {
	n := 0
	for _, b := range v.bases {
		n += v.sh.logDel[b][i].Len() + v.sh.logIns[b][i].Len()
	}
	return n
}

// diffVolume returns the tuple volume of the view's differential tables
// (∇MV ⊎ △MV).
func (m *Manager) diffVolume(v *View) int {
	if v.sh != nil {
		n := 0
		for i := 0; i < v.sh.n; i++ {
			n += v.sh.dtDel[i].Len() + v.sh.dtAdd[i].Len()
		}
		return n
	}
	n := 0
	if t, err := m.db.Bag(v.dtDel); err == nil {
		n += t.Len()
	}
	if t, err := m.db.Bag(v.dtAdd); err == nil {
		n += t.Len()
	}
	return n
}

// updateSizeGauges refreshes the view's log/differential size gauges
// from the live tables. Called after every operation that grows or
// empties them, so \stats always reflects current staleness debt.
func (m *Manager) updateSizeGauges(v *View) {
	if v.met == nil {
		return
	}
	if len(v.logDel) > 0 {
		n := m.logVolume(v)
		if m.shared != nil {
			n += m.pendingShared(v)
		}
		v.met.logSizeTuples.Set(int64(n))
	}
	if v.dtDel != "" {
		v.met.diffSizeTuples.Set(int64(m.diffVolume(v)))
	}
	if v.sh != nil {
		for i, sm := range v.sh.met {
			sm.logSizeTuples.Set(int64(shardLogVolume(v, i)))
		}
	}
}
