package core

import (
	"fmt"

	"dvm/internal/sharedlog"
	"dvm/internal/txn"
)

// sharedState holds the manager's shared-log machinery (the Section 7
// extension): one append-only log per base table, a cursor per
// (view, table), and reference counts for truncation.
type sharedState struct {
	logs    map[string]*sharedlog.Log
	cursors map[string]map[string]int64 // view -> table -> next-unseen LSN
	refs    map[string]int              // table -> #views logging it
}

// ManagerOption configures a Manager at construction.
type ManagerOption func(*Manager)

// WithSharedLogs switches the manager to shared base-table logs: every
// transaction appends its change batch ONCE per table, in O(|change|),
// independent of the number of registered views — the property the
// paper's Section 7 asks for. Views materialize their private log
// window from the shared log on demand (propagate, refresh, invariant
// checks); entries all views have consumed are truncated.
func WithSharedLogs() ManagerOption {
	return func(m *Manager) {
		m.shared = &sharedState{
			logs:    make(map[string]*sharedlog.Log),
			cursors: make(map[string]map[string]int64),
			refs:    make(map[string]int),
		}
	}
}

// SharedLogsEnabled reports whether the manager uses shared logs.
func (m *Manager) SharedLogsEnabled() bool { return m.shared != nil }

// SharedLogVolume returns the retained tuple volume of a base table's
// shared log (0 when absent) — what truncation keeps bounded.
func (m *Manager) SharedLogVolume(table string) int {
	if m.shared == nil {
		return 0
	}
	if l, ok := m.shared.logs[table]; ok {
		return l.TupleVolume()
	}
	return 0
}

// pendingShared returns the tuple volume of the view's unconsumed
// shared-log window across its bases — the staleness debt the
// log_size_tuples gauge reports in shared-log mode.
func (m *Manager) pendingShared(v *View) int {
	cur, ok := m.shared.cursors[v.Name]
	if !ok {
		return 0
	}
	n := 0
	for _, b := range v.bases {
		if l, ok := m.shared.logs[b]; ok {
			n += l.VolumeSince(cur[b])
		}
	}
	return n
}

// registerSharedView hooks a newly defined BL/C view into the shared
// logs: each base gets a log (created at first use) and the view's
// cursor starts at the current head (the view is consistent as of now).
func (m *Manager) registerSharedView(v *View) error {
	cur := map[string]int64{}
	for _, b := range v.bases {
		l, ok := m.shared.logs[b]
		if !ok {
			tb, err := m.db.Table(b)
			if err != nil {
				return err
			}
			l = sharedlog.New(b, tb.Schema())
			m.shared.logs[b] = l
		}
		m.shared.refs[b]++
		cur[b] = l.Head()
	}
	m.shared.cursors[v.Name] = cur
	return nil
}

// unregisterSharedView removes a dropped view's cursors and reference
// counts, then truncates whatever became unreachable.
func (m *Manager) unregisterSharedView(v *View) {
	if m.shared == nil {
		return
	}
	if _, ok := m.shared.cursors[v.Name]; !ok {
		return
	}
	delete(m.shared.cursors, v.Name)
	for _, b := range v.bases {
		m.shared.refs[b]--
		if m.shared.refs[b] <= 0 {
			delete(m.shared.refs, b)
			delete(m.shared.logs, b)
			continue
		}
		m.truncateShared(b)
	}
}

// appendShared records the transaction's change batches into the shared
// logs — once per logged table, regardless of how many views exist.
func (m *Manager) appendShared(nt txn.Txn) {
	for name, u := range nt {
		l, ok := m.shared.logs[name]
		if !ok {
			continue // no deferred view logs this table
		}
		del := u.Delete
		if del != nil {
			del = del.Clone()
		}
		ins := u.Insert
		if ins != nil {
			ins = ins.Clone()
		}
		if (del == nil || del.Empty()) && (ins == nil || ins.Empty()) {
			continue
		}
		l.Append(del, ins)
	}
}

// materializeWindow fills the view's private log tables with the merged
// shared-log window [cursor, head) for each base, WITHOUT advancing the
// cursor. After this, every Figure 3 algorithm (and the invariant
// checker) sees exactly the per-view log state it expects.
func (m *Manager) materializeWindow(v *View) error {
	cur, ok := m.shared.cursors[v.Name]
	if !ok {
		return fmt.Errorf("core: view %q has no shared-log cursors", v.Name)
	}
	for _, b := range v.bases {
		l := m.shared.logs[b]
		del, ins, err := l.Merge(cur[b], l.Head())
		if err != nil {
			return err
		}
		dt, err := m.db.Table(v.logDel[b])
		if err != nil {
			return err
		}
		it, err := m.db.Table(v.logIns[b])
		if err != nil {
			return err
		}
		dt.Replace(del)
		it.Replace(ins)
	}
	return nil
}

// advanceCursors moves the view's cursors to the shared-log heads (after
// a successful propagate/refresh consumed the window) and truncates.
func (m *Manager) advanceCursors(v *View) {
	cur := m.shared.cursors[v.Name]
	for _, b := range v.bases {
		cur[b] = m.shared.logs[b].Head()
		m.truncateShared(b)
	}
}

// truncateShared drops shared-log entries every logging view has
// consumed.
func (m *Manager) truncateShared(table string) {
	l, ok := m.shared.logs[table]
	if !ok {
		return
	}
	min := l.Head()
	for _, cur := range m.shared.cursors {
		if lsn, ok := cur[table]; ok && lsn < min {
			min = lsn
		}
	}
	l.TruncateTo(min)
}
