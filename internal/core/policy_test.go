package core

import (
	"testing"

	"dvm/internal/bag"
	"dvm/internal/txn"
)

func policySetup(t *testing.T, sc Scenario) *Manager {
	t.Helper()
	db, def := retailDB(t)
	m := NewManager(db)
	if _, err := m.DefineView("hv", def, sc); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPolicyValidation(t *testing.T) {
	m := policySetup(t, BaseLogs)
	if _, err := m.NewRunner("hv", Policy{PropagateEvery: 1, RefreshEvery: 4}); err == nil {
		t.Fatal("propagate policy on BL view accepted")
	}
	if _, err := m.NewRunner("hv", Policy{RefreshEvery: 4, Partial: true}); err == nil {
		t.Fatal("partial policy on BL view accepted")
	}
	if _, err := m.NewRunner("ghost", Policy{}); err == nil {
		t.Fatal("policy on missing view accepted")
	}
	mc := policySetup(t, Combined)
	if _, err := mc.NewRunner("hv", Policy{PropagateEvery: 8, RefreshEvery: 4}); err == nil {
		t.Fatal("k > m accepted")
	}
	if _, err := mc.NewRunner("hv", Policy{PropagateEvery: 2, RefreshEvery: 8}); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestPolicy1Schedule(t *testing.T) {
	// Policy 1 (Example 5.4 scaled): propagate every k=2, refresh_C every
	// m=6. Over 12 ticks with one txn per tick: propagates at 2,4,8,10
	// (6 and 12 are subsumed by refresh), refreshes at 6 and 12.
	m := policySetup(t, Combined)
	r, err := m.NewRunner("hv", Policy{PropagateEvery: 2, RefreshEvery: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
		if err := r.Tick(); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariant("hv"); err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
		// At refresh ticks the view is fully consistent.
		if (i+1)%6 == 0 {
			if err := m.CheckConsistent("hv"); err != nil {
				t.Fatalf("tick %d: %v", i+1, err)
			}
		}
	}
	v, _ := m.View("hv")
	if v.Stats.Propagates != 4 {
		t.Fatalf("Propagates = %d, want 4 (refresh ticks subsume their propagate)", v.Stats.Propagates)
	}
	if v.Stats.Refreshes != 2 {
		t.Fatalf("Refreshes = %d, want 2", v.Stats.Refreshes)
	}
	if r.TickCount() != 12 {
		t.Fatalf("TickCount = %d", r.TickCount())
	}
}

func TestPolicy2PartialRefresh(t *testing.T) {
	// Policy 2: refresh uses partial_refresh_C — view lags by at most k
	// ticks, downtime is minimal, and the view is generally NOT fully
	// consistent at refresh ticks (data between last propagate and now is
	// missing).
	m := policySetup(t, Combined)
	r, err := m.NewRunner("hv", Policy{PropagateEvery: 2, RefreshEvery: 4, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	sawStale := false
	for i := 0; i < 8; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
		if err := r.Tick(); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariant("hv"); err != nil {
			t.Fatalf("tick %d: %v", i+1, err)
		}
		if (i+1)%4 == 0 {
			if err := m.CheckConsistent("hv"); err != nil {
				sawStale = true
			}
		}
	}
	v, _ := m.View("hv")
	if v.Stats.PartialCount != 2 {
		t.Fatalf("PartialCount = %d, want 2", v.Stats.PartialCount)
	}
	if v.Stats.Refreshes != 0 {
		t.Fatalf("full refreshes = %d, want 0 under Policy 2", v.Stats.Refreshes)
	}
	// With propagate at tick 4 and partial refresh also at tick 4, the
	// view IS consistent there; but at most k ticks stale in general.
	// We only require that partial refresh never broke the invariant and
	// that a final full refresh converges.
	_ = sawStale
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestOnDemandPolicy(t *testing.T) {
	m := policySetup(t, Combined)
	r, err := m.NewRunner("hv", Policy{PropagateEvery: 1, RefreshEvery: 4, OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := m.Execute(txn.Insert("sales", bag.Of(saleRow(i%10, i, 1)))); err != nil {
			t.Fatal(err)
		}
		if err := r.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := m.View("hv")
	if v.Stats.Refreshes != 0 {
		t.Fatal("on-demand policy refreshed periodically")
	}
	if v.Stats.Propagates != 8 {
		t.Fatalf("Propagates = %d, want 8", v.Stats.Propagates)
	}
	// The demand arrives: refresh before querying.
	if err := r.RefreshNow(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}
