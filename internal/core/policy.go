package core

import "fmt"

// Policy is a tick-driven refresh policy for one view (Section 5.3). The
// unit of time is an abstract tick supplied by the caller (the benchmark
// harness advances one tick per workload batch), keeping policies
// deterministic rather than wall-clock driven.
//
// Policy 1 of the paper: PropagateEvery=k, RefreshEvery=m, Partial=false.
// Policy 2: PropagateEvery=k, RefreshEvery=m, Partial=true.
type Policy struct {
	// PropagateEvery runs propagate_C every k ticks (0 disables).
	// Only meaningful for Combined views.
	PropagateEvery int
	// RefreshEvery runs the refresh step every m ticks (0 disables).
	RefreshEvery int
	// Partial selects partial_refresh_C instead of refresh_C for the
	// refresh step (Policy 2: minimal downtime, view at most k ticks
	// stale after refresh).
	Partial bool
	// OnDemand, when set, suppresses periodic refresh; the caller invokes
	// RefreshNow before querying.
	OnDemand bool
}

// Runner drives one view's policy over ticks.
type Runner struct {
	m      *Manager
	view   string
	policy Policy
	tick   int
}

// NewRunner validates the policy against the view's scenario.
func (m *Manager) NewRunner(view string, p Policy) (*Runner, error) {
	v, err := m.View(view)
	if err != nil {
		return nil, err
	}
	if p.PropagateEvery > 0 && v.Scenario != Combined {
		return nil, fmt.Errorf("core: policy propagates but view %q is %v, not Combined", view, v.Scenario)
	}
	if p.Partial && v.Scenario != Combined && v.Scenario != DiffTables {
		return nil, fmt.Errorf("core: partial refresh needs differential tables (view %q is %v)", view, v.Scenario)
	}
	if p.RefreshEvery > 0 && p.PropagateEvery > p.RefreshEvery {
		return nil, fmt.Errorf("core: policy has k=%d > m=%d (paper requires m > k)", p.PropagateEvery, p.RefreshEvery)
	}
	return &Runner{m: m, view: view, policy: p}, nil
}

// Tick advances one time unit, running whatever the policy schedules at
// this tick. Propagation runs before refresh when both fall on the same
// tick (refresh_C subsumes the propagate anyway).
func (r *Runner) Tick() error {
	r.tick++
	if k := r.policy.PropagateEvery; k > 0 && r.tick%k == 0 {
		// Skip the explicit propagate when a full refresh runs this tick.
		m := r.policy.RefreshEvery
		refreshNow := m > 0 && !r.policy.OnDemand && r.tick%m == 0 && !r.policy.Partial
		if !refreshNow {
			if err := r.m.Propagate(r.view); err != nil {
				return err
			}
		}
	}
	if m := r.policy.RefreshEvery; m > 0 && !r.policy.OnDemand && r.tick%m == 0 {
		return r.RefreshNow()
	}
	return nil
}

// RefreshNow performs the policy's refresh step immediately (used for
// on-demand and on-query policies).
func (r *Runner) RefreshNow() error {
	if r.policy.Partial {
		return r.m.PartialRefresh(r.view)
	}
	return r.m.Refresh(r.view)
}

// Tick returns the current tick count.
func (r *Runner) TickCount() int { return r.tick }
