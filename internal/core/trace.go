package core

import "dvm/internal/obs/trace"

// Tracer exposes the manager's structured tracer. It is created with
// every Manager (disabled by default); enable capture with SampleAll,
// SampleRate, or SampleThreshold and read completed trees with Last.
// See docs/observability.md ("Tracing").
func (m *Manager) Tracer() *trace.Tracer { return m.tracer }

// TraceStatement opens a root sql.stmt span and installs it as the
// parent for maintenance entry points the statement runs, so one SQL
// statement yields one causally complete tree. The returned func ends
// the span and restores the previous parent; call it exactly once
// (defer). Like all Manager writes it follows the single-writer
// discipline — concurrent readers must not call it.
func (m *Manager) TraceStatement(kind string) func() {
	sp := m.tracer.StartTrace(trace.SpanSQLStmt, trace.Str("kind", kind))
	prev := m.cur
	m.cur = sp
	return func() {
		m.cur = prev
		sp.End()
	}
}

// CurrentSpan returns the active statement span, if any (nil when
// tracing is off or no statement is in flight).
func (m *Manager) CurrentSpan() *trace.Span { return m.cur }

// startEntrySpan opens the span for one maintenance entry point
// (execute, refresh, propagate, ...): a child of the active statement
// span when one is installed, otherwise a new root trace — direct API
// callers get one trace per maintenance transaction.
func (m *Manager) startEntrySpan(name string, attrs ...trace.Attr) *trace.Span {
	if m.cur != nil {
		return m.cur.StartChild(name, attrs...)
	}
	return m.tracer.StartTrace(name, attrs...)
}
