package bag

import "dvm/internal/schema"

// IndexEntry is one row stored under an index key: the full tuple, its
// canonical key (kept so join outputs can compose their keys from the
// operands' instead of re-encoding), and its multiplicity.
type IndexEntry struct {
	Tuple schema.Tuple
	Key   string
	Count int
}

// Index is a hash index over one bag, keyed on a subset of its columns
// (the join columns). It is a snapshot: built from the bag's contents at
// construction time and validated against the bag's Version before
// reuse, so callers may cache an Index across evaluations and rebuild
// only when the underlying bag actually changed.
type Index struct {
	src *Bag
	ver uint64
	pos []int
	m   map[string][]IndexEntry
	buf []byte // reusable probe-key buffer
}

// NewIndex builds a hash index over b keyed on the given column
// positions, and enables b's mutation journal so the index can later
// be brought up to date incrementally (Sync). The positions slice is
// retained; callers must not mutate it.
func NewIndex(b *Bag, positions []int) *Index {
	ix := &Index{
		src: b,
		ver: b.ver,
		pos: positions,
		m:   make(map[string][]IndexEntry, len(b.m)),
	}
	b.EnableJournal(journalCap(b))
	var key []byte
	for k, e := range b.m {
		key = e.tuple.AppendKeyAt(key[:0], positions)
		ix.m[string(key)] = append(ix.m[string(key)], IndexEntry{Tuple: e.tuple, Key: k, Count: e.count})
	}
	return ix
}

// journalCap sizes a bag's mutation window relative to the rebuild
// cost it amortizes: once applying the backlog approaches a quarter of
// a full rebuild, rebuilding is no longer clearly worse.
func journalCap(b *Bag) int {
	if c := b.Distinct() / 4; c > 256 {
		return c
	}
	return 256
}

// Valid reports whether the index still describes b: it was built over
// this exact bag (pointer identity) and the bag has not been mutated
// since (Version match). Holding the *Bag inside the index keeps the
// pointer from being recycled while the index is cached.
func (ix *Index) Valid(b *Bag) bool { return ix.src == b && ix.ver == b.ver }

// Sync brings a cached index up to date with b: free when b is
// unchanged, O(|changes|) via b's mutation journal when the window
// covers the gap. It returns false when the index describes another
// bag or the journal cannot answer — the caller should rebuild. The
// number of journal entries applied is returned for work accounting.
func (ix *Index) Sync(b *Bag) (applied int, ok bool) {
	if ix.src != b {
		return 0, false
	}
	if ix.ver == b.ver {
		return 0, true
	}
	ents, ok := b.journalSince(ix.ver)
	if !ok {
		return 0, false
	}
	for _, e := range ents {
		ix.apply(e.t, e.d)
	}
	ix.ver = b.ver
	return len(ents), true
}

// apply folds one effective mutation into the index.
func (ix *Index) apply(t schema.Tuple, d int) {
	if d == 0 {
		return
	}
	ix.buf = t.AppendKeyAt(ix.buf[:0], ix.pos)
	key := string(ix.buf)
	bucket := ix.m[key]
	full := t.Key()
	for i := range bucket {
		if bucket[i].Key != full {
			continue
		}
		bucket[i].Count += d
		if bucket[i].Count <= 0 {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(ix.m, key)
			} else {
				ix.m[key] = bucket
			}
		}
		return
	}
	if d > 0 {
		ix.m[key] = append(bucket, IndexEntry{Tuple: t, Key: full, Count: d})
	}
}

// Positions returns the column positions the index is keyed on.
func (ix *Index) Positions() []int { return ix.pos }

// Len returns the number of distinct index keys.
func (ix *Index) Len() int { return len(ix.m) }

// JoinIndexed computes σ_pred(probe × indexed) (or indexed × probe when
// buildLeft is true) by probing ix with each distinct tuple of probe,
// keyed on probePos. pred is re-applied to every joined tuple, so the
// index key only needs to cover an equality subset of the predicate.
// It returns the join result plus the number of candidate pairs probed —
// the work actually done, as opposed to the |a|·|b| a rescan would pay.
func JoinIndexed(probe *Bag, probePos []int, ix *Index, buildLeft bool, pred func(schema.Tuple) bool) (*Bag, int) {
	out := New()
	probed := 0
	buf := ix.buf
	for kp, ep := range probe.m {
		buf = ep.tuple.AppendKeyAt(buf[:0], probePos)
		for _, eb := range ix.m[string(buf)] {
			probed++
			// A concat tuple's canonical key is the concatenation of its
			// halves' keys (per-value self-delimiting encoding), so the
			// output key is composed, never re-encoded.
			var joined schema.Tuple
			var key string
			if buildLeft {
				joined = eb.Tuple.Concat(ep.tuple)
				key = eb.Key + kp
			} else {
				joined = ep.tuple.Concat(eb.Tuple)
				key = kp + eb.Key
			}
			if pred(joined) {
				out.addKeyed(key, joined, ep.count*eb.Count)
			}
		}
	}
	ix.buf = buf
	return out, probed
}
