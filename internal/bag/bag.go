// Package bag implements finite bags (multisets) of tuples with the
// operations of the paper's bag algebra BA (Section 2.1): additive union
// ⊎, monus ∸, duplicate elimination ε, selection σ, projection Π, and
// cartesian product ×, plus the derived operations min (minimal
// intersection), max (maximal union), and SQL EXCEPT.
//
// A Bag maps canonical tuple keys to (tuple, multiplicity) entries. All
// operations are pure: they return fresh bags and never mutate operands,
// except the explicitly-mutating Add/Remove used by the storage layer.
package bag

import (
	"sort"
	"strings"

	"dvm/internal/schema"
)

type entry struct {
	tuple schema.Tuple
	count int
}

// Bag is a finite multiset of tuples. The zero value is NOT ready to use;
// call New. Bags are not safe for concurrent mutation.
type Bag struct {
	m    map[string]entry
	size int    // total multiplicity
	ver  uint64 // bumped on every mutation; lets caches detect staleness
	// Mutation journal (enabled by EnableJournal): the effective tuple
	// deltas applied since version jbase, in order, so derived
	// structures can catch up incrementally instead of rebuilding.
	// When jour is non-empty, ver == jbase + len(jour) holds.
	jour  []jentry
	jbase uint64
	jcap  int // 0 = journaling disabled
}

// jentry records one mutation's effective change: the tuple and the
// signed multiplicity delta actually applied (after clamping at zero).
type jentry struct {
	t schema.Tuple
	d int
}

// New returns an empty bag.
func New() *Bag { return &Bag{m: make(map[string]entry)} }

// Of builds a bag containing each given tuple once.
func Of(tuples ...schema.Tuple) *Bag {
	b := New()
	for _, t := range tuples {
		b.Add(t, 1)
	}
	return b
}

// FromCounts builds a bag from tuple/multiplicity pairs.
func FromCounts(pairs map[string]struct {
	Tuple schema.Tuple
	Count int
}) *Bag {
	b := New()
	for _, p := range pairs {
		b.Add(p.Tuple, p.Count)
	}
	return b
}

// Add inserts n copies of t (n may be negative to remove; multiplicities
// clamp at zero). It mutates the bag in place and returns it.
func (b *Bag) Add(t schema.Tuple, n int) *Bag {
	if n == 0 {
		return b
	}
	return b.addKeyed(t.Key(), t, n)
}

// addKeyed is Add for callers that already hold t's canonical key —
// iterating another bag's map, or composing a join output's key from
// its operands' keys — so hot paths skip re-encoding the tuple.
func (b *Bag) addKeyed(k string, t schema.Tuple, n int) *Bag {
	if n == 0 {
		return b
	}
	b.ver++
	e, ok := b.m[k]
	d := 0 // effective delta after clamping
	switch {
	case !ok:
		if n > 0 {
			b.m[k] = entry{tuple: t, count: n}
			b.size += n
			d = n
		}
	case e.count+n <= 0:
		b.size -= e.count
		delete(b.m, k)
		d = -e.count
	default:
		d = n
		b.size += n
		e.count += n
		b.m[k] = e
	}
	if b.jcap != 0 {
		b.journal(t, d)
	}
	return b
}

// AddBag folds all of o's contents into b in place.
func (b *Bag) AddBag(o *Bag) *Bag {
	for k, e := range o.m {
		b.addKeyed(k, e.tuple, e.count)
	}
	return b
}

// Remove removes up to n copies of t.
func (b *Bag) Remove(t schema.Tuple, n int) *Bag { return b.Add(t, -n) }

// Clear empties the bag in place.
func (b *Bag) Clear() {
	b.m = make(map[string]entry)
	b.size = 0
	b.ver++
	// A clear is not representable as journal entries; drop the window
	// so readers behind it rebuild (cheap — the bag is now empty).
	b.jour = b.jour[:0]
}

// EnableJournal makes the bag record each subsequent mutation's
// effective tuple delta, up to cap entries, so derived structures
// (Index.Sync) can catch up in O(|changes|) instead of rebuilding in
// O(|bag|). When more than cap mutations accumulate the window resets
// and stale readers fall back to a rebuild. Idempotent; a larger cap
// wins. Called automatically by NewIndex.
func (b *Bag) EnableJournal(cap int) {
	if cap > b.jcap {
		b.jcap = cap
	}
}

// journal appends one effective mutation. Every version bump while
// journaling is enabled must append exactly one entry (even a no-op
// clamp, d == 0), preserving ver == jbase + len(jour).
func (b *Bag) journal(t schema.Tuple, d int) {
	if len(b.jour) >= b.jcap {
		b.jour = b.jour[:0]
	}
	if len(b.jour) == 0 {
		b.jbase = b.ver - 1
	}
	b.jour = append(b.jour, jentry{t: t, d: d})
}

// journalSince returns the effective deltas applied after version v,
// or ok=false when the journal cannot answer (v predates the current
// window, or a Clear/overflow dropped it).
func (b *Bag) journalSince(v uint64) ([]jentry, bool) {
	if v == b.ver {
		return nil, true
	}
	if len(b.jour) == 0 || v < b.jbase || v > b.ver {
		return nil, false
	}
	return b.jour[v-b.jbase:], true
}

// Version returns a counter that changes on every mutation of the bag
// (Add/AddBag/Remove/Clear). Together with the bag's identity it lets
// derived structures — notably Index — validate cached state cheaply:
// same *Bag pointer plus same Version means the contents are unchanged.
func (b *Bag) Version() uint64 { return b.ver }

// Count returns the multiplicity of t.
func (b *Bag) Count(t schema.Tuple) int { return b.m[t.Key()].count }

// Contains reports whether t occurs at least once.
func (b *Bag) Contains(t schema.Tuple) bool { return b.Count(t) > 0 }

// Len returns the total multiplicity (|b| with duplicates).
func (b *Bag) Len() int { return b.size }

// Distinct returns the number of distinct tuples.
func (b *Bag) Distinct() int { return len(b.m) }

// Empty reports whether the bag has no tuples.
func (b *Bag) Empty() bool { return b.size == 0 }

// Clone returns a deep-enough copy (tuples are immutable and shared).
func (b *Bag) Clone() *Bag {
	c := &Bag{m: make(map[string]entry, len(b.m)), size: b.size}
	for k, e := range b.m {
		c.m[k] = e
	}
	return c
}

// Each calls f once per distinct tuple with its multiplicity. Iteration
// order is unspecified. f must not mutate the bag.
func (b *Bag) Each(f func(t schema.Tuple, n int)) {
	for _, e := range b.m {
		f(e.tuple, e.count)
	}
}

// EachOrdered calls f once per distinct tuple in canonical (sorted key)
// order — deterministic iteration for ordered sinks such as snapshots,
// rendered output, and floating-point accumulation, at the cost of an
// O(d log d) sort over the d distinct tuples. f must not mutate the bag.
func (b *Bag) EachOrdered(f func(t schema.Tuple, n int)) {
	keys := make([]string, 0, len(b.m))
	for k := range b.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := b.m[k]
		f(e.tuple, e.count)
	}
}

// Tuples returns every tuple with duplicates expanded, in canonical
// (sorted) order; intended for tests and display.
func (b *Bag) Tuples() []schema.Tuple {
	out := make([]schema.Tuple, 0, b.size)
	for _, e := range b.m {
		for i := 0; i < e.count; i++ {
			out = append(out, e.tuple)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Equal reports whether two bags contain the same tuples with the same
// multiplicities.
func (b *Bag) Equal(o *Bag) bool {
	if b.size != o.size || len(b.m) != len(o.m) {
		return false
	}
	for k, e := range b.m {
		if o.m[k].count != e.count {
			return false
		}
	}
	return true
}

// SubBagOf reports b ⊑ o: every tuple's multiplicity in b is ≤ its
// multiplicity in o.
func (b *Bag) SubBagOf(o *Bag) bool {
	if b.size > o.size {
		return false
	}
	for k, e := range b.m {
		if o.m[k].count < e.count {
			return false
		}
	}
	return true
}

// String renders the bag as {t1, t1, t2, ...} in canonical order.
func (b *Bag) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, t := range b.Tuples() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte('}')
	return sb.String()
}
