package bag

import "dvm/internal/schema"

// UnionAll returns a ⊎ b: multiplicities add.
func UnionAll(a, b *Bag) *Bag {
	out := a.Clone()
	out.AddBag(b)
	return out
}

// Monus returns a ∸ b: per-tuple multiplicity max(0, n_a - n_b).
// This is the paper's "∸" operator, distinct from SQL EXCEPT.
func Monus(a, b *Bag) *Bag {
	out := New()
	for k, e := range a.m {
		n := e.count - b.m[k].count
		if n > 0 {
			out.m[k] = entry{tuple: e.tuple, count: n}
			out.size += n
		}
	}
	return out
}

// Min returns the minimal intersection: per-tuple min(n_a, n_b).
// Defined in the paper as a ∸ (a ∸ b); computed directly here.
func Min(a, b *Bag) *Bag {
	if len(b.m) < len(a.m) {
		a, b = b, a
	}
	out := New()
	for k, e := range a.m {
		n := e.count
		if bn := b.m[k].count; bn < n {
			n = bn
		}
		if n > 0 {
			out.m[k] = entry{tuple: e.tuple, count: n}
			out.size += n
		}
	}
	return out
}

// Max returns the maximal union: per-tuple max(n_a, n_b).
// Defined in the paper as a ⊎ (b ∸ a); computed directly here.
func Max(a, b *Bag) *Bag {
	out := a.Clone()
	for k, e := range b.m {
		if have := out.m[k].count; e.count > have {
			out.size += e.count - have
			out.m[k] = entry{tuple: e.tuple, count: e.count}
		}
	}
	return out
}

// Except returns SQL EXCEPT ALL-the-paper's-way: a EXCEPT b removes every
// tuple of a that occurs in b at all, regardless of multiplicity
// (Section 2.1). It equals Π1(σ1=2(a × (ε(a) ∸ b))) but is computed
// directly.
func Except(a, b *Bag) *Bag {
	out := New()
	for k, e := range a.m {
		if b.m[k].count == 0 {
			out.m[k] = e
			out.size += e.count
		}
	}
	return out
}

// DupElim returns ε(a): every tuple of a with multiplicity 1.
func DupElim(a *Bag) *Bag {
	out := New()
	for k, e := range a.m {
		out.m[k] = entry{tuple: e.tuple, count: 1}
	}
	out.size = len(out.m)
	return out
}

// Select returns σ_p(a) for a predicate over tuples.
func Select(a *Bag, pred func(schema.Tuple) bool) *Bag {
	out := New()
	for k, e := range a.m {
		if pred(e.tuple) {
			out.m[k] = e
			out.size += e.count
		}
	}
	return out
}

// Project returns Π(a) under a tuple transform. Distinct inputs may map
// to the same output, in which case multiplicities add (bag semantics —
// projection does NOT eliminate duplicates).
func Project(a *Bag, f func(schema.Tuple) schema.Tuple) *Bag {
	out := New()
	for _, e := range a.m {
		out.Add(f(e.tuple), e.count)
	}
	return out
}

// Product returns a × b: tuple concatenation, multiplicities multiply.
func Product(a, b *Bag) *Bag {
	out := New()
	for ka, ea := range a.m {
		for kb, eb := range b.m {
			// Concat keys compose: key(s ++ t) = key(s) + key(t).
			out.addKeyed(ka+kb, ea.tuple.Concat(eb.tuple), ea.count*eb.count)
		}
	}
	return out
}

// ProductSelect returns σ_p(a × b) without materializing the full product:
// the join path used by the evaluator.
func ProductSelect(a, b *Bag, pred func(schema.Tuple) bool) *Bag {
	out := New()
	for ka, ea := range a.m {
		for kb, eb := range b.m {
			t := ea.tuple.Concat(eb.tuple)
			if pred(t) {
				out.addKeyed(ka+kb, t, ea.count*eb.count)
			}
		}
	}
	return out
}
