package bag

import (
	"testing"

	"dvm/internal/schema"
)

func eqJoin(lpos, rpos int, lw int) func(schema.Tuple) bool {
	return func(t schema.Tuple) bool { return t[lpos].Equal(t[lw+rpos]) }
}

func TestJoinIndexedMatchesProductSelect(t *testing.T) {
	left := New().
		Add(row("a", 1), 2).
		Add(row("b", 2), 3).
		Add(row("c", 1), 1)
	right := New().
		Add(row(1, "x"), 4).
		Add(row(2, "y"), 1).
		Add(row(3, "z"), 5)
	pred := eqJoin(1, 0, 2) // left[1] == right[0]

	want := ProductSelect(left, right, pred)

	// Index the right side, probe with the left.
	ix := NewIndex(right, []int{0})
	got, probed := JoinIndexed(left, []int{1}, ix, false, pred)
	if !got.Equal(want) {
		t.Fatalf("probe-left join = %v, want %v", got, want)
	}
	if probed >= left.Distinct()*right.Distinct() {
		t.Fatalf("probed %d pairs, expected fewer than the %d a rescan pays",
			probed, left.Distinct()*right.Distinct())
	}

	// Index the left side, probe with the right; output column order
	// must still be left ++ right.
	ixl := NewIndex(left, []int{1})
	got2, _ := JoinIndexed(right, []int{0}, ixl, true, pred)
	if !got2.Equal(want) {
		t.Fatalf("probe-right join = %v, want %v", got2, want)
	}
}

func TestIndexValidity(t *testing.T) {
	b := New().Add(row("a", 1), 1)
	ix := NewIndex(b, []int{0})
	if !ix.Valid(b) {
		t.Fatal("fresh index must be valid for its source bag")
	}
	other := New().Add(row("a", 1), 1)
	if ix.Valid(other) {
		t.Fatal("index must not validate against a different bag, even with equal contents")
	}
	b.Add(row("b", 2), 1)
	if ix.Valid(b) {
		t.Fatal("index must be invalidated by Add")
	}
	ix = NewIndex(b, []int{0})
	b.Remove(row("b", 2), 1)
	if ix.Valid(b) {
		t.Fatal("index must be invalidated by Remove")
	}
	ix = NewIndex(b, []int{0})
	b.Clear()
	if ix.Valid(b) {
		t.Fatal("index must be invalidated by Clear")
	}
}

func TestIndexKeyMatchesProjectKey(t *testing.T) {
	// AppendKeyAt must agree byte-for-byte with Project().Key() — the
	// index relies on that to find probe tuples built the slow way.
	tup := schema.Row("k", 42, 3.5, true, nil)
	pos := []int{1, 3, 0}
	got := string(tup.AppendKeyAt(nil, pos))
	want := tup.Project(pos).Key()
	if got != want {
		t.Fatalf("AppendKeyAt = %q, Project().Key() = %q", got, want)
	}
	if full := string(tup.AppendKey(nil)); full != tup.Key() {
		t.Fatalf("AppendKey = %q, Key() = %q", full, tup.Key())
	}
}

func TestJoinIndexedEmptySides(t *testing.T) {
	empty := New()
	b := New().Add(row(1, "x"), 2)
	ix := NewIndex(b, []int{0})
	out, probed := JoinIndexed(empty, []int{0}, ix, false, func(schema.Tuple) bool { return true })
	if !out.Empty() || probed != 0 {
		t.Fatalf("empty probe side: got %v probed=%d", out, probed)
	}
	ixe := NewIndex(empty, []int{0})
	out, probed = JoinIndexed(b, []int{0}, ixe, true, func(schema.Tuple) bool { return true })
	if !out.Empty() || probed != 0 {
		t.Fatalf("empty indexed side: got %v probed=%d", out, probed)
	}
}
