package bag

import "dvm/internal/schema"

// Shard-partitioning helpers. A bag is partitioned into N value-hash
// shards: every copy of a tuple value lands in exactly one shard, so
// all pointwise bag operations (⊎, ∸, min, ε) distribute over the
// partition shard by shard. The hash is FNV-1a over the tuple's
// canonical key encoding — deterministic across processes, so shard
// assignment survives snapshot save/load.

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// hashKey is FNV-1a over a canonical tuple-key string.
func hashKey(key string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return h
}

// ShardOf returns the shard index of a tuple under an n-way partition.
// When keyCol >= 0 the hash covers only that column (key-hash
// partitioning: all tuples sharing the key co-locate, which is what
// makes equi-join deltas shard-local); keyCol < 0 hashes the full
// tuple value (pointwise partitioning).
func ShardOf(t schema.Tuple, keyCol, n int) int {
	if n <= 1 {
		return 0
	}
	var key string
	if keyCol >= 0 && keyCol < len(t) {
		key = schema.Tuple{t[keyCol]}.Key()
	} else {
		key = t.Key()
	}
	return int(hashKey(key) % uint32(n))
}

// Partition splits b into n shards by ShardOf. The returned bags are
// fresh; b is not modified. Σ shards == b by construction.
func Partition(b *Bag, keyCol, n int) []*Bag {
	out := make([]*Bag, n)
	for i := range out {
		out[i] = New()
	}
	b.Each(func(t schema.Tuple, c int) {
		out[ShardOf(t, keyCol, n)].Add(t, c)
	})
	return out
}

// MergeShards unions shard bags back into one bag (the view-boundary
// merge): the inverse of Partition.
func MergeShards(shards ...*Bag) *Bag {
	out := New()
	for _, s := range shards {
		if s != nil {
			out.AddBag(s)
		}
	}
	return out
}
