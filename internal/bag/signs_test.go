package bag

import (
	"testing"

	"dvm/internal/schema"
)

// The paper's bag algebra (Section 2.1) is defined over non-negative
// multiplicities: deletions are represented as their own positive bags
// (▼R, ∇MV), never as negative counts inside one bag. These tests pin
// the invariant that Bag cannot represent a negative multiplicity — Add
// clamps at zero and every operator preserves non-negativity — and that
// the count arithmetic of the operators matches the paper's definitions
// on every boundary the clamp creates.

// negatives returns every tuple whose stored multiplicity is ≤ 0
// (there should never be any).
func negatives(t *testing.T, b *Bag) {
	t.Helper()
	for k, e := range b.m {
		if e.count <= 0 {
			t.Fatalf("bag holds non-positive multiplicity %d for key %q", e.count, k)
		}
	}
}

func TestAddClampsAtZero(t *testing.T) {
	b := New()
	b.Add(row("x"), -3)
	if b.Count(row("x")) != 0 || b.Len() != 0 {
		t.Fatalf("negative add on empty bag must be a no-op, got count=%d len=%d",
			b.Count(row("x")), b.Len())
	}
	b.Add(row("x"), 2)
	b.Add(row("x"), -5)
	if b.Count(row("x")) != 0 || b.Len() != 0 {
		t.Fatalf("over-removal must clamp at zero, got count=%d len=%d",
			b.Count(row("x")), b.Len())
	}
	b.Add(row("x"), 4)
	b.Remove(row("x"), 1)
	if b.Count(row("x")) != 3 {
		t.Fatalf("Remove(1) of 4 = %d, want 3", b.Count(row("x")))
	}
	negatives(t, b)
}

func TestOperatorCountArithmetic(t *testing.T) {
	// Each case gives per-tuple multiplicities in a and b (0 = absent)
	// and the expected result multiplicity per operator. The x/y/z rows
	// cover a>b, a<b, and one-sided presence.
	a := bagOf(map[string]int{"x": 5, "y": 2, "onlyA": 3})
	b := bagOf(map[string]int{"x": 2, "y": 7, "onlyB": 4})

	cases := []struct {
		name string
		got  *Bag
		want map[string]int
	}{
		{"UnionAll", UnionAll(a, b), map[string]int{"x": 7, "y": 9, "onlyA": 3, "onlyB": 4}},
		{"Monus", Monus(a, b), map[string]int{"x": 3, "onlyA": 3}},
		{"MonusRev", Monus(b, a), map[string]int{"y": 5, "onlyB": 4}},
		{"Min", Min(a, b), map[string]int{"x": 2, "y": 2}},
		{"Max", Max(a, b), map[string]int{"x": 5, "y": 7, "onlyA": 3, "onlyB": 4}},
		{"Except", Except(a, b), map[string]int{"onlyA": 3}},
		{"DupElim", DupElim(a), map[string]int{"x": 1, "y": 1, "onlyA": 1}},
	}
	for _, c := range cases {
		negatives(t, c.got)
		want := New()
		for s, n := range c.want {
			want.Add(row(s), n)
		}
		if !c.got.Equal(want) {
			t.Errorf("%s = %v, want %v", c.name, c.got, want)
		}
	}
}

// TestMonusIdentities checks the paper's derived-operator identities
// min(a,b) = a ∸ (a ∸ b) and max(a,b) = a ⊎ (b ∸ a) against the direct
// implementations, on bags engineered so both clamp branches fire.
func TestMonusIdentities(t *testing.T) {
	a := bagOf(map[string]int{"x": 5, "y": 1, "onlyA": 2})
	b := bagOf(map[string]int{"x": 3, "y": 6, "onlyB": 9})

	if got, want := Min(a, b), Monus(a, Monus(a, b)); !got.Equal(want) {
		t.Errorf("Min(a,b) = %v, want a∸(a∸b) = %v", got, want)
	}
	if got, want := Max(a, b), UnionAll(a, Monus(b, a)); !got.Equal(want) {
		t.Errorf("Max(a,b) = %v, want a⊎(b∸a) = %v", got, want)
	}
}

// TestProductCountMultiplication pins ProductSelect/Product count
// handling: multiplicities multiply, and since bags cannot hold
// negative counts (the clamp invariant above), the product of two
// well-formed bags is always well-formed — there is no sign case.
func TestProductCountMultiplication(t *testing.T) {
	a := New().Add(row("k", 1), 3).Add(row("k", 2), 2)
	b := New().Add(row("k", 10), 4)

	p := ProductSelect(a, b, func(schema.Tuple) bool { return true })
	negatives(t, p)
	if got := p.Count(row("k", 1, "k", 10)); got != 12 {
		t.Fatalf("count(k1×k10) = %d, want 3*4=12", got)
	}
	if got := p.Count(row("k", 2, "k", 10)); got != 8 {
		t.Fatalf("count(k2×k10) = %d, want 2*4=8", got)
	}
	if !p.Equal(Product(a, b)) {
		t.Fatalf("ProductSelect(true) != Product: %v vs %v", p, Product(a, b))
	}
}
