package bag

import (
	"math/rand"
	"testing"

	"dvm/internal/schema"
)

func randomBag(rng *rand.Rand, n int) *Bag {
	b := New()
	for i := 0; i < n; i++ {
		b.Add(schema.Row(int64(rng.Intn(50)), int64(rng.Intn(10)), "x"), 1+rng.Intn(3))
	}
	return b
}

// TestPartitionRoundTrip: Σ Partition(b) == b, for both key-column and
// full-tuple partitioning, at several shard counts.
func TestPartitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 7} {
		for _, keyCol := range []int{-1, 0, 1} {
			b := randomBag(rng, 200)
			parts := Partition(b, keyCol, n)
			if len(parts) != n {
				t.Fatalf("Partition returned %d shards, want %d", len(parts), n)
			}
			if got := MergeShards(parts...); !got.Equal(b) {
				t.Fatalf("n=%d keyCol=%d: merged shards differ from original", n, keyCol)
			}
		}
	}
}

// TestShardOfDeterministicAndValueLocal: equal tuple values always map
// to the same shard, and under key-column partitioning all tuples with
// the same key co-locate.
func TestShardOfDeterministicAndValueLocal(t *testing.T) {
	a := schema.Row(int64(7), int64(3), "x")
	b := schema.Row(int64(7), int64(9), "y")
	for _, n := range []int{2, 4, 8} {
		if ShardOf(a, -1, n) != ShardOf(a.Clone(), -1, n) {
			t.Fatalf("full-tuple shard of equal values differs (n=%d)", n)
		}
		if ShardOf(a, 0, n) != ShardOf(b, 0, n) {
			t.Fatalf("key-column shard differs for equal keys (n=%d)", n)
		}
	}
	if got := ShardOf(a, -1, 1); got != 0 {
		t.Fatalf("single shard must be 0, got %d", got)
	}
}

// TestPartitionPointwiseOps: pointwise bag ops distribute over a
// full-tuple partition shard by shard — the algebraic fact the sharded
// fold relies on.
func TestPartitionPointwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomBag(rng, 300)
	b := randomBag(rng, 300)
	const n = 4
	ap := Partition(a, -1, n)
	bp := Partition(b, -1, n)

	type op struct {
		name  string
		whole *Bag
		part  func(i int) *Bag
	}
	for _, o := range []op{
		{"monus", Monus(a, b), func(i int) *Bag { return Monus(ap[i], bp[i]) }},
		{"union", UnionAll(a, b), func(i int) *Bag { return UnionAll(ap[i], bp[i]) }},
		{"min", Min(a, b), func(i int) *Bag { return Min(ap[i], bp[i]) }},
		{"dupelim", DupElim(a), func(i int) *Bag { return DupElim(ap[i]) }},
	} {
		parts := make([]*Bag, n)
		for i := 0; i < n; i++ {
			parts[i] = o.part(i)
		}
		if got := MergeShards(parts...); !got.Equal(o.whole) {
			t.Fatalf("%s does not distribute over full-tuple shards", o.name)
		}
	}
}
