package bag

import (
	"testing"

	"dvm/internal/schema"
)

func row(vs ...any) schema.Tuple { return schema.Row(vs...) }

func bagOf(counts map[string]int) *Bag {
	b := New()
	for s, n := range counts {
		b.Add(row(s), n)
	}
	return b
}

func TestAddRemoveCount(t *testing.T) {
	b := New()
	if !b.Empty() || b.Len() != 0 || b.Distinct() != 0 {
		t.Fatal("fresh bag not empty")
	}
	b.Add(row("a"), 2)
	b.Add(row("b"), 1)
	if b.Len() != 3 || b.Distinct() != 2 {
		t.Fatalf("Len=%d Distinct=%d", b.Len(), b.Distinct())
	}
	if b.Count(row("a")) != 2 || !b.Contains(row("a")) {
		t.Fatal("count of a wrong")
	}
	b.Remove(row("a"), 1)
	if b.Count(row("a")) != 1 {
		t.Fatal("remove 1 wrong")
	}
	b.Remove(row("a"), 99) // clamp at zero
	if b.Contains(row("a")) || b.Len() != 1 {
		t.Fatal("clamped remove wrong")
	}
	b.Add(row("c"), 0) // no-op
	if b.Contains(row("c")) {
		t.Fatal("Add 0 should be a no-op")
	}
	b.Add(row("c"), -5) // negative add on absent tuple: no-op
	if b.Contains(row("c")) || b.Len() != 1 {
		t.Fatal("negative add on absent tuple should be a no-op")
	}
	b.Clear()
	if !b.Empty() {
		t.Fatal("Clear failed")
	}
}

func TestOfAndClone(t *testing.T) {
	b := Of(row(1), row(1), row(2))
	if b.Count(row(1)) != 2 || b.Count(row(2)) != 1 {
		t.Fatal("Of counts wrong")
	}
	c := b.Clone()
	c.Add(row(3), 1)
	if b.Contains(row(3)) {
		t.Fatal("Clone aliases storage")
	}
	if !b.Equal(Of(row(1), row(1), row(2))) {
		t.Fatal("original changed")
	}
}

func TestEqualAndSubBag(t *testing.T) {
	a := bagOf(map[string]int{"x": 2, "y": 1})
	b := bagOf(map[string]int{"x": 2, "y": 1})
	c := bagOf(map[string]int{"x": 1, "y": 1})
	d := bagOf(map[string]int{"x": 2, "z": 1})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal wrong")
	}
	if !c.SubBagOf(a) || a.SubBagOf(c) {
		t.Fatal("SubBagOf wrong")
	}
	if !New().SubBagOf(a) || !a.SubBagOf(a) {
		t.Fatal("SubBagOf edge cases wrong")
	}
	if d.SubBagOf(a) {
		t.Fatal("d has z, not a subbag")
	}
}

func TestUnionAllMonus(t *testing.T) {
	a := bagOf(map[string]int{"x": 2, "y": 1})
	b := bagOf(map[string]int{"x": 1, "z": 3})
	u := UnionAll(a, b)
	if u.Count(row("x")) != 3 || u.Count(row("y")) != 1 || u.Count(row("z")) != 3 {
		t.Fatalf("UnionAll wrong: %v", u)
	}
	// operands untouched
	if a.Count(row("x")) != 2 || b.Count(row("z")) != 3 {
		t.Fatal("UnionAll mutated operands")
	}
	m := Monus(a, b)
	if m.Count(row("x")) != 1 || m.Count(row("y")) != 1 || m.Contains(row("z")) {
		t.Fatalf("Monus wrong: %v", m)
	}
	if !Monus(b, b).Empty() {
		t.Fatal("b ∸ b should be empty")
	}
}

func TestMinMaxIdentities(t *testing.T) {
	a := bagOf(map[string]int{"x": 3, "y": 1})
	b := bagOf(map[string]int{"x": 1, "z": 2})
	min := Min(a, b)
	if min.Count(row("x")) != 1 || min.Len() != 1 {
		t.Fatalf("Min wrong: %v", min)
	}
	max := Max(a, b)
	if max.Count(row("x")) != 3 || max.Count(row("y")) != 1 || max.Count(row("z")) != 2 {
		t.Fatalf("Max wrong: %v", max)
	}
	// Paper definitions: min = a ∸ (a ∸ b); max = a ⊎ (b ∸ a).
	if !min.Equal(Monus(a, Monus(a, b))) {
		t.Fatal("Min does not match a ∸ (a ∸ b)")
	}
	if !max.Equal(UnionAll(a, Monus(b, a))) {
		t.Fatal("Max does not match a ⊎ (b ∸ a)")
	}
}

func TestExcept(t *testing.T) {
	a := bagOf(map[string]int{"x": 3, "y": 2})
	b := bagOf(map[string]int{"x": 1})
	e := Except(a, b)
	// EXCEPT removes ALL copies of x because x ∈ b, regardless of count.
	if e.Contains(row("x")) || e.Count(row("y")) != 2 {
		t.Fatalf("Except wrong: %v", e)
	}
	// Monus, by contrast, leaves 2 copies of x.
	if Monus(a, b).Count(row("x")) != 2 {
		t.Fatal("Monus/EXCEPT distinction lost")
	}
}

func TestDupElim(t *testing.T) {
	a := bagOf(map[string]int{"x": 3, "y": 1})
	e := DupElim(a)
	if e.Count(row("x")) != 1 || e.Count(row("y")) != 1 || e.Len() != 2 {
		t.Fatalf("DupElim wrong: %v", e)
	}
	if !DupElim(New()).Empty() {
		t.Fatal("DupElim of empty should be empty")
	}
}

func TestSelect(t *testing.T) {
	a := Of(row(1), row(2), row(2), row(3))
	s := Select(a, func(tp schema.Tuple) bool { return tp[0].AsInt() >= 2 })
	if s.Count(row(2)) != 2 || s.Count(row(3)) != 1 || s.Contains(row(1)) {
		t.Fatalf("Select wrong: %v", s)
	}
}

func TestProjectPreservesDuplicates(t *testing.T) {
	a := Of(row(1, "p"), row(1, "q"), row(2, "p"))
	p := Project(a, func(tp schema.Tuple) schema.Tuple { return schema.NewTuple(tp[0]) })
	// [1,"p"] and [1,"q"] both project to [1]: multiplicity 2 (bag semantics).
	if p.Count(row(1)) != 2 || p.Count(row(2)) != 1 {
		t.Fatalf("Project wrong: %v", p)
	}
}

func TestProduct(t *testing.T) {
	a := Of(row(1), row(1)) // 1 with multiplicity 2
	b := Of(row("x"), row("y"))
	p := Product(a, b)
	if p.Len() != 4 || p.Count(row(1, "x")) != 2 || p.Count(row(1, "y")) != 2 {
		t.Fatalf("Product wrong: %v", p)
	}
	if !Product(a, New()).Empty() || !Product(New(), b).Empty() {
		t.Fatal("product with empty should be empty")
	}
}

func TestProductSelect(t *testing.T) {
	a := Of(row(1), row(2))
	b := Of(row(1), row(3))
	j := ProductSelect(a, b, func(tp schema.Tuple) bool { return tp[0].Equal(tp[1]) })
	if j.Len() != 1 || j.Count(row(1, 1)) != 1 {
		t.Fatalf("ProductSelect wrong: %v", j)
	}
	if !j.Equal(Select(Product(a, b), func(tp schema.Tuple) bool { return tp[0].Equal(tp[1]) })) {
		t.Fatal("ProductSelect != Select∘Product")
	}
}

func TestTuplesSortedAndString(t *testing.T) {
	b := Of(row(2), row(1), row(1))
	ts := b.Tuples()
	if len(ts) != 3 || ts[0][0].AsInt() != 1 || ts[1][0].AsInt() != 1 || ts[2][0].AsInt() != 2 {
		t.Fatalf("Tuples order wrong: %v", ts)
	}
	if got := b.String(); got != "{[1], [1], [2]}" {
		t.Fatalf("String = %q", got)
	}
}

func TestEachVisitsAll(t *testing.T) {
	b := bagOf(map[string]int{"x": 2, "y": 5})
	total := 0
	distinct := 0
	b.Each(func(_ schema.Tuple, n int) { total += n; distinct++ })
	if total != 7 || distinct != 2 {
		t.Fatalf("Each visited total=%d distinct=%d", total, distinct)
	}
}
