package bag

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dvm/internal/schema"
)

// genBag is a quick.Generator wrapper producing small random bags of
// 1-column tuples over a tiny domain, so collisions are frequent and the
// multiset laws are exercised on nontrivial multiplicities.
type genBag struct{ B *Bag }

// Generate implements quick.Generator.
func (genBag) Generate(r *rand.Rand, _ int) reflect.Value {
	b := New()
	n := r.Intn(12)
	for i := 0; i < n; i++ {
		b.Add(schema.Row(r.Intn(4)), 1+r.Intn(3))
	}
	return reflect.ValueOf(genBag{B: b})
}

var qcfg = &quick.Config{MaxCount: 300}

func TestPropUnionCommutativeAssociative(t *testing.T) {
	comm := func(x, y genBag) bool { return UnionAll(x.B, y.B).Equal(UnionAll(y.B, x.B)) }
	if err := quick.Check(comm, qcfg); err != nil {
		t.Error(err)
	}
	assoc := func(x, y, z genBag) bool {
		return UnionAll(UnionAll(x.B, y.B), z.B).Equal(UnionAll(x.B, UnionAll(y.B, z.B)))
	}
	if err := quick.Check(assoc, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropMonusLaws(t *testing.T) {
	// (a ⊎ b) ∸ b ≡ a
	inv := func(x, y genBag) bool { return Monus(UnionAll(x.B, y.B), y.B).Equal(x.B) }
	if err := quick.Check(inv, qcfg); err != nil {
		t.Errorf("(a⊎b)∸b ≡ a: %v", err)
	}
	// a ∸ b ⊑ a
	sub := func(x, y genBag) bool { return Monus(x.B, y.B).SubBagOf(x.B) }
	if err := quick.Check(sub, qcfg); err != nil {
		t.Errorf("a∸b ⊑ a: %v", err)
	}
	// (a ∸ b) ∸ c ≡ a ∸ (b ⊎ c)
	curry := func(x, y, z genBag) bool {
		return Monus(Monus(x.B, y.B), z.B).Equal(Monus(x.B, UnionAll(y.B, z.B)))
	}
	if err := quick.Check(curry, qcfg); err != nil {
		t.Errorf("(a∸b)∸c ≡ a∸(b⊎c): %v", err)
	}
}

func TestPropMinMaxDefinitions(t *testing.T) {
	// Paper's derived definitions (Section 2.1).
	minDef := func(x, y genBag) bool { return Min(x.B, y.B).Equal(Monus(x.B, Monus(x.B, y.B))) }
	if err := quick.Check(minDef, qcfg); err != nil {
		t.Errorf("min def: %v", err)
	}
	maxDef := func(x, y genBag) bool { return Max(x.B, y.B).Equal(UnionAll(x.B, Monus(y.B, x.B))) }
	if err := quick.Check(maxDef, qcfg); err != nil {
		t.Errorf("max def: %v", err)
	}
	comm := func(x, y genBag) bool {
		return Min(x.B, y.B).Equal(Min(y.B, x.B)) && Max(x.B, y.B).Equal(Max(y.B, x.B))
	}
	if err := quick.Check(comm, qcfg); err != nil {
		t.Errorf("min/max commutativity: %v", err)
	}
	// Inclusion–exclusion for bags: min(a,b) ⊎ max(a,b) ≡ a ⊎ b.
	inclExcl := func(x, y genBag) bool {
		return UnionAll(Min(x.B, y.B), Max(x.B, y.B)).Equal(UnionAll(x.B, y.B))
	}
	if err := quick.Check(inclExcl, qcfg); err != nil {
		t.Errorf("min⊎max ≡ a⊎b: %v", err)
	}
}

func TestPropCancellationLemma(t *testing.T) {
	// Lemma 1 (cancellation): if N ≡ (O ∸ D) ⊎ I then O ≡ (N ∸ I) ⊎ (O min D).
	lemma := func(o, d, i genBag) bool {
		n := UnionAll(Monus(o.B, d.B), i.B)
		back := UnionAll(Monus(n, i.B), Min(o.B, d.B))
		return back.Equal(o.B)
	}
	if err := quick.Check(lemma, qcfg); err != nil {
		t.Errorf("Lemma 1 fails: %v", err)
	}
}

func TestPropWeaklyMinimalComposition(t *testing.T) {
	// Lemma 3: with D1 ⊑ O and D2 ⊑ (O ∸ D1) ⊎ I1,
	// D3 = D1 ⊎ (D2 ∸ I1), I3 = (I1 ∸ D2) ⊎ I2 compose the two updates and
	// D3 ⊑ O.
	lemma := func(o, rd1, i1, rd2, i2 genBag) bool {
		d1 := Min(rd1.B, o.B) // force precondition D1 ⊑ O
		mid := UnionAll(Monus(o.B, d1), i1.B)
		d2 := Min(rd2.B, mid) // force precondition D2 ⊑ mid
		lhs := UnionAll(Monus(mid, d2), i2.B)
		d3 := UnionAll(d1, Monus(d2, i1.B))
		i3 := UnionAll(Monus(i1.B, d2), i2.B)
		rhs := UnionAll(Monus(o.B, d3), i3)
		return lhs.Equal(rhs) && d3.SubBagOf(o.B)
	}
	if err := quick.Check(lemma, qcfg); err != nil {
		t.Errorf("Lemma 3 fails: %v", err)
	}
}

func TestPropExceptEncoding(t *testing.T) {
	// EXCEPT is derivable: keep tuples of a whose count in b is 0 — check
	// against the direct per-tuple characterization.
	prop := func(x, y genBag) bool {
		e := Except(x.B, y.B)
		ok := true
		x.B.Each(func(tp schema.Tuple, n int) {
			want := n
			if y.B.Contains(tp) {
				want = 0
			}
			if e.Count(tp) != want {
				ok = false
			}
		})
		return ok && e.SubBagOf(x.B)
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropDupElimIdempotent(t *testing.T) {
	prop := func(x genBag) bool {
		e := DupElim(x.B)
		return DupElim(e).Equal(e) && e.SubBagOf(x.B) && e.Distinct() == x.B.Distinct()
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropCloneAndEqualConsistent(t *testing.T) {
	prop := func(x genBag) bool {
		c := x.B.Clone()
		if !c.Equal(x.B) {
			return false
		}
		c.Add(schema.Row(99), 1)
		return !c.Equal(x.B)
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

func TestPropProductDistributesOverUnion(t *testing.T) {
	// (a ⊎ b) × c ≡ (a × c) ⊎ (b × c)
	prop := func(x, y, z genBag) bool {
		l := Product(UnionAll(x.B, y.B), z.B)
		r := UnionAll(Product(x.B, z.B), Product(y.B, z.B))
		return l.Equal(r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropLenDistinct(t *testing.T) {
	prop := func(x, y genBag) bool {
		u := UnionAll(x.B, y.B)
		return u.Len() == x.B.Len()+y.B.Len() && u.Distinct() >= x.B.Distinct() && u.Distinct() >= y.B.Distinct()
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}
