package bag

import (
	"testing"

	"dvm/internal/schema"
)

// FuzzBagOps interprets the input as a program of Add/Remove/Clear
// operations executed against both a Bag and a plain map[string]int
// reference model, then checks the bag's accounting (Len, Distinct,
// Count) against the model and the algebraic laws of Section 2.1 that
// the DEL/ADD differentials depend on.
func FuzzBagOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 2, 1, 3})
	f.Add([]byte{1, 0, 0, 1, 0, 1, 9, 3, 3, 3})
	f.Add([]byte{0, 5, 1, 0, 5, 2, 2, 0, 5, 3, 255, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		b := New()
		model := map[string]int{}
		size := 0

		// Each op consumes up to 3 bytes: opcode, tuple id, count.
		for i := 0; i+2 < len(data); i += 3 {
			tu := schema.Row(int(data[i+1]%5), int(data[i+1]/5%5))
			n := int(data[i+2] % 4)
			key := tu.Key()
			switch data[i] % 8 {
			case 0, 1, 2:
				b.Add(tu, n)
				model[key] += n
			case 3, 4:
				b.Remove(tu, n)
				model[key] -= n
			case 7:
				b.Clear()
				model = map[string]int{}
			}
			// The model mirrors the bag's floor-at-zero semantics.
			if model[key] <= 0 {
				delete(model, key)
			}
			size = 0
			for _, c := range model {
				size += c
			}
		}

		if b.Len() != size {
			t.Fatalf("Len = %d, model says %d", b.Len(), size)
		}
		if b.Distinct() != len(model) {
			t.Fatalf("Distinct = %d, model says %d", b.Distinct(), len(model))
		}
		b.Each(func(tu schema.Tuple, n int) {
			if model[tu.Key()] != n {
				t.Fatalf("Count(%s) = %d, model says %d", tu, n, model[tu.Key()])
			}
		})

		// Algebraic laws over (b, other), with other built from the tail
		// of the input read in reverse so the two bags differ.
		other := New()
		for i := len(data) - 1; i >= 2; i -= 3 {
			other.Add(schema.Row(int(data[i]%5), int(data[i-1]%5)), 1+int(data[i-2]%2))
		}

		// (b ⊎ o) ∸ o = b  (monus undoes union-all exactly).
		if !Monus(UnionAll(b, other), other).Equal(b) {
			t.Fatal("Monus(UnionAll(b, o), o) != b")
		}
		// min is a lower bound of both; max an upper bound of b.
		lo := Min(b, other)
		if !lo.SubBagOf(b) || !lo.SubBagOf(other) {
			t.Fatal("Min(b, o) not a subbag of both arguments")
		}
		if !b.SubBagOf(Max(b, other)) {
			t.Fatal("b not a subbag of Max(b, o)")
		}
		// except ⊆ b and is disjoint from o's support.
		ex := Except(b, other)
		if !ex.SubBagOf(b) {
			t.Fatal("Except(b, o) not a subbag of b")
		}
		ex.Each(func(tu schema.Tuple, n int) {
			if other.Contains(tu) {
				t.Fatalf("Except(b, o) kept %s, which o contains", tu)
			}
		})
		// ε collapses every multiplicity to exactly one.
		DupElim(b).Each(func(tu schema.Tuple, n int) {
			if n != 1 {
				t.Fatalf("DupElim multiplicity %d for %s", n, tu)
			}
		})
		// EachOrdered visits the same contents as Each, just ordered.
		ordered := New()
		b.EachOrdered(func(tu schema.Tuple, n int) { ordered.Add(tu, n) })
		if !ordered.Equal(b) {
			t.Fatal("EachOrdered visited different contents than Each")
		}
	})
}
