package algebra

import (
	"fmt"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// Source supplies the bags of named base tables: a database state in the
// paper's sense. storage.Database implements it.
type Source interface {
	Bag(name string) (*bag.Bag, error)
}

// MapSource is a Source backed by a plain map; convenient for tests.
type MapSource map[string]*bag.Bag

// Bag implements Source.
func (m MapSource) Bag(name string) (*bag.Bag, error) {
	b, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("algebra: no table %q in state", name)
	}
	return b, nil
}

// Eval evaluates e in the database state src and returns a bag the caller
// owns (it never aliases stored tables).
//
// Shared subexpressions are memoized by node identity: the differential
// algorithms of the delta package emit expression DAGs in which the same
// node appears many times (E, DEL(E), and friends), and without
// memoization evaluation cost grows exponentially in nesting depth.
func Eval(e Expr, src Source) (*bag.Bag, error) {
	ctx := &evalCtx{src: src, memo: make(map[Expr]*bag.Bag)}
	b, err := ctx.eval(e)
	if err != nil {
		return nil, err
	}
	// Results may alias the memo table or live storage; hand the caller
	// a private copy.
	return b.Clone(), nil
}

// Evaluator evaluates multiple expressions against ONE database state,
// sharing the memo table across calls. Use it when several related
// queries (e.g. a view's ▼(L,Q) and ▲(L,Q), which share most of their
// DAG) must be evaluated against the same snapshot. The caller must not
// mutate the state between Eval calls.
type Evaluator struct {
	ctx *evalCtx
}

// NewEvaluator builds an evaluator over a fixed state.
func NewEvaluator(src Source) *Evaluator {
	return &Evaluator{ctx: &evalCtx{src: src, memo: make(map[Expr]*bag.Bag)}}
}

// Eval evaluates e, returning a bag the caller owns.
func (ev *Evaluator) Eval(e Expr) (*bag.Bag, error) {
	b, err := ev.ctx.eval(e)
	if err != nil {
		return nil, err
	}
	return b.Clone(), nil
}

// evalCtx carries the state and the per-evaluation memo table.
type evalCtx struct {
	src  Source
	memo map[Expr]*bag.Bag
}

// eval returns the memoized result for e, computing it on first use.
// Results alias the memo table (and, for Base/Literal, live storage or
// literal bags) and must not be mutated.
func (ctx *evalCtx) eval(e Expr) (*bag.Bag, error) {
	if b, ok := ctx.memo[e]; ok {
		return b, nil
	}
	b, err := ctx.evalNode(e)
	if err != nil {
		return nil, err
	}
	ctx.memo[e] = b
	return b, nil
}

func (ctx *evalCtx) evalNode(e Expr) (*bag.Bag, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Bag, nil

	case *Base:
		return ctx.src.Bag(n.Name)

	case *Select:
		if p, ok := n.Child.(*Product); ok {
			return ctx.evalJoin(n, p)
		}
		c, err := ctx.eval(n.Child)
		if err != nil {
			return nil, err
		}
		return bag.Select(c, n.bound), nil

	case *Project:
		c, err := ctx.eval(n.Child)
		if err != nil {
			return nil, err
		}
		pos := n.positions
		return bag.Project(c, func(t schema.Tuple) schema.Tuple { return t.Project(pos) }), nil

	case *DupElim:
		c, err := ctx.eval(n.Child)
		if err != nil {
			return nil, err
		}
		return bag.DupElim(c), nil

	case *UnionAll:
		l, err := ctx.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.eval(n.R)
		if err != nil {
			return nil, err
		}
		return bag.UnionAll(l, r), nil

	case *Monus:
		l, err := ctx.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.eval(n.R)
		if err != nil {
			return nil, err
		}
		return bag.Monus(l, r), nil

	case *Product:
		l, err := ctx.eval(n.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.eval(n.R)
		if err != nil {
			return nil, err
		}
		if l.Empty() || r.Empty() {
			return bag.New(), nil
		}
		return bag.Product(l, r), nil
	}
	return nil, fmt.Errorf("algebra: eval: unknown node %T", e)
}

// evalJoin evaluates σ_p(L × R), using a hash join when p contains
// cross-side attribute equalities, and falling back to a filtered
// nested-loop product otherwise. The full predicate is always re-applied
// to joined tuples, so residual conjuncts need no special handling.
func (ctx *evalCtx) evalJoin(s *Select, p *Product) (*bag.Bag, error) {
	l, err := ctx.eval(p.L)
	if err != nil {
		return nil, err
	}
	r, err := ctx.eval(p.R)
	if err != nil {
		return nil, err
	}
	// An empty side joins to nothing; skip building and probing. Delta
	// expressions hit this constantly (a quiet table's log term is ∅),
	// and without the exit the probe loop still scans the full other
	// side against an empty hash table.
	if l.Empty() || r.Empty() {
		return bag.New(), nil
	}
	lpos, rpos := joinColumns(s.Pred, p.L.Schema(), p.R.Schema())
	if len(lpos) == 0 {
		return bag.ProductSelect(l, r, s.bound), nil
	}

	// Build on the smaller side, probe with the larger.
	build, probe := r, l
	buildPos, probePos := rpos, lpos
	swapped := false
	if l.Distinct() < r.Distinct() {
		build, probe = l, r
		buildPos, probePos = lpos, rpos
		swapped = true
	}
	type bucket struct {
		t schema.Tuple
		n int
	}
	ht := make(map[string][]bucket, build.Distinct())
	//dvmlint:ignore nondeterministic-iteration hash buckets are consumed commutatively (integer counts folded into a bag), and sorting the build side would slow every join
	build.Each(func(t schema.Tuple, n int) {
		k := t.Project(buildPos).Key()
		ht[k] = append(ht[k], bucket{t: t, n: n})
	})
	out := bag.New()
	probe.Each(func(t schema.Tuple, n int) {
		k := t.Project(probePos).Key()
		for _, b := range ht[k] {
			var joined schema.Tuple
			if swapped {
				joined = b.t.Concat(t) // build side is L
			} else {
				joined = t.Concat(b.t) // probe side is L
			}
			if s.bound(joined) {
				out.Add(joined, n*b.n)
			}
		}
	})
	return out, nil
}

// joinColumns resolves the equi-join pairs of pred into positions in the
// left and right schemas. Pairs that do not span both sides are ignored
// (they are enforced by the residual predicate check).
func joinColumns(pred Predicate, ls, rs *schema.Schema) (lpos, rpos []int) {
	pairs, _ := equiPairs(pred)
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if la, err := ls.Lookup(a); err == nil {
			if rb, err := rs.Lookup(b); err == nil {
				lpos = append(lpos, la)
				rpos = append(rpos, rb)
				continue
			}
		}
		if lb, err := ls.Lookup(b); err == nil {
			if ra, err := rs.Lookup(a); err == nil {
				lpos = append(lpos, lb)
				rpos = append(rpos, ra)
			}
		}
	}
	return lpos, rpos
}
