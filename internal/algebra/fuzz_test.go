package algebra

import (
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// exprDecoder is a recursive-descent parser over the fuzz byte stream:
// each byte is an opcode (leaf or operator) and operands are drawn from
// subsequent bytes. Running out of bytes or hitting the depth cap
// degrades to a leaf, so every input decodes to a well-formed Expr over
// the universe's closed (a, b) schema.
type exprDecoder struct {
	data []byte
	pos  int
	uni  *RandomUniverse
}

func (d *exprDecoder) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *exprDecoder) leaf() Expr {
	switch b := d.next(); b % 4 {
	case 0:
		return Empty(d.uni.Sch)
	case 1:
		lit, err := Singleton(d.uni.Sch, schema.Row(int(d.next()%4), int(d.next()%4)))
		if err != nil {
			panic(err)
		}
		return lit
	default:
		return NewBase(d.uni.Tables[int(b)%len(d.uni.Tables)], d.uni.Sch)
	}
}

func (d *exprDecoder) pred() Predicate {
	col := func() Scalar {
		if d.next()%2 == 0 {
			return A("a")
		}
		return A("b")
	}
	var rhs Scalar = C(int(d.next() % 4))
	if d.next()%3 == 0 {
		rhs = col()
	}
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	c := Cmp{Op: ops[int(d.next())%len(ops)], L: col(), R: rhs}
	switch d.next() % 6 {
	case 0:
		return NotOf(c)
	case 1:
		return AndOf(c, Cmp{Op: ops[int(d.next())%len(ops)], L: col(), R: C(int(d.next() % 4))})
	case 2:
		return OrOf(c, Cmp{Op: ops[int(d.next())%len(ops)], L: col(), R: C(int(d.next() % 4))})
	default:
		return c
	}
}

func (d *exprDecoder) expr(depth int) Expr {
	if depth <= 0 || d.pos >= len(d.data) {
		return d.leaf()
	}
	must := func(e Expr, err error) Expr {
		if err != nil {
			panic(err)
		}
		return e
	}
	switch d.next() % 12 {
	case 0, 1:
		return d.leaf()
	case 2:
		return must(NewSelect(d.pred(), d.expr(depth-1)))
	case 3:
		cols := []string{"b", "a"}
		if d.next()%2 == 0 {
			cols = []string{"a", "a"}
		}
		return must(NewProject(cols, []string{"a", "b"}, d.expr(depth-1)))
	case 4:
		return NewDupElim(d.expr(depth - 1))
	case 5:
		return must(NewUnionAll(d.expr(depth-1), d.expr(depth-1)))
	case 6:
		return must(NewMonus(d.expr(depth-1), d.expr(depth-1)))
	case 7:
		prod := NewProduct(Qualified(d.expr(depth-1), "l"), Qualified(d.expr(depth-1), "r"))
		return must(NewProject([]string{"l.a", "r.b"}, []string{"a", "b"}, prod))
	case 8:
		return must(MinOf(d.expr(depth-1), d.expr(depth-1)))
	case 9:
		return must(MaxOf(d.expr(depth-1), d.expr(depth-1)))
	case 10:
		return must(ExceptOf(d.expr(depth-1), d.expr(depth-1)))
	default:
		return must(NewSelect(d.pred(), d.expr(depth-1)))
	}
}

// state derives a database instance from the remaining bytes, so the
// fuzzer controls both the query and the data it runs over.
func (d *exprDecoder) state() MapSource {
	st := MapSource{}
	for _, name := range d.uni.Tables {
		b := bag.New()
		for i, n := 0, int(d.next()%6); i < n; i++ {
			b.Add(schema.Row(int(d.next()%4), int(d.next()%4)), 1+int(d.next()%3))
		}
		st[name] = b
	}
	return st
}

// FuzzExprParseEval decodes arbitrary bytes into a bag-algebra
// expression plus a database state, evaluates it, and checks the two
// metamorphic properties the maintenance algorithms lean on: Optimize
// preserves bag semantics exactly (same multiplicities, not just the
// same set), and evaluation is deterministic.
func FuzzExprParseEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 3, 7, 2})
	f.Add([]byte{5, 3, 3, 6, 1, 2, 2, 0, 9, 4})
	f.Add([]byte{7, 1, 1, 1, 8, 10, 5, 0, 3, 3, 9, 2, 6, 6})
	f.Add([]byte{255, 254, 253, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &exprDecoder{data: data, uni: NewRandomUniverse(3)}
		e := d.expr(5)
		st := d.state()

		got, err := Eval(e, st)
		if err != nil {
			t.Fatalf("Eval(%s): %v", e, err)
		}
		again, err := Eval(e, st)
		if err != nil || !got.Equal(again) {
			t.Fatalf("Eval not deterministic for %s: %v", e, err)
		}

		opt := Optimize(e)
		optGot, err := Eval(opt, st)
		if err != nil {
			t.Fatalf("Eval(Optimize(%s)) = Eval(%s): %v", e, opt, err)
		}
		if !got.Equal(optGot) {
			t.Fatalf("Optimize changed semantics:\n  expr: %s\n  opt:  %s\n  got:  %s\n  want: %s",
				e, opt, optGot, got)
		}
	})
}

// FuzzCompiledEval decodes arbitrary bytes into an expression and a
// state — the same decoder as FuzzExprParseEval — and checks the
// compiled engine against the interpreter, for both the raw and the
// optimized form, and across a State reuse (cached join indexes must
// not change answers).
func FuzzCompiledEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 3, 7, 2})
	f.Add([]byte{7, 1, 1, 1, 8, 10, 5, 0, 3, 3, 9, 2, 6, 6})
	f.Add([]byte{255, 254, 253, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &exprDecoder{data: data, uni: NewRandomUniverse(3)}
		e := d.expr(5)
		st := d.state()

		want, err := Eval(e, st)
		if err != nil {
			t.Fatalf("Eval(%s): %v", e, err)
		}
		for _, form := range []Expr{e, Optimize(e)} {
			prog, err := Compile(form)
			if err != nil {
				t.Fatalf("Compile(%s): %v", form, err)
			}
			ps := prog.NewState()
			for pass := 0; pass < 2; pass++ {
				got, _, err := prog.Eval(ps, st)
				if err != nil {
					t.Fatalf("compiled Eval(%s) pass %d: %v", form, pass, err)
				}
				if !got[0].Equal(want) {
					t.Fatalf("compiled ≠ interpreted for %s (pass %d):\n  compiled:    %s\n  interpreted: %s",
						form, pass, got[0], want)
				}
			}
		}
	})
}
