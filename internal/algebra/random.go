package algebra

import (
	"math/rand"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// RandomUniverse describes a set of base tables that random queries draw
// from. All tables share one schema so every operator applies; that is
// enough to exercise all Figure 2 cases, since schema plumbing is tested
// separately.
type RandomUniverse struct {
	Tables []string
	Sch    *schema.Schema
}

// NewRandomUniverse builds a universe of n 2-column tables R0..R(n-1).
func NewRandomUniverse(n int) *RandomUniverse {
	sch := schema.NewSchema(schema.Col("a", schema.TInt), schema.Col("b", schema.TInt))
	tables := make([]string, n)
	for i := range tables {
		tables[i] = string(rune('R')) + string(rune('0'+i))
	}
	return &RandomUniverse{Tables: tables, Sch: sch}
}

// RandomState produces a random database state over the universe, with
// tuples drawn from a small domain so multiplicities exceed one often.
func (u *RandomUniverse) RandomState(r *rand.Rand) MapSource {
	st := MapSource{}
	for _, name := range u.Tables {
		b := bag.New()
		n := r.Intn(10)
		for i := 0; i < n; i++ {
			b.Add(schema.Row(r.Intn(4), r.Intn(4)), 1+r.Intn(2))
		}
		st[name] = b
	}
	return st
}

// RandomQuery generates a random BA expression of the given depth over
// the universe. All node kinds (including derived min/max/EXCEPT) are
// produced, since the differential algorithms must handle every case.
func (u *RandomUniverse) RandomQuery(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(8) {
		case 0:
			return Empty(u.Sch)
		case 1:
			lit, _ := Singleton(u.Sch, schema.Row(r.Intn(4), r.Intn(4)))
			return lit
		default:
			return NewBase(u.Tables[r.Intn(len(u.Tables))], u.Sch)
		}
	}
	child := func() Expr { return u.RandomQuery(r, depth-1) }
	switch r.Intn(10) {
	case 0:
		s, err := NewSelect(u.randomPredicate(r), child())
		if err != nil {
			panic(err)
		}
		return s
	case 1:
		// Projection that keeps the schema closed under the universe:
		// swap or duplicate columns, always emitting (a, b).
		c := child()
		var cols []string
		if r.Intn(2) == 0 {
			cols = []string{"b", "a"}
		} else {
			cols = []string{"a", "a"}
		}
		p, err := NewProject(cols, []string{"a", "b"}, c)
		if err != nil {
			panic(err)
		}
		return p
	case 2:
		return NewDupElim(child())
	case 3, 4:
		e, err := NewUnionAll(child(), child())
		if err != nil {
			panic(err)
		}
		return e
	case 5, 6:
		e, err := NewMonus(child(), child())
		if err != nil {
			panic(err)
		}
		return e
	case 7:
		// Product followed by projection back into the closed schema.
		prod := NewProduct(qualify(child(), "l"), qualify(child(), "r"))
		p, err := NewProject([]string{"l.a", "r.b"}, []string{"a", "b"}, prod)
		if err != nil {
			panic(err)
		}
		return p
	case 8:
		e, err := MinOf(child(), child())
		if err != nil {
			panic(err)
		}
		return e
	default:
		if r.Intn(2) == 0 {
			e, err := MaxOf(child(), child())
			if err != nil {
				panic(err)
			}
			return e
		}
		e, err := ExceptOf(child(), child())
		if err != nil {
			panic(err)
		}
		return e
	}
}

func (u *RandomUniverse) randomPredicate(r *rand.Rand) Predicate {
	mk := func() Predicate {
		ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
		l := Scalar(A("a"))
		if r.Intn(2) == 0 {
			l = A("b")
		}
		var rhs Scalar = C(r.Intn(4))
		if r.Intn(3) == 0 {
			rhs = A("a")
		}
		return Cmp{Op: ops[r.Intn(len(ops))], L: l, R: rhs}
	}
	switch r.Intn(5) {
	case 0:
		return AndOf(mk(), mk())
	case 1:
		return OrOf(mk(), mk())
	case 2:
		return NotOf(mk())
	default:
		return mk()
	}
}

// RandomDelta produces a random (deletes, inserts) pair of bags for one
// table of the universe; deletes are not constrained to be subbags of the
// current table value (the transaction layer normalizes that).
func (u *RandomUniverse) RandomDelta(r *rand.Rand) (del, ins *bag.Bag) {
	del, ins = bag.New(), bag.New()
	for i, n := 0, r.Intn(4); i < n; i++ {
		del.Add(schema.Row(r.Intn(4), r.Intn(4)), 1+r.Intn(2))
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		ins.Add(schema.Row(r.Intn(4), r.Intn(4)), 1+r.Intn(2))
	}
	return del, ins
}
