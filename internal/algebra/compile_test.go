package algebra

import (
	"math/rand"
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// TestCompiledMatchesInterpreted sweeps random expression DAGs and
// random states through both engines: the interpreter is the oracle the
// compiled path must reproduce bag-for-bag.
func TestCompiledMatchesInterpreted(t *testing.T) {
	uni := NewRandomUniverse(3)
	r := rand.New(rand.NewSource(87))
	for i := 0; i < 400; i++ {
		e := uni.RandomQuery(r, 4)
		st := uni.RandomState(r)

		want, err := Eval(e, st)
		if err != nil {
			t.Fatalf("interpret %s: %v", e, err)
		}
		prog, err := Compile(e)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		got, _, err := prog.Eval(nil, st)
		if err != nil {
			t.Fatalf("run compiled %s: %v", e, err)
		}
		if !got[0].Equal(want) {
			t.Fatalf("compiled result differs for %s:\n  compiled:    %s\n  interpreted: %s",
				e, got[0], want)
		}
	}
}

// TestCompiledStateReuse evaluates one program against a sequence of
// mutating states with a single reused State — the deployment shape in
// core, where cached join indexes must be invalidated by table versions,
// never trusted across mutations.
func TestCompiledStateReuse(t *testing.T) {
	uni := NewRandomUniverse(3)
	r := rand.New(rand.NewSource(88))
	for i := 0; i < 60; i++ {
		e := uni.RandomQuery(r, 4)
		prog, err := Compile(e)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		st := uni.RandomState(r)
		ps := prog.NewState()
		for step := 0; step < 6; step++ {
			want, err := Eval(e, st)
			if err != nil {
				t.Fatalf("interpret %s: %v", e, err)
			}
			got, _, err := prog.Eval(ps, st)
			if err != nil {
				t.Fatalf("run compiled %s: %v", e, err)
			}
			if !got[0].Equal(want) {
				t.Fatalf("step %d: compiled result differs for %s:\n  compiled:    %s\n  interpreted: %s",
					step, e, got[0], want)
			}
			// Mutate the live state in place: some tables change (their
			// cached indexes must be rebuilt), others stay (theirs must
			// be reused, not recomputed into wrong answers).
			for _, name := range uni.Tables {
				if r.Intn(2) == 0 {
					continue
				}
				del, ins := uni.RandomDelta(r)
				st[name].AddBag(ins)
				del.Each(func(tp schema.Tuple, n int) { st[name].Remove(tp, n) })
			}
		}
	}
}

// TestCompiledSharedRoots compiles a ∇/▲-shaped pair of roots sharing
// most of their DAG and checks each root against the interpreter, plus
// that shared nodes are compiled once (DAG dedup, the slot analogue of
// the interpreter's memo).
func TestCompiledSharedRoots(t *testing.T) {
	uni := NewRandomUniverse(2)
	r := rand.New(rand.NewSource(89))
	shared := uni.RandomQuery(r, 3)
	d1, err := NewMonus(shared, NewBase(uni.Tables[0], uni.Sch))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewUnionAll(shared, NewBase(uni.Tables[1], uni.Sch))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Roots() != 2 {
		t.Fatalf("Roots() = %d, want 2", prog.Roots())
	}
	st := uni.RandomState(r)
	got, _, err := prog.Eval(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range []Expr{d1, d2} {
		want, err := Eval(e, st)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(want) {
			t.Fatalf("root %d differs: %s vs %s", i, got[i], want)
		}
	}
}

// TestEvalResultsDoNotAlias pins the ownership contract both engines
// guarantee: mutating a returned bag must never change base tables,
// literals, or results handed out earlier. This is the regression test
// for the evaluator alias audit — every leaf shape that could leak
// (Base straight from storage, Literal straight from the caller) is
// driven through the paths that return leaves un-transformed.
func TestEvalResultsDoNotAlias(t *testing.T) {
	sch := schema.NewSchema(schema.Col("a", schema.TInt), schema.Col("b", schema.TInt))
	base := bag.New().Add(schema.Row(1, 2), 3)
	lit := bag.New().Add(schema.Row(7, 7), 1)
	st := MapSource{"R": base}

	litExpr := NewLiteral(sch, lit)
	baseExpr := NewBase("R", sch)
	union, err := NewUnionAll(baseExpr, litExpr)
	if err != nil {
		t.Fatal(err)
	}
	// UnionAll with an empty side short-circuits to the other operand —
	// the most alias-prone shape.
	emptyUnion, err := NewUnionAll(baseExpr, Empty(sch))
	if err != nil {
		t.Fatal(err)
	}

	exprs := []Expr{litExpr, baseExpr, union, emptyUnion}
	check := func(name string, eval func(Expr) (*bag.Bag, error)) {
		baseSnap, litSnap := base.Clone(), lit.Clone()
		for _, e := range exprs {
			out, err := eval(e)
			if err != nil {
				t.Fatalf("%s eval %s: %v", name, e, err)
			}
			snap := out.Clone()
			out.Add(schema.Row(99, 99), 5)
			out.Remove(schema.Row(1, 2), 3)
			if !base.Equal(baseSnap) {
				t.Fatalf("%s: mutating result of %s changed the base table", name, e)
			}
			if !lit.Equal(litSnap) {
				t.Fatalf("%s: mutating result of %s changed the literal bag", name, e)
			}
			// Re-evaluating must reproduce the original answer, i.e. the
			// mutation did not poison any memo/slot/index cache.
			again, err := eval(e)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Equal(snap) {
				t.Fatalf("%s: mutation of a returned bag leaked into re-evaluation of %s", name, e)
			}
		}
	}

	check("interpreter", func(e Expr) (*bag.Bag, error) { return Eval(e, st) })
	ev := NewEvaluator(st)
	check("evaluator", ev.Eval)
	progs := map[Expr]*Program{}
	states := map[Expr]*State{}
	check("compiled", func(e Expr) (*bag.Bag, error) {
		if progs[e] == nil {
			prog, err := Compile(e)
			if err != nil {
				return nil, err
			}
			progs[e], states[e] = prog, prog.NewState()
		}
		out, _, err := progs[e].Eval(states[e], st)
		if err != nil {
			return nil, err
		}
		return out[0], nil
	})
}

// TestCompileSnapshotsLiterals pins the documented divergence between
// the engines: a Program clones literal bags at compile time, so caller
// mutations of a literal after Compile do not reach the program (the
// interpreter reads literals live).
func TestCompileSnapshotsLiterals(t *testing.T) {
	sch := schema.NewSchema(schema.Col("a", schema.TInt), schema.Col("b", schema.TInt))
	lit := bag.New().Add(schema.Row(7, 7), 1)
	e := NewLiteral(sch, lit)
	prog, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := prog.Eval(nil, MapSource{})
	if err != nil {
		t.Fatal(err)
	}
	lit.Add(schema.Row(8, 8), 2)
	got, _, err := prog.Eval(nil, MapSource{})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(want[0]) {
		t.Fatalf("literal mutation after Compile reached the program: %s vs %s", got[0], want[0])
	}
}

// TestCompiledJoinProbesIndex checks the compiled join actually uses a
// cached index: a re-evaluation against an unchanged big side must
// probe far fewer pairs than |L|·|R|.
func TestCompiledJoinProbesIndex(t *testing.T) {
	lsch := schema.NewSchema(schema.Col("l.k", schema.TInt), schema.Col("l.v", schema.TInt))
	rsch := schema.NewSchema(schema.Col("r.k", schema.TInt), schema.Col("r.v", schema.TInt))
	big, small := bag.New(), bag.New()
	for i := 0; i < 500; i++ {
		big.Add(schema.Row(i, i%7), 1)
	}
	small.Add(schema.Row(3, 1), 1).Add(schema.Row(4, 2), 2)
	st := MapSource{"Big": big, "Small": small}

	join, err := JoinOn(NewBase("Big", lsch), NewBase("Small", rsch), Eq(A("l.k"), A("r.k")))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(join)
	if err != nil {
		t.Fatal(err)
	}
	ps := prog.NewState()
	out, stats, err := prog.Eval(ps, st)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Eval(join, st)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(want) {
		t.Fatalf("join differs: %s vs %s", out[0], want)
	}
	if stats.IndexProbeTuples == 0 || stats.IndexProbeTuples > 10 {
		t.Fatalf("first eval probed %d pairs, want a handful (index-sided join)", stats.IndexProbeTuples)
	}
	// Second eval with the unchanged big side: cached index, same answer.
	out, stats, err = prog.Eval(ps, st)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(want) {
		t.Fatalf("cached-index join differs: %s vs %s", out[0], want)
	}
	if stats.IndexProbeTuples > 10 {
		t.Fatalf("cached eval probed %d pairs, want a handful", stats.IndexProbeTuples)
	}
}

// TestCompiledIndexSyncsIncrementally checks the cross-evaluation index
// cache survives base-table mutation: after a small in-place change to
// the indexed side, the next evaluation catches the index up through
// the bag's mutation journal (delta-sized build work) instead of
// rebuilding it from the full table.
func TestCompiledIndexSyncsIncrementally(t *testing.T) {
	lsch := schema.NewSchema(schema.Col("l.k", schema.TInt), schema.Col("l.v", schema.TInt))
	rsch := schema.NewSchema(schema.Col("r.k", schema.TInt), schema.Col("r.v", schema.TInt))
	big, small := bag.New(), bag.New()
	for i := 0; i < 500; i++ {
		big.Add(schema.Row(i, i%7), 1)
	}
	small.Add(schema.Row(3, 1), 1)
	st := MapSource{"Big": big, "Small": small}

	join, err := JoinOn(NewBase("Big", lsch), NewBase("Small", rsch), Eq(A("l.k"), A("r.k")))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(join)
	if err != nil {
		t.Fatal(err)
	}
	ps := prog.NewState()
	if _, _, err := prog.Eval(ps, st); err != nil {
		t.Fatal(err)
	}

	// Mutate the indexed side in place: 3 effective changes, journaled.
	big.Add(schema.Row(500, 0), 1)
	big.Add(schema.Row(3, 9), 1)
	big.Remove(schema.Row(4, 4%7), 1)

	out, stats, err := prog.Eval(ps, st)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Eval(join, st)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(want) {
		t.Fatalf("synced-index join differs: %s vs %s", out[0], want)
	}
	if stats.IndexBuildTuples == 0 || stats.IndexBuildTuples > 10 {
		t.Fatalf("post-mutation eval built %d index tuples, want the 3 journaled changes (a full rebuild would be ~500)", stats.IndexBuildTuples)
	}
}
