package algebra

import (
	"math/rand"
	"testing"
)

func TestRandomQueriesEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	u := NewRandomUniverse(3)
	for i := 0; i < 200; i++ {
		q := u.RandomQuery(r, 3)
		st := u.RandomState(r)
		b1, err := Eval(q, st)
		if err != nil {
			t.Fatalf("random query failed to evaluate: %v\n%s", err, q)
		}
		// Determinism: re-evaluation yields the same bag.
		b2, err := Eval(q, st)
		if err != nil {
			t.Fatal(err)
		}
		if !b1.Equal(b2) {
			t.Fatalf("nondeterministic evaluation of %s", q)
		}
		// Output schema is closed under the universe's 2-column shape.
		if q.Schema().Len() != 2 {
			t.Fatalf("random query escaped the closed schema: %s -> %s", q, q.Schema())
		}
	}
}

func TestRandomSubstitutionEvaluates(t *testing.T) {
	// η(Q) must evaluate for factored substitutions built from random
	// deltas — the shape the differ consumes.
	r := rand.New(rand.NewSource(2))
	u := NewRandomUniverse(2)
	for i := 0; i < 100; i++ {
		q := u.RandomQuery(r, 3)
		st := u.RandomState(r)
		repl := map[string]Expr{}
		for _, name := range u.Tables {
			del, ins := u.RandomDelta(r)
			base := NewBase(name, u.Sch)
			m, err := NewMonus(base, NewLiteral(u.Sch, del))
			if err != nil {
				t.Fatal(err)
			}
			un, err := NewUnionAll(m, NewLiteral(u.Sch, ins))
			if err != nil {
				t.Fatal(err)
			}
			repl[name] = un
		}
		sq, err := Substitute(q, repl)
		if err != nil {
			t.Fatalf("substitute: %v", err)
		}
		if _, err := Eval(sq, st); err != nil {
			t.Fatalf("substituted query failed: %v", err)
		}
	}
}

func TestRandomDeltaShapes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	u := NewRandomUniverse(1)
	sawDel, sawIns := false, false
	for i := 0; i < 50; i++ {
		del, ins := u.RandomDelta(r)
		if !del.Empty() {
			sawDel = true
		}
		if !ins.Empty() {
			sawIns = true
		}
	}
	if !sawDel || !sawIns {
		t.Fatal("RandomDelta never produced deletes or inserts")
	}
}
