package algebra

import (
	"fmt"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// Expr is a bag-algebra query. Expressions are immutable after
// construction; every node carries its statically-checked output schema.
//
// The node kinds correspond exactly to the paper's BA grammar:
// ∅ and {x} (Literal), base table names (Base), σ_p (Select), Π_A
// (Project), ε (DupElim), ⊎ (UnionAll), ∸ (Monus), × (Product). The
// derived operators min, max, EXCEPT, and join are provided as
// constructors that expand into these primitives.
type Expr interface {
	// Schema returns the output schema.
	Schema() *schema.Schema
	String() string
}

// --- Literal (covers ∅ and {x}) ---

// Literal is a constant bag with a fixed schema; Empty(sch) is the ∅ of
// the grammar and Singleton the {x}.
type Literal struct {
	sch *schema.Schema
	Bag *bag.Bag
}

// Empty builds the ∅ expression with the given schema.
func Empty(sch *schema.Schema) *Literal { return &Literal{sch: sch, Bag: bag.New()} }

// Singleton builds {x}.
func Singleton(sch *schema.Schema, x schema.Tuple) (*Literal, error) {
	if err := sch.Validate(x); err != nil {
		return nil, err
	}
	return &Literal{sch: sch, Bag: bag.Of(x)}, nil
}

// NewLiteral wraps a constant bag. The caller warrants every tuple
// conforms to sch.
func NewLiteral(sch *schema.Schema, b *bag.Bag) *Literal { return &Literal{sch: sch, Bag: b} }

// Schema implements Expr.
func (l *Literal) Schema() *schema.Schema { return l.sch }

func (l *Literal) String() string {
	if l.Bag.Empty() {
		return "∅"
	}
	return l.Bag.String()
}

// --- Base table reference ---

// Base references a named table; the evaluation state supplies its bag.
type Base struct {
	Name string
	sch  *schema.Schema
}

// NewBase builds a base-table reference.
func NewBase(name string, sch *schema.Schema) *Base { return &Base{Name: name, sch: sch} }

// Schema implements Expr.
func (b *Base) Schema() *schema.Schema { return b.sch }

func (b *Base) String() string { return b.Name }

// --- Select σ_p ---

// Select is σ_p(Child).
type Select struct {
	Pred  Predicate
	Child Expr
	bound func(schema.Tuple) bool
}

// NewSelect builds σ_p(child), binding p against child's schema.
func NewSelect(p Predicate, child Expr) (*Select, error) {
	f, err := p.Bind(child.Schema())
	if err != nil {
		return nil, fmt.Errorf("algebra: select: %w", err)
	}
	return &Select{Pred: p, Child: child, bound: f}, nil
}

// Schema implements Expr.
func (s *Select) Schema() *schema.Schema { return s.Child.Schema() }

func (s *Select) String() string { return fmt.Sprintf("σ[%s](%s)", s.Pred, s.Child) }

// --- Project Π_A ---

// Project is Π_A(Child): keep the named attributes, optionally renaming
// them, preserving duplicates (bag semantics).
type Project struct {
	Cols      []string // attribute names in the child schema
	OutNames  []string // output names, same length (defaults to Cols)
	Child     Expr
	positions []int
	sch       *schema.Schema
}

// NewProject builds Π_cols(child). outNames may be nil to keep the
// source names (with any "t." qualifier stripped).
func NewProject(cols []string, outNames []string, child Expr) (*Project, error) {
	in := child.Schema()
	positions := make([]int, len(cols))
	outCols := make([]schema.Column, len(cols))
	for i, c := range cols {
		p, err := in.Lookup(c)
		if err != nil {
			return nil, fmt.Errorf("algebra: project: %w", err)
		}
		positions[i] = p
		name := c
		if outNames != nil {
			name = outNames[i]
		}
		outCols[i] = schema.Column{Name: name, Type: in.Column(p).Type}
	}
	names := outNames
	if names == nil {
		names = append([]string(nil), cols...)
	}
	return &Project{
		Cols:      append([]string(nil), cols...),
		OutNames:  names,
		Child:     child,
		positions: positions,
		sch:       schema.NewSchema(outCols...),
	}, nil
}

// Schema implements Expr.
func (p *Project) Schema() *schema.Schema { return p.sch }

func (p *Project) String() string {
	cols := ""
	for i, c := range p.Cols {
		if i > 0 {
			cols += ","
		}
		cols += c
	}
	return fmt.Sprintf("Π[%s](%s)", cols, p.Child)
}

// --- DupElim ε ---

// DupElim is ε(Child): duplicate elimination.
type DupElim struct{ Child Expr }

// NewDupElim builds ε(child).
func NewDupElim(child Expr) *DupElim { return &DupElim{Child: child} }

// Schema implements Expr.
func (d *DupElim) Schema() *schema.Schema { return d.Child.Schema() }

func (d *DupElim) String() string { return fmt.Sprintf("ε(%s)", d.Child) }

// --- UnionAll ⊎ ---

// UnionAll is L ⊎ R: additive union.
type UnionAll struct{ L, R Expr }

// NewUnionAll builds l ⊎ r; schemas must be union-compatible. The left
// schema names the result.
func NewUnionAll(l, r Expr) (*UnionAll, error) {
	if !l.Schema().Compatible(r.Schema()) {
		return nil, fmt.Errorf("algebra: ⊎: incompatible schemas %s and %s", l.Schema(), r.Schema())
	}
	return &UnionAll{L: l, R: r}, nil
}

// Schema implements Expr.
func (u *UnionAll) Schema() *schema.Schema { return u.L.Schema() }

func (u *UnionAll) String() string { return fmt.Sprintf("(%s ⊎ %s)", u.L, u.R) }

// --- Monus ∸ ---

// Monus is L ∸ R: per-tuple multiplicity max(0, n_L − n_R).
type Monus struct{ L, R Expr }

// NewMonus builds l ∸ r; schemas must be union-compatible.
func NewMonus(l, r Expr) (*Monus, error) {
	if !l.Schema().Compatible(r.Schema()) {
		return nil, fmt.Errorf("algebra: ∸: incompatible schemas %s and %s", l.Schema(), r.Schema())
	}
	return &Monus{L: l, R: r}, nil
}

// Schema implements Expr.
func (m *Monus) Schema() *schema.Schema { return m.L.Schema() }

func (m *Monus) String() string { return fmt.Sprintf("(%s ∸ %s)", m.L, m.R) }

// --- Product × ---

// Product is L × R: tuple concatenation with multiplied multiplicities.
type Product struct {
	L, R Expr
	sch  *schema.Schema
}

// NewProduct builds l × r.
func NewProduct(l, r Expr) *Product {
	return &Product{L: l, R: r, sch: l.Schema().Concat(r.Schema())}
}

// Schema implements Expr.
func (p *Product) Schema() *schema.Schema { return p.sch }

func (p *Product) String() string { return fmt.Sprintf("(%s × %s)", p.L, p.R) }

// --- Derived constructors (expand to primitives) ---

// MinOf builds l min r ≝ l ∸ (l ∸ r) (minimal intersection).
func MinOf(l, r Expr) (Expr, error) {
	inner, err := NewMonus(l, r)
	if err != nil {
		return nil, err
	}
	return NewMonus(l, inner)
}

// MaxOf builds l max r ≝ l ⊎ (r ∸ l) (maximal union).
func MaxOf(l, r Expr) (Expr, error) {
	inner, err := NewMonus(r, l)
	if err != nil {
		return nil, err
	}
	return NewUnionAll(l, inner)
}

// ExceptOf builds SQL EXCEPT: remove from l every tuple occurring in r at
// all. Expanded per the paper (Section 2.1) as
// Π_L(σ_{L=R'}(l × (ε(l) ∸ r))), generalized to arbitrary arity.
func ExceptOf(l, r Expr) (Expr, error) {
	if !l.Schema().Compatible(r.Schema()) {
		return nil, fmt.Errorf("algebra: EXCEPT: incompatible schemas %s and %s", l.Schema(), r.Schema())
	}
	// Disambiguate column names across the product by qualifying sides.
	lq := qualify(l, "l")
	inner, err := NewMonus(NewDupElim(l), r)
	if err != nil {
		return nil, err
	}
	prod := NewProduct(lq, qualify(inner, "r"))
	k := l.Schema().Len()
	eqs := make([]Predicate, k)
	for i := 0; i < k; i++ {
		eqs[i] = Eq(A(prod.Schema().Column(i).Name), A(prod.Schema().Column(k+i).Name))
	}
	sel, err := NewSelect(AndOf(eqs...), prod)
	if err != nil {
		return nil, err
	}
	cols := make([]string, k)
	outs := make([]string, k)
	for i := 0; i < k; i++ {
		cols[i] = prod.Schema().Column(i).Name
		outs[i] = l.Schema().Column(i).Name
	}
	return NewProject(cols, outs, sel)
}

// Qualified wraps e in a renaming projection that prefixes every column
// with "alias." — the FROM-clause aliasing used by the SQL compiler.
func Qualified(e Expr, alias string) Expr { return qualify(e, alias) }

// qualify wraps e in a renaming projection prefixing columns with
// "alias.", so products of e with itself (or a sibling) have unambiguous
// names.
func qualify(e Expr, alias string) Expr {
	in := e.Schema()
	q := in.Qualify(alias)
	cols := make([]string, in.Len())
	outs := make([]string, in.Len())
	for i := 0; i < in.Len(); i++ {
		cols[i] = in.Column(i).Name
		outs[i] = q.Column(i).Name
	}
	// A projection of all columns with new names; positions are identity,
	// so this cannot fail — but duplicate names in `in` break Lookup, so
	// build the node directly.
	positions := make([]int, in.Len())
	for i := range positions {
		positions[i] = i
	}
	return &Project{Cols: cols, OutNames: outs, Child: e, positions: positions, sch: q}
}

// JoinOn builds σ_p(l × r), the SPJ join form.
func JoinOn(l, r Expr, p Predicate) (Expr, error) {
	return NewSelect(p, NewProduct(l, r))
}

// BaseNames returns the distinct base-table names referenced by e, in
// first-appearance order.
func BaseNames(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *Literal:
		case *Base:
			if !seen[n.Name] {
				seen[n.Name] = true
				names = append(names, n.Name)
			}
		case *Select:
			walk(n.Child)
		case *Project:
			walk(n.Child)
		case *DupElim:
			walk(n.Child)
		case *UnionAll:
			walk(n.L)
			walk(n.R)
		case *Monus:
			walk(n.L)
			walk(n.R)
		case *Product:
			walk(n.L)
			walk(n.R)
		default:
			panic(fmt.Sprintf("algebra: BaseNames: unknown node %T", x))
		}
	}
	walk(e)
	return names
}

// HasSelfJoin reports whether any base table is referenced more than once
// in e (self-join in the broad sense used by Remark 1).
func HasSelfJoin(e Expr) bool {
	counts := map[string]int{}
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case *Literal:
		case *Base:
			counts[n.Name]++
		case *Select:
			walk(n.Child)
		case *Project:
			walk(n.Child)
		case *DupElim:
			walk(n.Child)
		case *UnionAll:
			walk(n.L)
			walk(n.R)
		case *Monus:
			walk(n.L)
			walk(n.R)
		case *Product:
			walk(n.L)
			walk(n.R)
		}
	}
	walk(e)
	for _, c := range counts {
		if c > 1 {
			return true
		}
	}
	return false
}

// Substitute returns e with every Base node named in repl replaced by the
// corresponding expression. Replacement expressions must be
// union-compatible with the tables they replace. This is the paper's
// substitution η(Q) (Section 2.4).
func Substitute(e Expr, repl map[string]Expr) (Expr, error) {
	switch n := e.(type) {
	case *Literal:
		return n, nil
	case *Base:
		r, ok := repl[n.Name]
		if !ok {
			return n, nil
		}
		if !n.Schema().Compatible(r.Schema()) {
			return nil, fmt.Errorf("algebra: substitute %s: incompatible schema %s for %s", n.Name, r.Schema(), n.Schema())
		}
		return r, nil
	case *Select:
		c, err := Substitute(n.Child, repl)
		if err != nil {
			return nil, err
		}
		// Rebind against the (possibly renamed) child schema via the
		// original child's schema: substitution preserves schemas up to
		// compatibility, so bind against the new child.
		return NewSelect(n.Pred, c)
	case *Project:
		c, err := Substitute(n.Child, repl)
		if err != nil {
			return nil, err
		}
		return NewProject(n.Cols, n.OutNames, c)
	case *DupElim:
		c, err := Substitute(n.Child, repl)
		if err != nil {
			return nil, err
		}
		return NewDupElim(c), nil
	case *UnionAll:
		l, err := Substitute(n.L, repl)
		if err != nil {
			return nil, err
		}
		r, err := Substitute(n.R, repl)
		if err != nil {
			return nil, err
		}
		return NewUnionAll(l, r)
	case *Monus:
		l, err := Substitute(n.L, repl)
		if err != nil {
			return nil, err
		}
		r, err := Substitute(n.R, repl)
		if err != nil {
			return nil, err
		}
		return NewMonus(l, r)
	case *Product:
		l, err := Substitute(n.L, repl)
		if err != nil {
			return nil, err
		}
		r, err := Substitute(n.R, repl)
		if err != nil {
			return nil, err
		}
		return NewProduct(l, r), nil
	}
	return nil, fmt.Errorf("algebra: substitute: unknown node %T", e)
}
