package algebra

// Compile-time join distribution.
//
// The Figure 2 delta queries join small per-transaction deltas against
// "adjusted" base tables of the form (R ∸ ▲R) ⊎ ▼R (the PAST
// reconstruction) or R ∸ ∇R. Evaluated literally, every such term
// materializes an O(|R|) bag per propagate — a clone of the base table
// — and any hash index built over it dies with the evaluation, because
// the next propagate materializes a fresh bag. That fixed O(|R|) cost
// per propagate is exactly what deferred maintenance is supposed to
// avoid.
//
// Joins distribute over ∸ and ⊎ in bag semantics: for bags with
// non-negative multiplicities, the per-tuple join count is the product
// of the operand counts, and multiplication by a non-negative factor
// distributes over both x+y and max(x−y, 0). Hence, exactly:
//
//	σ_p((A ∸ B) × C) ≡ σ_p(A × C) ∸ σ_p(B × C)
//	σ_p((A ⊎ B) × C) ≡ σ_p(A × C) ⊎ σ_p(B × C)
//
// (and symmetrically on the right). distributeJoins rewrites fusable
// σ(×) nodes this way whenever a side is a small ∸/⊎ composition
// containing a base table, so the compiled program joins the delta
// against the live base bag directly: the join's hash index keys off a
// stable *Bag that mutates in place, stays valid across propagates via
// the mutation journal (bag.Index.Sync), and the ∸/⊎ arithmetic runs
// over delta-sized join outputs instead of table-sized inputs.

// maxDistLeaves bounds the ∸/⊎ spine size a side may have to be
// distributed: a join over k×l terms emits k·l hash joins, so the
// rewrite is kept to the small adjustment shapes differentiation
// produces rather than arbitrary union trees.
const maxDistLeaves = 4

// distributeJoins rewrites e bottom-up, memoized by node so shared DAG
// nodes rewrite once and stay shared. Nodes that need no rewrite are
// returned as-is (pointer identity preserved).
func distributeJoins(e Expr, memo map[Expr]Expr) (Expr, error) {
	if r, ok := memo[e]; ok {
		return r, nil
	}
	out, err := rewriteNode(e, memo)
	if err != nil {
		return nil, err
	}
	memo[e] = out
	return out, nil
}

func rewriteNode(e Expr, memo map[Expr]Expr) (Expr, error) {
	switch n := e.(type) {
	case *Literal, *Base:
		return e, nil

	case *Select:
		if prod, ok := n.Child.(*Product); ok {
			l, err := distributeJoins(prod.L, memo)
			if err != nil {
				return nil, err
			}
			r, err := distributeJoins(prod.R, memo)
			if err != nil {
				return nil, err
			}
			if !distributable(l) && !distributable(r) {
				if l == prod.L && r == prod.R {
					return e, nil
				}
				return NewSelect(n.Pred, NewProduct(l, r))
			}
			return distJoin(n.Pred, l, r)
		}
		if pushable(n.Child) {
			// σ over a ∸/⊎ composition of products (the Figure 2 delta
			// shape): push the predicate through the spine so each
			// product term becomes a fusable σ(×) hash join instead of
			// a materialized cartesian product under a late filter.
			return pushSelect(n.Pred, n.Child, memo)
		}
		child, err := distributeJoins(n.Child, memo)
		if err != nil {
			return nil, err
		}
		if child == n.Child {
			return e, nil
		}
		return NewSelect(n.Pred, child)

	case *Project:
		child, err := distributeJoins(n.Child, memo)
		if err != nil {
			return nil, err
		}
		if child == n.Child {
			return e, nil
		}
		return NewProject(n.Cols, n.OutNames, child)

	case *DupElim:
		child, err := distributeJoins(n.Child, memo)
		if err != nil {
			return nil, err
		}
		if child == n.Child {
			return e, nil
		}
		return NewDupElim(child), nil

	case *UnionAll:
		l, err := distributeJoins(n.L, memo)
		if err != nil {
			return nil, err
		}
		r, err := distributeJoins(n.R, memo)
		if err != nil {
			return nil, err
		}
		if l == n.L && r == n.R {
			return e, nil
		}
		return NewUnionAll(l, r)

	case *Monus:
		l, err := distributeJoins(n.L, memo)
		if err != nil {
			return nil, err
		}
		r, err := distributeJoins(n.R, memo)
		if err != nil {
			return nil, err
		}
		if l == n.L && r == n.R {
			return e, nil
		}
		return NewMonus(l, r)

	case *Product:
		l, err := distributeJoins(n.L, memo)
		if err != nil {
			return nil, err
		}
		r, err := distributeJoins(n.R, memo)
		if err != nil {
			return nil, err
		}
		if l == n.L && r == n.R {
			return e, nil
		}
		return NewProduct(l, r), nil
	}
	return e, nil
}

// distJoin emits the distributed form of σ_p(l × r), recursing through
// the ∸/⊎ spines of distributable sides and terminating in per-term
// σ_p(× ) joins (which emitJoin then lowers to hash joins).
func distJoin(pred Predicate, l, r Expr) (Expr, error) {
	if distributable(r) {
		switch n := r.(type) {
		case *Monus:
			a, err := distJoin(pred, l, n.L)
			if err != nil {
				return nil, err
			}
			b, err := distJoin(pred, l, n.R)
			if err != nil {
				return nil, err
			}
			return NewMonus(a, b)
		case *UnionAll:
			a, err := distJoin(pred, l, n.L)
			if err != nil {
				return nil, err
			}
			b, err := distJoin(pred, l, n.R)
			if err != nil {
				return nil, err
			}
			return NewUnionAll(a, b)
		}
	}
	if distributable(l) {
		switch n := l.(type) {
		case *Monus:
			a, err := distJoin(pred, n.L, r)
			if err != nil {
				return nil, err
			}
			b, err := distJoin(pred, n.R, r)
			if err != nil {
				return nil, err
			}
			return NewMonus(a, b)
		case *UnionAll:
			a, err := distJoin(pred, n.L, r)
			if err != nil {
				return nil, err
			}
			b, err := distJoin(pred, n.R, r)
			if err != nil {
				return nil, err
			}
			return NewUnionAll(a, b)
		}
	}
	return joinTerm(pred, l, r)
}

// joinTerm emits one terminal σ_p(l × r) join, folding σ-chains that
// bottom at a base table into the join's residual predicate. Exact:
// σ_q(R)'s per-tuple count is R(t)·[q(t)], and q rebinds by column
// name over the product schema, so filtering after the concat scales
// every count by the identical factor. The point is that the join's
// hash index then keys off the live base bag — which persists and
// journal-syncs across evaluations — instead of a σ materialization
// that dies with each one.
func joinTerm(pred Predicate, l, r Expr) (Expr, error) {
	l2, lp := peelSelects(l)
	r2, rp := peelSelects(r)
	if len(lp) == 0 && len(rp) == 0 {
		return NewSelect(pred, NewProduct(l, r))
	}
	preds := make([]Predicate, 0, 1+len(lp)+len(rp))
	preds = append(preds, pred)
	preds = append(preds, lp...)
	preds = append(preds, rp...)
	return NewSelect(AndOf(preds...), NewProduct(l2, r2))
}

// peelSelects strips a chain of Selects bottoming at a Base, returning
// the base and the stripped predicates; any other shape is returned
// unchanged (select work over derived inputs stays where it was).
func peelSelects(e Expr) (Expr, []Predicate) {
	cur := e
	var preds []Predicate
	for {
		s, ok := cur.(*Select)
		if !ok {
			break
		}
		preds = append(preds, s.Pred)
		cur = s.Child
	}
	if _, ok := cur.(*Base); !ok {
		return e, nil
	}
	return cur, preds
}

// maxPushLeaves bounds the ∸/⊎ spine size the select push-down will
// traverse. A tuple of the spine's union appears in at most one leaf
// per ⊎ and at most two per ∸, so the duplicated predicate work stays
// proportional to the union's size; the bound just keeps the emitted
// node count in check on degenerate trees.
const maxPushLeaves = 8

// pushable reports whether e is a ∸/⊎ composition whose leaves include
// a product — the case where pushing a parent σ through the spine
// turns late-filtered cartesian products into fusable hash joins.
func pushable(e Expr) bool {
	switch e.(type) {
	case *Monus, *UnionAll:
	default:
		return false
	}
	leaves := spineLeaves(e, nil)
	if len(leaves) > maxPushLeaves {
		return false
	}
	for _, l := range leaves {
		if _, ok := l.(*Product); ok {
			return true
		}
	}
	return false
}

// pushSelect rewrites σ_p(e) by distributing the predicate through e's
// ∸/⊎ spine (exact in bag semantics: per-tuple counts scale by the
// same non-negative [p(t)] factor on every branch). Product leaves
// become σ(×) nodes — further distributed via distJoin when a side is
// a base-table adjustment — and other leaves keep a σ on top.
func pushSelect(pred Predicate, e Expr, memo map[Expr]Expr) (Expr, error) {
	switch n := e.(type) {
	case *Monus:
		a, err := pushSelect(pred, n.L, memo)
		if err != nil {
			return nil, err
		}
		b, err := pushSelect(pred, n.R, memo)
		if err != nil {
			return nil, err
		}
		return NewMonus(a, b)
	case *UnionAll:
		a, err := pushSelect(pred, n.L, memo)
		if err != nil {
			return nil, err
		}
		b, err := pushSelect(pred, n.R, memo)
		if err != nil {
			return nil, err
		}
		return NewUnionAll(a, b)
	case *Product:
		l, err := distributeJoins(n.L, memo)
		if err != nil {
			return nil, err
		}
		r, err := distributeJoins(n.R, memo)
		if err != nil {
			return nil, err
		}
		if distributable(l) || distributable(r) {
			return distJoin(pred, l, r)
		}
		return NewSelect(pred, NewProduct(l, r))
	}
	rw, err := distributeJoins(e, memo)
	if err != nil {
		return nil, err
	}
	return NewSelect(pred, rw)
}

// distributable reports whether e is a ∸/⊎ composition worth
// distributing a join over: a small spine whose leaves include a base
// table — the case where per-term joins can key a persistent index off
// the live table bag instead of a freshly materialized adjustment.
func distributable(e Expr) bool {
	switch e.(type) {
	case *Monus, *UnionAll:
	default:
		return false
	}
	leaves := spineLeaves(e, nil)
	if len(leaves) > maxDistLeaves {
		return false
	}
	for _, l := range leaves {
		if baseLeaf(l) {
			return true
		}
	}
	return false
}

// baseLeaf reports whether e is a base table, possibly under a chain of
// selects (the shape the select push-down in Optimize produces). Such
// leaves join directly against the live table bag once joinTerm peels
// the selects into the join predicate.
func baseLeaf(e Expr) bool {
	for {
		s, ok := e.(*Select)
		if !ok {
			break
		}
		e = s.Child
	}
	_, ok := e.(*Base)
	return ok
}

// spineLeaves collects the maximal non-∸/⊎ subtrees of e in order.
func spineLeaves(e Expr, out []Expr) []Expr {
	switch n := e.(type) {
	case *Monus:
		return spineLeaves(n.R, spineLeaves(n.L, out))
	case *UnionAll:
		return spineLeaves(n.R, spineLeaves(n.L, out))
	}
	return append(out, e)
}
