package algebra

import "dvm/internal/schema"

// Optimize rewrites e into an equivalent expression that evaluates
// faster, without changing its schema. The only rewrites applied are
// multiplicity-preserving bag identities:
//
//	σ_p(E ⊎ F)  →  σ_p(E) ⊎ σ_p(F)
//	σ_p(E ∸ F)  →  σ_p(E) ∸ σ_p(F)
//	σ_p(ε(E))   →  ε(σ_p(E))
//	σ_p(σ_q(E)) →  σ_{q∧p}(E)
//
// Their payoff: the differential algorithms emit σ above unions of
// products, and pushing the selection down exposes σ(E × F) shapes the
// evaluator runs as hash joins instead of materialized cross products.
//
// Selections are pushed only when the predicate re-binds against the
// child (union children may be merely union-compatible, with different
// attribute names); on a bind failure the σ stays where it was.
//
// Node sharing is preserved: if the input DAG references a subexpression
// from several parents, the rewritten DAG shares the rewritten node too,
// keeping the evaluator's memoization effective.
func Optimize(e Expr) Expr {
	return (&optimizer{memo: make(map[Expr]Expr)}).rewrite(e)
}

// OptimizePair rewrites two expressions with a SHARED rewrite memo so
// that subexpressions shared between them (the rule for DEL/ADD pairs
// from the differ) remain pointer-shared afterwards, keeping a shared
// evaluator's memoization effective across both.
func OptimizePair(a, b Expr) (Expr, Expr) {
	o := &optimizer{memo: make(map[Expr]Expr)}
	return o.rewrite(a), o.rewrite(b)
}

type optimizer struct {
	memo map[Expr]Expr
}

func (o *optimizer) rewrite(e Expr) Expr {
	if out, ok := o.memo[e]; ok {
		return out
	}
	out := o.rewriteNode(e)
	o.memo[e] = out
	return out
}

func (o *optimizer) rewriteNode(e Expr) Expr {
	switch n := e.(type) {
	case *Literal, *Base:
		return e
	case *Select:
		child := o.rewrite(n.Child)
		return o.pushSelect(n.Pred, child)
	case *Project:
		c := o.rewrite(n.Child)
		p, err := NewProject(n.Cols, n.OutNames, c)
		if err != nil {
			return e
		}
		return p
	case *DupElim:
		return NewDupElim(o.rewrite(n.Child))
	case *UnionAll:
		u, err := NewUnionAll(o.rewrite(n.L), o.rewrite(n.R))
		if err != nil {
			return e
		}
		return u
	case *Monus:
		m, err := NewMonus(o.rewrite(n.L), o.rewrite(n.R))
		if err != nil {
			return e
		}
		return m
	case *Product:
		return NewProduct(o.rewrite(n.L), o.rewrite(n.R))
	}
	return e
}

// pushSelect places σ_p above child, pushing it through union, monus,
// duplicate elimination, and nested selections where the predicate still
// binds. It returns a valid expression in all cases. Children reached
// here are already rewritten (and memoized) by rewrite.
func (o *optimizer) pushSelect(p Predicate, child Expr) Expr {
	keep := func() Expr {
		s, err := NewSelect(p, child)
		if err != nil {
			// The caller only re-binds predicates that bound before the
			// rewrite; schemas are preserved, so this cannot happen.
			panic("algebra: optimize lost predicate bindability: " + err.Error())
		}
		return s
	}
	switch n := child.(type) {
	case *UnionAll:
		// Binary set operations take the LEFT schema's names; pushing
		// into the right side is only sound when its names coincide
		// positionally (name-based binding would silently pick different
		// columns otherwise).
		if !sameColumnNames(n.L.Schema(), n.R.Schema()) {
			return keep()
		}
		u, err := NewUnionAll(o.pushSelect(p, n.L), o.pushSelect(p, n.R))
		if err != nil {
			return keep()
		}
		return u
	case *Monus:
		if !sameColumnNames(n.L.Schema(), n.R.Schema()) {
			return keep()
		}
		m, err := NewMonus(o.pushSelect(p, n.L), o.pushSelect(p, n.R))
		if err != nil {
			return keep()
		}
		return m
	case *DupElim:
		// σ_p(ε(E)) ≡ ε(σ_p(E)): filtering then deduplicating equals
		// deduplicating then filtering.
		if _, err := NewSelect(p, n.Child); err != nil {
			return keep()
		}
		return NewDupElim(o.pushSelect(p, n.Child))
	case *Select:
		merged := AndOf(n.Pred, p)
		if _, err := NewSelect(merged, n.Child); err != nil {
			return keep()
		}
		return o.pushSelect(merged, n.Child)
	case *Project:
		// σ_p(Π_{cols→outs}(E)) ≡ Π(σ_{p'}(E)) with p' renamed through
		// the projection. Only safe when every referenced attribute maps
		// back unambiguously.
		ren, ok := renameThroughProject(p, n)
		if !ok {
			return keep()
		}
		if _, err := NewSelect(ren, n.Child); err != nil {
			return keep()
		}
		out, err := NewProject(n.Cols, n.OutNames, o.pushSelect(ren, n.Child))
		if err != nil {
			return keep()
		}
		return out
	case *Product:
		// Split a conjunction: conjuncts over one side alone commute
		// with ×; the rest (including equi-join pairs) stays above the
		// product so the evaluator's hash-join path still sees it.
		left, right, rest, ok := splitConjuncts(p, n.L.Schema(), n.R.Schema())
		if !ok || (left == nil && right == nil) {
			return keep()
		}
		l, r := n.L, n.R
		if left != nil {
			l = o.pushSelect(AndOf(left...), n.L)
		}
		if right != nil {
			r = o.pushSelect(AndOf(right...), n.R)
		}
		prod := NewProduct(l, r)
		residual := Predicate(AndOf(rest...))
		s, err := NewSelect(residual, prod)
		if err != nil {
			return keep()
		}
		return s
	default:
		return keep()
	}
}

// renameThroughProject rewrites p's attribute references from a
// projection's output names to its source column names. It fails (ok =
// false) when a reference does not resolve or a source mapping is
// ambiguous.
func renameThroughProject(p Predicate, proj *Project) (Predicate, bool) {
	mapping := map[string]string{}
	for i, out := range proj.OutNames {
		if _, dup := mapping[out]; dup {
			return nil, false
		}
		mapping[out] = proj.Cols[i]
	}
	resolve := func(name string) (string, bool) {
		if src, ok := mapping[name]; ok {
			return src, ok
		}
		// Unqualified reference to a qualified output ("custId" for
		// "c.custId") — resolve through the projection's own schema.
		pos, err := proj.Schema().Lookup(name)
		if err != nil {
			return "", false
		}
		return proj.Cols[pos], true
	}
	var scalar func(s Scalar) (Scalar, bool)
	scalar = func(s Scalar) (Scalar, bool) {
		switch x := s.(type) {
		case Attr:
			src, ok := resolve(x.Name)
			if !ok {
				return nil, false
			}
			return Attr{Name: src}, true
		case Const:
			return x, true
		case Arith:
			l, ok := scalar(x.L)
			if !ok {
				return nil, false
			}
			r, ok := scalar(x.R)
			if !ok {
				return nil, false
			}
			return Arith{Op: x.Op, L: l, R: r}, true
		}
		return nil, false
	}
	var pred func(p Predicate) (Predicate, bool)
	pred = func(p Predicate) (Predicate, bool) {
		switch x := p.(type) {
		case Cmp:
			l, ok := scalar(x.L)
			if !ok {
				return nil, false
			}
			r, ok := scalar(x.R)
			if !ok {
				return nil, false
			}
			return Cmp{Op: x.Op, L: l, R: r}, true
		case And:
			out := make([]Predicate, len(x.Preds))
			for i, sub := range x.Preds {
				q, ok := pred(sub)
				if !ok {
					return nil, false
				}
				out[i] = q
			}
			return And{Preds: out}, true
		case Or:
			out := make([]Predicate, len(x.Preds))
			for i, sub := range x.Preds {
				q, ok := pred(sub)
				if !ok {
					return nil, false
				}
				out[i] = q
			}
			return Or{Preds: out}, true
		case Not:
			q, ok := pred(x.Pred)
			if !ok {
				return nil, false
			}
			return Not{Pred: q}, true
		case BoolLit:
			return x, true
		}
		return nil, false
	}
	return pred(p)
}

// splitConjuncts partitions a conjunction's top-level conjuncts by which
// product side they bind against: left-only, right-only, and residual
// (cross-side or unclassifiable). ok is false when p is not analyzable
// as a conjunction of side-local and residual parts (e.g. a top-level
// OR — which is simply treated as residual, so ok is false only on
// surprises).
func splitConjuncts(p Predicate, ls, rs *schema.Schema) (left, right, rest []Predicate, ok bool) {
	for _, c := range flattenAnd(p) {
		_, lerr := c.Bind(ls)
		_, rerr := c.Bind(rs)
		switch {
		case lerr == nil && rerr != nil:
			left = append(left, c)
		case rerr == nil && lerr != nil:
			right = append(right, c)
		default:
			// Binds on both (constants-only predicates) or neither
			// (cross-side): keep above the product.
			rest = append(rest, c)
		}
	}
	return left, right, rest, true
}

// flattenAnd returns the top-level conjuncts of p.
func flattenAnd(p Predicate) []Predicate {
	if a, ok := p.(And); ok {
		var out []Predicate
		for _, sub := range a.Preds {
			out = append(out, flattenAnd(sub)...)
		}
		return out
	}
	return []Predicate{p}
}

// sameColumnNames reports whether two schemas agree on column names
// position by position.
func sameColumnNames(a, b *schema.Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Column(i).Name != b.Column(i).Name {
			return false
		}
	}
	return true
}
