// Package algebra implements the paper's bag algebra BA (Section 2.1):
// a query AST over the primitives ∅, {x}, base tables, σ_p, Π_A, ε, ⊎,
// ∸, and ×, with derived operators (min, max, EXCEPT, join) expanded into
// primitives so that the differential algorithms of Figure 2 need handle
// only the primitive cases. It provides static schema checking, an
// evaluator over database states, and a printer.
package algebra

import (
	"fmt"

	"dvm/internal/schema"
)

// Scalar is a scalar-valued expression over a tuple: an attribute
// reference, a constant, or arithmetic.
type Scalar interface {
	// bind resolves names against sch and returns an evaluator plus the
	// result type.
	bind(sch *schema.Schema) (func(schema.Tuple) schema.Value, schema.Type, error)
	String() string
}

// BindScalar resolves a scalar expression against a schema, returning
// its evaluator and result type — the exported form of the internal
// binding used by predicates, for callers (like the SQL aggregate
// executor) that evaluate scalars directly.
func BindScalar(s Scalar, sch *schema.Schema) (func(schema.Tuple) schema.Value, schema.Type, error) {
	return s.bind(sch)
}

// Attr references an attribute by name (possibly qualified, "s.custId").
type Attr struct{ Name string }

// A is shorthand for an attribute reference.
func A(name string) Attr { return Attr{Name: name} }

func (a Attr) bind(sch *schema.Schema) (func(schema.Tuple) schema.Value, schema.Type, error) {
	pos, err := sch.Lookup(a.Name)
	if err != nil {
		return nil, schema.TNull, err
	}
	typ := sch.Column(pos).Type
	return func(t schema.Tuple) schema.Value { return t[pos] }, typ, nil
}

func (a Attr) String() string { return a.Name }

// Const is a constant scalar.
type Const struct{ Value schema.Value }

// C wraps a Go scalar as a constant.
func C(v any) Const { return Const{Value: schema.Row(v)[0]} }

func (c Const) bind(*schema.Schema) (func(schema.Tuple) schema.Value, schema.Type, error) {
	v := c.Value
	return func(schema.Tuple) schema.Value { return v }, v.Type(), nil
}

func (c Const) String() string { return c.Value.String() }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith is a binary arithmetic scalar expression over numerics.
type Arith struct {
	Op   ArithOp
	L, R Scalar
}

func (x Arith) bind(sch *schema.Schema) (func(schema.Tuple) schema.Value, schema.Type, error) {
	lf, lt, err := x.L.bind(sch)
	if err != nil {
		return nil, schema.TNull, err
	}
	rf, rt, err := x.R.bind(sch)
	if err != nil {
		return nil, schema.TNull, err
	}
	numeric := func(t schema.Type) bool { return t == schema.TInt || t == schema.TFloat || t == schema.TNull }
	if !numeric(lt) || !numeric(rt) {
		return nil, schema.TNull, fmt.Errorf("algebra: arithmetic on non-numeric types %s %s %s", lt, x.Op, rt)
	}
	intResult := lt == schema.TInt && rt == schema.TInt && x.Op != OpDiv
	op := x.Op
	eval := func(t schema.Tuple) schema.Value {
		lv, rv := lf(t), rf(t)
		if lv.IsNull() || rv.IsNull() {
			return schema.Null()
		}
		if intResult {
			a, b := lv.AsInt(), rv.AsInt()
			switch op {
			case OpAdd:
				return schema.Int(a + b)
			case OpSub:
				return schema.Int(a - b)
			case OpMul:
				return schema.Int(a * b)
			}
		}
		a, b := lv.AsFloat(), rv.AsFloat()
		switch op {
		case OpAdd:
			return schema.Float(a + b)
		case OpSub:
			return schema.Float(a - b)
		case OpMul:
			return schema.Float(a * b)
		case OpDiv:
			if b == 0 {
				return schema.Null()
			}
			return schema.Float(a / b)
		}
		panic("algebra: unreachable arith")
	}
	rtType := schema.TFloat
	if intResult {
		rtType = schema.TInt
	}
	return eval, rtType, nil
}

func (x Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", x.L, x.Op, x.R)
}
