package algebra

import (
	"strings"
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

func rsSchema() (*schema.Schema, *schema.Schema) {
	r := schema.NewSchema(schema.Col("A", schema.TString), schema.Col("B", schema.TString))
	s := schema.NewSchema(schema.Col("B2", schema.TString), schema.Col("C", schema.TString))
	return r, s
}

// example12State reproduces the tables of the paper's Example 1.2
// post-insert: R = {[a1,b1],[a1,b2]}, S = {[b1,c1],[b2,c2]}.
func example12State() (MapSource, *Base, *Base) {
	rsch, ssch := rsSchema()
	r := bag.Of(schema.Row("a1", "b1"), schema.Row("a1", "b2"))
	s := bag.Of(schema.Row("b1", "c1"), schema.Row("b2", "c2"))
	return MapSource{"R": r, "S": s}, NewBase("R", rsch), NewBase("S", ssch)
}

func TestEvalBaseAndLiteral(t *testing.T) {
	st, r, _ := example12State()
	got, err := Eval(r, st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("R has %d tuples", got.Len())
	}
	// Result must be caller-owned: mutating it must not corrupt the state.
	got.Add(schema.Row("zz", "zz"), 1)
	again, _ := Eval(r, st)
	if again.Contains(schema.Row("zz", "zz")) {
		t.Fatal("Eval result aliases stored table")
	}
	if _, err := Eval(NewBase("missing", r.Schema()), st); err == nil {
		t.Fatal("missing table should error")
	}
	empty, _ := Eval(Empty(r.Schema()), st)
	if !empty.Empty() {
		t.Fatal("∅ should evaluate empty")
	}
	lit, err := Singleton(r.Schema(), schema.Row("x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	one, _ := Eval(lit, st)
	if one.Len() != 1 || !one.Contains(schema.Row("x", "y")) {
		t.Fatal("singleton wrong")
	}
	if _, err := Singleton(r.Schema(), schema.Row(1, 2)); err == nil {
		t.Fatal("singleton with wrong types should fail")
	}
}

func TestEvalSelectProject(t *testing.T) {
	st, r, _ := example12State()
	sel, err := NewSelect(Eq(A("B"), C("b2")), r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(sel, st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(schema.Row("a1", "b2")) {
		t.Fatalf("select wrong: %v", got)
	}
	proj, err := NewProject([]string{"A"}, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := Eval(proj, st)
	// Both R tuples project to [a1]: multiplicity 2 under bag semantics.
	if pg.Count(schema.Row("a1")) != 2 {
		t.Fatalf("project wrong: %v", pg)
	}
	if proj.Schema().Column(0).Name != "A" {
		t.Fatal("projection schema wrong")
	}
	ren, err := NewProject([]string{"A"}, []string{"alias"}, r)
	if err != nil {
		t.Fatal(err)
	}
	if ren.Schema().Column(0).Name != "alias" {
		t.Fatal("rename projection schema wrong")
	}
	if _, err := NewProject([]string{"missing"}, nil, r); err == nil {
		t.Fatal("projecting a missing column should fail")
	}
	if _, err := NewSelect(Eq(A("missing"), C(1)), r); err == nil {
		t.Fatal("selecting on a missing column should fail")
	}
}

func TestEvalSetOps(t *testing.T) {
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	st := MapSource{
		"P": bag.Of(schema.Row(1), schema.Row(1), schema.Row(2)),
		"Q": bag.Of(schema.Row(1), schema.Row(3)),
	}
	p := NewBase("P", sch)
	q := NewBase("Q", sch)

	u, err := NewUnionAll(p, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Eval(u, st)
	if got.Count(schema.Row(1)) != 3 || got.Len() != 5 {
		t.Fatalf("union wrong: %v", got)
	}

	m, err := NewMonus(p, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = Eval(m, st)
	if got.Count(schema.Row(1)) != 1 || got.Count(schema.Row(2)) != 1 || got.Contains(schema.Row(3)) {
		t.Fatalf("monus wrong: %v", got)
	}

	d := NewDupElim(p)
	got, _ = Eval(d, st)
	if got.Len() != 2 {
		t.Fatalf("dupelim wrong: %v", got)
	}

	mi, err := MinOf(p, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = Eval(mi, st)
	if !got.Equal(bag.Of(schema.Row(1))) {
		t.Fatalf("min wrong: %v", got)
	}

	mx, err := MaxOf(p, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = Eval(mx, st)
	want := bag.Of(schema.Row(1), schema.Row(1), schema.Row(2), schema.Row(3))
	if !got.Equal(want) {
		t.Fatalf("max wrong: %v", got)
	}

	ex, err := ExceptOf(p, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = Eval(ex, st)
	// EXCEPT removes all copies of 1 (present in Q), keeps 2.
	if !got.Equal(bag.Of(schema.Row(2))) {
		t.Fatalf("except wrong: %v", got)
	}

	bad := NewBase("R", schema.NewSchema(schema.Col("x", schema.TString)))
	if _, err := NewUnionAll(p, bad); err == nil {
		t.Fatal("incompatible union should fail")
	}
	if _, err := NewMonus(p, bad); err == nil {
		t.Fatal("incompatible monus should fail")
	}
	if _, err := ExceptOf(p, bad); err == nil {
		t.Fatal("incompatible except should fail")
	}
}

func TestEvalProductAndJoin(t *testing.T) {
	st, r, s := example12State()
	prod := NewProduct(r, s)
	if prod.Schema().Len() != 4 {
		t.Fatal("product schema arity wrong")
	}
	got, _ := Eval(prod, st)
	if got.Len() != 4 {
		t.Fatalf("product wrong: %v", got)
	}

	// Example 1.2's view U: SELECT R.A FROM R, S WHERE R.B = S.B — two
	// matches, both projecting to [a1].
	join, err := JoinOn(r, s, Eq(A("B"), A("B2")))
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewProject([]string{"A"}, nil, join)
	if err != nil {
		t.Fatal(err)
	}
	gu, _ := Eval(u, st)
	if gu.Count(schema.Row("a1")) != 2 || gu.Len() != 2 {
		t.Fatalf("example 1.2 view MU wrong: %v", gu)
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	// Join with an equi-pair plus a residual inequality; force both the
	// hash path (equi-join present) and the fallback (no pairs), and
	// check they agree.
	lsch := schema.NewSchema(schema.Col("lk", schema.TInt), schema.Col("lv", schema.TInt))
	rsch := schema.NewSchema(schema.Col("rk", schema.TInt), schema.Col("rv", schema.TInt))
	lb, rb := bag.New(), bag.New()
	for i := 0; i < 20; i++ {
		lb.Add(schema.Row(i%5, i), 1+i%2)
		rb.Add(schema.Row(i%4, i), 1)
	}
	st := MapSource{"L": lb, "R": rb}
	l, r := NewBase("L", lsch), NewBase("R", rsch)

	hashPred := AndOf(Eq(A("lk"), A("rk")), Gt(A("rv"), C(3)))
	hj, err := JoinOn(l, r, hashPred)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Eval(hj, st)
	if err != nil {
		t.Fatal(err)
	}

	// Same semantics without an extractable pair (wrapped in OR with FALSE).
	loopPred := AndOf(OrOf(Eq(A("lk"), A("rk")), False), Gt(A("rv"), C(3)))
	lj, err := JoinOn(l, r, loopPred)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := Eval(lj, st)
	if err != nil {
		t.Fatal(err)
	}
	if !hres.Equal(lres) {
		t.Fatalf("hash join disagrees with nested loop:\n%v\nvs\n%v", hres, lres)
	}
	// Reversed pair order (rk = lk) must also work.
	rev, err := JoinOn(l, r, Eq(A("rk"), A("lk")))
	if err != nil {
		t.Fatal(err)
	}
	rres, _ := Eval(rev, st)
	fwd, err := JoinOn(l, r, Eq(A("lk"), A("rk")))
	if err != nil {
		t.Fatal(err)
	}
	fres, _ := Eval(fwd, st)
	if !rres.Equal(fres) {
		t.Fatal("reversed equi-pair disagrees")
	}
}

func TestSubstitute(t *testing.T) {
	st, r, s := example12State()
	join, err := JoinOn(r, s, Eq(A("B"), A("B2")))
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewProject([]string{"A"}, nil, join)
	if err != nil {
		t.Fatal(err)
	}
	// Substitute R with R ⊎ R: every multiplicity doubles.
	doubled, err := NewUnionAll(r, r)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Substitute(u, map[string]Expr{"R": doubled})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(sub, st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count(schema.Row("a1")) != 4 {
		t.Fatalf("substituted eval wrong: %v", got)
	}
	// Original expression untouched.
	orig, _ := Eval(u, st)
	if orig.Count(schema.Row("a1")) != 2 {
		t.Fatal("substitute mutated original")
	}
	// Incompatible replacement must fail.
	bad := NewBase("X", schema.NewSchema(schema.Col("x", schema.TInt)))
	if _, err := Substitute(u, map[string]Expr{"R": bad}); err == nil {
		t.Fatal("incompatible substitution should fail")
	}
}

func TestBaseNamesAndSelfJoin(t *testing.T) {
	st, r, s := example12State()
	_ = st
	join, _ := JoinOn(r, s, Eq(A("B"), A("B2")))
	names := BaseNames(join)
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Fatalf("BaseNames = %v", names)
	}
	if HasSelfJoin(join) {
		t.Fatal("R⋈S misreported as self-join")
	}
	rr := NewProduct(qualify(r, "l"), qualify(r, "r"))
	if !HasSelfJoin(rr) {
		t.Fatal("R×R is a self-join")
	}
	if got := BaseNames(rr); len(got) != 1 || got[0] != "R" {
		t.Fatalf("BaseNames(R×R) = %v", got)
	}
	if BaseNames(Empty(r.Schema())) != nil {
		t.Fatal("∅ references no tables")
	}
}

func TestExprStrings(t *testing.T) {
	_, r, s := example12State()
	join, _ := JoinOn(r, s, Eq(A("B"), A("B2")))
	u, _ := NewProject([]string{"A"}, nil, join)
	str := u.String()
	for _, want := range []string{"Π[A]", "σ[B = B2]", "(R × S)"} {
		if !strings.Contains(str, want) {
			t.Errorf("String %q missing %q", str, want)
		}
	}
	if Empty(r.Schema()).String() != "∅" {
		t.Error("empty literal should print ∅")
	}
	lit, _ := Singleton(r.Schema(), schema.Row("x", "y"))
	if !strings.Contains(lit.String(), `"x"`) {
		t.Errorf("literal String = %q", lit.String())
	}
	d := NewDupElim(r)
	if d.String() != "ε(R)" {
		t.Errorf("dupelim String = %q", d.String())
	}
	mo, _ := NewMonus(r, r)
	if mo.String() != "(R ∸ R)" {
		t.Errorf("monus String = %q", mo.String())
	}
	un, _ := NewUnionAll(r, r)
	if un.String() != "(R ⊎ R)" {
		t.Errorf("union String = %q", un.String())
	}
}

func TestQualifySchemas(t *testing.T) {
	_, r, _ := example12State()
	q := qualify(r, "t")
	if q.Schema().Column(0).Name != "t.A" || q.Schema().Column(1).Name != "t.B" {
		t.Fatalf("qualify schema = %v", q.Schema())
	}
	st, _, _ := example12State()
	got, err := Eval(q, st)
	if err != nil || got.Len() != 2 {
		t.Fatalf("qualified eval: %v, %v", got, err)
	}
}

func TestQualifiedExported(t *testing.T) {
	st, r, _ := example12State()
	q := Qualified(r, "x")
	if q.Schema().Column(0).Name != "x.A" {
		t.Fatalf("Qualified schema = %v", q.Schema())
	}
	b, err := Eval(q, st)
	if err != nil || b.Len() != 2 {
		t.Fatalf("Qualified eval: %v, %v", b, err)
	}
}
