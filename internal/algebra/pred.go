package algebra

import (
	"fmt"
	"strings"

	"dvm/internal/schema"
)

// Predicate is a quantifier-free predicate over a single tuple, the p of
// σ_p in the paper's grammar.
type Predicate interface {
	// Bind resolves attribute names against sch, returning an evaluator.
	Bind(sch *schema.Schema) (func(schema.Tuple) bool, error)
	String() string
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Cmp compares two scalars. NULL compares using the total order of
// schema.Value (NULL sorts first), keeping predicate logic two-valued as
// the paper assumes.
type Cmp struct {
	Op   CmpOp
	L, R Scalar
}

// Eq builds L = R.
func Eq(l, r Scalar) Cmp { return Cmp{Op: EQ, L: l, R: r} }

// Neq builds L != R.
func Neq(l, r Scalar) Cmp { return Cmp{Op: NE, L: l, R: r} }

// Lt builds L < R.
func Lt(l, r Scalar) Cmp { return Cmp{Op: LT, L: l, R: r} }

// Gt builds L > R.
func Gt(l, r Scalar) Cmp { return Cmp{Op: GT, L: l, R: r} }

// Bind implements Predicate.
func (c Cmp) Bind(sch *schema.Schema) (func(schema.Tuple) bool, error) {
	lf, _, err := c.L.bind(sch)
	if err != nil {
		return nil, err
	}
	rf, _, err := c.R.bind(sch)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(t schema.Tuple) bool {
		r := lf(t).Compare(rf(t))
		switch op {
		case EQ:
			return r == 0
		case NE:
			return r != 0
		case LT:
			return r < 0
		case LE:
			return r <= 0
		case GT:
			return r > 0
		case GE:
			return r >= 0
		}
		return false
	}, nil
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is an n-ary conjunction.
type And struct{ Preds []Predicate }

// AndOf conjoins predicates; AndOf() is TRUE.
func AndOf(ps ...Predicate) And { return And{Preds: ps} }

// Bind implements Predicate.
func (a And) Bind(sch *schema.Schema) (func(schema.Tuple) bool, error) {
	fs := make([]func(schema.Tuple) bool, len(a.Preds))
	for i, p := range a.Preds {
		f, err := p.Bind(sch)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(t schema.Tuple) bool {
		for _, f := range fs {
			if !f(t) {
				return false
			}
		}
		return true
	}, nil
}

func (a And) String() string {
	if len(a.Preds) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is an n-ary disjunction.
type Or struct{ Preds []Predicate }

// OrOf disjoins predicates; OrOf() is FALSE.
func OrOf(ps ...Predicate) Or { return Or{Preds: ps} }

// Bind implements Predicate.
func (o Or) Bind(sch *schema.Schema) (func(schema.Tuple) bool, error) {
	fs := make([]func(schema.Tuple) bool, len(o.Preds))
	for i, p := range o.Preds {
		f, err := p.Bind(sch)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(t schema.Tuple) bool {
		for _, f := range fs {
			if f(t) {
				return true
			}
		}
		return false
	}, nil
}

func (o Or) String() string {
	if len(o.Preds) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(o.Preds))
	for i, p := range o.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Not negates a predicate.
type Not struct{ Pred Predicate }

// NotOf negates p.
func NotOf(p Predicate) Not { return Not{Pred: p} }

// Bind implements Predicate.
func (n Not) Bind(sch *schema.Schema) (func(schema.Tuple) bool, error) {
	f, err := n.Pred.Bind(sch)
	if err != nil {
		return nil, err
	}
	return func(t schema.Tuple) bool { return !f(t) }, nil
}

func (n Not) String() string { return "NOT " + n.Pred.String() }

// BoolLit is the TRUE/FALSE predicate.
type BoolLit struct{ Value bool }

// True and False are the constant predicates.
var (
	True  = BoolLit{Value: true}
	False = BoolLit{Value: false}
)

// Bind implements Predicate.
func (b BoolLit) Bind(*schema.Schema) (func(schema.Tuple) bool, error) {
	v := b.Value
	return func(schema.Tuple) bool { return v }, nil
}

func (b BoolLit) String() string {
	if b.Value {
		return "TRUE"
	}
	return "FALSE"
}

// EquiPairs extracts the attribute-equality conjuncts attr=attr of p,
// together with the residual conjuncts that are not such pairs. It is
// what the evaluator uses to plan hash joins, exported so the sharding
// planner can co-partition join inputs on the same equalities.
func EquiPairs(p Predicate) (pairs [][2]string, rest []Predicate) {
	return equiPairs(p)
}

// equiPairs extracts attribute-equality conjuncts attr=attr from p.
// Used by the evaluator to plan hash joins; returns nil when p is not a
// pure conjunction containing such pairs.
func equiPairs(p Predicate) (pairs [][2]string, rest []Predicate) {
	switch q := p.(type) {
	case Cmp:
		if q.Op == EQ {
			if l, ok := q.L.(Attr); ok {
				if r, ok := q.R.(Attr); ok {
					return [][2]string{{l.Name, r.Name}}, nil
				}
			}
		}
		return nil, []Predicate{p}
	case And:
		for _, sub := range q.Preds {
			ps, rs := equiPairs(sub)
			pairs = append(pairs, ps...)
			rest = append(rest, rs...)
		}
		return pairs, rest
	case BoolLit:
		if q.Value {
			return nil, nil
		}
		return nil, []Predicate{p}
	default:
		return nil, []Predicate{p}
	}
}
