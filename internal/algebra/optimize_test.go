package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

func TestOptimizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	u := NewRandomUniverse(3)
	for i := 0; i < 300; i++ {
		q := u.RandomQuery(r, 4)
		st := u.RandomState(r)
		want, err := Eval(q, st)
		if err != nil {
			t.Fatal(err)
		}
		opt := Optimize(q)
		got, err := Eval(opt, st)
		if err != nil {
			t.Fatalf("optimized query failed: %v\noriginal: %s\noptimized: %s", err, q, opt)
		}
		if !got.Equal(want) {
			t.Fatalf("optimize changed semantics:\noriginal:  %s -> %v\noptimized: %s -> %v", q, want, opt, got)
		}
		if !q.Schema().Equal(opt.Schema()) {
			t.Fatalf("optimize changed schema: %s vs %s", q.Schema(), opt.Schema())
		}
	}
}

func TestOptimizePushesSelectThroughUnion(t *testing.T) {
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	a := NewBase("A", sch)
	b := NewBase("B", sch)
	un, err := NewUnionAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelect(Gt(A("x"), C(0)), un)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(sel)
	u2, ok := opt.(*UnionAll)
	if !ok {
		t.Fatalf("σ not pushed: %s", opt)
	}
	if _, ok := u2.L.(*Select); !ok {
		t.Fatalf("left side not selected: %s", opt)
	}
}

func TestOptimizeKeepsSelectWhenNamesDiffer(t *testing.T) {
	// Union of differently-named (but compatible) schemas: σ must stay on
	// top, since name-based rebinding on the right side could pick a
	// different column.
	l := NewBase("L", schema.NewSchema(schema.Col("x", schema.TInt), schema.Col("y", schema.TInt)))
	r := NewBase("R", schema.NewSchema(schema.Col("y", schema.TInt), schema.Col("x", schema.TInt)))
	un, err := NewUnionAll(l, r)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelect(Gt(A("x"), C(0)), un)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(sel)
	if _, ok := opt.(*Select); !ok {
		t.Fatalf("σ was pushed across mismatched names: %s", opt)
	}
	// And semantics must be identical.
	st := MapSource{
		"L": bag.Of(schema.Row(1, -5), schema.Row(-1, 5)),
		"R": bag.Of(schema.Row(7, -7)),
	}
	want, _ := Eval(sel, st)
	got, _ := Eval(opt, st)
	if !got.Equal(want) {
		t.Fatalf("semantics changed: %v vs %v", got, want)
	}
}

func TestOptimizeMergesNestedSelects(t *testing.T) {
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	base := NewBase("A", sch)
	inner, _ := NewSelect(Gt(A("x"), C(0)), base)
	outer, _ := NewSelect(Lt(A("x"), C(10)), inner)
	opt := Optimize(outer)
	s, ok := opt.(*Select)
	if !ok {
		t.Fatalf("expected a single select, got %s", opt)
	}
	if _, nested := s.Child.(*Select); nested {
		t.Fatalf("selects not merged: %s", opt)
	}
	st := MapSource{"A": bag.Of(schema.Row(5), schema.Row(-5), schema.Row(15))}
	got, _ := Eval(opt, st)
	if !got.Equal(bag.Of(schema.Row(5))) {
		t.Fatalf("merged select wrong: %v", got)
	}
}

func TestOptimizePushesThroughDupElim(t *testing.T) {
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	base := NewBase("A", sch)
	sel, _ := NewSelect(Gt(A("x"), C(0)), NewDupElim(base))
	opt := Optimize(sel)
	if _, ok := opt.(*DupElim); !ok {
		t.Fatalf("σ(ε(E)) not rewritten to ε(σ(E)): %s", opt)
	}
	st := MapSource{"A": bag.Of(schema.Row(1), schema.Row(1), schema.Row(-1))}
	got, _ := Eval(opt, st)
	if !got.Equal(bag.Of(schema.Row(1))) {
		t.Fatalf("dupelim push wrong: %v", got)
	}
}

func TestOptimizePreservesSharing(t *testing.T) {
	// A shared subexpression must remain pointer-shared after rewriting.
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	shared, _ := NewSelect(Gt(A("x"), C(0)), NewBase("A", sch))
	l, _ := NewUnionAll(shared, shared)
	opt := Optimize(l).(*UnionAll)
	if opt.L != opt.R {
		t.Fatal("sharing lost during optimize")
	}
	// OptimizePair shares across the two results.
	a, b := OptimizePair(shared, shared)
	if a != b {
		t.Fatal("OptimizePair lost cross-expression sharing")
	}
}

func TestEvaluatorSharedMemo(t *testing.T) {
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	st := MapSource{"A": bag.Of(schema.Row(1), schema.Row(2))}
	base := NewBase("A", sch)
	ev := NewEvaluator(st)
	b1, err := ev.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ev.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Equal(b2) {
		t.Fatal("evaluator results differ")
	}
	// Returned bags are owned copies: mutating one must not affect the
	// next evaluation.
	b1.Add(schema.Row(99), 1)
	b3, _ := ev.Eval(base)
	if b3.Contains(schema.Row(99)) {
		t.Fatal("evaluator leaked its memo to the caller")
	}
}

func TestOptimizePushesThroughProject(t *testing.T) {
	sch := schema.NewSchema(schema.Col("t.k", schema.TInt), schema.Col("t.v", schema.TInt))
	base := NewBase("T", sch)
	proj, err := NewProject([]string{"t.v", "t.k"}, []string{"val", "key"}, base)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelect(Eq(A("key"), C(1)), proj)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(sel)
	// σ must now sit under the projection, renamed to t.k.
	p, ok := opt.(*Project)
	if !ok {
		t.Fatalf("σ not pushed through Π: %s", opt)
	}
	inner, ok := p.Child.(*Select)
	if !ok || !strings.Contains(inner.Pred.String(), "t.k") {
		t.Fatalf("renaming wrong: %s", opt)
	}
	st := MapSource{"T": bag.Of(schema.Row(1, 10), schema.Row(2, 20))}
	want, _ := Eval(sel, st)
	got, _ := Eval(opt, st)
	if !got.Equal(want) {
		t.Fatalf("semantics changed: %v vs %v", got, want)
	}
}

func TestOptimizeSplitsConjunctsAcrossProduct(t *testing.T) {
	ls := schema.NewSchema(schema.Col("l.k", schema.TInt), schema.Col("l.a", schema.TInt))
	rs := schema.NewSchema(schema.Col("r.k", schema.TInt), schema.Col("r.b", schema.TInt))
	prod := NewProduct(NewBase("L", ls), NewBase("R", rs))
	pred := AndOf(
		Eq(A("l.k"), A("r.k")), // cross-side: must stay above
		Gt(A("l.a"), C(0)),     // left-only: pushes left
		Lt(A("r.b"), C(10)),    // right-only: pushes right
	)
	sel, err := NewSelect(pred, prod)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(sel)
	top, ok := opt.(*Select)
	if !ok {
		t.Fatalf("residual σ missing: %s", opt)
	}
	if !strings.Contains(top.Pred.String(), "l.k = r.k") {
		t.Fatalf("equi-join conjunct lost from residual: %s", top.Pred)
	}
	p2, ok := top.Child.(*Product)
	if !ok {
		t.Fatalf("product lost: %s", opt)
	}
	if _, ok := p2.L.(*Select); !ok {
		t.Fatalf("left conjunct not pushed: %s", opt)
	}
	if _, ok := p2.R.(*Select); !ok {
		t.Fatalf("right conjunct not pushed: %s", opt)
	}
	st := MapSource{
		"L": bag.Of(schema.Row(1, 5), schema.Row(2, -1)),
		"R": bag.Of(schema.Row(1, 3), schema.Row(1, 99)),
	}
	want, _ := Eval(sel, st)
	got, _ := Eval(opt, st)
	if !got.Equal(want) {
		t.Fatalf("semantics changed: %v vs %v", got, want)
	}
	if want.Len() != 1 {
		t.Fatalf("fixture wrong: %v", want)
	}
}
