package algebra

import (
	"testing"

	"dvm/internal/schema"
)

func bindPred(t *testing.T, p Predicate, sc *schema.Schema) func(schema.Tuple) bool {
	t.Helper()
	f, err := p.Bind(sc)
	if err != nil {
		t.Fatalf("Bind(%s): %v", p, err)
	}
	return f
}

func TestCmpOps(t *testing.T) {
	sc := sch2()
	tu := schema.Row(5, 2.0)
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Eq(A("a"), C(5)), true},
		{Eq(A("a"), C(4)), false},
		{Neq(A("a"), C(4)), true},
		{Lt(A("a"), C(6)), true},
		{Lt(A("a"), C(5)), false},
		{Cmp{Op: LE, L: A("a"), R: C(5)}, true},
		{Gt(A("a"), C(4)), true},
		{Cmp{Op: GE, L: A("a"), R: C(5)}, true},
		{Eq(A("a"), A("b")), false},
		{Gt(A("a"), A("b")), true},
	}
	for _, c := range cases {
		if got := bindPred(t, c.p, sc)(tu); got != c.want {
			t.Errorf("%s on %v = %t, want %t", c.p, tu, got, c.want)
		}
	}
}

func TestBoolPredCombinators(t *testing.T) {
	sc := sch2()
	tu := schema.Row(5, 2.0)
	pT := Eq(A("a"), C(5))
	pF := Eq(A("a"), C(0))
	cases := []struct {
		p    Predicate
		want bool
	}{
		{AndOf(), true},
		{AndOf(pT, pT), true},
		{AndOf(pT, pF), false},
		{OrOf(), false},
		{OrOf(pF, pT), true},
		{OrOf(pF, pF), false},
		{NotOf(pF), true},
		{NotOf(pT), false},
		{True, true},
		{False, false},
	}
	for _, c := range cases {
		if got := bindPred(t, c.p, sc)(tu); got != c.want {
			t.Errorf("%s = %t, want %t", c.p, got, c.want)
		}
	}
}

func TestPredBindErrors(t *testing.T) {
	sc := sch2()
	bad := Eq(A("zzz"), C(1))
	preds := []Predicate{
		bad,
		Eq(C(1), A("zzz")),
		AndOf(True, bad),
		OrOf(False, bad),
		NotOf(bad),
	}
	for _, p := range preds {
		if _, err := p.Bind(sc); err == nil {
			t.Errorf("%s should fail to bind", p)
		}
	}
}

func TestPredStrings(t *testing.T) {
	cases := map[string]Predicate{
		"a = 1":             Eq(A("a"), C(1)),
		"a != 1":            Neq(A("a"), C(1)),
		"(a = 1 AND b > 2)": AndOf(Eq(A("a"), C(1)), Gt(A("b"), C(2))),
		"(a = 1 OR a < 0)":  OrOf(Eq(A("a"), C(1)), Lt(A("a"), C(0))),
		"NOT a = 1":         NotOf(Eq(A("a"), C(1))),
		"TRUE":              AndOf(),
		"FALSE":             OrOf(),
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if True.String() != "TRUE" || False.String() != "FALSE" {
		t.Error("BoolLit strings wrong")
	}
	for op, want := range map[CmpOp]string{EQ: "=", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">="} {
		if op.String() != want {
			t.Errorf("CmpOp = %q, want %q", op.String(), want)
		}
	}
}

func TestEquiPairs(t *testing.T) {
	p := AndOf(Eq(A("x"), A("y")), Gt(A("x"), C(0)), Eq(A("u"), A("v")))
	pairs, rest := equiPairs(p)
	if len(pairs) != 2 || pairs[0] != [2]string{"x", "y"} || pairs[1] != [2]string{"u", "v"} {
		t.Fatalf("pairs = %v", pairs)
	}
	if len(rest) != 1 {
		t.Fatalf("rest = %v", rest)
	}
	// Disjunction must not contribute join pairs.
	pairs, _ = equiPairs(OrOf(Eq(A("x"), A("y")), True))
	if len(pairs) != 0 {
		t.Fatalf("Or contributed pairs: %v", pairs)
	}
	// attr = const is not an equi-join pair.
	pairs, rest = equiPairs(Eq(A("x"), C(1)))
	if len(pairs) != 0 || len(rest) != 1 {
		t.Fatalf("attr=const misclassified: %v %v", pairs, rest)
	}
	// TRUE contributes nothing at all.
	pairs, rest = equiPairs(True)
	if len(pairs) != 0 || len(rest) != 0 {
		t.Fatalf("TRUE misclassified")
	}
}
