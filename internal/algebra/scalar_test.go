package algebra

import (
	"testing"

	"dvm/internal/schema"
)

func sch2() *schema.Schema {
	return schema.NewSchema(schema.Col("a", schema.TInt), schema.Col("b", schema.TFloat))
}

func bindScalar(t *testing.T, s Scalar, sc *schema.Schema) (func(schema.Tuple) schema.Value, schema.Type) {
	t.Helper()
	f, typ, err := s.bind(sc)
	if err != nil {
		t.Fatalf("bind(%s): %v", s, err)
	}
	return f, typ
}

func TestAttrBind(t *testing.T) {
	f, typ := bindScalar(t, A("a"), sch2())
	if typ != schema.TInt {
		t.Fatalf("type = %s", typ)
	}
	if got := f(schema.Row(7, 1.5)); got.AsInt() != 7 {
		t.Fatalf("eval = %v", got)
	}
	if _, _, err := A("zzz").bind(sch2()); err == nil {
		t.Fatal("unknown attr should fail to bind")
	}
}

func TestConstBind(t *testing.T) {
	f, typ := bindScalar(t, C("hi"), sch2())
	if typ != schema.TString || f(nil).AsString() != "hi" {
		t.Fatal("const bind wrong")
	}
}

func TestArithInt(t *testing.T) {
	cases := []struct {
		op   ArithOp
		want int64
	}{
		{OpAdd, 10}, {OpSub, 4}, {OpMul, 21},
	}
	for _, c := range cases {
		f, typ := bindScalar(t, Arith{Op: c.op, L: C(7), R: C(3)}, sch2())
		if typ != schema.TInt {
			t.Fatalf("%s type = %s", c.op, typ)
		}
		if got := f(nil); got.AsInt() != c.want {
			t.Fatalf("%s = %v, want %d", c.op, got, c.want)
		}
	}
}

func TestArithFloatAndDiv(t *testing.T) {
	f, typ := bindScalar(t, Arith{Op: OpDiv, L: C(7), R: C(2)}, sch2())
	if typ != schema.TFloat {
		t.Fatalf("div type = %s", typ)
	}
	if got := f(nil); got.AsFloat() != 3.5 {
		t.Fatalf("7/2 = %v", got)
	}
	f, _ = bindScalar(t, Arith{Op: OpDiv, L: C(1), R: C(0)}, sch2())
	if !f(nil).IsNull() {
		t.Fatal("division by zero should be NULL")
	}
	f, typ = bindScalar(t, Arith{Op: OpAdd, L: A("b"), R: C(1)}, sch2())
	if typ != schema.TFloat {
		t.Fatalf("float+int type = %s", typ)
	}
	if got := f(schema.Row(0, 1.5)); got.AsFloat() != 2.5 {
		t.Fatalf("1.5+1 = %v", got)
	}
}

func TestArithNullPropagation(t *testing.T) {
	f, _ := bindScalar(t, Arith{Op: OpAdd, L: A("a"), R: C(1)}, sch2())
	if !f(schema.Row(nil, 0.0)).IsNull() {
		t.Fatal("NULL + 1 should be NULL")
	}
}

func TestArithTypeError(t *testing.T) {
	if _, _, err := (Arith{Op: OpAdd, L: C("x"), R: C(1)}).bind(sch2()); err == nil {
		t.Fatal("string arithmetic should fail to bind")
	}
	if _, _, err := (Arith{Op: OpAdd, L: A("zzz"), R: C(1)}).bind(sch2()); err == nil {
		t.Fatal("bad attr in arith should fail")
	}
	if _, _, err := (Arith{Op: OpAdd, L: C(1), R: A("zzz")}).bind(sch2()); err == nil {
		t.Fatal("bad attr on right should fail")
	}
}

func TestScalarStrings(t *testing.T) {
	s := Arith{Op: OpMul, L: A("a"), R: C(3)}
	if got := s.String(); got != "(a * 3)" {
		t.Fatalf("String = %q", got)
	}
	for op, want := range map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"} {
		if op.String() != want {
			t.Errorf("ArithOp(%d) = %q", op, op.String())
		}
	}
}
