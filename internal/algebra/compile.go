package algebra

import (
	"fmt"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// This file lowers expression DAGs into compiled delta programs: the
// specialization step the fine-grained-IVM literature applies to
// maintenance expressions that are fixed at view-registration time and
// then evaluated once per transaction. Compared to the tree-walking
// interpreter in eval.go, a Program
//
//   - resolves column positions, bound predicates, and equi-join
//     columns once, at compile time, instead of per evaluation;
//   - fuses σ(L × R) into a hash join and Π(σ(E)) into a single pass;
//   - replaces the per-call memo map with slot-indexed DAG-node result
//     caching (plain slice loads, no interface-keyed map);
//   - caches hash-join indexes across evaluations in a State, validated
//     by bag identity + Version, so a join against a table that did not
//     change since the last propagate probes the old index with only
//     the delta-sized side instead of rebuilding from the full table.
//
// The interpreter remains the semantic oracle: Program results must be
// Eval results, bag-for-bag (asserted by compile_test.go and
// FuzzCompiledEval).

// Stats reports work counters from one Program evaluation.
type Stats struct {
	// IndexProbeTuples counts candidate pairs examined by indexed hash
	// joins — the work actually done where a nested-loop rescan would
	// have paid |L|·|R|.
	IndexProbeTuples int64
	// IndexBuildTuples counts tuples inserted into join indexes, full
	// rebuilds and incremental journal catch-up alike. When cached
	// indexes carry across evaluations this stays delta-sized; a full
	// rebuild costs the indexed side's distinct count.
	IndexBuildTuples int64
}

// Program is one or more expressions compiled, as a shared DAG, into a
// slot-indexed sequence of fused closures. A Program is immutable and
// safe for concurrent use with distinct States.
type Program struct {
	nodes []cnode
	roots []int
	nJoin int
}

// cnode computes one DAG node's value in a given evaluation state.
// Results are cached per State slot and must never be mutated.
type cnode func(st *State) (*bag.Bag, error)

// State is the reusable per-evaluator scratch of a Program: the DAG-node
// result slots for the evaluation in flight plus join-index caches that
// persist across evaluations. A State must not be shared by concurrent
// Eval calls; use one State per worker (or NewState per call).
type State struct {
	src    Source
	slots  []*bag.Bag
	joins  []joinCache
	probed int64
	built  int64
}

// joinCache holds the (possibly stale) hash indexes built for one join
// node: at most one per side. Validity is re-checked against the live
// input bags on every evaluation via bag identity + Version.
type joinCache struct {
	l, r *bag.Index
}

// NewState allocates an evaluation state for the program.
func (p *Program) NewState() *State {
	return &State{
		slots: make([]*bag.Bag, len(p.nodes)),
		joins: make([]joinCache, p.nJoin),
	}
}

// Roots returns the number of compiled root expressions.
func (p *Program) Roots() int { return len(p.roots) }

// Eval evaluates every root against src, in registration order,
// returning bags the caller owns (they never alias storage, literals, or
// internal caches). st may be nil for a throwaway state; passing the
// same State across evaluations of successive database states is what
// enables join-index reuse. The caller must not mutate the state's
// source tables during the call.
func (p *Program) Eval(st *State, src Source) ([]*bag.Bag, Stats, error) {
	if st == nil {
		st = p.NewState()
	}
	st.src = src
	for i := range st.slots {
		st.slots[i] = nil
	}
	st.probed = 0
	st.built = 0
	out := make([]*bag.Bag, len(p.roots))
	for i, slot := range p.roots {
		b, err := p.get(st, slot)
		if err != nil {
			st.src = nil
			return nil, Stats{}, err
		}
		out[i] = b.Clone()
	}
	stats := Stats{IndexProbeTuples: st.probed, IndexBuildTuples: st.built}
	st.src = nil
	return out, stats, nil
}

// get returns the slot's value, computing and caching it on first use
// within the current evaluation.
func (p *Program) get(st *State, slot int) (*bag.Bag, error) {
	if b := st.slots[slot]; b != nil {
		return b, nil
	}
	b, err := p.nodes[slot](st)
	if err != nil {
		return nil, err
	}
	st.slots[slot] = b
	return b, nil
}

// Compile lowers the given expression roots — treated as one DAG, with
// shared nodes compiled once — into a Program. Literal bags are cloned
// at compile time: a Program is a snapshot of its literals, deliberately
// decoupled from later caller mutations (the interpreter, by contrast,
// reads literals live).
func Compile(roots ...Expr) (*Program, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("algebra: compile: no roots")
	}
	c := &compiler{
		p:     &Program{},
		slots: make(map[Expr]int),
		refs:  make(map[Expr]int),
	}
	// Distribute joins over the ∸/⊎ base-table adjustments first (see
	// rewrite.go) so the emitted hash joins key their indexes off live
	// base bags rather than per-evaluation materializations.
	memo := make(map[Expr]Expr)
	rewritten := make([]Expr, len(roots))
	for i, r := range roots {
		rw, err := distributeJoins(r, memo)
		if err != nil {
			return nil, err
		}
		rewritten[i] = rw
	}
	for _, r := range rewritten {
		c.countRefs(r)
	}
	for _, r := range rewritten {
		slot, err := c.compile(r)
		if err != nil {
			return nil, err
		}
		c.p.roots = append(c.p.roots, slot)
	}
	return c.p, nil
}

// compiler carries the compile-time maps: node → slot for DAG sharing
// and node → parent-edge count for fusion decisions.
type compiler struct {
	p     *Program
	slots map[Expr]int
	refs  map[Expr]int
}

// countRefs counts parent edges per node (each encounter is one edge;
// children are walked on first encounter only, so the pass is linear in
// DAG size). A node with more than one parent must keep its own slot —
// fusing it into a parent would duplicate its work.
func (c *compiler) countRefs(e Expr) {
	c.refs[e]++
	if c.refs[e] > 1 {
		return
	}
	switch n := e.(type) {
	case *Literal, *Base:
	case *Select:
		c.countRefs(n.Child)
	case *Project:
		c.countRefs(n.Child)
	case *DupElim:
		c.countRefs(n.Child)
	case *UnionAll:
		c.countRefs(n.L)
		c.countRefs(n.R)
	case *Monus:
		c.countRefs(n.L)
		c.countRefs(n.R)
	case *Product:
		c.countRefs(n.L)
		c.countRefs(n.R)
	}
}

// compile returns the slot computing e, emitting its closure (and its
// children's) on first encounter.
func (c *compiler) compile(e Expr) (int, error) {
	if slot, ok := c.slots[e]; ok {
		return slot, nil
	}
	// Reserve the slot before compiling children so shared nodes resolve
	// to it even through cycles of sharing (the DAG itself is acyclic).
	slot := len(c.p.nodes)
	c.p.nodes = append(c.p.nodes, nil)
	c.slots[e] = slot

	fn, err := c.emit(e)
	if err != nil {
		return 0, err
	}
	c.p.nodes[slot] = fn
	return slot, nil
}

// emit builds the closure for one node, applying the fusion rules.
func (c *compiler) emit(e Expr) (cnode, error) {
	p := c.p
	switch n := e.(type) {
	case *Literal:
		// Snapshot: decouple the program from later mutations of the
		// caller's literal bag.
		lit := n.Bag.Clone()
		return func(*State) (*bag.Bag, error) { return lit, nil }, nil

	case *Base:
		name := n.Name
		return func(st *State) (*bag.Bag, error) { return st.src.Bag(name) }, nil

	case *Select:
		if prod, ok := n.Child.(*Product); ok && c.refs[prod] == 1 {
			return c.emitJoin(n, prod)
		}
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		bound := n.bound
		return func(st *State) (*bag.Bag, error) {
			cb, err := p.get(st, child)
			if err != nil {
				return nil, err
			}
			return bag.Select(cb, bound), nil
		}, nil

	case *Project:
		pos := n.positions
		// Fuse Π(σ(E)) into one pass when the select has no other
		// parent (a shared select keeps its own cached slot).
		if sel, ok := n.Child.(*Select); ok && c.refs[sel] == 1 {
			if _, isProd := sel.Child.(*Product); !isProd {
				child, err := c.compile(sel.Child)
				if err != nil {
					return nil, err
				}
				bound := sel.bound
				return func(st *State) (*bag.Bag, error) {
					cb, err := p.get(st, child)
					if err != nil {
						return nil, err
					}
					out := bag.New()
					cb.Each(func(t schema.Tuple, cnt int) {
						if bound(t) {
							out.Add(t.Project(pos), cnt)
						}
					})
					return out, nil
				}, nil
			}
		}
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		return func(st *State) (*bag.Bag, error) {
			cb, err := p.get(st, child)
			if err != nil {
				return nil, err
			}
			return bag.Project(cb, func(t schema.Tuple) schema.Tuple { return t.Project(pos) }), nil
		}, nil

	case *DupElim:
		child, err := c.compile(n.Child)
		if err != nil {
			return nil, err
		}
		return func(st *State) (*bag.Bag, error) {
			cb, err := p.get(st, child)
			if err != nil {
				return nil, err
			}
			return bag.DupElim(cb), nil
		}, nil

	case *UnionAll:
		ls, rs, err := c.compileLR(n.L, n.R)
		if err != nil {
			return nil, err
		}
		return func(st *State) (*bag.Bag, error) {
			l, r, err := p.getLR(st, ls, rs)
			if err != nil {
				return nil, err
			}
			// Empty-side shortcuts return the other slot's bag
			// uncloned; slots are never mutated and roots are cloned,
			// so the alias is safe.
			if l.Empty() {
				return r, nil
			}
			if r.Empty() {
				return l, nil
			}
			return bag.UnionAll(l, r), nil
		}, nil

	case *Monus:
		ls, rs, err := c.compileLR(n.L, n.R)
		if err != nil {
			return nil, err
		}
		return func(st *State) (*bag.Bag, error) {
			l, r, err := p.getLR(st, ls, rs)
			if err != nil {
				return nil, err
			}
			if l.Empty() || r.Empty() {
				return l, nil
			}
			return bag.Monus(l, r), nil
		}, nil

	case *Product:
		ls, rs, err := c.compileLR(n.L, n.R)
		if err != nil {
			return nil, err
		}
		return func(st *State) (*bag.Bag, error) {
			l, r, err := p.getLR(st, ls, rs)
			if err != nil {
				return nil, err
			}
			if l.Empty() || r.Empty() {
				return bag.New(), nil
			}
			return bag.Product(l, r), nil
		}, nil
	}
	return nil, fmt.Errorf("algebra: compile: unknown node %T", e)
}

// emitJoin lowers σ_p(L × R) into a hash join with per-State cached
// indexes. The equi-join columns are resolved once here; the full
// predicate is still re-applied to every joined tuple, so residual
// conjuncts need no special handling. Index choice: a still-valid
// cached index is always preferred (its build cost is already sunk);
// otherwise the larger side is indexed — across propagates the large
// side is the stable base table and the small side the per-transaction
// delta, so the next evaluation probes the cached index with only the
// delta.
func (c *compiler) emitJoin(s *Select, prod *Product) (cnode, error) {
	p := c.p
	ls, rs, err := c.compileLR(prod.L, prod.R)
	if err != nil {
		return nil, err
	}
	bound := s.bound
	lpos, rpos := joinColumns(s.Pred, prod.L.Schema(), prod.R.Schema())
	if len(lpos) == 0 {
		// No cross-side equality to key an index on: filtered
		// nested-loop product, exactly as the interpreter.
		return func(st *State) (*bag.Bag, error) {
			l, r, err := p.getLR(st, ls, rs)
			if err != nil {
				return nil, err
			}
			if l.Empty() || r.Empty() {
				return bag.New(), nil
			}
			return bag.ProductSelect(l, r, bound), nil
		}, nil
	}
	jid := p.nJoin
	p.nJoin++
	return func(st *State) (*bag.Bag, error) {
		l, r, err := p.getLR(st, ls, rs)
		if err != nil {
			return nil, err
		}
		if l.Empty() || r.Empty() {
			return bag.New(), nil
		}
		jc := &st.joins[jid]
		// A cached index syncs in O(|changes since last eval|) via the
		// source bag's mutation journal — free when unchanged — so a
		// synced side is always preferred over building afresh.
		lSync, rSync := false, false
		if jc.l != nil {
			n, ok := jc.l.Sync(l)
			lSync = ok
			st.built += int64(n)
		}
		if jc.r != nil {
			n, ok := jc.r.Sync(r)
			rSync = ok
			st.built += int64(n)
		}
		var out *bag.Bag
		var probed int
		switch {
		case lSync && (!rSync || r.Distinct() <= l.Distinct()):
			out, probed = bag.JoinIndexed(r, rpos, jc.l, true, bound)
		case rSync:
			out, probed = bag.JoinIndexed(l, lpos, jc.r, false, bound)
		case l.Distinct() >= r.Distinct():
			jc.l = bag.NewIndex(l, lpos)
			st.built += int64(l.Distinct())
			out, probed = bag.JoinIndexed(r, rpos, jc.l, true, bound)
		default:
			jc.r = bag.NewIndex(r, rpos)
			st.built += int64(r.Distinct())
			out, probed = bag.JoinIndexed(l, lpos, jc.r, false, bound)
		}
		st.probed += int64(probed)
		return out, nil
	}, nil
}

// compileLR compiles both children of a binary node.
func (c *compiler) compileLR(l, r Expr) (int, int, error) {
	ls, err := c.compile(l)
	if err != nil {
		return 0, 0, err
	}
	rs, err := c.compile(r)
	if err != nil {
		return 0, 0, err
	}
	return ls, rs, nil
}

// getLR fetches both operand slots of a binary node.
func (p *Program) getLR(st *State, ls, rs int) (*bag.Bag, *bag.Bag, error) {
	l, err := p.get(st, ls)
	if err != nil {
		return nil, nil, err
	}
	r, err := p.get(st, rs)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}
