package txn

import (
	"sort"
	"strings"
	"sync"
	"time"

	"dvm/internal/obs"
	"dvm/internal/obs/trace"
)

// LockStats accumulates exclusive-lock hold times for a table — the
// paper's "view downtime" (Section 1.1): while a view table is
// write-locked, readers are blocked.
type LockStats struct {
	WriteHolds    int           // number of exclusive sections
	WriteHoldTime time.Duration // total exclusive hold time
	MaxWriteHold  time.Duration // longest single exclusive hold
	ReadWaits     int           // reader acquisitions
	ReadWaitTime  time.Duration // total time readers spent blocked
	MaxReadWait   time.Duration // longest single reader stall
}

// LockManager provides per-table reader/writer locks with deterministic
// (sorted) acquisition order, and records write-hold durations so the
// benchmark harness can report downtime. With SetRegistry it
// additionally feeds per-table lock_write_hold_ns / lock_read_wait_ns
// histograms in an obs.Registry.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
	stats map[string]*LockStats
	hists map[string]*lockHists
	clock func() time.Time
	reg   *obs.Registry
}

// lockHists caches one table's obs histograms so the hot path never
// takes the registry lock.
type lockHists struct {
	writeHold *obs.Histogram
	readWait  *obs.Histogram
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{
		locks: make(map[string]*sync.RWMutex),
		stats: make(map[string]*LockStats),
		hists: make(map[string]*lockHists),
		clock: time.Now,
	}
}

// SetRegistry attaches an obs registry: from now on every exclusive
// hold records into lock_write_hold_ns{table} and every shared
// acquisition records its blocked time into lock_read_wait_ns{table} —
// the reader-observed view downtime of Section 1.1. Call before
// concurrent use.
func (lm *LockManager) SetRegistry(r *obs.Registry) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.reg = r
	for table := range lm.locks {
		lm.hists[table] = &lockHists{
			writeHold: r.Histogram("lock_write_hold_ns", table),
			readWait:  r.Histogram("lock_read_wait_ns", table),
		}
	}
}

func (lm *LockManager) lockFor(table string) (*sync.RWMutex, *LockStats, *lockHists) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l, ok := lm.locks[table]
	if !ok {
		l = &sync.RWMutex{}
		lm.locks[table] = l
		lm.stats[table] = &LockStats{}
		if lm.reg != nil {
			lm.hists[table] = &lockHists{
				writeHold: lm.reg.Histogram("lock_write_hold_ns", table),
				readWait:  lm.reg.Histogram("lock_read_wait_ns", table),
			}
		}
	}
	return l, lm.stats[table], lm.hists[table]
}

func sortedUnique(tables []string) []string {
	out := append([]string(nil), tables...)
	sort.Strings(out)
	j := 0
	for i, t := range out {
		if i == 0 || t != out[i-1] {
			out[j] = t
			j++
		}
	}
	return out[:j]
}

// WithWrite runs f holding exclusive locks on the given tables, in
// sorted order to avoid deadlock, recording hold time against each.
func (lm *LockManager) WithWrite(tables []string, f func() error) error {
	return lm.WithWriteSpan(tables, nil, func(*trace.Span) error { return f() })
}

// WithWriteSpan is WithWrite with tracing: under a non-nil parent span
// it emits a txn.lock.wait child covering acquisition and a
// txn.lock.hold child covering f (its duration is the same clock
// reading recorded into lock_write_hold_ns). f receives the hold span
// so the critical section can parent its own work under it.
func (lm *LockManager) WithWriteSpan(tables []string, parent *trace.Span, f func(*trace.Span) error) error {
	ts := sortedUnique(tables)
	type held struct {
		l *sync.RWMutex
		s *LockStats
		h *lockHists
	}
	attrs := []trace.Attr{trace.Str("mode", "write"), trace.Str("tables", strings.Join(ts, ","))}
	wait := parent.StartChild(trace.SpanLockWait, attrs...)
	hs := make([]held, len(ts))
	for i, t := range ts {
		l, s, h := lm.lockFor(t)
		l.Lock()
		hs[i] = held{l: l, s: s, h: h}
	}
	wait.End()
	hold := parent.StartChild(trace.SpanLockHold, attrs...)
	start := lm.clock()
	err := f(hold)
	elapsed := lm.clock().Sub(start)
	hold.EndExplicit(elapsed)
	lm.mu.Lock()
	for _, h := range hs {
		h.s.WriteHolds++
		h.s.WriteHoldTime += elapsed
		if elapsed > h.s.MaxWriteHold {
			h.s.MaxWriteHold = elapsed
		}
	}
	lm.mu.Unlock()
	for _, h := range hs {
		if h.h != nil {
			h.h.writeHold.Observe(int64(elapsed))
		}
	}
	for i := len(hs) - 1; i >= 0; i-- {
		hs[i].l.Unlock()
	}
	return err
}

// WithRead runs f holding shared locks on the given tables, recording
// how long acquisition blocked (time spent waiting behind refreshes).
func (lm *LockManager) WithRead(tables []string, f func() error) error {
	return lm.WithReadSpan(tables, nil, func(*trace.Span) error { return f() })
}

// WithReadSpan is WithRead with tracing: under a non-nil parent span
// it emits a txn.lock.wait child covering the (possibly blocking)
// shared acquisitions and a txn.lock.hold child covering f. The wait
// span's duration is the reader-observed view downtime of this
// acquisition.
func (lm *LockManager) WithReadSpan(tables []string, parent *trace.Span, f func(*trace.Span) error) error {
	ts := sortedUnique(tables)
	locks := make([]*sync.RWMutex, len(ts))
	stats := make([]*LockStats, len(ts))
	hists := make([]*lockHists, len(ts))
	for i, t := range ts {
		locks[i], stats[i], hists[i] = lm.lockFor(t)
	}
	attrs := []trace.Attr{trace.Str("mode", "read"), trace.Str("tables", strings.Join(ts, ","))}
	wait := parent.StartChild(trace.SpanLockWait, attrs...)
	var totalWait time.Duration
	for i, l := range locks {
		start := lm.clock()
		l.RLock()
		waited := lm.clock().Sub(start)
		totalWait += waited
		lm.mu.Lock()
		stats[i].ReadWaits++
		stats[i].ReadWaitTime += waited
		if waited > stats[i].MaxReadWait {
			stats[i].MaxReadWait = waited
		}
		lm.mu.Unlock()
		if hists[i] != nil {
			hists[i].readWait.Observe(int64(waited))
		}
	}
	wait.EndExplicit(totalWait)
	hold := parent.StartChild(trace.SpanLockHold, attrs...)
	err := f(hold)
	hold.End()
	for i := len(locks) - 1; i >= 0; i-- {
		locks[i].RUnlock()
	}
	return err
}

// Stats returns a copy of the accumulated stats for a table.
func (lm *LockManager) Stats(table string) LockStats {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if s, ok := lm.stats[table]; ok {
		return *s
	}
	return LockStats{}
}

// Reset clears the accumulated statistics (locks remain valid).
func (lm *LockManager) Reset() {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for k := range lm.stats {
		lm.stats[k] = &LockStats{}
	}
}
