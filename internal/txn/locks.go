package txn

import (
	"sort"
	"sync"
	"time"
)

// LockStats accumulates exclusive-lock hold times for a table — the
// paper's "view downtime" (Section 1.1): while a view table is
// write-locked, readers are blocked.
type LockStats struct {
	WriteHolds    int           // number of exclusive sections
	WriteHoldTime time.Duration // total exclusive hold time
	MaxWriteHold  time.Duration // longest single exclusive hold
	ReadWaits     int           // reader acquisitions
	ReadWaitTime  time.Duration // total time readers spent blocked
	MaxReadWait   time.Duration // longest single reader stall
}

// LockManager provides per-table reader/writer locks with deterministic
// (sorted) acquisition order, and records write-hold durations so the
// benchmark harness can report downtime.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
	stats map[string]*LockStats
	clock func() time.Time
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{
		locks: make(map[string]*sync.RWMutex),
		stats: make(map[string]*LockStats),
		clock: time.Now,
	}
}

func (lm *LockManager) lockFor(table string) (*sync.RWMutex, *LockStats) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l, ok := lm.locks[table]
	if !ok {
		l = &sync.RWMutex{}
		lm.locks[table] = l
		lm.stats[table] = &LockStats{}
	}
	return l, lm.stats[table]
}

func sortedUnique(tables []string) []string {
	out := append([]string(nil), tables...)
	sort.Strings(out)
	j := 0
	for i, t := range out {
		if i == 0 || t != out[i-1] {
			out[j] = t
			j++
		}
	}
	return out[:j]
}

// WithWrite runs f holding exclusive locks on the given tables, in
// sorted order to avoid deadlock, recording hold time against each.
func (lm *LockManager) WithWrite(tables []string, f func() error) error {
	ts := sortedUnique(tables)
	type held struct {
		l *sync.RWMutex
		s *LockStats
	}
	hs := make([]held, len(ts))
	for i, t := range ts {
		l, s := lm.lockFor(t)
		l.Lock()
		hs[i] = held{l: l, s: s}
	}
	start := lm.clock()
	err := f()
	elapsed := lm.clock().Sub(start)
	lm.mu.Lock()
	for _, h := range hs {
		h.s.WriteHolds++
		h.s.WriteHoldTime += elapsed
		if elapsed > h.s.MaxWriteHold {
			h.s.MaxWriteHold = elapsed
		}
	}
	lm.mu.Unlock()
	for i := len(hs) - 1; i >= 0; i-- {
		hs[i].l.Unlock()
	}
	return err
}

// WithRead runs f holding shared locks on the given tables, recording
// how long acquisition blocked (time spent waiting behind refreshes).
func (lm *LockManager) WithRead(tables []string, f func() error) error {
	ts := sortedUnique(tables)
	locks := make([]*sync.RWMutex, len(ts))
	stats := make([]*LockStats, len(ts))
	for i, t := range ts {
		locks[i], stats[i] = lm.lockFor(t)
	}
	for i, l := range locks {
		start := lm.clock()
		l.RLock()
		waited := lm.clock().Sub(start)
		lm.mu.Lock()
		stats[i].ReadWaits++
		stats[i].ReadWaitTime += waited
		if waited > stats[i].MaxReadWait {
			stats[i].MaxReadWait = waited
		}
		lm.mu.Unlock()
	}
	err := f()
	for i := len(locks) - 1; i >= 0; i-- {
		locks[i].RUnlock()
	}
	return err
}

// Stats returns a copy of the accumulated stats for a table.
func (lm *LockManager) Stats(table string) LockStats {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if s, ok := lm.stats[table]; ok {
		return *s
	}
	return LockStats{}
}

// Reset clears the accumulated statistics (locks remain valid).
func (lm *LockManager) Reset() {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for k := range lm.stats {
		lm.stats[k] = &LockStats{}
	}
}
