package txn

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLockManagerWriteStats(t *testing.T) {
	lm := NewLockManager()
	err := lm.WithWrite([]string{"mv"}, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := lm.Stats("mv")
	if s.WriteHolds != 1 || s.WriteHoldTime <= 0 || s.MaxWriteHold <= 0 {
		t.Fatalf("stats = %+v", s)
	}
	if err := lm.WithWrite([]string{"mv"}, func() error { return errors.New("boom") }); err == nil {
		t.Fatal("error not propagated")
	}
	if lm.Stats("mv").WriteHolds != 2 {
		t.Fatal("failed section not counted")
	}
	lm.Reset()
	if lm.Stats("mv").WriteHolds != 0 {
		t.Fatal("Reset failed")
	}
}

func TestLockManagerReadersBlockOnWriter(t *testing.T) {
	lm := NewLockManager()
	writerIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = lm.WithWrite([]string{"mv"}, func() error {
			close(writerIn)
			<-release
			return nil
		})
	}()
	<-writerIn
	readerDone := make(chan struct{})
	go func() {
		_ = lm.WithRead([]string{"mv"}, func() error { return nil })
		close(readerDone)
	}()
	select {
	case <-readerDone:
		t.Fatal("reader proceeded while writer held the lock")
	case <-time.After(5 * time.Millisecond):
	}
	close(release)
	select {
	case <-readerDone:
	case <-time.After(time.Second):
		t.Fatal("reader never unblocked")
	}
	wg.Wait()
	s := lm.Stats("mv")
	if s.ReadWaits != 1 || s.ReadWaitTime <= 0 {
		t.Fatalf("reader wait not recorded: %+v", s)
	}
}

func TestLockManagerConcurrentReaders(t *testing.T) {
	lm := NewLockManager()
	inside := make(chan struct{}, 2)
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = lm.WithRead([]string{"mv"}, func() error {
				inside <- struct{}{}
				<-proceed
				return nil
			})
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-inside:
		case <-time.After(time.Second):
			t.Fatal("readers did not run concurrently")
		}
	}
	close(proceed)
	wg.Wait()
}

func TestLockManagerMultiTableOrdering(t *testing.T) {
	lm := NewLockManager()
	var wg sync.WaitGroup
	// Two writers locking the same pair in opposite order must not
	// deadlock thanks to sorted acquisition.
	for i := 0; i < 50; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = lm.WithWrite([]string{"a", "b"}, func() error { return nil })
		}()
		go func() {
			defer wg.Done()
			_ = lm.WithWrite([]string{"b", "a"}, func() error { return nil })
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock between multi-table writers")
	}
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]string{"b", "a", "b", "a", "c"})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("sortedUnique = %v", got)
	}
	if len(sortedUnique(nil)) != 0 {
		t.Fatal("sortedUnique(nil) should be empty")
	}
}

func TestStatsUnknownTable(t *testing.T) {
	lm := NewLockManager()
	if s := lm.Stats("never"); s != (LockStats{}) {
		t.Fatalf("unknown table stats = %+v", s)
	}
}
