package txn

import (
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
)

func setup(t *testing.T) (*storage.Database, *schema.Schema) {
	t.Helper()
	db := storage.NewDatabase()
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	r, err := db.Create("R", sch, storage.External)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, 1, 2, 3} {
		if err := r.Insert(schema.Row(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Create("S", sch, storage.External); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("_mv", sch, storage.Internal); err != nil {
		t.Fatal(err)
	}
	return db, sch
}

func TestInsertDeleteConstructors(t *testing.T) {
	db, _ := setup(t)
	if err := Insert("R", bag.Of(schema.Row(9))).Apply(db); err != nil {
		t.Fatal(err)
	}
	b, _ := db.Bag("R")
	if b.Count(schema.Row(9)) != 1 {
		t.Fatal("Insert txn failed")
	}
	if err := Delete("R", bag.Of(schema.Row(9))).Apply(db); err != nil {
		t.Fatal(err)
	}
	b, _ = db.Bag("R")
	if b.Contains(schema.Row(9)) {
		t.Fatal("Delete txn failed")
	}
}

func TestApplySimpleSemantics(t *testing.T) {
	db, _ := setup(t)
	// Delete one copy of 1 and insert a 4, simultaneously.
	tx := Txn{"R": {Delete: bag.Of(schema.Row(1)), Insert: bag.Of(schema.Row(4))}}
	if err := tx.Apply(db); err != nil {
		t.Fatal(err)
	}
	b, _ := db.Bag("R")
	want := bag.Of(schema.Row(1), schema.Row(2), schema.Row(3), schema.Row(4))
	if !b.Equal(want) {
		t.Fatalf("apply wrong: %v", b)
	}
	// Deleting more copies than exist clamps (monus semantics).
	tx = Txn{"R": {Delete: bag.Of(schema.Row(1), schema.Row(1), schema.Row(1))}}
	if err := tx.Apply(db); err != nil {
		t.Fatal(err)
	}
	b, _ = db.Bag("R")
	if b.Contains(schema.Row(1)) {
		t.Fatal("clamped delete wrong")
	}
}

func TestApplyValidation(t *testing.T) {
	db, _ := setup(t)
	bad := Txn{"R": {Insert: bag.Of(schema.Row("string"))}}
	if err := bad.Apply(db); err == nil {
		t.Fatal("type-violating insert accepted")
	}
	// Nothing was applied.
	b, _ := db.Bag("R")
	if b.Len() != 4 {
		t.Fatal("partial application after validation failure")
	}
	missing := Txn{"ghost": {Insert: bag.Of(schema.Row(1))}}
	if err := missing.Apply(db); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestMerge(t *testing.T) {
	a := Insert("R", bag.Of(schema.Row(1)))
	b := Txn{"R": {Delete: bag.Of(schema.Row(2))}, "S": {Insert: bag.Of(schema.Row(3))}}
	m := a.Merge(b)
	u := m["R"]
	if u.Insert.Count(schema.Row(1)) != 1 || u.Delete.Count(schema.Row(2)) != 1 {
		t.Fatalf("merge R wrong: %+v", u)
	}
	if m["S"].Insert.Count(schema.Row(3)) != 1 {
		t.Fatal("merge S wrong")
	}
	// Inputs unchanged.
	if a["R"].Delete != nil {
		t.Fatal("merge mutated input")
	}
}

func TestNormalizeWeakMinimality(t *testing.T) {
	db, _ := setup(t) // R = {1,1,2,3}
	tx := Txn{"R": {Delete: bag.Of(schema.Row(1), schema.Row(1), schema.Row(1), schema.Row(5))}}
	n, err := tx.Normalize(db)
	if err != nil {
		t.Fatal(err)
	}
	d := n["R"].Delete
	// Capped to the 2 existing copies of 1; the non-existent 5 vanishes.
	if d.Count(schema.Row(1)) != 2 || d.Contains(schema.Row(5)) {
		t.Fatalf("normalize wrong: %v", d)
	}
	rBag, _ := db.Bag("R")
	if !d.SubBagOf(rBag) {
		t.Fatal("normalized delete not a subbag of R")
	}
	// Same net effect.
	db2 := db.Snapshot()
	if err := tx.Apply(db); err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(db2); err != nil {
		t.Fatal(err)
	}
	b1, _ := db.Bag("R")
	b2, _ := db2.Bag("R")
	if !b1.Equal(b2) {
		t.Fatal("normalization changed the transaction's effect")
	}
	if _, err := (Txn{"ghost": {}}).Normalize(db); err == nil {
		t.Fatal("normalize of unknown table should fail")
	}
}

func TestTouchesInternal(t *testing.T) {
	db, _ := setup(t)
	user := Insert("R", bag.Of(schema.Row(9)))
	if name, bad := user.TouchesInternal(db); bad {
		t.Fatalf("external write misflagged: %s", name)
	}
	evil := Insert("_mv", bag.Of(schema.Row(9)))
	if name, bad := evil.TouchesInternal(db); !bad || name != "_mv" {
		t.Fatal("internal write not flagged")
	}
}

func TestApplyAssignmentsSimultaneous(t *testing.T) {
	db, sch := setup(t)
	sT, _ := db.Table("S")
	if err := sT.Insert(schema.Row(100), 1); err != nil {
		t.Fatal(err)
	}
	// Swap R and S simultaneously: {R := S, S := R}. Sequential
	// application would make both equal; simultaneous must swap.
	r := algebra.NewBase("R", sch)
	s := algebra.NewBase("S", sch)
	err := ApplyAssignments(db, []Assignment{
		{Table: "R", Expr: s},
		{Table: "S", Expr: r},
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := db.Bag("R")
	sb, _ := db.Bag("S")
	if !rb.Equal(bag.Of(schema.Row(100))) {
		t.Fatalf("R after swap = %v", rb)
	}
	if sb.Len() != 4 {
		t.Fatalf("S after swap = %v", sb)
	}
}

func TestApplyAssignmentsErrors(t *testing.T) {
	db, sch := setup(t)
	if err := ApplyAssignments(db, []Assignment{{Table: "ghost", Expr: algebra.NewBase("R", sch)}}); err == nil {
		t.Fatal("assignment to unknown table accepted")
	}
	if err := ApplyAssignments(db, []Assignment{{Table: "R", Expr: algebra.NewBase("ghost", sch)}}); err == nil {
		t.Fatal("assignment reading unknown table accepted")
	}
}
