// Package txn implements the paper's transaction model (Section 2.2):
// abstract transactions are simultaneous assignments {R_i := Q_i}; the
// maintenance algorithms only require simple transactions
// {R_i := (R_i ∸ ∇R_i) ⊎ △R_i}. The package also provides the
// weak-minimality normalization of Section 4.1 and a lock manager used
// to measure view downtime.
package txn

import (
	"fmt"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
)

// Update is one table's change in a simple transaction: the bag of
// deleted tuples (∇R) and the bag of inserted tuples (△R).
type Update struct {
	Delete *bag.Bag
	Insert *bag.Bag
}

// normalized returns the Update with nil bags replaced by empties.
func (u Update) normalized() Update {
	if u.Delete == nil {
		u.Delete = bag.New()
	}
	if u.Insert == nil {
		u.Insert = bag.New()
	}
	return u
}

// Txn is a simple transaction: per-table deletes and inserts applied
// simultaneously. The zero value (nil map) is the empty transaction.
type Txn map[string]Update

// Insert builds a transaction inserting the given tuples into one table.
func Insert(table string, rows *bag.Bag) Txn {
	return Txn{table: Update{Insert: rows}}
}

// Delete builds a transaction deleting the given tuples from one table.
func Delete(table string, rows *bag.Bag) Txn {
	return Txn{table: Update{Delete: rows}}
}

// Merge folds o into t (t and o are applied "simultaneously": deletes
// and inserts are unioned per table). It returns the combined txn
// without mutating either input.
func (t Txn) Merge(o Txn) Txn {
	out := Txn{}
	for name, u := range t {
		out[name] = u.normalized()
	}
	for name, u := range o {
		u = u.normalized()
		if have, ok := out[name]; ok {
			out[name] = Update{
				Delete: bag.UnionAll(have.Delete, u.Delete),
				Insert: bag.UnionAll(have.Insert, u.Insert),
			}
		} else {
			out[name] = u
		}
	}
	return out
}

// Normalize returns the weakly minimal equivalent of t in the current
// state of db: effective deletes are capped at current multiplicities
// (∇R := ∇R min R), which leaves (R ∸ ∇R) ⊎ △R unchanged but
// establishes the precondition ∇R ⊑ R required by the differential
// algorithms (Section 4.1).
func (t Txn) Normalize(db *storage.Database) (Txn, error) {
	out := Txn{}
	for name, u := range t {
		tb, err := db.Table(name)
		if err != nil {
			return nil, fmt.Errorf("txn: normalize: %w", err)
		}
		u = u.normalized()
		out[name] = Update{
			Delete: bag.Min(u.Delete, tb.Data()),
			Insert: u.Insert.Clone(),
		}
	}
	return out, nil
}

// Apply installs the transaction into db with simultaneous semantics:
// for each table, R := (R ∸ ∇R) ⊎ △R computed from the pre-state. Since
// each table's right-hand side reads only that table, per-table
// application is equivalent.
func (t Txn) Apply(db *storage.Database) error {
	// Validate everything before mutating anything.
	for name, u := range t {
		tb, err := db.Table(name)
		if err != nil {
			return fmt.Errorf("txn: apply: %w", err)
		}
		u = u.normalized()
		var verr error
		u.Insert.Each(func(tu schema.Tuple, _ int) {
			if verr == nil {
				verr = tb.Schema().Validate(tu)
			}
		})
		if verr != nil {
			return fmt.Errorf("txn: apply to %s: %w", name, verr)
		}
	}
	for name, u := range t {
		tb, _ := db.Table(name)
		u = u.normalized()
		next := bag.UnionAll(bag.Monus(tb.Data(), u.Delete), u.Insert)
		tb.Replace(next)
	}
	return nil
}

// TouchesInternal reports whether the transaction writes any internal
// table of db — user transactions must not (Section 3.1).
func (t Txn) TouchesInternal(db *storage.Database) (string, bool) {
	for name := range t {
		if tb, err := db.Table(name); err == nil && tb.Kind() == storage.Internal {
			return name, true
		}
	}
	return "", false
}

// Assignment is one clause of an abstract transaction {Table := Expr}.
type Assignment struct {
	Table string
	Expr  algebra.Expr
}

// ApplyAssignments executes an abstract transaction {T_i := Q_i} with
// simultaneous semantics: every right-hand side is evaluated against the
// pre-state, then all results are installed. This is the T1 + T2
// composition of Section 5.1: no assignment sees another's effect.
func ApplyAssignments(db *storage.Database, assigns []Assignment) error {
	// One evaluator for the whole transaction: the right-hand sides of a
	// makesafe bundle share large subexpressions, and all of them read
	// the same pre-state.
	ev := algebra.NewEvaluator(db)
	results := make([]*bag.Bag, len(assigns))
	for i, a := range assigns {
		if !db.Has(a.Table) {
			return fmt.Errorf("txn: assignment to unknown table %q", a.Table)
		}
		b, err := ev.Eval(a.Expr)
		if err != nil {
			return fmt.Errorf("txn: assignment to %s: %w", a.Table, err)
		}
		results[i] = b
	}
	for i, a := range assigns {
		tb, _ := db.Table(a.Table)
		tb.Replace(results[i])
	}
	return nil
}
