package txn

import (
	"sync"
	"testing"
	"time"
)

// TestLockManagerOppositeOrderStress drives goroutines that acquire
// overlapping table sets declared in OPPOSITE orders. Because the
// manager sorts before acquiring (the deadlock-freedom invariant
// dvmlint's lock-discipline check protects at literal call sites),
// the schedule must complete — a deadlock trips the watchdog — and
// the shared counter below must be race-free under -race: writers on
// overlapping sets are mutually exclusive, and readers observe them
// only through the read locks.
func TestLockManagerOppositeOrderStress(t *testing.T) {
	lm := NewLockManager()
	const iters = 400

	// Shared state touched only under locks covering table "b", which
	// every set below includes: any unsorted acquisition that deadlocks
	// hangs the test; any lock hole is a -race report.
	counter := 0

	writerSets := [][]string{
		{"a", "b", "c"},
		{"c", "b", "a"}, // reverse declaration order
		{"b", "a"},
		{"c", "b"},
	}
	var wg sync.WaitGroup
	for _, set := range writerSets {
		wg.Add(1)
		go func(tables []string) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := lm.WithWrite(tables, func() error {
					counter++
					return nil
				})
				if err != nil {
					t.Errorf("WithWrite(%v): %v", tables, err)
					return
				}
			}
		}(set)
	}
	readerSets := [][]string{
		{"b", "a"},
		{"c", "b", "a"},
	}
	for _, set := range readerSets {
		wg.Add(1)
		go func(tables []string) {
			defer wg.Done()
			last := -1
			for i := 0; i < iters; i++ {
				err := lm.WithRead(tables, func() error {
					if counter < last {
						t.Errorf("counter went backwards: %d < %d", counter, last)
					}
					last = counter
					return nil
				})
				if err != nil {
					t.Errorf("WithRead(%v): %v", tables, err)
					return
				}
			}
		}(set)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: opposite-order acquisitions did not complete (sorted acquisition broken?)")
	}

	if want := len(writerSets) * iters; counter != want {
		t.Fatalf("counter = %d, want %d (lost updates imply a lock hole)", counter, want)
	}
}
