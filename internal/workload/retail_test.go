package workload

import (
	"testing"

	"dvm/internal/algebra"
	"dvm/internal/core"
	"dvm/internal/schema"
	"dvm/internal/storage"
)

func smallConfig() RetailConfig {
	return RetailConfig{
		Customers:    50,
		HighFraction: 0.3,
		InitialSales: 200,
		Items:        20,
		ZipfS:        1.2,
		Seed:         7,
	}
}

func TestSetupLoadsTables(t *testing.T) {
	db := storage.NewDatabase()
	r := NewRetail(smallConfig())
	if err := r.Setup(db); err != nil {
		t.Fatal(err)
	}
	sales, err := db.Bag("sales")
	if err != nil {
		t.Fatal(err)
	}
	if sales.Len() != 200 {
		t.Fatalf("sales = %d rows", sales.Len())
	}
	cust, _ := db.Bag("customer")
	if cust.Len() != 50 {
		t.Fatalf("customer = %d rows", cust.Len())
	}
	// Roughly the configured fraction of High customers.
	high := 0
	cust.Each(func(tu schema.Tuple, n int) {
		if tu[3].AsString() == "High" {
			high += n
		}
	})
	if high < 10 || high > 20 {
		t.Fatalf("high customers = %d, want ~15", high)
	}
	if r.LiveSales() != 200 {
		t.Fatalf("LiveSales = %d", r.LiveSales())
	}
	// Double setup fails (tables exist).
	if err := r.Setup(db); err == nil {
		t.Fatal("second setup should fail")
	}
}

func TestViewDefEvaluates(t *testing.T) {
	db := storage.NewDatabase()
	r := NewRetail(smallConfig())
	if err := r.Setup(db); err != nil {
		t.Fatal(err)
	}
	def, err := r.ViewDef()
	if err != nil {
		t.Fatal(err)
	}
	b, err := algebra.Eval(def, db)
	if err != nil {
		t.Fatal(err)
	}
	if b.Empty() {
		t.Fatal("view should be non-empty for this workload")
	}
	// Every result row is a High customer with nonzero quantity.
	ok := true
	b.Each(func(tu schema.Tuple, _ int) {
		if tu[2].AsString() != "High" || tu[4].AsInt() == 0 {
			ok = false
		}
	})
	if !ok {
		t.Fatal("view contains rows violating its predicate")
	}
	// Filtered variant restricts further.
	fdef, err := r.FilteredViewDef(algebra.Lt(algebra.A("s.itemNo"), algebra.C(5)))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := algebra.Eval(fdef, db)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Len() > b.Len() {
		t.Fatal("filtered view larger than unfiltered")
	}
}

func TestBatchesMaintainViews(t *testing.T) {
	db := storage.NewDatabase()
	r := NewRetail(smallConfig())
	if err := r.Setup(db); err != nil {
		t.Fatal(err)
	}
	def, err := r.ViewDef()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(db)
	if _, err := m.DefineView("hv", def, core.Combined); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Execute(r.SalesBatch(10)); err != nil {
			t.Fatal(err)
		}
		if err := m.Execute(r.MixedBatch(5, 5)); err != nil {
			t.Fatal(err)
		}
		sc, err := r.ScoreChange(db)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Execute(sc); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariant("hv"); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if err := m.Refresh("hv"); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckConsistent("hv"); err != nil {
		t.Fatal(err)
	}
}

func TestMixedBatchShrinksLiveSet(t *testing.T) {
	r := NewRetail(smallConfig())
	db := storage.NewDatabase()
	if err := r.Setup(db); err != nil {
		t.Fatal(err)
	}
	before := r.LiveSales()
	tx := r.MixedBatch(0, 50)
	if r.LiveSales() != before-50 {
		t.Fatalf("LiveSales = %d, want %d", r.LiveSales(), before-50)
	}
	if tx["sales"].Delete.Len() != 50 {
		t.Fatalf("delete bag = %d", tx["sales"].Delete.Len())
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	cfg := smallConfig()
	cfg.ZipfS = 1.5
	r := NewRetail(cfg)
	counts := map[int64]int{}
	for i := 0; i < 2000; i++ {
		counts[r.pickCustomer()]++
	}
	if counts[0] < 200 {
		t.Fatalf("customer 0 picked %d/2000 times; Zipf skew missing", counts[0])
	}
	// Unskewed config draws uniformly.
	cfg.ZipfS = 0
	u := NewRetail(cfg)
	counts = map[int64]int{}
	for i := 0; i < 2000; i++ {
		counts[u.pickCustomer()]++
	}
	if counts[0] > 200 {
		t.Fatalf("uniform pick too skewed: %d", counts[0])
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := NewRetail(smallConfig())
	b := NewRetail(smallConfig())
	ta := a.SalesBatch(20)
	tb := b.SalesBatch(20)
	if !ta["sales"].Insert.Equal(tb["sales"].Insert) {
		t.Fatal("same seed produced different batches")
	}
}
