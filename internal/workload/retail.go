// Package workload generates synthetic workloads for the experiments:
// the retail point-of-sale scenario of Example 1.1 (sales/customer
// tables, continuous inserts, a join view over highly-valued customers)
// with Zipf-skewed customer activity, plus mixed insert/delete batches.
//
// The paper's original application ran against a proprietary retail
// feed; this generator substitutes a parameterized synthetic equivalent
// (see DESIGN.md §2) — the maintenance algorithms only observe update
// rates, table sizes, and selectivities, all of which are configurable.
package workload

import (
	"fmt"
	"math/rand"

	"dvm/internal/algebra"
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// RetailConfig parameterizes the retail generator.
type RetailConfig struct {
	Customers    int     // number of customers
	HighFraction float64 // fraction of customers with score "High"
	InitialSales int     // sales rows loaded at setup
	Items        int     // item-number domain
	ZipfS        float64 // customer-choice skew (>1; 0 disables skew)
	Seed         int64
}

// DefaultRetailConfig returns a laptop-scale configuration.
func DefaultRetailConfig() RetailConfig {
	return RetailConfig{
		Customers:    1000,
		HighFraction: 0.2,
		InitialSales: 5000,
		Items:        500,
		ZipfS:        1.2,
		Seed:         1,
	}
}

// Retail drives the Example 1.1 workload.
type Retail struct {
	cfg      RetailConfig
	rng      *rand.Rand
	zipf     *rand.Zipf
	salesSch *schema.Schema
	custSch  *schema.Schema
	live     []schema.Tuple // sales currently in the table, for deletions

	// Basket-mode state: per-customer live purchases (for same-customer
	// returns) and each customer's current score (for db-independent
	// score flips). scores is populated by Setup.
	liveByCust map[int64][]schema.Tuple
	scores     []string
}

// NewRetail builds a generator.
func NewRetail(cfg RetailConfig) *Retail {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var z *rand.Zipf
	if cfg.ZipfS > 1 {
		z = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Customers-1))
	}
	return &Retail{
		cfg:  cfg,
		rng:  rng,
		zipf: z,
		salesSch: schema.NewSchema(
			schema.Col("s.custId", schema.TInt),
			schema.Col("s.itemNo", schema.TInt),
			schema.Col("s.quantity", schema.TInt),
			schema.Col("s.salesPrice", schema.TFloat),
		),
		custSch: schema.NewSchema(
			schema.Col("c.custId", schema.TInt),
			schema.Col("c.name", schema.TString),
			schema.Col("c.address", schema.TString),
			schema.Col("c.score", schema.TString),
		),
	}
}

// SalesSchema returns the sales table schema.
func (r *Retail) SalesSchema() *schema.Schema { return r.salesSch }

// CustomerSchema returns the customer table schema.
func (r *Retail) CustomerSchema() *schema.Schema { return r.custSch }

// Setup creates and loads the sales and customer tables in db.
func (r *Retail) Setup(db *storage.Database) error {
	sales, err := db.Create("sales", r.salesSch, storage.External)
	if err != nil {
		return err
	}
	cust, err := db.Create("customer", r.custSch, storage.External)
	if err != nil {
		return err
	}
	r.scores = make([]string, r.cfg.Customers)
	for i := 0; i < r.cfg.Customers; i++ {
		// The lowest customer ids are the high-value ones; combined with
		// Zipf skew (which favors low ids) this mimics the paper's
		// motivating workload where hot customers drive the view.
		score := "Low"
		if float64(i) < r.cfg.HighFraction*float64(r.cfg.Customers) {
			score = "High"
		}
		r.scores[i] = score
		row := schema.Row(i, fmt.Sprintf("cust-%d", i), fmt.Sprintf("addr-%d", i), score)
		if err := cust.Insert(row, 1); err != nil {
			return err
		}
	}
	for i := 0; i < r.cfg.InitialSales; i++ {
		row := r.randomSale()
		if err := sales.Insert(row, 1); err != nil {
			return err
		}
		r.live = append(r.live, row)
	}
	return nil
}

// pickCustomer draws a customer id, Zipf-skewed when configured.
func (r *Retail) pickCustomer() int64 {
	if r.zipf != nil {
		return int64(r.zipf.Uint64())
	}
	return int64(r.rng.Intn(r.cfg.Customers))
}

func (r *Retail) randomSale() schema.Tuple {
	qty := 1 + r.rng.Intn(5)
	if r.rng.Intn(50) == 0 {
		qty = 0 // occasionally a zero-quantity row, filtered by the view
	}
	return schema.Row(
		r.pickCustomer(),
		int64(r.rng.Intn(r.cfg.Items)),
		int64(qty),
		float64(1+r.rng.Intn(10000))/100,
	)
}

// ViewDef returns the Example 1.1 view over high-value customers:
//
//	SELECT c.custId, c.name, c.score, s.itemNo, s.quantity
//	FROM customer c, sales s
//	WHERE c.custId = s.custId AND s.quantity != 0 AND c.score = 'High'
func (r *Retail) ViewDef() (algebra.Expr, error) {
	return r.FilteredViewDef(algebra.True)
}

// FilteredViewDef is ViewDef with an extra conjunct, used to define many
// distinct views over the same tables (e.g. per item range).
func (r *Retail) FilteredViewDef(extra algebra.Predicate) (algebra.Expr, error) {
	c := algebra.NewBase("customer", r.custSch)
	s := algebra.NewBase("sales", r.salesSch)
	join, err := algebra.JoinOn(c, s, algebra.AndOf(
		algebra.Eq(algebra.A("c.custId"), algebra.A("s.custId")),
		algebra.Neq(algebra.A("s.quantity"), algebra.C(0)),
		algebra.Eq(algebra.A("c.score"), algebra.C("High")),
		extra,
	))
	if err != nil {
		return nil, err
	}
	return algebra.NewProject(
		[]string{"c.custId", "c.name", "c.score", "s.itemNo", "s.quantity"},
		[]string{"custId", "name", "score", "itemNo", "quantity"},
		join,
	)
}

// SalesBatch returns a transaction inserting n random sales.
func (r *Retail) SalesBatch(n int) txn.Txn {
	ins := bag.New()
	for i := 0; i < n; i++ {
		row := r.randomSale()
		ins.Add(row, 1)
		r.live = append(r.live, row)
	}
	return txn.Insert("sales", ins)
}

// MixedBatch returns a transaction inserting nIns new sales and deleting
// nDel previously inserted ones (point-of-sale corrections/returns).
func (r *Retail) MixedBatch(nIns, nDel int) txn.Txn {
	ins := bag.New()
	for i := 0; i < nIns; i++ {
		row := r.randomSale()
		ins.Add(row, 1)
		r.live = append(r.live, row)
	}
	del := bag.New()
	for i := 0; i < nDel && len(r.live) > 0; i++ {
		j := r.rng.Intn(len(r.live))
		del.Add(r.live[j], 1)
		r.live[j] = r.live[len(r.live)-1]
		r.live = r.live[:len(r.live)-1]
	}
	return txn.Txn{"sales": txn.Update{Delete: del, Insert: ins}}
}

// ScoreChange returns a transaction flipping one customer's score —
// a multi-attribute update expressed as delete+insert on customer.
func (r *Retail) ScoreChange(db *storage.Database) (txn.Txn, error) {
	cust, err := db.Bag("customer")
	if err != nil {
		return nil, err
	}
	var victim schema.Tuple
	pick := r.rng.Intn(cust.Distinct())
	i := 0
	cust.Each(func(tu schema.Tuple, _ int) {
		if i == pick {
			victim = tu.Clone()
		}
		i++
	})
	if victim == nil {
		return nil, fmt.Errorf("workload: no customers to update")
	}
	flipped := victim.Clone()
	if flipped[3].AsString() == "High" {
		flipped[3] = schema.Str("Low")
	} else {
		flipped[3] = schema.Str("High")
	}
	return txn.Txn{"customer": txn.Update{
		Delete: bag.Of(victim),
		Insert: bag.Of(flipped),
	}}, nil
}

// LiveSales reports how many sales rows the generator believes are live.
func (r *Retail) LiveSales() int { return len(r.live) }

// saleFor builds a random sale row for a fixed customer.
func (r *Retail) saleFor(cust int64) schema.Tuple {
	qty := 1 + r.rng.Intn(5)
	if r.rng.Intn(50) == 0 {
		qty = 0 // occasionally a zero-quantity row, filtered by the view
	}
	return schema.Row(
		cust,
		int64(r.rng.Intn(r.cfg.Items)),
		int64(qty),
		float64(1+r.rng.Intn(10000))/100,
	)
}

// Basket returns one point-of-sale transaction in the Example 1.1
// sense: a single Zipf-picked customer buys minItems..maxItems items,
// and with probability returnProb also returns one earlier purchase of
// THEIR OWN (corrections stay customer-local, like a real register).
// This single-customer locality is what makes sharded maintenance
// cheap: a basket's log entries land in exactly one shard when the
// shard key is the customer id.
//
// Basket tracks its own per-customer live set; do not interleave it
// with MixedBatch deletions in one run (the two trackers would
// desynchronize).
func (r *Retail) Basket(minItems, maxItems int, returnProb float64) txn.Txn {
	if r.liveByCust == nil {
		r.liveByCust = make(map[int64][]schema.Tuple)
	}
	cust := r.pickCustomer()
	n := minItems
	if maxItems > minItems {
		n += r.rng.Intn(maxItems - minItems + 1)
	}
	ins := bag.New()
	for i := 0; i < n; i++ {
		row := r.saleFor(cust)
		ins.Add(row, 1)
		r.liveByCust[cust] = append(r.liveByCust[cust], row)
	}
	u := txn.Update{Insert: ins}
	if returnProb > 0 && r.rng.Float64() < returnProb {
		if prev := r.liveByCust[cust]; len(prev) > 0 {
			j := r.rng.Intn(len(prev))
			u.Delete = bag.Of(prev[j])
			prev[j] = prev[len(prev)-1]
			r.liveByCust[cust] = prev[:len(prev)-1]
		}
	}
	return txn.Txn{"sales": u}
}

// ScoreFlip returns a transaction flipping one Zipf-picked customer's
// score, built from the generator's own tracked state (unlike
// ScoreChange it never reads a database, so the same generator drives
// identical streams into any number of engines). Requires Setup.
func (r *Retail) ScoreFlip() (txn.Txn, error) {
	if len(r.scores) == 0 {
		return nil, fmt.Errorf("workload: ScoreFlip requires Setup")
	}
	i := r.pickCustomer()
	oldScore := r.scores[i]
	newScore := "High"
	if oldScore == "High" {
		newScore = "Low"
	}
	r.scores[i] = newScore
	name, addr := fmt.Sprintf("cust-%d", i), fmt.Sprintf("addr-%d", i)
	return txn.Txn{"customer": txn.Update{
		Delete: bag.Of(schema.Row(i, name, addr, oldScore)),
		Insert: bag.Of(schema.Row(i, name, addr, newScore)),
	}}, nil
}
