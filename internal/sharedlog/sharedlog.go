// Package sharedlog answers the paper's Section 7 open problem: "How
// should log information be stored so that the work done by
// makesafe_BL[T] is minimal, and independent of the number of views
// supported?"
//
// Instead of one (▼R, ▲R) table pair per view — which makes every
// transaction pay one log merge per view — each base table gets a single
// append-only log of change batches, indexed by LSN. makesafe appends
// each transaction's (∇R, △R) exactly once, in O(|change|), no matter
// how many views exist. Every view keeps a cursor; at propagate/refresh
// time the view merges its window [cursor, head) into the weakly minimal
// (▼R, ▲R) pair the Figure 3 algorithms expect, using the same
// composition as makesafe_BL (Lemma 3), so all downstream algebra is
// unchanged. Entries below the minimum cursor are truncated.
package sharedlog

import (
	"fmt"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// Entry is one transaction's change batch for a table: the tuples it
// deleted and inserted, already normalized to weak minimality against
// the table state it applied to.
type Entry struct {
	Del *bag.Bag
	Ins *bag.Bag
}

// Log is the append-only change log of one base table. LSNs start at 0
// and never repeat; Tail ≤ lsn < Head addresses retained entries.
type Log struct {
	table   string
	sch     *schema.Schema
	head    int64 // next LSN to assign
	tail    int64 // first retained LSN
	entries []Entry
}

// New creates an empty log for a table.
func New(table string, sch *schema.Schema) *Log {
	return &Log{table: table, sch: sch}
}

// Table returns the table name the log records.
func (l *Log) Table() string { return l.table }

// Schema returns the logged table's schema.
func (l *Log) Schema() *schema.Schema { return l.sch }

// Head returns the next LSN to be assigned (one past the newest entry).
func (l *Log) Head() int64 { return l.head }

// Tail returns the oldest retained LSN.
func (l *Log) Tail() int64 { return l.tail }

// Len returns the number of retained entries.
func (l *Log) Len() int { return len(l.entries) }

// TupleVolume returns the total tuple count across retained entries —
// the storage footprint the truncation policy manages.
func (l *Log) TupleVolume() int {
	n := 0
	for _, e := range l.entries {
		n += e.Del.Len() + e.Ins.Len()
	}
	return n
}

// VolumeSince returns the tuple volume of retained entries with
// LSN >= from (clamped to the retained window) — one view's pending
// backlog when from is that view's cursor.
func (l *Log) VolumeSince(from int64) int {
	if from < l.tail {
		from = l.tail
	}
	n := 0
	for i := from - l.tail; i >= 0 && i < int64(len(l.entries)); i++ {
		e := l.entries[i]
		n += e.Del.Len() + e.Ins.Len()
	}
	return n
}

// Append records one transaction's change batch and returns its LSN.
// The log takes ownership of the bags.
func (l *Log) Append(del, ins *bag.Bag) int64 {
	if del == nil {
		del = bag.New()
	}
	if ins == nil {
		ins = bag.New()
	}
	lsn := l.head
	l.entries = append(l.entries, Entry{Del: del, Ins: ins})
	l.head++
	return lsn
}

// Merge folds the window [from, to) into a single weakly minimal
// (▼R, ▲R) pair using the makesafe_BL composition of Figure 3:
//
//	▼ := ▼ ⊎ (∇ ∸ ▲)
//	▲ := (▲ ∸ ∇) ⊎ △
//
// applied entry by entry in LSN order — exactly the value the per-view
// log tables would hold had every entry been merged at transaction time
// (Lemma 3 gives associativity of this composition).
func (l *Log) Merge(from, to int64) (del, ins *bag.Bag, err error) {
	if from < l.tail || to > l.head || from > to {
		return nil, nil, fmt.Errorf("sharedlog: window [%d,%d) outside retained [%d,%d) for %s",
			from, to, l.tail, l.head, l.table)
	}
	del, ins = bag.New(), bag.New()
	for lsn := from; lsn < to; lsn++ {
		e := l.entries[lsn-l.tail]
		x := bag.Monus(e.Del, ins) // ∇ ∸ ▲
		e.Del.Each(func(t schema.Tuple, n int) {
			ins.Remove(t, n) // ▲ ∸= ∇
		})
		ins.AddBag(e.Ins) // ⊎ △
		del.AddBag(x)     // ▼ ⊎= x
	}
	return del, ins, nil
}

// TruncateTo discards entries with LSN < lsn. Truncating past Head or
// before Tail is clipped to the valid range.
func (l *Log) TruncateTo(lsn int64) {
	if lsn > l.head {
		lsn = l.head
	}
	if lsn <= l.tail {
		return
	}
	drop := lsn - l.tail
	// Copy the remainder so the backing array of dropped entries can be
	// collected.
	rest := make([]Entry, len(l.entries)-int(drop))
	copy(rest, l.entries[drop:])
	l.entries = rest
	l.tail = lsn
}
