package sharedlog

import (
	"math/rand"
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

func sch() *schema.Schema {
	return schema.NewSchema(schema.Col("x", schema.TInt))
}

func rows(vs ...int) *bag.Bag {
	b := bag.New()
	for _, v := range vs {
		b.Add(schema.Row(v), 1)
	}
	return b
}

func TestAppendHeadTailLen(t *testing.T) {
	l := New("R", sch())
	if l.Table() != "R" || l.Schema().Len() != 1 {
		t.Fatal("metadata wrong")
	}
	if l.Head() != 0 || l.Tail() != 0 || l.Len() != 0 {
		t.Fatal("fresh log not empty")
	}
	if lsn := l.Append(rows(1), rows(2)); lsn != 0 {
		t.Fatalf("first lsn = %d", lsn)
	}
	if lsn := l.Append(nil, nil); lsn != 1 {
		t.Fatalf("second lsn = %d", lsn)
	}
	if l.Head() != 2 || l.Len() != 2 {
		t.Fatalf("head=%d len=%d", l.Head(), l.Len())
	}
	if l.TupleVolume() != 2 {
		t.Fatalf("volume = %d", l.TupleVolume())
	}
}

func TestMergeComposition(t *testing.T) {
	// Insert x then delete x: the merged window is empty (net change).
	l := New("R", sch())
	l.Append(bag.New(), rows(7))
	l.Append(rows(7), bag.New())
	del, ins, err := l.Merge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Empty() || !ins.Empty() {
		t.Fatalf("insert-then-delete should cancel: ▼=%v ▲=%v", del, ins)
	}
	// Delete y then insert y: both sides retain y (the paper's weakly
	// minimal form keeps the pair; strong minimality would cancel it).
	l2 := New("R", sch())
	l2.Append(rows(9), bag.New())
	l2.Append(bag.New(), rows(9))
	del, ins, err = l2.Merge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if del.Count(schema.Row(9)) != 1 || ins.Count(schema.Row(9)) != 1 {
		t.Fatalf("delete-then-insert: ▼=%v ▲=%v", del, ins)
	}
}

func TestMergeEmptyWindowAndErrors(t *testing.T) {
	l := New("R", sch())
	l.Append(rows(1), rows(2))
	del, ins, err := l.Merge(1, 1)
	if err != nil || !del.Empty() || !ins.Empty() {
		t.Fatal("empty window should merge to (∅,∅)")
	}
	if _, _, err := l.Merge(0, 5); err == nil {
		t.Fatal("window past head accepted")
	}
	if _, _, err := l.Merge(1, 0); err == nil {
		t.Fatal("inverted window accepted")
	}
	l.TruncateTo(1)
	if _, _, err := l.Merge(0, 1); err == nil {
		t.Fatal("truncated window accepted")
	}
}

func TestTruncate(t *testing.T) {
	l := New("R", sch())
	for i := 0; i < 5; i++ {
		l.Append(rows(i), rows(i+10))
	}
	l.TruncateTo(3)
	if l.Tail() != 3 || l.Len() != 2 {
		t.Fatalf("tail=%d len=%d", l.Tail(), l.Len())
	}
	// Remaining entries must still merge correctly.
	del, ins, err := l.Merge(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if del.Count(schema.Row(3)) != 1 || del.Count(schema.Row(4)) != 1 {
		t.Fatalf("merge after truncate wrong: %v", del)
	}
	_ = ins
	// Clipping behaviour.
	l.TruncateTo(0) // below tail: no-op
	if l.Tail() != 3 {
		t.Fatal("backward truncate moved tail")
	}
	l.TruncateTo(99) // past head: clipped
	if l.Tail() != 5 || l.Len() != 0 {
		t.Fatalf("clip failed: tail=%d len=%d", l.Tail(), l.Len())
	}
}

// TestMergeAssociativity checks Lemma 3 at the log level: merging the
// whole window equals merging two sub-windows and composing the results.
func TestMergeAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		l := New("R", sch())
		n := 2 + r.Intn(6)
		for i := 0; i < n; i++ {
			d, in := bag.New(), bag.New()
			for j, m := 0, r.Intn(3); j < m; j++ {
				d.Add(schema.Row(r.Intn(4)), 1+r.Intn(2))
			}
			for j, m := 0, r.Intn(3); j < m; j++ {
				in.Add(schema.Row(r.Intn(4)), 1+r.Intn(2))
			}
			l.Append(d, in)
		}
		mid := int64(r.Intn(n + 1))
		wholeDel, wholeIns, err := l.Merge(0, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		d1, i1, err := l.Merge(0, mid)
		if err != nil {
			t.Fatal(err)
		}
		d2, i2, err := l.Merge(mid, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		// Compose (d1,i1) then (d2,i2) with the same operator.
		x := bag.Monus(d2, i1)
		i := bag.UnionAll(bag.Monus(i1, d2), i2)
		d := bag.UnionAll(d1, x)
		if !d.Equal(wholeDel) || !i.Equal(wholeIns) {
			t.Fatalf("trial %d: window merge not associative:\nwhole ▼=%v ▲=%v\nsplit ▼=%v ▲=%v",
				trial, wholeDel, wholeIns, d, i)
		}
	}
}

// TestMergeMatchesReplay: applying the merged (▼,▲) to a starting state
// must equal replaying every entry — for entries generated the way the
// engine generates them (deletes normalized against the running state).
func TestMergeMatchesReplay(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		start := bag.New()
		for i, n := 0, r.Intn(8); i < n; i++ {
			start.Add(schema.Row(r.Intn(4)), 1+r.Intn(2))
		}
		cur := start.Clone()
		l := New("R", sch())
		for i, n := 0, 1+r.Intn(5); i < n; i++ {
			d, in := bag.New(), bag.New()
			for j, m := 0, r.Intn(3); j < m; j++ {
				d.Add(schema.Row(r.Intn(4)), 1+r.Intn(2))
			}
			for j, m := 0, r.Intn(3); j < m; j++ {
				in.Add(schema.Row(r.Intn(4)), 1+r.Intn(2))
			}
			d = bag.Min(d, cur) // weak minimality, as Normalize does
			cur = bag.UnionAll(bag.Monus(cur, d), in)
			l.Append(d, in)
		}
		del, ins, err := l.Merge(l.Tail(), l.Head())
		if err != nil {
			t.Fatal(err)
		}
		got := bag.UnionAll(bag.Monus(start, del), ins)
		if !got.Equal(cur) {
			t.Fatalf("trial %d: merged window does not reproduce replay:\nstart=%v replay=%v merged ▼=%v ▲=%v -> %v",
				trial, start, cur, del, ins, got)
		}
		// Weak minimality of the merged pair relative to the CURRENT
		// state: ▲ ⊑ cur.
		if !ins.SubBagOf(cur) {
			t.Fatalf("trial %d: merged ▲ ⋢ current state", trial)
		}
	}
}
