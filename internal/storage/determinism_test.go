package storage

import (
	"bytes"
	"fmt"
	"testing"

	"dvm/internal/schema"
)

// TestSaveDeterministic: the same database must serialize to identical
// bytes every time (EachOrdered in Save). With plain map iteration the
// tuple order — and so the snapshot bytes — varied run to run, which
// breaks snapshot diffing and content-addressed storage.
func TestSaveDeterministic(t *testing.T) {
	db := NewDatabase()
	sch := schema.NewSchema(schema.Col("a", schema.TInt), schema.Col("s", schema.TString))
	tb, err := db.Create("r", sch, External)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := tb.Insert(schema.Tuple{schema.Int(int64(i % 13)), schema.Str(fmt.Sprintf("v%d", i))}, 1+i%3); err != nil {
			t.Fatal(err)
		}
	}

	var first bytes.Buffer
	if err := db.Save(&first); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		var again bytes.Buffer
		if err := db.Save(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("snapshot bytes differ between Save calls (round %d)", round)
		}
	}

	// And a restored copy re-serializes to the same bytes.
	restored, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rt bytes.Buffer
	if err := restored.Save(&rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), rt.Bytes()) {
		t.Fatal("snapshot bytes not stable across Save/Load/Save")
	}
}
