package storage

import (
	"bytes"
	"math/rand"
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

func shardTestSchema() *schema.Schema {
	return schema.NewSchema(
		schema.Col("custId", schema.TInt),
		schema.Col("itemNo", schema.TInt),
	)
}

// TestCreateSharded: member tables exist in shard order, the spec is
// registered, and routed inserts keep Σ members == the source bag.
func TestCreateSharded(t *testing.T) {
	db := NewDatabase()
	sch := shardTestSchema()
	members, err := db.CreateSharded("__log_del_sales__v", sch, Internal, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("got %d members, want 4", len(members))
	}
	spec, ok := db.Sharded("__log_del_sales__v")
	if !ok || spec.N != 4 || spec.KeyCol != 0 {
		t.Fatalf("bad spec %+v ok=%v", spec, ok)
	}
	if db.Has("__log_del_sales__v") {
		t.Fatal("logical name must not be a real table")
	}

	rng := rand.New(rand.NewSource(3))
	src := bag.New()
	for i := 0; i < 300; i++ {
		src.Add(schema.Row(int64(rng.Intn(40)), int64(rng.Intn(20))), 1)
	}
	src.Each(func(tu schema.Tuple, n int) {
		members[bag.ShardOf(tu, spec.KeyCol, spec.N)].Data().Add(tu, n)
	})
	merged := bag.New()
	for _, m := range members {
		merged.AddBag(m.Data())
	}
	if !merged.Equal(src) {
		t.Fatal("Σ shard members != source bag")
	}

	if err := db.DropSharded("__log_del_sales__v"); err != nil {
		t.Fatal(err)
	}
	if db.Has(ShardName("__log_del_sales__v", 0)) {
		t.Fatal("DropSharded left member tables behind")
	}
}

// TestShardedSnapshotRoundTrip saves a database with shard groups and
// reloads it: specs, member contents, and the deterministic DVM2 byte
// stream must all survive.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	db := NewDatabase()
	sch := shardTestSchema()
	members, err := db.CreateSharded("__dmv_add_v", sch, Internal, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("sales", sch, External); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		tu := schema.Row(int64(rng.Intn(40)), int64(rng.Intn(20)))
		members[bag.ShardOf(tu, -1, 3)].Data().Add(tu, 1+rng.Intn(2))
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("DVM2")) {
		t.Fatalf("snapshot with shard groups must use DVM2, got %q", buf.Bytes()[:4])
	}

	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := got.Sharded("__dmv_add_v")
	if !ok || spec.N != 3 || spec.KeyCol != -1 {
		t.Fatalf("restored spec %+v ok=%v", spec, ok)
	}
	for i := 0; i < 3; i++ {
		want := members[i].Data()
		gt, err := got.Table(ShardName("__dmv_add_v", i))
		if err != nil {
			t.Fatal(err)
		}
		if !gt.Data().Equal(want) {
			t.Fatalf("shard %d contents differ after round trip", i)
		}
	}

	// Determinism: saving the restored database reproduces the bytes.
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("DVM2 snapshot is not byte-deterministic across a round trip")
	}

	// A snapshot without shard groups still writes DVM1.
	plain := NewDatabase()
	if _, err := plain.Create("t", sch, External); err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := plain.Save(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(pb.Bytes(), []byte("DVM1")) {
		t.Fatalf("plain snapshot must stay DVM1, got %q", pb.Bytes()[:4])
	}
	// A truncated spec block fails cleanly.
	if _, err := Load(bytes.NewReader(buf.Bytes()[:8])); err == nil {
		t.Fatal("truncated DVM2 snapshot must fail to load")
	}
}
