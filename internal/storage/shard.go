package storage

import (
	"fmt"
	"sort"

	"dvm/internal/schema"
)

// ShardSpec describes one sharded logical table: N member tables, each
// holding the tuples whose bag.ShardOf(key) equals its index. The
// members are ordinary tables named ShardName(logical, i); the spec is
// metadata the snapshot format persists so a restored database knows
// which tables form a shard group (and by what key they were split).
type ShardSpec struct {
	Logical string // logical table name (no backing table of its own)
	N       int    // shard count
	KeyCol  int    // hashed column index; -1 = full-tuple hash
}

// ShardName returns the member-table name of shard i of a logical
// table. The suffix is zero-padded so lexicographic member order
// equals shard-index order — the lock manager acquires sorted name
// sets, so sorted order IS shard order and per-shard lock acquisition
// stays canonical.
func ShardName(logical string, i int) string {
	return fmt.Sprintf("%s__s%02d", logical, i)
}

// CreateSharded creates the N member tables of a sharded logical table
// and registers its spec. The logical name itself gets no table; it
// only names the group.
func (db *Database) CreateSharded(logical string, sch *schema.Schema, kind Kind, n, keyCol int) ([]*Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("storage: sharded table %q needs n >= 1, got %d", logical, n)
	}
	if db.Has(logical) {
		return nil, fmt.Errorf("storage: sharded table %q collides with an existing table", logical)
	}
	if _, dup := db.shardSpecs[logical]; dup {
		return nil, fmt.Errorf("storage: sharded table %q already exists", logical)
	}
	members := make([]*Table, n)
	for i := 0; i < n; i++ {
		t, err := db.Create(ShardName(logical, i), sch, kind)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = db.Drop(ShardName(logical, j))
			}
			return nil, err
		}
		members[i] = t
	}
	if db.shardSpecs == nil {
		db.shardSpecs = make(map[string]ShardSpec)
	}
	db.shardSpecs[logical] = ShardSpec{Logical: logical, N: n, KeyCol: keyCol}
	return members, nil
}

// DropSharded drops a shard group's member tables and its spec.
func (db *Database) DropSharded(logical string) error {
	spec, ok := db.shardSpecs[logical]
	if !ok {
		return fmt.Errorf("storage: no sharded table %q", logical)
	}
	for i := 0; i < spec.N; i++ {
		_ = db.Drop(ShardName(logical, i))
	}
	delete(db.shardSpecs, logical)
	return nil
}

// Sharded returns the spec of a sharded logical table.
func (db *Database) Sharded(logical string) (ShardSpec, bool) {
	s, ok := db.shardSpecs[logical]
	return s, ok
}

// ShardSpecs returns every registered spec, sorted by logical name.
func (db *Database) ShardSpecs() []ShardSpec {
	out := make([]ShardSpec, 0, len(db.shardSpecs))
	for _, s := range db.shardSpecs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Logical < out[j].Logical })
	return out
}

// completeShardSpecs returns the specs whose member tables ALL still
// exist, sorted by logical name. Save persists only these: a snapshot
// that filters tables (e.g. the sql engine's external-only snapshot)
// silently sheds the specs of groups it dropped, instead of producing
// a DVM2 stream Load would reject as missing members.
func (db *Database) completeShardSpecs() []ShardSpec {
	var out []ShardSpec
	for _, s := range db.ShardSpecs() {
		whole := true
		for i := 0; i < s.N; i++ {
			if !db.Has(ShardName(s.Logical, i)) {
				whole = false
				break
			}
		}
		if whole {
			out = append(out, s)
		}
	}
	return out
}

// ShardTables returns the member tables of a shard group, in shard
// order.
func (db *Database) ShardTables(logical string) ([]*Table, error) {
	spec, ok := db.shardSpecs[logical]
	if !ok {
		return nil, fmt.Errorf("storage: no sharded table %q", logical)
	}
	out := make([]*Table, spec.N)
	for i := range out {
		t, err := db.Table(ShardName(logical, i))
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}
