package storage

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

func buildRandomDB(t *testing.T, seed int64) *Database {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	db := NewDatabase()
	schemas := []*schema.Schema{
		schema.NewSchema(schema.Col("i", schema.TInt), schema.Col("s", schema.TString)),
		schema.NewSchema(schema.Col("f", schema.TFloat), schema.Col("b", schema.TBool), schema.Col("n", schema.TInt)),
	}
	for i, sch := range schemas {
		kind := External
		if i%2 == 1 {
			kind = Internal
		}
		name := string(rune('A' + i))
		tb, err := db.Create(name, sch, kind)
		if err != nil {
			t.Fatal(err)
		}
		data := bag.New()
		for j, n := 0, r.Intn(50); j < n; j++ {
			tu := make(schema.Tuple, sch.Len())
			for k := 0; k < sch.Len(); k++ {
				switch sch.Column(k).Type {
				case schema.TInt:
					if r.Intn(10) == 0 {
						tu[k] = schema.Null()
					} else {
						tu[k] = schema.Int(int64(r.Intn(100) - 50))
					}
				case schema.TFloat:
					tu[k] = schema.Float(float64(r.Intn(1000)) / 7)
				case schema.TString:
					tu[k] = schema.Str(strings.Repeat("x", r.Intn(5)) + "|'\"")
				case schema.TBool:
					tu[k] = schema.Bool(r.Intn(2) == 0)
				}
			}
			data.Add(tu, 1+r.Intn(3))
		}
		tb.Replace(data)
	}
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		db := buildRandomDB(t, seed)
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got.Names()) != len(db.Names()) {
			t.Fatalf("table count mismatch: %v vs %v", got.Names(), db.Names())
		}
		for _, name := range db.Names() {
			orig, _ := db.Table(name)
			loaded, err := got.Table(name)
			if err != nil {
				t.Fatalf("seed %d: missing table %q", seed, name)
			}
			if loaded.Kind() != orig.Kind() {
				t.Fatalf("kind mismatch for %q", name)
			}
			if !loaded.Schema().Equal(orig.Schema()) {
				t.Fatalf("schema mismatch for %q: %s vs %s", name, loaded.Schema(), orig.Schema())
			}
			if !loaded.Data().Equal(orig.Data()) {
				t.Fatalf("data mismatch for %q:\n%v\nvs\n%v", name, loaded.Data(), orig.Data())
			}
		}
	}
}

func TestSaveLoadEmptyDatabase(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDatabase().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != 0 {
		t.Fatal("empty database grew tables")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE....."),
		"truncated": append([]byte("DVM1"), 0x02, 0x00, 0x00, 0x00),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Corrupt a valid snapshot mid-stream.
	db := buildRandomDB(t, 1)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) > 40 {
		if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
			t.Error("truncated snapshot accepted")
		}
	}
}

func TestSaveLoadPreservesValueEdgeCases(t *testing.T) {
	db := NewDatabase()
	sch := schema.NewSchema(schema.Col("v", schema.TFloat))
	tb, err := db.Create("t", sch, External)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, -0.0, 1e300, -1e-300, 3.141592653589793} {
		if err := tb.Insert(schema.Row(f), 1); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := got.Table("t")
	if !lt.Data().Equal(tb.Data()) {
		t.Fatalf("float round trip failed:\n%v\nvs\n%v", lt.Data(), tb.Data())
	}
}
