package storage

import (
	"testing"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

func newDB(t *testing.T) (*Database, *Table) {
	t.Helper()
	db := NewDatabase()
	sch := schema.NewSchema(schema.Col("id", schema.TInt), schema.Col("name", schema.TString))
	tb, err := db.Create("users", sch, External)
	if err != nil {
		t.Fatal(err)
	}
	return db, tb
}

func TestCreateDropLookup(t *testing.T) {
	db, tb := newDB(t)
	if tb.Name() != "users" || tb.Kind() != External || tb.Schema().Len() != 2 {
		t.Fatal("table metadata wrong")
	}
	if _, err := db.Create("users", tb.Schema(), External); err == nil {
		t.Fatal("duplicate create should fail")
	}
	got, err := db.Table("users")
	if err != nil || got != tb {
		t.Fatal("lookup failed")
	}
	if !db.Has("users") || db.Has("ghost") {
		t.Fatal("Has wrong")
	}
	if _, err := db.Table("ghost"); err == nil {
		t.Fatal("missing lookup should fail")
	}
	if err := db.Drop("users"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("users"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestInsertDelete(t *testing.T) {
	_, tb := newDB(t)
	if err := tb.Insert(schema.Row(1, "ann"), 2); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if err := tb.Insert(schema.Row("bad", "types"), 1); err == nil {
		t.Fatal("type violation accepted")
	}
	if n := tb.Delete(schema.Row(1, "ann"), 5); n != 2 {
		t.Fatalf("Delete removed %d, want 2", n)
	}
	if tb.Len() != 0 {
		t.Fatal("table not empty after delete")
	}
	if n := tb.Delete(schema.Row(1, "ann"), 1); n != 0 {
		t.Fatal("deleting absent tuple should remove 0")
	}
}

func TestReplaceClearData(t *testing.T) {
	_, tb := newDB(t)
	b := bag.Of(schema.Row(1, "x"), schema.Row(2, "y"))
	tb.Replace(b)
	if tb.Len() != 2 || tb.Data() != b {
		t.Fatal("Replace wrong")
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestBagSourceInterface(t *testing.T) {
	db, tb := newDB(t)
	if err := tb.Insert(schema.Row(7, "z"), 1); err != nil {
		t.Fatal(err)
	}
	b, err := db.Bag("users")
	if err != nil || b.Len() != 1 {
		t.Fatal("Bag() wrong")
	}
	if _, err := db.Bag("nope"); err == nil {
		t.Fatal("Bag of missing table should fail")
	}
}

func TestNamesSorted(t *testing.T) {
	db := NewDatabase()
	sch := schema.NewSchema(schema.Col("x", schema.TInt))
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := db.Create(n, sch, Internal); err != nil {
			t.Fatal(err)
		}
	}
	names := db.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db, tb := newDB(t)
	if err := tb.Insert(schema.Row(1, "a"), 1); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if err := tb.Insert(schema.Row(2, "b"), 1); err != nil {
		t.Fatal(err)
	}
	sb, _ := snap.Bag("users")
	if sb.Len() != 1 {
		t.Fatal("snapshot sees later writes")
	}
	st, _ := snap.Table("users")
	if st.Kind() != External || !st.Schema().Equal(tb.Schema()) {
		t.Fatal("snapshot metadata wrong")
	}
}

func TestKindString(t *testing.T) {
	if External.String() != "external" || Internal.String() != "internal" {
		t.Fatal("Kind.String wrong")
	}
}
