// Package storage provides the in-memory relational store underneath the
// maintenance engine: named tables holding bags of tuples, grouped into a
// Database that serves as the evaluator's state. Tables are partitioned
// into external tables (updatable by user transactions) and internal
// tables (view tables, logs, differential tables) as Section 3.1
// prescribes.
package storage

import (
	"fmt"
	"sort"

	"dvm/internal/bag"
	"dvm/internal/obs"
	"dvm/internal/obs/trace"
	"dvm/internal/schema"
)

// Kind distinguishes external (user) tables from internal (maintenance)
// tables. User transactions may only touch external tables.
type Kind uint8

// Table kinds.
const (
	External Kind = iota
	Internal
)

func (k Kind) String() string {
	if k == External {
		return "external"
	}
	return "internal"
}

// Table is a named bag of tuples with a schema.
type Table struct {
	name string
	sch  *schema.Schema
	kind Kind
	data *bag.Bag
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *schema.Schema { return t.sch }

// Kind returns whether the table is external or internal.
func (t *Table) Kind() Kind { return t.kind }

// Data returns the live bag. Callers must treat it as read-only unless
// they own the surrounding transaction.
//
//dvmlint:ignore shared-state-escape documented ownership contract: the lock protocol lives at the call sites (core wraps every access in a LockManager acquisition), and the analyzer cannot see callers' locks
func (t *Table) Data() *bag.Bag { return t.data }

// Len returns the table's cardinality with duplicates.
func (t *Table) Len() int { return t.data.Len() }

// Insert validates and adds n copies of a tuple.
func (t *Table) Insert(tu schema.Tuple, n int) error {
	if err := t.sch.Validate(tu); err != nil {
		return fmt.Errorf("storage: insert into %s: %w", t.name, err)
	}
	t.data.Add(tu, n)
	return nil
}

// Delete removes up to n copies of a tuple, returning how many were
// actually removed.
func (t *Table) Delete(tu schema.Tuple, n int) int {
	have := t.data.Count(tu)
	if have < n {
		n = have
	}
	t.data.Remove(tu, n)
	return n
}

// Replace swaps the table's contents for b.
func (t *Table) Replace(b *bag.Bag) { t.data = b }

// Clear empties the table.
func (t *Table) Clear() { t.data = bag.New() }

// Database is a mutable database state: a mapping from table names to
// bags (Section 2.1). It implements algebra.Source.
type Database struct {
	tables  map[string]*Table
	metrics *obs.Registry
	tracer  *trace.Tracer
	// shardSpecs registers sharded logical tables (see shard.go); the
	// member tables live in tables like any other.
	shardSpecs map[string]ShardSpec
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{tables: make(map[string]*Table)} }

// SetMetrics attaches an obs registry so Save records
// snapshot_save_bytes. Load-side bytes are recorded by the caller that
// owns the registry (the sql engine), since Load constructs a fresh
// database.
func (db *Database) SetMetrics(r *obs.Registry) { db.metrics = r }

// SetTracer attaches a tracer so Save emits a storage.snapshot.save
// trace. Like SetMetrics, the load side is traced by the caller that
// owns the tracer (the sql engine), since Load constructs a fresh
// database.
func (db *Database) SetTracer(t *trace.Tracer) { db.tracer = t }

// Create adds a new table.
func (db *Database) Create(name string, sch *schema.Schema, kind Kind) (*Table, error) {
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := &Table{name: name, sch: sch, kind: kind, data: bag.New()}
	db.tables[name] = t
	return t, nil
}

// Drop removes a table.
func (db *Database) Drop(name string) error {
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("storage: no table %q", name)
	}
	delete(db.tables, name)
	return nil
}

// Table looks up a table by name.
func (db *Database) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no table %q", name)
	}
	return t, nil
}

// Has reports whether a table exists.
func (db *Database) Has(name string) bool {
	_, ok := db.tables[name]
	return ok
}

// Bag implements algebra.Source.
func (db *Database) Bag(name string) (*bag.Bag, error) {
	t, err := db.Table(name)
	if err != nil {
		return nil, err
	}
	//dvmlint:ignore shared-state-escape algebra.Source hands out the live bag by design; evaluation runs under the caller's transaction locks and algebra.Eval clones its result before it escapes
	return t.data, nil
}

// Names returns all table names, sorted.
func (db *Database) Names() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a deep copy of the database state: an s_p frozen for
// later comparison. Tuples are shared (immutable); bags are copied.
func (db *Database) Snapshot() *Database {
	c := NewDatabase()
	c.metrics = db.metrics
	c.tracer = db.tracer
	for name, t := range db.tables {
		c.tables[name] = &Table{name: t.name, sch: t.sch, kind: t.kind, data: t.data.Clone()}
	}
	for name, s := range db.shardSpecs {
		if c.shardSpecs == nil {
			c.shardSpecs = make(map[string]ShardSpec)
		}
		c.shardSpecs[name] = s
	}
	return c
}
