package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dvm/internal/bag"
	"dvm/internal/obs/trace"
	"dvm/internal/schema"
)

// Binary snapshot format:
//
//	magic "DVM1" | u32 tableCount
//	per table: str name | u8 kind | u32 colCount
//	           per col: str name | u8 type
//	           u32 distinctTuples
//	           per tuple: u32 multiplicity | per column: value
//	value: u8 tag | payload (i64 / f64 bits / str / u8 bool; NULL empty)
//
// Strings are u32 length + bytes. All integers little-endian.
//
// Version 2 ("DVM2") prefixes the table block with the shard-group
// registry, so a restored database knows which member tables form a
// sharded logical table and by what key they were partitioned:
//
//	magic "DVM2" | u32 specCount
//	per spec: str logical | u32 n | u32 keyCol+1 (0 encodes full-tuple)
//	| u32 tableCount | tables as in DVM1
//
// Save emits DVM1 when no shard groups exist (byte-identical to the
// old format) and DVM2 otherwise; Load accepts both.

var (
	snapshotMagic   = [4]byte{'D', 'V', 'M', '1'}
	snapshotMagicV2 = [4]byte{'D', 'V', 'M', '2'}
)

const (
	tagNull byte = iota
	tagInt
	tagFloat
	tagString
	tagBool
)

// countingWriter wraps an io.Writer and tallies bytes written, so Save
// can report snapshot size without buffering the whole snapshot.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Save writes a snapshot of the whole database (external and internal
// tables) to w. The snapshot restores with Load. When a registry is
// attached via SetMetrics, the bytes written are recorded as
// snapshot_save_bytes.
func (db *Database) Save(w io.Writer) error {
	cw := &countingWriter{w: w}
	sp := db.tracer.StartTrace(trace.SpanSnapshotSave)
	defer func() {
		sp.SetAttrs(trace.Int("bytes", cw.n), trace.Int("tables", int64(len(db.tables))))
		sp.End()
	}()
	if db.metrics != nil {
		defer func() { db.metrics.Counter("snapshot_save_bytes", "").Add(cw.n) }()
	}
	bw := bufio.NewWriter(cw)
	specs := db.completeShardSpecs()
	magic := snapshotMagic
	if len(specs) > 0 {
		magic = snapshotMagicV2
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(specs) > 0 {
		if err := writeU32(bw, uint32(len(specs))); err != nil {
			return err
		}
		for _, s := range specs {
			if err := writeStr(bw, s.Logical); err != nil {
				return err
			}
			if err := writeU32(bw, uint32(s.N)); err != nil {
				return err
			}
			// keyCol is stored shifted by one so -1 (full-tuple hash)
			// encodes as 0 without a signed field.
			if err := writeU32(bw, uint32(s.KeyCol+1)); err != nil {
				return err
			}
		}
	}
	names := db.Names()
	if err := writeU32(bw, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t := db.tables[name]
		if err := writeStr(bw, t.name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(t.kind)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(t.sch.Len())); err != nil {
			return err
		}
		for i := 0; i < t.sch.Len(); i++ {
			c := t.sch.Column(i)
			if err := writeStr(bw, c.Name); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(c.Type)); err != nil {
				return err
			}
		}
		if err := writeU32(bw, uint32(t.data.Distinct())); err != nil {
			return err
		}
		// Ordered iteration keeps snapshot bytes deterministic: the same
		// database always serializes identically (diffable, hashable).
		var werr error
		t.data.EachOrdered(func(tu schema.Tuple, n int) {
			if werr != nil {
				return
			}
			if werr = writeU32(bw, uint32(n)); werr != nil {
				return
			}
			for _, v := range tu {
				if werr = writeValue(bw, v); werr != nil {
					return
				}
			}
		})
		if werr != nil {
			return werr
		}
	}
	return bw.Flush()
}

// Load restores a database snapshot written by Save.
func Load(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	if magic != snapshotMagic && magic != snapshotMagicV2 {
		return nil, fmt.Errorf("storage: load: bad magic %q", magic[:])
	}
	db := NewDatabase()
	if magic == snapshotMagicV2 {
		specCount, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if specCount > 1<<20 {
			return nil, fmt.Errorf("storage: load: implausible shard-spec count %d", specCount)
		}
		for i := uint32(0); i < specCount; i++ {
			logical, err := readStr(br)
			if err != nil {
				return nil, err
			}
			n, err := readU32(br)
			if err != nil {
				return nil, err
			}
			kc, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if n == 0 || n > 1<<16 {
				return nil, fmt.Errorf("storage: load: implausible shard count %d for %q", n, logical)
			}
			if db.shardSpecs == nil {
				db.shardSpecs = make(map[string]ShardSpec)
			}
			db.shardSpecs[logical] = ShardSpec{Logical: logical, N: int(n), KeyCol: int(kc) - 1}
		}
	}
	tableCount, err := readU32(br)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < tableCount; i++ {
		name, err := readStr(br)
		if err != nil {
			return nil, err
		}
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if kindByte > byte(Internal) {
			return nil, fmt.Errorf("storage: load: bad table kind %d for %q", kindByte, name)
		}
		colCount, err := readU32(br)
		if err != nil {
			return nil, err
		}
		cols := make([]schema.Column, colCount)
		for j := range cols {
			cn, err := readStr(br)
			if err != nil {
				return nil, err
			}
			ct, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			if schema.Type(ct) > schema.TBool {
				return nil, fmt.Errorf("storage: load: bad column type %d", ct)
			}
			cols[j] = schema.Col(cn, schema.Type(ct))
		}
		sch := schema.NewSchema(cols...)
		tb, err := db.Create(name, sch, Kind(kindByte))
		if err != nil {
			return nil, err
		}
		distinct, err := readU32(br)
		if err != nil {
			return nil, err
		}
		data := bag.New()
		for j := uint32(0); j < distinct; j++ {
			mult, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if mult == 0 {
				return nil, fmt.Errorf("storage: load: zero multiplicity in %q", name)
			}
			tu := make(schema.Tuple, colCount)
			for k := range tu {
				v, err := readValue(br)
				if err != nil {
					return nil, err
				}
				tu[k] = v
			}
			if err := sch.Validate(tu); err != nil {
				return nil, fmt.Errorf("storage: load: %w", err)
			}
			data.Add(tu, int(mult))
		}
		tb.Replace(data)
	}
	// Shard specs must name member tables that actually arrived.
	for _, s := range db.shardSpecs {
		for i := 0; i < s.N; i++ {
			if !db.Has(ShardName(s.Logical, i)) {
				return nil, fmt.Errorf("storage: load: shard group %q missing member %s", s.Logical, ShardName(s.Logical, i))
			}
		}
	}
	return db, nil
}

func writeU32(w *bufio.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeU64(w *bufio.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU64(r *bufio.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeStr(w *bufio.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readStr(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("storage: load: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w *bufio.Writer, v schema.Value) error {
	switch v.Type() {
	case schema.TNull:
		return w.WriteByte(tagNull)
	case schema.TInt:
		if err := w.WriteByte(tagInt); err != nil {
			return err
		}
		return writeU64(w, uint64(v.AsInt()))
	case schema.TFloat:
		if err := w.WriteByte(tagFloat); err != nil {
			return err
		}
		return writeU64(w, math.Float64bits(v.AsFloat()))
	case schema.TString:
		if err := w.WriteByte(tagString); err != nil {
			return err
		}
		return writeStr(w, v.AsString())
	case schema.TBool:
		if err := w.WriteByte(tagBool); err != nil {
			return err
		}
		if v.AsBool() {
			return w.WriteByte(1)
		}
		return w.WriteByte(0)
	}
	return fmt.Errorf("storage: save: unknown value type %v", v.Type())
}

func readValue(r *bufio.Reader) (schema.Value, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return schema.Value{}, err
	}
	switch tag {
	case tagNull:
		return schema.Null(), nil
	case tagInt:
		u, err := readU64(r)
		if err != nil {
			return schema.Value{}, err
		}
		return schema.Int(int64(u)), nil
	case tagFloat:
		u, err := readU64(r)
		if err != nil {
			return schema.Value{}, err
		}
		return schema.Float(math.Float64frombits(u)), nil
	case tagString:
		s, err := readStr(r)
		if err != nil {
			return schema.Value{}, err
		}
		return schema.Str(s), nil
	case tagBool:
		b, err := r.ReadByte()
		if err != nil {
			return schema.Value{}, err
		}
		return schema.Bool(b != 0), nil
	}
	return schema.Value{}, fmt.Errorf("storage: load: unknown value tag %d", tag)
}
