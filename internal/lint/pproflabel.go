package lint

import (
	"go/ast"
)

// analyzerPprofLabel keeps continuous profiling attributable: every
// maintenance entry point in the core package — recognized by its
// startEntrySpan call, the marker all Figure 3 transactions share —
// must also install the dvm_view/dvm_shard/dvm_phase goroutine labels
// via obs.StartRegion (or the lower-level obs.SetPhaseLabels) before
// doing work. An entry point that starts a span but no labeled region
// produces CPU samples that cannot be attributed to a view or phase,
// which silently erodes the ≥90%-attributed property the profiling
// docs promise (docs/observability.md, "Profiling & attribution").
var analyzerPprofLabel = &Analyzer{
	Name: "pprof-label",
	Doc:  "maintenance entry points starting spans must install pprof labels (obs.StartRegion/SetPhaseLabels)",
	Run:  runPprofLabel,
}

func runPprofLabel(p *Pass) {
	if p.Pkg.Path != p.Cfg.CorePkg {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var entry *ast.CallExpr
			labeled := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := CalleeOf(info, call)
				if f == nil {
					return true
				}
				switch {
				case f.Name() == "startEntrySpan" && f.Pkg() != nil && f.Pkg().Path() == p.Cfg.CorePkg:
					if entry == nil {
						entry = call
					}
				case (f.Name() == "StartRegion" || f.Name() == "SetPhaseLabels") &&
					f.Pkg() != nil && f.Pkg().Path() == p.Cfg.ObsPkg:
					labeled = true
				}
				return true
			})
			if entry != nil && !labeled {
				p.Reportf(entry.Pos(),
					"%s starts a maintenance entry span without installing pprof labels; call obs.StartRegion (or obs.SetPhaseLabels) so CPU samples attribute to a view/phase",
					fd.Name.Name)
			}
		}
	}
}
