package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerSharedStateEscape tracks references that alias the engine's
// shared mutable internals — the live *bag.Bag behind a table
// ((*storage.Table).Data, (*storage.Database).Bag) and bag/map/slice
// fields of the core and storage structs — with def-use alias facts
// instead of the lexical heuristics the bag-mutation analyzer uses.
// Two escape shapes are flagged:
//
//   - a reference obtained INSIDE a locked region (the closure argument
//     of a txn.LockManager acquisition, or the body of a core *Locked
//     function) must not outlive it: assigning it to a variable
//     declared outside the region, storing it into a field or an outer
//     container, sending it on a channel, returning it, or capturing it
//     in a spawned goroutine all let lock-free code read state the lock
//     was guarding (Clone it under the lock instead — the Query
//     pattern);
//   - an exported core/storage function must not return a direct
//     reference to an internal bag, map, or slice field: the caller
//     holds an alias into lock-guarded state with no lock protocol
//     attached. Return a clone, or suppress with the documented
//     ownership contract.
var analyzerSharedStateEscape = &Analyzer{
	Name: "shared-state-escape",
	Doc:  "references to lock-guarded engine internals never escape their locked region or leak through exported accessors",
	Run:  runSharedStateEscape,
}

func runSharedStateEscape(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkEscapeRegions(fd)
			if p.Pkg.Path == p.Cfg.CorePkg || p.Pkg.Path == p.Cfg.StoragePkg {
				p.checkAccessorLeak(fd)
			}
		}
	}
}

// checkEscapeRegions finds the locked regions of fd and runs the
// escape analysis over each: every lock-acquire closure argument, plus
// the whole body when fd itself carries the *Locked contract.
func (p *Pass) checkEscapeRegions(fd *ast.FuncDecl) {
	info := p.Pkg.Info
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok && isLockedContractFn(fn, p.Cfg.CorePkg) {
		p.checkRegion(fd.Body, fd.Name.Name+" (Locked contract: caller holds the lock)")
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isLockAcquire(CalleeOf(info, call), p.Cfg.TxnPkg) {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit); ok {
			p.checkRegion(lit.Body, "the locked region")
		}
		return true
	})
}

// isInternalRefCall reports whether call returns a reference aliasing
// live table storage: (*storage.Table).Data() or
// (*storage.Database).Bag(...).
func isInternalRefCall(info *types.Info, call *ast.CallExpr, storagePkg string) bool {
	f := CalleeOf(info, call)
	if f == nil {
		return false
	}
	return (f.Name() == "Data" && isMethodOn(f, storagePkg, "Table")) ||
		(f.Name() == "Bag" && isMethodOn(f, storagePkg, "Database"))
}

// checkRegion runs the def-use escape analysis over one locked region.
func (p *Pass) checkRegion(body ast.Node, regionDesc string) {
	info := p.Pkg.Info

	// Pass A: taint fixpoint. tainted maps a local object to the source
	// text of the internal reference it aliases.
	tainted := map[types.Object]string{}
	var taintOf func(e ast.Expr) (string, bool)
	taintOf = func(e ast.Expr) (string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if isInternalRefCall(info, e, p.Cfg.StoragePkg) {
				return types.ExprString(e), true
			}
			// append propagates aliasing: the result's backing array can
			// still hold the tainted reference.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				for _, a := range e.Args {
					if src, ok := taintOf(a); ok {
						return src, true
					}
				}
			}
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				if src, ok := tainted[obj]; ok {
					return src, true
				}
			}
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		mark := func(lhs ast.Expr, src string) {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				return
			}
			if _, seen := tainted[obj]; !seen {
				tainted[obj] = src
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch {
			case len(as.Lhs) == len(as.Rhs):
				for i := range as.Lhs {
					if src, ok := taintOf(as.Rhs[i]); ok {
						mark(as.Lhs[i], src)
					}
				}
			case len(as.Rhs) == 1:
				// b, ok := db.Bag("mv_a"): the reference is result 0.
				if src, ok := taintOf(as.Rhs[0]); ok {
					mark(as.Lhs[0], src)
				}
			}
			return true
		})
	}

	// insideRegion reports whether an object's declaration sits inside
	// the region — the variables whose lifetime the lock bounds.
	insideRegion := func(obj types.Object) bool {
		return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() <= body.End()
	}

	// Pass B: sinks, with function-literal depth so a `return` inside a
	// nested closure is not mistaken for leaving the region.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if ast.Node(m) == n {
					return true
				}
				walk(m.Body, depth+1)
				return false
			case *ast.AssignStmt:
				sink := func(rawLHS ast.Expr, src string) {
					switch lhs := ast.Unparen(rawLHS).(type) {
					case *ast.Ident:
						obj := info.Defs[lhs]
						if obj == nil {
							obj = info.Uses[lhs]
						}
						if obj != nil && !insideRegion(obj) {
							p.Reportf(m.Pos(),
								"%s (aliasing live table state) is assigned to %s, which outlives %s; the reference escapes the lock — Clone() under the lock instead",
								src, lhs.Name, regionDesc)
						}
					case *ast.SelectorExpr:
						p.Reportf(m.Pos(),
							"%s (aliasing live table state) is stored into field %s and outlives %s; the reference escapes the lock — Clone() under the lock instead",
							src, types.ExprString(lhs), regionDesc)
					case *ast.IndexExpr:
						if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
							if obj := info.Uses[base]; obj != nil && insideRegion(obj) {
								return
							}
						}
						p.Reportf(m.Pos(),
							"%s (aliasing live table state) is stored into container %s that outlives %s; the reference escapes the lock — Clone() under the lock instead",
							src, types.ExprString(lhs.X), regionDesc)
					}
				}
				switch {
				case len(m.Lhs) == len(m.Rhs):
					for i := range m.Lhs {
						if src, ok := taintOf(m.Rhs[i]); ok {
							sink(m.Lhs[i], src)
						}
					}
				case len(m.Rhs) == 1:
					if src, ok := taintOf(m.Rhs[0]); ok {
						sink(m.Lhs[0], src)
					}
				}
			case *ast.SendStmt:
				if src, ok := taintOf(m.Value); ok {
					p.Reportf(m.Pos(),
						"%s (aliasing live table state) is sent on a channel out of %s; the receiver reads lock-guarded state with no lock held — Clone() under the lock instead",
						src, regionDesc)
				}
			case *ast.ReturnStmt:
				if depth != 0 {
					return true
				}
				for _, r := range m.Results {
					if src, ok := taintOf(r); ok {
						p.Reportf(m.Pos(),
							"%s (aliasing live table state) is returned out of %s; the caller keeps the reference after the lock releases — Clone() under the lock instead",
							src, regionDesc)
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					p.flagTaintedCapture(lit, tainted, regionDesc, m.Pos())
				}
				for _, arg := range m.Call.Args {
					if src, ok := taintOf(arg); ok {
						p.Reportf(m.Pos(),
							"%s (aliasing live table state) is passed to a spawned goroutine from %s; the goroutine runs without the lock — Clone() under the lock instead",
							src, regionDesc)
					}
				}
				return false
			case *ast.CallExpr:
				// A closure handed to a worker/pool spawn helper runs in a
				// goroutine too (callgraph.go spawn parameters).
				if f := CalleeOf(info, m); f != nil {
					for _, arg := range p.Unit.spawningArgs(f, m) {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							p.flagTaintedCapture(lit, tainted, regionDesc, arg.Pos())
						}
					}
				}
			}
			return true
		})
	}
	walk(body, 0)
}

// flagTaintedCapture reports tainted objects captured by a spawned
// function literal.
func (p *Pass) flagTaintedCapture(lit *ast.FuncLit, tainted map[types.Object]string, regionDesc string, pos token.Pos) {
	info := p.Pkg.Info
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		if src, ok := tainted[obj]; ok {
			seen[obj] = true
			p.Reportf(pos,
				"%s (aliasing live table state) is captured by a goroutine spawned from %s; the goroutine runs without the lock — Clone() under the lock instead",
				src, regionDesc)
		}
		return true
	})
}

// checkAccessorLeak flags exported core/storage functions that return a
// direct reference to an internal bag, map, or slice field: the alias
// outlives every lock the engine takes around that state.
func (p *Pass) checkAccessorLeak(fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	info := p.Pkg.Info

	// Local aliases of internal field references: x := t.data.
	alias := map[types.Object]string{}
	fieldRef := func(e ast.Expr) (string, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			obj := info.Uses[e.Sel]
			v, ok := obj.(*types.Var)
			if !ok || !v.IsField() || v.Pkg() == nil {
				return "", false
			}
			if v.Pkg().Path() != p.Cfg.CorePkg && v.Pkg().Path() != p.Cfg.StoragePkg {
				return "", false
			}
			if !sharedMutableType(v.Type()) {
				return "", false
			}
			return types.ExprString(e), true
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				if src, ok := alias[obj]; ok {
					return src, true
				}
			}
		}
		return "", false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			if src, ok := fieldRef(as.Rhs[i]); ok {
				if id, isID := as.Lhs[i].(*ast.Ident); isID {
					if obj := info.Defs[id]; obj != nil {
						alias[obj] = src
					}
				}
			}
		}
		return true
	})

	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if ast.Node(m) == n {
					return true
				}
				walk(m.Body, depth+1)
				return false
			case *ast.ReturnStmt:
				if depth != 0 {
					return true
				}
				for _, r := range m.Results {
					if src, ok := fieldRef(r); ok {
						p.Reportf(m.Pos(),
							"exported %s returns %s, a direct reference to an internal %s; callers bypass the lock protocol on shared engine state — return a clone or document the ownership contract",
							fd.Name.Name, src, typeClass(info, r))
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, 0)
}

// sharedMutableType reports whether t is one of the aliasing-dangerous
// internal state types: *bag.Bag, a map, or a slice.
func sharedMutableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		named, ok := ptr.Elem().(*types.Named)
		if ok && named.Obj().Name() == "Bag" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Name() == "bag" {
			return true
		}
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// typeClass names the class of an expression's type for diagnostics.
func typeClass(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return "reference"
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "bag"
}
