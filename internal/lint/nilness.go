package lint

import (
	"go/ast"
	"go/types"
)

// analyzerNilness is branch-sensitive nil-deref detection built on the
// dataflow layer: it tracks which local pointer variables are provably
// nil at each program point — assigned the literal nil, declared
// without an initializer, or on the wrong side of their own nil check
// — and flags field accesses and explicit dereferences that must
// panic. The paths it guards are the ones the engine's error handling
// takes: a deref inside the `== nil` branch of a guard, or after an
// early return was forgotten, exactly the refresh/propagate failure
// paths (Figure 3) that run rarely enough for the panic to hide until
// recovery needs them.
//
// The analysis is deliberately must-nil: a variable merged from a nil
// path and a non-nil path is not flagged, method calls are not flagged
// (many pointer receivers in this module are nil-safe by design —
// *trace.Span in particular documents nil-receiver no-ops), and
// variables whose address is taken or that are captured by a closure
// are not tracked at all. What remains is the class of reports that is
// wrong code on every execution that reaches it.
var analyzerNilness = &Analyzer{
	Name: "nilness",
	Doc:  "branch-sensitive detection of dereferences of provably nil pointers",
	Run:  runNilness,
}

func runNilness(p *Pass) {
	eachScope(p, func(body *ast.BlockStmt, cfg *funcCFG) {
		nf := &nilFlow{p: p, du: defUseOf(p.Pkg.Info, body)}
		runForward(cfg, nf, func(n ast.Node, facts flowFacts) {
			nf.checkDerefs(n, facts)
		})
	})
}

type nilFlow struct {
	p  *Pass
	du *defUse
}

// trackable reports whether obj is a pointer-typed local whose
// flow-sensitive nil-state is sound to track: not address-taken and
// not captured by a closure (either could change it behind the
// analysis's back).
func (nf *nilFlow) trackable(obj types.Object) bool {
	if obj == nil || nf.du.escaped[obj] {
		return false
	}
	_, isPtr := obj.Type().Underlying().(*types.Pointer)
	return isPtr
}

func (nf *nilFlow) transfer(n ast.Node, facts flowFacts) {
	info := nf.p.Pkg.Info
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			obj := localObj(info, lhs)
			if !nf.trackable(obj) {
				continue
			}
			if len(n.Lhs) != len(n.Rhs) {
				facts[obj] = nIsNil | nNonNil // multi-value call or comma-ok
				continue
			}
			facts[obj] = nf.rhsFact(n.Rhs[i], facts)
		}
	case *ast.ValueSpec:
		for i, name := range n.Names {
			obj := info.Defs[name]
			if !nf.trackable(obj) {
				continue
			}
			switch {
			case len(n.Values) == 0:
				facts[obj] = nIsNil // zero value of a pointer
			case len(n.Values) == len(n.Names):
				facts[obj] = nf.rhsFact(n.Values[i], facts)
			default:
				facts[obj] = nIsNil | nNonNil
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					nf.transfer(vs, facts)
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if obj := localObj(info, e); nf.trackable(obj) {
				facts[obj] = nIsNil | nNonNil
			}
		}
	}
}

// rhsFact resolves an initializer to the nil-states it can produce,
// propagating the current state of a copied tracked local.
func (nf *nilFlow) rhsFact(e ast.Expr, facts flowFacts) fact {
	v := nf.classify(e)
	if v != 0 {
		return v
	}
	if src := localObj(nf.p.Pkg.Info, e); src != nil {
		if sv, tracked := facts[src]; tracked {
			return sv
		}
	}
	return nIsNil | nNonNil
}

// classify maps an initializer expression to the nil-states it can
// produce; 0 is the copied-local sentinel resolved by rhsFact.
func (nf *nilFlow) classify(e ast.Expr) fact {
	e = ast.Unparen(e)
	info := nf.p.Pkg.Info
	if isNilIdent(info, e) {
		return nIsNil
	}
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return nNonNil
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("new") {
			return nNonNil
		}
	case *ast.Ident:
		// Copying another tracked local copies its current state.
		if obj := info.Uses[e]; nf.trackable(obj) {
			return 0 // sentinel: caller-side lookup below
		}
	}
	return nIsNil | nNonNil
}

func (nf *nilFlow) refine(cond ast.Expr, truth bool, facts flowFacts) {
	obj, isNil, ok := nilCompare(nf.p.Pkg.Info, cond)
	if !ok || !nf.trackable(obj) {
		return
	}
	mask := nNonNil
	if (truth && isNil) || (!truth && !isNil) {
		mask = nIsNil
	}
	v, tracked := facts[obj]
	if !tracked || v&mask == 0 {
		facts[obj] = mask
		return
	}
	facts[obj] = v & mask
}

// checkDerefs scans one CFG node for dereferences of must-nil locals:
// field selections through the pointer and explicit *p reads. Nested
// function literals are skipped — they are their own scope, and any
// variable they capture is untracked here anyway.
func (nf *nilFlow) checkDerefs(n ast.Node, facts flowFacts) {
	info := nf.p.Pkg.Info
	reported := map[types.Object]bool{}
	flag := func(id *ast.Ident) {
		obj := info.Uses[id]
		if obj == nil || reported[obj] {
			return
		}
		if v, tracked := facts[obj]; tracked && v == nIsNil {
			reported[obj] = true
			nf.p.Reportf(id.Pos(), "nil dereference: %s is nil on every path reaching this use", id.Name)
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			// A field selection through a nil pointer panics; a method
			// value/call may be a nil-safe receiver, so only flag when the
			// selection resolves to a field.
			if sel := info.Selections[m]; sel != nil && sel.Kind() == types.FieldVal {
				if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
				flag(id)
			}
		}
		return true
	})
}
