// Package purity is a dvmlint fixture for the closure-purity
// analyzer. The fixture plays the algebra package (Config.AlgebraPkg
// points here), with local Bag and Table types standing in for the
// bag and storage roles, so every rule of the analyzer can be
// exercised without touching the real compiler.
package purity

// Bag stands in for bag.Bag (the Config.BagPkg role).
type Bag struct{ counts map[string]int }

// New builds an empty bag — a sanctioned snapshot constructor.
func New() *Bag { return &Bag{counts: map[string]int{}} }

// Clone copies the bag — the snapshot idiom the analyzer allows.
func (b *Bag) Clone() *Bag {
	c := New()
	for k, v := range b.counts {
		c.counts[k] = v
	}
	return c
}

// Add mutates the bag in place.
func (b *Bag) Add(k string, n int) { b.counts[k] += n }

// Table stands in for storage.Table (the Config.StoragePkg role).
type Table struct{ Rows map[string]int }

// State is the per-evaluation state closures may mutate freely.
type State struct{ Slots []*Bag }

// Node is one compiled delta-program node.
type Node func(st *State) *Bag

// Compile is a compile root by name: every closure below is reachable
// from it, directly or through emit.
func Compile(live *Bag, table *Table, index map[string]int) []Node {
	var out []Node
	calls := 0

	// Impure: writes a captured counter across evaluations.
	out = append(out, func(st *State) *Bag {
		calls++ // want closure-purity: writes captured variable
		return New()
	})

	// Impure: captures the live bag itself — even a read-only Clone at
	// evaluation time observes post-compile mutations.
	out = append(out, func(st *State) *Bag {
		return live.Clone() // want closure-purity: captures live bag
	})

	// Impure: captures the storage table.
	out = append(out, func(st *State) *Bag {
		b := New()
		b.Add("rows", len(table.Rows)) // want closure-purity: captures storage table
		return b
	})

	// Impure: reads through a captured mutable map.
	out = append(out, func(st *State) *Bag {
		b := New()
		b.Add("n", index["n"]) // want closure-purity: captures mutable map
		return b
	})

	// Impure twice over: delete is a write, and the map is banned state.
	out = append(out, func(st *State) *Bag {
		delete(index, "gone") // want closure-purity: write AND capture
		return New()
	})

	// Pure: a fresh snapshot clone is owned by the closure.
	snap := live.Clone()
	out = append(out, func(st *State) *Bag { return snap })

	// Pure: mutation through the *State parameter is the sanctioned
	// channel (st is declared inside the literal).
	out = append(out, func(st *State) *Bag {
		st.Slots = append(st.Slots, New())
		return New()
	})

	// Pure: the bag-builder callback writes acc, which is declared
	// inside the OUTERMOST literal — one evaluation's local state, not
	// a capture across evaluations.
	out = append(out, func(st *State) *Bag {
		acc := New()
		each([]string{"a", "b"}, func(k string) { acc.Add(k, 1) })
		return acc
	})

	out = append(out, emit())
	return out
}

// emit is reached from Compile through a static call; its closure is
// checked too.
func emit() Node {
	misses := 0
	return func(st *State) *Bag {
		misses++ // want closure-purity: writes captured variable
		return New()
	}
}

// Bind is the second root shape: predicate binding.
func Bind(idx map[string]bool) func(string) bool {
	return func(k string) bool {
		return idx[k] // want closure-purity: captures mutable map
	}
}

// each drives the bag-builder callback.
func each(ks []string, f func(string)) {
	for _, k := range ks {
		f(k)
	}
}

// notReached is NOT reachable from Compile or Bind: its impure closure
// must not be flagged — the analyzer judges compiled code, not every
// closure in the package.
func notReached() Node {
	n := 0
	return func(st *State) *Bag {
		n++
		return New()
	}
}

// keep silences the unused-function diagnostic some tools raise for
// notReached without creating a call edge from a root.
var keep = notReached
