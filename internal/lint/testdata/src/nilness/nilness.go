// Package nilness is a dvmlint fixture for the nilness analyzer:
// must-nil dereferences on guard branches, zero-value declarations,
// and copies — and the may-nil / escaped cases that stay silent.
package nilness

type node struct {
	val  int
	next *node
}

// DerefInNilBranch dereferences inside its own == nil branch.
func DerefInNilBranch(n *node) int {
	if n == nil {
		return n.val // want nilness
	}
	return n.val
}

// ZeroValueDeref dereferences a pointer declared without an
// initializer.
func ZeroValueDeref() int {
	var p *node
	return p.val // want nilness
}

// ExplicitStar dereferences *p on the wrong side of its own guard.
func ExplicitStar(p *int) int {
	if p != nil {
		return *p
	}
	return *p // want nilness
}

// CopiedNil: q copies n's must-nil state.
func CopiedNil(n *node) int {
	if n != nil {
		return n.val
	}
	q := n
	return q.val // want nilness
}

// GuardedOK is clean: the guard returns before the deref.
func GuardedOK(n *node) int {
	if n == nil {
		return 0
	}
	return n.val
}

// Reassigned is clean: the nil branch rebinds before falling through.
func Reassigned(n *node) int {
	if n == nil {
		n = &node{}
	}
	return n.val
}

// MergeMayNil is clean: a merge of a nil path and a non-nil path is
// may-nil, and the analysis is must-nil only.
func MergeMayNil(b bool) int {
	var p *node
	if b {
		p = &node{val: 1}
	}
	if p != nil {
		return p.val
	}
	return 0
}

// MethodOnNil is clean by design: pointer receivers in this module
// are often nil-safe (trace.Span documents it), so method calls are
// never flagged.
func MethodOnNil(n *node) int {
	if n == nil {
		return n.depth()
	}
	return 0
}

func (n *node) depth() int {
	if n == nil {
		return 0
	}
	return 1 + n.next.depth()
}

// AddressTaken is clean: once p's address escapes, its nil-state is
// untracked.
func AddressTaken() int {
	var p *node
	reset(&p)
	return p.val
}

func reset(pp **node) { *pp = &node{} }

// CapturedByClosure is clean: the closure may rebind p behind the
// analysis's back, so p is untracked.
func CapturedByClosure() int {
	var p *node
	fill := func() { p = &node{val: 3} }
	fill()
	return p.val
}

// LoopCarry is clean: last is nil only before the first iteration,
// and the guard carves that out.
func LoopCarry(ns []*node) int {
	var last *node
	sum := 0
	for _, n := range ns {
		if last != nil {
			sum += last.val
		}
		last = n
	}
	return sum
}

// SwitchNil dereferences in the tagless-switch case that proved the
// pointer nil.
func SwitchNil(p *int) int {
	switch {
	case p == nil:
		return *p // want nilness
	default:
		return *p
	}
}
