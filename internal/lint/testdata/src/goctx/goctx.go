// Package goctx is a dvmlint fixture for the goroutine-context
// analyzer. The test configures this package as the core package, so
// its *Locked functions carry the caller-holds-locks contract. Lock
// facts never transfer into a spawned goroutine: spawning a *Locked
// helper, or touching a table the spawner holds locked, is flagged at
// the spawn site.
package goctx

import (
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// applyLocked declares (by suffix) that its caller holds table locks.
func applyLocked() {}

// SpawnLockedDirect launches the contract helper directly: the
// goroutine starts with an empty lock set, so the contract is broken
// even if the spawner held every lock.
func SpawnLockedDirect(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		go applyLocked() // want: spawned goroutine calls *Locked
		return nil
	})
}

// SpawnLockedClosure captures the contract call in a spawned closure.
func SpawnLockedClosure() {
	go func() {
		applyLocked() // flagged at the go statement
	}()
}

// SpawnTouchesHeldTable spawns while holding mv_a's write lock and the
// goroutine reads mv_a lock-free: lexically "under" the lock, actually
// a race with every reader the lock protects.
func SpawnTouchesHeldTable(lm *txn.LockManager, db *storage.Database) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		go func() { // want: touches mv_a while spawner holds its lock
			b, _ := db.Bag("mv_a")
			_ = b
		}()
		return nil
	})
}

// SpawnTouchesOtherTable touches a table the spawner does NOT hold:
// no inherited-lock illusion, so this spawn is clean here (the body
// takes its own lock).
func SpawnTouchesOtherTable(lm *txn.LockManager, db *storage.Database) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		go func() {
			_ = lm.WithRead([]string{"base_b"}, func() error {
				b, _ := db.Bag("base_b")
				_ = b
				return nil
			})
		}()
		return nil
	})
}

// SpawnReacquires re-acquires inside the goroutine before touching the
// table the spawner held: the correct pattern, clean.
func SpawnReacquires(lm *txn.LockManager, db *storage.Database) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		go func() {
			_ = lm.WithWrite([]string{"mv_a"}, func() error {
				b, _ := db.Bag("mv_a")
				_ = b
				return nil
			})
		}()
		return nil
	})
}

// submit is a worker-pool helper: the function value it receives runs
// in a goroutine (callgraph.go spawn-parameter analysis).
func submit(fn func()) {
	go fn()
}

// SpawnViaPool hands a closure touching the held table to the pool
// helper — same bug as the direct go statement, one call removed.
func SpawnViaPool(lm *txn.LockManager, db *storage.Database) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		submit(func() { // want: handed to submit, touches held mv_a
			b, _ := db.Bag("mv_a")
			_ = b
		})
		return nil
	})
}

// lockFree touches mv_a with no lock of its own — fine when called
// synchronously under a lock, a race when spawned while it is held.
func lockFree(db *storage.Database) {
	b, _ := db.Bag("mv_a")
	_ = b
}

// SpawnNamedTouch spawns the named helper while holding its table.
func SpawnNamedTouch(lm *txn.LockManager, db *storage.Database) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		lockFree(db) // synchronous: inherits the held lock, clean
		go lockFree(db) // want: spawned: lock does not transfer
		return nil
	})
}
