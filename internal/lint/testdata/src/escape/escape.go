// Package escape is a dvmlint fixture for the shared-state-escape
// analyzer. The test configures this package as the core package, so
// its *Locked functions are locked regions and its exported accessors
// fall under the internal-field-leak rule. A reference obtained under
// a lock (Database.Bag, Table.Data) aliases live table storage: it
// must be Clone()d before it crosses the region boundary.
package escape

import (
	"dvm/internal/bag"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// LeakViaOuter assigns the live bag to a variable that outlives the
// locked region: the caller reads lock-guarded state with no lock.
func LeakViaOuter(lm *txn.LockManager, db *storage.Database) *bag.Bag {
	var out *bag.Bag
	_ = lm.WithRead([]string{"mv_a"}, func() error {
		b, _ := db.Bag("mv_a")
		out = b // want: escapes to outer variable
		return nil
	})
	return out
}

// CloneUnderLock is the correct pattern (the Query pattern): the clone
// owns its tuples, so handing it out is clean.
func CloneUnderLock(lm *txn.LockManager, db *storage.Database) *bag.Bag {
	var out *bag.Bag
	_ = lm.WithRead([]string{"mv_a"}, func() error {
		b, _ := db.Bag("mv_a")
		out = b.Clone()
		return nil
	})
	return out
}

// sink is a field a locked region must not park live references in.
type sink struct {
	last *bag.Bag
}

// LeakViaField stores the live reference into a struct field.
func (s *sink) LeakViaField(lm *txn.LockManager, db *storage.Database) {
	_ = lm.WithWrite([]string{"mv_a"}, func() error {
		b, _ := db.Bag("mv_a")
		s.last = b // want: stored into a field
		return nil
	})
}

// LeakViaChannel sends the live reference to a receiver that runs
// outside the lock.
func LeakViaChannel(lm *txn.LockManager, db *storage.Database, ch chan *bag.Bag) {
	_ = lm.WithRead([]string{"mv_a"}, func() error {
		b, _ := db.Bag("mv_a")
		ch <- b // want: sent on a channel
		return nil
	})
}

// LeakViaGoroutine captures the live reference in a goroutine that
// runs after (or concurrently with) the region.
func LeakViaGoroutine(lm *txn.LockManager, db *storage.Database) {
	_ = lm.WithRead([]string{"mv_a"}, func() error {
		b, _ := db.Bag("mv_a")
		go func() { // want: captured by spawned goroutine
			_ = b.Len()
		}()
		return nil
	})
}

// grabLocked runs under its caller's locks (*Locked contract); its
// whole body is the locked region, so returning the live bag hands the
// alias to whoever runs after the caller unlocks.
func grabLocked(db *storage.Database) *bag.Bag {
	tb, _ := db.Table("mv_a")
	return tb.Data() // want: returned out of the Locked region
}

// snapshotLocked is grabLocked done right: Clone before returning.
func snapshotLocked(db *storage.Database) *bag.Bag {
	tb, _ := db.Table("mv_a")
	return tb.Data().Clone()
}

// Use keeps the helpers referenced.
func Use(db *storage.Database) {
	_ = grabLocked(db)
	_ = snapshotLocked(db)
}

// store models a core struct whose internals are lock-guarded.
type store struct {
	data  *bag.Bag
	index map[string]int
}

// Data returns the internal bag by reference: every caller bypasses
// the lock protocol.
func (s *store) Data() *bag.Bag {
	return s.data // want: exported accessor leaks internal bag
}

// Index returns the internal map by reference.
func (s *store) Index() map[string]int {
	return s.index // want: exported accessor leaks internal map
}

// AliasedData launders the field through a local before returning it;
// the def-use alias tracking still sees through it.
func (s *store) AliasedData() *bag.Bag {
	d := s.data
	return d // want: exported accessor leaks internal bag via alias
}

// Snapshot returns a clone: the caller owns it, clean.
func (s *store) Snapshot() *bag.Bag {
	return s.data.Clone()
}

// Count returns a scalar derived from the internals: clean.
func (s *store) Count() int {
	return s.data.Len()
}
