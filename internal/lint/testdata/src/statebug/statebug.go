// Package statebug is a dvmlint fixture for the state-bug analyzer.
// The test configures this package as the core package and blesses the
// exported functions below, so each models one Figure-3 transaction
// shape: reads of a table after the same transaction applied its
// updates to it are the paper's Section 3 state bug.
package statebug

import (
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// RefreshThenRead applies assignments to mv_a and then reads it —
// post-update state where pre-update state is required.
func RefreshThenRead(db *storage.Database) {
	txn.ApplyAssignments(db, []txn.Assignment{{Table: "mv_a"}})
	b, _ := db.Bag("mv_a") // want: read after apply
	_ = b
}

// ReadThenRefresh reads the pre-update state first: the correct
// DEL/ADD ordering, clean.
func ReadThenRefresh(db *storage.Database) {
	b, _ := db.Bag("mv_a")
	_ = b
	txn.ApplyAssignments(db, []txn.Assignment{{Table: "mv_a"}})
}

// applyToLog buries the table write in a helper; the write summary
// still reaches the blessed caller.
func applyToLog(db *storage.Database) {
	tb, _ := db.Table("log_b")
	tb.Clear()
}

// HelperThenRead applies through a helper, then reads the same table.
func HelperThenRead(db *storage.Database) {
	applyToLog(db)
	b, _ := db.Bag("log_b") // want: read after helper applied
	_ = b
}

// DataAfterAdd mutates table contents through Data() and then reads
// the live bag of the same table.
func DataAfterAdd(db *storage.Database) {
	tb, _ := db.Table("mv_c")
	tb.Data().Add(nil, 1)
	_ = tb.Data() // want: read after apply
}

// view carries a symbolic table name, as core's view structs do.
type view struct {
	mv string
}

// SymbolicThenRead applies to a symbolically named table and reads it
// back through the same expression.
func (v *view) SymbolicThenRead(db *storage.Database) {
	tb, _ := db.Table(v.mv)
	tb.Clear()
	b, _ := db.Bag(v.mv) // want: read after apply (symbolic key)
	_ = b
}

// DifferentTables applies to one table and reads another: clean.
func DifferentTables(db *storage.Database) {
	tb, _ := db.Table("mv_d")
	tb.Clear()
	b, _ := db.Bag("base_d")
	_ = b
}
