// Package atomicfield is a dvmlint fixture for the atomic-discipline
// analyzer: a field accessed via sync/atomic anywhere must be accessed
// atomically everywhere. The counters struct mirrors a hand-rolled
// metrics block (the obs package avoids this whole class by typing its
// counters atomic.Int64, which makes plain access a compile error).
package atomicfield

import "sync/atomic"

// counters mixes one disciplined field (hits) with one that is never
// atomic (coldStart) — only the former's plain accesses are findings.
type counters struct {
	hits      int64
	coldStart int64
}

// Inc is the atomic writer that puts hits under the discipline.
func (c *counters) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Read is the matching atomic reader: clean.
func (c *counters) Read() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Peek reads hits without sync/atomic: it can observe a torn value and
// is not ordered against Inc.
func (c *counters) Peek() int64 {
	return c.hits // want: plain read of atomic field
}

// Reset writes hits plainly: the store can be lost under a concurrent
// atomic add.
func (c *counters) Reset() {
	c.hits = 0 // want: plain write of atomic field
}

// Bump increments plainly: a non-atomic read-modify-write.
func (c *counters) Bump() {
	c.hits++ // want: plain increment of atomic field
}

// Leak hands out the field's address to code under no atomic
// discipline at all.
func (c *counters) Leak() *int64 {
	return &c.hits // want: address escape of atomic field
}

// Cold uses coldStart plainly everywhere — no sync/atomic access
// exists, so no discipline applies: clean.
func (c *counters) Cold() int64 {
	c.coldStart++
	return c.coldStart
}
