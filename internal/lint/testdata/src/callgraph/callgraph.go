// Package callgraph is a dvmlint fixture for the call-graph substrate
// (callgraph.go): edge kinds (call/defer/go/dynamic/go-dynamic),
// method values and bound-method expressions, and spawn-parameter
// derivation through variadic function-value arguments. It is driven
// by callgraph_test.go, not by an analyzer golden.
package callgraph

// T carries the method used as a method value and a method expression.
type T struct{ n int }

// Work is resolved dynamically through both binding forms below.
func (t *T) Work() { t.n++ }

func helper() {}

func target() {}

// StaticCall produces a plain call edge.
func StaticCall() { helper() }

// DeferredCall produces a defer edge.
func DeferredCall() { defer helper() }

// GoCall produces a go edge.
func GoCall() { go helper() }

// MethodValue calls through a bound-method value: a dynamic edge to
// every address-taken function of the value's signature, Work included.
func MethodValue(t *T) {
	fv := t.Work
	fv()
}

// MethodExpression calls through a bound-method expression: the
// receiver surfaces as the first parameter, which methodExprMatches
// folds back onto Work's receiver.
func MethodExpression(t *T) {
	f := (*T).Work
	f(t)
}

// GoValue spawns a function value: a go-dynamic edge, and parameter 0
// becomes a spawning parameter.
func GoValue(fn func()) { go fn() }

// SpawnAll ranges over a variadic function-value parameter and spawns
// each element: parameter 0 is spawning through the range derivation.
func SpawnAll(fns ...func()) {
	for _, fn := range fns {
		go fn()
	}
}

// Indirect passes its parameter onward to a spawning parameter: the
// propagation fixpoint marks it spawning too.
func Indirect(fn func()) { SpawnAll(fn) }

// UseSpawnAll keeps the helpers address-taken and gives SpawnAll a
// call site with a folded variadic tail.
func UseSpawnAll() {
	SpawnAll(helper, target)
	Indirect(helper)
	GoValue(target)
}
