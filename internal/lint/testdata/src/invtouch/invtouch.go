// Package invtouch is a dvmlint fixture for the invariant-touch
// analyzer. The test configures this package as the core package with
// Blessed = ["Execute", "RefreshView"].
package invtouch

import (
	"dvm/internal/bag"
	"dvm/internal/schema"
	"dvm/internal/storage"
	"dvm/internal/txn"
)

// Execute is blessed (makesafe entry point): mutation allowed.
func Execute(t *storage.Table) {
	t.Clear()
}

// RefreshView is blessed, including inside closures.
func RefreshView(t *storage.Table, b *bag.Bag) {
	apply := func() { t.Replace(b) }
	apply()
}

// Rogue clears a maintained table outside the blessed entry points.
func Rogue(t *storage.Table) {
	t.Clear() // want: Table.Clear outside blessed
}

// RogueReplace swaps table contents outside the blessed entry points.
func RogueReplace(t *storage.Table, b *bag.Bag) {
	t.Replace(b) // want: Table.Replace outside blessed
}

// RogueInsert writes a tuple outside the blessed entry points.
func RogueInsert(t *storage.Table, tu schema.Tuple) error {
	return t.Insert(tu, 1) // want: Table.Insert outside blessed
}

// RogueData mutates live table contents through Data().
func RogueData(t *storage.Table, tu schema.Tuple) {
	t.Data().Add(tu, 1) // want: Bag.Add on table contents outside blessed
}

// RogueAssigns applies algebraic assignments outside the blessed
// entry points.
func RogueAssigns(db *storage.Database, as []txn.Assignment) {
	_ = txn.ApplyAssignments(db, as) // want: ApplyAssignments outside blessed
}

// LocalBag mutates a scratch bag, not table contents: allowed.
func LocalBag(tu schema.Tuple) *bag.Bag {
	b := bag.New()
	b.Add(tu, 1)
	return b
}

// Reader only reads: allowed.
func Reader(t *storage.Table) int {
	return t.Len()
}
