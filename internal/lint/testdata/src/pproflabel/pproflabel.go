// Package pproflabel is a dvmlint fixture for the pprof-label
// analyzer: a function that opens a maintenance entry span
// (startEntrySpan) must also install the profiling labels via
// obs.StartRegion or obs.SetPhaseLabels, so CPU samples attribute to a
// view/phase.
package pproflabel

import (
	"dvm/internal/obs"
	"dvm/internal/obs/trace"
)

// Manager mimics the core manager: entry points open spans through its
// startEntrySpan marker method.
type Manager struct {
	tracer *trace.Tracer
	acct   *obs.PhaseAcct
}

// startEntrySpan is the entry-point marker the analyzer keys on.
func (m *Manager) startEntrySpan(name string) *trace.Span {
	tr := m.tracer.StartTrace(name)
	if tr == nil {
		return nil
	}
	return tr
}

// PropagateUnlabeled opens the entry span but never installs labels:
// its CPU samples are unattributable.
func (m *Manager) PropagateUnlabeled() {
	sp := m.startEntrySpan("core.propagate") // want: unlabeled
	defer sp.End()
}

// RefreshLabeled is the canonical shape: span plus labeled region.
func (m *Manager) RefreshLabeled() {
	sp := m.startEntrySpan("core.refresh")
	defer sp.End()
	rg := obs.StartRegion(m.acct, "hv", "", obs.PhaseRefresh)
	defer rg.End()
}

// ExecuteRawLabels uses the lower-level label call; that is fine too.
func (m *Manager) ExecuteRawLabels() {
	sp := m.startEntrySpan("core.execute")
	defer sp.End()
	restore := obs.SetPhaseLabels("", "", obs.PhaseMakesafe)
	defer restore()
}

// helperNoSpan never opens an entry span, so no labels are required.
func (m *Manager) helperNoSpan() {
	rg := obs.StartRegion(nil, "hv", "s00", obs.PhasePropagate)
	rg.End()
}
