// Package maporder is a dvmlint fixture for the
// nondeterministic-iteration analyzer. The test adds this package to
// the ordered-output scope.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"dvm/internal/bag"
	"dvm/internal/schema"
)

// Render streams map entries in iteration order.
func Render(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m { // want: map feeds ordered output
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return sb.String()
}

// Keys collects then sorts: the canonical safe idiom.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Unsorted returns map keys in iteration order.
func Unsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want: append without a sort
		out = append(out, k)
	}
	return out
}

// Total folds commutatively; no ordered sink, no finding.
func Total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// SliceLoop iterates a slice; order is deterministic.
func SliceLoop(xs []string) string {
	var sb strings.Builder
	for _, x := range xs {
		sb.WriteString(x)
	}
	return sb.String()
}

// Dump streams bag contents in unspecified Each order.
func Dump(b *bag.Bag) string {
	var sb strings.Builder
	b.Each(func(t schema.Tuple, n int) { // want: bag.Each feeds ordered output
		sb.WriteString(t.String())
	})
	return sb.String()
}

// DumpOrdered uses the deterministic iterator.
func DumpOrdered(b *bag.Bag) string {
	var sb strings.Builder
	b.EachOrdered(func(t schema.Tuple, n int) {
		sb.WriteString(t.String())
	})
	return sb.String()
}
