// Package lockedctx is a dvmlint fixture for the locked-contract
// analyzer. The test configures this package as the core package, so
// its *Locked functions carry the caller-must-hold-locks contract.
package lockedctx

import "dvm/internal/txn"

// applyLocked declares (by suffix) that its caller holds table locks.
func applyLocked() {}

// Unlocked calls the helper with no lock provable on any path.
func Unlocked() {
	applyLocked() // want: no lock provably held
}

// UnderLock calls the helper from inside a WithWrite closure, and
// delegates to a plain helper whose every call site is locked.
func UnderLock(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		applyLocked()
		alwaysUnderLock()
		return nil
	})
}

// alwaysUnderLock has no Locked suffix, but dataflow proves every call
// site holds a lock, so its *Locked call is clean — the interprocedural
// improvement over the old lexical heuristic.
func alwaysUnderLock() {
	applyLocked()
}

// chainLocked is itself *Locked: its body holds the locks by contract.
func chainLocked() {
	applyLocked()
}

// sharedHelper is called both with and without locks, so the
// *Locked call inside it is not provably safe.
func sharedHelper() {
	applyLocked() // want: reachable from an unlocked call site
}

// Mixed provides sharedHelper's unlocked and locked call sites.
func Mixed(lm *txn.LockManager) error {
	sharedHelper()
	return lm.WithRead([]string{"mv_a"}, func() error {
		sharedHelper()
		return nil
	})
}

// Entry gives chainLocked a properly locked call site.
func Entry(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"mv_a"}, func() error {
		chainLocked()
		return nil
	})
}
