// Package dataflow is the fixture for ssa_test.go and
// dataflow_test.go: small functions whose CFG shape, def-use chains,
// and forward-analysis facts the tests pin down — branch joins,
// loops, defer ordering, closure captures, variadic and range cases.
package dataflow

import "os"

// BranchJoin assigns x on one arm only: the join at the return must
// union nil and non-nil.
func BranchJoin(b bool) *int {
	var x *int
	if b {
		x = new(int)
	}
	return x
}

// Guarded refines x to non-nil inside the guard.
func Guarded(x *int) int {
	if x != nil {
		return *x
	}
	return 0
}

// Loop rebinds p in the body: the back edge must re-propagate facts
// until the head stabilizes on the union of nil (zero iterations) and
// non-nil (the body ran).
func Loop(n int) *int {
	var p *int
	for i := 0; i < n; i++ {
		p = new(int)
	}
	return p
}

// DeferOrder has no explicit return: the CFG must synthesize one so
// every normal exit is a ReturnStmt, with both defers upstream of it.
func DeferOrder(f func()) {
	defer f()
	defer f()
	f()
}

// Capture writes y from a closure: def-use must mark y escaped.
func Capture() int {
	y := 1
	inc := func() { y++ }
	inc()
	return y
}

// AddrTaken leaks z's address: def-use must mark z escaped.
func AddrTaken() int {
	z := 2
	p := &z
	*p = 3
	return z
}

// Plain never escapes its locals.
func Plain(a int) int {
	b := a + 1
	c := b * 2
	return c
}

// Variadic ranges over its variadic tail.
func Variadic(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// RangeNil refines the ranged-out element before dereferencing it.
func RangeNil(ps []*int) int {
	s := 0
	for _, p := range ps {
		if p != nil {
			s += *p
		}
	}
	return s
}

// Terminates ends one branch in panic and another in os.Exit: neither
// block may have successors.
func Terminates(b bool) int {
	if b {
		panic("no")
	}
	if !b {
		os.Exit(2)
	}
	return 1
}

// SwitchFacts proves tagless-switch edges are branch-sensitive.
func SwitchFacts(p *int) int {
	switch {
	case p == nil:
		return 0
	default:
		return *p
	}
}

// Conds enumerates the guard shapes nilCompare must decompose.
func Conds(p *int, q *int, b bool) int {
	if p == nil {
		return 0
	}
	if nil != q {
		return 1
	}
	if !(p != nil) {
		return 2
	}
	if b {
		return 3
	}
	if p == q {
		return 4
	}
	return 5
}
