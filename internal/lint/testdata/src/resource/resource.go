// Package resource is a dvmlint fixture for the resource-lifecycle
// analyzer: contract-paired acquisitions (files, tickers, gzip
// streams, the runtimebridge poller) must be closed on every path out
// of the acquiring function, with escapes transferring the obligation
// and error-paired constructors owing nothing on their failure branch.
package resource

import (
	"compress/gzip"
	"io"
	"os"
	"time"

	rb "dvm/internal/lint/testdata/src/resource/runtimebridge"
)

// LeakOnErrorPath leaks f when stamp fails: the early error return
// skips the close at the bottom.
func LeakOnErrorPath(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err // clean: the paired error is non-nil, nothing opened
	}
	if err := stamp(f); err != nil {
		return err // want resource-lifecycle
	}
	return f.Close()
}

// ProfileShape mirrors the dvmbench leak this analyzer caught in the
// real tree: passing f to a starter BORROWS the handle, so the error
// path still owns the close.
func ProfileShape(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := start(f); err != nil {
		return err // want resource-lifecycle: start borrowed f, we still own it
	}
	stop()
	return f.Close()
}

// CloseFold is clean: the fold idiom closes on every path.
func CloseFold(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// DeferClose is clean: the deferred close covers every return.
func DeferClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return scan(f)
}

// DeferredLiteralClose is clean: the closer runs inside a deferred
// cleanup literal.
func DeferredLiteralClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			_ = cerr
		}
	}()
	_, err = f.WriteString("x")
	return err
}

// EscapeReturn is clean: returning f transfers the obligation to the
// caller.
func EscapeReturn(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// EscapeStruct is clean: storing f in a composite moves ownership to
// the structure.
func EscapeStruct(path string) (*holder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

type holder struct{ f *os.File }

// HandedOff transfers f to a goroutine by argument — a borrow to the
// analyzer, an intentional ownership transfer to the author, so the
// finding is suppressed with a reason.
func HandedOff(path string, serve func(*os.File)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	go serve(f)
	//dvmlint:ignore resource-lifecycle the serve goroutine owns f and closes it on shutdown
	return nil
}

// TickerLeak returns the channel but loses the ticker: nobody can
// ever stop it.
func TickerLeak(d time.Duration) <-chan time.Time {
	t := time.NewTicker(d)
	return t.C // want resource-lifecycle
}

// TickerStopped is clean: NewTicker has no paired error, defer Stop
// covers the exit.
func TickerStopped(d time.Duration, work func()) {
	t := time.NewTicker(d)
	defer t.Stop()
	<-t.C
	work()
}

// GzipPaired is clean: error-paired reader, fold close.
func GzipPaired(r io.Reader) ([]byte, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	data, rerr := io.ReadAll(zr)
	if cerr := zr.Close(); rerr == nil {
		rerr = cerr
	}
	return data, rerr
}

// GzipWriterLeak forgets the writer on the early error return.
func GzipWriterLeak(w io.Writer, data []byte) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(data); err != nil {
		return err // want resource-lifecycle
	}
	return zw.Close()
}

// PollerLeak leaks the cfg-relative contract resource (the
// runtimebridge poller) on the file-open failure path; the file
// itself is error-paired and owes nothing there.
func PollerLeak(path string) error {
	p := rb.New()
	f, err := os.Create(path)
	if err != nil {
		return err // want resource-lifecycle: p leaks
	}
	_ = f.Close()
	p.Close()
	return nil
}

func stamp(f *os.File) error {
	_, err := f.WriteString("stamp")
	return err
}

func start(f *os.File) error {
	_, err := f.WriteString("header")
	return err
}

func stop() {}

func scan(f *os.File) error {
	buf := make([]byte, 16)
	_, err := f.Read(buf)
	return err
}
