// Package runtimebridge is the fixture stand-in for the repo's
// runtime-metrics poller (the Config.ObsPkg + "/runtimebridge"
// contract row): New acquires a poller, Close releases it.
package runtimebridge

// Poller is the fixture poller handle.
type Poller struct{ done chan struct{} }

// New starts a poller the caller must Close.
func New() *Poller { return &Poller{done: make(chan struct{})} }

// Close stops the poller.
func (p *Poller) Close() { close(p.done) }
