// Package bagmut is a dvmlint fixture for the bag-mutation analyzer.
package bagmut

import (
	"dvm/internal/bag"
	"dvm/internal/schema"
)

// Leak mutates a bag parameter without an in-place marker.
func Leak(b *bag.Bag, t schema.Tuple) {
	b.Add(t, 1) // want: mutation of parameter
}

// Drain clears a bag parameter without a marker.
func Drain(b *bag.Bag) {
	b.Clear() // want: mutation of parameter
}

// ApplyDelta carries the Apply marker: in-place mutation is declared.
func ApplyDelta(b, d *bag.Bag) {
	b.AddBag(d)
}

// FoldInPlace carries the InPlace marker.
func FoldInPlace(b *bag.Bag, t schema.Tuple) {
	b.Remove(t, 1)
}

// Sum only reads its parameter.
func Sum(b *bag.Bag) int {
	return b.Len()
}

// Build mutates a local bag, which is fine.
func Build(t schema.Tuple) *bag.Bag {
	out := bag.New()
	out.Add(t, 2)
	return out
}

// CloneAndGrow mutates a clone, not the parameter.
func CloneAndGrow(b *bag.Bag, t schema.Tuple) *bag.Bag {
	c := b.Clone()
	c.Add(t, 1)
	return c
}
