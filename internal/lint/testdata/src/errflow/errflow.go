// Package errflow is a dvmlint fixture for the error-flow analyzer:
// blank discards of Write/Sync/Flush/Close errors on persistence
// paths, and the branch-sensitive already-failing-path exemption.
package errflow

import (
	"os"
	"strings"
)

// DiscardClose blank-discards a Close error on a clean path.
func DiscardClose(f *os.File) {
	_ = f.Close() // want: error-flow
}

// DiscardWrite blank-discards a Write error (two results).
func DiscardWrite(f *os.File, b []byte) {
	_, _ = f.Write(b) // want: error-flow
}

// DiscardSync blank-discards a Sync error.
func DiscardSync(f *os.File) {
	_ = f.Sync() // want: error-flow
}

// CleanupExempt discards the Close error only after the write already
// failed: the in-flight error is the one that matters.
func CleanupExempt(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		_ = f.Close() // exempt: err is non-nil on this path
		return err
	}
	return f.Close()
}

// CleanupExemptCapture shows the exemption working on an error
// variable the branch merely refines (a parameter, no local binding).
func CleanupExemptCapture(f *os.File, err error) error {
	if err != nil {
		_ = f.Close() // exempt: cleanup under the caller's failure
		return err
	}
	return f.Close()
}

// WrongBranch discards on the SUCCESS branch, where the error is
// provably nil and the Close error is the only signal left.
func WrongBranch(f *os.File, b []byte) error {
	if _, err := f.Write(b); err == nil {
		_ = f.Close() // want: error-flow (err is nil here)
		return nil
	}
	return f.Close()
}

// DeferredDiscard hides the discard inside a deferred cleanup literal
// — dropped-error's blind spot, flagged here.
func DeferredDiscard(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		_ = f.Close() // want: error-flow
	}()
	_, err = f.Write([]byte("x"))
	return err
}

// FoldIdiom is the sanctioned shape: the close error folds into the
// return value.
func FoldIdiom(f *os.File, b []byte) error {
	_, werr := f.Write(b)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// BuilderExempt discards a strings.Builder error, unobservable by
// construction.
func BuilderExempt(sb *strings.Builder) {
	_, _ = sb.WriteString("x")
	_, _ = sb.Write([]byte("y"))
}

// SaveShape mirrors the dvmsh save path: a closure, flag-gated, with
// terminating exits.
func SaveShape(save string, saveTo func(*os.File) error) func(int) {
	return func(code int) {
		if save != "" {
			f, err := os.Create(save)
			if err != nil {
				os.Exit(1)
			}
			if err := saveTo(f); err != nil {
				_ = f.Close() // exempt: save already failed
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				os.Exit(1)
			}
		}
		os.Exit(code)
	}
}

// SaveShapeFlat is SaveShape without the closure.
func SaveShapeFlat(save string, saveTo func(*os.File) error) {
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			os.Exit(1)
		}
		if err := saveTo(f); err != nil {
			_ = f.Close() // exempt: save already failed
			os.Exit(1)
		}
	}
}

// SaveShapeNoExit is SaveShape with returns instead of exits.
func SaveShapeNoExit(save string, saveTo func(*os.File) error) {
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return
		}
		if err := saveTo(f); err != nil {
			_ = f.Close() // exempt: save already failed
			return
		}
	}
}
