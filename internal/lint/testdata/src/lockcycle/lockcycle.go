// Package lockcycle is a dvmlint fixture for the lock-order analyzer:
// a seeded two-lock deadlock cycle split across helper functions, a
// non-reentrant self-reacquisition, and a clean sorted-order nesting.
package lockcycle

import "dvm/internal/txn"

// LockAlphaThenBeta holds alpha while a helper acquires beta.
func LockAlphaThenBeta(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"alpha"}, func() error {
		return acquireBeta(lm)
	})
}

// acquireBeta takes beta; reached with alpha held, this is the
// alpha -> beta half of the cycle.
func acquireBeta(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"beta"}, func() error { return nil }) // want: cycle edge
}

// LockBetaThenAlpha holds beta while a helper acquires alpha — the
// opposing order.
func LockBetaThenAlpha(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"beta"}, func() error {
		return acquireAlpha(lm)
	})
}

// acquireAlpha takes alpha; reached with beta held, this both inverts
// the sorted order and closes the cycle.
func acquireAlpha(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"alpha"}, func() error { return nil }) // want: inversion + cycle edge
}

// Reacquire takes gamma while already holding it: LockManager mutexes
// are not reentrant, so this deadlocks on itself.
func Reacquire(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"gamma"}, func() error {
		return lm.WithRead([]string{"gamma"}, func() error { return nil }) // want: self-reacquisition
	})
}

// NestedSorted nests acquisitions in sorted order with no opposing
// path: clean.
func NestedSorted(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"t1"}, func() error {
		return lm.WithWrite([]string{"t2"}, func() error { return nil })
	})
}
