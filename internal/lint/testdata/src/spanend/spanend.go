// Package spanend is a dvmlint fixture for the span-discipline
// analyzer: every *trace.Span produced by a Start* call must be ended
// on all paths or escape to a new owner.
package spanend

import "dvm/internal/obs/trace"

// Discarded drops the span on the floor: the trace never finishes.
func Discarded(t *trace.Tracer) {
	t.StartTrace("root") // want: discarded
}

// Blank assigns the span to _, which is the same thing in disguise.
func Blank(t *trace.Tracer) {
	_ = t.StartTrace("root") // want: blank
}

// NeverEnded binds the span but no path ever ends it.
func NeverEnded(t *trace.Tracer) {
	sp := t.StartTrace("root") // want: never ended
	sp.SetAttrs(trace.Str("view", "hv"))
}

// EarlyReturn ends the span on the fall-through path only; the error
// path returns with the span still open.
func EarlyReturn(t *trace.Tracer, fail bool) error {
	sp := t.StartTrace("root")
	if fail {
		return errFail // want: return before End
	}
	sp.End()
	return nil
}

// DeferEnd is the canonical shape: the span ends on every path.
func DeferEnd(t *trace.Tracer, fail bool) error {
	sp := t.StartTrace("root")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

// DeferLit ends the span inside a deferred function literal
// (the refresh transactions' EndExplicit pattern).
func DeferLit(t *trace.Tracer) {
	sp := t.StartTrace("root")
	defer func() { sp.EndExplicit(42) }()
}

// Linear ends the span before any return.
func Linear(t *trace.Tracer) error {
	sp := t.StartTrace("root")
	sp.SetExclusive()
	sp.End()
	return nil
}

// Returned hands the span to the caller, who inherits the obligation.
func Returned(t *trace.Tracer) *trace.Span {
	return t.StartTrace("root")
}

// Escapes passes the span to another function, which now owns it.
func Escapes(t *trace.Tracer) {
	sp := t.StartTrace("root")
	finish(sp)
}

// MultiValue mirrors the core package's startDowntimeSpan shape: a
// lower-case start helper returning a span among other results. The
// bound span is never ended.
func MultiValue(t *trace.Tracer) int {
	sp, n := startPair(t) // want: never ended
	sp.SetAttrs(trace.Int("n", int64(n)))
	return n
}

// MultiValueOK ends the span from the same multi-value shape.
func MultiValueOK(t *trace.Tracer) int {
	sp, n := startPair(t)
	defer sp.End()
	return n
}

// startPair is a multi-result start helper (span at index 0).
func startPair(t *trace.Tracer) (*trace.Span, int) {
	return t.StartTrace("pair"), 7
}

func finish(sp *trace.Span) { sp.End() }

var errFail = errorString("fail")

type errorString string

func (e errorString) Error() string { return string(e) }
