// Package droperr is a dvmlint fixture for the dropped-error analyzer
// and the suppression syntax.
package droperr

import (
	"fmt"
	"os"
	"strings"
)

// Sloppy discards the error from Close.
func Sloppy(f *os.File) {
	f.Close() // want: dropped error
}

// Deferred discards the error from a deferred Close.
func Deferred(f *os.File) {
	defer f.Close() // want: dropped error
}

// Explicit discards are visible in review and allowed.
func Explicit(f *os.File) {
	_ = f.Close()
}

// Handled checks the error.
func Handled(f *os.File) error {
	return f.Close()
}

// Printing is exempt: the fmt family's errors are conventionally
// unobservable, as are strings.Builder's.
func Printing() string {
	fmt.Println("hello")
	var sb strings.Builder
	sb.WriteString("x")
	return sb.String()
}

// Suppressed carries a reasoned suppression: no finding.
func Suppressed(f *os.File) {
	//dvmlint:ignore dropped-error close error on a read-only handle is unobservable
	f.Close()
}

// BadSuppression has no reason: the suppression itself is reported AND
// does not suppress.
func BadSuppression(f *os.File) {
	//dvmlint:ignore dropped-error
	f.Close() // want: dropped error (suppression invalid)
}

// UnknownCheck names a check that does not exist.
func UnknownCheck(f *os.File) error {
	//dvmlint:ignore no-such-check because I said so
	return f.Close()
}

// Stale carries a suppression that matches no finding: the suppression
// itself is reported as stale.
func Stale(f *os.File) {
	//dvmlint:ignore dropped-error the discard below is already explicit
	_ = f.Close() // want: stale suppression
}
