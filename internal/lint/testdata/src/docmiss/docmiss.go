// Package docmiss is the doc-comment analyzer fixture: a mix of
// documented and undocumented exported identifiers.
package docmiss

// MaxRetries is documented; no finding.
const MaxRetries = 3

const DefaultTimeout = 30 // trailing comment counts as documentation

const BareLimit = 100

// Grouped constants: the block doc covers the members.
const (
	ModeFast = iota
	ModeSlow
)

var Undocumented = 1

// Documented has a doc comment; no finding.
var Documented = 2

type Widget struct{}

// Gadget is documented.
type Gadget struct{}

func Exported() {}

// ExportedDocumented is documented; no finding.
func ExportedDocumented() {}

func unexported() {}

func (Widget) Spin() {}

// Turn is documented; no finding.
func (Gadget) Turn() {}

type hidden struct{}

func (hidden) Wobble() {}

var _ = unexported
