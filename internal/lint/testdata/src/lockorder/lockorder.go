// Package lockorder is a dvmlint fixture for the lock-discipline
// analyzer (sorted, duplicate-free lock-set literals).
package lockorder

import "dvm/internal/txn"

// Bad lists tables out of sorted order.
func Bad(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"beta", "alpha"}, func() error { return nil }) // want: unsorted
}

// Dup repeats a table.
func Dup(lm *txn.LockManager) error {
	return lm.WithWrite([]string{"mv_a", "mv_a"}, func() error { return nil }) // want: duplicate
}

// Good lists tables in sorted order.
func Good(lm *txn.LockManager) error {
	return lm.WithRead([]string{"alpha", "beta", "gamma"}, func() error { return nil })
}

// Dynamic lock sets are sorted at runtime; not checked.
func Dynamic(lm *txn.LockManager, tables []string) error {
	return lm.WithWrite(tables, func() error { return nil })
}
