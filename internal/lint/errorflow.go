package lint

import (
	"go/ast"
	"go/types"
)

// analyzerErrorFlow closes dropped-error's two blind spots on the
// persistence path. dropped-error flags a call whose error vanishes in
// an expression statement, but deliberately allows `_ = f()` — the
// discard is visible in review. For most calls that is the right
// contract; for Write, Sync, Flush, and Close on a handle that just
// carried engine state to disk it is not: a snapshot whose Close error
// is blank-discarded can be silently truncated, and the recovery path
// (ROADMAP item 3) would restore a corrupt warehouse without any
// transaction having failed. So error-flow flags blank discards
// (`_ = ...`, `_, _ = ...`) of error-returning Write/Sync/Flush/Close
// METHOD calls everywhere, including inside deferred cleanup literals.
//
// One discard shape stays legal, and the dataflow layer is what makes
// it recognizable: cleanup on a path where an error is already in
// flight. In
//
//	if err := engine.SaveTo(f); err != nil {
//		_ = f.Close() // the snapshot is already broken
//		return err
//	}
//
// the Close error has nowhere useful to go — the save error is the one
// that matters — so a blank discard on a branch where some error
// variable is known non-nil (branch-sensitive facts from the CFG's
// refined edges) is exempt. Receivers whose errors are unobservable by
// construction (strings.Builder, bytes.Buffer) are exempt the same way
// dropped-error exempts them.
var analyzerErrorFlow = &Analyzer{
	Name: "error-flow",
	Doc:  "Write/Sync/Flush/Close errors on persistence paths must propagate; blank discards are cleanup-only",
	Run:  runErrorFlow,
}

// Nil-state lattice bits, shared with nilness: which values an object
// may hold at a program point.
const (
	nIsNil  fact = 1 << iota // may be nil
	nNonNil                  // may be non-nil
)

// persistMethods are the method names whose errors must flow.
var persistMethods = map[string]bool{
	"Write": true,
	"Sync":  true,
	"Flush": true,
	"Close": true,
}

func runErrorFlow(p *Pass) {
	eachScope(p, func(body *ast.BlockStmt, cfg *funcCFG) {
		ef := &errorFlow{p: p}
		runForward(cfg, ef, func(n ast.Node, facts flowFacts) {
			ef.checkDiscard(n, facts)
		})
	})
}

// errorFlow tracks the nil-state of local error variables so the
// check can recognize already-failing branches.
type errorFlow struct {
	p *Pass
}

func (ef *errorFlow) transfer(n ast.Node, facts flowFacts) {
	info := ef.p.Pkg.Info
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for i, lhs := range as.Lhs {
		obj := localObj(info, lhs)
		if obj == nil || !types.Identical(obj.Type(), errType) {
			continue
		}
		if len(as.Lhs) == len(as.Rhs) && isNilIdent(info, as.Rhs[i]) {
			facts[obj] = nIsNil
		} else {
			facts[obj] = nIsNil | nNonNil
		}
	}
}

func (ef *errorFlow) refine(cond ast.Expr, truth bool, facts flowFacts) {
	obj, isNil, ok := nilCompare(ef.p.Pkg.Info, cond)
	if !ok || obj == nil || !types.Identical(obj.Type(), errType) {
		return
	}
	mask := nNonNil
	if (truth && isNil) || (!truth && !isNil) {
		mask = nIsNil
	}
	v, tracked := facts[obj]
	if !tracked {
		// First evidence about this variable (a parameter, or a capture
		// from the enclosing scope): the comparison itself is the fact.
		facts[obj] = mask
		return
	}
	if v&mask == 0 {
		// The edge is infeasible under current facts; keep the mask so
		// the branch body is still judged under its guard.
		facts[obj] = mask
		return
	}
	facts[obj] = v & mask
}

// checkDiscard flags a blank discard of a persistence-method error,
// unless an error is already in flight on every path into it or the
// receiver's errors are unobservable.
func (ef *errorFlow) checkDiscard(n ast.Node, facts flowFacts) {
	info := ef.p.Pkg.Info
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return
	}
	for _, lhs := range as.Lhs {
		id, isID := ast.Unparen(lhs).(*ast.Ident)
		if !isID || id.Name != "_" {
			return
		}
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	f := CalleeOf(info, call)
	if f == nil || !persistMethods[f.Name()] {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	t := ef.p.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	if errorExempt(f) {
		return
	}
	for obj, v := range facts {
		if v == nNonNil && types.Identical(obj.Type(), errType) {
			return // cleanup under an already-failed operation
		}
	}
	recv := "receiver"
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
			recv = id.Name
		}
	}
	ef.p.Reportf(as.Pos(),
		"error from %s.%s is blank-discarded on a persistence path; propagate it, fold it into the return value, or record it (only cleanup on an already-failing path may discard)",
		recv, f.Name())
}
