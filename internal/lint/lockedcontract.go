package lint

// analyzerLockedContract enforces the *Locked rename contract of the
// core package interprocedurally: a core function whose name ends in
// "Locked" (refreshFromLogLocked, applyDiffTablesLocked, …) documents
// "the caller already holds the table locks". Using the lock-state
// fixpoint of lockstate.go, every static call site of such a function
// must sit in a provably locked context — inside a closure passed to
// txn.LockManager's WithWrite/WithRead (incl. *Span variants), or in a
// function all of whose known call sites are themselves locked. This
// replaces the old lexical suffix heuristic of lock-discipline: a
// helper that is only ever invoked from under a lock may now call
// *Locked functions without itself carrying the suffix, while a
// *Locked call reachable from any unlocked path is flagged.
var analyzerLockedContract = &Analyzer{
	Name: "locked-contract",
	Doc:  "core *Locked helpers reachable only from call sites where dataflow proves a lock is held",
	Run:  runLockedContract,
}

func runLockedContract(p *Pass) {
	res := p.Unit.lockAnalysis()
	for _, f := range res.contract {
		if f.pkg == p.Pkg {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
}
