package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerMapIteration flags nondeterministic iteration feeding ordered
// output in packages where ordering is observable: report rendering,
// SQL result sets, binary snapshots, and delta computation. Go map
// iteration order is deliberately randomized, so a map range (or a
// bag.Each callback — bags are maps of tuples) whose body appends to a
// slice or writes to a stream produces output that differs run to run,
// which breaks golden tests, snapshot diffing, and replay-based
// experiments (EXPERIMENTS.md). A loop is exempt if the enclosing
// function sorts after the loop (the collect-then-sort idiom).
var analyzerMapIteration = &Analyzer{
	Name: "nondeterministic-iteration",
	Doc:  "map/bag.Each iteration must not feed ordered output without a sort",
	Run:  runMapIteration,
}

func runMapIteration(p *Pass) {
	scoped := false
	for _, pkg := range p.Cfg.OrderedPkgs {
		if p.Pkg.Path == pkg {
			scoped = true
		}
	}
	if !scoped {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sortPositions := collectSortCalls(info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					t := p.TypeOf(n.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					p.checkUnorderedBody(n.Body, n.Pos(), n.End(), sortPositions,
						"map iteration order is nondeterministic")
				case *ast.CallExpr:
					// b.Each(func(t, n) {...}) — bag iteration order is
					// unspecified (bags are maps of tuples).
					f := CalleeOf(info, n)
					if f != nil && f.Name() == "Each" && isMethodOn(f, p.Cfg.BagPkg, "Bag") && len(n.Args) == 1 {
						if fl, ok := n.Args[0].(*ast.FuncLit); ok {
							p.checkUnorderedBody(fl.Body, n.Pos(), n.End(), sortPositions,
								"bag.Each iteration order is nondeterministic (use EachOrdered)")
						}
					}
				}
				return true
			})
		}
	}
}

// collectSortCalls records the positions of calls into package sort (or
// slices.Sort*) within body.
func collectSortCalls(info *types.Info, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := CalleeOf(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if f.Pkg().Path() == "sort" || (f.Pkg().Path() == "slices" && strings.HasPrefix(f.Name(), "Sort")) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// checkUnorderedBody reports if body contains an ordered sink: an
// append, or a call whose name says it writes/prints to a stream. The
// append sink is forgiven when the function sorts after the loop.
func (p *Pass) checkUnorderedBody(body *ast.BlockStmt, loopPos, loopEnd token.Pos, sortPositions []token.Pos, what string) {
	info := p.Pkg.Info
	var sink ast.Node
	var sinkKind string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn.Name == "append" {
				if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin {
					sink, sinkKind = call, "append"
					return false
				}
			}
			if isWriterName(fn.Name) {
				sink, sinkKind = call, "write"
				return false
			}
		case *ast.SelectorExpr:
			if isWriterName(fn.Sel.Name) {
				sink, sinkKind = call, "write"
				return false
			}
		}
		return true
	})
	if sink == nil {
		return
	}
	if sinkKind == "append" {
		for _, sp := range sortPositions {
			if sp > loopEnd {
				return // collect-then-sort idiom
			}
		}
	}
	p.Reportf(loopPos, "%s but the loop feeds ordered output (%s); iterate a sorted copy or sort the result",
		what, sinkKind)
}

// isWriterName matches function/method names that emit to an
// order-sensitive stream: Write*, Print*, Fprint*, write*, print*.
func isWriterName(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "write") || strings.HasPrefix(l, "print") || strings.HasPrefix(l, "fprint")
}
