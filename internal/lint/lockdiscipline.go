package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// analyzerLockDiscipline enforces the source-level half of the
// deadlock-freedom discipline of txn.LockManager (the invariant behind
// "view downtime" measurement, paper Section 1.1/Figure 3 refresh
// transactions): multi-table WithWrite/WithRead call sites whose table
// list is a literal of string constants must list the tables in sorted
// order with no duplicates. The manager sorts at runtime, but a
// mis-ordered literal is how a future "optimized" direct-locking path
// inherits a deadlock, so the source convention is enforced.
//
// The caller-side *Locked contract this analyzer used to check with a
// lexical heuristic is now enforced interprocedurally by
// locked-contract (lockedcontract.go), and cross-call-path acquisition
// ordering by lock-order (lockorder.go).
var analyzerLockDiscipline = &Analyzer{
	Name: "lock-discipline",
	Doc:  "LockManager lock-set literals sorted and duplicate-free at call sites",
	Run:  runLockDiscipline,
}

func isLockAcquire(f *types.Func, txnPkg string) bool {
	if f == nil {
		return false
	}
	// WithWrite/WithRead plus their span-threading variants
	// (WithWriteSpan/WithReadSpan) all acquire under sorted order.
	if !strings.HasPrefix(f.Name(), "WithWrite") && !strings.HasPrefix(f.Name(), "WithRead") {
		return false
	}
	return isMethodOn(f, txnPkg, "LockManager")
}

func runLockDiscipline(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isLockAcquire(CalleeOf(info, call), p.Cfg.TxnPkg) {
				p.checkSortedTables(call)
			}
			return true
		})
	}
}

// checkSortedTables validates a []string{...} literal first argument.
func (p *Pass) checkSortedTables(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		return
	}
	vals := make([]string, 0, len(lit.Elts))
	for _, elt := range lit.Elts {
		tv, ok := p.Pkg.Info.Types[elt]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return // any dynamic element: runtime sorting is authoritative
		}
		vals = append(vals, constant.StringVal(tv.Value))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] == vals[i-1] {
			p.Reportf(lit.Elts[i].Pos(), "duplicate table %q in lock set", vals[i])
			return
		}
		if vals[i] < vals[i-1] {
			p.Reportf(lit.Elts[i].Pos(),
				"lock set not in sorted order: %q after %q (sorted acquisition is the deadlock-freedom invariant)",
				vals[i], vals[i-1])
			return
		}
	}
}
