package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// analyzerLockDiscipline enforces the deadlock-freedom discipline of
// txn.LockManager (the invariant behind "view downtime" measurement,
// paper Section 1.1/Figure 3 refresh transactions):
//
//  1. Multi-table WithWrite/WithRead call sites whose table list is a
//     literal of string constants must list the tables in sorted order
//     with no duplicates. The manager sorts at runtime, but a
//     mis-ordered literal is how a future "optimized" direct-locking
//     path inherits a deadlock, so the source convention is enforced.
//  2. Functions in the core package whose name ends in "Locked"
//     declare "caller must hold the relevant table locks". They may
//     only be called from inside a function literal passed to
//     WithWrite/WithRead, or from another *Locked function.
var analyzerLockDiscipline = &Analyzer{
	Name: "lock-discipline",
	Doc:  "LockManager tables sorted at literal call sites; *Locked helpers called only under locks",
	Run:  runLockDiscipline,
}

func isLockAcquire(f *types.Func, txnPkg string) bool {
	if f == nil {
		return false
	}
	// WithWrite/WithRead plus their span-threading variants
	// (WithWriteSpan/WithReadSpan) all acquire under sorted order.
	if !strings.HasPrefix(f.Name(), "WithWrite") && !strings.HasPrefix(f.Name(), "WithRead") {
		return false
	}
	return isMethodOn(f, txnPkg, "LockManager")
}

func runLockDiscipline(p *Pass) {
	info := p.Pkg.Info

	// lockedLits: function literals passed to WithWrite/WithRead.
	lockedLits := map[*ast.FuncLit]bool{}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isLockAcquire(CalleeOf(info, call), p.Cfg.TxnPkg) {
				return true
			}
			p.checkSortedTables(call)
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					lockedLits[fl] = true
				}
			}
			return true
		})
	}

	// Calls to core *Locked helpers must occur in a locked context.
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			callerLocked := strings.HasSuffix(fd.Name.Name, "Locked")
			var walk func(n ast.Node, locked bool)
			walk = func(n ast.Node, locked bool) {
				ast.Inspect(n, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.FuncLit:
						if m != n { // recurse with updated context
							walk(m.Body, locked || lockedLits[m])
							return false
						}
					case *ast.CallExpr:
						f := CalleeOf(info, m)
						if f != nil && strings.HasSuffix(f.Name(), "Locked") &&
							f.Pkg() != nil && f.Pkg().Path() == p.Cfg.CorePkg && !locked {
							p.Reportf(m.Pos(),
								"%s requires the table locks (name ends in Locked) but is called outside WithWrite/WithRead",
								f.Name())
						}
					}
					return true
				})
			}
			walk(fd.Body, callerLocked)
		}
	}
}

// checkSortedTables validates a []string{...} literal first argument.
func (p *Pass) checkSortedTables(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		return
	}
	vals := make([]string, 0, len(lit.Elts))
	for _, elt := range lit.Elts {
		tv, ok := p.Pkg.Info.Types[elt]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return // any dynamic element: runtime sorting is authoritative
		}
		vals = append(vals, constant.StringVal(tv.Value))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] == vals[i-1] {
			p.Reportf(lit.Elts[i].Pos(), "duplicate table %q in lock set", vals[i])
			return
		}
		if vals[i] < vals[i-1] {
			p.Reportf(lit.Elts[i].Pos(),
				"lock set not in sorted order: %q after %q (sorted acquisition is the deadlock-freedom invariant)",
				vals[i], vals[i-1])
			return
		}
	}
}
