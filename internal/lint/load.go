// Package lint is dvmlint's engine: a standard-library-only static
// analysis framework (go/parser + go/types, no go/packages) plus the
// repo-specific analyzers that machine-check the disciplines the
// paper's correctness argument rests on — invariant preservation
// (Figure 1), deadlock-free lock acquisition, pure bag algebra
// (Section 2.1), and deterministic ordered output.
//
// See docs/static-analysis.md for the analyzer catalogue, the
// invariants each one protects, and the suppression syntax.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "dvm/internal/core"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of a single module. Module
// packages are resolved from the source tree; standard-library imports
// are type-checked from $GOROOT/src through the "source" compiler
// importer, so no build cache or export data is needed.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader locates the module containing dir and returns a loader
// rooted at it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and extracts the
// module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadAll loads every package of the module, skipping testdata,
// hidden, and underscore-prefixed directories. Test files are never
// loaded (analysis targets production code; _test.go exemptions are
// analyzer policy, not loader policy).
func (l *Loader) LoadAll() ([]*Package, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Load parses and type-checks one module package (and, recursively,
// its module-internal imports), returning the cached result on
// repeated calls.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from source through the loader itself; everything else is
// delegated to the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
