package lint

import (
	"go/ast"
	"go/types"
)

// ssa.go is the function-local half of dvmlint's SSA-lite dataflow
// layer: a simplified control-flow graph per function body plus
// def-use chains over the locals it declares. "SSA-lite" because
// values are not renamed — facts stay keyed by *types.Var, the same
// currency the interprocedural layer (callgraph.go, lockstate.go)
// already trades in — but the graph carries the two properties real
// SSA would buy here:
//
//   - branch-sensitive edges: every conditional edge records the
//     condition expression and which way it went, so a forward
//     analysis (dataflow.go) can refine facts per branch — the `if
//     err != nil { return err }` shape that file/WAL resource and
//     nilness reasoning lives on;
//   - deterministic statement order inside blocks, so defers, opens,
//     closes, and derefs are seen in execution order.
//
// The graph is deliberately simplified: one node per simple statement
// (conditions appear both as an in-block node, for their side effects,
// and as the edge guard), loops close with a single back edge, and
// terminating calls (panic, os.Exit, log.Fatal*) end their block with
// no successors — the process dies, so obligations die with it.
// Function literals are NOT inlined: a literal's body is its own CFG
// (built by the analyzer that cares), and the enclosing graph keeps
// the statement containing the literal as an ordinary node.

// cfgEdge is one control transfer. cond is nil for unconditional
// edges; otherwise the edge is taken when cond evaluates to truth.
type cfgEdge struct {
	to    *cfgBlock
	cond  ast.Expr
	truth bool
}

// cfgBlock is one straight-line region: nodes execute in order, then
// control leaves along exactly one of succ.
type cfgBlock struct {
	id    int
	nodes []ast.Node
	succ  []cfgEdge
}

// funcCFG is the simplified control-flow graph of one function body.
// Every path that returns normally ends in a *ast.ReturnStmt node —
// bodies that can fall off the end get a synthesized return (pos at
// the closing brace) — so exit-obligation checks only ever look at
// return nodes.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock // in creation (≈ source) order
}

// cfgBuilder carries the under-construction graph and the loop/label
// context for break and continue resolution.
type cfgBuilder struct {
	cfg   *funcCFG
	cur   *cfgBlock
	loops []loopCtx
}

// loopCtx is one enclosing breakable construct: where break jumps,
// where continue jumps (nil for switch/select, which break but do not
// continue), and the label of the enclosing LabeledStmt, if any.
type loopCtx struct {
	label   string
	breakTo *cfgBlock
	contTo  *cfgBlock
}

// buildCFG builds the simplified CFG of a function body. body may be a
// *ast.BlockStmt (declaration or literal body).
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}}
	b.cfg.exit = b.newBlock() // block 0: the exit
	b.cfg.entry = b.newBlock()
	b.cur = b.cfg.entry
	b.stmtList(body.List, "")
	if b.cur != nil {
		// The body can fall off the end: synthesize the implicit return
		// so exit checks see every normal exit as a ReturnStmt.
		b.append(&ast.ReturnStmt{Return: body.End()})
		b.edge(b.cur, b.cfg.exit, nil, false)
		b.cur = nil
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.cfg.blocks)}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func (b *cfgBuilder) append(n ast.Node) {
	if b.cur != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, truth bool) {
	if from != nil && to != nil {
		from.succ = append(from.succ, cfgEdge{to: to, cond: cond, truth: truth})
	}
}

// stmtList lowers a statement sequence into the graph. label is the
// pending label for the next breakable statement (set by LabeledStmt).
func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	for _, s := range list {
		b.stmt(s, label)
		label = ""
	}
}

// findLoop resolves a break/continue target; empty label means the
// innermost context. cont selects the continue target.
func (b *cfgBuilder) findLoop(label string, cont bool) *cfgBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := b.loops[i]
		if label != "" && lc.label != label {
			continue
		}
		if cont {
			if lc.contTo == nil {
				continue // switch/select: continue belongs to an outer loop
			}
			return lc.contTo
		}
		return lc.breakTo
	}
	return b.cfg.exit // unresolvable (stray goto-like): be conservative
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	if b.cur == nil {
		// Unreachable code after return/branch/terminating call: park it
		// in a fresh predecessor-less block so its nodes still exist (an
		// analyzer walking them sees empty facts).
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.cfg.exit, nil, false)
		b.cur = nil

	case *ast.BranchStmt:
		lbl := ""
		if s.Label != nil {
			lbl = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			b.edge(b.cur, b.findLoop(lbl, false), nil, false)
			b.cur = nil
		case "continue":
			b.edge(b.cur, b.findLoop(lbl, true), nil, false)
			b.cur = nil
		case "goto":
			// Rare and unstructured: treat as leaving the function so no
			// fact flows along an edge we cannot place.
			b.edge(b.cur, b.cfg.exit, nil, false)
			b.cur = nil
		case "fallthrough":
			// Handled by the switch lowering (the case body's natural
			// successor); nothing to do here.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		b.append(s.Cond)
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB, s.Cond, true)
		b.cur = thenB
		b.stmtList(s.Body.List, "")
		b.edge(b.cur, after, nil, false)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB, s.Cond, false)
			b.cur = elseB
			b.stmt(s.Else, "")
			b.edge(b.cur, after, nil, false)
		} else {
			b.edge(head, after, s.Cond, false)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head, nil, false)
		after := b.newBlock()
		body := b.newBlock()
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, head, nil, false)
		}
		contTo := head
		if post != nil {
			contTo = post
		}
		b.cur = head
		if s.Cond != nil {
			b.append(s.Cond)
			b.edge(head, body, s.Cond, true)
			b.edge(head, after, s.Cond, false)
		} else {
			b.edge(head, body, nil, false)
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, contTo: contTo})
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.edge(b.cur, contTo, nil, false)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head, nil, false)
		head.nodes = append(head.nodes, s) // the range header defines Key/Value
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, contTo: head})
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.edge(b.cur, head, nil, false)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		if s.Tag != nil {
			b.append(s.Tag)
		}
		b.lowerSwitch(s.Body.List, s.Tag == nil, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		b.append(s.Assign)
		b.lowerSwitch(s.Body.List, false, label)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, nil, false)
			b.cur = blk
			if cc.Comm != nil {
				b.append(cc.Comm)
			}
			b.stmtList(cc.Body, "")
			b.edge(b.cur, after, nil, false)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.ExprStmt:
		b.append(s)
		if callTerminates(s.X) {
			b.cur = nil
		}

	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.append(s)
	}
}

// lowerSwitch lowers switch/type-switch case clauses. For a tagless
// switch (cond == true), each case expression guards its body edge, so
// `switch { case err != nil: ... }` refines exactly like an if chain;
// tagged and type switches get plain edges. A case body ending in
// fallthrough flows into the next body.
func (b *cfgBuilder) lowerSwitch(clauses []ast.Stmt, tagless bool, label string) {
	head := b.cur
	after := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	sawDefault := false
	chain := head // for tagless switches: where the "no case yet" path is
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			sawDefault = true
		}
		if tagless && len(cc.List) == 1 {
			// Single boolean guard: branch-sensitive edges, chained so the
			// next case sees "this guard was false".
			next := b.newBlock()
			b.edge(chain, bodies[i], cc.List[0], true)
			b.edge(chain, next, cc.List[0], false)
			chain = next
		} else {
			b.edge(chain, bodies[i], nil, false)
		}
	}
	if tagless {
		b.edge(chain, after, nil, false) // no case matched (or default: above)
	} else if !sawDefault {
		b.edge(head, after, nil, false)
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body, "")
		// fallthrough flows into the next case body; otherwise join.
		if b.cur != nil && endsInFallthrough(cc.Body) && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1], nil, false)
		} else {
			b.edge(b.cur, after, nil, false)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// callTerminates reports whether the expression is a call that never
// returns: panic, os.Exit, or the log.Fatal family. Syntactic on
// purpose — the loader type-checks os/log from source, but the names
// are unambiguous enough and a miss only widens the checked paths.
func callTerminates(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if pkg.Name == "os" && fun.Sel.Name == "Exit" {
			return true
		}
		if pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln" ||
			fun.Sel.Name == "Panic" || fun.Sel.Name == "Panicf" || fun.Sel.Name == "Panicln") {
			return true
		}
	}
	return false
}

// defUse summarizes the def-use chains of one function body: which
// locals are (re)defined where, where they are read, and which escape
// local reasoning — address taken, or captured by a nested function
// literal (the closure may run at any time, so flow-sensitive facts
// about the variable are unsound).
type defUse struct {
	defs    map[types.Object][]ast.Node
	uses    map[types.Object][]*ast.Ident
	escaped map[types.Object]bool
}

// defUseOf computes def-use chains over body. Nested literals are
// walked for uses (a capture is a use) but a captured object is marked
// escaped rather than tracked through the literal.
func defUseOf(info *types.Info, body ast.Node) *defUse {
	du := &defUse{
		defs:    map[types.Object][]ast.Node{},
		uses:    map[types.Object][]*ast.Ident{},
		escaped: map[types.Object]bool{},
	}
	obj := func(id *ast.Ident) types.Object {
		if o := info.Defs[id]; o != nil {
			return o
		}
		return info.Uses[id]
	}
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if ast.Node(m) == n {
					return true
				}
				walk(m.Body, true)
				return false
			case *ast.UnaryExpr:
				if m.Op.String() == "&" {
					if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
						if o := obj(id); o != nil {
							du.escaped[o] = true
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						if o := obj(id); o != nil {
							du.defs[o] = append(du.defs[o], m)
							if inLit {
								du.escaped[o] = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for _, id := range m.Names {
					if id.Name == "_" {
						continue
					}
					if o := obj(id); o != nil {
						du.defs[o] = append(du.defs[o], m)
					}
				}
			case *ast.Ident:
				if o := info.Uses[m]; o != nil {
					du.uses[o] = append(du.uses[o], m)
					if inLit {
						du.escaped[o] = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return du
}

// cfgOf returns the memoized CFG of a declared function. Analyzers
// running concurrently share the memo behind the mutex, mirroring the
// Unit's other interprocedural fact caches.
func (u *Unit) cfgOf(fd *ast.FuncDecl) *funcCFG {
	u.cfgMu.Lock()
	defer u.cfgMu.Unlock()
	if u.cfgMemo == nil {
		u.cfgMemo = map[*ast.FuncDecl]*funcCFG{}
	}
	if c, ok := u.cfgMemo[fd]; ok {
		return c
	}
	if fd.Body == nil {
		return nil // external (assembly/linkname) declaration
	}
	c := buildCFG(fd.Body)
	u.cfgMemo[fd] = c
	return c
}

// litCFGOf is cfgOf for function literals, sharing the same memo
// discipline (resource-lifecycle, error-flow, and nilness all walk the
// same literal bodies).
func (u *Unit) litCFGOf(lit *ast.FuncLit) *funcCFG {
	u.cfgMu.Lock()
	defer u.cfgMu.Unlock()
	if u.litCfgMemo == nil {
		u.litCfgMemo = map[*ast.FuncLit]*funcCFG{}
	}
	if c, ok := u.litCfgMemo[lit]; ok {
		return c
	}
	c := buildCFG(lit.Body)
	u.litCfgMemo[lit] = c
	return c
}

// duOf returns the memoized def-use chains of a declared function.
func (u *Unit) duOf(info *types.Info, fd *ast.FuncDecl) *defUse {
	u.cfgMu.Lock()
	defer u.cfgMu.Unlock()
	if u.duMemo == nil {
		u.duMemo = map[*ast.FuncDecl]*defUse{}
	}
	if d, ok := u.duMemo[fd]; ok {
		return d
	}
	d := defUseOf(info, fd.Body)
	u.duMemo[fd] = d
	return d
}
