package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// ptrFlow is a miniature flowClient used only by these tests: it
// tracks whether each pointer-typed local may be nil (tNil) or may be
// non-nil (tNonNil), independent of the real nilness analyzer, so the
// framework — joins, refinement, back-edge propagation — is tested
// without depending on any production client's policy.
const (
	tNil fact = 1 << iota
	tNonNil
)

type ptrFlow struct{ info *types.Info }

func (c *ptrFlow) transfer(n ast.Node, facts flowFacts) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			obj := localObj(c.info, lhs)
			if obj == nil {
				continue
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				continue
			}
			if len(n.Lhs) != len(n.Rhs) {
				facts[obj] = tNil | tNonNil
				continue
			}
			facts[obj] = c.classify(n.Rhs[i])
		}
	case *ast.ValueSpec:
		for _, name := range n.Names {
			obj := c.info.Defs[name]
			if obj == nil {
				continue
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				continue
			}
			if len(n.Values) == 0 {
				facts[obj] = tNil
			} else {
				facts[obj] = tNil | tNonNil
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.transfer(vs, facts)
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if obj := localObj(c.info, e); obj != nil {
				facts[obj] = tNil | tNonNil
			}
		}
	}
}

func (c *ptrFlow) classify(e ast.Expr) fact {
	e = ast.Unparen(e)
	if isNilIdent(c.info, e) {
		return tNil
	}
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return tNonNil
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && c.info.Uses[id] == types.Universe.Lookup("new") {
			return tNonNil
		}
	}
	return tNil | tNonNil
}

func (c *ptrFlow) refine(cond ast.Expr, truth bool, facts flowFacts) {
	obj, isNil, ok := nilCompare(c.info, cond)
	if !ok {
		return
	}
	mask := tNonNil
	if (truth && isNil) || (!truth && !isNil) {
		mask = tNil
	}
	if v, tracked := facts[obj]; tracked && v&mask != 0 {
		facts[obj] = v & mask
	} else {
		facts[obj] = mask
	}
}

// factsAt runs the test client to fixpoint over fn and returns the
// facts in force immediately before the first node matching pred.
func factsAt(t *testing.T, pkg *Package, fn string, pred func(ast.Node) bool) (flowFacts, *ast.FuncDecl) {
	t.Helper()
	fd := declNamed(t, pkg, fn)
	var got flowFacts
	runForward(buildCFG(fd.Body), &ptrFlow{info: pkg.Info}, func(n ast.Node, facts flowFacts) {
		if got == nil && pred(n) {
			got = facts.clone()
		}
	})
	if got == nil {
		t.Fatalf("no node in %s matched the predicate", fn)
	}
	return got, fd
}

// returnWith matches a ReturnStmt whose single result has the given
// dynamic type (e.g. *ast.StarExpr for `return *x`).
func returnWith(match func(ast.Expr) bool) func(ast.Node) bool {
	return func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		return ok && len(ret.Results) == 1 && match(ret.Results[0])
	}
}

// TestForwardBranchJoin: x is nil on the skip path and non-nil on the
// assign path; the join at the return must union both.
func TestForwardBranchJoin(t *testing.T) {
	pkg := dataflowPkg(t)
	facts, fd := factsAt(t, pkg, "BranchJoin", returnWith(func(e ast.Expr) bool {
		_, ok := e.(*ast.Ident)
		return ok
	}))
	if got := facts[objNamed(t, pkg, fd, "x")]; got != tNil|tNonNil {
		t.Errorf("facts[x] at the join = %b; want the union %b", got, tNil|tNonNil)
	}
}

// TestForwardRefine: the guard's true edge narrows x to non-nil, its
// false edge to nil.
func TestForwardRefine(t *testing.T) {
	pkg := dataflowPkg(t)
	facts, fd := factsAt(t, pkg, "Guarded", returnWith(func(e ast.Expr) bool {
		_, ok := e.(*ast.StarExpr)
		return ok
	}))
	x := objNamed(t, pkg, fd, "x")
	if got := facts[x]; got != tNonNil {
		t.Errorf("facts[x] inside the guard = %b; want non-nil only (%b)", got, tNonNil)
	}
	facts, _ = factsAt(t, pkg, "Guarded", returnWith(func(e ast.Expr) bool {
		_, ok := e.(*ast.BasicLit)
		return ok
	}))
	if got := facts[x]; got != tNil {
		t.Errorf("facts[x] past the guard = %b; want nil only (%b)", got, tNil)
	}
}

// TestForwardLoopFixpoint: the loop head's stable facts include the
// body's rebind carried around the back edge — a single forward pass
// would see only the nil entry state.
func TestForwardLoopFixpoint(t *testing.T) {
	pkg := dataflowPkg(t)
	head := func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		return ok && bin.Op.String() == "<"
	}
	facts, fd := factsAt(t, pkg, "Loop", head)
	p := objNamed(t, pkg, fd, "p")
	if got := facts[p]; got != tNil|tNonNil {
		t.Errorf("facts[p] at the loop head = %b; want the back-edge union %b", got, tNil|tNonNil)
	}
	facts, _ = factsAt(t, pkg, "Loop", returnWith(func(e ast.Expr) bool {
		_, ok := e.(*ast.Ident)
		return ok
	}))
	if got := facts[p]; got != tNil|tNonNil {
		t.Errorf("facts[p] at the return = %b; want %b", got, tNil|tNonNil)
	}
}

// TestForwardRangeRefine: the element ranged out of the slice is
// unknown, and the body's guard narrows it before the deref.
func TestForwardRangeRefine(t *testing.T) {
	pkg := dataflowPkg(t)
	deref := func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		_, star := as.Rhs[0].(*ast.StarExpr)
		return star
	}
	facts, fd := factsAt(t, pkg, "RangeNil", deref)
	if got := facts[objNamed(t, pkg, fd, "p")]; got != tNonNil {
		t.Errorf("facts[p] at the guarded deref = %b; want non-nil only (%b)", got, tNonNil)
	}
}

// TestForwardTaglessSwitch: each tagless-switch case edge carries its
// guard, so the nil case sees nil and default sees the complement.
func TestForwardTaglessSwitch(t *testing.T) {
	pkg := dataflowPkg(t)
	facts, fd := factsAt(t, pkg, "SwitchFacts", returnWith(func(e ast.Expr) bool {
		_, ok := e.(*ast.BasicLit)
		return ok
	}))
	p := objNamed(t, pkg, fd, "p")
	if got := facts[p]; got != tNil {
		t.Errorf("facts[p] in the nil case = %b; want nil only (%b)", got, tNil)
	}
	facts, _ = factsAt(t, pkg, "SwitchFacts", returnWith(func(e ast.Expr) bool {
		_, ok := e.(*ast.StarExpr)
		return ok
	}))
	if got := facts[p]; got != tNonNil {
		t.Errorf("facts[p] in default = %b; want non-nil only (%b)", got, tNonNil)
	}
}

// TestNilCompare decodes every guard shape in the Conds fixture, in
// source order.
func TestNilCompare(t *testing.T) {
	pkg := dataflowPkg(t)
	fd := declNamed(t, pkg, "Conds")
	var conds []ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			conds = append(conds, ifs.Cond)
		}
		return true
	})
	want := []struct {
		obj   string // "" means not a nil comparison
		isNil bool
	}{
		{"p", true},  // p == nil
		{"q", false}, // nil != q
		{"p", true},  // !(p != nil)
		{"", false},  // bare bool
		{"", false},  // p == q
	}
	if len(conds) != len(want) {
		t.Fatalf("found %d conditions; want %d", len(conds), len(want))
	}
	for i, cond := range conds {
		obj, isNil, ok := nilCompare(pkg.Info, cond)
		if want[i].obj == "" {
			if ok {
				t.Errorf("cond %d: decomposed to %v; want not-a-nil-comparison", i, obj)
			}
			continue
		}
		if !ok || obj.Name() != want[i].obj || isNil != want[i].isNil {
			t.Errorf("cond %d: (%v, %v, %v); want (%s, %v, true)", i, obj, isNil, ok, want[i].obj, want[i].isNil)
		}
	}
}

// TestJoinInto pins the lattice primitives: union semantics, change
// reporting, and clone independence.
func TestJoinInto(t *testing.T) {
	a := objPair()
	dst := flowFacts{a[0]: tNil}
	src := flowFacts{a[0]: tNil, a[1]: tNonNil}
	if !joinInto(dst, src) {
		t.Error("join adding a new object must report a change")
	}
	if dst[a[0]] != tNil || dst[a[1]] != tNonNil {
		t.Errorf("joined facts = %v", dst)
	}
	if joinInto(dst, src) {
		t.Error("idempotent join must report no change")
	}
	c := dst.clone()
	c[a[0]] |= tNonNil
	if dst[a[0]] != tNil {
		t.Error("clone shares storage with the original")
	}
}

// objPair makes two distinct types.Object keys for lattice tests.
func objPair() [2]types.Object {
	pkg := types.NewPackage("t", "t")
	return [2]types.Object{
		types.NewVar(0, pkg, "a", types.Typ[types.Int]),
		types.NewVar(0, pkg, "b", types.Typ[types.Int]),
	}
}
