package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// analyzerStateBug encodes the paper's Section 3 "state bug": a
// deferred-maintenance transaction that first applies its updates to a
// table and then evaluates a maintenance expression over that table
// reads post-update state where the algorithms (DEL/ADD, Lemma 1)
// require pre-update state. Within the Blessed Figure-3 functions of
// the core package, the analyzer orders each function's table events
// lexically and flags any read of a table or log (Database.Bag, or
// Table.Data outside a mutator chain) positioned after the same
// transaction applied updates to that table (Table.Replace/Clear/
// Insert/Delete, bag mutators through Table.Data, or
// txn.ApplyAssignments). Writes propagate through static calls via
// per-function transitive write summaries, so an apply buried in a
// helper still poisons the table for later direct reads; reads are
// deliberately direct-only, since a helper reading a table it did not
// itself update is the helper's own analysis to get right.
//
// Tables are identified by key: a constant name reads as "mv_a"
// (quoted), a dynamic one as its source expression (v.mvName), so the
// pre/post ordering is checked per-table even for symbolic names.
var analyzerStateBug = &Analyzer{
	Name: "state-bug",
	Doc:  "Figure-3 transactions never read a table after applying their own updates to it (pre-update state required)",
	Run:  runStateBug,
}

// tblEvent is one read or apply of a table key inside a blessed body.
type tblEvent struct {
	pos   token.Pos
	key   string
	apply bool
}

func runStateBug(p *Pass) {
	if p.Pkg.Path != p.Cfg.CorePkg {
		return
	}
	blessed := map[string]bool{}
	for _, n := range p.Cfg.Blessed {
		blessed[n] = true
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !blessed[fd.Name.Name] {
				continue
			}
			p.checkStateBug(fd)
		}
	}
}

// checkStateBug collects the lexical event stream of one blessed
// function and reports reads that follow an apply of the same key.
func (p *Pass) checkStateBug(fd *ast.FuncDecl) {
	info := p.Pkg.Info
	binds := tableBindings(info, fd.Body, p.Cfg.StoragePkg)
	var events []tblEvent

	// Data() calls that sit in a bag-mutator receiver chain are the
	// write side of the chain, not reads.
	mutatorData := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := CalleeOf(info, call)
		if f == nil || !bagMutators[f.Name()] || !isMethodOn(f, p.Cfg.BagPkg, "Bag") {
			return true
		}
		if dc := dataCallInChain(info, call, p.Cfg.StoragePkg); dc != nil {
			mutatorData[dc] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := CalleeOf(info, call)
		if f == nil {
			return true
		}
		switch {
		case tableMutators[f.Name()] && isMethodOn(f, p.Cfg.StoragePkg, "Table"):
			// Apply events land at the call's end so reads evaluated in
			// the argument list (pre-update state fed INTO the apply)
			// stay on the pre side.
			if key := receiverTableKey(info, call, binds); key != "" {
				events = append(events, tblEvent{pos: call.End(), key: key, apply: true})
			}
		case bagMutators[f.Name()] && isMethodOn(f, p.Cfg.BagPkg, "Bag"):
			if dc := dataCallInChain(info, call, p.Cfg.StoragePkg); dc != nil {
				if key := receiverTableKey(info, dc, binds); key != "" {
					events = append(events, tblEvent{pos: call.End(), key: key, apply: true})
				}
			}
		case f.Name() == "ApplyAssignments" && f.Pkg() != nil && f.Pkg().Path() == p.Cfg.TxnPkg:
			for _, key := range assignmentKeys(info, fd.Body, p.Cfg.TxnPkg) {
				events = append(events, tblEvent{pos: call.End(), key: key, apply: true})
			}
		case f.Name() == "Bag" && isMethodOn(f, p.Cfg.StoragePkg, "Database"):
			if len(call.Args) == 1 {
				events = append(events, tblEvent{pos: call.Pos(), key: exprKey(info, call.Args[0])})
			}
		case f.Name() == "Data" && isMethodOn(f, p.Cfg.StoragePkg, "Table"):
			if mutatorData[call] {
				return true
			}
			if key := receiverTableKey(info, call, binds); key != "" {
				events = append(events, tblEvent{pos: call.Pos(), key: key})
			}
		default:
			// A static call into the module splices the callee's
			// transitive write summary at the call site.
			if p.Unit.declOf(f) != nil {
				for key := range p.Unit.writeSummary(f) {
					events = append(events, tblEvent{pos: call.End(), key: key, apply: true})
				}
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	applied := map[string]bool{}
	for _, ev := range events {
		if ev.apply {
			applied[ev.key] = true
			continue
		}
		if applied[ev.key] {
			p.Reportf(ev.pos,
				"%s reads %s after this transaction applied updates to it; the maintenance expression needs pre-update state (paper Section 3 state bug)",
				fd.Name.Name, ev.key)
		}
	}
}

// writeSummary returns the set of table keys fn (transitively, through
// static module calls) applies updates to. Memoized per Unit; a cycle
// sees the partial summary of the in-progress caller, which converges
// because keys only accumulate.
func (u *Unit) writeSummary(fn *types.Func) map[string]token.Pos {
	u.writeMu.Lock()
	defer u.writeMu.Unlock()
	if u.writeSums == nil {
		u.writeSums = map[*types.Func]map[string]token.Pos{}
	}
	return u.writeSummaryLocked(fn)
}

func (u *Unit) writeSummaryLocked(fn *types.Func) map[string]token.Pos {
	if sum, ok := u.writeSums[fn]; ok {
		return sum
	}
	sum := map[string]token.Pos{}
	u.writeSums[fn] = sum // pre-publish: recursion guard
	di := u.declOf(fn)
	if di == nil {
		return sum
	}
	info := di.pkg.Info
	cfg := u.Cfg
	binds := tableBindings(info, di.decl.Body, cfg.StoragePkg)
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := CalleeOf(info, call)
		if f == nil {
			return true
		}
		switch {
		case tableMutators[f.Name()] && isMethodOn(f, cfg.StoragePkg, "Table"):
			if key := receiverTableKey(info, call, binds); key != "" {
				sum[key] = call.Pos()
			}
		case bagMutators[f.Name()] && isMethodOn(f, cfg.BagPkg, "Bag"):
			if dc := dataCallInChain(info, call, cfg.StoragePkg); dc != nil {
				if key := receiverTableKey(info, dc, binds); key != "" {
					sum[key] = call.Pos()
				}
			}
		case f.Name() == "ApplyAssignments" && f.Pkg() != nil && f.Pkg().Path() == cfg.TxnPkg:
			for _, key := range assignmentKeys(info, di.decl.Body, cfg.TxnPkg) {
				sum[key] = call.Pos()
			}
		default:
			if u.decls[f] != nil {
				for key, pos := range u.writeSummaryLocked(f) {
					if _, ok := sum[key]; !ok {
						sum[key] = pos
					}
				}
			}
		}
		return true
	})
	return sum
}

// tableBinding is one `tb, _ := db.Table("x")` (or db.Create) binding.
type tableBinding struct {
	obj types.Object
	pos token.Pos
	key string
}

// tableBindings collects local variables bound to tables looked up by
// name, in source order, so a receiver resolves to the nearest
// preceding binding (RefreshRecompute reuses one variable for two
// tables).
func tableBindings(info *types.Info, body ast.Node, storagePkg string) []tableBinding {
	var out []tableBinding
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		f := CalleeOf(info, call)
		if f == nil || (f.Name() != "Table" && f.Name() != "Create") || !isMethodOn(f, storagePkg, "Database") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		out = append(out, tableBinding{obj: obj, pos: as.Pos(), key: exprKey(info, call.Args[0])})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// receiverTableKey resolves the table a method call operates on: either
// an inline `db.Table("x").M(...)` chain or an identifier bound by a
// preceding db.Table/db.Create assignment.
func receiverTableKey(info *types.Info, call *ast.CallExpr, binds []tableBinding) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.CallExpr:
		f := CalleeOf(info, x)
		if f != nil && (f.Name() == "Table" || f.Name() == "Create") && len(x.Args) > 0 {
			return exprKey(info, x.Args[0])
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return ""
		}
		key := ""
		for _, b := range binds {
			if b.obj == obj && b.pos <= x.Pos() {
				key = b.key
			}
		}
		return key
	}
	return ""
}

// dataCallInChain walks a method call's receiver chain looking for the
// Table.Data() hop (the same shape invariant-touch matches); it returns
// that call so the table can be identified.
func dataCallInChain(info *types.Info, call *ast.CallExpr, storagePkg string) *ast.CallExpr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	for x := ast.Unparen(sel.X); ; {
		c, ok := x.(*ast.CallExpr)
		if !ok {
			return nil
		}
		if f := CalleeOf(info, c); f != nil && f.Name() == "Data" && isMethodOn(f, storagePkg, "Table") {
			return c
		}
		inner, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		x = ast.Unparen(inner.X)
	}
}

// assignmentKeys collects the Table: keys of every txn.Assignment
// composite literal in the body — the tables an ApplyAssignments call
// in this function writes.
func assignmentKeys(info *types.Info, body ast.Node, txnPkg string) []string {
	var out []string
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := info.Types[lit]
		if !ok || tv.Type == nil {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return true
		}
		obj := named.Obj()
		if obj.Name() != "Assignment" || obj.Pkg() == nil || obj.Pkg().Path() != txnPkg {
			return true
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if k, ok := kv.Key.(*ast.Ident); !ok || k.Name != "Table" {
				continue
			}
			key := exprKey(info, kv.Value)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
		return true
	})
	sort.Strings(out)
	return out
}

// exprKey abstracts a table-name expression: constant strings display
// quoted, anything else as its source text.
func exprKey(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strconv.Quote(constant.StringVal(tv.Value))
	}
	return types.ExprString(e)
}
