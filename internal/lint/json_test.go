package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteJSONGolden pins the -json output shape: stable field names,
// position-sorted order, and [] (not null) for zero findings.
func TestWriteJSONGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(fixturePrefix + "droperr")
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := Select("dropped-error")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers([]*Package{pkg}, analyzers, DefaultConfig())
	if len(findings) == 0 {
		t.Fatal("droperr fixture produced no findings")
	}
	for i := range findings {
		findings[i].Pos.Filename = filepath.Base(findings[i].Pos.Filename)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	goldenPath := filepath.Join("testdata", "json.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestWriteJSONGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("json output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The field-name contract, independent of the golden bytes.
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	for _, k := range []string{"file", "line", "col", "check", "message"} {
		if _, ok := raw[0][k]; !ok {
			t.Errorf("finding object missing field %q", k)
		}
	}
}

// TestWriteJSONEmpty: zero findings must render as an empty array.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Fatalf("WriteJSON(nil) = %q; want []", s)
	}
}
