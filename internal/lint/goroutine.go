package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzerGoroutineContext is the goroutine-awareness half of the
// lock-state interpreter (lockstate.go): lock facts that hold at a `go`
// statement — or at a function value handed to a worker/pool helper
// that launches it (callgraph.go spawn parameters) — do NOT transfer
// into the spawned body. The spawned goroutine starts with an empty
// lock set no matter what the spawning context holds, so two bug shapes
// are flagged at the spawn site:
//
//   - the spawned body (transitively, through static calls, including
//     closures that capture locked receivers) reaches a core *Locked
//     helper without acquiring any lock of its own — the goroutine
//     "inherits" a contract it cannot satisfy;
//   - the spawn happens while the spawner holds table locks and the
//     spawned body touches one of those same tables (reads or writes,
//     outside any lock acquisition of its own) — the code looks locked
//     lexically but races with every reader the lock was protecting.
//
// Both facts come from summaries computed over the unlocked region of
// each function (everything outside the closure arguments of
// txn.LockManager acquisitions): lockedReachOf and unlockedTouchOf.
var analyzerGoroutineContext = &Analyzer{
	Name: "goroutine-context",
	Doc:  "lock facts never transfer into spawned goroutines: no *Locked calls or spawner-locked table access without re-acquisition",
	Run:  runGoroutineContext,
}

func runGoroutineContext(p *Pass) {
	res := p.Unit.lockAnalysis()
	for _, f := range res.spawn {
		if f.pkg == p.Pkg {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// isLockedContractFn reports whether fn carries the core package's
// *Locked caller-holds-locks contract (shared with the lock walker).
func isLockedContractFn(fn *types.Func, corePkg string) bool {
	return strings.HasSuffix(fn.Name(), "Locked") &&
		fn.Pkg() != nil && fn.Pkg().Path() == corePkg
}

// lockAcquireLits returns the function literals in body that are the
// closure argument of a txn.LockManager acquisition — the regions that
// run under locks. Everything else in body is the "unlocked region" the
// spawn summaries range over.
func (u *Unit) lockAcquireLits(info *types.Info, body ast.Node) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isLockAcquire(CalleeOf(info, call), u.Cfg.TxnPkg) {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit); ok {
			out[lit] = true
		}
		return true
	})
	return out
}

// inspectUnlocked walks body like ast.Inspect but skips the bodies of
// lock-acquire closure arguments: the visit function only sees code
// that would run without locks if body itself ran without locks.
func (u *Unit) inspectUnlocked(info *types.Info, body ast.Node, visit func(ast.Node) bool) {
	locked := u.lockAcquireLits(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && locked[lit] {
			return false
		}
		return visit(n)
	})
}

// lockedReachOf returns a core *Locked function reachable from fn's
// unlocked region through static calls (fn itself if it carries the
// contract), or nil when every path to a *Locked helper first acquires
// a lock. Memoized per Unit; cycles conservatively resolve to nil
// (fewer findings, never false ones).
func (u *Unit) lockedReachOf(fn *types.Func) *types.Func {
	u.spawnMu.Lock()
	defer u.spawnMu.Unlock()
	return u.lockedReachLocked(fn, map[*types.Func]bool{})
}

func (u *Unit) lockedReachLocked(fn *types.Func, visiting map[*types.Func]bool) *types.Func {
	if isLockedContractFn(fn, u.Cfg.CorePkg) {
		return fn
	}
	if u.reachMemo == nil {
		u.reachMemo = map[*types.Func]*types.Func{}
	}
	if r, ok := u.reachMemo[fn]; ok {
		return r
	}
	if visiting[fn] {
		return nil
	}
	di := u.declOf(fn)
	if di == nil {
		u.reachMemo[fn] = nil
		return nil
	}
	visiting[fn] = true
	var found *types.Func
	u.inspectUnlocked(di.pkg.Info, di.decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := CalleeOf(di.pkg.Info, call)
		if f == nil {
			return true
		}
		if r := u.lockedReachLocked(f, visiting); r != nil {
			found = r
			return false
		}
		return true
	})
	delete(visiting, fn)
	u.reachMemo[fn] = found
	return found
}

// unlockedTouchOf returns the table keys fn's unlocked region touches —
// reads (Database.Bag, Table.Data) and writes (Table mutators, bag
// mutators through Data(), ApplyAssignments) — transitively through
// static calls, with the position of the first touch. Keys use the same
// abstraction as lock tokens ("mv_a" quoted for constants, source text
// for dynamic names), so they are directly comparable with a spawner's
// held set. Memoized per Unit with a pre-published map as the
// recursion guard, like writeSummary.
func (u *Unit) unlockedTouchOf(fn *types.Func) map[string]token.Pos {
	u.spawnMu.Lock()
	defer u.spawnMu.Unlock()
	return u.unlockedTouchLocked(fn)
}

func (u *Unit) unlockedTouchLocked(fn *types.Func) map[string]token.Pos {
	if u.touchMemo == nil {
		u.touchMemo = map[*types.Func]map[string]token.Pos{}
	}
	if sum, ok := u.touchMemo[fn]; ok {
		return sum
	}
	sum := map[string]token.Pos{}
	u.touchMemo[fn] = sum // pre-publish: recursion guard
	di := u.declOf(fn)
	if di == nil {
		return sum
	}
	u.collectUnlockedTouches(di.pkg.Info, di.decl.Body, di.decl.Body, sum)
	return sum
}

// collectUnlockedTouches records the table-touch events of the unlocked
// region of body into sum. bindScope is the node table bindings are
// resolved against — for a spawned closure that captures a table
// variable this is the whole enclosing declaration, so `tb, _ :=
// db.Table("x")` outside the closure still identifies tb inside it.
// Callers must hold u.spawnMu.
func (u *Unit) collectUnlockedTouches(info *types.Info, bindScope, body ast.Node, sum map[string]token.Pos) {
	cfg := u.Cfg
	binds := tableBindings(info, bindScope, cfg.StoragePkg)
	record := func(key string, pos token.Pos) {
		if key == "" {
			return
		}
		if _, ok := sum[key]; !ok {
			sum[key] = pos
		}
	}
	u.inspectUnlocked(info, body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := CalleeOf(info, call)
		if f == nil {
			return true
		}
		switch {
		case tableMutators[f.Name()] && isMethodOn(f, cfg.StoragePkg, "Table"):
			record(receiverTableKey(info, call, binds), call.Pos())
		case bagMutators[f.Name()] && isMethodOn(f, cfg.BagPkg, "Bag"):
			if dc := dataCallInChain(info, call, cfg.StoragePkg); dc != nil {
				record(receiverTableKey(info, dc, binds), call.Pos())
			}
		case f.Name() == "ApplyAssignments" && f.Pkg() != nil && f.Pkg().Path() == cfg.TxnPkg:
			for _, key := range assignmentKeys(info, bindScope, cfg.TxnPkg) {
				record(key, call.Pos())
			}
		case f.Name() == "Bag" && isMethodOn(f, cfg.StoragePkg, "Database"):
			if len(call.Args) == 1 {
				record(exprKey(info, call.Args[0]), call.Pos())
			}
		case f.Name() == "Data" && isMethodOn(f, cfg.StoragePkg, "Table"):
			record(receiverTableKey(info, call, binds), call.Pos())
		default:
			if u.decls[f] != nil {
				for key := range u.unlockedTouchLocked(f) {
					record(key, call.Pos())
				}
			}
		}
		return true
	})
}

// spawnFacts summarizes what a spawned body can do with no locks held.
type spawnFacts struct {
	reach *types.Func         // a *Locked function reachable lock-free
	touch map[string]token.Pos // table keys touched lock-free
}

// factsForLit computes spawn facts for a function literal spawned (or
// handed to a spawning parameter) inside the declaration whose body is
// bindScope.
func (u *Unit) factsForLit(info *types.Info, bindScope ast.Node, lit *ast.FuncLit) spawnFacts {
	u.spawnMu.Lock()
	defer u.spawnMu.Unlock()
	facts := spawnFacts{touch: map[string]token.Pos{}}
	u.collectUnlockedTouches(info, bindScope, lit.Body, facts.touch)
	u.inspectUnlocked(info, lit.Body, func(n ast.Node) bool {
		if facts.reach != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := CalleeOf(info, call); f != nil {
			if r := u.lockedReachLocked(f, map[*types.Func]bool{}); r != nil {
				facts.reach = r
				return false
			}
		}
		return true
	})
	return facts
}

// factsForFunc computes spawn facts for a named function or method
// value that is spawned.
func (u *Unit) factsForFunc(fn *types.Func) spawnFacts {
	return spawnFacts{reach: u.lockedReachOf(fn), touch: u.unlockedTouchOf(fn)}
}
