package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable shape of one finding. The field
// names are a stable public contract for CI and editor integrations;
// changing them breaks consumers, so they are pinned by a golden test.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON renders findings as an indented JSON array in the order
// given (RunAnalyzers already sorts by position). An empty findings
// slice renders as [], never null, so consumers can range unguarded.
// Warning findings are advisory and excluded: the array holds exactly
// the findings that drive a nonzero exit code.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		if f.Warning {
			continue
		}
		out = append(out, jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
