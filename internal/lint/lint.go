package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Finding is one diagnostic: a position, the analyzer that produced
// it, and a message. Rendered as "file:line:col: [check] message".
// Warning findings are advisory: the CLI routes them to stderr and
// they do not affect the exit code or the JSON output.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
	Warning bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Config carries the repo-specific knowledge the analyzers need. The
// defaults describe this module; tests point the roles at fixture
// packages instead.
type Config struct {
	// CorePkg is the maintenance core: the only package allowed to
	// mutate MV/∇MV/△MV/log tables, and only from Blessed functions.
	CorePkg string
	// BagPkg, TxnPkg, StoragePkg locate the types the analyzers key on.
	BagPkg     string
	TxnPkg     string
	StoragePkg string
	// TracePkg is the structured-tracing package; span-discipline
	// tracks its *Span values and skips the package itself.
	TracePkg string
	// ObsPkg is the metrics/labels package; pprof-label accepts its
	// StartRegion/SetPhaseLabels calls as installing goroutine labels.
	ObsPkg string
	// OrderedPkgs are packages whose output ordering matters (they
	// build reports, snapshots, deltas, or SQL results); map iteration
	// feeding ordered sinks is flagged there.
	OrderedPkgs []string
	// Blessed are the CorePkg functions implementing the paper's
	// refresh_*/propagate_*/makesafe_* transactions (Figure 3) plus
	// view definition; only they may touch maintained tables.
	Blessed []string
	// DocPkgs are packages whose exported identifiers must all carry
	// doc comments (the documentation-gated API surface).
	DocPkgs []string
	// AlgebraPkg is the delta-program compiler package; closure-purity
	// checks every closure reachable from its Compile entry points.
	AlgebraPkg string
}

// DefaultConfig returns the production configuration for this module.
func DefaultConfig() Config {
	return Config{
		CorePkg:    "dvm/internal/core",
		BagPkg:     "dvm/internal/bag",
		TxnPkg:     "dvm/internal/txn",
		StoragePkg: "dvm/internal/storage",
		TracePkg:   "dvm/internal/obs/trace",
		ObsPkg:     "dvm/internal/obs",
		OrderedPkgs: []string{
			"dvm/internal/algebra",
			"dvm/internal/bench",
			"dvm/internal/core",
			"dvm/internal/obs",
			"dvm/internal/sql",
			"dvm/internal/storage",
		},
		Blessed: []string{
			// makesafe_* (Execute bundles every view's bookkeeping).
			"Execute", "appendToLogs", "appendShared",
			// refresh_* family.
			"refreshFromLogLocked", "applyDiffTablesLocked", "RefreshRecompute",
			// propagate_* family (incl. shared-log window upkeep).
			"foldLog", "materializeWindow",
			// Sharded counterparts of the same transactions
			// (docs/architecture.md "Sharding"): makesafe_C's per-shard
			// log append + mirror upkeep, propagate_C's staged fold,
			// refresh_C's per-diff-shard apply and recompute reset.
			"appendToLogsSharded", "updateMirrors", "foldLogSharded",
			"clearLogShard", "applyDiffShardsLocked", "clearShardStateLocked",
			// View (de)initialization (ensureMirror seeds a shard
			// group's base mirrors at DefineView time).
			"DefineView", "ensureMirror",
			// Compiled delta programs: the same Figure 3 transactions
			// run as fused closures, with the results installed by
			// Table.Replace (makesafe via applyCompiledSafe inside
			// Execute's apply closure, refresh/propagate via
			// runCompiledAssigns; clearLogs resets consumed logs).
			"runCompiledAssigns", "applyCompiledSafe", "clearLogs",
		},
		DocPkgs: []string{
			"dvm/internal/core",
			"dvm/internal/obs",
			"dvm/internal/obs/trace",
			"dvm/internal/txn",
		},
		AlgebraPkg: "dvm/internal/algebra",
	}
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Unit is the whole-program view one RunAnalyzers invocation shares
// across its per-package passes: every loaded package, plus lazily
// computed interprocedural facts (the call graph of callgraph.go, the
// lock-state fixpoint of lockstate.go, and the state-bug write
// summaries). Interprocedural analyzers compute over the Unit once and
// report, from each per-package pass, only the findings positioned in
// that pass's package.
type Unit struct {
	Pkgs []*Package
	Cfg  Config

	declOnce  sync.Once
	decls     map[*types.Func]*declInfo
	declList  []*declInfo // decls in deterministic (position) order
	addrTaken map[*types.Func]bool

	edgeOnce sync.Once
	edges    []callEdge

	spawnParamOnce sync.Once
	spawnParams    map[*types.Func]map[int]bool

	lockOnce sync.Once
	lock     *lockResult

	writeMu   sync.Mutex
	writeSums map[*types.Func]map[string]token.Pos

	spawnMu   sync.Mutex
	reachMemo map[*types.Func]*types.Func
	touchMemo map[*types.Func]map[string]token.Pos

	atomicOnce sync.Once
	atomic     *atomicFacts

	// Function-local dataflow memos (ssa.go): CFGs and def-use chains
	// are shared by closure-purity, resource-lifecycle, error-flow, and
	// nilness, so the first analyzer to touch a function builds its
	// graph and the rest reuse it.
	cfgMu      sync.Mutex
	cfgMemo    map[*ast.FuncDecl]*funcCFG
	litCfgMemo map[*ast.FuncLit]*funcCFG
	duMemo     map[*ast.FuncDecl]*defUse
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Pkg      *Package
	Unit     *Unit
	Cfg      Config
	check    string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// CalleeOf resolves the function or method a call invokes, or nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isMethodOn reports whether f is a method whose receiver is T or *T
// for the named type pkgPath.typeName.
func isMethodOn(f *types.Func, pkgPath, typeName string) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isPtrToNamed reports whether t is *pkgPath.typeName.
func isPtrToNamed(t types.Type, pkgPath, typeName string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// All returns the analyzer registry in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerLockDiscipline,
		analyzerLockOrder,
		analyzerLockedContract,
		analyzerGoroutineContext,
		analyzerSharedStateEscape,
		analyzerAtomicDiscipline,
		analyzerStateBug,
		analyzerBagMutation,
		analyzerMapIteration,
		analyzerDroppedError,
		analyzerInvariantTouch,
		analyzerSpanDiscipline,
		analyzerPprofLabel,
		analyzerDocComment,
		analyzerClosurePurity,
		analyzerResourceLifecycle,
		analyzerErrorFlow,
		analyzerNilness,
	}
}

// Select returns the named analyzers (comma-separated; empty = all).
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// suppression is one parsed //dvmlint:ignore comment.
type suppression struct {
	pos    token.Position
	checks map[string]bool
	reason string
	used   bool // matched at least one raw finding this run
}

const ignorePrefix = "//dvmlint:ignore"

// collectSuppressions parses //dvmlint:ignore comments per file. A
// suppression on line N silences matching findings on lines N and N+1
// (i.e. it may sit on the offending line or immediately above it).
// Syntax: //dvmlint:ignore check[,check...] reason text. A missing
// reason or an unknown check name is itself reported.
func collectSuppressions(pkg *Package, known map[string]bool, findings *[]Finding) map[string][]*suppression {
	out := map[string][]*suppression{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					*findings = append(*findings, Finding{Pos: pos, Check: "dvmlint",
						Message: "suppression names no check; use //dvmlint:ignore check reason"})
					continue
				}
				checks := map[string]bool{}
				bad := false
				for _, n := range strings.Split(fields[0], ",") {
					if !known[n] {
						// A name no analyzer recognizes (a typo, or a check
						// since renamed) is a warning, not an error: the
						// suppression is inert, so it cannot hide a finding,
						// and erroring would break builds on every analyzer
						// rename.
						*findings = append(*findings, Finding{Pos: pos, Check: "dvmlint", Warning: true,
							Message: fmt.Sprintf("suppression names unknown check %q (ignored)", n)})
						bad = true
						continue
					}
					checks[n] = true
				}
				if len(fields) < 2 {
					*findings = append(*findings, Finding{Pos: pos, Check: "dvmlint",
						Message: "suppression requires a written reason after the check name"})
					continue // a reasonless suppression does not suppress
				}
				if bad && len(checks) == 0 {
					continue
				}
				out[pos.Filename] = append(out[pos.Filename], &suppression{
					pos:    pos,
					checks: checks,
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

// RunAnalyzers runs each analyzer over each package, applies
// suppressions, and returns the surviving findings sorted by position.
// A //dvmlint:ignore suppression that matches no finding is itself
// reported as stale, provided every check it names was part of this
// run (a partial -checks run cannot judge the others' suppressions).
//
// Analyzers run concurrently, one goroutine per analyzer, each with a
// private findings slice: the shared interprocedural facts on Unit are
// computed behind sync.Once (decls, call graph, lock fixpoint, atomic
// facts) or a mutex (write/touch summaries), so the first analyzer to
// need a fact computes it and the rest block briefly and share it.
// Suppression matching and the final sort happen sequentially after
// the barrier, which keeps the output byte-identical to a serial run.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, cfg Config) []Finding {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	unit := &Unit{Pkgs: pkgs, Cfg: cfg}
	var findings []Finding
	sups := map[string][]*suppression{}
	for _, pkg := range pkgs {
		for file, list := range collectSuppressions(pkg, known, &findings) {
			sups[file] = append(sups[file], list...)
		}
	}
	raw := make([][]Finding, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			for _, pkg := range pkgs {
				a.Run(&Pass{Pkg: pkg, Unit: unit, Cfg: cfg, check: a.Name, findings: &raw[i]})
			}
		}(i, a)
	}
	wg.Wait()
	for _, rs := range raw {
		for _, f := range rs {
			if !suppressed(f, sups) {
				findings = append(findings, f)
			}
		}
	}
	for _, file := range sups {
		for _, s := range file {
			if s.used {
				continue
			}
			all := true
			var names []string
			for n := range s.checks {
				names = append(names, n)
				if !selected[n] {
					all = false
				}
			}
			if !all {
				continue
			}
			sort.Strings(names)
			findings = append(findings, Finding{Pos: s.pos, Check: "dvmlint",
				Message: fmt.Sprintf("suppression for %s matches no finding; stale suppressions must be removed", strings.Join(names, ","))})
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return findings
}

func suppressed(f Finding, sups map[string][]*suppression) bool {
	for _, s := range sups[f.Pos.Filename] {
		if !s.checks[f.Check] {
			continue
		}
		if s.pos.Line == f.Pos.Line || s.pos.Line == f.Pos.Line-1 {
			s.used = true
			return true
		}
	}
	return false
}
