package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture golden files")

const fixturePrefix = "dvm/internal/lint/testdata/src/"

// fixtureCases drives the per-analyzer self-tests: each fixture
// package is analyzed by the named checks under a config that maps the
// repo-specific roles onto the fixture.
var fixtureCases = []struct {
	dir    string
	checks string
	cfg    func(Config) Config
}{
	{
		dir:    "lockorder",
		checks: "lock-discipline",
		cfg: func(c Config) Config {
			c.CorePkg = fixturePrefix + "lockorder"
			return c
		},
	},
	{
		dir:    "lockcycle",
		checks: "lock-order",
		cfg:    func(c Config) Config { return c },
	},
	{
		dir:    "lockedctx",
		checks: "locked-contract",
		cfg: func(c Config) Config {
			c.CorePkg = fixturePrefix + "lockedctx"
			return c
		},
	},
	{
		dir:    "goctx",
		checks: "goroutine-context",
		cfg: func(c Config) Config {
			c.CorePkg = fixturePrefix + "goctx"
			return c
		},
	},
	{
		dir:    "escape",
		checks: "shared-state-escape",
		cfg: func(c Config) Config {
			c.CorePkg = fixturePrefix + "escape"
			return c
		},
	},
	{
		dir:    "atomicfield",
		checks: "atomic-discipline",
		cfg:    func(c Config) Config { return c },
	},
	{
		dir:    "statebug",
		checks: "state-bug",
		cfg: func(c Config) Config {
			c.CorePkg = fixturePrefix + "statebug"
			c.Blessed = []string{
				"RefreshThenRead", "ReadThenRefresh", "HelperThenRead",
				"DataAfterAdd", "SymbolicThenRead", "DifferentTables",
			}
			return c
		},
	},
	{
		dir:    "bagmut",
		checks: "bag-mutation",
		cfg:    func(c Config) Config { return c },
	},
	{
		dir:    "maporder",
		checks: "nondeterministic-iteration",
		cfg: func(c Config) Config {
			c.OrderedPkgs = append(c.OrderedPkgs, fixturePrefix+"maporder")
			return c
		},
	},
	{
		dir:    "droperr",
		checks: "dropped-error",
		cfg:    func(c Config) Config { return c },
	},
	{
		dir:    "invtouch",
		checks: "invariant-touch",
		cfg: func(c Config) Config {
			c.CorePkg = fixturePrefix + "invtouch"
			c.Blessed = []string{"Execute", "RefreshView"}
			return c
		},
	},
	{
		dir:    "spanend",
		checks: "span-discipline",
		cfg:    func(c Config) Config { return c },
	},
	{
		dir:    "pproflabel",
		checks: "pprof-label",
		cfg: func(c Config) Config {
			c.CorePkg = fixturePrefix + "pproflabel"
			return c
		},
	},
	{
		dir:    "docmiss",
		checks: "doc-comment",
		cfg: func(c Config) Config {
			c.DocPkgs = []string{fixturePrefix + "docmiss"}
			return c
		},
	},
	{
		dir:    "purity",
		checks: "closure-purity",
		cfg: func(c Config) Config {
			c.AlgebraPkg = fixturePrefix + "purity"
			c.BagPkg = fixturePrefix + "purity"
			c.StoragePkg = fixturePrefix + "purity"
			return c
		},
	},
	{
		dir:    "resource",
		checks: "resource-lifecycle",
		cfg: func(c Config) Config {
			c.ObsPkg = fixturePrefix + "resource"
			return c
		},
	},
	{
		dir:    "errflow",
		checks: "error-flow",
		cfg:    func(c Config) Config { return c },
	},
	{
		dir:    "nilness",
		checks: "nilness",
		cfg:    func(c Config) Config { return c },
	},
}

func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := loader.Load(fixturePrefix + tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			analyzers, err := Select(tc.checks)
			if err != nil {
				t.Fatal(err)
			}
			findings := RunAnalyzers([]*Package{pkg}, analyzers, tc.cfg(DefaultConfig()))
			if len(findings) == 0 {
				t.Fatalf("fixture %s produced no findings; the analyzer is not firing", tc.dir)
			}
			var sb strings.Builder
			for _, f := range findings {
				tag := ""
				if f.Warning {
					tag = "warning: "
				}
				fmt.Fprintf(&sb, "%s:%d: [%s] %s%s\n", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check, tag, f.Message)
			}
			got := sb.String()

			goldenPath := filepath.Join("testdata", "src", tc.dir, "expect.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestFixtures -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s:\n--- got ---\n%s--- want ---\n%s", tc.dir, got, want)
			}
		})
	}
}

// TestModuleIsLintClean runs the full analyzer suite over the whole
// module — the same gate `go run ./cmd/dvmlint ./...` applies — so a
// regression in lint discipline fails `go test ./...` too.
func TestModuleIsLintClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers(pkgs, All(), DefaultConfig())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSelect covers the check-selection surface the CLI exposes.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := Select("dropped-error, lock-discipline")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select two = %v (len %d); want 2", err, len(two))
	}
	if _, err := Select("no-such-check"); err == nil {
		t.Fatal("Select(no-such-check) should fail")
	}
}
