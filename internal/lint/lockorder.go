package lint

import (
	"sort"
	"strconv"
)

// analyzerLockOrder builds the global lock-acquisition-order graph from
// the lock-state fixpoint (lockstate.go): an edge A→B means some call
// path acquires B while holding A. Three things are flagged:
//
//   - an edge between two constant table names that inverts their
//     sorted order: txn.LockManager acquires each lock *set* in sorted
//     order, so nested acquisitions must respect the same global order
//     or two transactions can deadlock against each other;
//   - any edge that closes a cycle in the graph (A→…→A), the classic
//     deadlock shape, reported whether or not the names are constants;
//   - re-acquiring a lock already held on the same call path:
//     LockManager's RWMutexes are not reentrant, so this self-deadlocks
//     outright.
var analyzerLockOrder = &Analyzer{
	Name: "lock-order",
	Doc:  "global lock-acquisition-order graph free of sorted-order inversions and deadlock cycles",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	res := p.Unit.lockAnalysis()

	// Adjacency over every edge in the module, not just this package:
	// a cycle is a whole-program property even though each edge is
	// reported in the package that contains it.
	adj := map[string]map[string]bool{}
	for _, e := range res.edges {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			for m := range adj[n] {
				stack = append(stack, m)
			}
		}
		return false
	}

	edges := make([]orderEdge, 0, len(res.edges))
	for _, e := range res.edges {
		if e.pkg == p.Pkg {
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		if !e.fromSym && !e.toSym {
			from, _ := strconv.Unquote(e.from)
			to, _ := strconv.Unquote(e.to)
			if to < from {
				p.Reportf(e.pos,
					"acquires lock %s while holding %s, inverting the sorted acquisition order LockManager relies on for deadlock freedom",
					e.to, e.from)
			}
		}
		if reaches(e.to, e.from) {
			p.Reportf(e.pos,
				"acquisition edge %s -> %s closes a cycle in the global lock-order graph (potential deadlock)",
				e.from, e.to)
		}
	}

	for _, f := range res.self {
		if f.pkg == p.Pkg {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
}
