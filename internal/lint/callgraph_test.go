package lint

import (
	"fmt"
	"go/types"
	"testing"
)

// callgraphUnit loads the callgraph fixture into a fresh Unit.
func callgraphUnit(t *testing.T) *Unit {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(fixturePrefix + "callgraph")
	if err != nil {
		t.Fatal(err)
	}
	return &Unit{Pkgs: []*Package{pkg}, Cfg: DefaultConfig()}
}

// fnNamed finds the fixture's declared function by name.
func fnNamed(t *testing.T, u *Unit, name string) *types.Func {
	t.Helper()
	u.ensureDecls()
	for _, di := range u.declList {
		if di.fn.Name() == name {
			return di.fn
		}
	}
	t.Fatalf("fixture function %s not found", name)
	return nil
}

// TestCallGraphEdgeKinds pins the kinded edges the lock-state
// interpreter keys its transfer function on: plain calls and defers
// run in the caller's context, go (direct or through a function value)
// starts a fresh one, and dynamic calls resolve conservatively —
// through method values AND bound-method expressions.
func TestCallGraphEdgeKinds(t *testing.T) {
	u := callgraphUnit(t)
	cases := []struct {
		caller string
		want   []string // "kind->callee" edges that must be present
	}{
		{"StaticCall", []string{"call->helper"}},
		{"DeferredCall", []string{"defer->helper"}},
		{"GoCall", []string{"go->helper"}},
		{"MethodValue", []string{"dynamic->Work"}},
		{"MethodExpression", []string{"dynamic->Work"}},
		{"GoValue", []string{"go-dynamic->helper", "go-dynamic->target"}},
		{"SpawnAll", []string{"go-dynamic->helper", "go-dynamic->target"}},
		{"UseSpawnAll", []string{"call->SpawnAll", "call->Indirect", "call->GoValue"}},
	}
	for _, tc := range cases {
		t.Run(tc.caller, func(t *testing.T) {
			edges := u.edgesFrom(fnNamed(t, u, tc.caller))
			got := map[string]bool{}
			for _, e := range edges {
				got[fmt.Sprintf("%s->%s", e.kind, e.callee.fn.Name())] = true
			}
			for _, w := range tc.want {
				if !got[w] {
					t.Errorf("edgesFrom(%s) misses %q; got %v", tc.caller, w, keys(got))
				}
			}
		})
	}
}

// TestCallGraphEdgeKindsExact pins exactness where the resolution is
// static: a plain call must produce exactly one edge of the right
// kind, not a dynamic fan-out.
func TestCallGraphEdgeKindsExact(t *testing.T) {
	u := callgraphUnit(t)
	for caller, kind := range map[string]edgeKind{
		"StaticCall":   edgeCall,
		"DeferredCall": edgeDefer,
		"GoCall":       edgeGo,
	} {
		edges := u.edgesFrom(fnNamed(t, u, caller))
		if len(edges) != 1 || edges[0].kind != kind || edges[0].callee.fn.Name() != "helper" {
			t.Errorf("edgesFrom(%s) = %v; want exactly one %s edge to helper", caller, edges, kind)
		}
	}
}

// TestMethodExpressionResolution: a bound-method expression call
// resolves to the method (receiver folded back from the first
// parameter), and only to compatible targets — helper (no receiver,
// wrong arity as a method expression) must not appear.
func TestMethodExpressionResolution(t *testing.T) {
	u := callgraphUnit(t)
	edges := u.edgesFrom(fnNamed(t, u, "MethodExpression"))
	sawWork, sawOther := false, false
	for _, e := range edges {
		if e.kind != edgeDynamic {
			continue
		}
		if e.callee.fn.Name() == "Work" {
			sawWork = true
		} else {
			sawOther = true
		}
	}
	if !sawWork {
		t.Error("bound-method expression call did not resolve to Work")
	}
	if sawOther {
		t.Errorf("bound-method expression call resolved beyond Work: %v", edges)
	}
}

// TestSpawnParams pins the worker/pool-helper derivation: `go` on the
// parameter itself, on an element ranged out of a variadic parameter,
// and transitively through a call that forwards the parameter.
func TestSpawnParams(t *testing.T) {
	u := callgraphUnit(t)
	u.ensureSpawnParams()
	for _, name := range []string{"GoValue", "SpawnAll", "Indirect"} {
		fn := fnNamed(t, u, name)
		if !u.spawnParams[fn][0] {
			t.Errorf("parameter 0 of %s is not marked spawning; spawnParams = %v", name, u.spawnParams[fn])
		}
	}
	if set := u.spawnParams[fnNamed(t, u, "StaticCall")]; len(set) != 0 {
		t.Errorf("StaticCall has spawning parameters %v; want none", set)
	}
}

// TestSpawnParamVariadicFolding: every argument position of a call
// landing on a spawning variadic tail folds onto the same parameter.
func TestSpawnParamVariadicFolding(t *testing.T) {
	u := callgraphUnit(t)
	u.ensureSpawnParams()
	spawnAll := fnNamed(t, u, "SpawnAll")
	for argIdx := 0; argIdx < 2; argIdx++ {
		pi, ok := u.spawnParamAt(spawnAll, argIdx, 2)
		if !ok || pi != 0 {
			t.Errorf("spawnParamAt(SpawnAll, %d, 2) = (%d, %v); want (0, true)", argIdx, pi, ok)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
