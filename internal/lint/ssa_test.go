package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// dataflowPkg loads the dataflow fixture (mirroring callgraphUnit).
func dataflowPkg(t *testing.T) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(fixturePrefix + "dataflow")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// declNamed finds a fixture function's declaration by name.
func declNamed(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("fixture function %s not found", name)
	return nil
}

// objNamed resolves a local or parameter of fd by name.
func objNamed(t *testing.T, pkg *Package, fd *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && obj == nil {
			if o := pkg.Info.Defs[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("no definition of %s in %s", name, fd.Name.Name)
	}
	return obj
}

// TestCFGWellFormed pins the structural invariants every client relies
// on: block 0 is the exit and has no successors, block 1 is the entry,
// every edge stays inside the graph, and every normal exit is a
// ReturnStmt (synthesized at the closing brace when the source falls
// off the end).
func TestCFGWellFormed(t *testing.T) {
	pkg := dataflowPkg(t)
	for _, name := range []string{
		"BranchJoin", "Guarded", "Loop", "DeferOrder", "Capture",
		"AddrTaken", "Plain", "Variadic", "RangeNil", "Terminates",
		"SwitchFacts", "Conds",
	} {
		t.Run(name, func(t *testing.T) {
			fd := declNamed(t, pkg, name)
			cfg := buildCFG(fd.Body)
			if cfg.exit != cfg.blocks[0] || cfg.entry != cfg.blocks[1] {
				t.Fatal("exit must be block 0 and entry block 1")
			}
			if len(cfg.exit.succ) != 0 {
				t.Errorf("exit block has %d successors; want none", len(cfg.exit.succ))
			}
			ids := map[*cfgBlock]bool{}
			for _, b := range cfg.blocks {
				ids[b] = true
			}
			returns := 0
			for _, b := range cfg.blocks {
				for _, e := range b.succ {
					if !ids[e.to] {
						t.Errorf("block %d has an edge to a block outside the graph", b.id)
					}
				}
				for _, n := range b.nodes {
					if _, ok := n.(*ast.ReturnStmt); ok {
						returns++
					}
				}
			}
			if returns == 0 {
				t.Error("no ReturnStmt in the graph; normal exits must be returns")
			}
		})
	}
}

// TestCFGBranchEdges: a conditional spawns a true edge and a false
// edge carrying the same condition expression, so refine() sees both
// polarities.
func TestCFGBranchEdges(t *testing.T) {
	pkg := dataflowPkg(t)
	cfg := buildCFG(declNamed(t, pkg, "Guarded").Body)
	found := false
	for _, b := range cfg.blocks {
		var trueCond, falseCond ast.Expr
		for _, e := range b.succ {
			if e.cond == nil {
				continue
			}
			if e.truth {
				trueCond = e.cond
			} else {
				falseCond = e.cond
			}
		}
		if trueCond != nil && trueCond == falseCond {
			found = true
			if bin, ok := trueCond.(*ast.BinaryExpr); !ok || bin.Op.String() != "!=" {
				t.Errorf("guard condition = %T; want the x != nil comparison", trueCond)
			}
		}
	}
	if !found {
		t.Error("no block carries a true/false edge pair for the guard")
	}
}

// TestCFGSynthesizedReturnAndDeferOrder: a body with no explicit
// return gets exactly one synthesized ReturnStmt at the closing brace,
// downstream of both defers, which appear in source order.
func TestCFGSynthesizedReturnAndDeferOrder(t *testing.T) {
	pkg := dataflowPkg(t)
	fd := declNamed(t, pkg, "DeferOrder")
	cfg := buildCFG(fd.Body)
	var seq []ast.Node
	for _, b := range cfg.blocks {
		seq = append(seq, b.nodes...)
	}
	var kinds []string
	var ret *ast.ReturnStmt
	for _, n := range seq {
		switch n := n.(type) {
		case *ast.DeferStmt:
			kinds = append(kinds, "defer")
		case *ast.ReturnStmt:
			kinds = append(kinds, "return")
			ret = n
		case *ast.ExprStmt:
			kinds = append(kinds, "call")
		}
	}
	want := []string{"defer", "defer", "call", "return"}
	if len(kinds) != len(want) {
		t.Fatalf("node kinds = %v; want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("node kinds = %v; want %v", kinds, want)
		}
	}
	if ret.Return != fd.Body.End() {
		t.Errorf("synthesized return at %v; want the body's closing brace %v", ret.Return, fd.Body.End())
	}
}

// TestCFGTerminatingCalls: panic and os.Exit end their blocks with no
// successors — obligations die with the process.
func TestCFGTerminatingCalls(t *testing.T) {
	pkg := dataflowPkg(t)
	cfg := buildCFG(declNamed(t, pkg, "Terminates").Body)
	terminated := 0
	for _, b := range cfg.blocks {
		for _, n := range b.nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok && callTerminates(call) {
				terminated++
				if len(b.succ) != 0 {
					t.Errorf("block %d ends in a terminating call but has %d successors", b.id, len(b.succ))
				}
			}
		}
	}
	if terminated != 2 {
		t.Errorf("found %d terminating calls; want panic and os.Exit", terminated)
	}
}

// TestCFGLoopBackEdge: the for loop closes with an edge to an earlier
// block, the shape the fixpoint iterates on.
func TestCFGLoopBackEdge(t *testing.T) {
	pkg := dataflowPkg(t)
	cfg := buildCFG(declNamed(t, pkg, "Loop").Body)
	for _, b := range cfg.blocks {
		for _, e := range b.succ {
			if e.to.id != 0 && e.to.id < b.id {
				return
			}
		}
	}
	t.Error("no back edge found in the loop CFG")
}

// TestDefUseEscapes pins what disqualifies a local from flow-sensitive
// tracking: closure capture and address-taking escape; plain locals
// and parameters do not.
func TestDefUseEscapes(t *testing.T) {
	pkg := dataflowPkg(t)
	cases := []struct {
		fn         string
		escaped    []string
		notEscaped []string
	}{
		{"Capture", []string{"y"}, []string{"inc"}},
		{"AddrTaken", []string{"z"}, []string{"p"}},
		{"Plain", nil, []string{"a", "b", "c"}},
		{"BranchJoin", nil, []string{"x", "b"}},
		{"Variadic", nil, []string{"xs", "t", "x"}},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fd := declNamed(t, pkg, tc.fn)
			du := defUseOf(pkg.Info, fd.Body)
			for _, name := range tc.escaped {
				if !du.escaped[objNamed(t, pkg, fd, name)] {
					t.Errorf("%s should be escaped", name)
				}
			}
			for _, name := range tc.notEscaped {
				if du.escaped[objNamed(t, pkg, fd, name)] {
					t.Errorf("%s should not be escaped", name)
				}
			}
		})
	}
}

// TestDefUseChains: defs and uses land on the right objects — p in
// Loop is defined twice (declaration, loop-body rebind) and read by
// the return.
func TestDefUseChains(t *testing.T) {
	pkg := dataflowPkg(t)
	fd := declNamed(t, pkg, "Loop")
	du := defUseOf(pkg.Info, fd.Body)
	p := objNamed(t, pkg, fd, "p")
	if got := len(du.defs[p]); got != 2 {
		t.Errorf("p has %d defs; want 2 (var decl + loop rebind)", got)
	}
	// The loop-body rebind is a plain `=` assignment, so its Lhs ident
	// resolves through info.Uses and counts as a use alongside the read
	// in the return.
	if got := len(du.uses[p]); got != 2 {
		t.Errorf("p has %d uses; want 2 (rebind lhs + return)", got)
	}
}

// TestCFGMemoization: the Unit-level accessors hand every analyzer the
// same graph and chains, never a rebuild.
func TestCFGMemoization(t *testing.T) {
	pkg := dataflowPkg(t)
	u := &Unit{Pkgs: []*Package{pkg}, Cfg: DefaultConfig()}
	fd := declNamed(t, pkg, "Capture")
	if u.cfgOf(fd) != u.cfgOf(fd) {
		t.Error("cfgOf rebuilt the graph")
	}
	if u.duOf(pkg.Info, fd) != u.duOf(pkg.Info, fd) {
		t.Error("duOf rebuilt the chains")
	}
	var lit *ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok && lit == nil {
			lit = l
		}
		return true
	})
	if lit == nil {
		t.Fatal("Capture has no literal")
	}
	if u.litCFGOf(lit) != u.litCFGOf(lit) {
		t.Error("litCFGOf rebuilt the graph")
	}
}
