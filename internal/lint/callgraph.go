package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// callgraph.go builds the whole-module call-resolution substrate the
// interprocedural analyzers stand on. Nodes are the module's declared
// functions and methods; static calls resolve through go/types, and the
// two dynamic call shapes are resolved conservatively:
//
//   - a call through an interface method resolves to every module
//     method with that name whose receiver type implements the
//     interface (types.Implements on T and *T);
//   - a call through a function value (a variable, field, or method
//     value) resolves to every module function whose address is taken
//     somewhere and whose signature is identical to the call's.
//
// Over-approximating dynamic targets keeps the lock-state fixpoint
// sound for may-hold facts; the precision loss only widens the set of
// locks a function might run under.

// declInfo is one declared function or method of the module.
type declInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// ensureDecls indexes every declared function of the unit's packages
// and records which functions have their address taken (referenced
// anywhere other than as the operator of a call).
func (u *Unit) ensureDecls() {
	u.declOnce.Do(func() {
		u.decls = map[*types.Func]*declInfo{}
		u.addrTaken = map[*types.Func]bool{}
		for _, pkg := range u.Pkgs {
			for _, file := range pkg.Files {
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					di := &declInfo{fn: fn, decl: fd, pkg: pkg}
					u.decls[fn] = di
					u.declList = append(u.declList, di)
				}
			}
			// Address-taken detection: first mark the identifiers that
			// are callees, then every other use of a *types.Func is a
			// value reference.
			callees := map[*ast.Ident]bool{}
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						callees[fun] = true
					case *ast.SelectorExpr:
						callees[fun.Sel] = true
					}
					return true
				})
			}
			for id, obj := range pkg.Info.Uses {
				if fn, ok := obj.(*types.Func); ok && !callees[id] {
					u.addrTaken[fn] = true
				}
			}
		}
		sort.Slice(u.declList, func(i, j int) bool {
			return u.declList[i].decl.Pos() < u.declList[j].decl.Pos()
		})
	})
}

// declOf returns the module declaration of fn, or nil for functions
// outside the unit (standard library, interface methods).
func (u *Unit) declOf(fn *types.Func) *declInfo {
	u.ensureDecls()
	return u.decls[fn]
}

// dynamicTargets conservatively resolves a call whose callee is not a
// single statically known function: interface method calls resolve to
// all implementing module methods, function-value calls to all
// address-taken module functions of identical signature. Results are
// in deterministic (position) order.
func (u *Unit) dynamicTargets(pkg *Package, call *ast.CallExpr) []*declInfo {
	u.ensureDecls()
	info := pkg.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			iface, ok := s.Recv().Underlying().(*types.Interface)
			if !ok {
				return nil
			}
			var out []*declInfo
			for _, di := range u.declList {
				sig, ok := di.fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil || di.fn.Name() != sel.Sel.Name {
					continue
				}
				if types.Implements(sig.Recv().Type(), iface) {
					out = append(out, di)
				}
			}
			return out
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*declInfo
	for _, di := range u.declList {
		if !u.addrTaken[di.fn] {
			continue
		}
		fsig, ok := di.fn.Type().(*types.Signature)
		if ok && (sameSignature(fsig, sig) || methodExprMatches(fsig, sig)) {
			out = append(out, di)
		}
	}
	return out
}

// edgeKind classifies how a call edge transfers control. The lock-state
// interpreter keys its transfer function on this: EdgeCall and
// EdgeDefer run in the caller's context (defers inside a critical
// section fire before the locks release), while EdgeGo and EdgeGoValue
// run in a fresh goroutine that inherits none of the caller's lock
// facts.
type edgeKind uint8

// Call-edge kinds.
const (
	edgeCall    edgeKind = iota // plain static call
	edgeDefer                   // deferred call
	edgeGo                      // direct `go f(...)`
	edgeDynamic                 // through an interface or function value
	edgeGoValue                 // `go` through a function value or interface
)

func (k edgeKind) String() string {
	switch k {
	case edgeCall:
		return "call"
	case edgeDefer:
		return "defer"
	case edgeGo:
		return "go"
	case edgeDynamic:
		return "dynamic"
	case edgeGoValue:
		return "go-dynamic"
	}
	return "?"
}

// callEdge is one resolved call edge of the module graph: caller's
// declaration, callee's declaration, and the kind of transfer.
type callEdge struct {
	caller *declInfo
	callee *declInfo
	kind   edgeKind
	pos    token.Pos
}

// ensureEdges builds the kinded whole-module edge list once per Unit.
// Static callees resolve through go/types; calls with no static callee
// resolve through dynamicTargets. `go` and `defer` statements tag their
// call with the matching kind, including dynamic spawns.
func (u *Unit) ensureEdges() {
	u.edgeOnce.Do(func() {
		u.ensureDecls()
		for _, di := range u.declList {
			caller := di
			info := di.pkg.Info
			// Pre-claim the call expressions owned by go/defer statements
			// so the generic CallExpr case does not re-add them.
			claimed := map[*ast.CallExpr]edgeKind{}
			ast.Inspect(di.decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					claimed[n.Call] = edgeGo
				case *ast.DeferStmt:
					claimed[n.Call] = edgeDefer
				}
				return true
			})
			ast.Inspect(di.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, special := claimed[call]
				if !special {
					kind = edgeCall
				}
				if f := CalleeOf(info, call); f != nil {
					if callee := u.decls[f]; callee != nil {
						u.edges = append(u.edges, callEdge{caller: caller, callee: callee, kind: kind, pos: call.Pos()})
					}
					return true
				}
				dyn := edgeDynamic
				if kind == edgeGo {
					dyn = edgeGoValue
				}
				for _, callee := range u.dynamicTargets(di.pkg, call) {
					u.edges = append(u.edges, callEdge{caller: caller, callee: callee, kind: dyn, pos: call.Pos()})
				}
				return true
			})
		}
		sort.Slice(u.edges, func(i, j int) bool { return u.edges[i].pos < u.edges[j].pos })
	})
}

// edgesFrom returns the outgoing kinded edges of fn, in position order.
func (u *Unit) edgesFrom(fn *types.Func) []callEdge {
	u.ensureEdges()
	var out []callEdge
	for _, e := range u.edges {
		if e.caller.fn == fn {
			out = append(out, e)
		}
	}
	return out
}

// ensureSpawnParams computes, per declared function, which parameter
// indices are "spawning": a function value bound to that parameter is
// (transitively) launched in a goroutine by the callee — the
// worker/pool-helper shape `func Submit(fn func()) { go fn() }`. The
// lock-state interpreter treats an argument handed to a spawning
// parameter exactly like the function operand of a `go` statement: no
// lock facts transfer into it.
//
// Derivation is local and conservative: a parameter reaches a `go`
// statement if the spawned function value is the parameter itself, an
// element of it (indexing or ranging over a variadic/slice parameter),
// or a local variable assigned from one of those; and spawning
// propagates through static calls that pass a parameter onward to
// another spawning parameter.
func (u *Unit) ensureSpawnParams() {
	u.spawnParamOnce.Do(func() {
		u.ensureDecls()
		u.spawnParams = map[*types.Func]map[int]bool{}
		for changed := true; changed; {
			changed = false
			for _, di := range u.declList {
				if u.spawnScan(di) {
					changed = true
				}
			}
		}
	})
}

// spawnScan runs one propagation step over di's body; it reports
// whether a new spawning parameter was discovered.
func (u *Unit) spawnScan(di *declInfo) bool {
	info := di.pkg.Info
	sig, ok := di.fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	paramIndex := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		paramIndex[sig.Params().At(i)] = i
	}
	// derived maps a local object to the parameter index it aliases.
	derived := map[types.Object]int{}
	resolve := func(e ast.Expr) (int, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				return 0, false
			}
			if i, ok := paramIndex[obj]; ok {
				return i, true
			}
			if i, ok := derived[obj]; ok {
				return i, true
			}
		case *ast.IndexExpr:
			return resolveSpawnOperand(info, e.X, paramIndex, derived)
		}
		return 0, false
	}
	// Fixpoint over local derivations (range vars, aliases); bodies are
	// small, so a simple loop suffices.
	for changed := true; changed; {
		changed = false
		ast.Inspect(di.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if i, ok := resolve(n.X); ok {
					if id, isID := n.Value.(*ast.Ident); isID {
						if obj := info.Defs[id]; obj != nil {
							if _, seen := derived[obj]; !seen {
								derived[obj] = i
								changed = true
							}
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for k := range n.Lhs {
					i, ok := resolve(n.Rhs[k])
					if !ok {
						continue
					}
					id, isID := n.Lhs[k].(*ast.Ident)
					if !isID {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						if _, seen := derived[obj]; !seen {
							derived[obj] = i
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	grew := false
	mark := func(i int) {
		set := u.spawnParams[di.fn]
		if set == nil {
			set = map[int]bool{}
			u.spawnParams[di.fn] = set
		}
		if !set[i] {
			set[i] = true
			grew = true
		}
	}
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if i, ok := resolve(n.Call.Fun); ok {
				mark(i)
			}
		case *ast.CallExpr:
			f := CalleeOf(info, n)
			if f == nil {
				return true
			}
			for argIdx, arg := range n.Args {
				i, ok := resolve(arg)
				if !ok {
					continue
				}
				if _, ok := u.spawnParamAt(f, argIdx, len(n.Args)); ok {
					mark(i)
				}
			}
		}
		return true
	})
	return grew
}

// resolveSpawnOperand resolves the base of an index expression to a
// parameter or derived index.
func resolveSpawnOperand(info *types.Info, e ast.Expr, paramIndex, derived map[types.Object]int) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return 0, false
	}
	if i, ok := paramIndex[obj]; ok {
		return i, true
	}
	if i, ok := derived[obj]; ok {
		return i, true
	}
	return 0, false
}

// spawnParamAt maps an argument position of a call to f onto f's
// parameter index (folding variadic tails) and reports whether that
// parameter is spawning. Only meaningful after ensureSpawnParams; the
// bool result is false when f takes no spawning parameter there.
func (u *Unit) spawnParamAt(f *types.Func, argIdx, nargs int) (int, bool) {
	set := u.spawnParams[f]
	if len(set) == 0 {
		return -1, false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return -1, false
	}
	pi := argIdx
	if sig.Variadic() && argIdx >= sig.Params().Len()-1 {
		pi = sig.Params().Len() - 1
	}
	if set[pi] {
		return pi, true
	}
	return -1, false
}

// spawningArgs returns the arguments of call (a static call to f) that
// land on spawning parameters of f.
func (u *Unit) spawningArgs(f *types.Func, call *ast.CallExpr) []ast.Expr {
	u.ensureSpawnParams()
	if len(u.spawnParams[f]) == 0 {
		return nil
	}
	var out []ast.Expr
	for i, arg := range call.Args {
		if _, ok := u.spawnParamAt(f, i, len(call.Args)); ok {
			out = append(out, arg)
		}
	}
	return out
}

// methodExprMatches reports whether a method's signature, viewed as a
// bound-method expression (the receiver prepended as the first
// parameter, as in `f := (*T).Work; f(t)`), matches the call-site
// signature sig. sameSignature cannot see these: the method's own
// signature keeps the receiver out of Params.
func methodExprMatches(fsig, sig *types.Signature) bool {
	if fsig.Recv() == nil || fsig.Variadic() != sig.Variadic() {
		return false
	}
	if sig.Params().Len() != fsig.Params().Len()+1 || !identicalTuples(fsig.Results(), sig.Results()) {
		return false
	}
	if !types.Identical(sig.Params().At(0).Type(), fsig.Recv().Type()) {
		return false
	}
	for i := 0; i < fsig.Params().Len(); i++ {
		if !types.Identical(fsig.Params().At(i).Type(), sig.Params().At(i+1).Type()) {
			return false
		}
	}
	return true
}

// sameSignature reports whether two signatures have identical
// parameter and result tuples (receivers are ignored, so a method
// value matches the signature it is used at).
func sameSignature(a, b *types.Signature) bool {
	if a.Variadic() != b.Variadic() {
		return false
	}
	return identicalTuples(a.Params(), b.Params()) && identicalTuples(a.Results(), b.Results())
}

func identicalTuples(a, b *types.Tuple) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !types.Identical(a.At(i).Type(), b.At(i).Type()) {
			return false
		}
	}
	return true
}
