package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// callgraph.go builds the whole-module call-resolution substrate the
// interprocedural analyzers stand on. Nodes are the module's declared
// functions and methods; static calls resolve through go/types, and the
// two dynamic call shapes are resolved conservatively:
//
//   - a call through an interface method resolves to every module
//     method with that name whose receiver type implements the
//     interface (types.Implements on T and *T);
//   - a call through a function value (a variable, field, or method
//     value) resolves to every module function whose address is taken
//     somewhere and whose signature is identical to the call's.
//
// Over-approximating dynamic targets keeps the lock-state fixpoint
// sound for may-hold facts; the precision loss only widens the set of
// locks a function might run under.

// declInfo is one declared function or method of the module.
type declInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// ensureDecls indexes every declared function of the unit's packages
// and records which functions have their address taken (referenced
// anywhere other than as the operator of a call).
func (u *Unit) ensureDecls() {
	u.declOnce.Do(func() {
		u.decls = map[*types.Func]*declInfo{}
		u.addrTaken = map[*types.Func]bool{}
		for _, pkg := range u.Pkgs {
			for _, file := range pkg.Files {
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					di := &declInfo{fn: fn, decl: fd, pkg: pkg}
					u.decls[fn] = di
					u.declList = append(u.declList, di)
				}
			}
			// Address-taken detection: first mark the identifiers that
			// are callees, then every other use of a *types.Func is a
			// value reference.
			callees := map[*ast.Ident]bool{}
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						callees[fun] = true
					case *ast.SelectorExpr:
						callees[fun.Sel] = true
					}
					return true
				})
			}
			for id, obj := range pkg.Info.Uses {
				if fn, ok := obj.(*types.Func); ok && !callees[id] {
					u.addrTaken[fn] = true
				}
			}
		}
		sort.Slice(u.declList, func(i, j int) bool {
			return u.declList[i].decl.Pos() < u.declList[j].decl.Pos()
		})
	})
}

// declOf returns the module declaration of fn, or nil for functions
// outside the unit (standard library, interface methods).
func (u *Unit) declOf(fn *types.Func) *declInfo {
	u.ensureDecls()
	return u.decls[fn]
}

// dynamicTargets conservatively resolves a call whose callee is not a
// single statically known function: interface method calls resolve to
// all implementing module methods, function-value calls to all
// address-taken module functions of identical signature. Results are
// in deterministic (position) order.
func (u *Unit) dynamicTargets(pkg *Package, call *ast.CallExpr) []*declInfo {
	u.ensureDecls()
	info := pkg.Info
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			iface, ok := s.Recv().Underlying().(*types.Interface)
			if !ok {
				return nil
			}
			var out []*declInfo
			for _, di := range u.declList {
				sig, ok := di.fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil || di.fn.Name() != sel.Sel.Name {
					continue
				}
				if types.Implements(sig.Recv().Type(), iface) {
					out = append(out, di)
				}
			}
			return out
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*declInfo
	for _, di := range u.declList {
		if !u.addrTaken[di.fn] {
			continue
		}
		fsig, ok := di.fn.Type().(*types.Signature)
		if ok && sameSignature(fsig, sig) {
			out = append(out, di)
		}
	}
	return out
}

// sameSignature reports whether two signatures have identical
// parameter and result tuples (receivers are ignored, so a method
// value matches the signature it is used at).
func sameSignature(a, b *types.Signature) bool {
	if a.Variadic() != b.Variadic() {
		return false
	}
	return identicalTuples(a.Params(), b.Params()) && identicalTuples(a.Results(), b.Results())
}

func identicalTuples(a, b *types.Tuple) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !types.Identical(a.At(i).Type(), b.At(i).Type()) {
			return false
		}
	}
	return true
}
