package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerDroppedError flags calls whose error result is silently
// discarded (expression statements, defers, and go statements). Every
// maintenance transaction in this engine reports failure through an
// error — a dropped one can leave an invariant (INV_BL/INV_DT/INV_C)
// silently violated, which the whole deferred-maintenance scheme
// assumes never happens. Explicit discards (`_ = f()`) are allowed:
// they are visible in review. Exemptions: the fmt print family and
// methods on strings.Builder/bytes.Buffer, whose errors are
// unobservable by construction.
var analyzerDroppedError = &Analyzer{
	Name: "dropped-error",
	Doc:  "error results must be handled or explicitly discarded with _ =",
	Run:  runDroppedError,
}

func runDroppedError(p *Pass) {
	for _, file := range p.Pkg.Files {
		name := p.Pkg.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				c, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				call = c
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			default:
				return true
			}
			p.checkDiscardedCall(call)
			return true
		})
	}
}

func (p *Pass) checkDiscardedCall(call *ast.CallExpr) {
	t := p.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	f := CalleeOf(p.Pkg.Info, call)
	if f != nil && errorExempt(f) {
		return
	}
	name := "call"
	if f != nil {
		name = f.Name()
	}
	p.Reportf(call.Pos(), "result of %s includes an error that is silently dropped; handle it or discard explicitly with _ =", name)
}

var errType = types.Universe.Lookup("error").Type()

func resultHasError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// errorExempt reports whether f's error is conventionally ignorable:
// the fmt print family and in-memory builders that document err==nil.
func errorExempt(f *types.Func) bool {
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		return true
	}
	return isMethodOn(f, "strings", "Builder") || isMethodOn(f, "bytes", "Buffer")
}
